/** Parameterized conformance tests across all four systems. */

#include <gtest/gtest.h>

#include <functional>

#include "baseline/cronus_backend.hh"
#include "baseline/hix_tz.hh"
#include "baseline/monolithic_tz.hh"
#include "baseline/native.hh"

namespace cronus::baseline
{
namespace
{

using Factory = std::function<std::unique_ptr<ComputeBackend>()>;

const std::vector<std::string> kKernels = {"fill_f32", "vec_add_f32",
                                           "matmul_f32"};

std::unique_ptr<ComputeBackend>
makeBackend(const std::string &which)
{
    Logger::instance().setQuiet(true);
    if (which == "native") {
        NativeConfig c;
        c.gpuKernels = kKernels;
        return std::make_unique<NativeBackend>(c);
    }
    if (which == "tz") {
        MonolithicConfig c;
        c.gpuKernels = kKernels;
        return std::make_unique<MonolithicTzBackend>(c);
    }
    if (which == "hix") {
        HixConfig c;
        c.gpuKernels = kKernels;
        return std::make_unique<HixTzBackend>(c);
    }
    CronusBackendConfig c;
    c.gpuKernels = kKernels;
    return std::make_unique<CronusBackend>(c);
}

class BackendConformanceTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    void SetUp() override { backend = makeBackend(GetParam()); }

    std::unique_ptr<ComputeBackend> backend;
};

TEST_P(BackendConformanceTest, GpuRoundTripComputesVecAdd)
{
    auto &b = *backend;
    auto va_a = b.gpuAlloc(16);
    auto va_b = b.gpuAlloc(16);
    auto va_c = b.gpuAlloc(16);
    ASSERT_TRUE(va_a.isOk()) << va_a.status().toString();

    std::vector<float> a = {1, 2, 3, 4}, bb = {10, 20, 30, 40};
    Bytes a_bytes(reinterpret_cast<uint8_t *>(a.data()),
                  reinterpret_cast<uint8_t *>(a.data()) + 16);
    Bytes b_bytes(reinterpret_cast<uint8_t *>(bb.data()),
                  reinterpret_cast<uint8_t *>(bb.data()) + 16);
    ASSERT_TRUE(b.copyToGpu(va_a.value(), a_bytes).isOk());
    ASSERT_TRUE(b.copyToGpu(va_b.value(), b_bytes).isOk());
    ASSERT_TRUE(b.launchKernel("vec_add_f32",
                               {va_a.value(), va_b.value(),
                                va_c.value(), 4},
                               4).isOk());
    auto out = b.copyFromGpu(va_c.value(), 16);
    ASSERT_TRUE(out.isOk()) << out.status().toString();
    const float *c =
        reinterpret_cast<const float *>(out.value().data());
    EXPECT_EQ(c[0], 11);
    EXPECT_EQ(c[3], 44);
}

TEST_P(BackendConformanceTest, LargeCopyRoundTrips)
{
    auto &b = *backend;
    Bytes big(64 * 1024);
    for (size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<uint8_t>(i * 31);
    auto va = b.gpuAlloc(big.size());
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(b.copyToGpu(va.value(), big).isOk());
    auto back = b.copyFromGpu(va.value(), big.size());
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), big);
}

TEST_P(BackendConformanceTest, TimeAdvancesMonotonically)
{
    auto &b = *backend;
    SimTime t0 = b.now();
    auto va = b.gpuAlloc(4096);
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(b.copyToGpu(va.value(), Bytes(4096, 1)).isOk());
    ASSERT_TRUE(b.gpuSynchronize().isOk());
    EXPECT_GT(b.now(), t0);
}

TEST_P(BackendConformanceTest, FaultAndRecoverRestoresService)
{
    auto &b = *backend;
    ASSERT_TRUE(b.gpuAlloc(4096).isOk());
    ASSERT_TRUE(b.injectGpuFault().isOk());
    EXPECT_FALSE(b.gpuAlloc(4096).isOk());
    auto cost = b.recoverGpu();
    ASSERT_TRUE(cost.isOk()) << cost.status().toString();
    EXPECT_GT(cost.value(), 0u);
    EXPECT_TRUE(b.gpuAlloc(4096).isOk());
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, BackendConformanceTest,
    ::testing::Values("native", "tz", "hix", "cronus"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(BaselineContrast, CronusRecoveryIsOrdersOfMagnitudeFaster)
{
    auto cronus = makeBackend("cronus");
    auto tz = makeBackend("tz");
    ASSERT_TRUE(cronus->gpuAlloc(4096).isOk());
    ASSERT_TRUE(tz->gpuAlloc(4096).isOk());
    ASSERT_TRUE(cronus->injectGpuFault().isOk());
    ASSERT_TRUE(tz->injectGpuFault().isOk());
    SimTime cronus_cost = cronus->recoverGpu().value();
    SimTime tz_cost = tz->recoverGpu().value();
    /* Hundreds of ms vs ~2 minutes. */
    EXPECT_LT(cronus_cost * 50, tz_cost);
}

TEST(BaselineContrast, OnlyCronusKeepsOthersAliveThroughGpuFault)
{
    auto cronus = makeBackend("cronus");
    auto tz = makeBackend("tz");
    auto native = makeBackend("native");
    for (auto *b : {cronus.get(), tz.get(), native.get()})
        ASSERT_TRUE(b->injectGpuFault().isOk());
    EXPECT_TRUE(cronus->othersAlive());   /* R3.1 holds */
    EXPECT_FALSE(tz->othersAlive());      /* monolithic dies whole */
    EXPECT_FALSE(native->othersAlive());
}

TEST(BaselineContrast, HixTrafficIsVisibleButEncrypted)
{
    HixConfig c;
    c.gpuKernels = kKernels;
    HixTzBackend hix(c);
    Bytes plaintext = toBytes(
        "super-secret-model-weights-0123456789abcdef");
    auto va = hix.gpuAlloc(plaintext.size());
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(hix.copyToGpu(va.value(), plaintext).isOk());

    /* The untrusted OS observed traffic (timing side channel HIX
     * cannot hide)... */
    ASSERT_FALSE(hix.observedMessages().empty());
    /* ...but the bytes are ciphertext. */
    for (const auto &msg : hix.observedMessages()) {
        std::string view(msg.ciphertext.begin(),
                         msg.ciphertext.end());
        EXPECT_EQ(view.find("super-secret"), std::string::npos);
    }
}

TEST(BaselineContrast, MonolithicTrustsAllDrivers)
{
    MonolithicConfig c;
    c.gpuKernels = kKernels;
    MonolithicTzBackend tz(c);
    Bytes secret = toBytes("tenant-a-data!!!");
    auto va = tz.gpuAlloc(secret.size());
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(tz.copyToGpu(va.value(), secret).isOk());
    /* The "NPU driver" reads tenant GPU data: monolithic design
     * violates R3.2. CRONUS structurally prevents this (foreign
     * partitions cannot map GPU state; see SpmTest). */
    auto stolen = tz.maliciousDriverReadsGpu(va.value(),
                                             secret.size());
    ASSERT_TRUE(stolen.isOk());
    EXPECT_EQ(stolen.value(), secret);
}

TEST(BaselineContrast, CronusStreamsWithFewerRoundTrips)
{
    auto cronus_b = makeBackend("cronus");
    HixConfig c;
    c.gpuKernels = kKernels;
    HixTzBackend hix(c);

    auto run = [](ComputeBackend &b) {
        /* Warm up (builds channels, boots mOSes), then measure the
         * steady-state streaming cost only. */
        auto va = b.gpuAlloc(4096).value();
        SimTime start = b.now();
        Bytes data(512, 3);
        for (int i = 0; i < 32; ++i) {
            EXPECT_TRUE(b.copyToGpu(va, data).isOk());
            EXPECT_TRUE(b.launchKernel("fill_f32", {va, 128, 0},
                                       128).isOk());
        }
        EXPECT_TRUE(b.gpuSynchronize().isOk());
        return b.now() - start;
    };
    SimTime cronus_time = run(*cronus_b);
    SimTime hix_time = run(hix);
    /* Control-plane-heavy streams: CRONUS is clearly faster. */
    EXPECT_LT(cronus_time, hix_time);
}

} // namespace
} // namespace cronus::baseline
