/** Property-based suites: randomized operation sequences against
 *  the system's invariants. */

#include "../core/test_fixtures.hh"

#include "base/json.hh"

namespace cronus::core
{
namespace
{

/* ------------------------------------------------------------------ */
/* JSON fuzz                                                           */
/* ------------------------------------------------------------------ */

class JsonFuzzTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(JsonFuzzTest, RandomBytesNeverCrashTheParser)
{
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        size_t len = rng.nextBelow(128);
        std::string doc;
        for (size_t j = 0; j < len; ++j)
            doc.push_back(static_cast<char>(rng.nextBelow(256)));
        auto r = parseJson(doc);  /* must not crash or throw */
        (void)r;
    }
}

namespace
{

JsonValue
randomJson(Rng &rng, int depth)
{
    switch (depth <= 0 ? rng.nextBelow(4) : rng.nextBelow(6)) {
      case 0: return JsonValue();
      case 1: return JsonValue(rng.nextBelow(2) == 0);
      case 2: return JsonValue(int64_t(rng.next() >> 16));
      case 3: {
        std::string s;
        size_t len = rng.nextBelow(12);
        for (size_t i = 0; i < len; ++i)
            s.push_back(
                static_cast<char>('a' + rng.nextBelow(26)));
        return JsonValue(s);
      }
      case 4: {
        JsonArray arr;
        size_t n = rng.nextBelow(4);
        for (size_t i = 0; i < n; ++i)
            arr.push_back(randomJson(rng, depth - 1));
        return JsonValue(std::move(arr));
      }
      default: {
        JsonObject obj;
        size_t n = rng.nextBelow(4);
        for (size_t i = 0; i < n; ++i)
            obj["k" + std::to_string(rng.nextBelow(100))] =
                randomJson(rng, depth - 1);
        return JsonValue(std::move(obj));
      }
    }
}

} // namespace

TEST_P(JsonFuzzTest, GeneratedDocumentsRoundTrip)
{
    Rng rng(GetParam() * 7919);
    for (int i = 0; i < 50; ++i) {
        JsonValue doc = randomJson(rng, 4);
        auto back = parseJson(doc.dump());
        ASSERT_TRUE(back.isOk()) << doc.dump();
        EXPECT_TRUE(doc == back.value()) << doc.dump();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzzTest,
                         ::testing::Range<uint64_t>(1, 6));

/* ------------------------------------------------------------------ */
/* SPM randomized operation sequences                                  */
/* ------------------------------------------------------------------ */

class SpmPropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SpmPropertyTest, RandomShareFailRecoverKeepsInvariants)
{
    Logger::instance().setQuiet(true);
    Rng rng(GetParam());

    hw::Platform platform;
    for (int i = 0; i < 3; ++i) {
        accel::GpuConfig gc;
        gc.name = "gpu" + std::to_string(i);
        gc.vramBytes = 4ull << 20;
        gc.rotSeed = toBytes("prop" + std::to_string(i));
        platform.registerDevice(
            std::make_unique<accel::GpuDevice>(gc), 40 + i);
    }
    tee::SecureMonitor monitor(platform);
    hw::DeviceTree dt;
    hw::DeviceTree discovered = platform.buildDeviceTree();
    for (auto node : discovered.all()) {
        node.world = hw::World::Secure;
        dt.addNode(node);
    }
    ASSERT_TRUE(monitor.boot(dt).isOk());
    tee::Spm spm(monitor);

    std::vector<tee::PartitionId> pids;
    for (int i = 0; i < 3; ++i) {
        tee::MosImage image{"m" + std::to_string(i), "gpu",
                            toBytes("c" + std::to_string(i))};
        pids.push_back(spm.createPartition(
            image, "gpu" + std::to_string(i), 2ull << 20).value());
    }

    std::vector<uint64_t> grants;
    for (int step = 0; step < 120; ++step) {
        uint64_t op = rng.nextBelow(10);
        tee::PartitionId a = pids[rng.nextBelow(pids.size())];
        tee::PartitionId b = pids[rng.nextBelow(pids.size())];
        auto pa = spm.partition(a);
        ASSERT_TRUE(pa.isOk());

        if (op < 4) {
            /* Share a random page a -> b. */
            hw::PhysAddr page =
                pa.value()->memBase +
                rng.nextBelow(pa.value()->memBytes /
                              hw::kPageSize) *
                    hw::kPageSize;
            auto g = spm.sharePages(a, b, page, 1);
            if (g.isOk())
                grants.push_back(g.value());
            /* Double-share of the same page must always fail. */
            if (g.isOk())
                EXPECT_FALSE(spm.sharePages(a, b, page, 1).isOk());
        } else if (op < 6) {
            /* Random read through stage-2; must never crash, and a
             * PeerFailed result is only legal after a failure. */
            hw::PhysAddr addr =
                pa.value()->memBase +
                rng.nextBelow(pa.value()->memBytes - 8);
            auto r = spm.read(a, addr, 8);
            if (!r.isOk()) {
                EXPECT_TRUE(r.code() == ErrorCode::PeerFailed ||
                            r.code() == ErrorCode::AccessFault ||
                            r.code() == ErrorCode::InvalidState)
                    << r.status().toString();
            }
        } else if (op < 7) {
            /* Fail a random partition. */
            if (spm.partition(a).value()->state ==
                tee::PartitionState::Ready)
                EXPECT_TRUE(spm.failPartition(a).isOk());
        } else if (op < 9) {
            /* Recover if failed; its memory must come back zeroed
             * and a fresh incarnation. */
            auto p = spm.partition(a).value();
            if (p->state == tee::PartitionState::Failed) {
                uint64_t inc = p->incarnation;
                tee::MosImage image{"r", "gpu", toBytes("r")};
                ASSERT_TRUE(
                    spm.recoverPartition(a, image).isOk());
                auto fresh = spm.partition(a).value();
                EXPECT_EQ(fresh->incarnation, inc + 1);
                auto zero = spm.read(a, fresh->memBase, 64);
                ASSERT_TRUE(zero.isOk());
                EXPECT_EQ(zero.value(), Bytes(64, 0));
            }
        } else {
            /* Revoke a random grant (either party). */
            if (!grants.empty()) {
                uint64_t gid =
                    grants[rng.nextBelow(grants.size())];
                auto g = spm.grant(gid);
                if (g.isOk() && g.value()->active)
                    spm.revokeGrant(gid, g.value()->owner);
            }
        }
    }

    /* Global invariant: every active grant's pages are mapped in
     * the peer's stage-2 exactly when the grant is active. */
    for (uint64_t gid : grants) {
        auto g = spm.grant(gid);
        if (!g.isOk() || !g.value()->active)
            continue;
        auto peer = spm.partition(g.value()->peer);
        ASSERT_TRUE(peer.isOk());
        if (peer.value()->state != tee::PartitionState::Ready)
            continue;
        EXPECT_TRUE(peer.value()->stage2.isMapped(g.value()->base));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpmPropertyTest,
                         ::testing::Range<uint64_t>(10, 22));

/* ------------------------------------------------------------------ */
/* Crash-during-stream: no wrong results, ever                         */
/* ------------------------------------------------------------------ */

class CrashStreamTest : public testing::CronusTest,
                        public ::testing::WithParamInterface<int>
{
  protected:
    void SetUp() override { testing::CronusTest::SetUp(); }
};

TEST_P(CrashStreamTest, CrashMidStreamNeverYieldsWrongData)
{
    Rng rng(GetParam());
    auto cpu = makeCpuEnclave().value();
    auto gpu = makeGpuEnclave().value();
    auto channel = std::move(system->connect(cpu, gpu).value());

    auto va = channel->callSync("cuMemAlloc",
                                CudaRuntime::encodeMemAlloc(16));
    uint64_t buf = CudaRuntime::decodeU64Result(va.value()).value();
    std::vector<float> x = {1, 1, 1, 1};
    Bytes x_bytes(reinterpret_cast<uint8_t *>(x.data()),
                  reinterpret_cast<uint8_t *>(x.data()) + 16);
    ASSERT_TRUE(channel->call("cuMemcpyHtoD",
                              CudaRuntime::encodeMemcpyHtoD(
                                  buf, x_bytes)).isOk());

    /* Stream 20 saxpy(1.0) calls; crash after a random prefix. */
    uint32_t one_bits = 0x3f800000;
    int crash_after = 1 + int(rng.nextBelow(18));
    int completed = 0;
    bool failed = false;
    for (int i = 0; i < 20; ++i) {
        if (i == crash_after)
            ASSERT_TRUE(system->injectPanic("gpu0").isOk());
        auto r = channel->call(
            "cuLaunchKernel",
            CudaRuntime::encodeLaunchKernel(
                "saxpy_f32", {one_bits, buf, buf, 4}, 4));
        if (!r.isOk()) {
            EXPECT_EQ(r.code(), ErrorCode::PeerFailed);
            failed = true;
            break;
        }
        ++completed;
    }
    EXPECT_TRUE(failed);

    /* Either the read-back fails with PeerFailed (no stale data) --
     * it must never return a value inconsistent with the number of
     * completed calls. */
    auto out = channel->call("cuMemcpyDtoH",
                             CudaRuntime::encodeMemcpyDtoH(buf, 16));
    EXPECT_EQ(out.code(), ErrorCode::PeerFailed);

    /* Recovery restores service with a clean slate. */
    ASSERT_TRUE(system->recover("gpu0").isOk());
    auto gpu2 = makeGpuEnclave();
    ASSERT_TRUE(gpu2.isOk());
    auto channel2 = system->connect(cpu, gpu2.value());
    ASSERT_TRUE(channel2.isOk());
    EXPECT_TRUE(channel2.value()
                    ->callSync("cuMemAlloc",
                               CudaRuntime::encodeMemAlloc(16))
                    .isOk());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashStreamTest,
                         ::testing::Range(1, 9));

/* ------------------------------------------------------------------ */
/* sRPC configuration sweep                                            */
/* ------------------------------------------------------------------ */

struct SrpcShape
{
    uint64_t slots;
    uint64_t slotBytes;
};

class SrpcConfigTest : public testing::CronusTest,
                       public ::testing::WithParamInterface<SrpcShape>
{
};

TEST_P(SrpcConfigTest, PipelineCorrectUnderAnyRingShape)
{
    auto cpu = makeCpuEnclave().value();
    auto gpu = makeGpuEnclave().value();
    SrpcConfig config;
    config.slots = GetParam().slots;
    config.slotBytes = GetParam().slotBytes;
    auto channel = system->connect(cpu, gpu, config);
    ASSERT_TRUE(channel.isOk()) << channel.status().toString();

    auto va = channel.value()->callSync(
        "cuMemAlloc", CudaRuntime::encodeMemAlloc(16));
    uint64_t buf = CudaRuntime::decodeU64Result(va.value()).value();
    std::vector<float> x = {0, 0, 0, 0};
    Bytes x_bytes(reinterpret_cast<uint8_t *>(x.data()),
                  reinterpret_cast<uint8_t *>(x.data()) + 16);
    ASSERT_TRUE(channel.value()->call(
        "cuMemcpyHtoD",
        CudaRuntime::encodeMemcpyHtoD(buf, x_bytes)).isOk());

    /* 3x the ring depth of fill launches with increasing values;
     * last writer must win. */
    uint64_t n = 3 * config.slots;
    for (uint64_t i = 1; i <= n; ++i) {
        float v = float(i);
        uint32_t bits;
        std::memcpy(&bits, &v, 4);
        ASSERT_TRUE(channel.value()->call(
            "cuLaunchKernel",
            CudaRuntime::encodeLaunchKernel("fill_f32",
                                            {buf, 4, bits},
                                            4)).isOk());
    }
    auto out = channel.value()->call(
        "cuMemcpyDtoH", CudaRuntime::encodeMemcpyDtoH(buf, 16));
    ASSERT_TRUE(out.isOk());
    const float *result =
        reinterpret_cast<const float *>(out.value().data());
    EXPECT_FLOAT_EQ(result[0], float(n));
    ASSERT_TRUE(channel.value()->close().isOk());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SrpcConfigTest,
    ::testing::Values(SrpcShape{2, 1024}, SrpcShape{4, 4096},
                      SrpcShape{8, 65536}, SrpcShape{32, 2048},
                      SrpcShape{64, 1024}),
    [](const ::testing::TestParamInfo<SrpcShape> &info) {
        return "slots" + std::to_string(info.param.slots) + "x" +
               std::to_string(info.param.slotBytes);
    });

/* ------------------------------------------------------------------ */
/* Multi-tenant isolation                                              */
/* ------------------------------------------------------------------ */

TEST(MultiTenantTest, TwoAppsShareTheGpuWithoutLeaks)
{
    Logger::instance().setQuiet(true);
    testing::registerTestCpuFunctions();
    accel::registerBuiltinKernels();
    CronusSystem system;

    struct Tenant
    {
        AppHandle cpu, gpu;
        std::unique_ptr<SrpcChannel> channel;
        uint64_t va = 0;
    };
    Tenant tenants[2];
    for (int i = 0; i < 2; ++i) {
        tenants[i].cpu =
            system.createEnclave(testing::cpuManifest(), "app.so",
                                 testing::cpuImageBytes()).value();
        tenants[i].gpu =
            system.createEnclave(testing::gpuManifest(),
                                 "test.cubin",
                                 testing::gpuImageBytes()).value();
        tenants[i].channel = std::move(
            system.connect(tenants[i].cpu, tenants[i].gpu).value());
        auto va = tenants[i].channel->callSync(
            "cuMemAlloc", CudaRuntime::encodeMemAlloc(16));
        tenants[i].va =
            CudaRuntime::decodeU64Result(va.value()).value();
    }

    /* Each tenant fills its buffer with a distinct value. */
    for (int i = 0; i < 2; ++i) {
        float v = i == 0 ? 111.0f : 222.0f;
        uint32_t bits;
        std::memcpy(&bits, &v, 4);
        ASSERT_TRUE(tenants[i].channel->call(
            "cuLaunchKernel",
            CudaRuntime::encodeLaunchKernel(
                "fill_f32", {tenants[i].va, 4, bits}, 4)).isOk());
    }
    for (int i = 0; i < 2; ++i) {
        auto out = tenants[i].channel->call(
            "cuMemcpyDtoH",
            CudaRuntime::encodeMemcpyDtoH(tenants[i].va, 16));
        ASSERT_TRUE(out.isOk());
        const float *result =
            reinterpret_cast<const float *>(out.value().data());
        EXPECT_FLOAT_EQ(result[0], i == 0 ? 111.0f : 222.0f);
    }

    /* Tenant 0 dereferencing tenant 1's VA faults (same VA value in
     * a different context is unmapped). */
    auto steal = tenants[0].channel->call(
        "cuMemcpyDtoH",
        CudaRuntime::encodeMemcpyDtoH(tenants[1].va + 4096, 16));
    EXPECT_FALSE(steal.isOk());

    /* Distinct enclaves have distinct measurements; same mOS. */
    auto e0 = tenants[0].gpu.host->enclaveManager().enclave(
        tenants[0].gpu.eid).value();
    auto e1 = tenants[1].gpu.host->enclaveManager().enclave(
        tenants[1].gpu.eid).value();
    EXPECT_EQ(crypto::digestHex(e0->measure()),
              crypto::digestHex(e1->measure()));  /* same image */
    EXPECT_NE(tenants[0].gpu.eid, tenants[1].gpu.eid);
    EXPECT_NE(toHex(tenants[0].gpu.secret),
              toHex(tenants[1].gpu.secret));
}

} // namespace
} // namespace cronus::core
