/** Unit tests for the CPU device model. */

#include <gtest/gtest.h>

#include "accel/cpu.hh"

namespace cronus::accel
{
namespace
{

TEST(CpuTest, ContextLifecycle)
{
    CpuDevice cpu;
    auto ctx = cpu.createContext();
    ASSERT_TRUE(ctx.isOk());
    EXPECT_EQ(cpu.contextCount(), 1u);
    EXPECT_TRUE(cpu.destroyContext(ctx.value()).isOk());
    EXPECT_EQ(cpu.destroyContext(ctx.value()).code(),
              ErrorCode::NotFound);
}

TEST(CpuTest, ExecuteRunsBodyAndCharges)
{
    CpuDevice cpu;
    auto ctx = cpu.createContext().value();
    bool ran = false;
    auto cost = cpu.execute(ctx, 1000, [&] {
        ran = true;
        return Status::ok();
    });
    ASSERT_TRUE(cost.isOk());
    EXPECT_TRUE(ran);
    EXPECT_EQ(cost.value(),
              static_cast<SimTime>(1000 * cpu.config().nsPerWorkUnit));
}

TEST(CpuTest, ExecutePropagatesBodyError)
{
    CpuDevice cpu;
    auto ctx = cpu.createContext().value();
    auto r = cpu.execute(ctx, 10, [] {
        return Status(ErrorCode::InvalidArgument, "bad input");
    });
    EXPECT_EQ(r.code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(cpu.execute(99, 10, nullptr).code(),
              ErrorCode::NotFound);
}

TEST(CpuTest, MmioAndAttestation)
{
    CpuDevice cpu;
    EXPECT_EQ(cpu.mmioRead(0x8).value(), cpu.config().cores);
    EXPECT_FALSE(cpu.mmioRead(0x999).isOk());

    Bytes challenge = {5};
    auto sig = cpu.attestConfig(challenge);
    ByteWriter w;
    w.putString(cpu.config().name);
    w.putString("arm,cortex-a53-sim");
    w.putU64(cpu.config().cores);
    w.putBytes(challenge);
    EXPECT_TRUE(crypto::verify(cpu.devicePublicKey(), w.take(), sig));
}

} // namespace
} // namespace cronus::accel
