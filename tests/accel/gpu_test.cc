/** Unit tests for the simulated GPU. */

#include <gtest/gtest.h>

#include <cstring>

#include "accel/builtin_kernels.hh"
#include "accel/gpu.hh"

namespace cronus::accel
{
namespace
{

class GpuTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        registerBuiltinKernels();
        ctx = gpu.createContext().value();
        GpuModuleImage image{"test.cubin",
                             {"fill_f32", "vec_add_f32",
                              "matmul_f32", "reduce_sum_f32"}};
        ASSERT_TRUE(gpu.loadModule(ctx, image).isOk());
    }

    GpuVa
    upload(const std::vector<float> &data)
    {
        GpuVa va = gpu.malloc(ctx, data.size() * 4).value();
        EXPECT_TRUE(gpu.write(ctx, va,
                              reinterpret_cast<const uint8_t *>(
                                  data.data()),
                              data.size() * 4).isOk());
        return va;
    }

    std::vector<float>
    download(GpuVa va, size_t n)
    {
        std::vector<float> out(n);
        EXPECT_TRUE(gpu.read(ctx, va,
                             reinterpret_cast<uint8_t *>(out.data()),
                             n * 4).isOk());
        return out;
    }

    GpuDevice gpu;
    GpuContextId ctx = 0;
};

TEST_F(GpuTest, MallocWriteReadRoundTrip)
{
    std::vector<float> data = {1.5f, -2.0f, 3.25f};
    GpuVa va = upload(data);
    EXPECT_EQ(download(va, 3), data);
}

TEST_F(GpuTest, VecAddKernelComputes)
{
    GpuVa a = upload({1, 2, 3, 4});
    GpuVa b = upload({10, 20, 30, 40});
    GpuVa out = gpu.malloc(ctx, 16).value();
    auto done = gpu.launch(ctx, "vec_add_f32", {a, b, out, 4},
                           LaunchDims{4}, 0);
    ASSERT_TRUE(done.isOk()) << done.status().toString();
    EXPECT_EQ(download(out, 4),
              (std::vector<float>{11, 22, 33, 44}));
}

TEST_F(GpuTest, MatmulKernelComputes)
{
    /* 2x3 * 3x2 */
    GpuVa a = upload({1, 2, 3, 4, 5, 6});
    GpuVa b = upload({7, 8, 9, 10, 11, 12});
    GpuVa c = gpu.malloc(ctx, 4 * 4).value();
    auto done = gpu.launch(ctx, "matmul_f32", {a, b, c, 2, 3, 2},
                           LaunchDims{2 * 3 * 2}, 0);
    ASSERT_TRUE(done.isOk());
    EXPECT_EQ(download(c, 4),
              (std::vector<float>{58, 64, 139, 154}));
}

TEST_F(GpuTest, LaunchRequiresLoadedKernel)
{
    GpuVa buf = gpu.malloc(ctx, 16).value();
    EXPECT_EQ(gpu.launch(ctx, "saxpy_f32", {0, buf, buf, 4},
                         LaunchDims{4}, 0).code(),
              ErrorCode::PermissionDenied);
}

TEST_F(GpuTest, ModuleRejectsUnknownKernel)
{
    GpuModuleImage bad{"bad.cubin", {"no_such_kernel"}};
    EXPECT_EQ(gpu.loadModule(ctx, bad).code(), ErrorCode::NotFound);
}

TEST_F(GpuTest, ContextIsolationBlocksForeignVa)
{
    GpuVa va = upload({1, 2, 3, 4});
    GpuContextId other = gpu.createContext().value();
    uint8_t buf[16];
    /* The same VA in another context is unmapped: isolation. */
    EXPECT_EQ(gpu.read(other, va, buf, 16).code(),
              ErrorCode::AccessFault);
}

TEST_F(GpuTest, KernelCannotReadOutOfBounds)
{
    GpuVa a = upload({1, 2});
    GpuVa b = upload({1, 2});
    GpuVa out = gpu.malloc(ctx, 8).value();
    /* Claim a larger n than allocated: the kernel's span fails. */
    auto r = gpu.launch(ctx, "vec_add_f32", {a, b, out, 1 << 20},
                        LaunchDims{4}, 0);
    EXPECT_EQ(r.code(), ErrorCode::AccessFault);
}

TEST_F(GpuTest, OutOfMemoryReported)
{
    EXPECT_EQ(gpu.malloc(ctx, gpu.config().vramBytes + 1).code(),
              ErrorCode::ResourceExhausted);
}

TEST_F(GpuTest, FreeListReuse)
{
    uint64_t before = gpu.freeVram();
    GpuVa va = gpu.malloc(ctx, 1 << 20).value();
    EXPECT_LT(gpu.freeVram(), before);
    ASSERT_TRUE(gpu.free(ctx, va).isOk());
    EXPECT_EQ(gpu.freeVram(), before);
    /* Reallocation succeeds from the free list. */
    EXPECT_TRUE(gpu.malloc(ctx, 1 << 20).isOk());
}

TEST_F(GpuTest, DestroyContextScrubsVram)
{
    std::vector<float> secret = {42.0f, 43.0f};
    GpuVa va = upload(secret);
    (void)va;
    ASSERT_TRUE(gpu.destroyContext(ctx, true).isOk());

    /* A new context allocating the same VRAM must see zeros. */
    GpuContextId fresh = gpu.createContext().value();
    GpuVa nva = gpu.malloc(fresh, 4096).value();
    std::vector<float> out(2);
    ASSERT_TRUE(gpu.read(fresh, nva,
                         reinterpret_cast<uint8_t *>(out.data()),
                         8).isOk());
    EXPECT_EQ(out, (std::vector<float>{0.0f, 0.0f}));
    ctx = fresh;  /* keep TearDown happy */
}

TEST_F(GpuTest, AsyncTimingAccumulatesOnStream)
{
    GpuVa a = upload(std::vector<float>(1024, 1.0f));
    GpuVa b = upload(std::vector<float>(1024, 2.0f));
    GpuVa out = gpu.malloc(ctx, 4096).value();

    auto t1 = gpu.launch(ctx, "vec_add_f32", {a, b, out, 1024},
                         LaunchDims{1024}, 0);
    ASSERT_TRUE(t1.isOk());
    auto t2 = gpu.launch(ctx, "vec_add_f32", {a, b, out, 1024},
                         LaunchDims{1024}, 0);
    ASSERT_TRUE(t2.isOk());
    EXPECT_GT(t2.value(), t1.value());
    EXPECT_EQ(gpu.streamBusyUntil(ctx), t2.value());
    EXPECT_EQ(gpu.activeContexts(0), 1u);
    EXPECT_EQ(gpu.activeContexts(t2.value()), 0u);
}

TEST_F(GpuTest, SpatialSharingPacksLowUtilizationKernels)
{
    /* Two contexts running u=0.5 kernels concurrently should not
     * slow each other down much (aggregate throughput gain). */
    GpuContextId ctx2 = gpu.createContext().value();
    GpuModuleImage image{"m", {"vec_add_f32"}};
    ASSERT_TRUE(gpu.loadModule(ctx2, image).isOk());

    GpuVa a1 = upload(std::vector<float>(1024, 1.0f));
    GpuVa o1 = gpu.malloc(ctx, 4096).value();
    GpuVa a2 = gpu.malloc(ctx2, 4096).value();
    GpuVa o2 = gpu.malloc(ctx2, 4096).value();

    auto solo = gpu.launch(ctx, "vec_add_f32", {a1, a1, o1, 1024},
                           LaunchDims{1024}, 0);
    ASSERT_TRUE(solo.isOk());
    SimTime solo_duration = solo.value();

    /* Launch on ctx2 while ctx is still busy. */
    auto packed = gpu.launch(ctx2, "vec_add_f32", {a2, a2, o2, 1024},
                             LaunchDims{1024}, 0);
    ASSERT_TRUE(packed.isOk());
    SimTime packed_duration = packed.value();

    /* u=0.5+0.5=1.0: no dilation beyond the contention penalty. */
    EXPECT_LT(packed_duration,
              static_cast<SimTime>(solo_duration * 1.2));
}

TEST_F(GpuTest, MmioRegisters)
{
    EXPECT_EQ(gpu.mmioRead(0x0).value(), 0x47505553u);
    EXPECT_EQ(gpu.mmioRead(0x8).value(), 1u);
    EXPECT_FALSE(gpu.mmioRead(0x9999).isOk());
    EXPECT_TRUE(gpu.mmioWrite(0x0, 1).isOk());
    EXPECT_FALSE(gpu.mmioWrite(0x9999, 1).isOk());
}

TEST_F(GpuTest, AttestationSignatureVerifies)
{
    Bytes challenge = {1, 2, 3};
    auto sig = gpu.attestConfig(challenge);
    ByteWriter w;
    w.putString(gpu.config().name);
    w.putString("nvidia,gtx2080-sim");
    w.putU64(gpu.config().vramBytes);
    w.putBytes(challenge);
    EXPECT_TRUE(crypto::verify(gpu.devicePublicKey(), w.take(), sig));
}

TEST_F(GpuTest, ModuleImageSerializationRoundTrip)
{
    GpuModuleImage image{"net.cubin", {"a", "b", "c"}};
    auto back = GpuModuleImage::deserialize(image.serialize());
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value().name, "net.cubin");
    EXPECT_EQ(back.value().kernels,
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_FALSE(GpuModuleImage::deserialize(Bytes{1}).isOk());
}

} // namespace
} // namespace cronus::accel
