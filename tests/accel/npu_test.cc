/** Unit tests for the simulated VTA-style NPU. */

#include <gtest/gtest.h>

#include "accel/npu.hh"

namespace cronus::accel
{
namespace
{

class NpuTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ctx = npu.createContext().value();
    }

    NpuDevice npu;
    NpuContextId ctx = 0;
};

NpuInsn
loadInsn(uint32_t buffer, NpuBank bank, uint64_t len)
{
    NpuInsn insn;
    insn.op = NpuOp::Load;
    insn.buffer = buffer;
    insn.bank = bank;
    insn.length = len;
    return insn;
}

TEST_F(NpuTest, BufferRoundTrip)
{
    uint32_t buf = npu.allocBuffer(ctx, 64).value();
    std::vector<uint8_t> data = {1, 2, 3, 4};
    ASSERT_TRUE(npu.writeBuffer(ctx, buf, 0, data.data(), 4).isOk());
    std::vector<uint8_t> out(4);
    ASSERT_TRUE(npu.readBuffer(ctx, buf, 0, out.data(), 4).isOk());
    EXPECT_EQ(out, data);
}

TEST_F(NpuTest, BufferBoundsChecked)
{
    uint32_t buf = npu.allocBuffer(ctx, 16).value();
    uint8_t b = 0;
    EXPECT_EQ(npu.writeBuffer(ctx, buf, 16, &b, 1).code(),
              ErrorCode::AccessFault);
    EXPECT_EQ(npu.readBuffer(ctx, buf, 12, &b, 8).code(),
              ErrorCode::AccessFault);
    EXPECT_EQ(npu.writeBuffer(ctx, 999, 0, &b, 1).code(),
              ErrorCode::NotFound);
}

TEST_F(NpuTest, GemmComputesInt8MatMul)
{
    /* inp: 2x3 (rows x inner), wgt: 2x3 (cols x inner),
     * result acc[2x2][i,j] = sum_k inp[i,k]*wgt[j,k]. */
    uint32_t in_buf = npu.allocBuffer(ctx, 6).value();
    uint32_t w_buf = npu.allocBuffer(ctx, 6).value();
    uint32_t out_buf = npu.allocBuffer(ctx, 4).value();

    int8_t inp[6] = {1, 2, 3, 4, 5, 6};
    int8_t wgt[6] = {1, 0, 1, 0, 1, 0};
    ASSERT_TRUE(npu.writeBuffer(ctx, in_buf, 0,
                                reinterpret_cast<uint8_t *>(inp),
                                6).isOk());
    ASSERT_TRUE(npu.writeBuffer(ctx, w_buf, 0,
                                reinterpret_cast<uint8_t *>(wgt),
                                6).isOk());

    NpuProgram prog;
    prog.insns.push_back(loadInsn(in_buf, NpuBank::Input, 6));
    prog.insns.push_back(loadInsn(w_buf, NpuBank::Weight, 6));
    NpuInsn gemm;
    gemm.op = NpuOp::Gemm;
    gemm.rows = 2;
    gemm.cols = 2;
    gemm.inner = 3;
    gemm.resetAccum = true;
    prog.insns.push_back(gemm);
    NpuInsn store;
    store.op = NpuOp::Store;
    store.buffer = out_buf;
    store.length = 4;
    prog.insns.push_back(store);

    auto done = npu.run(ctx, prog, 0);
    ASSERT_TRUE(done.isOk()) << done.status().toString();
    EXPECT_GT(done.value(), 0u);

    int8_t out[4];
    ASSERT_TRUE(npu.readBuffer(ctx, out_buf, 0,
                               reinterpret_cast<uint8_t *>(out),
                               4).isOk());
    /* row0: [1,2,3].[1,0,1]=4, [1,2,3].[0,1,0]=2
     * row1: [4,5,6].[1,0,1]=10, [4,5,6].[0,1,0]=5 */
    EXPECT_EQ(out[0], 4);
    EXPECT_EQ(out[1], 2);
    EXPECT_EQ(out[2], 10);
    EXPECT_EQ(out[3], 5);
}

TEST_F(NpuTest, AluReluClampsNegative)
{
    uint32_t in_buf = npu.allocBuffer(ctx, 2).value();
    uint32_t out_buf = npu.allocBuffer(ctx, 1).value();
    int8_t inp[2] = {-3, 1};
    int8_t wgt_unused[1] = {0};
    (void)wgt_unused;
    ASSERT_TRUE(npu.writeBuffer(ctx, in_buf, 0,
                                reinterpret_cast<uint8_t *>(inp),
                                2).isOk());

    NpuProgram prog;
    prog.insns.push_back(loadInsn(in_buf, NpuBank::Input, 2));
    uint32_t w_buf = npu.allocBuffer(ctx, 2).value();
    int8_t wgt[2] = {1, 1};
    ASSERT_TRUE(npu.writeBuffer(ctx, w_buf, 0,
                                reinterpret_cast<uint8_t *>(wgt),
                                2).isOk());
    prog.insns.push_back(loadInsn(w_buf, NpuBank::Weight, 2));
    NpuInsn gemm;
    gemm.op = NpuOp::Gemm;
    gemm.rows = 1;
    gemm.cols = 1;
    gemm.inner = 2;
    gemm.resetAccum = true;
    prog.insns.push_back(gemm);  /* acc[0] = -3 + 1 = -2 */
    NpuInsn relu;
    relu.op = NpuOp::Alu;
    relu.aluOp = NpuAluOp::Relu;
    relu.aluElems = 1;
    prog.insns.push_back(relu);
    NpuInsn store;
    store.op = NpuOp::Store;
    store.buffer = out_buf;
    store.length = 1;
    prog.insns.push_back(store);

    ASSERT_TRUE(npu.run(ctx, prog, 0).isOk());
    int8_t out;
    ASSERT_TRUE(npu.readBuffer(ctx, out_buf, 0,
                               reinterpret_cast<uint8_t *>(&out),
                               1).isOk());
    EXPECT_EQ(out, 0);
}

TEST_F(NpuTest, StoreClampsToInt8)
{
    uint32_t in_buf = npu.allocBuffer(ctx, 1).value();
    uint32_t w_buf = npu.allocBuffer(ctx, 1).value();
    uint32_t out_buf = npu.allocBuffer(ctx, 1).value();
    int8_t big_a = 100, big_b = 100;
    ASSERT_TRUE(npu.writeBuffer(ctx, in_buf, 0,
                                reinterpret_cast<uint8_t *>(&big_a),
                                1).isOk());
    ASSERT_TRUE(npu.writeBuffer(ctx, w_buf, 0,
                                reinterpret_cast<uint8_t *>(&big_b),
                                1).isOk());
    NpuProgram prog;
    prog.insns.push_back(loadInsn(in_buf, NpuBank::Input, 1));
    prog.insns.push_back(loadInsn(w_buf, NpuBank::Weight, 1));
    NpuInsn gemm;
    gemm.op = NpuOp::Gemm;
    gemm.rows = gemm.cols = gemm.inner = 1;
    gemm.resetAccum = true;
    prog.insns.push_back(gemm);  /* acc = 10000 */
    NpuInsn store;
    store.op = NpuOp::Store;
    store.buffer = out_buf;
    store.length = 1;
    prog.insns.push_back(store);
    ASSERT_TRUE(npu.run(ctx, prog, 0).isOk());
    int8_t out;
    ASSERT_TRUE(npu.readBuffer(ctx, out_buf, 0,
                               reinterpret_cast<uint8_t *>(&out),
                               1).isOk());
    EXPECT_EQ(out, 127);
}

TEST_F(NpuTest, ProgramFaultsReported)
{
    NpuProgram prog;
    NpuInsn bad;
    bad.op = NpuOp::Load;
    bad.buffer = 42;
    bad.bank = NpuBank::Input;
    bad.length = 1;
    prog.insns.push_back(bad);
    EXPECT_EQ(npu.run(ctx, prog, 0).code(), ErrorCode::NotFound);

    NpuProgram oob;
    NpuInsn gemm;
    gemm.op = NpuOp::Gemm;
    gemm.rows = 1 << 16;
    gemm.cols = 1 << 16;
    gemm.inner = 1;
    oob.insns.push_back(gemm);
    EXPECT_EQ(npu.run(ctx, oob, 0).code(), ErrorCode::AccessFault);
}

TEST_F(NpuTest, ContextIsolation)
{
    uint32_t buf = npu.allocBuffer(ctx, 16).value();
    NpuContextId other = npu.createContext().value();
    uint8_t b;
    /* Buffer ids are per-context; the same id is absent elsewhere. */
    EXPECT_EQ(npu.readBuffer(other, buf, 0, &b, 1).code(),
              ErrorCode::NotFound);
}

TEST_F(NpuTest, DramQuotaEnforced)
{
    EXPECT_EQ(npu.allocBuffer(ctx, npu.config().dramBytes + 1).code(),
              ErrorCode::ResourceExhausted);
}

TEST_F(NpuTest, TimingScalesWithWork)
{
    auto run_gemm = [&](uint32_t dim) {
        NpuProgram prog;
        NpuInsn gemm;
        gemm.op = NpuOp::Gemm;
        gemm.rows = gemm.cols = dim;
        gemm.inner = dim;
        gemm.resetAccum = true;
        prog.insns.push_back(gemm);
        NpuContextId c = npu.createContext().value();
        SimTime start = 0;
        auto done = npu.run(c, prog, start);
        EXPECT_TRUE(done.isOk());
        return done.value();
    };
    SimTime small = run_gemm(8);
    SimTime large = run_gemm(32);
    EXPECT_GT(large, small);
}

TEST_F(NpuTest, AttestationSignatureVerifies)
{
    Bytes challenge = {9, 9};
    auto sig = npu.attestConfig(challenge);
    ByteWriter w;
    w.putString(npu.config().name);
    w.putString("tvm,vta-fsim");
    w.putU64(npu.config().sramBytes);
    w.putBytes(challenge);
    EXPECT_TRUE(crypto::verify(npu.devicePublicKey(), w.take(), sig));
}

} // namespace
} // namespace cronus::accel
