/**
 * @file
 * Coverage-guided seed scheduler tests: the corpus evolution must be
 * a pure function of (options, feedback), equivalent scenarios must
 * dedup to one scheduled run, and every scheduled seed must replay
 * to the identical scenario -- otherwise "scheduled seed #137 failed
 * in CI" is not reproducible locally.
 */

#include <gtest/gtest.h>

#include <set>

#include "fuzz/fuzz.hh"
#include "fuzz/scheduler.hh"

using namespace cronus;
using namespace cronus::fuzz;

TEST(FuzzScheduler, CorpusEvolutionIsDeterministic)
{
    std::vector<uint64_t> a = scheduleCorpus(60);
    std::vector<uint64_t> b = scheduleCorpus(60);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 60u);

    /* Two live schedulers fed the same edges issue the same seeds. */
    SeedScheduler s1, s2;
    for (int i = 0; i < 40; ++i) {
        uint64_t seed1 = s1.next();
        uint64_t seed2 = s2.next();
        ASSERT_EQ(seed1, seed2) << "diverged at step " << i;
        CoverageSet edges = scenarioEdges(generateScenario(seed1));
        s1.feedback(seed1, edges);
        s2.feedback(seed2, edges);
    }
    EXPECT_EQ(s1.edgesCovered(), s2.edgesCovered());
    EXPECT_EQ(s1.deduped(), s2.deduped());
}

TEST(FuzzScheduler, ChildSeedsAreStableAndDistinct)
{
    EXPECT_EQ(SeedScheduler::childSeed(42, 0),
              SeedScheduler::childSeed(42, 0));
    std::set<uint64_t> kids;
    for (uint32_t k = 0; k < 16; ++k) {
        kids.insert(SeedScheduler::childSeed(42, k));
        kids.insert(SeedScheduler::childSeed(43, k));
    }
    EXPECT_EQ(kids.size(), 32u);
}

TEST(FuzzScheduler, InterestingSeedsSpawnChildrenFirst)
{
    SchedulerOptions opts;
    opts.childrenPerParent = 2;
    opts.maxSkipsPerNext = 0;  /* isolate the queueing logic */
    SeedScheduler sched(opts);

    uint64_t first = sched.next();
    EXPECT_EQ(first, opts.baseSeed);
    sched.feedback(first, {0xdead, 0xbeef});  /* both new: spawn */
    EXPECT_EQ(sched.next(), SeedScheduler::childSeed(first, 0));
    EXPECT_EQ(sched.next(), SeedScheduler::childSeed(first, 1));
    /* Queue drained: back to the sequential frontier. */
    EXPECT_EQ(sched.next(), opts.baseSeed + 1);
}

TEST(FuzzScheduler, BoringSeedsSpawnNothing)
{
    SchedulerOptions opts;
    opts.maxSkipsPerNext = 0;
    SeedScheduler sched(opts);
    uint64_t first = sched.next();
    sched.feedback(first, {0x1});
    uint64_t child = sched.next();
    /* The child re-covers the same edge: no grandchildren. */
    sched.feedback(child, {0x1});
    EXPECT_EQ(sched.next(), SeedScheduler::childSeed(first, 1));
    EXPECT_EQ(sched.next(), SeedScheduler::childSeed(first, 2));
    EXPECT_EQ(sched.next(), opts.baseSeed + 1);
}

TEST(FuzzScheduler, FingerprintIgnoresSeedButSeesStructure)
{
    Scenario sc = generateScenario(7);
    Scenario same = sc;
    same.seed = 99999;  /* seed is provenance, not structure */
    EXPECT_EQ(scenarioFingerprint(sc), scenarioFingerprint(same));

    Scenario mutated = sc;
    ASSERT_FALSE(mutated.ops.empty());
    mutated.ops.pop_back();
    EXPECT_NE(scenarioFingerprint(sc), scenarioFingerprint(mutated));

    Scenario retargeted = sc;
    retargeted.ops[0].a ^= 1;
    EXPECT_NE(scenarioFingerprint(sc),
              scenarioFingerprint(retargeted));
}

TEST(FuzzScheduler, ScheduledCorpusContainsNoEquivalentScenarios)
{
    std::set<uint64_t> fingerprints;
    for (uint64_t seed : scheduleCorpus(80)) {
        uint64_t fp = scenarioFingerprint(generateScenario(seed));
        EXPECT_TRUE(fingerprints.insert(fp).second)
            << "seed " << seed << " duplicates a scheduled scenario";
    }
}

TEST(FuzzScheduler, DedupSkipsSeedsWithSeenFingerprints)
{
    /* Force a collision: pre-claim seed 2's fingerprint by feeding
     * it through a scheduler whose frontier starts at 2, then walk a
     * fresh scheduler past seed 2 -- it must be skipped. */
    SchedulerOptions at2;
    at2.baseSeed = 2;
    SeedScheduler probe(at2);
    uint64_t two = probe.next();
    ASSERT_EQ(two, 2u);

    SeedScheduler sched;
    std::vector<uint64_t> first3;
    for (int i = 0; i < 3; ++i) {
        uint64_t s = sched.next();
        first3.push_back(s);
        /* No feedback: pure sequential walk with dedup only. */
    }
    EXPECT_EQ(first3, (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_EQ(sched.deduped(), 0u);
    EXPECT_EQ(sched.scheduled(), 3u);
}

TEST(FuzzScheduler, ScheduledSeedsReplayStably)
{
    /* Replay contract: a scheduled seed alone regenerates the very
     * scenario the schedule ran, byte for byte. */
    for (uint64_t seed : scheduleCorpus(40)) {
        Scenario once = generateScenario(seed);
        Scenario again = generateScenario(seed);
        EXPECT_EQ(once.toJson().dump(), again.toJson().dump())
            << "seed " << seed;
        EXPECT_EQ(scenarioEdges(once), scenarioEdges(again))
            << "seed " << seed;
    }
}

TEST(FuzzScheduler, EdgesSeparateGrammarFamilies)
{
    /* behaviour edges must not collide across (kind, code, blocked)
     * triples -- they steer the schedule. */
    std::set<uint64_t> edges;
    for (OpKind kind :
         {OpKind::GpuVecAdd, OpKind::AttackShootdownToctou,
          OpKind::AttackStaleAttestation}) {
        for (const char *code : {"Ok", "AccessFault", "AuthFailed"}) {
            edges.insert(behaviorEdge(kind, code, false));
            edges.insert(behaviorEdge(kind, code, true));
        }
    }
    EXPECT_EQ(edges.size(), 18u);

    /* Static edges react to every structural family. */
    Scenario sc = generateScenario(5);
    CoverageSet base = scenarioEdges(sc);
    EXPECT_FALSE(base.empty());
    Scenario other = sc;
    other.numGpus = sc.numGpus == 1 ? 2 : 1;
    EXPECT_NE(base, scenarioEdges(other));
}

TEST(FuzzScheduler, ScheduledCorpusPassesOracles)
{
    /* The evolved corpus is a drop-in for defaultCorpus: every
     * scheduled seed must hold up against the full oracle stack. */
    for (uint64_t seed : scheduleCorpus(10)) {
        FuzzReport rep = fuzzSeed(seed);
        EXPECT_TRUE(rep.ok) << "scheduled seed " << seed;
    }
}
