/**
 * @file
 * Fleet-dialect fuzzer regressions: the migration-window kill
 * matrix (every migration stage x killing source or destination)
 * must converge -- exactly one live copy, or a fleet re-placement
 * with zero acked-call loss -- on BOTH isolation backends, and the
 * cluster scenario grammar must round-trip and keep single-node
 * documents byte-identical.
 */

#include <gtest/gtest.h>

#include "fuzz/fuzz.hh"

using namespace cronus;
using namespace cronus::fuzz;

namespace
{

const char *const kStages[] = {"snapshot", "reattest", "transfer",
                               "restore",  "replay",   "retire"};

/**
 * Three nodes, one enclave (placed on node 0), a call/checkpoint
 * preamble so the migration has both a watermark and a non-empty
 * journal, one migration to node 1, and post-migration calls whose
 * totals prove no acked call was lost.
 */
Scenario
migrationKillScenario(const std::string &stage, bool kill_dst)
{
    Scenario sc;
    sc.seed = 1;
    sc.numNodes = 3;
    sc.numGpus = 0;
    sc.withNpu = false;
    EnclavePlan plan;
    plan.deviceType = "cpu";
    plan.deviceName = "cpu";
    plan.elems = 0;
    sc.enclaves.push_back(plan);

    FaultSpec f;
    f.kind = FaultSpec::Kind::MigrationKill;
    f.nth = 1;
    f.stage = stage;
    f.killDst = kill_dst;
    sc.faults.push_back(f);

    auto push = [&sc](OpKind kind, uint64_t a = 0) {
        ScenarioOp op;
        op.kind = kind;
        op.enclave = 0;
        op.a = a;
        sc.ops.push_back(op);
    };
    push(OpKind::FleetCall, 10);
    push(OpKind::FleetCall, 20);
    push(OpKind::FleetCheckpoint);
    push(OpKind::FleetCall, 5);
    push(OpKind::Migrate, 1);  // node 1
    push(OpKind::FleetCall, 7);
    push(OpKind::FleetCall, 3);
    return sc;
}

class ClusterOpsTest
    : public ::testing::TestWithParam<tee::BackendSelect>
{
};

INSTANTIATE_TEST_SUITE_P(
    Backends, ClusterOpsTest,
    ::testing::Values(tee::BackendSelect::Tz,
                      tee::BackendSelect::Pmp),
    [](const ::testing::TestParamInfo<tee::BackendSelect> &info) {
        return std::string(
            tee::backendName(tee::resolveBackend(info.param)));
    });

} // namespace

TEST_P(ClusterOpsTest, MigrationWindowKillConvergesAtEveryStage)
{
    for (const char *stage : kStages) {
        for (bool kill_dst : {false, true}) {
            SCOPED_TRACE(std::string("stage=") + stage +
                         (kill_dst ? " kill=dst" : " kill=src"));
            Scenario sc = migrationKillScenario(stage, kill_dst);
            RunOptions ro;
            ro.withFaults = true;
            ro.backend = GetParam();
            RunReport rep = runScenario(sc, ro);
            ASSERT_TRUE(rep.setupOk) << rep.setupError;

            /* The kill really landed inside the migration window. */
            EXPECT_NE(rep.decisions.dump().find("fleet-fault"),
                      std::string::npos);
            ASSERT_EQ(rep.migrationOutcomes.size(), 1u);

            /* Convergence: one live copy (or a fleet re-placement);
             * never zero, never two. */
            EXPECT_TRUE(rep.migrationConsistent)
                << rep.migrationOutcomes.front();

            /* Liveness + zero acked-call loss: the enclave survived
             * and every FleetCall stayed exact -- the last call's
             * running total is 10+20+5+7+3 regardless of which node
             * died when. */
            ASSERT_EQ(rep.finalDrain.size(), 1u);
            EXPECT_EQ(rep.finalDrain.front(), "Ok");
            const OpRecord &last = rep.records.back();
            ASSERT_EQ(last.kind, OpKind::FleetCall);
            EXPECT_EQ(last.code, "Ok");
            ByteReader r(last.output);
            EXPECT_EQ(r.getU64().value(), 45u);
        }
    }
}

TEST(ClusterOpsOracleTest, FullOracleHoldsAcrossKillMatrix)
{
    FuzzOptions opts;
    opts.shrink = false;
    for (const char *stage : kStages) {
        for (bool kill_dst : {false, true}) {
            SCOPED_TRACE(std::string("stage=") + stage +
                         (kill_dst ? " kill=dst" : " kill=src"));
            FuzzReport rep = fuzzScenario(
                migrationKillScenario(stage, kill_dst), opts);
            EXPECT_TRUE(rep.ok)
                << (rep.failures.empty()
                        ? "?"
                        : rep.failures.front().oracle + ": " +
                              rep.failures.front().detail);
        }
    }
}

TEST(ClusterOpsOracleTest, BackendsAgreeOnMigrationKills)
{
    for (const char *stage : {"snapshot", "transfer", "retire"}) {
        for (bool kill_dst : {false, true}) {
            SCOPED_TRACE(std::string("stage=") + stage +
                         (kill_dst ? " kill=dst" : " kill=src"));
            DiffReport rep = diffBackends(
                migrationKillScenario(stage, kill_dst));
            EXPECT_TRUE(rep.ok)
                << (rep.divergences.empty()
                        ? "?"
                        : rep.divergences.front());
        }
    }
}

TEST(ClusterOpsOracleTest, GeneratedClusterSeedsPassOracles)
{
    FuzzOptions opts;
    opts.shrink = false;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        FuzzReport rep =
            fuzzScenario(generateClusterScenario(seed), opts);
        EXPECT_TRUE(rep.ok)
            << (rep.failures.empty()
                    ? "?"
                    : rep.failures.front().oracle + ": " +
                          rep.failures.front().detail);
    }
}

TEST(ClusterScenarioTest, ClusterScenarioRoundTripsThroughJson)
{
    Scenario sc = generateClusterScenario(42);
    ASSERT_GT(sc.numNodes, 1u);
    auto parsed = Scenario::parse(sc.toJson().dump());
    ASSERT_TRUE(parsed.isOk()) << parsed.status().toString();
    EXPECT_EQ(parsed.value().numNodes, sc.numNodes);
    EXPECT_EQ(parsed.value().toJson().dump(), sc.toJson().dump());
}

TEST(ClusterScenarioTest, GenerationIsDeterministicPerSeed)
{
    EXPECT_EQ(generateClusterScenario(7).toJson().dump(),
              generateClusterScenario(7).toJson().dump());
    EXPECT_NE(generateClusterScenario(7).toJson().dump(),
              generateClusterScenario(8).toJson().dump());
}

TEST(ClusterScenarioTest, SingleNodeDocumentsStayByteIdentical)
{
    /* The fleet fields serialize only when meaningful: a classic
     * single-node scenario must not grow a num_nodes key (replay
     * corpora and CI double-run byte-diffs depend on it). */
    Scenario sc = generateScenario(3);
    EXPECT_EQ(sc.numNodes, 1u);
    EXPECT_EQ(sc.toJson().dump().find("num_nodes"),
              std::string::npos);
}
