/**
 * @file
 * Targeted regressions for the three attack idioms added to the
 * fuzzer grammar: TLB-shootdown TOCTOU, stale-attestation replay and
 * SMMU stream-reuse confused deputy. Each idiom runs as a
 * hand-built scenario on BOTH isolation backends -- the defense must
 * hold on TrustZone and PMP alike, and diffBackends must see no
 * verdict divergence on any of them.
 */

#include <gtest/gtest.h>

#include "fuzz/fuzz.hh"

using namespace cronus;
using namespace cronus::fuzz;

namespace
{

/* One GPU enclave, no pipe, no faults: the minimal host for an
 * attack op that needs a peer partition. */
Scenario
attackScenario(OpKind kind, uint64_t a = 0)
{
    Scenario sc;
    sc.seed = 1;
    sc.numGpus = 1;
    EnclavePlan plan;
    plan.deviceType = "gpu";
    plan.deviceName = "gpu0";
    sc.enclaves.push_back(plan);
    ScenarioOp op;
    op.kind = kind;
    op.enclave = 0;
    op.a = a;
    sc.ops.push_back(op);
    return sc;
}

RunReport
runOn(const Scenario &sc, tee::BackendSelect backend)
{
    RunOptions opts;
    opts.backend = backend;
    return runScenario(sc, opts);
}

class AttackOpTest
    : public ::testing::TestWithParam<tee::BackendSelect>
{
};

INSTANTIATE_TEST_SUITE_P(
    Backends, AttackOpTest,
    ::testing::Values(tee::BackendSelect::Tz,
                      tee::BackendSelect::Pmp),
    [](const ::testing::TestParamInfo<tee::BackendSelect> &info) {
        return std::string(
            tee::backendName(tee::resolveBackend(info.param)));
    });

} // namespace

TEST_P(AttackOpTest, ShootdownToctouStaleReadFaults)
{
    Scenario sc = attackScenario(OpKind::AttackShootdownToctou);
    RunReport rep = runOn(sc, GetParam());
    ASSERT_TRUE(rep.setupOk) << rep.setupError;
    ASSERT_EQ(rep.records.size(), 1u);
    /* The heated stage-2 entry must not survive the revoke: the
     * post-revoke read through the stale translation faults. */
    EXPECT_EQ(rep.records[0].code, "AccessFault");
    EXPECT_TRUE(rep.records[0].blocked);
    EXPECT_FALSE(rep.records[0].tainted);
}

TEST_P(AttackOpTest, StaleAttestationReplayFailsFreshness)
{
    Scenario sc =
        attackScenario(OpKind::AttackStaleAttestation, 0x1234);
    RunReport rep = runOn(sc, GetParam());
    ASSERT_TRUE(rep.setupOk) << rep.setupError;
    ASSERT_EQ(rep.records.size(), 1u);
    /* A report bound to a stale challenge must fail the verifier's
     * freshness check, not merely a signature check. */
    EXPECT_EQ(rep.records[0].code, "AuthFailed");
    EXPECT_TRUE(rep.records[0].blocked);
}

TEST_P(AttackOpTest, SmmuStreamReuseDmaIsConfined)
{
    Scenario sc = attackScenario(OpKind::AttackSmmuStreamReuse);
    RunReport rep = runOn(sc, GetParam());
    ASSERT_TRUE(rep.setupOk) << rep.setupError;
    ASSERT_EQ(rep.records.size(), 1u);
    /* The deputy device's DMA aimed at the driver partition must be
     * stopped by SMMU translation, not pass through. */
    EXPECT_EQ(rep.records[0].code, "AccessFault");
    EXPECT_TRUE(rep.records[0].blocked);
}

TEST(AttackOps, AllThreeSurviveTheOracleStack)
{
    Scenario sc = attackScenario(OpKind::AttackShootdownToctou);
    ScenarioOp stale;
    stale.kind = OpKind::AttackStaleAttestation;
    stale.a = 7;
    sc.ops.push_back(stale);
    ScenarioOp smmu;
    smmu.kind = OpKind::AttackSmmuStreamReuse;
    smmu.enclave = 0;
    sc.ops.push_back(smmu);

    FuzzOptions opts;
    opts.shrink = false;
    FuzzReport rep = fuzzScenario(sc, opts);
    EXPECT_TRUE(rep.ok)
        << (rep.failures.empty()
                ? "(none)"
                : rep.failures[0].oracle + ": " +
                      rep.failures[0].detail);
}

TEST(AttackOps, ScenarioJsonRoundTripsNewOpNames)
{
    Scenario sc = attackScenario(OpKind::AttackShootdownToctou);
    ScenarioOp stale;
    stale.kind = OpKind::AttackStaleAttestation;
    stale.a = 0xabcd;
    sc.ops.push_back(stale);
    ScenarioOp smmu;
    smmu.kind = OpKind::AttackSmmuStreamReuse;
    smmu.enclave = 0;
    sc.ops.push_back(smmu);

    std::string text = sc.toJson().dump();
    EXPECT_NE(text.find("attack_shootdown_toctou"),
              std::string::npos);
    EXPECT_NE(text.find("attack_stale_attestation"),
              std::string::npos);
    EXPECT_NE(text.find("attack_smmu_stream_reuse"),
              std::string::npos);
    auto back = Scenario::parse(text);
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value().toJson().dump(), text);
}

TEST(AttackOps, VerdictsAgreeAcrossBackends)
{
    for (OpKind kind :
         {OpKind::AttackShootdownToctou,
          OpKind::AttackStaleAttestation,
          OpKind::AttackSmmuStreamReuse}) {
        Scenario sc = attackScenario(kind, 0x99);
        DiffReport rep = diffBackends(sc);
        EXPECT_TRUE(rep.ok)
            << "op kind " << static_cast<int>(kind) << ": "
            << (rep.divergences.empty() ? "(none)"
                                        : rep.divergences[0]);
    }
}
