/**
 * @file
 * Fuzz --jobs determinism: each seed owns its own simulated
 * universe, so running a corpus on several host threads must
 * produce exactly the per-seed verdicts of the sequential walk.
 * This is the in-process version of the fuzz_runner --jobs CI
 * byte-diff (which compares whole verdict files).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "base/parallel.hh"
#include "fuzz/fuzz.hh"

using namespace cronus;
using namespace cronus::fuzz;

namespace
{

struct Verdict
{
    uint64_t seed = 0;
    bool ok = false;
    std::set<std::string> oracles;

    bool
    operator==(const Verdict &o) const
    {
        return seed == o.seed && ok == o.ok && oracles == o.oracles;
    }
};

Verdict
verdictOf(uint64_t seed, const FuzzReport &rep)
{
    Verdict v;
    v.seed = seed;
    v.ok = rep.ok;
    for (const FuzzFailure &f : rep.failures)
        v.oracles.insert(f.oracle);
    return v;
}

std::vector<Verdict>
runCorpus(const std::vector<uint64_t> &seeds, unsigned jobs,
          bool cluster)
{
    FuzzOptions opts;
    opts.shrink = false;  // shrinking is slow and verdict-neutral
    std::vector<FuzzReport> reports(seeds.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(seeds.size());
    for (size_t i = 0; i < seeds.size(); ++i)
        tasks.push_back([&, i] {
            reports[i] =
                cluster
                    ? fuzzScenario(generateClusterScenario(seeds[i]),
                                   opts)
                    : fuzzSeed(seeds[i], opts);
        });
    runTasks(jobs, tasks);
    std::vector<Verdict> out;
    out.reserve(seeds.size());
    for (size_t i = 0; i < seeds.size(); ++i)
        out.push_back(verdictOf(seeds[i], reports[i]));
    return out;
}

TEST(FuzzJobsTest, SingleNodeVerdictsMatchSerial)
{
    std::vector<uint64_t> seeds;
    for (uint64_t s = 1; s <= 8; ++s)
        seeds.push_back(s);
    const auto serial = runCorpus(seeds, 1, false);
    const auto parallel = runCorpus(seeds, 4, false);
    EXPECT_EQ(parallel, serial);
    for (const Verdict &v : serial)
        EXPECT_TRUE(v.ok) << "seed=" << v.seed;
}

TEST(FuzzJobsTest, ClusterVerdictsMatchSerial)
{
    std::vector<uint64_t> seeds;
    for (uint64_t s = 1; s <= 6; ++s)
        seeds.push_back(s);
    const auto serial = runCorpus(seeds, 1, true);
    const auto parallel = runCorpus(seeds, 4, true);
    EXPECT_EQ(parallel, serial);
}

} // namespace
