/**
 * @file
 * Fuzz-loop acceptance tests: seed -> scenario determinism, trace
 * byte-for-byte replayability, the fixed seed corpus, and the
 * planted-bug end-to-end check (the reference oracle must catch the
 * bug and the shrinker must reduce it to a handful of ops).
 */

#include <gtest/gtest.h>

#include "fuzz/fuzz.hh"
#include "fuzz/shrinker.hh"

using namespace cronus;
using namespace cronus::fuzz;

namespace
{

std::string
firstFailure(const FuzzReport &rep)
{
    if (rep.failures.empty())
        return "(none)";
    return rep.failures[0].oracle + ": " + rep.failures[0].detail;
}

} // namespace

TEST(FuzzScenario, GeneratorIsDeterministic)
{
    Scenario a = generateScenario(42);
    Scenario b = generateScenario(42);
    EXPECT_EQ(a.toJson().dump(), b.toJson().dump());
    Scenario c = generateScenario(43);
    EXPECT_NE(a.toJson().dump(), c.toJson().dump());
}

TEST(FuzzScenario, JsonRoundTrips)
{
    for (uint64_t seed : {1ULL, 5ULL, 7ULL, 12ULL, 31ULL}) {
        Scenario sc = generateScenario(seed);
        std::string text = sc.toJson().dump();
        auto back = Scenario::parse(text);
        ASSERT_TRUE(back.isOk()) << "seed " << seed;
        EXPECT_EQ(back.value().toJson().dump(), text)
            << "seed " << seed;
    }
}

/* Churn ops against the live-count reference model: creates report
 * the count after, destroy-with-none-live is InvalidState, and the
 * final grant/TLB bookkeeping stays clean (finalCheck). */
TEST(FuzzScenario, ChurnOpsMatchLiveCountModel)
{
    Scenario sc;
    sc.seed = 1;
    sc.numGpus = 1;
    EnclavePlan plan;
    plan.deviceType = "gpu";
    plan.deviceName = "gpu0";
    sc.enclaves.push_back(plan);
    sc.ops = {
        {OpKind::ChurnDestroy, 0},  /* nothing live yet */
        {OpKind::ChurnCreate, 0},
        {OpKind::ChurnCreate, 0},
        {OpKind::ChurnDestroy, 0},
        {OpKind::ChurnCreate, 0},
        {OpKind::ChurnDestroy, 0},
        {OpKind::ChurnDestroy, 0},
        {OpKind::ChurnDestroy, 0},  /* drained again */
    };

    FuzzOptions opts;
    opts.shrink = false;
    FuzzReport rep = fuzzScenario(sc, opts);
    EXPECT_TRUE(rep.ok) << firstFailure(rep);

    std::vector<ExpectedOp> expected = referenceRun(sc);
    ASSERT_EQ(expected.size(), sc.ops.size());
    EXPECT_EQ(expected[0].code, "InvalidState");
    EXPECT_EQ(expected[7].code, "InvalidState");
    ByteWriter two;
    two.putU64(2);
    EXPECT_EQ(expected[2].output, two.data());
}

TEST(FuzzScenario, ChunkBytesIsAPureFunction)
{
    EXPECT_EQ(chunkBytes(33, 7), chunkBytes(33, 7));
    EXPECT_NE(chunkBytes(33, 7), chunkBytes(33, 8));
    EXPECT_EQ(chunkBytes(0, 7).size(), 0u);
}

/* Seed 5 expands to the largest machine shape (2 GPUs + NPU + pipe)
 * with two scheduled kills -- the best single-seed coverage of the
 * trace schema. */
TEST(FuzzRunner, TraceIsByteForByteDeterministic)
{
    Scenario sc = generateScenario(5);
    RunOptions opts;
    RunReport r1 = runScenario(sc, opts);
    RunReport r2 = runScenario(sc, opts);
    ASSERT_TRUE(r1.setupOk);
    EXPECT_EQ(r1.toJson(sc, opts).dump(), r2.toJson(sc, opts).dump());
}

TEST(FuzzRunner, TraceDocumentReplaysAsScenario)
{
    Scenario sc = generateScenario(5);
    RunOptions opts;
    RunReport r = runScenario(sc, opts);
    auto replay = Scenario::parse(r.toJson(sc, opts).dump());
    ASSERT_TRUE(replay.isOk());
    EXPECT_EQ(replay.value().toJson().dump(), sc.toJson().dump());
}

TEST(FuzzOracles, DefaultCorpusPasses)
{
    for (uint64_t seed : defaultCorpus(10)) {
        FuzzReport rep = fuzzSeed(seed);
        EXPECT_TRUE(rep.ok)
            << "seed " << seed << " failed: " << firstFailure(rep);
    }
}

/* Seed 12 generates an untainted GpuVecAdd -> GpuReadback(buf 2)
 * sequence, which is exactly what exposes the planted bug (the seed
 * is grammar-dependent: re-probe with
 * `fuzz_runner --seed S --plant-bug` after extending OpKind). */
TEST(FuzzOracles, PlantedBugIsCaughtAndShrunk)
{
    FuzzOptions opts;
    opts.plantBug = true;
    FuzzReport rep = fuzzSeed(12, opts);
    ASSERT_FALSE(rep.ok) << "planted bug went undetected";

    bool referenceCaught = false;
    for (const FuzzFailure &f : rep.failures)
        referenceCaught |= f.oracle == "reference";
    EXPECT_TRUE(referenceCaught) << firstFailure(rep);

    ASSERT_TRUE(rep.shrunk);
    EXPECT_LE(rep.minimal.ops.size(), 10u);

    /* The minimized repro must still fail on its own. */
    FuzzOptions probe = opts;
    probe.shrink = false;
    EXPECT_FALSE(fuzzScenario(rep.minimal, probe).ok);
}

TEST(FuzzOracles, ReportJsonCarriesSeedTraceAndRepro)
{
    FuzzOptions opts;
    opts.plantBug = true;
    FuzzReport rep = fuzzSeed(12, opts);
    ASSERT_FALSE(rep.ok);
    JsonValue doc = rep.toJson();
    const JsonObject &o = doc.asObject();
    EXPECT_EQ(o.at("seed").asInt(), 12);
    EXPECT_FALSE(o.at("ok").asBool());
    EXPECT_FALSE(o.at("failures").asArray().empty());
    EXPECT_TRUE(o.count("trace"));
    ASSERT_TRUE(o.count("minimal"));
    /* The embedded repro is itself a parseable scenario. */
    auto repro = Scenario::fromJson(o.at("minimal"));
    ASSERT_TRUE(repro.isOk());
    EXPECT_EQ(repro.value().toJson().dump(),
              rep.minimal.toJson().dump());
}

TEST(FuzzShrinker, NormalizeDropsUnreferencedMachine)
{
    Scenario sc = generateScenario(5);
    ASSERT_GE(sc.enclaves.size(), 2u);
    /* Keep only ops touching enclave 0 (plus driver/attack ops). */
    std::vector<ScenarioOp> kept;
    for (const ScenarioOp &op : sc.ops) {
        if (op.enclave == 0)
            kept.push_back(op);
    }
    sc.ops = std::move(kept);
    sc.faults.clear();
    sc.withPipe = false;
    sc.normalize();
    EXPECT_EQ(sc.enclaves.size(), 1u);
    for (const ScenarioOp &op : sc.ops)
        EXPECT_EQ(op.enclave, 0u);
}
