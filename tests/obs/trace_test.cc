/** Tracer + Span + FlightRecorder: nesting, modes, wraparound,
 *  dump retention and byte-identical determinism. */

#include <gtest/gtest.h>

#include "obs/trace.hh"

namespace cronus::obs
{
namespace
{

/** Each test drives the process-wide tracer with its own clock and
 *  restores Off/default state afterwards so suites stay isolated. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer &t = Tracer::instance();
        t.setMode(TraceMode::Full);
        t.clear();
        t.flight().setCapacity(FlightRecorder::kDefaultCapacity);
        t.flight().clear();
        t.attachClock(&clock);
    }

    void
    TearDown() override
    {
        Tracer &t = Tracer::instance();
        t.detachClock(&clock);
        t.setDumpSink({});
        t.clear();
        t.flight().setCapacity(FlightRecorder::kDefaultCapacity);
        t.setMode(TraceMode::Off);
    }

    SimClock clock;
};

TEST_F(TraceTest, SpanNestingAndOrdering)
{
    Tracer &t = Tracer::instance();
    uint32_t tr = t.track("work");
    {
        Span outer(tr, "outer", "test");
        clock.advance(100);
        {
            Span inner(tr, "inner", "test");
            inner.arg("k", int64_t{7});
            clock.advance(50);
        }
        clock.advance(25);
    }
    ASSERT_EQ(t.eventCount(), 2u);

    JsonValue doc = t.traceJson();
    const JsonArray &evs = doc["traceEvents"].asArray();
    /* process_name + thread_name metadata, then inner (closed
     * first), then outer. */
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs[0]["name"].asString(), "process_name");
    EXPECT_EQ(evs[1]["name"].asString(), "thread_name");
    EXPECT_EQ(evs[1]["args"]["name"].asString(), "work");

    const JsonValue &inner = evs[2];
    const JsonValue &outer = evs[3];
    EXPECT_EQ(inner["name"].asString(), "inner");
    EXPECT_EQ(outer["name"].asString(), "outer");
    EXPECT_EQ(inner["args"]["k"].asInt(), 7);

    /* ts/dur containment is what Perfetto nests by: inner must sit
     * strictly inside outer (trace units: microseconds). */
    EXPECT_DOUBLE_EQ(outer["ts"].asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(outer["dur"].asDouble(), 0.175);
    EXPECT_DOUBLE_EQ(inner["ts"].asDouble(), 0.1);
    EXPECT_DOUBLE_EQ(inner["dur"].asDouble(), 0.05);
    EXPECT_GE(inner["ts"].asDouble(), outer["ts"].asDouble());
    EXPECT_LE(inner["ts"].asDouble() + inner["dur"].asDouble(),
              outer["ts"].asDouble() + outer["dur"].asDouble());
}

TEST_F(TraceTest, OffModeSpansAreInert)
{
    Tracer &t = Tracer::instance();
    t.setMode(TraceMode::Off);
    uint32_t tr = t.track("work");
    {
        Span s(tr, "dead", "test");
        EXPECT_FALSE(s.live());
        s.arg("k", int64_t{1});
    }
    t.instant(tr, "gone", "test");
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_EQ(t.flight().size(), 0u);
}

TEST_F(TraceTest, RingModeFeedsOnlyTheFlightRecorder)
{
    Tracer &t = Tracer::instance();
    t.setMode(TraceMode::Ring);
    EXPECT_TRUE(t.active());
    EXPECT_FALSE(t.exporting());
    t.instant(t.track("work"), "i0", "test");
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_EQ(t.flight().size(), 1u);
}

TEST_F(TraceTest, EnsureModeNeverLowers)
{
    Tracer &t = Tracer::instance();
    t.ensureMode(TraceMode::Ring);
    EXPECT_EQ(t.mode(), TraceMode::Full);
    t.setMode(TraceMode::Off);
    t.ensureMode(TraceMode::Ring);
    EXPECT_EQ(t.mode(), TraceMode::Ring);
}

TEST_F(TraceTest, TrackIdsAreMemoizedAndNamed)
{
    Tracer &t = Tracer::instance();
    EXPECT_EQ(t.track("a"), t.track("a"));
    EXPECT_NE(t.track("a"), t.track("b"));
    EXPECT_EQ(t.partitionTrack(2, "gpu0"), t.track("p2 gpu0"));
    EXPECT_EQ(t.enclaveTrack(65537, "cpu0"), t.track("e65537 cpu0"));
}

TEST_F(TraceTest, IdenticalRunsProduceByteIdenticalTraceJson)
{
    auto run = [&]() {
        Tracer &t = Tracer::instance();
        t.clear();
        clock.reset();
        uint32_t tr = t.track("det");
        for (int i = 0; i < 5; ++i) {
            Span s(tr, "step", "test");
            s.arg("i", int64_t{i});
            clock.advance(static_cast<SimTime>(10 + i));
        }
        t.instant(tr, "done", "test");
        return t.traceJson().dump();
    };
    std::string first = run();
    std::string second = run();
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"step\""), std::string::npos);
}

TEST_F(TraceTest, DumpFlightRetainsAndCallsSink)
{
    Tracer &t = Tracer::instance();
    t.instant(t.track("work"), "ev", "test");
    std::vector<std::string> reasons;
    size_t held = 0;
    t.setDumpSink([&](const std::string &r, const JsonValue &doc) {
        reasons.push_back(r);
        held = doc["events"].asArray().size();
    });
    t.dumpFlight("test dump");
    ASSERT_EQ(reasons.size(), 1u);
    EXPECT_EQ(reasons[0], "test dump");
    EXPECT_EQ(held, 1u);
    ASSERT_EQ(t.recentDumps().size(), 1u);
    EXPECT_EQ(t.recentDumps()[0].reason, "test dump");
    EXPECT_EQ(t.recentDumps()[0].doc["totalRecorded"].asInt(), 1);

    /* Retention is bounded: old dumps age out, newest survives. */
    for (int i = 0; i < 20; ++i)
        t.dumpFlight("dump " + std::to_string(i));
    EXPECT_LE(t.recentDumps().size(), 8u);
    EXPECT_EQ(t.recentDumps().back().reason, "dump 19");
}

TEST(FlightRecorderTest, WraparoundKeepsNewestOldestFirst)
{
    FlightRecorder ring(4);
    for (uint64_t i = 0; i < 10; ++i) {
        TraceEvent ev;
        ev.ts = i;
        ring.push(std::move(ev));
    }
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.totalRecorded(), 10u);
    auto snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    for (size_t i = 0; i < snap.size(); ++i)
        EXPECT_EQ(snap[i].ts, 6 + i);
}

TEST(FlightRecorderTest, SetCapacityDropsContentsKeepsTotal)
{
    FlightRecorder ring(4);
    for (uint64_t i = 0; i < 6; ++i)
        ring.push(TraceEvent{});
    ring.setCapacity(2);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.totalRecorded(), 6u);
    ring.push(TraceEvent{});
    ring.push(TraceEvent{});
    ring.push(TraceEvent{});
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring.totalRecorded(), 9u);
}

} // namespace
} // namespace cronus::obs
