/** MetricsRegistry: stable handles, kind collisions, snapshot. */

#include <gtest/gtest.h>

#include "obs/metrics.hh"

namespace cronus::obs
{
namespace
{

TEST(MetricsTest, HandlesAreStableAndLabelOrderInsensitive)
{
    MetricsRegistry reg;
    Counter &a = reg.counter(
        "srpc.bytes", {{"device", "gpu0"}, {"dir", "tx"}});
    Counter &b = reg.counter(
        "srpc.bytes", {{"dir", "tx"}, {"device", "gpu0"}});
    EXPECT_EQ(&a, &b);
    a.inc(5);
    EXPECT_EQ(b.value(), 5u);
    EXPECT_EQ(reg.instrumentCount(), 1u);

    Counter &c = reg.counter(
        "srpc.bytes", {{"device", "gpu1"}, {"dir", "tx"}});
    EXPECT_NE(&a, &c);
    EXPECT_EQ(reg.instrumentCount(), 2u);
}

TEST(MetricsTest, KindCollisionYieldsPrivateInstrument)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("x");
    c.inc(3);

    /* Same key, different kind: the caller gets a private orphan so
     * it never aliases the registered counter's storage. */
    Distribution &d = reg.distribution("x");
    d.sample(1.0);
    EXPECT_EQ(reg.collisions(), 1u);
    EXPECT_EQ(c.value(), 3u);

    JsonValue snap = reg.snapshot();
    EXPECT_EQ(snap["counters"]["x"].asInt(), 3);
    EXPECT_FALSE(snap["distributions"].has("x"));
    EXPECT_EQ(snap["collisions"].asInt(), 1);

    /* Orphans are address-stable: earlier escapes stay writable
     * after later collisions. */
    Distribution &d2 = reg.distribution("x");
    EXPECT_EQ(reg.collisions(), 2u);
    EXPECT_NE(&d, &d2);
    d.sample(2.0);
    EXPECT_EQ(d.count(), 2u);
}

TEST(MetricsTest, SnapshotRendersAllKindsAndSources)
{
    MetricsRegistry reg;
    reg.counter("ops").inc(2);

    Distribution &d = reg.distribution("lat");
    for (int i = 1; i <= 100; ++i)
        d.sample(i);

    ThroughputSeries &s = reg.series("rate", {}, 1000);
    s.record(500);
    s.record(1500);
    s.record(1600);

    reg.addSource("spm", []() {
        JsonObject o;
        o["grants"] = int64_t{4};
        return JsonValue(std::move(o));
    });

    JsonValue snap = reg.snapshot();
    EXPECT_EQ(snap["counters"]["ops"].asInt(), 2);
    EXPECT_EQ(snap["distributions"]["lat"]["count"].asInt(), 100);
    EXPECT_DOUBLE_EQ(snap["distributions"]["lat"]["min"].asDouble(),
                     1.0);
    EXPECT_DOUBLE_EQ(snap["distributions"]["lat"]["max"].asDouble(),
                     100.0);
    EXPECT_GT(snap["distributions"]["lat"]["p99"].asDouble(),
              snap["distributions"]["lat"]["p50"].asDouble());
    EXPECT_EQ(snap["series"]["rate"]["bucketNs"].asInt(), 1000);
    EXPECT_EQ(snap["series"]["rate"]["buckets"]["0"].asInt(), 1);
    EXPECT_EQ(snap["series"]["rate"]["buckets"]["1"].asInt(), 2);
    EXPECT_EQ(snap["sources"]["spm"]["grants"].asInt(), 4);

    reg.removeSource("spm");
    EXPECT_FALSE(reg.snapshot()["sources"].has("spm"));

    reg.clear();
    EXPECT_EQ(reg.instrumentCount(), 0u);
    EXPECT_EQ(reg.collisions(), 0u);
}

TEST(MetricsTest, EmptyDistributionSnapshotsZeroPercentiles)
{
    /* count=0 still renders p50/p99/p999 (as 0) so dashboards can
     * chart percentiles without a per-instrument existence check;
     * min/max/mean stay omitted -- they have no zero convention. */
    MetricsRegistry reg;
    reg.distribution("empty");
    JsonValue snap = reg.snapshot();
    EXPECT_EQ(snap["distributions"]["empty"]["count"].asInt(), 0);
    EXPECT_FALSE(snap["distributions"]["empty"].has("min"));
    EXPECT_FALSE(snap["distributions"]["empty"].has("mean"));
    EXPECT_DOUBLE_EQ(snap["distributions"]["empty"]["p50"].asDouble(),
                     0.0);
    EXPECT_DOUBLE_EQ(snap["distributions"]["empty"]["p99"].asDouble(),
                     0.0);
    EXPECT_DOUBLE_EQ(
        snap["distributions"]["empty"]["p999"].asDouble(), 0.0);
}

TEST(MetricsTest, DuplicateLabelNamesCannotAliasInstruments)
{
    /* Permuted duplicate label names used to build the raw keys
     * "m{a=1,a=2}" and "m{a=2,a=1}" -- two spellings, two
     * instruments, for what sorting alone would then collapse into
     * one key. Dedupe (last occurrence wins) makes both resolve to
     * the single instrument "m{a=2}" / "m{a=1}" respectively. */
    MetricsRegistry reg;
    Counter &last_two_a = reg.counter("m", {{"a", "1"}, {"a", "2"}});
    Counter &plain_two = reg.counter("m", {{"a", "2"}});
    EXPECT_EQ(&last_two_a, &plain_two);

    Counter &last_one_a = reg.counter("m", {{"a", "2"}, {"a", "1"}});
    Counter &plain_one = reg.counter("m", {{"a", "1"}});
    EXPECT_EQ(&last_one_a, &plain_one);

    EXPECT_NE(&plain_two, &plain_one);
    EXPECT_EQ(reg.instrumentCount(), 2u);

    last_two_a.inc(5);
    last_one_a.inc(9);
    EXPECT_EQ(plain_two.value(), 5u);
    EXPECT_EQ(plain_one.value(), 9u);
}

TEST(MetricsTest, GlobalRegistryIsOneInstance)
{
    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

} // namespace
} // namespace cronus::obs
