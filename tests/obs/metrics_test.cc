/** MetricsRegistry: stable handles, kind collisions, snapshot. */

#include <gtest/gtest.h>

#include "obs/metrics.hh"

namespace cronus::obs
{
namespace
{

TEST(MetricsTest, HandlesAreStableAndLabelOrderInsensitive)
{
    MetricsRegistry reg;
    Counter &a = reg.counter(
        "srpc.bytes", {{"device", "gpu0"}, {"dir", "tx"}});
    Counter &b = reg.counter(
        "srpc.bytes", {{"dir", "tx"}, {"device", "gpu0"}});
    EXPECT_EQ(&a, &b);
    a.inc(5);
    EXPECT_EQ(b.value(), 5u);
    EXPECT_EQ(reg.instrumentCount(), 1u);

    Counter &c = reg.counter(
        "srpc.bytes", {{"device", "gpu1"}, {"dir", "tx"}});
    EXPECT_NE(&a, &c);
    EXPECT_EQ(reg.instrumentCount(), 2u);
}

TEST(MetricsTest, KindCollisionYieldsPrivateInstrument)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("x");
    c.inc(3);

    /* Same key, different kind: the caller gets a private orphan so
     * it never aliases the registered counter's storage. */
    Distribution &d = reg.distribution("x");
    d.sample(1.0);
    EXPECT_EQ(reg.collisions(), 1u);
    EXPECT_EQ(c.value(), 3u);

    JsonValue snap = reg.snapshot();
    EXPECT_EQ(snap["counters"]["x"].asInt(), 3);
    EXPECT_FALSE(snap["distributions"].has("x"));
    EXPECT_EQ(snap["collisions"].asInt(), 1);

    /* Orphans are address-stable: earlier escapes stay writable
     * after later collisions. */
    Distribution &d2 = reg.distribution("x");
    EXPECT_EQ(reg.collisions(), 2u);
    EXPECT_NE(&d, &d2);
    d.sample(2.0);
    EXPECT_EQ(d.count(), 2u);
}

TEST(MetricsTest, SnapshotRendersAllKindsAndSources)
{
    MetricsRegistry reg;
    reg.counter("ops").inc(2);

    Distribution &d = reg.distribution("lat");
    for (int i = 1; i <= 100; ++i)
        d.sample(i);

    ThroughputSeries &s = reg.series("rate", {}, 1000);
    s.record(500);
    s.record(1500);
    s.record(1600);

    reg.addSource("spm", []() {
        JsonObject o;
        o["grants"] = int64_t{4};
        return JsonValue(std::move(o));
    });

    JsonValue snap = reg.snapshot();
    EXPECT_EQ(snap["counters"]["ops"].asInt(), 2);
    EXPECT_EQ(snap["distributions"]["lat"]["count"].asInt(), 100);
    EXPECT_DOUBLE_EQ(snap["distributions"]["lat"]["min"].asDouble(),
                     1.0);
    EXPECT_DOUBLE_EQ(snap["distributions"]["lat"]["max"].asDouble(),
                     100.0);
    EXPECT_GT(snap["distributions"]["lat"]["p99"].asDouble(),
              snap["distributions"]["lat"]["p50"].asDouble());
    EXPECT_EQ(snap["series"]["rate"]["bucketNs"].asInt(), 1000);
    EXPECT_EQ(snap["series"]["rate"]["buckets"]["0"].asInt(), 1);
    EXPECT_EQ(snap["series"]["rate"]["buckets"]["1"].asInt(), 2);
    EXPECT_EQ(snap["sources"]["spm"]["grants"].asInt(), 4);

    reg.removeSource("spm");
    EXPECT_FALSE(reg.snapshot()["sources"].has("spm"));

    reg.clear();
    EXPECT_EQ(reg.instrumentCount(), 0u);
    EXPECT_EQ(reg.collisions(), 0u);
}

TEST(MetricsTest, EmptyDistributionSnapshotsWithoutPercentiles)
{
    MetricsRegistry reg;
    reg.distribution("empty");
    JsonValue snap = reg.snapshot();
    EXPECT_EQ(snap["distributions"]["empty"]["count"].asInt(), 0);
    EXPECT_FALSE(snap["distributions"]["empty"].has("p50"));
}

TEST(MetricsTest, GlobalRegistryIsOneInstance)
{
    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

} // namespace
} // namespace cronus::obs
