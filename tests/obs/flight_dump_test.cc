/** End-to-end flight-recorder dumps: an InvariantAuditor violation
 *  on a real machine auto-emits the last-N-events timeline. */

#include <gtest/gtest.h>

#include "../core/test_fixtures.hh"
#include "inject/invariant_auditor.hh"
#include "obs/trace.hh"

namespace cronus::obs
{
namespace
{

using core::testing::CronusTest;

class FlightDumpTest : public CronusTest
{
  protected:
    void
    TearDown() override
    {
        Tracer &t = Tracer::instance();
        t.setDumpSink({});
        t.clear();
        t.setMode(TraceMode::Off);
    }
};

TEST_F(FlightDumpTest, SystemWiresComponentMetricSources)
{
    /* CronusSystem registers platform/monitor/SPM/TLB/SMMU as
     * pull-sources at construction; one snapshot covers the whole
     * machine plus any app-added instruments. */
    auto cpu = makeCpuEnclave().value();
    ASSERT_TRUE(
        system->ecall(cpu, "echo", Bytes{1, 2, 3}).isOk());
    system->metrics().counter("app.ops").inc(3);

    JsonValue snap = system->metrics().snapshot();
    for (const char *src :
         {"platform", "monitor", "spm", "tlb", "smmu"})
        EXPECT_TRUE(snap["sources"].has(src)) << src;
    EXPECT_GT(snap["sources"]["monitor"]["world_switches"].asInt(),
              0);
    EXPECT_TRUE(snap["sources"]["tlb"].has("hits"));
    EXPECT_EQ(snap["counters"]["app.ops"].asInt(), 3);
    EXPECT_EQ(snap["collisions"].asInt(), 0);
}

TEST_F(FlightDumpTest, AuditorViolationDumpsFlightRecorder)
{
    Tracer &t = Tracer::instance();
    t.setMode(TraceMode::Off);
    t.clear();

    /* Attaching an auditor raises the tracer to at least Ring so a
     * violation can always ship its timeline. */
    inject::InvariantAuditor auditor;
    EXPECT_TRUE(t.active());
    auditor.attachSpm(system->spm());

    std::vector<std::string> reasons;
    JsonValue captured;
    t.setDumpSink([&](const std::string &r, const JsonValue &doc) {
        reasons.push_back(r);
        captured = doc;
    });

    auto cpu = makeCpuEnclave().value();
    auto gpu = makeGpuEnclave().value();
    auto cpu_pid = cpu.host->partitionId();
    auto gpu_pid = gpu.host->partitionId();

    /* A raw share with no teardown: finalCheck must flag the leak
     * and the flag must dump the ring. */
    tee::PhysAddr base =
        system->spm().partition(cpu_pid).value()->memBase;
    ASSERT_TRUE(
        system->spm().sharePages(cpu_pid, gpu_pid, base, 1).isOk());
    EXPECT_FALSE(auditor.finalCheck().isOk());

    ASSERT_FALSE(reasons.empty());
    EXPECT_NE(reasons[0].find("invariant violation"),
              std::string::npos);
    /* The dump carries the events leading up to the violation --
     * at minimum the spm.grant instant from sharePages. */
    ASSERT_TRUE(captured["events"].isArray());
    EXPECT_GT(captured["events"].asArray().size(), 0u);
    bool saw_grant = false;
    for (const JsonValue &ev : captured["events"].asArray())
        saw_grant |= ev["name"].asString() == "spm.grant";
    EXPECT_TRUE(saw_grant);
    EXPECT_FALSE(t.recentDumps().empty());
}

} // namespace
} // namespace cronus::obs
