/** Security test suite: every in-scope attack must be blocked. */

#include <gtest/gtest.h>

#include "attacks/attacks.hh"

namespace cronus::attacks
{
namespace
{

class AttackTest
    : public ::testing::TestWithParam<AttackOutcome (*)()>
{
};

TEST_P(AttackTest, IsBlocked)
{
    AttackOutcome result = GetParam()();
    EXPECT_TRUE(result.blocked)
        << result.name << ": " << result.detail;
}

INSTANTIATE_TEST_SUITE_P(
    InScopeAttacks, AttackTest,
    ::testing::Values(
        &attackNormalWorldReadsSmem, &attackNormalWorldTampersSmem,
        &attackReplayEcall, &attackTamperEcallArgs,
        &attackMisdispatch, &attackDropRpcByStall,
        &attackFabricatedAccelerator, &attackMaliciousDeviceTree,
        &attackMosSubstitution, &attackCrashLeak,
        &attackDeadLockOnFailure, &attackUndeclaredCall,
        &attackCrossContextGpuRead),
    [](const ::testing::TestParamInfo<AttackOutcome (*)()> &info) {
        return "attack_" + std::to_string(info.index);
    });

TEST(AttackSuite, AllThirteenScenariosBlocked)
{
    auto results = runAllAttacks();
    EXPECT_EQ(results.size(), 13u);
    for (const auto &r : results)
        EXPECT_TRUE(r.blocked) << r.name << ": " << r.detail;
}

} // namespace
} // namespace cronus::attacks
