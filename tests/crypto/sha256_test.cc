/** SHA-256 and HMAC-SHA256 tests against published vectors. */

#include <gtest/gtest.h>

#include "crypto/sha256.hh"

namespace cronus::crypto
{
namespace
{

TEST(Sha256Test, EmptyString)
{
    EXPECT_EQ(digestHex(sha256(std::string(""))),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc)
{
    EXPECT_EQ(digestHex(sha256(std::string("abc"))),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage)
{
    EXPECT_EQ(digestHex(sha256(std::string(
                  "abcdbcdecdefdefgefghfghighijhijk"
                  "ijkljklmklmnlmnomnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs)
{
    Sha256 ctx;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        ctx.update(chunk);
    EXPECT_EQ(digestHex(ctx.finalize()),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot)
{
    std::string msg = "The quick brown fox jumps over the lazy dog";
    Sha256 ctx;
    for (char c : msg)
        ctx.update(std::string(1, c));
    EXPECT_EQ(digestHex(ctx.finalize()),
              digestHex(sha256(msg)));
}

TEST(Sha256Test, PaddingBoundaries)
{
    /* Exercise lengths around the 56/64-byte padding edges. */
    for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
        std::string msg(len, 'x');
        Digest one_shot = sha256(msg);
        Sha256 ctx;
        ctx.update(msg.substr(0, len / 2));
        ctx.update(msg.substr(len / 2));
        EXPECT_EQ(digestHex(ctx.finalize()), digestHex(one_shot))
            << "length " << len;
    }
}

TEST(Sha256Test, FinalizeTwicePanics)
{
    Logger::instance().setQuiet(true);
    Sha256 ctx;
    ctx.finalize();
    EXPECT_THROW(ctx.finalize(), PanicError);
}

TEST(HmacTest, Rfc4231Case1)
{
    Bytes key(20, 0x0b);
    Bytes msg = toBytes("Hi There");
    EXPECT_EQ(toHex(digestToBytes(hmacSha256(key, msg))),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2)
{
    Bytes key = toBytes("Jefe");
    Bytes msg = toBytes("what do ya want for nothing?");
    EXPECT_EQ(toHex(digestToBytes(hmacSha256(key, msg))),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231LongKey)
{
    Bytes key(131, 0xaa);
    Bytes msg = toBytes(
        "Test Using Larger Than Block-Size Key - Hash Key First");
    EXPECT_EQ(toHex(digestToBytes(hmacSha256(key, msg))),
              "60e431591ee0b67f0d8a26aacbf5b77f"
              "8e0bc6213728c5140546040f0ee37f54");
}

TEST(Sha256Test, Fips180LongVector)
{
    /* FIPS 180-4 two of the standard byte-oriented test strings. */
    EXPECT_EQ(digestHex(sha256(std::string(
                  "abcdefghbcdefghicdefghijdefghijkefghijklfghijklm"
                  "ghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrs"
                  "mnopqrstnopqrstu"))),
              "cf5b16a778af8380036ce59e7b049237"
              "0b249b11e8f07a51afac45037afee9d1");
    EXPECT_EQ(digestHex(sha256(std::string("a"))),
              "ca978112ca1bbdcafac231b39a23dc4d"
              "a786eff8147c4e72b9807785afee48bb");
}

TEST(HmacTest, Rfc4231Case3)
{
    /* Key and data both 0xaa/0xdd repeated. */
    Bytes key(20, 0xaa);
    Bytes msg(50, 0xdd);
    EXPECT_EQ(toHex(digestToBytes(hmacSha256(key, msg))),
              "773ea91e36800e46854db8ebd09181a7"
              "2959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case4)
{
    Bytes key;
    for (uint8_t b = 0x01; b <= 0x19; ++b)
        key.push_back(b);
    Bytes msg(50, 0xcd);
    EXPECT_EQ(toHex(digestToBytes(hmacSha256(key, msg))),
              "82558a389a443c0ea4cc819899f2083a"
              "85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacTest, KeySensitivity)
{
    Bytes msg = toBytes("payload");
    Digest a = hmacSha256(toBytes("key-a"), msg);
    Digest b = hmacSha256(toBytes("key-b"), msg);
    EXPECT_NE(digestHex(a), digestHex(b));
}

} // namespace
} // namespace cronus::crypto
