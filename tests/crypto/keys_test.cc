/** Tests for DH key agreement and Schnorr signatures. */

#include <gtest/gtest.h>

#include "crypto/keys.hh"

namespace cronus::crypto
{
namespace
{

TEST(KeysTest, DeriveIsDeterministic)
{
    KeyPair a = deriveKeyPair(toBytes("seed-1"));
    KeyPair b = deriveKeyPair(toBytes("seed-1"));
    KeyPair c = deriveKeyPair(toBytes("seed-2"));
    EXPECT_TRUE(a.pub == b.pub);
    EXPECT_FALSE(a.pub == c.pub);
}

TEST(KeysTest, PublicMatchesPrivate)
{
    Rng rng(3);
    KeyPair kp = generateKeyPair(rng);
    U256 y = U256::powMod(groupGenerator(), kp.priv.scalar,
                          groupPrime());
    EXPECT_TRUE(kp.pub.element == y);
}

TEST(KeysTest, SignVerifyRoundTrip)
{
    Rng rng(7);
    KeyPair kp = generateKeyPair(rng);
    Bytes msg = toBytes("attestation report");
    Signature sig = sign(kp.priv, msg);
    EXPECT_TRUE(verify(kp.pub, msg, sig));
}

TEST(KeysTest, VerifyRejectsTamperedMessage)
{
    Rng rng(7);
    KeyPair kp = generateKeyPair(rng);
    Bytes msg = toBytes("attestation report");
    Signature sig = sign(kp.priv, msg);
    Bytes tampered = msg;
    tampered[0] ^= 1;
    EXPECT_FALSE(verify(kp.pub, tampered, sig));
}

TEST(KeysTest, VerifyRejectsWrongKey)
{
    Rng rng(7);
    KeyPair kp = generateKeyPair(rng);
    KeyPair other = generateKeyPair(rng);
    Bytes msg = toBytes("hello");
    Signature sig = sign(kp.priv, msg);
    EXPECT_FALSE(verify(other.pub, msg, sig));
}

TEST(KeysTest, VerifyRejectsTamperedSignature)
{
    Rng rng(9);
    KeyPair kp = generateKeyPair(rng);
    Bytes msg = toBytes("hello");
    Signature sig = sign(kp.priv, msg);

    Signature bad_r = sig;
    bad_r.commitment = U256::addMod(bad_r.commitment, U256(1),
                                    groupPrime());
    EXPECT_FALSE(verify(kp.pub, msg, bad_r));

    Signature bad_s = sig;
    bad_s.response = U256::addMod(bad_s.response, U256(1),
                                  groupOrder());
    EXPECT_FALSE(verify(kp.pub, msg, bad_s));
}

TEST(KeysTest, SignatureSerializationRoundTrip)
{
    Rng rng(11);
    KeyPair kp = generateKeyPair(rng);
    Signature sig = sign(kp.priv, toBytes("m"));
    auto back = Signature::fromBytes(sig.toBytes());
    ASSERT_TRUE(back.isOk());
    EXPECT_TRUE(back.value() == sig);

    Bytes garbage = {1, 2, 3};
    EXPECT_FALSE(Signature::fromBytes(garbage).isOk());
}

TEST(KeysTest, DhSharedSecretAgrees)
{
    Rng rng(13);
    KeyPair alice = generateKeyPair(rng);
    KeyPair bob = generateKeyPair(rng);
    Bytes s1 = dhSharedSecret(alice.priv, bob.pub);
    Bytes s2 = dhSharedSecret(bob.priv, alice.pub);
    EXPECT_EQ(toHex(s1), toHex(s2));
    EXPECT_EQ(s1.size(), 32u);
}

TEST(KeysTest, DhSecretDiffersAcrossPeers)
{
    Rng rng(17);
    KeyPair alice = generateKeyPair(rng);
    KeyPair bob = generateKeyPair(rng);
    KeyPair eve = generateKeyPair(rng);
    Bytes ab = dhSharedSecret(alice.priv, bob.pub);
    Bytes ae = dhSharedSecret(alice.priv, eve.pub);
    EXPECT_NE(toHex(ab), toHex(ae));
}

/** Property sweep: sign/verify across many random keys/messages. */
class SignPropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SignPropertyTest, RoundTripAndSingleBitTamper)
{
    Rng rng(GetParam());
    KeyPair kp = generateKeyPair(rng);
    Bytes msg(64);
    rng.fill(msg);
    Signature sig = sign(kp.priv, msg);
    ASSERT_TRUE(verify(kp.pub, msg, sig));

    /* Flip one random bit of the message: must be rejected. */
    Bytes tampered = msg;
    size_t byte = rng.nextBelow(tampered.size());
    tampered[byte] ^= uint8_t(1 << rng.nextBelow(8));
    EXPECT_FALSE(verify(kp.pub, tampered, sig));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SignPropertyTest,
                         ::testing::Range<uint64_t>(100, 110));

} // namespace
} // namespace cronus::crypto
