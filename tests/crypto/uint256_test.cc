/** Unit and property tests for 256-bit modular arithmetic. */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "crypto/keys.hh"
#include "crypto/uint256.hh"

namespace cronus::crypto
{
namespace
{

U256
randomU256(Rng &rng)
{
    Bytes b(32);
    rng.fill(b);
    return U256::fromBytesBE(b);
}

TEST(U256Test, HexRoundTrip)
{
    auto v = U256::fromHex("deadbeef");
    ASSERT_TRUE(v.isOk());
    EXPECT_EQ(v.value().toHex(),
              "00000000000000000000000000000000"
              "000000000000000000000000deadbeef");
}

TEST(U256Test, HexRoundTripFull)
{
    std::string hex =
        "0123456789abcdef0123456789abcdef"
        "0123456789abcdef0123456789abcdef";
    auto v = U256::fromHex(hex);
    ASSERT_TRUE(v.isOk());
    EXPECT_EQ(v.value().toHex(), hex);
}

TEST(U256Test, ComparisonAndZero)
{
    EXPECT_TRUE(U256().isZero());
    EXPECT_FALSE(U256(1).isZero());
    EXPECT_TRUE(U256(3) < U256(5));
    EXPECT_FALSE(U256(5) < U256(3));
    EXPECT_TRUE(U256(7) >= U256(7));
}

TEST(U256Test, AddSubSmall)
{
    U256 a(100), b(42);
    EXPECT_EQ((a + b).toHex(), U256(142).toHex());
    EXPECT_EQ((a - b).toHex(), U256(58).toHex());
}

TEST(U256Test, AddCarryPropagates)
{
    auto max64 = U256::fromHex("ffffffffffffffff").value();
    U256 sum = max64 + U256(1);
    EXPECT_EQ(sum.toHex(),
              "00000000000000000000000000000000"
              "00000000000000010000000000000000");
}

TEST(U256Test, HighestBit)
{
    EXPECT_EQ(U256().highestBit(), -1);
    EXPECT_EQ(U256(1).highestBit(), 0);
    EXPECT_EQ(U256(0x80).highestBit(), 7);
    auto top = U256::fromHex(
        "8000000000000000000000000000000000000000"
        "000000000000000000000000").value();
    EXPECT_EQ(top.highestBit(), 255);
}

TEST(U256Test, MulModSmall)
{
    U256 mod(1000003);
    U256 r = U256::mulMod(U256(123456), U256(654321), mod);
    /* 123456 * 654321 mod 1000003 = 80779853376 mod 1000003 */
    uint64_t expect = (123456ULL * 654321ULL) % 1000003ULL;
    EXPECT_EQ(r.toHex(), U256(expect).toHex());
}

TEST(U256Test, PowModSmall)
{
    U256 mod(1000000007);
    /* 2^62 mod p = 4611686018427387904 mod 1000000007 */
    uint64_t expect = 4611686018427387904ULL % 1000000007ULL;
    U256 r = U256::powMod(U256(2), U256(62), mod);
    EXPECT_EQ(r.toHex(), U256(expect).toHex());
}

TEST(U256Test, PowModFermatLittleTheorem)
{
    /* For prime p and a not divisible by p: a^(p-1) = 1 mod p. */
    const U256 &p = groupPrime();
    const U256 &order = groupOrder();
    Rng rng(11);
    for (int i = 0; i < 5; ++i) {
        U256 a = U256::reduce(randomU256(rng), p);
        if (a.isZero())
            continue;
        EXPECT_EQ(U256::powMod(a, order, p).toHex(),
                  U256(1).toHex());
    }
}

TEST(U256Test, PowModZeroExponent)
{
    EXPECT_EQ(U256::powMod(U256(123), U256(0), U256(97)).toHex(),
              U256(1).toHex());
}

/** Property sweep: algebraic identities over random operands. */
class U256PropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(U256PropertyTest, ModularIdentities)
{
    Rng rng(GetParam());
    const U256 &p = groupPrime();
    U256 a = U256::reduce(randomU256(rng), p);
    U256 b = U256::reduce(randomU256(rng), p);
    U256 c = U256::reduce(randomU256(rng), p);

    /* Commutativity. */
    EXPECT_EQ(U256::addMod(a, b, p).toHex(),
              U256::addMod(b, a, p).toHex());
    EXPECT_EQ(U256::mulMod(a, b, p).toHex(),
              U256::mulMod(b, a, p).toHex());

    /* Associativity of mulMod. */
    EXPECT_EQ(
        U256::mulMod(U256::mulMod(a, b, p), c, p).toHex(),
        U256::mulMod(a, U256::mulMod(b, c, p), p).toHex());

    /* Distributivity. */
    EXPECT_EQ(
        U256::mulMod(a, U256::addMod(b, c, p), p).toHex(),
        U256::addMod(U256::mulMod(a, b, p),
                     U256::mulMod(a, c, p), p).toHex());

    /* add/sub inverse. */
    EXPECT_EQ(U256::subMod(U256::addMod(a, b, p), b, p).toHex(),
              a.toHex());

    /* Exponent laws: g^a * g^b = g^(a+b mod order). */
    const U256 &order = groupOrder();
    U256 ea = U256::reduce(a, order);
    U256 eb = U256::reduce(b, order);
    U256 lhs = U256::mulMod(U256::powMod(groupGenerator(), ea, p),
                            U256::powMod(groupGenerator(), eb, p), p);
    U256 rhs = U256::powMod(groupGenerator(),
                            U256::addMod(ea, eb, order), p);
    EXPECT_EQ(lhs.toHex(), rhs.toHex());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, U256PropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55, 89));

} // namespace
} // namespace cronus::crypto
