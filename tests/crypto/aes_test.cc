/** AES-128 tests against FIPS-197 vectors, plus sealed messages. */

#include <gtest/gtest.h>

#include "crypto/aes.hh"

namespace cronus::crypto
{
namespace
{

TEST(AesTest, Fips197Vector)
{
    /* FIPS-197 Appendix B. */
    AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                  0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    uint8_t block[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                         0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                         0x07, 0x34};
    Aes128 aes(key);
    aes.encryptBlock(block);
    EXPECT_EQ(toHex(block, 16),
              "3925841d02dc09fbdc118597196a0b32");
}

TEST(AesTest, Fips197AppendixCVector)
{
    AesKey key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                  0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
    uint8_t block[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
                         0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                         0xee, 0xff};
    Aes128 aes(key);
    aes.encryptBlock(block);
    EXPECT_EQ(toHex(block, 16),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, CtrRoundTrip)
{
    AesKey key{};
    Aes128 aes(key);
    Bytes plaintext = toBytes("streaming rpc payload, not 16-aligned");
    Bytes ciphertext = aes.ctr(plaintext, 0x1234);
    EXPECT_NE(toHex(ciphertext), toHex(plaintext));
    Bytes back = aes.ctr(ciphertext, 0x1234);
    EXPECT_EQ(back, plaintext);
}

TEST(AesTest, CtrNonceMatters)
{
    AesKey key{};
    Aes128 aes(key);
    Bytes plaintext(48, 0x41);
    EXPECT_NE(toHex(aes.ctr(plaintext, 1)),
              toHex(aes.ctr(plaintext, 2)));
}

TEST(SealTest, SealOpenRoundTrip)
{
    Bytes secret(32, 0x7);
    Bytes msg = toBytes("ecall args");
    Bytes sealed = sealMessage(secret, 42, msg);
    auto open = openMessage(secret, sealed);
    ASSERT_TRUE(open.isOk()) << open.status().toString();
    EXPECT_EQ(open.value(), msg);
}

TEST(SealTest, OpenRejectsTamperedCiphertext)
{
    Bytes secret(32, 0x7);
    Bytes sealed = sealMessage(secret, 42, toBytes("payload"));
    sealed[10] ^= 1;
    EXPECT_EQ(openMessage(secret, sealed).code(),
              ErrorCode::IntegrityViolation);
}

TEST(SealTest, OpenRejectsTamperedTag)
{
    Bytes secret(32, 0x7);
    Bytes sealed = sealMessage(secret, 42, toBytes("payload"));
    sealed.back() ^= 1;
    EXPECT_EQ(openMessage(secret, sealed).code(),
              ErrorCode::IntegrityViolation);
}

TEST(SealTest, OpenRejectsWrongSecret)
{
    Bytes sealed = sealMessage(Bytes(32, 0x7), 42, toBytes("data"));
    EXPECT_EQ(openMessage(Bytes(32, 0x8), sealed).code(),
              ErrorCode::IntegrityViolation);
}

TEST(SealTest, OpenRejectsTruncated)
{
    Bytes tiny = {1, 2, 3};
    EXPECT_EQ(openMessage(Bytes(32, 0), tiny).code(),
              ErrorCode::IntegrityViolation);
}

TEST(SealTest, EmptyPlaintext)
{
    Bytes secret(32, 0x9);
    Bytes sealed = sealMessage(secret, 1, Bytes{});
    auto open = openMessage(secret, sealed);
    ASSERT_TRUE(open.isOk());
    EXPECT_TRUE(open.value().empty());
}

} // namespace
} // namespace cronus::crypto
