/**
 * @file
 * ResumableChannel tests (src/recover/): park on peer failure,
 * supervised reconnect with checkpoint restore + in-flight replay,
 * double faults in the middle of a recovery (killIncarnation), the
 * GaveUp path once the restart budget is gone, and dispatcher
 * re-placement of an unpinned callee after quarantine -- all under
 * the InvariantAuditor.
 */

#include "../core/test_fixtures.hh"
#include "inject/injector.hh"
#include "inject/invariant_auditor.hh"
#include "recover/resumable_channel.hh"

namespace cronus::recover
{
namespace
{

using core::AppHandle;
using core::CronusConfig;
using core::CronusSystem;
using core::CudaRuntime;

class ReconnectTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Logger::instance().setQuiet(true);
        core::testing::registerTestCpuFunctions();
        accel::registerBuiltinKernels();
        CronusConfig cfg;
        cfg.numGpus = 2;
        cfg.withNpu = false;
        sys = std::make_unique<CronusSystem>(cfg);
        auditor.attachSpm(sys->spm());
        auto cpu = sys->createEnclave(core::testing::cpuManifest(),
                                      "app.so",
                                      core::testing::cpuImageBytes());
        ASSERT_TRUE(cpu.isOk());
        driver = cpu.value();
    }

    CalleeSpec
    gpuSpec(const std::string &device)
    {
        CalleeSpec spec;
        spec.manifestJson = core::testing::gpuManifest();
        spec.imageName = "test.cubin";
        spec.image = core::testing::gpuImageBytes();
        spec.deviceName = device;
        return spec;
    }

    std::unique_ptr<ResumableChannel>
    openChannel(Supervisor &sup, const std::string &device)
    {
        auto ch = std::make_unique<ResumableChannel>(
            *sys, sup, driver, gpuSpec(device));
        ch->setOnConnect([this](core::SrpcChannel &c) {
            auditor.attachChannel(c);
        });
        EXPECT_TRUE(ch->open().isOk());
        return ch;
    }

    Result<uint64_t>
    alloc(ResumableChannel &ch, uint64_t bytes)
    {
        auto r = ch.call("cuMemAlloc",
                         CudaRuntime::encodeMemAlloc(bytes));
        if (!r.isOk())
            return r.status();
        return CudaRuntime::decodeU64Result(r.value());
    }

    Status
    fill(ResumableChannel &ch, uint64_t va, uint64_t n, float value)
    {
        uint32_t bits = 0;
        std::memcpy(&bits, &value, sizeof(bits));
        auto r = ch.call("cuLaunchKernel",
                         CudaRuntime::encodeLaunchKernel(
                             "fill_f32", {va, n, bits}, n));
        return r.status();
    }

    Result<std::vector<float>>
    readback(ResumableChannel &ch, uint64_t va, uint64_t n)
    {
        auto r = ch.call("cuMemcpyDtoH",
                         CudaRuntime::encodeMemcpyDtoH(va, n * 4));
        if (!r.isOk())
            return r.status();
        std::vector<float> out(n);
        std::memcpy(out.data(), r.value().data(), n * 4);
        return out;
    }

    tee::PartitionId
    pidOf(const std::string &device)
    {
        auto mos = sys->mosForDevice(device);
        EXPECT_TRUE(mos.isOk());
        return mos.value()->partitionId();
    }

    std::unique_ptr<CronusSystem> sys;
    inject::InvariantAuditor auditor;
    AppHandle driver;
};

TEST_F(ReconnectTest, ReconnectRestoresCheckpointAndReplaysJournal)
{
    Supervisor sup(*sys);
    auto ch = openChannel(sup, "gpu0");
    constexpr uint64_t kN = 32;

    auto va1 = alloc(*ch, kN * 4);
    ASSERT_TRUE(va1.isOk());
    auto va2 = alloc(*ch, kN * 4);
    ASSERT_TRUE(va2.isOk());
    ASSERT_TRUE(fill(*ch, va1.value(), kN, 1.0f).isOk());
    /* Seal buffers + the 1.0 fill into the checkpoint ... */
    ASSERT_TRUE(ch->checkpoint().isOk());
    /* ... and leave a second fill journaled but un-checkpointed. */
    ASSERT_TRUE(fill(*ch, va2.value(), kN, 2.0f).isOk());

    ASSERT_TRUE(sys->injectPanic("gpu0").isOk());
    auto parked = ch->call("cuCtxSynchronize", Bytes{});
    EXPECT_EQ(parked.code(), ErrorCode::PeerFailed);
    EXPECT_EQ(ch->state(), ChannelState::Parked);

    ASSERT_TRUE(ch->awaitResume().isOk());
    EXPECT_EQ(ch->state(), ChannelState::Live);
    EXPECT_EQ(ch->reconnects(), 1u);
    /* The 2.0 fill and the failed sync were replayed; the 1.0 fill
     * came back through the checkpoint, not the journal. */
    EXPECT_GE(ch->replayedCalls(), 2u);

    auto survived = readback(*ch, va1.value(), kN);
    ASSERT_TRUE(survived.isOk());
    for (float f : survived.value())
        EXPECT_EQ(f, 1.0f);
    auto replayed = readback(*ch, va2.value(), kN);
    ASSERT_TRUE(replayed.isOk());
    for (float f : replayed.value())
        EXPECT_EQ(f, 2.0f);

    ch.reset();
    EXPECT_TRUE(auditor.finalCheck().isOk());
    EXPECT_TRUE(auditor.violations().empty());
}

TEST_F(ReconnectTest, DoubleFaultMidRecoveryEventuallyResumes)
{
    Supervisor sup(*sys);
    auto ch = openChannel(sup, "gpu0");
    constexpr uint64_t kN = 16;
    auto va = alloc(*ch, kN * 4);
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(ch->checkpoint().isOk());

    /* Kill incarnation 1 now, and incarnation 2 as soon as it comes
     * up: the second fault lands inside the recovery window
     * (typically on reconnect traffic). Incarnation 3 survives. */
    SimTime now = sys->platform().clock().now();
    tee::PartitionId victim = pidOf("gpu0");
    inject::FaultPlan plan(7);
    plan.killIncarnation(1, now, victim);
    plan.killIncarnation(2, now, victim);
    inject::FaultInjector injector(sys->spm(), plan);
    injector.arm();

    auto parked = ch->call("cuCtxSynchronize", Bytes{});
    EXPECT_EQ(parked.code(), ErrorCode::PeerFailed);
    ASSERT_TRUE(ch->awaitResume().isOk());
    EXPECT_EQ(ch->state(), ChannelState::Live);
    EXPECT_EQ(sup.restartsOf("gpu0"), 2u);
    EXPECT_TRUE(injector.allFired());

    ASSERT_TRUE(fill(*ch, va.value(), kN, 3.0f).isOk());
    auto values = readback(*ch, va.value(), kN);
    ASSERT_TRUE(values.isOk());
    for (float f : values.value())
        EXPECT_EQ(f, 3.0f);

    ch.reset();
    injector.disarm();
    EXPECT_TRUE(auditor.finalCheck().isOk());
    EXPECT_TRUE(auditor.violations().empty());
}

TEST_F(ReconnectTest, PinnedChannelGivesUpAfterBudget)
{
    SupervisorConfig cfg;
    cfg.restartBudget = 1;
    Supervisor sup(*sys, cfg);
    auto ch = openChannel(sup, "gpu0");
    ASSERT_TRUE(ch->checkpoint().isOk());

    SimTime now = sys->platform().clock().now();
    tee::PartitionId victim = pidOf("gpu0");
    inject::FaultPlan plan(11);
    for (uint64_t k = 1; k <= cfg.restartBudget + 1; ++k)
        plan.killIncarnation(k, now, victim);
    inject::FaultInjector injector(sys->spm(), plan);
    injector.arm();

    auto parked = ch->call("cuCtxSynchronize", Bytes{});
    EXPECT_EQ(parked.code(), ErrorCode::PeerFailed);
    EXPECT_EQ(ch->awaitResume().code(), ErrorCode::Degraded);
    EXPECT_EQ(ch->state(), ChannelState::GaveUp);
    EXPECT_TRUE(sup.quarantined("gpu0"));
    EXPECT_TRUE(sys->dispatcher().isDegraded("gpu0"));

    /* GaveUp is sticky: every further call reports Degraded. */
    EXPECT_EQ(ch->call("cuCtxSynchronize", Bytes{}).code(),
              ErrorCode::Degraded);
    injector.disarm();
}

TEST_F(ReconnectTest, UnpinnedChannelRePlacedAfterQuarantine)
{
    SupervisorConfig cfg;
    cfg.restartBudget = 0;  /* first failure quarantines */
    Supervisor sup(*sys, cfg);
    auto ch = openChannel(sup, "");
    const std::string first_device = ch->device();
    constexpr uint64_t kN = 16;
    auto va = alloc(*ch, kN * 4);
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(fill(*ch, va.value(), kN, 5.0f).isOk());
    ASSERT_TRUE(ch->checkpoint().isOk());

    ASSERT_TRUE(sys->injectPanic(first_device).isOk());
    auto parked = ch->call("cuCtxSynchronize", Bytes{});
    EXPECT_EQ(parked.code(), ErrorCode::PeerFailed);

    /* The device quarantines immediately; the dispatcher re-places
     * the callee on the healthy twin and the checkpoint follows. */
    ASSERT_TRUE(ch->awaitResume().isOk());
    EXPECT_EQ(ch->state(), ChannelState::Live);
    EXPECT_NE(ch->device(), first_device);

    auto values = readback(*ch, va.value(), kN);
    ASSERT_TRUE(values.isOk());
    for (float f : values.value())
        EXPECT_EQ(f, 5.0f);
}

} // namespace
} // namespace cronus::recover
