/**
 * @file
 * Supervisor unit tests (src/recover/): staged recovery under a
 * restart budget, deterministic backoff schedule, quarantine of
 * crash-looping partitions with dispatcher re-placement, and
 * born-hung detection through the seeded heartbeat table.
 */

#include <limits>

#include "../core/test_fixtures.hh"
#include "recover/supervisor.hh"

namespace cronus::recover
{
namespace
{

using core::AppHandle;
using core::CronusConfig;
using core::CronusSystem;

std::unique_ptr<CronusSystem>
makeTwoGpuSystem()
{
    Logger::instance().setQuiet(true);
    core::testing::registerTestCpuFunctions();
    accel::registerBuiltinKernels();
    CronusConfig cfg;
    cfg.numGpus = 2;
    cfg.withNpu = false;
    return std::make_unique<CronusSystem>(cfg);
}

TEST(SupervisorTest, BackoffScheduleIsExponentialAndDeterministic)
{
    auto sys_a = makeTwoGpuSystem();
    auto sys_b = makeTwoGpuSystem();
    SupervisorConfig cfg;
    cfg.backoffBaseNs = 10 * kNsPerMs;
    cfg.backoffFactor = 3;
    Supervisor sup_a(*sys_a, cfg);
    Supervisor sup_b(*sys_b, cfg);

    EXPECT_EQ(sup_a.backoffDelay(1), 10 * kNsPerMs);
    EXPECT_EQ(sup_a.backoffDelay(2), 30 * kNsPerMs);
    EXPECT_EQ(sup_a.backoffDelay(3), 90 * kNsPerMs);
    for (uint32_t n = 1; n <= 5; ++n)
        EXPECT_EQ(sup_a.backoffDelay(n), sup_b.backoffDelay(n));
}

TEST(SupervisorTest, BackoffClampsAtCeilingWithoutOverflow)
{
    auto sys = makeTwoGpuSystem();
    SupervisorConfig cfg;
    cfg.backoffBaseNs = 20 * kNsPerMs;
    cfg.backoffFactor = 2;
    cfg.backoffMaxNs = 10 * kNsPerSec;
    Supervisor sup(*sys, cfg);

    /* Within the default restart budget the schedule is untouched. */
    EXPECT_EQ(sup.backoffDelay(1), 20 * kNsPerMs);
    EXPECT_EQ(sup.backoffDelay(2), 40 * kNsPerMs);
    EXPECT_EQ(sup.backoffDelay(3), 80 * kNsPerMs);

    /* 20ms * 2^9 = 10.24s crosses the 10s ceiling at restart 10;
     * from there on the delay pins to the ceiling exactly. */
    EXPECT_EQ(sup.backoffDelay(9), 20 * kNsPerMs << 8);
    EXPECT_EQ(sup.backoffDelay(10), cfg.backoffMaxNs);
    EXPECT_EQ(sup.backoffDelay(11), cfg.backoffMaxNs);

    /* Unclamped, restart 100 would need 20ms * 2^99 -- far past
     * SimTime's 64-bit range. The clamp must short-circuit before
     * the multiply wraps instead of returning a wrapped value. */
    EXPECT_EQ(sup.backoffDelay(64), cfg.backoffMaxNs);
    EXPECT_EQ(sup.backoffDelay(100), cfg.backoffMaxNs);
    EXPECT_EQ(sup.backoffDelay(std::numeric_limits<uint32_t>::max()),
              cfg.backoffMaxNs);
}

TEST(SupervisorTest, BackoffClampDegenerateConfigs)
{
    auto sys = makeTwoGpuSystem();

    /* A base above the ceiling clamps immediately. */
    SupervisorConfig high;
    high.backoffBaseNs = 30 * kNsPerSec;
    high.backoffMaxNs = 10 * kNsPerSec;
    Supervisor sup_high(*sys, high);
    EXPECT_EQ(sup_high.backoffDelay(1), high.backoffMaxNs);
    EXPECT_EQ(sup_high.backoffDelay(50), high.backoffMaxNs);

    /* Factor < 2 means no growth: constant base, never past max,
     * and no division-by-zero inside the clamp arithmetic. */
    SupervisorConfig flat;
    flat.backoffBaseNs = 20 * kNsPerMs;
    flat.backoffFactor = 0;
    Supervisor sup_flat(*sys, flat);
    EXPECT_EQ(sup_flat.backoffDelay(1), 20 * kNsPerMs);
    EXPECT_EQ(sup_flat.backoffDelay(40), 20 * kNsPerMs);
}

TEST(SupervisorTest, StagedRecoveryBringsPartitionBack)
{
    auto sys = makeTwoGpuSystem();
    Supervisor sup(*sys);
    ASSERT_TRUE(sup.watch("gpu0").isOk());

    ASSERT_TRUE(sys->injectPanic("gpu0").isOk());
    EXPECT_EQ(sup.healthOf("gpu0"), DeviceHealth::Healthy);

    SimTime t0 = sys->platform().clock().now();
    ASSERT_TRUE(sup.awaitRecovery("gpu0").isOk());
    EXPECT_EQ(sup.healthOf("gpu0"), DeviceHealth::Healthy);
    EXPECT_EQ(sup.restartsOf("gpu0"), 1u);

    auto mos = sys->mosForDevice("gpu0");
    ASSERT_TRUE(mos.isOk());
    auto p = sys->spm().partition(mos.value()->partitionId());
    ASSERT_TRUE(p.isOk());
    EXPECT_EQ(p.value()->state, tee::PartitionState::Ready);
    EXPECT_EQ(p.value()->incarnation, 2u);

    /* Recovery charged backoff + scrub in virtual time, far below
     * the whole-machine reboot of the monolithic comparator. */
    SimTime elapsed = sys->platform().clock().now() - t0;
    EXPECT_GE(elapsed, sup.config().backoffBaseNs);
    EXPECT_LT(elapsed, sys->platform().costs().machineRebootNs);
}

TEST(SupervisorTest, BudgetExhaustionQuarantinesAndMarksDegraded)
{
    auto sys = makeTwoGpuSystem();
    SupervisorConfig cfg;
    cfg.restartBudget = 2;
    Supervisor sup(*sys, cfg);
    ASSERT_TRUE(sup.watch("gpu0").isOk());

    for (uint32_t i = 1; i <= cfg.restartBudget; ++i) {
        ASSERT_TRUE(sys->injectPanic("gpu0").isOk());
        ASSERT_TRUE(sup.awaitRecovery("gpu0").isOk());
        EXPECT_EQ(sup.restartsOf("gpu0"), i);
    }

    /* One failure past the budget: terminal quarantine. */
    ASSERT_TRUE(sys->injectPanic("gpu0").isOk());
    Status s = sup.awaitRecovery("gpu0");
    EXPECT_EQ(s.code(), ErrorCode::Degraded);
    EXPECT_TRUE(sup.quarantined("gpu0"));
    EXPECT_TRUE(sys->dispatcher().isDegraded("gpu0"));

    /* Quarantine is terminal: further waits fail the same way. */
    EXPECT_EQ(sup.awaitRecovery("gpu0").code(),
              ErrorCode::Degraded);
}

TEST(SupervisorTest, QuarantinedDeviceIsSkippedByPlacement)
{
    auto sys = makeTwoGpuSystem();
    SupervisorConfig cfg;
    cfg.restartBudget = 0;  /* first failure quarantines */
    Supervisor sup(*sys, cfg);
    ASSERT_TRUE(sup.watch("gpu0").isOk());

    ASSERT_TRUE(sys->injectPanic("gpu0").isOk());
    EXPECT_EQ(sup.awaitRecovery("gpu0").code(),
              ErrorCode::Degraded);

    /* Pinned placement on the quarantined device is refused ... */
    auto pinned = sys->createEnclave(core::testing::gpuManifest(),
                                     "test.cubin",
                                     core::testing::gpuImageBytes(),
                                     "gpu0");
    EXPECT_EQ(pinned.code(), ErrorCode::Degraded);

    /* ... and unpinned placement lands on the healthy twin. */
    auto placed = sys->createEnclave(core::testing::gpuManifest(),
                                     "test.cubin",
                                     core::testing::gpuImageBytes());
    ASSERT_TRUE(placed.isOk());
    EXPECT_EQ(placed.value().host->deviceName(), "gpu1");
}

TEST(SupervisorTest, BornHungPartitionCaughtWithinOnePoll)
{
    auto sys = makeTwoGpuSystem();
    Supervisor sup(*sys);
    ASSERT_TRUE(sup.watch("gpu0", /*hang_detect=*/true).isOk());

    /* gpu0's mOS never heartbeats after boot. Advancing past one
     * poll period must fail it and stage recovery. */
    SimClock &clock = sys->platform().clock();
    clock.advance(sup.config().pollPeriodNs + 1);
    sup.pump();
    EXPECT_EQ(sup.healthOf("gpu0"), DeviceHealth::BackingOff);

    ASSERT_TRUE(sup.awaitRecovery("gpu0").isOk());
    EXPECT_EQ(sup.restartsOf("gpu0"), 1u);
}

TEST(SupervisorTest, EventLogIsByteIdenticalAcrossRuns)
{
    auto run = [] {
        auto sys = makeTwoGpuSystem();
        SupervisorConfig cfg;
        cfg.restartBudget = 1;
        Supervisor sup(*sys, cfg);
        EXPECT_TRUE(sup.watch("gpu0").isOk());
        EXPECT_TRUE(sys->injectPanic("gpu0").isOk());
        EXPECT_TRUE(sup.awaitRecovery("gpu0").isOk());
        EXPECT_TRUE(sys->injectPanic("gpu0").isOk());
        EXPECT_EQ(sup.awaitRecovery("gpu0").code(),
                  ErrorCode::Degraded);
        return sup.report().dump();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace cronus::recover
