/** InvariantAuditor: clean runs pass, violations are caught. */

#include <gtest/gtest.h>

#include "../core/test_fixtures.hh"
#include "inject/injector.hh"
#include "inject/invariant_auditor.hh"

namespace cronus::inject
{
namespace
{

using core::testing::CronusBackendTest;

class AuditorTest : public CronusBackendTest
{
  protected:
    void
    SetUp() override
    {
        CronusBackendTest::SetUp();
        auditor.attachSpm(system->spm());
        cpu = makeCpuEnclave().value();
        gpu = makeGpuEnclave().value();
    }

    /* Declared before any channel so channels are destroyed (and
     * report their teardown) while the auditor is still alive. */
    InvariantAuditor auditor;
    core::AppHandle cpu, gpu;
};

TEST_P(AuditorTest, CleanRunPassesFinalCheck)
{
    {
        auto channel = std::move(system->connect(cpu, gpu).value());
        auditor.attachChannel(*channel);
        for (int i = 0; i < 4; ++i)
            ASSERT_TRUE(
                channel->callSync("cuCtxSynchronize", Bytes{})
                    .isOk());
        ASSERT_TRUE(channel->close().isOk());
    }
    EXPECT_TRUE(auditor.finalCheck().isOk())
        << auditor.report().dump();
    EXPECT_EQ(auditor.statistics().value("grants_created"), 1u);
    EXPECT_EQ(auditor.statistics().value("grants_revoked"), 1u);
    EXPECT_EQ(auditor.statistics().value("enqueues"), 4u);
    EXPECT_EQ(auditor.statistics().value("executions"), 4u);
    EXPECT_EQ(auditor.statistics().value("violations"), 0u);

    auto parsed = parseJson(auditor.report().dump());
    ASSERT_TRUE(parsed.isOk());
    EXPECT_TRUE(parsed.value()["ok"].asBool());
    EXPECT_EQ(parsed.value()["counters"]["enqueues"].asInt(), 4);
}

TEST_P(AuditorTest, FailedChannelStillBalancesGrantAccounting)
{
    {
        auto channel = std::move(system->connect(cpu, gpu).value());
        auditor.attachChannel(*channel);
        ASSERT_TRUE(
            system->spm().panic(gpu.host->partitionId()).isOk());
        EXPECT_EQ(channel->callSync("cuCtxSynchronize", Bytes{})
                      .code(),
                  ErrorCode::PeerFailed);
        EXPECT_TRUE(channel->close().isOk());
    }
    /* The grant was retired by the trap path, not revoked twice. */
    EXPECT_TRUE(auditor.finalCheck().isOk())
        << auditor.report().dump();
    EXPECT_EQ(auditor.statistics().value("grants_created"), 1u);
    EXPECT_EQ(auditor.statistics().value("grants_retired"), 1u);
    EXPECT_EQ(auditor.statistics().value("grants_revoked"), 0u);
    EXPECT_EQ(auditor.statistics().value("channel_failures"), 1u);
}

TEST_P(AuditorTest, LeakedGrantIsFlaggedByFinalCheck)
{
    /* A raw share with no teardown: exactly what the auditor is for
     * (every grant created must be torn down exactly once). */
    auto cpu_pid = cpu.host->partitionId();
    auto gpu_pid = gpu.host->partitionId();
    tee::PhysAddr base =
        system->spm().partition(cpu_pid).value()->memBase;
    ASSERT_TRUE(
        system->spm().sharePages(cpu_pid, gpu_pid, base, 1).isOk());

    Status verdict = auditor.finalCheck();
    EXPECT_EQ(verdict.code(), ErrorCode::IntegrityViolation);
    ASSERT_EQ(auditor.violations().size(), 1u);
    EXPECT_EQ(auditor.violations()[0].invariant, "grantAccounting");
    EXPECT_NE(auditor.violations()[0].detail.find("never torn down"),
              std::string::npos);
}

TEST_P(AuditorTest, CorruptedRidHeaderTripsStreamCheck)
{
    core::SrpcConfig cfg;
    cfg.slots = 4;
    cfg.slotBytes = 4096;
    auto channel =
        std::move(system->connect(cpu, gpu, cfg).value());
    auditor.attachChannel(*channel);
    ASSERT_TRUE(channel->callAsync("cuCtxSynchronize", Bytes{})
                    .isOk());

    /* Corrupt the ring's Rid field to a value far beyond the real
     * request index; the executor then runs ahead of the caller and
     * the auditor must flag Sid > Rid. */
    FaultPlan plan(9);
    plan.corruptHeader(1, "rid", 100, 0);
    FaultInjector injector(system->spm(), plan);
    injector.attachChannel(*channel);
    injector.arm();
    channel->pump(3);
    injector.disarm();

    EXPECT_TRUE(injector.allFired());
    EXPECT_FALSE(auditor.violations().empty());
    EXPECT_EQ(auditor.violations()[0].invariant, "streamCheck");
    EXPECT_FALSE(auditor.finalCheck().isOk());
    /* Teardown still works on the wrecked channel. */
    channel->close();
}

INSTANTIATE_TEST_SUITE_P(
    Backends, AuditorTest,
    ::testing::Values(tee::BackendSelect::Tz,
                      tee::BackendSelect::Pmp),
    core::testing::backendParamName);

} // namespace
} // namespace cronus::inject
