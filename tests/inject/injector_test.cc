/** FaultInjector actions against a live system. */

#include <gtest/gtest.h>

#include "../core/test_fixtures.hh"
#include "inject/injector.hh"

namespace cronus::inject
{
namespace
{

using core::testing::CronusBackendTest;

class InjectorTest : public CronusBackendTest
{
  protected:
    void
    SetUp() override
    {
        CronusBackendTest::SetUp();
        cpu = makeCpuEnclave().value();
        gpu = makeGpuEnclave().value();
        cpuPid = cpu.host->partitionId();
    }

    core::AppHandle cpu, gpu;
    tee::PartitionId cpuPid = 0;

    tee::PhysAddr
    cpuBase()
    {
        return system->spm()
            .partition(cpuPid)
            .value()
            ->memBase;
    }
};

TEST_P(InjectorTest, FailAccessAbortsExactlyOnce)
{
    FaultPlan plan(1);
    plan.failAccess(2, AccessFilter::readsBy(cpuPid));
    FaultInjector injector(system->spm(), plan);
    injector.arm();

    EXPECT_TRUE(system->spm().read(cpuPid, cpuBase(), 8).isOk());
    EXPECT_EQ(system->spm().read(cpuPid, cpuBase(), 8).code(),
              ErrorCode::AccessFault);
    /* One-shot: the event does not re-fire. */
    EXPECT_TRUE(system->spm().read(cpuPid, cpuBase(), 8).isOk());
    EXPECT_TRUE(injector.allFired());
    EXPECT_EQ(injector.fired()[0].seq, 2u);
}

TEST_P(InjectorTest, SkewClockChargesVirtualTime)
{
    FaultPlan plan(1);
    plan.skewClock(1, 123456);
    FaultInjector injector(system->spm(), plan);
    injector.arm();

    SimTime before = system->platform().clock().now();
    ASSERT_TRUE(system->spm().read(cpuPid, cpuBase(), 8).isOk());
    SimTime after = system->platform().clock().now();
    EXPECT_GE(after - before, SimTime(123456));

    ASSERT_EQ(injector.fired().size(), 1u);
    EXPECT_GE(injector.fired()[0].tAfter -
                  injector.fired()[0].tBefore,
              SimTime(123456));
}

TEST_P(InjectorTest, CorruptHeaderPokesTheNamedField)
{
    auto channel = std::move(system->connect(cpu, gpu).value());

    FaultPlan plan(1);
    plan.corruptHeader(1, "magic", 0xdeadbeef,
                       0, AccessFilter::readsBy(cpuPid));
    FaultInjector injector(system->spm(), plan);
    injector.attachChannel(*channel);
    injector.arm();
    /* Any caller read pulls the trigger; the poke lands before the
     * read proceeds. */
    uint64_t off =
        core::SrpcChannel::headerFieldOffset("magic").value();
    auto observed =
        system->spm().read(cpuPid, channel->ringBase() + off, 8);
    injector.disarm();

    ASSERT_TRUE(observed.isOk());
    ByteReader r(observed.value());
    EXPECT_EQ(r.getU64().value(), 0xdeadbeefull);
    /* The channel noticed nothing yet; teardown stays orderly. */
    EXPECT_TRUE(channel->close().isOk());
}

TEST_P(InjectorTest, UnknownHeaderFieldIsReportedNotFatal)
{
    auto channel = std::move(system->connect(cpu, gpu).value());
    FaultPlan plan(1);
    plan.corruptHeader(1, "bogus", 1, 0,
                       AccessFilter::readsBy(cpuPid));
    FaultInjector injector(system->spm(), plan);
    injector.attachChannel(*channel);
    injector.arm();

    /* The access itself still succeeds; the failure to corrupt is
     * recorded in the log instead of crashing the run. */
    EXPECT_TRUE(system->spm().read(cpuPid, cpuBase(), 8).isOk());
    ASSERT_EQ(injector.fired().size(), 1u);
    EXPECT_NE(injector.fired()[0].description.find(
                  "unknown ring-header field"),
              std::string::npos);
    injector.disarm();
    EXPECT_TRUE(channel->close().isOk());
}

TEST_P(InjectorTest, ReportListsFiredAndPendingEvents)
{
    FaultPlan plan(1);
    plan.skewClock(1, 100).skewClock(1000000, 100);
    FaultInjector injector(system->spm(), plan);
    injector.arm();
    ASSERT_TRUE(system->spm().read(cpuPid, cpuBase(), 8).isOk());
    injector.disarm();

    auto parsed = parseJson(injector.report().dump());
    ASSERT_TRUE(parsed.isOk());
    const JsonValue &doc = parsed.value();
    EXPECT_EQ(doc["fired"].asArray().size(), 1u);
    EXPECT_EQ(doc["pending"].asInt(), 1);
    EXPECT_EQ(doc["plan"]["seed"].asInt(), 1);
    EXPECT_FALSE(injector.allFired());
}

TEST_P(InjectorTest, DisarmStopsInjection)
{
    FaultPlan plan(1);
    plan.failAccess(1, AccessFilter::readsBy(cpuPid));
    FaultInjector injector(system->spm(), plan);
    injector.arm();
    injector.disarm();
    EXPECT_TRUE(system->spm().read(cpuPid, cpuBase(), 8).isOk());
    EXPECT_TRUE(injector.fired().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, InjectorTest,
    ::testing::Values(tee::BackendSelect::Tz,
                      tee::BackendSelect::Pmp),
    core::testing::backendParamName);

} // namespace
} // namespace cronus::inject
