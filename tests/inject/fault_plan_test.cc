/** FaultPlan determinism and schedule serialization. */

#include <gtest/gtest.h>

#include "../core/test_fixtures.hh"
#include "inject/injector.hh"

namespace cronus::inject
{
namespace
{

TEST(AccessFilterTest, MatchesPidAndDirection)
{
    tee::SpmAccess read{1, 0, 8, false, 1};
    tee::SpmAccess write{2, 0, 8, true, 2};
    EXPECT_TRUE(AccessFilter::any().matches(read));
    EXPECT_TRUE(AccessFilter::any().matches(write));
    EXPECT_TRUE(AccessFilter::readsBy(1).matches(read));
    EXPECT_FALSE(AccessFilter::readsBy(2).matches(read));
    EXPECT_FALSE(AccessFilter::readsBy(2).matches(write));
    EXPECT_TRUE(AccessFilter::writesBy(2).matches(write));
    EXPECT_FALSE(AccessFilter::writesBy(2).matches(read));
}

TEST(FaultPlanTest, SameSeedSameSchedule)
{
    FaultPlan a(42), b(42), c(43);
    a.killOnRandomAccess(10, 100000, 7);
    b.killOnRandomAccess(10, 100000, 7);
    c.killOnRandomAccess(10, 100000, 7);

    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a.events()[0].trigger.nth, b.events()[0].trigger.nth);
    EXPECT_NE(a.events()[0].trigger.nth, c.events()[0].trigger.nth);
    EXPECT_EQ(a.toJson().dump(), b.toJson().dump());
    EXPECT_NE(a.toJson().dump(), c.toJson().dump());
}

TEST(FaultPlanTest, RandomDrawStaysInRange)
{
    FaultPlan plan(9);
    for (int i = 0; i < 64; ++i)
        plan.killOnRandomAccess(50, 60, 1);
    for (const FaultEvent &e : plan.events()) {
        EXPECT_GE(e.trigger.nth, 50u);
        EXPECT_LE(e.trigger.nth, 60u);
    }
}

TEST(FaultPlanTest, JsonCarriesTheFullSchedule)
{
    FaultPlan plan(11);
    plan.killOnAccess(5, 3)
        .failAccess(7, AccessFilter::writesBy(2))
        .corruptHeader(9, "rid", 1000, 0)
        .skewClock(11, 123456);

    auto parsed = parseJson(plan.toJson().dump());
    ASSERT_TRUE(parsed.isOk());
    const JsonValue &doc = parsed.value();
    EXPECT_EQ(doc["seed"].asInt(), 11);
    const JsonArray &events = doc["events"].asArray();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0]["action"]["kind"].asString(),
              "kill_partition");
    EXPECT_EQ(events[0]["trigger"]["nth"].asInt(), 5);
    EXPECT_EQ(events[1]["action"]["kind"].asString(), "fail_access");
    EXPECT_EQ(events[1]["trigger"]["pid"].asInt(), 2);
    EXPECT_EQ(events[2]["action"]["field"].asString(), "rid");
    EXPECT_EQ(events[3]["action"]["skew_ns"].asInt(), 123456);
}

/**
 * End-to-end determinism: two fresh systems running the same
 * workload under the same plan seed trap at exactly the same
 * access ordinal.
 */
uint64_t
trapSeqForSeed(uint64_t seed)
{
    using namespace core::testing;
    Logger::instance().setQuiet(true);
    registerTestCpuFunctions();
    core::CronusSystem system;
    auto cpu = system
                   .createEnclave(cpuManifest(), "app.so",
                                  cpuImageBytes())
                   .value();
    auto gpu = system
                   .createEnclave(gpuManifest(), "test.cubin",
                                  gpuImageBytes())
                   .value();
    auto channel = std::move(system.connect(cpu, gpu).value());

    FaultPlan plan(seed);
    plan.killOnRandomAccess(20, 2000, gpu.host->partitionId());
    FaultInjector injector(system.spm(), plan);
    injector.arm();
    for (int i = 0; i < 5000 && !injector.allFired(); ++i) {
        if (!channel->callSync("cuCtxSynchronize", Bytes{}).isOk())
            break;
    }
    injector.disarm();
    return injector.fired().empty() ? 0 : injector.fired()[0].seq;
}

TEST(FaultPlanTest, SameSeedSameTrapPoint)
{
    uint64_t first = trapSeqForSeed(7);
    ASSERT_NE(first, 0u);
    EXPECT_EQ(first, trapSeqForSeed(7));
    EXPECT_NE(first, trapSeqForSeed(8));
}

} // namespace
} // namespace cronus::inject
