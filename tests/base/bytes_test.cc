/** Unit tests for byte-buffer helpers and serialization. */

#include <gtest/gtest.h>

#include "base/bytes.hh"

namespace cronus
{
namespace
{

TEST(BytesTest, HexRoundTrip)
{
    Bytes data = {0x00, 0x01, 0xab, 0xff};
    EXPECT_EQ(toHex(data), "0001abff");
    auto back = fromHex("0001abff");
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), data);
}

TEST(BytesTest, HexAcceptsUpperCase)
{
    auto v = fromHex("ABCDEF");
    ASSERT_TRUE(v.isOk());
    EXPECT_EQ(toHex(v.value()), "abcdef");
}

TEST(BytesTest, HexRejectsBadInput)
{
    EXPECT_EQ(fromHex("abc").code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(fromHex("zz").code(), ErrorCode::InvalidArgument);
}

TEST(BytesTest, ConstantTimeEqual)
{
    Bytes a = {1, 2, 3};
    Bytes b = {1, 2, 3};
    Bytes c = {1, 2, 4};
    Bytes d = {1, 2};
    EXPECT_TRUE(constantTimeEqual(a, b));
    EXPECT_FALSE(constantTimeEqual(a, c));
    EXPECT_FALSE(constantTimeEqual(a, d));
}

TEST(BytesTest, WriterReaderRoundTrip)
{
    ByteWriter w;
    w.putU8(0xab);
    w.putU16(0x1234);
    w.putU32(0xdeadbeef);
    w.putU64(0x0123456789abcdefULL);
    w.putBytes({9, 8, 7});
    w.putString("cronus");

    ByteReader r(w.data());
    EXPECT_EQ(r.getU8().value(), 0xab);
    EXPECT_EQ(r.getU16().value(), 0x1234);
    EXPECT_EQ(r.getU32().value(), 0xdeadbeefu);
    EXPECT_EQ(r.getU64().value(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.getBytes().value(), (Bytes{9, 8, 7}));
    EXPECT_EQ(r.getString().value(), "cronus");
    EXPECT_TRUE(r.atEnd());
}

TEST(BytesTest, ReaderRejectsTruncation)
{
    ByteWriter w;
    w.putU32(7);
    Bytes data = w.take();
    data.pop_back();
    ByteReader r(data);
    EXPECT_EQ(r.getU32().code(), ErrorCode::InvalidArgument);
}

TEST(BytesTest, ReaderRejectsOversizedLengthPrefix)
{
    /* A length prefix larger than the remaining payload must not
     * read out of bounds. */
    ByteWriter w;
    w.putU32(1000);
    w.putU8(1);
    ByteReader r(w.data());
    EXPECT_EQ(r.getBytes().code(), ErrorCode::InvalidArgument);
}

TEST(StatusTest, ToStringAndPredicates)
{
    Status ok = Status::ok();
    EXPECT_TRUE(ok.isOk());
    EXPECT_EQ(ok.toString(), "Ok");

    Status err = makeError(ErrorCode::AuthFailed, "bad sig");
    EXPECT_FALSE(err.isOk());
    EXPECT_EQ(err.code(), ErrorCode::AuthFailed);
    EXPECT_EQ(err.toString(), "AuthFailed: bad sig");
}

TEST(StatusTest, ResultValueAndError)
{
    Result<int> good(42);
    EXPECT_TRUE(good.isOk());
    EXPECT_EQ(good.value(), 42);
    EXPECT_EQ(good.valueOr(0), 42);

    Result<int> bad(ErrorCode::NotFound, "nope");
    EXPECT_FALSE(bad.isOk());
    EXPECT_EQ(bad.code(), ErrorCode::NotFound);
    EXPECT_EQ(bad.valueOr(-1), -1);
    EXPECT_THROW(bad.value(), PanicError);
}

} // namespace
} // namespace cronus
