/**
 * @file
 * SimClock unit tests: frame routing for the parallel engine and
 * the always-on hardening aborts (advance overflow, barrier
 * monotonicity, frame-before-barrier). The aborts are exercised
 * with death tests because they fire via abort(), not exceptions --
 * they must hold in NDEBUG builds too.
 */

#include <gtest/gtest.h>

#include "base/sim_clock.hh"

namespace cronus
{
namespace
{

TEST(SimClockTest, AdvanceAndNow)
{
    SimClock clock;
    EXPECT_EQ(clock.now(), 0u);
    clock.advance(100);
    clock.advance(50);
    EXPECT_EQ(clock.now(), 150u);
    clock.advanceTo(120);  // backwards jump is a no-op
    EXPECT_EQ(clock.now(), 150u);
    clock.advanceTo(400);
    EXPECT_EQ(clock.now(), 400u);
}

TEST(SimClockTest, ResetClearsTimeAndBarrier)
{
    SimClock clock;
    clock.advance(100);
    clock.commitBarrier(100);
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
    EXPECT_EQ(clock.barrier(), 0u);
}

TEST(SimClockTest, FrameCapturesCharges)
{
    SimClock clock;
    clock.advance(1000);
    EXPECT_EQ(SimClock::activeFrame(), nullptr);
    {
        SimClock::FrameScope frame(clock, clock.now());
        ASSERT_NE(SimClock::activeFrame(), nullptr);
        clock.advance(40);
        clock.advance(2);
        /* Framed reads see base + local... */
        EXPECT_EQ(clock.now(), 1042u);
        EXPECT_EQ(frame.localNs(), 42u);
    }
    /* ...but the shared absolute time never moved. */
    EXPECT_EQ(SimClock::activeFrame(), nullptr);
    EXPECT_EQ(clock.now(), 1000u);
}

TEST(SimClockTest, FrameAdvanceTo)
{
    SimClock clock;
    clock.advance(500);
    SimClock::FrameScope frame(clock, 500);
    clock.advanceTo(575);
    EXPECT_EQ(frame.localNs(), 75u);
    clock.advanceTo(10);  // backwards: no-op inside a frame too
    EXPECT_EQ(frame.localNs(), 75u);
}

TEST(SimClockTest, NestedFramesStack)
{
    SimClock clock;
    clock.advance(100);
    SimClock::FrameScope outer(clock, 100);
    clock.advance(10);
    {
        SimClock::FrameScope inner(clock, clock.now());
        clock.advance(5);
        EXPECT_EQ(clock.now(), 115u);
        EXPECT_EQ(inner.localNs(), 5u);
    }
    /* The inner frame's charges were a private receipt; the outer
     * frame still holds only its own. */
    EXPECT_EQ(outer.localNs(), 10u);
    EXPECT_EQ(clock.now(), 110u);
}

TEST(SimClockTest, FrameIsClockSpecific)
{
    SimClock framed;
    SimClock other;
    SimClock::FrameScope frame(framed, 0);
    framed.advance(10);
    other.advance(99);  // different clock: charges stay direct
    EXPECT_EQ(frame.localNs(), 10u);
    EXPECT_EQ(other.now(), 99u);
}

TEST(SimClockTest, BarrierIsMonotonic)
{
    SimClock clock;
    clock.commitBarrier(100);
    clock.commitBarrier(100);  // same point is fine
    clock.commitBarrier(250);
    EXPECT_EQ(clock.barrier(), 250u);
}

TEST(SimClockDeath, AdvanceOverflowAborts)
{
    SimClock clock;
    clock.advance(~0ull);
    EXPECT_DEATH(clock.advance(2), "overflow");
}

TEST(SimClockDeath, FramedAdvanceOverflowAborts)
{
    SimClock clock;
    EXPECT_DEATH(
        {
            SimClock::FrameScope frame(clock, 0);
            clock.advance(~0ull);
            clock.advance(2);
        },
        "overflow");
}

TEST(SimClockDeath, BarrierBackwardsAborts)
{
    SimClock clock;
    clock.commitBarrier(1000);
    EXPECT_DEATH(clock.commitBarrier(999), "moving backwards");
}

TEST(SimClockDeath, FrameBeforeBarrierAborts)
{
    SimClock clock;
    clock.advance(1000);
    clock.commitBarrier(1000);
    EXPECT_DEATH(SimClock::FrameScope frame(clock, 500),
                 "before committed barrier");
}

} // namespace
} // namespace cronus
