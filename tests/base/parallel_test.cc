/**
 * @file
 * ParallelExecutor unit tests: the engine's contract is that a
 * batch of per-domain events commits bit-for-bit like the serial
 * engine -- commit callbacks in issue order, per-domain FIFO body
 * order, identical end-of-batch virtual time for any worker count,
 * and a serial-equivalent abort/discard protocol.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "base/parallel.hh"

namespace cronus
{
namespace
{

TEST(ParallelExecutorTest, SerialModeRunsInline)
{
    SimClock clock;
    ParallelExecutor exec(clock, 0);
    EXPECT_FALSE(exec.parallel());
    EXPECT_EQ(exec.workers(), 0u);

    int bodyRan = 0;
    int committed = 0;
    exec.submit(
        3, [&] { ++bodyRan; clock.advance(10); },
        [&] { ++committed; return true; });
    /* Inline: both already happened, no flush needed. */
    EXPECT_EQ(bodyRan, 1);
    EXPECT_EQ(committed, 1);
    EXPECT_EQ(clock.now(), 10u);
    EXPECT_EQ(exec.eventsCommitted(), 1u);
    EXPECT_EQ(exec.flush(), 0u);
}

TEST(ParallelExecutorTest, CommitOrderIsIssueOrder)
{
    SimClock clock;
    ParallelExecutor exec(clock, 4);
    ASSERT_TRUE(exec.parallel());

    std::vector<int> commitOrder;
    for (int i = 0; i < 40; ++i) {
        exec.submit(
            static_cast<ParallelExecutor::DomainId>(i % 5),
            [&clock] { clock.advance(7); },
            [&commitOrder, i] {
                commitOrder.push_back(i);
                return true;
            });
    }
    EXPECT_EQ(exec.flush(), 40u);
    std::vector<int> want(40);
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(commitOrder, want);
    EXPECT_EQ(clock.now(), 40u * 7u);
    EXPECT_EQ(exec.batches(), 1u);
}

TEST(ParallelExecutorTest, PerDomainBodiesRunFifo)
{
    SimClock clock;
    ParallelExecutor exec(clock, 4);

    /* One vector per domain; a domain's events run on one worker
     * sequentially, so no synchronization is needed inside. */
    std::vector<std::vector<int>> bodyOrder(3);
    for (int i = 0; i < 30; ++i) {
        const unsigned d = static_cast<unsigned>(i) % 3;
        exec.submit(d, [&bodyOrder, d, i] {
            bodyOrder[d].push_back(i);
        });
    }
    exec.flush();
    for (unsigned d = 0; d < 3; ++d) {
        ASSERT_EQ(bodyOrder[d].size(), 10u);
        for (size_t k = 1; k < bodyOrder[d].size(); ++k)
            EXPECT_LT(bodyOrder[d][k - 1], bodyOrder[d][k]);
    }
}

/* The headline determinism property: the same batched charge
 * pattern ends at the same virtual time whatever the worker
 * count -- including the serial engine. */
TEST(ParallelExecutorTest, EndTimeIndependentOfWorkerCount)
{
    auto run = [](unsigned workers) {
        SimClock clock;
        ParallelExecutor exec(clock, workers);
        for (int batch = 0; batch < 4; ++batch) {
            for (int i = 0; i < 24; ++i) {
                exec.submit(
                    static_cast<ParallelExecutor::DomainId>(i % 6),
                    [&clock, i] {
                        clock.advance(
                            static_cast<SimTime>(13 + 31 * i));
                    });
            }
            exec.flush();
        }
        return clock.now();
    };
    const SimTime serial = run(0);
    EXPECT_EQ(run(1), serial);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(8), serial);
    EXPECT_GT(serial, 0u);
}

TEST(ParallelExecutorTest, HooksSeeTrueStartAndFrameBase)
{
    SimClock clock;
    clock.advance(1000);
    ParallelExecutor exec(clock, 2);

    std::vector<std::pair<SimTime, SimTime>> commits;
    std::atomic<int> begun{0};
    ParallelExecutor::Hooks hooks;
    hooks.beginEvent = [&]() -> void * {
        ++begun;
        return nullptr;
    };
    hooks.commitEvent = [&](void *, SimTime true_start,
                            SimTime frame_base) {
        commits.push_back({true_start, frame_base});
    };
    exec.setHooks(std::move(hooks));

    for (int i = 0; i < 3; ++i)
        exec.submit(static_cast<unsigned>(i),
                    [&clock] { clock.advance(100); });
    exec.flush();

    EXPECT_EQ(begun.load(), 3);
    ASSERT_EQ(commits.size(), 3u);
    /* Every frame ran against the batch base; the commit replay
     * serializes the true starts. */
    using TimePair = std::pair<SimTime, SimTime>;
    EXPECT_EQ(commits[0], TimePair(1000u, 1000u));
    EXPECT_EQ(commits[1], TimePair(1100u, 1000u));
    EXPECT_EQ(commits[2], TimePair(1200u, 1000u));
    EXPECT_EQ(clock.now(), 1300u);
    EXPECT_EQ(clock.barrier(), 1300u);
}

TEST(ParallelExecutorTest, CommitFalseAbortsRestOfBatch)
{
    SimClock clock;
    ParallelExecutor exec(clock, 2);

    std::vector<int> committed;
    std::vector<int> discarded;
    for (int i = 0; i < 6; ++i) {
        exec.submit(
            static_cast<unsigned>(i % 2),
            [&clock] { clock.advance(50); },
            [&committed, i] {
                committed.push_back(i);
                return i != 2;  // abort after the third event
            },
            [&discarded, i] { discarded.push_back(i); });
    }
    EXPECT_EQ(exec.flush(), 3u);
    EXPECT_EQ(committed, (std::vector<int>{0, 1, 2}));
    /* Discards also run in issue order, and their receipts never
     * reach the clock. */
    EXPECT_EQ(discarded, (std::vector<int>{3, 4, 5}));
    EXPECT_EQ(clock.now(), 150u);
    EXPECT_EQ(exec.eventsDiscarded(), 3u);
}

TEST(ParallelExecutorTest, BodyExceptionRethrownAtCommit)
{
    SimClock clock;
    ParallelExecutor exec(clock, 2);

    std::vector<int> discarded;
    exec.submit(0, [&clock] { clock.advance(10); });
    exec.submit(1, [] { throw std::runtime_error("boom"); });
    exec.submit(0, [&clock] { clock.advance(10); }, {},
                [&discarded] { discarded.push_back(2); });
    EXPECT_THROW(exec.flush(), std::runtime_error);
    /* Events before the throwing one committed; events after were
     * discarded. The faulted event still charged its receipt, like
     * a serial run that charged work before throwing. */
    EXPECT_EQ(clock.now(), 10u);
    EXPECT_EQ(discarded, (std::vector<int>{2}));
}

TEST(ParallelExecutorTest, FlushOnEmptyIsNoop)
{
    SimClock clock;
    ParallelExecutor exec(clock, 4);
    EXPECT_EQ(exec.flush(), 0u);
    EXPECT_EQ(exec.batches(), 0u);
    EXPECT_TRUE(exec.idle());
}

TEST(ParallelExecutorTest, WorkersFromEnv)
{
    ::setenv("CRONUS_PARALLEL", "8", 1);
    EXPECT_EQ(ParallelExecutor::workersFromEnv(), 8u);
    ::setenv("CRONUS_PARALLEL", "1", 1);
    EXPECT_EQ(ParallelExecutor::workersFromEnv(), 0u);
    ::setenv("CRONUS_PARALLEL", "0", 1);
    EXPECT_EQ(ParallelExecutor::workersFromEnv(), 0u);
    ::setenv("CRONUS_PARALLEL", "100000", 1);
    EXPECT_EQ(ParallelExecutor::workersFromEnv(), 64u);
    ::unsetenv("CRONUS_PARALLEL");
    EXPECT_EQ(ParallelExecutor::workersFromEnv(), 0u);
}

TEST(ParallelExecutorTest, RunTasksRunsEveryTask)
{
    std::atomic<uint64_t> sum{0};
    std::vector<std::function<void()>> tasks;
    for (uint64_t i = 1; i <= 100; ++i)
        tasks.push_back([&sum, i] { sum += i; });
    runTasks(4, tasks);
    EXPECT_EQ(sum.load(), 5050u);

    sum = 0;
    runTasks(1, tasks);  // inline path
    EXPECT_EQ(sum.load(), 5050u);
}

} // namespace
} // namespace cronus
