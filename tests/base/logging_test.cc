/** Unit tests for logging and error reporting. */

#include <gtest/gtest.h>

#include "base/logging.hh"

namespace cronus
{
namespace
{

TEST(LoggingTest, PanicThrowsPanicError)
{
    Logger::instance().setQuiet(true);
    EXPECT_THROW(panic("boom"), PanicError);
    try {
        panic("with message");
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "with message");
    }
}

TEST(LoggingTest, FatalThrowsFatalError)
{
    Logger::instance().setQuiet(true);
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(LoggingTest, WarnCountsWarnings)
{
    Logger::instance().setQuiet(true);
    Logger::instance().resetCounters();
    warn("one");
    warn("two");
    EXPECT_EQ(Logger::instance().warnCount(), 2u);
}

TEST(LoggingTest, AssertMacro)
{
    Logger::instance().setQuiet(true);
    EXPECT_NO_THROW(CRONUS_ASSERT(1 + 1 == 2, "math"));
    EXPECT_THROW(CRONUS_ASSERT(false, "nope"), PanicError);
}

TEST(LoggingTest, FormatString)
{
    EXPECT_EQ(detail::formatString("%d-%s", 7, "x"), "7-x");
}

} // namespace
} // namespace cronus
