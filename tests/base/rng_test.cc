/** Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>

#include "base/rng.hh"

namespace cronus
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowCoversAllValues)
{
    Rng rng(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(42);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(RngTest, FillCoversWholeBuffer)
{
    Rng rng(99);
    std::vector<uint8_t> buf(37, 0);
    rng.fill(buf);
    int nonzero = 0;
    for (uint8_t b : buf)
        nonzero += (b != 0);
    EXPECT_GT(nonzero, 20);
}

TEST(RngTest, ShufflePermutes)
{
    Rng rng(5);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, orig);
}

} // namespace
} // namespace cronus
