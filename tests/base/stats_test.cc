/** Unit tests for statistics primitives. */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/stats.hh"

namespace cronus
{
namespace
{

TEST(StatsTest, CounterBasics)
{
    Counter c("hits");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(c.name(), "hits");
}

TEST(StatsTest, DistributionStatistics)
{
    Distribution d;
    for (double v : {4.0, 1.0, 3.0, 2.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.sum(), 10.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 4.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 2.5);
}

TEST(StatsTest, DistributionPercentileCacheInvalidation)
{
    /* percentile() sorts lazily and caches; a new sample must
     * invalidate the cached order. */
    Distribution d;
    d.sample(10.0);
    d.sample(20.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 20.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 10.0);  /* cached query */
    d.sample(5.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 20.0);
    d.reset();
    d.sample(42.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 42.0);
}

TEST(StatsTest, DistributionEmptyPanics)
{
    Distribution d;
    EXPECT_THROW(d.mean(), PanicError);
    EXPECT_THROW(d.min(), PanicError);
    EXPECT_THROW(d.max(), PanicError);
}

TEST(StatsTest, DistributionEmptyPercentileIsZero)
{
    /* Every percentile of an empty distribution is defined as 0 so
     * snapshot paths need no caller-side emptiness guard; the
     * definition must survive a reset back to empty. */
    Distribution d;
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 0.0);
    d.sample(7.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 7.0);
    d.reset();
    EXPECT_DOUBLE_EQ(d.percentile(0.999), 0.0);
}

TEST(StatsTest, ThroughputSeriesBuckets)
{
    ThroughputSeries series(100 * kNsPerMs);
    /* 5 events in bucket 0, 2 in bucket 3. */
    for (int i = 0; i < 5; ++i)
        series.record(i * 10 * kNsPerMs);
    series.record(320 * kNsPerMs);
    series.record(399 * kNsPerMs);

    auto rates = series.ratesPerSecond(400 * kNsPerMs);
    ASSERT_EQ(rates.size(), 5u);
    EXPECT_DOUBLE_EQ(rates[0], 50.0);  /* 5 per 100ms = 50/s */
    EXPECT_DOUBLE_EQ(rates[1], 0.0);
    EXPECT_DOUBLE_EQ(rates[3], 20.0);
}

TEST(StatsTest, StatGroupCreatesOnDemand)
{
    StatGroup group;
    group.counter("rpc").inc(3);
    EXPECT_EQ(group.value("rpc"), 3u);
    EXPECT_EQ(group.value("unknown"), 0u);
    group.reset();
    EXPECT_EQ(group.value("rpc"), 0u);
}

TEST(SimClockTest, AdvanceAndAdvanceTo)
{
    SimClock clock;
    EXPECT_EQ(clock.now(), 0u);
    clock.advance(100);
    EXPECT_EQ(clock.now(), 100u);
    clock.advanceTo(50);   /* must not go backwards */
    EXPECT_EQ(clock.now(), 100u);
    clock.advanceTo(500);
    EXPECT_EQ(clock.now(), 500u);
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
}

} // namespace
} // namespace cronus
