/** Unit tests for the JSON parser/writer. */

#include <gtest/gtest.h>

#include "base/json.hh"

namespace cronus
{
namespace
{

TEST(JsonTest, ParsesPrimitives)
{
    EXPECT_TRUE(parseJson("null").value().isNull());
    EXPECT_TRUE(parseJson("true").value().asBool());
    EXPECT_FALSE(parseJson("false").value().asBool());
    EXPECT_EQ(parseJson("42").value().asInt(), 42);
    EXPECT_EQ(parseJson("-7").value().asInt(), -7);
    EXPECT_DOUBLE_EQ(parseJson("2.5").value().asDouble(), 2.5);
    EXPECT_DOUBLE_EQ(parseJson("1e3").value().asDouble(), 1000.0);
    EXPECT_EQ(parseJson("\"hi\"").value().asString(), "hi");
}

TEST(JsonTest, ParsesManifestShape)
{
    /* The paper's Fig. 3 manifest for a CUDA mEnclave. */
    const char *manifest = R"({
        "device_type": "gpu",
        "images": {
            "mat.cubin": "654c28186756aa92",
            "cudart.so": "2814c867aa955265",
            "cudav3.mos": "de92d2f587d10a6"
        },
        "mEcalls": "mat.edl",
        "resources": { "memory": "1G" }
    })";
    auto result = parseJson(manifest);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    const JsonValue &v = result.value();
    EXPECT_EQ(v["device_type"].asString(), "gpu");
    EXPECT_EQ(v["images"]["mat.cubin"].asString(),
              "654c28186756aa92");
    EXPECT_EQ(v["resources"]["memory"].asString(), "1G");
    EXPECT_TRUE(v["missing"].isNull());
}

TEST(JsonTest, ParsesNestedArrays)
{
    auto v = parseJson("[1, [2, 3], {\"a\": [4]}]");
    ASSERT_TRUE(v.isOk());
    const JsonArray &arr = v.value().asArray();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_EQ(arr[0].asInt(), 1);
    EXPECT_EQ(arr[1].asArray()[1].asInt(), 3);
    EXPECT_EQ(arr[2]["a"].asArray()[0].asInt(), 4);
}

TEST(JsonTest, ParsesStringEscapes)
{
    auto v = parseJson(R"("a\"b\\c\ndA")");
    ASSERT_TRUE(v.isOk());
    EXPECT_EQ(v.value().asString(), "a\"b\\c\ndA");
}

TEST(JsonTest, RejectsMalformedInput)
{
    EXPECT_FALSE(parseJson("").isOk());
    EXPECT_FALSE(parseJson("{").isOk());
    EXPECT_FALSE(parseJson("[1,]").isOk());
    EXPECT_FALSE(parseJson("{\"a\" 1}").isOk());
    EXPECT_FALSE(parseJson("tru").isOk());
    EXPECT_FALSE(parseJson("1 2").isOk());
    EXPECT_FALSE(parseJson("\"unterminated").isOk());
    EXPECT_FALSE(parseJson("\"bad \\x escape\"").isOk());
}

TEST(JsonTest, RejectsDeepNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    EXPECT_FALSE(parseJson(deep).isOk());
}

TEST(JsonTest, DumpRoundTrips)
{
    const char *doc =
        R"({"b":[1,2.5,"x"],"a":{"k":true},"n":null})";
    auto v = parseJson(doc);
    ASSERT_TRUE(v.isOk());
    auto again = parseJson(v.value().dump());
    ASSERT_TRUE(again.isOk());
    EXPECT_TRUE(v.value() == again.value());
}

TEST(JsonTest, TypedGetters)
{
    auto v = parseJson(R"({"s":"x","i":3,"o":{},"a":[]})").value();
    EXPECT_EQ(v.getString("s").value(), "x");
    EXPECT_EQ(v.getInt("i").value(), 3);
    EXPECT_TRUE(v.getObject("o").isOk());
    EXPECT_TRUE(v.getArray("a").isOk());
    EXPECT_EQ(v.getString("i").code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(v.getInt("missing").code(), ErrorCode::InvalidArgument);
    EXPECT_TRUE(v.has("s"));
    EXPECT_FALSE(v.has("zz"));
}

} // namespace
} // namespace cronus
