/**
 * Shootdown-precision tests: the software TLB must never serve a
 * stale translation across the SPM's invalidation events. Each case
 * first makes an entry *hot* (a prior access filled the per-partition
 * stage-2 cache), then performs the invalidating event -- grant
 * revoke, partition failure (r_f marking + tag invalidation), scrub
 * and reload, hook-injected panic (proceed-trap) -- and asserts the
 * very first subsequent access faults exactly as the uncached model
 * would (§IV-D).
 */

#include <gtest/gtest.h>

#include "accel/gpu.hh"
#include "tee/normal_world.hh"
#include "tee/spm.hh"

namespace cronus::tee
{
namespace
{

class TlbShootdownTest
    : public ::testing::TestWithParam<BackendSelect>
{
  protected:
    void
    SetUp() override
    {
        Logger::instance().setQuiet(true);
        hw::TranslationCache::setGlobalEnable(true);
        platform = std::make_unique<hw::Platform>();
        accel::GpuConfig gc;
        gc.name = "gpu0";
        platform->registerDevice(
            std::make_unique<accel::GpuDevice>(gc), 40);
        accel::GpuConfig gc2;
        gc2.name = "gpu1";
        gc2.rotSeed = {'g', '1'};
        platform->registerDevice(
            std::make_unique<accel::GpuDevice>(gc2), 41);

        monitor = std::make_unique<SecureMonitor>(*platform);
        hw::DeviceTree dt = platform->buildDeviceTree();
        hw::DeviceTree secure_dt;
        for (auto node : dt.all()) {
            node.world = hw::World::Secure;
            secure_dt.addNode(node);
        }
        ASSERT_TRUE(monitor->boot(secure_dt).isOk());
        spm = std::make_unique<Spm>(*monitor, GetParam());
    }

    void
    TearDown() override
    {
        hw::TranslationCache::setGlobalEnable(true);
    }

    MosImage
    image(const std::string &name)
    {
        return MosImage{name, "gpu", toBytes("code-of-" + name)};
    }

    PartitionId
    makePartition(const std::string &device,
                  uint64_t mem = 1 << 20)
    {
        auto pid = spm->createPartition(image(device + ".mos"),
                                        device, mem);
        EXPECT_TRUE(pid.isOk()) << pid.status().toString();
        return pid.value();
    }

    /** Read @p addr from @p pid until the stage-2 TLB reports a hit,
     *  proving the entry is resident. */
    void
    heat(PartitionId pid, PhysAddr addr)
    {
        uint64_t hits0 = spm->tlbCounters().hits;
        ASSERT_TRUE(spm->read(pid, addr, 8).isOk());
        ASSERT_TRUE(spm->read(pid, addr, 8).isOk());
        ASSERT_GT(spm->tlbCounters().hits, hits0)
            << "entry never became hot";
    }

    std::unique_ptr<hw::Platform> platform;
    std::unique_ptr<SecureMonitor> monitor;
    std::unique_ptr<Spm> spm;
};

TEST_P(TlbShootdownTest, GrantRevokeFaultsFirstPeerAccess)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;
    auto gid = spm->sharePages(a, b, a_base, 1);
    ASSERT_TRUE(gid.isOk());

    heat(b, a_base);
    ASSERT_TRUE(spm->revokeGrant(gid.value(), a).isOk());

    /* First post-revoke access: the hot entry must not win. */
    EXPECT_EQ(spm->read(b, a_base, 8).code(),
              ErrorCode::AccessFault);
    /* The owner's own mapping is unaffected. */
    EXPECT_TRUE(spm->read(a, a_base, 8).isOk());
}

TEST_P(TlbShootdownTest, FailureInvalidationBeatsHotEntry)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;
    ASSERT_TRUE(spm->sharePages(a, b, a_base, 1).isOk());

    heat(b, a_base);
    /* Failure step 1: r_f set, survivor entries tag-invalidated. */
    ASSERT_TRUE(spm->failPartition(a).isOk());

    /* First access is the proceed-trap, the second finds the page
     * unmapped -- same sequence as the uncached model. */
    EXPECT_EQ(spm->read(b, a_base, 8).code(), ErrorCode::PeerFailed);
    EXPECT_EQ(spm->read(b, a_base, 8).code(),
              ErrorCode::AccessFault);
}

TEST_P(TlbShootdownTest, ScrubAndReloadServesNoStaleData)
{
    PartitionId a = makePartition("gpu0");
    PhysAddr base = spm->partition(a).value()->memBase;
    ASSERT_TRUE(spm->write(a, base, Bytes{0x55, 0x66}).isOk());
    heat(a, base);

    ASSERT_TRUE(spm->failPartition(a).isOk());
    EXPECT_EQ(spm->read(a, base, 2).code(), ErrorCode::InvalidState);
    ASSERT_TRUE(spm->recoverPartition(a, image("gpu0.mos")).isOk());

    /* The scrub rebuilt the partition; the pre-failure entry must
     * not leak the crashed incarnation's data (A3). */
    EXPECT_EQ(spm->read(a, base, 2).value(), (Bytes{0, 0}));
}

TEST_P(TlbShootdownTest, HookInjectedPanicTrapsHotAccess)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;
    ASSERT_TRUE(spm->sharePages(a, b, a_base, 1).isOk());

    heat(b, a_base);
    /* Injector-style hook: the owner dies immediately before the
     * survivor's second post-install access -- by then the entry is
     * hot again, so only a shootdown makes the access trap. */
    uint64_t kill_at = 2;
    spm->setAccessHook([&](const SpmAccess &acc) {
        if (acc.seq == kill_at)
            spm->panic(a);
        return Status::ok();
    });
    ASSERT_TRUE(spm->read(b, a_base, 8).isOk());
    EXPECT_EQ(spm->read(b, a_base, 8).code(), ErrorCode::PeerFailed);
}

TEST_P(TlbShootdownTest, ZeroCopyPathsRespectShootdown)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;
    auto gid = spm->sharePages(a, b, a_base, 1);
    ASSERT_TRUE(gid.isOk());

    /* Heat through the zero-copy entry points themselves. */
    ASSERT_TRUE(spm->writeU64(b, a_base, 0x1122334455667788ull)
                    .isOk());
    auto v = spm->readU64(b, a_base);
    ASSERT_TRUE(v.isOk());
    EXPECT_EQ(v.value(), 0x1122334455667788ull);
    auto span = spm->borrow(b, a_base, 8, false);
    ASSERT_TRUE(span.isOk());
    ASSERT_TRUE(span.value().ok());

    ASSERT_TRUE(spm->revokeGrant(gid.value(), a).isOk());

    /* Every non-allocating entry point faults on first re-access. */
    EXPECT_EQ(spm->readU64(b, a_base).code(),
              ErrorCode::AccessFault);
    EXPECT_EQ(spm->writeU64(b, a_base, 1).code(),
              ErrorCode::AccessFault);
    EXPECT_EQ(spm->borrow(b, a_base, 8, false).code(),
              ErrorCode::AccessFault);
    uint8_t buf[8];
    EXPECT_EQ(spm->readInto(b, a_base, buf, 8).code(),
              ErrorCode::AccessFault);
}

TEST_P(TlbShootdownTest, DisabledTlbTakesIdenticalFaultSequence)
{
    hw::TranslationCache::setGlobalEnable(false);
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;
    ASSERT_TRUE(spm->sharePages(a, b, a_base, 1).isOk());
    ASSERT_TRUE(spm->read(b, a_base, 8).isOk());
    ASSERT_TRUE(spm->failPartition(a).isOk());
    EXPECT_EQ(spm->read(b, a_base, 8).code(), ErrorCode::PeerFailed);
    EXPECT_EQ(spm->read(b, a_base, 8).code(),
              ErrorCode::AccessFault);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TlbShootdownTest,
    ::testing::Values(BackendSelect::Tz, BackendSelect::Pmp),
    [](const ::testing::TestParamInfo<BackendSelect> &info) {
        return std::string(backendName(
            resolveBackend(info.param)));
    });

} // namespace
} // namespace cronus::tee
