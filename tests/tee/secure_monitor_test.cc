/** Tests for the secure monitor (EL3). */

#include <gtest/gtest.h>

#include "tee/normal_world.hh"
#include "tee/secure_monitor.hh"

namespace cronus::tee
{
namespace
{

hw::DeviceTree
validDt()
{
    hw::DeviceTree dt;
    hw::DtNode gpu;
    gpu.name = "gpu0";
    gpu.compatible = "nvidia,sim";
    gpu.mmioBase = 0x1000;
    gpu.mmioSize = 0x1000;
    gpu.irq = 40;
    gpu.world = hw::World::Secure;
    dt.addNode(gpu);
    return dt;
}

TEST(SecureMonitorTest, BootValidatesAndLocks)
{
    Logger::instance().setQuiet(true);
    hw::Platform platform;
    SecureMonitor sm(platform);
    EXPECT_FALSE(sm.booted());
    ASSERT_TRUE(sm.boot(validDt()).isOk());
    EXPECT_TRUE(sm.booted());
    EXPECT_TRUE(platform.tzasc().isLocked());
    EXPECT_TRUE(platform.tzpc().isLocked());
    EXPECT_EQ(platform.tzpc().deviceWorld("gpu0"), hw::World::Secure);
    /* DT frozen for attestation. */
    EXPECT_EQ(sm.deviceTree().measure(), validDt().measure());
    /* Double boot rejected. */
    EXPECT_EQ(sm.boot(validDt()).code(), ErrorCode::InvalidState);
}

TEST(SecureMonitorTest, BootRejectsInvalidDt)
{
    Logger::instance().setQuiet(true);
    hw::Platform platform;
    SecureMonitor sm(platform);
    hw::DeviceTree bad = validDt();
    hw::DtNode dup;
    dup.name = "gpu1";
    dup.compatible = "x";
    dup.mmioBase = 0x1800;  /* overlaps gpu0 */
    dup.mmioSize = 0x1000;
    dup.irq = 41;
    bad.addNode(dup);
    EXPECT_EQ(sm.boot(bad).code(), ErrorCode::InvalidArgument);
    EXPECT_FALSE(sm.booted());
}

TEST(SecureMonitorTest, WorldSwitchChargesAndCounts)
{
    hw::Platform platform;
    SecureMonitor sm(platform);
    SimTime t0 = platform.clock().now();
    sm.worldSwitch();
    EXPECT_EQ(platform.clock().now() - t0,
              platform.costs().worldSwitchNs);
    sm.sel2RpcSwitch();
    EXPECT_EQ(sm.worldSwitchCount(), 1u);
    EXPECT_EQ(sm.sel2SwitchCount(), 1u);
    /* The S-EL2 RPC leg is 4x the basic world switch. */
    EXPECT_EQ(platform.costs().sel2RpcSwitchNs,
              4 * platform.costs().worldSwitchNs);
}

TEST(SecureMonitorTest, AttestationKeyEndorsedByRot)
{
    hw::Platform platform;
    SecureMonitor sm(platform);
    EXPECT_TRUE(crypto::verify(platform.rootOfTrust().publicKey(),
                               sm.attestationKey().toBytes(),
                               sm.atkEndorsement()));
    Bytes report = toBytes("report-bytes");
    auto sig = sm.signReport(report);
    EXPECT_TRUE(crypto::verify(sm.attestationKey(), report, sig));
}

TEST(SecureMonitorTest, LocalSealKeyStablePerPlatform)
{
    hw::Platform p1, p2;
    SecureMonitor a(p1), b(p1);
    EXPECT_EQ(a.localSealKey(), b.localSealKey());
    hw::PlatformConfig cfg;
    cfg.rotSeed = toBytes("other-machine");
    hw::Platform other(cfg);
    SecureMonitor c(other);
    EXPECT_NE(a.localSealKey(), c.localSealKey());
}

TEST(NormalWorldTest, AllocationAndAccess)
{
    hw::Platform platform;
    SecureMonitor sm(platform);
    Spm spm(sm);
    NormalWorld nw(sm, spm);
    auto addr = nw.allocate(100);
    ASSERT_TRUE(addr.isOk());
    ASSERT_TRUE(nw.write(addr.value(), Bytes{1, 2, 3}).isOk());
    EXPECT_EQ(nw.read(addr.value(), 3).value(), (Bytes{1, 2, 3}));
    /* Normal world cannot reach secure memory. */
    EXPECT_EQ(nw.read(platform.secureBase(), 4).code(),
              ErrorCode::AccessFault);
}

TEST(NormalWorldTest, ThreadSchedulerRunsUntilDone)
{
    hw::Platform platform;
    SecureMonitor sm(platform);
    Spm spm(sm);
    NormalWorld nw(sm, spm);
    int a_steps = 0, b_steps = 0;
    nw.spawnThread([&] { return ++a_steps < 3; });
    nw.spawnThread([&] { return ++b_steps < 5; });
    EXPECT_EQ(nw.liveThreads(), 2u);
    nw.runThreads();
    EXPECT_EQ(a_steps, 3);
    EXPECT_EQ(b_steps, 5);
    EXPECT_EQ(nw.liveThreads(), 0u);
}

} // namespace
} // namespace cronus::tee
