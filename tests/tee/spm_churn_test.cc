/**
 * SPM grant lifecycle under create/destroy churn: share-once re-arm
 * after revoke, revoke authorization, Retired-vs-Revoked hook
 * semantics when a partition dies holding live grants, and
 * TLB-shootdown precision across partition incarnations.
 */

#include <gtest/gtest.h>

#include "accel/gpu.hh"
#include "tee/spm.hh"

namespace cronus::tee
{
namespace
{

class SpmChurnTest
    : public ::testing::TestWithParam<BackendSelect>
{
  protected:
    void
    SetUp() override
    {
        Logger::instance().setQuiet(true);
        platform = std::make_unique<hw::Platform>();
        for (uint32_t i = 0; i < 3; ++i) {
            accel::GpuConfig gc;
            gc.name = "gpu" + std::to_string(i);
            gc.rotSeed = {'g', static_cast<uint8_t>('0' + i)};
            platform->registerDevice(
                std::make_unique<accel::GpuDevice>(gc), 40 + i);
        }
        monitor = std::make_unique<SecureMonitor>(*platform);
        hw::DeviceTree dt = platform->buildDeviceTree();
        hw::DeviceTree secure_dt;
        for (auto node : dt.all()) {
            node.world = hw::World::Secure;
            secure_dt.addNode(node);
        }
        ASSERT_TRUE(monitor->boot(secure_dt).isOk());
        spm = std::make_unique<Spm>(*monitor, GetParam());

        spm->setGrantHook([this](const GrantEvent &ev) {
            events.push_back(ev);
        });
    }

    MosImage
    image(const std::string &name)
    {
        return MosImage{name, "gpu", toBytes("code-of-" + name)};
    }

    PartitionId
    makePartition(const std::string &device)
    {
        auto pid = spm->createPartition(image(device + ".mos"),
                                        device, 1 << 20);
        EXPECT_TRUE(pid.isOk()) << pid.status().toString();
        return pid.value();
    }

    PhysAddr
    baseOf(PartitionId pid)
    {
        return spm->partition(pid).value()->memBase;
    }

    /** Grant-hook events of @p kind, in arrival order. */
    std::vector<uint64_t>
    eventIds(GrantEvent::Kind kind) const
    {
        std::vector<uint64_t> ids;
        for (const GrantEvent &ev : events) {
            if (ev.kind == kind)
                ids.push_back(ev.id);
        }
        return ids;
    }

    std::unique_ptr<hw::Platform> platform;
    std::unique_ptr<SecureMonitor> monitor;
    std::unique_ptr<Spm> spm;
    std::vector<GrantEvent> events;
};

TEST_P(SpmChurnTest, ShareOnceReArmsAfterRevoke)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr page = baseOf(a);

    auto g1 = spm->sharePages(a, b, page, 1);
    ASSERT_TRUE(g1.isOk());

    /* Share-once: the page is pinned while the grant lives... */
    auto dup = spm->sharePages(a, b, page, 1);
    ASSERT_FALSE(dup.isOk());
    EXPECT_EQ(dup.code(), ErrorCode::InvalidState);

    /* ...and returns to the budget on revoke, re-armed for the next
     * churn iteration with a fresh grant id. */
    ASSERT_TRUE(spm->revokeGrant(g1.value(), a).isOk());
    auto g2 = spm->sharePages(a, b, page, 1);
    ASSERT_TRUE(g2.isOk());
    EXPECT_GT(g2.value(), g1.value());

    /* Many cycles keep working -- no budget leak across churn. */
    uint64_t last = g2.value();
    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(spm->revokeGrant(last, a).isOk());
        auto g = spm->sharePages(a, b, page, 1);
        ASSERT_TRUE(g.isOk()) << "cycle " << i;
        last = g.value();
    }
}

TEST_P(SpmChurnTest, RevokeRequiresAPartyToTheGrant)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PartitionId c = makePartition("gpu2");

    auto g = spm->sharePages(a, b, baseOf(a), 1);
    ASSERT_TRUE(g.isOk());

    /* A third partition cannot tear down someone else's grant. */
    Status outsider = spm->revokeGrant(g.value(), c);
    ASSERT_FALSE(outsider.isOk());
    EXPECT_EQ(outsider.code(), ErrorCode::PermissionDenied);
    EXPECT_TRUE(spm->grant(g.value()).value()->active);

    /* The peer is a party: its revoke succeeds; a second revoke is
     * InvalidState and an unknown id NotFound. */
    EXPECT_TRUE(spm->revokeGrant(g.value(), b).isOk());
    EXPECT_EQ(spm->revokeGrant(g.value(), a).code(),
              ErrorCode::InvalidState);
    EXPECT_EQ(spm->revokeGrant(9999, a).code(),
              ErrorCode::NotFound);
}

TEST_P(SpmChurnTest, DeathRetiresGrantsRevokeDoesNot)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");

    /* Normal churn teardown: Created then Revoked. */
    auto g1 = spm->sharePages(a, b, baseOf(a), 1);
    ASSERT_TRUE(g1.isOk());
    ASSERT_TRUE(spm->revokeGrant(g1.value(), a).isOk());
    EXPECT_EQ(eventIds(GrantEvent::Kind::Revoked),
              std::vector<uint64_t>{g1.value()});
    EXPECT_TRUE(eventIds(GrantEvent::Kind::Retired).empty());

    /* Partition death with a live grant: failure handling retires
     * it during the scrub -- Retired, never Revoked. */
    auto g2 = spm->sharePages(a, b, baseOf(a) + hw::kPageSize, 1);
    ASSERT_TRUE(g2.isOk());
    ASSERT_TRUE(spm->panic(b).isOk());
    ASSERT_TRUE(
        spm->recoverPartition(b, image("gpu1.mos")).isOk());

    EXPECT_EQ(eventIds(GrantEvent::Kind::Retired),
              std::vector<uint64_t>{g2.value()});
    EXPECT_EQ(eventIds(GrantEvent::Kind::Revoked),
              std::vector<uint64_t>{g1.value()});
    EXPECT_FALSE(spm->grant(g2.value()).value()->active);

    /* The surviving owner's page stays pinned until its pending
     * trap resolves -- a premature re-share would alias the page
     * into the new incarnation. */
    auto early = spm->sharePages(a, b, baseOf(a) + hw::kPageSize, 1);
    ASSERT_FALSE(early.isOk());
    EXPECT_EQ(early.code(), ErrorCode::InvalidState);

    /* The owner's next touch takes the proceed-trap... */
    EXPECT_EQ(spm->read(a, baseOf(a) + hw::kPageSize, 8).code(),
              ErrorCode::PeerFailed);

    /* ...after which the trap is resolved: access recovers and the
     * share-once budget re-arms. No second Retired fires for the
     * already-retired grant. */
    EXPECT_TRUE(spm->read(a, baseOf(a) + hw::kPageSize, 8).isOk());
    EXPECT_EQ(eventIds(GrantEvent::Kind::Retired),
              std::vector<uint64_t>{g2.value()});
    EXPECT_TRUE(
        spm->sharePages(a, b, baseOf(a) + hw::kPageSize, 1).isOk());
}

TEST_P(SpmChurnTest, ShootdownOnlyHitsTheFailedPeersGrant)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PartitionId c = makePartition("gpu2");

    PhysAddr page_b = baseOf(a);
    PhysAddr page_c = baseOf(a) + hw::kPageSize;
    auto gb = spm->sharePages(a, b, page_b, 1);
    auto gc = spm->sharePages(a, c, page_c, 1);
    ASSERT_TRUE(gb.isOk());
    ASSERT_TRUE(gc.isOk());
    ASSERT_TRUE(spm->write(a, page_b, Bytes{1}).isOk());
    ASSERT_TRUE(spm->write(a, page_c, Bytes{2}).isOk());

    ASSERT_TRUE(spm->panic(b).isOk());
    ASSERT_TRUE(
        spm->recoverPartition(b, image("gpu1.mos")).isOk());

    /* The shootdown is precise: a's translation for the grant shared
     * with the dead b is invalidated (trap on first touch), while
     * the unrelated grant to c stays hot on both sides. */
    EXPECT_TRUE(spm->read(c, page_c, 1).isOk());
    EXPECT_TRUE(spm->read(a, page_c, 1).isOk());
    EXPECT_TRUE(spm->grant(gc.value()).value()->active);
    EXPECT_EQ(spm->read(a, page_b, 1).code(),
              ErrorCode::PeerFailed);

    /* b's new incarnation starts with no grants of its own. */
    EXPECT_EQ(spm->partition(b).value()->incarnation, 2u);
    EXPECT_TRUE(spm->grantsOf(b).empty());
}

TEST_P(SpmChurnTest, RecycledIncarnationCannotUseStaleMappings)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr page = baseOf(a);

    auto g1 = spm->sharePages(a, b, page, 1);
    ASSERT_TRUE(g1.isOk());
    ASSERT_TRUE(spm->write(a, page, Bytes{0x77}).isOk());
    ASSERT_TRUE(spm->read(b, page, 1).isOk());

    /* Kill and recycle b twice in a row (churned restarts). */
    for (uint64_t round = 2; round <= 3; ++round) {
        ASSERT_TRUE(spm->panic(b).isOk());
        ASSERT_TRUE(
            spm->recoverPartition(b, image("gpu1.mos")).isOk());
        EXPECT_EQ(spm->partition(b).value()->incarnation, round);
        /* The old incarnation's mapping of a's page died with it. */
        EXPECT_EQ(spm->read(b, page, 1).code(),
                  ErrorCode::AccessFault);
    }

    /* Resolve a's side, then re-share with the new incarnation: the
     * fresh grant works end to end (no stale translation reuse). */
    EXPECT_EQ(spm->read(a, page, 1).code(), ErrorCode::PeerFailed);
    ASSERT_TRUE(spm->read(a, page, 1).isOk());
    auto g2 = spm->sharePages(a, b, page, 1);
    ASSERT_TRUE(g2.isOk());
    ASSERT_TRUE(spm->write(a, page, Bytes{0x78}).isOk());
    auto back = spm->read(b, page, 1);
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), Bytes{0x78});
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SpmChurnTest,
    ::testing::Values(BackendSelect::Tz, BackendSelect::Pmp),
    [](const ::testing::TestParamInfo<BackendSelect> &info) {
        return std::string(backendName(
            resolveBackend(info.param)));
    });

} // namespace
} // namespace cronus::tee
