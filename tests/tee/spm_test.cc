/** Tests for the Secure Partition Manager and failure recovery. */

#include <gtest/gtest.h>

#include "accel/gpu.hh"
#include "tee/normal_world.hh"
#include "tee/spm.hh"

namespace cronus::tee
{
namespace
{

class SpmTest : public ::testing::TestWithParam<BackendSelect>
{
  protected:
    void
    SetUp() override
    {
        Logger::instance().setQuiet(true);
        /* Some tests re-run SetUp() to get a second machine; drop
         * the old stack in reverse-dependency order first so the Spm
         * never outlives the Platform it references. */
        spm.reset();
        monitor.reset();
        platform.reset();
        platform = std::make_unique<hw::Platform>();
        accel::GpuConfig gc;
        gc.name = "gpu0";
        platform->registerDevice(
            std::make_unique<accel::GpuDevice>(gc), 40);
        accel::GpuConfig gc2;
        gc2.name = "gpu1";
        gc2.rotSeed = {'g', '1'};
        platform->registerDevice(
            std::make_unique<accel::GpuDevice>(gc2), 41);

        monitor = std::make_unique<SecureMonitor>(*platform);
        hw::DeviceTree dt = platform->buildDeviceTree();
        /* Mark devices secure in the DT. */
        hw::DeviceTree secure_dt;
        for (auto node : dt.all()) {
            node.world = hw::World::Secure;
            secure_dt.addNode(node);
        }
        ASSERT_TRUE(monitor->boot(secure_dt).isOk());
        spm = std::make_unique<Spm>(*monitor, GetParam());
    }

    MosImage
    image(const std::string &name)
    {
        return MosImage{name, "gpu", toBytes("code-of-" + name)};
    }

    PartitionId
    makePartition(const std::string &device,
                  uint64_t mem = 1 << 20)
    {
        auto pid = spm->createPartition(image(device + ".mos"),
                                        device, mem);
        EXPECT_TRUE(pid.isOk()) << pid.status().toString();
        return pid.value();
    }

    std::unique_ptr<hw::Platform> platform;
    std::unique_ptr<SecureMonitor> monitor;
    std::unique_ptr<Spm> spm;
};

TEST_P(SpmTest, CreatePartitionBasics)
{
    PartitionId pid = makePartition("gpu0");
    auto p = spm->partition(pid);
    ASSERT_TRUE(p.isOk());
    EXPECT_EQ(p.value()->deviceName, "gpu0");
    EXPECT_EQ(p.value()->state, PartitionState::Ready);
    EXPECT_EQ(p.value()->incarnation, 1u);
    EXPECT_TRUE(spm->validateMosId(pid));
    EXPECT_FALSE(spm->validateMosId(99));
}

TEST_P(SpmTest, DevicePartitionOneToOne)
{
    makePartition("gpu0");
    auto dup = spm->createPartition(image("x"), "gpu0", 1 << 20);
    EXPECT_EQ(dup.code(), ErrorCode::InvalidState);
    auto unknown = spm->createPartition(image("x"), "tpu9", 1 << 20);
    EXPECT_EQ(unknown.code(), ErrorCode::NotFound);
}

TEST_P(SpmTest, PartitionMemoryReadWrite)
{
    PartitionId pid = makePartition("gpu0");
    PhysAddr base = spm->partition(pid).value()->memBase;
    Bytes data = {1, 2, 3, 4};
    ASSERT_TRUE(spm->write(pid, base + 0x100, data).isOk());
    auto back = spm->read(pid, base + 0x100, 4);
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), data);
}

TEST_P(SpmTest, PartitionCannotTouchForeignMemory)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr b_base = spm->partition(b).value()->memBase;
    /* Partition a's stage-2 has no mapping for b's memory. */
    EXPECT_EQ(spm->read(a, b_base, 16).code(),
              ErrorCode::AccessFault);
    EXPECT_EQ(spm->write(a, b_base, Bytes{1}).code(),
              ErrorCode::AccessFault);
}

TEST_P(SpmTest, NormalWorldCannotReadSecureMemory)
{
    PartitionId pid = makePartition("gpu0");
    PhysAddr base = spm->partition(pid).value()->memBase;
    ASSERT_TRUE(spm->write(pid, base, Bytes{42}).isOk());
    EXPECT_EQ(platform->busRead(hw::World::Normal, base, 1).code(),
              ErrorCode::AccessFault);
}

TEST_P(SpmTest, SharePagesAndCommunicate)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;

    auto gid = spm->sharePages(a, b, a_base, 2);
    ASSERT_TRUE(gid.isOk()) << gid.status().toString();

    Bytes msg = {0xde, 0xad};
    ASSERT_TRUE(spm->write(a, a_base, msg).isOk());
    auto seen = spm->read(b, a_base, 2);
    ASSERT_TRUE(seen.isOk()) << seen.status().toString();
    EXPECT_EQ(seen.value(), msg);

    /* Both directions work. */
    Bytes reply = {0xbe, 0xef};
    ASSERT_TRUE(spm->write(b, a_base, reply).isOk());
    EXPECT_EQ(spm->read(a, a_base, 2).value(), reply);
}

TEST_P(SpmTest, ShareOnceRuleEnforced)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;
    ASSERT_TRUE(spm->sharePages(a, b, a_base, 1).isOk());
    EXPECT_EQ(spm->sharePages(a, b, a_base, 1).code(),
              ErrorCode::InvalidState);
}

TEST_P(SpmTest, ShareValidation)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;
    EXPECT_EQ(spm->sharePages(a, a, a_base, 1).code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(spm->sharePages(a, b, a_base + 1, 1).code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(spm->sharePages(a, b, a_base, 0).code(),
              ErrorCode::InvalidArgument);
    /* Range outside the owner's memory. */
    PhysAddr b_base = spm->partition(b).value()->memBase;
    EXPECT_EQ(spm->sharePages(a, b, b_base, 1).code(),
              ErrorCode::PermissionDenied);
}

TEST_P(SpmTest, FailureInvalidatesSurvivorAccess)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;
    ASSERT_TRUE(spm->sharePages(a, b, a_base, 1).isOk());

    /* a fails. b's next access to the shared page traps and gets a
     * PeerFailed signal -- never stale data (A1) nor a hang (A2). */
    ASSERT_TRUE(spm->failPartition(a).isOk());
    bool signaled = false;
    spm->setTrapHandler([&](const TrapSignal &sig) {
        EXPECT_EQ(sig.accessor, b);
        EXPECT_EQ(sig.failedPeer, a);
        signaled = true;
    });
    EXPECT_EQ(spm->read(b, a_base, 8).code(), ErrorCode::PeerFailed);
    EXPECT_TRUE(signaled);

    /* After the trap the mapping is gone entirely. */
    EXPECT_EQ(spm->read(b, a_base, 8).code(), ErrorCode::AccessFault);
}

TEST_P(SpmTest, OwnerRecoversOwnPagesAfterPeerFailure)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;
    ASSERT_TRUE(spm->sharePages(a, b, a_base, 1).isOk());
    ASSERT_TRUE(spm->write(a, a_base, Bytes{7}).isOk());

    /* The *peer* fails; the owner's first access traps, then access
     * to its own page is restored. */
    ASSERT_TRUE(spm->failPartition(b).isOk());
    EXPECT_EQ(spm->read(a, a_base, 1).code(), ErrorCode::PeerFailed);
    auto again = spm->read(a, a_base, 1);
    ASSERT_TRUE(again.isOk()) << again.status().toString();
    EXPECT_EQ(again.value(), Bytes{7});
}

TEST_P(SpmTest, RfBlocksNewSharingWithFailedPartition)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr b_base = spm->partition(b).value()->memBase;
    ASSERT_TRUE(spm->failPartition(a).isOk());
    EXPECT_EQ(spm->sharePages(b, a, b_base, 1).code(),
              ErrorCode::PeerFailed);
}

TEST_P(SpmTest, RecoveryScrubsMemoryAndBumpsIncarnation)
{
    PartitionId a = makePartition("gpu0");
    PhysAddr base = spm->partition(a).value()->memBase;
    ASSERT_TRUE(spm->write(a, base, Bytes{0x55, 0x66}).isOk());

    ASSERT_TRUE(spm->failPartition(a).isOk());
    /* While failed, the partition cannot run. */
    EXPECT_EQ(spm->read(a, base, 2).code(), ErrorCode::InvalidState);

    ASSERT_TRUE(spm->recoverPartition(a, image("gpu0.mos")).isOk());
    auto p = spm->partition(a);
    EXPECT_EQ(p.value()->state, PartitionState::Ready);
    EXPECT_EQ(p.value()->incarnation, 2u);
    /* A3 defense: crashed data is cleared before the new mOS runs. */
    EXPECT_EQ(spm->read(a, base, 2).value(), (Bytes{0, 0}));
}

TEST_P(SpmTest, RecoveryIsFasterThanMachineReboot)
{
    PartitionId a = makePartition("gpu0");
    ASSERT_TRUE(spm->failPartition(a).isOk());
    SimTime before = platform->clock().now();
    ASSERT_TRUE(spm->recoverPartition(a, image("gpu0.mos")).isOk());
    SimTime recovery = platform->clock().now() - before;
    EXPECT_LT(recovery, platform->costs().machineRebootNs / 10);
    /* "hundreds of milliseconds" */
    EXPECT_GE(recovery, 100 * kNsPerMs);
    EXPECT_LT(recovery, 1000 * kNsPerMs);
}

TEST_P(SpmTest, ConcurrentRecoveryChargesMaxCost)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    ASSERT_TRUE(spm->failPartition(a).isOk());
    ASSERT_TRUE(spm->failPartition(b).isOk());

    SimTime before = platform->clock().now();
    ASSERT_TRUE(spm->recoverConcurrently(
        {a, b}, {image("gpu0.mos"), image("gpu1.mos")}).isOk());
    SimTime concurrent = platform->clock().now() - before;

    /* Compare with two *serial* recoveries on a fresh setup: the
     * concurrent path must be roughly half. */
    SetUp();
    PartitionId a2 = makePartition("gpu0");
    PartitionId b2 = makePartition("gpu1");
    ASSERT_TRUE(spm->failPartition(a2).isOk());
    ASSERT_TRUE(spm->failPartition(b2).isOk());
    before = platform->clock().now();
    ASSERT_TRUE(spm->recoverPartition(a2, image("gpu0.mos")).isOk());
    ASSERT_TRUE(spm->recoverPartition(b2, image("gpu1.mos")).isOk());
    SimTime serial = platform->clock().now() - before;
    EXPECT_LT(concurrent, serial);
}

TEST_P(SpmTest, HangDetection)
{
    PartitionId a = makePartition("gpu0");
    ASSERT_TRUE(spm->heartbeat(a).isOk());
    /* First poll records progress; partition stays alive. */
    EXPECT_TRUE(spm->pollHangs().empty());
    ASSERT_TRUE(spm->heartbeat(a).isOk());
    EXPECT_TRUE(spm->pollHangs().empty());
    /* No heartbeat between polls: hang detected, partition failed. */
    auto failed = spm->pollHangs();
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0], a);
    EXPECT_EQ(spm->partition(a).value()->state,
              PartitionState::Failed);
}

TEST_P(SpmTest, BornHungPartitionFailsOnFirstPoll)
{
    /* A partition that never heartbeats after boot must be caught
     * by the very first poll: createPartition seeds the heartbeat
     * table, so "no entry yet" can't read as progress. */
    PartitionId a = makePartition("gpu0");
    auto failed = spm->pollHangs();
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0], a);
    EXPECT_EQ(spm->partition(a).value()->state,
              PartitionState::Failed);

    /* The same holds after a restart: the re-seeded entry catches a
     * born-hung new incarnation within one poll too. */
    ASSERT_TRUE(spm->recoverPartition(a, image("gpu0.mos")).isOk());
    auto again = spm->pollHangs();
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0], a);
}

TEST_P(SpmTest, RequestRestartIsIdempotentForFailedPartitions)
{
    /* Regression: requestRestart used to fail-then-recover
     * unconditionally, so calling it on a partition that already
     * panicked bounced with InvalidState from the fail step. */
    PartitionId a = makePartition("gpu0");
    ASSERT_TRUE(spm->panic(a).isOk());
    ASSERT_EQ(spm->partition(a).value()->state,
              PartitionState::Failed);

    ASSERT_TRUE(spm->requestRestart(a, image("gpu0.mos")).isOk());
    auto p = spm->partition(a);
    ASSERT_TRUE(p.isOk());
    EXPECT_EQ(p.value()->state, PartitionState::Ready);
    EXPECT_EQ(p.value()->incarnation, 2u);

    /* The Ready path still runs both steps. */
    ASSERT_TRUE(spm->requestRestart(a, image("gpu0.mos")).isOk());
    EXPECT_EQ(spm->partition(a).value()->incarnation, 3u);

    EXPECT_EQ(spm->requestRestart(99, image("x")).code(),
              ErrorCode::NotFound);
}

TEST_P(SpmTest, RevokeGrantRestoresShareBudget)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;
    uint64_t gid = spm->sharePages(a, b, a_base, 1).value();

    EXPECT_EQ(spm->revokeGrant(gid, 99).code(),
              ErrorCode::PermissionDenied);
    ASSERT_TRUE(spm->revokeGrant(gid, a).isOk());
    EXPECT_EQ(spm->read(b, a_base, 1).code(), ErrorCode::AccessFault);
    /* The page can be shared again. */
    EXPECT_TRUE(spm->sharePages(a, b, a_base, 1).isOk());
}

TEST_P(SpmTest, RequiresSecureBoot)
{
    hw::Platform fresh;
    SecureMonitor unbooted(fresh);
    Spm spm2(unbooted);
    EXPECT_EQ(spm2.createPartition(image("x"), "gpu0",
                                   1 << 20).code(),
              ErrorCode::InvalidState);
}

TEST_P(SpmTest, GrantsOfListsActiveGrants)
{
    PartitionId a = makePartition("gpu0");
    PartitionId b = makePartition("gpu1");
    PhysAddr a_base = spm->partition(a).value()->memBase;
    uint64_t gid = spm->sharePages(a, b, a_base, 1).value();
    EXPECT_EQ(spm->grantsOf(a), std::vector<uint64_t>{gid});
    EXPECT_EQ(spm->grantsOf(b), std::vector<uint64_t>{gid});
    EXPECT_TRUE(spm->grantsOf(99).empty());
    EXPECT_TRUE(spm->grant(gid).isOk());
    EXPECT_FALSE(spm->grant(999).isOk());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SpmTest,
    ::testing::Values(BackendSelect::Tz, BackendSelect::Pmp),
    [](const ::testing::TestParamInfo<BackendSelect> &info) {
        return std::string(backendName(
            resolveBackend(info.param)));
    });

} // namespace
} // namespace cronus::tee
