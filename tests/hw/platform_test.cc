/** Integration tests for the assembled platform. */

#include <gtest/gtest.h>

#include "hw/platform.hh"

namespace cronus::hw
{
namespace
{

/** Minimal device for bus tests. */
class DummyDevice : public Device
{
  public:
    DummyDevice() : Device("dummy0", "test,dummy", 0x100) {}

    Result<uint64_t> mmioRead(uint64_t offset) override
    {
        if (offset >= mmioSize())
            return Status(ErrorCode::AccessFault, "mmio oob");
        return reg;
    }

    Status mmioWrite(uint64_t offset, uint64_t value) override
    {
        if (offset >= mmioSize())
            return Status(ErrorCode::AccessFault, "mmio oob");
        reg = value;
        return Status::ok();
    }

    void reset(bool) override { reg = 0; }

    /** Expose DMA helpers for tests. */
    Status dmaReadHost(PhysAddr addr, uint8_t *out, uint64_t len)
    {
        return platform->dmaRead(*this, addr, out, len);
    }
    Status dmaWriteHost(PhysAddr addr, const uint8_t *data,
                        uint64_t len)
    {
        return platform->dmaWrite(*this, addr, data, len);
    }

    uint64_t reg = 0;
};

TEST(PlatformTest, MemoryLayout)
{
    Platform p;
    EXPECT_EQ(p.normalBase(), 0u);
    EXPECT_EQ(p.secureBase(), p.normalSize());
    EXPECT_EQ(p.dram().size(), p.normalSize() + p.secureSize());
}

TEST(PlatformTest, TzascFiltersBusAccess)
{
    Platform p;
    Bytes data = {1, 2, 3};
    EXPECT_TRUE(p.busWrite(World::Normal, 0x1000, data).isOk());
    EXPECT_TRUE(
        p.busWrite(World::Secure, p.secureBase(), data).isOk());
    EXPECT_EQ(p.busWrite(World::Normal, p.secureBase(), data).code(),
              ErrorCode::AccessFault);
    EXPECT_EQ(p.busRead(World::Normal, p.secureBase(), 16).code(),
              ErrorCode::AccessFault);
    EXPECT_EQ(p.stats().value("tzasc_faults"), 2u);
}

TEST(PlatformTest, DeviceRegistrationAndTzpc)
{
    Platform p;
    Device *dev = p.registerDevice(std::make_unique<DummyDevice>(), 40);
    ASSERT_NE(dev, nullptr);
    EXPECT_EQ(dev->irq(), 40u);
    EXPECT_NE(dev->streamId(), 0u);

    ASSERT_TRUE(p.tzpc().assignDevice("dummy0", World::Secure,
                                      World::Secure).isOk());
    EXPECT_TRUE(p.accessDevice("dummy0", World::Secure).isOk());
    EXPECT_EQ(p.accessDevice("dummy0", World::Normal).code(),
              ErrorCode::AccessFault);
    EXPECT_EQ(p.accessDevice("nope", World::Secure).code(),
              ErrorCode::NotFound);
}

TEST(PlatformTest, SecureDeviceDmaConfinedToSecureMemory)
{
    Platform p;
    auto *dev = static_cast<DummyDevice *>(
        p.registerDevice(std::make_unique<DummyDevice>(), 40));
    ASSERT_TRUE(p.tzpc().assignDevice("dummy0", World::Secure,
                                      World::Secure).isOk());

    uint8_t buf[8] = {0};
    /* DMA into normal memory from a secure-bus device: blocked. */
    EXPECT_EQ(dev->dmaWriteHost(0x1000, buf, 8).code(),
              ErrorCode::AccessFault);
    EXPECT_EQ(p.stats().value("dma_confinement_faults"), 1u);
    /* DMA into secure memory: allowed. */
    EXPECT_TRUE(dev->dmaWriteHost(p.secureBase(), buf, 8).isOk());
    EXPECT_TRUE(dev->dmaReadHost(p.secureBase(), buf, 8).isOk());
}

TEST(PlatformTest, SmmuGatesDeviceDma)
{
    Platform p;
    auto *dev = static_cast<DummyDevice *>(
        p.registerDevice(std::make_unique<DummyDevice>(), 40));
    ASSERT_TRUE(p.tzpc().assignDevice("dummy0", World::Secure,
                                      World::Secure).isOk());

    /* Install an SMMU table: iova 0x0 -> secure page. */
    PhysAddr target = p.secureBase();
    ASSERT_TRUE(p.smmu().streamTable(dev->streamId())
                    .map(0x0, target, PagePerms::rw(), 1).isOk());

    uint8_t data[4] = {9, 9, 9, 9};
    ASSERT_TRUE(dev->dmaWriteHost(0x0, data, 4).isOk());
    auto stored = p.dram().read(target, 4);
    EXPECT_EQ(stored.value(), (Bytes{9, 9, 9, 9}));

    /* Unmapped iova faults. */
    EXPECT_EQ(dev->dmaWriteHost(0x100000, data, 4).code(),
              ErrorCode::AccessFault);
    /* Invalidated entry faults (proceed-trap step 1). */
    p.smmu().invalidateByTag(1);
    EXPECT_EQ(dev->dmaWriteHost(0x0, data, 4).code(),
              ErrorCode::AccessFault);
}

TEST(PlatformTest, DeviceTreeReflectsDevices)
{
    Platform p;
    p.registerDevice(std::make_unique<DummyDevice>(), 40);
    ASSERT_TRUE(p.tzpc().assignDevice("dummy0", World::Secure,
                                      World::Secure).isOk());
    DeviceTree dt = p.buildDeviceTree();
    EXPECT_TRUE(dt.validate().isOk());
    const DtNode *n = dt.find("dummy0");
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->world, World::Secure);
    EXPECT_EQ(n->irq, 40u);
}

TEST(PlatformTest, ClockChargesTransferCosts)
{
    Platform p;
    SimTime before = p.clock().now();
    p.chargeMemcpy(1 << 20);
    EXPECT_GT(p.clock().now(), before);
}

TEST(PlatformTest, RootOfTrustSigns)
{
    Platform p;
    Bytes msg = toBytes("report");
    auto sig = p.rootOfTrust().sign(msg);
    EXPECT_TRUE(crypto::verify(p.rootOfTrust().publicKey(), msg, sig));
}

TEST(VendorRegistryTest, EndorsementFlow)
{
    VendorRegistry reg;
    crypto::KeyPair vendor = crypto::deriveKeyPair(toBytes("nvidia"));
    crypto::KeyPair device = crypto::deriveKeyPair(toBytes("gpu-rot"));
    reg.addVendor("nvidia", vendor.pub);

    auto endorsement = reg.endorse("nvidia", vendor.priv, device.pub);
    ASSERT_TRUE(endorsement.isOk());
    EXPECT_TRUE(reg.verifyEndorsement("nvidia", device.pub,
                                      endorsement.value()));

    /* Wrong vendor or fabricated device key is rejected. */
    EXPECT_FALSE(reg.verifyEndorsement("amd", device.pub,
                                       endorsement.value()));
    crypto::KeyPair fake = crypto::deriveKeyPair(toBytes("fake"));
    EXPECT_FALSE(reg.verifyEndorsement("nvidia", fake.pub,
                                       endorsement.value()));
    EXPECT_FALSE(reg.endorse("unknown", vendor.priv,
                             device.pub).isOk());
}

} // namespace
} // namespace cronus::hw
