/**
 * Tests for the software TLB (TranslationCache) and its embedding in
 * PageTable: hit/miss accounting, precise single-page shootdown,
 * epoch-based full shootdown, and the rule the failover story
 * depends on -- the first access after any invalidating mutation
 * faults exactly as the uncached walk does.
 */

#include <gtest/gtest.h>

#include "hw/page_table.hh"
#include "hw/translation_cache.hh"

namespace cronus::hw
{
namespace
{

/** Force the global toggle on for the duration of a test. */
class TlbOn : public ::testing::Test
{
  protected:
    void SetUp() override { TranslationCache::setGlobalEnable(true); }
    void TearDown() override
    {
        TranslationCache::setGlobalEnable(true);
    }
};

using TranslationCacheTest = TlbOn;
using PageTableTlbTest = TlbOn;

TEST_F(TranslationCacheTest, FillThenLookupHits)
{
    TranslationCache tlb;
    PhysAddr phys = 0;
    PagePerms perms;
    EXPECT_FALSE(tlb.lookup(7, phys, perms));
    EXPECT_EQ(tlb.counters().misses, 1u);

    tlb.fill(7, 0x1234000, PagePerms::ro());
    EXPECT_TRUE(tlb.lookup(7, phys, perms));
    EXPECT_EQ(phys, 0x1234000u);
    EXPECT_TRUE(perms.read);
    EXPECT_FALSE(perms.write);
    EXPECT_EQ(tlb.counters().hits, 1u);
    EXPECT_EQ(tlb.counters().fills, 1u);
}

TEST_F(TranslationCacheTest, EvictPageIsPrecise)
{
    TranslationCache tlb;
    tlb.fill(1, 0x1000, PagePerms::rw());
    tlb.fill(2, 0x2000, PagePerms::rw());
    tlb.evictPage(1);

    PhysAddr phys = 0;
    PagePerms perms;
    EXPECT_FALSE(tlb.lookup(1, phys, perms));
    /* The neighbouring entry stays hot. */
    EXPECT_TRUE(tlb.lookup(2, phys, perms));
    EXPECT_EQ(phys, 0x2000u);
    EXPECT_EQ(tlb.counters().shootdowns, 1u);
}

TEST_F(TranslationCacheTest, EvictingAbsentPageIsNotAShootdown)
{
    TranslationCache tlb;
    tlb.fill(1, 0x1000, PagePerms::rw());
    tlb.evictPage(99);
    EXPECT_EQ(tlb.counters().shootdowns, 0u);
}

TEST_F(TranslationCacheTest, ShootdownAllInvalidatesEverything)
{
    TranslationCache tlb;
    tlb.fill(1, 0x1000, PagePerms::rw());
    tlb.fill(2, 0x2000, PagePerms::rw());
    tlb.shootdownAll();

    PhysAddr phys = 0;
    PagePerms perms;
    EXPECT_FALSE(tlb.lookup(1, phys, perms));
    EXPECT_FALSE(tlb.lookup(2, phys, perms));
    EXPECT_EQ(tlb.counters().shootdowns, 1u);

    /* The cache still works after the epoch bump. */
    tlb.fill(1, 0x3000, PagePerms::rw());
    EXPECT_TRUE(tlb.lookup(1, phys, perms));
    EXPECT_EQ(phys, 0x3000u);
}

TEST_F(TranslationCacheTest, ConflictingTagsDoNotAlias)
{
    TranslationCache tlb;
    /* Pages an exact multiple of the set count apart map to the
     * same slot; the tag check must distinguish them. */
    uint64_t a = 5;
    uint64_t b = 5 + TranslationCache::kDefaultSets;
    tlb.fill(a, 0xa000, PagePerms::rw());

    PhysAddr phys = 0;
    PagePerms perms;
    EXPECT_FALSE(tlb.lookup(b, phys, perms));
    tlb.fill(b, 0xb000, PagePerms::rw());
    EXPECT_TRUE(tlb.lookup(b, phys, perms));
    EXPECT_EQ(phys, 0xb000u);
    /* The fill displaced the old resident. */
    EXPECT_FALSE(tlb.lookup(a, phys, perms));
}

TEST_F(TranslationCacheTest, GlobalDisableTurnsLookupsOff)
{
    TranslationCache tlb;
    tlb.fill(1, 0x1000, PagePerms::rw());
    TranslationCache::setGlobalEnable(false);
    PhysAddr phys = 0;
    PagePerms perms;
    EXPECT_FALSE(tlb.lookup(1, phys, perms));
    TranslationCache::setGlobalEnable(true);
    EXPECT_TRUE(tlb.lookup(1, phys, perms));
}

/* ---------------- PageTable embedding ---------------- */

TEST_F(PageTableTlbTest, RepeatTranslateHitsTlb)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x5000, 0x9000, PagePerms::rw()).isOk());
    EXPECT_TRUE(pt.translate(0x5008, 8, true).ok());
    uint64_t misses = pt.tlbCounters().misses;
    EXPECT_TRUE(pt.translate(0x5010, 8, false).ok());
    EXPECT_GE(pt.tlbCounters().hits, 1u);
    EXPECT_EQ(pt.tlbCounters().misses, misses);
}

TEST_F(PageTableTlbTest, UnmapFaultsImmediatelyEvenWhenHot)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x5000, 0x9000, PagePerms::rw()).isOk());
    ASSERT_TRUE(pt.translate(0x5000, 8, false).ok());
    ASSERT_TRUE(pt.unmap(0x5000).isOk());

    Translation t = pt.translate(0x5000, 8, false);
    EXPECT_EQ(t.fault, FaultKind::Unmapped);
    EXPECT_EQ(t.faultVa, 0x5000u);
}

TEST_F(PageTableTlbTest, InvalidateFaultsImmediatelyEvenWhenHot)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x5000, 0x9000, PagePerms::rw()).isOk());
    ASSERT_TRUE(pt.translate(0x5000, 8, false).ok());
    ASSERT_TRUE(pt.invalidate(0x5000).isOk());

    Translation t = pt.translate(0x5000, 8, false);
    EXPECT_EQ(t.fault, FaultKind::Invalidated);
    EXPECT_EQ(t.faultVa, 0x5000u);

    /* Revalidation restores the mapping (never cached faults). */
    ASSERT_TRUE(pt.revalidate(0x5000).isOk());
    EXPECT_TRUE(pt.translate(0x5000, 8, false).ok());
}

TEST_F(PageTableTlbTest, UnmapByTagEvictsEveryMatchedPage)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0xa000, PagePerms::rw(), 42).isOk());
    ASSERT_TRUE(pt.map(0x2000, 0xb000, PagePerms::rw(), 42).isOk());
    ASSERT_TRUE(pt.map(0x3000, 0xc000, PagePerms::rw(), 7).isOk());
    /* Heat all three. */
    ASSERT_TRUE(pt.translate(0x1000, 8, false).ok());
    ASSERT_TRUE(pt.translate(0x2000, 8, false).ok());
    ASSERT_TRUE(pt.translate(0x3000, 8, false).ok());

    EXPECT_EQ(pt.unmapByTag(42), 2u);
    EXPECT_EQ(pt.translate(0x1000, 8, false).fault,
              FaultKind::Unmapped);
    EXPECT_EQ(pt.translate(0x2000, 8, false).fault,
              FaultKind::Unmapped);
    /* The unrelated tag survives, still hot. */
    EXPECT_TRUE(pt.translate(0x3000, 8, false).ok());
}

TEST_F(PageTableTlbTest, InvalidateByTagEvictsEveryMatchedPage)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0xa000, PagePerms::rw(), 42).isOk());
    ASSERT_TRUE(pt.translate(0x1000, 8, false).ok());
    EXPECT_EQ(pt.invalidateByTag(42), 1u);
    EXPECT_EQ(pt.translate(0x1000, 8, false).fault,
              FaultKind::Invalidated);
}

TEST_F(PageTableTlbTest, RemapServesNewTranslationNotStale)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x5000, 0x9000, PagePerms::rw()).isOk());
    ASSERT_TRUE(pt.translate(0x5000, 8, false).ok());
    /* Double-mapping a live page is rejected outright. */
    EXPECT_EQ(pt.map(0x5000, 0xf000, PagePerms::rw()).code(),
              ErrorCode::InvalidState);
    /* Unmap + remap elsewhere; the hot entry must not win. */
    ASSERT_TRUE(pt.unmap(0x5000).isOk());
    ASSERT_TRUE(pt.map(0x5000, 0xf000, PagePerms::rw()).isOk());
    Translation t = pt.translate(0x5004, 4, false);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.phys, 0xf004u);
}

TEST_F(PageTableTlbTest, PermissionFaultOnCachedEntry)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x5000, 0x9000, PagePerms::ro()).isOk());
    ASSERT_TRUE(pt.translate(0x5000, 8, false).ok());
    /* Write through the now-hot read-only entry. */
    Translation t = pt.translate(0x5000, 8, true);
    EXPECT_EQ(t.fault, FaultKind::Permission);
    EXPECT_EQ(t.faultVa, 0x5000u);
}

TEST_F(PageTableTlbTest, ClearShootsDownEverything)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x5000, 0x9000, PagePerms::rw()).isOk());
    ASSERT_TRUE(pt.translate(0x5000, 8, false).ok());
    pt.clear();
    EXPECT_EQ(pt.translate(0x5000, 8, false).fault,
              FaultKind::Unmapped);
}

TEST_F(PageTableTlbTest, MultiPageFaultVaNamesTheFaultingPage)
{
    PageTable pt;
    /* Pages 0 and 1 mapped physically contiguous, page 2 missing. */
    ASSERT_TRUE(pt.map(0x0000, 0x8000, PagePerms::rw()).isOk());
    ASSERT_TRUE(pt.map(0x1000, 0x9000, PagePerms::rw()).isOk());

    Translation t = pt.translate(0x0800, 3 * kPageSize, false);
    EXPECT_EQ(t.fault, FaultKind::Unmapped);
    /* The *third* page faults, not the access base. */
    EXPECT_EQ(t.faultVa, 0x2000u);
}

TEST_F(PageTableTlbTest, MultiPageGapFaultsAtTheGap)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x0000, 0x8000, PagePerms::rw()).isOk());
    ASSERT_TRUE(pt.map(0x2000, 0xa000, PagePerms::rw()).isOk());
    Translation t = pt.translate(0x0000, 3 * kPageSize, false);
    EXPECT_EQ(t.fault, FaultKind::Unmapped);
    EXPECT_EQ(t.faultVa, 0x1000u);
}

TEST_F(PageTableTlbTest, MultiPageNonContiguousPhysIsRejected)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x0000, 0x8000, PagePerms::rw()).isOk());
    /* Adjacent VA, discontiguous phys: a spanning access cannot be
     * served as one run. */
    ASSERT_TRUE(pt.map(0x1000, 0xf000, PagePerms::rw()).isOk());
    Translation t = pt.translate(0x0000, 2 * kPageSize, false);
    EXPECT_EQ(t.fault, FaultKind::Unmapped);
    EXPECT_EQ(t.faultVa, 0x1000u);
}

TEST_F(PageTableTlbTest, MultiPageInvalidatedNamesTheBadPage)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x0000, 0x8000, PagePerms::rw()).isOk());
    ASSERT_TRUE(pt.map(0x1000, 0x9000, PagePerms::rw()).isOk());
    ASSERT_TRUE(pt.invalidate(0x1000).isOk());
    Translation t = pt.translate(0x0000, 2 * kPageSize, false);
    EXPECT_EQ(t.fault, FaultKind::Invalidated);
    EXPECT_EQ(t.faultVa, 0x1000u);
}

TEST_F(PageTableTlbTest, DisabledTlbStillTranslatesCorrectly)
{
    TranslationCache::setGlobalEnable(false);
    PageTable pt;
    ASSERT_TRUE(pt.map(0x5000, 0x9000, PagePerms::rw()).isOk());
    Translation t = pt.translate(0x5008, 8, true);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.phys, 0x9008u);
    EXPECT_TRUE(pt.translate(0x5008, 8, true).ok());
    /* No hits and no fills while disabled. */
    EXPECT_EQ(pt.tlbCounters().hits, 0u);
    EXPECT_EQ(pt.tlbCounters().fills, 0u);
}

} // namespace
} // namespace cronus::hw
