/** Tests for the RISC-V PMP model and the §VII-A adaptation. */

#include <gtest/gtest.h>

#include "hw/pmp.hh"

namespace cronus::hw
{
namespace
{

TEST(PmpTest, NapotEncodeDecodeRoundTrip)
{
    for (uint64_t size : {8ull, 4096ull, 1ull << 20, 16ull << 20}) {
        PhysAddr base = size * 3;  /* naturally aligned */
        auto encoded = Pmp::napotEncode(base, size);
        ASSERT_TRUE(encoded.isOk()) << size;
        auto [dbase, dsize] = Pmp::napotDecode(encoded.value());
        EXPECT_EQ(dbase, base);
        EXPECT_EQ(dsize, size);
    }
}

TEST(PmpTest, NapotRejectsBadShapes)
{
    EXPECT_FALSE(Pmp::napotEncode(0, 4).isOk());      /* too small */
    EXPECT_FALSE(Pmp::napotEncode(0, 24).isOk());     /* not pow2 */
    EXPECT_FALSE(Pmp::napotEncode(100, 4096).isOk()); /* misaligned */
}

TEST(PmpTest, DefaultDeny)
{
    Pmp pmp;
    EXPECT_EQ(pmp.check(0x1000, 8, PmpAccess::Read).code(),
              ErrorCode::AccessFault);
}

TEST(PmpTest, NapotEntryGrantsItsRangeOnly)
{
    Pmp pmp;
    PmpEntry entry;
    entry.mode = PmpMode::Napot;
    entry.addr = Pmp::napotEncode(0x10000, 0x1000).value();
    entry.read = true;
    entry.write = true;
    ASSERT_TRUE(pmp.configure(0, entry).isOk());

    EXPECT_TRUE(pmp.check(0x10000, 8, PmpAccess::Read).isOk());
    EXPECT_TRUE(pmp.check(0x10ff8, 8, PmpAccess::Write).isOk());
    EXPECT_FALSE(pmp.check(0xff00, 8, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x11000, 8, PmpAccess::Read).isOk());
    /* Straddling the top: whole access must be inside. */
    EXPECT_FALSE(pmp.check(0x10ffc, 8, PmpAccess::Read).isOk());
    /* Exec not granted. */
    EXPECT_FALSE(pmp.check(0x10000, 4, PmpAccess::Exec).isOk());
}

TEST(PmpTest, TorUsesPreviousEntryAsBase)
{
    Pmp pmp;
    PmpEntry lo;
    lo.mode = PmpMode::Off;
    lo.addr = 0x8000 >> 2;
    ASSERT_TRUE(pmp.configure(0, lo).isOk());
    PmpEntry hi;
    hi.mode = PmpMode::Tor;
    hi.addr = 0xc000 >> 2;
    hi.read = true;
    ASSERT_TRUE(pmp.configure(1, hi).isOk());

    EXPECT_TRUE(pmp.check(0x8000, 8, PmpAccess::Read).isOk());
    EXPECT_TRUE(pmp.check(0xbff8, 8, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x7ff8, 8, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0xc000, 8, PmpAccess::Read).isOk());
}

TEST(PmpTest, LowestNumberedEntryWins)
{
    Pmp pmp;
    /* Entry 0 denies writes to a subrange entry 1 would allow. */
    PmpEntry deny;
    deny.mode = PmpMode::Napot;
    deny.addr = Pmp::napotEncode(0x10000, 0x1000).value();
    deny.read = true;
    deny.write = false;
    ASSERT_TRUE(pmp.configure(0, deny).isOk());
    PmpEntry allow;
    allow.mode = PmpMode::Napot;
    allow.addr = Pmp::napotEncode(0x10000, 0x10000).value();
    allow.read = true;
    allow.write = true;
    ASSERT_TRUE(pmp.configure(1, allow).isOk());

    EXPECT_FALSE(pmp.check(0x10800, 8, PmpAccess::Write).isOk());
    EXPECT_TRUE(pmp.check(0x12000, 8, PmpAccess::Write).isOk());
}

TEST(PmpTest, LockedEntriesSurviveReset)
{
    Pmp pmp;
    PmpEntry entry;
    entry.mode = PmpMode::Napot;
    entry.addr = Pmp::napotEncode(0x10000, 0x1000).value();
    entry.read = true;
    entry.locked = true;
    ASSERT_TRUE(pmp.configure(0, entry).isOk());
    EXPECT_EQ(pmp.configure(0, PmpEntry{}).code(),
              ErrorCode::PermissionDenied);
    pmp.reset();
    EXPECT_TRUE(pmp.check(0x10000, 8, PmpAccess::Read).isOk());
}

TEST(PmpTest, PartitionAdapterMirrorsSpmSemantics)
{
    /* Two partitions: A owns [1M, 2M), B owns [2M, 3M); A shares a
     * page at 1M with B (overlapped PMP configuration, §VII-A). */
    PhysAddr a_base = 1ull << 20, b_base = 2ull << 20;
    uint64_t part_size = 1ull << 20;
    PhysAddr shared = a_base;

    auto pmp_a = pmpForPartition({{a_base, part_size, true}});
    auto pmp_b = pmpForPartition(
        {{b_base, part_size, true}, {shared, kPageSize, true}});
    ASSERT_TRUE(pmp_a.isOk());
    ASSERT_TRUE(pmp_b.isOk());

    /* Own memory: allowed. */
    EXPECT_TRUE(pmp_a.value()
                    .check(a_base + 64, 8, PmpAccess::Write).isOk());
    EXPECT_TRUE(pmp_b.value()
                    .check(b_base + 64, 8, PmpAccess::Write).isOk());
    /* Foreign memory: denied -- same outcome as the stage-2 test. */
    EXPECT_FALSE(pmp_a.value()
                     .check(b_base, 8, PmpAccess::Read).isOk());
    /* Shared page: both sides reach it. */
    EXPECT_TRUE(pmp_a.value()
                    .check(shared, 8, PmpAccess::Write).isOk());
    EXPECT_TRUE(pmp_b.value()
                    .check(shared, 8, PmpAccess::Write).isOk());
    /* Failure step 1 on PMP: drop B's overlap entry; B's next
     * access faults, like the invalidated stage-2 entry. */
    Pmp &b = pmp_b.value();
    PmpEntry off;
    off.mode = PmpMode::Off;
    ASSERT_TRUE(b.configure(1, off).isOk());
    EXPECT_FALSE(b.check(shared, 8, PmpAccess::Read).isOk());
    EXPECT_TRUE(b.check(b_base, 8, PmpAccess::Read).isOk());
}

TEST(PmpTest, AdapterRejectsTooManyRegions)
{
    std::vector<PmpRegion> regions(Pmp::kEntries + 1,
                                   {0x10000, 4096, true});
    EXPECT_EQ(pmpForPartition(regions).code(),
              ErrorCode::ResourceExhausted);
}

/* ---- TOR boundary cases ---- */

TEST(PmpTest, TorAtEntryZeroStartsAtAddressZero)
{
    Pmp pmp;
    PmpEntry hi;
    hi.mode = PmpMode::Tor;
    hi.addr = 0x4000 >> 2;
    hi.read = true;
    ASSERT_TRUE(pmp.configure(0, hi).isOk());

    EXPECT_TRUE(pmp.check(0, 8, PmpAccess::Read).isOk());
    EXPECT_TRUE(pmp.check(0x3ff8, 8, PmpAccess::Read).isOk());
    /* Top is exclusive; the whole access must fit below it. */
    EXPECT_FALSE(pmp.check(0x3ffc, 8, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x4000, 1, PmpAccess::Read).isOk());
    /* An exact-fit access spanning the full range is fine. */
    EXPECT_TRUE(pmp.check(0, 0x4000, PmpAccess::Read).isOk());
}

TEST(PmpTest, TorEmptyRangeMatchesNothing)
{
    Pmp pmp;
    PmpEntry lo;
    lo.mode = PmpMode::Off;
    lo.addr = 0x8000 >> 2;
    ASSERT_TRUE(pmp.configure(0, lo).isOk());
    /* hi == lo: the half-open [lo, hi) window is empty, so the
     * entry can never satisfy "whole access inside". */
    PmpEntry hi;
    hi.mode = PmpMode::Tor;
    hi.addr = 0x8000 >> 2;
    hi.read = true;
    ASSERT_TRUE(pmp.configure(1, hi).isOk());

    EXPECT_FALSE(pmp.check(0x8000, 1, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x7fff, 1, PmpAccess::Read).isOk());
}

TEST(PmpTest, TorBaseComesFromPredecessorEvenWhenOff)
{
    /* The TOR base is always pmpaddr[i-1], mode-independent --
     * matching the ISA, where an Off entry still parks an address
     * for the next TOR entry to use. */
    Pmp pmp;
    PmpEntry parked;
    parked.mode = PmpMode::Off;
    parked.addr = 0x2000 >> 2;
    ASSERT_TRUE(pmp.configure(4, parked).isOk());
    PmpEntry hi;
    hi.mode = PmpMode::Tor;
    hi.addr = 0x3000 >> 2;
    hi.read = true;
    ASSERT_TRUE(pmp.configure(5, hi).isOk());

    EXPECT_TRUE(pmp.check(0x2000, 8, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x1ff8, 8, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x3000, 8, PmpAccess::Read).isOk());
}

/* ---- NAPOT / NA4 boundary cases ---- */

TEST(PmpTest, NapotMinimumGrainIsEightBytes)
{
    Pmp pmp;
    PmpEntry entry;
    entry.mode = PmpMode::Napot;
    entry.addr = Pmp::napotEncode(0x20008, 8).value();
    entry.read = true;
    ASSERT_TRUE(pmp.configure(0, entry).isOk());

    EXPECT_TRUE(pmp.check(0x20008, 1, PmpAccess::Read).isOk());
    EXPECT_TRUE(pmp.check(0x2000f, 1, PmpAccess::Read).isOk());
    EXPECT_TRUE(pmp.check(0x20008, 8, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x20007, 1, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x20010, 1, PmpAccess::Read).isOk());
    /* Zero-length accesses are probed as one byte, not "always
     * inside": the top boundary still rejects them. */
    EXPECT_TRUE(pmp.check(0x2000f, 0, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x20010, 0, PmpAccess::Read).isOk());
}

TEST(PmpTest, Na4CoversExactlyFourBytes)
{
    Pmp pmp;
    PmpEntry entry;
    entry.mode = PmpMode::Na4;
    entry.addr = 0x30004 >> 2;
    entry.read = true;
    entry.write = true;
    ASSERT_TRUE(pmp.configure(0, entry).isOk());

    EXPECT_TRUE(pmp.check(0x30004, 4, PmpAccess::Write).isOk());
    EXPECT_TRUE(pmp.check(0x30007, 1, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x30003, 1, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x30008, 1, PmpAccess::Read).isOk());
    /* An 8-byte access straddles out of the NA4 window. */
    EXPECT_FALSE(pmp.check(0x30004, 8, PmpAccess::Read).isOk());
}

/* ---- overlapping-region priority ---- */

TEST(PmpTest, FirstMatchDecidesEvenWhenItAllows)
{
    /* Priority is positional, not deny-biased: a low-numbered allow
     * entry shadows a high-numbered deny over the same range. */
    Pmp pmp;
    PmpEntry allow;
    allow.mode = PmpMode::Napot;
    allow.addr = Pmp::napotEncode(0x40000, 0x1000).value();
    allow.read = true;
    allow.write = true;
    ASSERT_TRUE(pmp.configure(0, allow).isOk());
    PmpEntry deny;
    deny.mode = PmpMode::Napot;
    deny.addr = Pmp::napotEncode(0x40000, 0x10000).value();
    ASSERT_TRUE(pmp.configure(1, deny).isOk());

    EXPECT_TRUE(pmp.check(0x40800, 8, PmpAccess::Write).isOk());
    /* Outside the allow subrange the deny entry takes over. */
    EXPECT_FALSE(pmp.check(0x42000, 8, PmpAccess::Read).isOk());
}

TEST(PmpTest, StraddlingOutOfTheFirstMatchFallsThrough)
{
    /* An access that does not fit entirely inside entry 0's range
     * does not match it at all, so a wider later entry decides. */
    Pmp pmp;
    PmpEntry narrow;
    narrow.mode = PmpMode::Napot;
    narrow.addr = Pmp::napotEncode(0x50000, 8).value();
    narrow.read = true;
    ASSERT_TRUE(pmp.configure(0, narrow).isOk());
    PmpEntry wide;
    wide.mode = PmpMode::Napot;
    wide.addr = Pmp::napotEncode(0x50000, 0x1000).value();
    wide.read = true;
    wide.write = true;
    ASSERT_TRUE(pmp.configure(1, wide).isOk());

    /* Inside the narrow entry: it decides, and it denies writes. */
    EXPECT_FALSE(pmp.check(0x50000, 8, PmpAccess::Write).isOk());
    /* Straddling past it: falls through to the wide allow. */
    EXPECT_TRUE(pmp.check(0x50000, 16, PmpAccess::Write).isOk());
}

/* ---- lock-bit behavior ---- */

TEST(PmpTest, LockedEntryKeepsItsConfigurationOnFailedWrite)
{
    Pmp pmp;
    PmpEntry entry;
    entry.mode = PmpMode::Napot;
    entry.addr = Pmp::napotEncode(0x60000, 0x1000).value();
    entry.read = true;
    entry.locked = true;
    ASSERT_TRUE(pmp.configure(2, entry).isOk());

    PmpEntry takeover = entry;
    takeover.write = true;
    EXPECT_EQ(pmp.configure(2, takeover).code(),
              ErrorCode::PermissionDenied);
    /* The denied write must not have partially applied. */
    EXPECT_FALSE(pmp.entry(2).write);
    EXPECT_FALSE(pmp.check(0x60000, 8, PmpAccess::Write).isOk());
    EXPECT_TRUE(pmp.check(0x60000, 8, PmpAccess::Read).isOk());
}

TEST(PmpTest, ResetClearsOnlyUnlockedEntries)
{
    Pmp pmp;
    PmpEntry locked;
    locked.mode = PmpMode::Napot;
    locked.addr = Pmp::napotEncode(0x60000, 0x1000).value();
    locked.read = true;
    locked.locked = true;
    ASSERT_TRUE(pmp.configure(0, locked).isOk());
    PmpEntry plain = locked;
    plain.locked = false;
    plain.addr = Pmp::napotEncode(0x70000, 0x1000).value();
    ASSERT_TRUE(pmp.configure(1, plain).isOk());

    pmp.reset();
    EXPECT_TRUE(pmp.check(0x60000, 8, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x70000, 8, PmpAccess::Read).isOk());
    EXPECT_EQ(pmp.entry(1).mode, PmpMode::Off);
    /* The unlocked slot is reusable after reset... */
    EXPECT_TRUE(pmp.configure(1, plain).isOk());
    /* ...the locked one still refuses. */
    EXPECT_EQ(pmp.configure(0, plain).code(),
              ErrorCode::PermissionDenied);
}

/* ---- region exhaustion ---- */

TEST(PmpTest, ConfigureRejectsOutOfRangeIndex)
{
    Pmp pmp;
    EXPECT_EQ(pmp.configure(Pmp::kEntries, PmpEntry{}).code(),
              ErrorCode::InvalidArgument);
}

TEST(PmpTest, AdapterFillsEveryEntryWhenAsked)
{
    /* Exactly kEntries regions fit, and each one enforces. */
    std::vector<PmpRegion> regions;
    for (size_t i = 0; i < Pmp::kEntries; ++i)
        regions.push_back({(1ull + i) << 20, 4096, i % 2 == 0});
    auto pmp = pmpForPartition(regions);
    ASSERT_TRUE(pmp.isOk());
    for (size_t i = 0; i < Pmp::kEntries; ++i) {
        PhysAddr base = (1ull + i) << 20;
        EXPECT_TRUE(
            pmp.value().check(base, 8, PmpAccess::Read).isOk())
            << i;
        EXPECT_EQ(
            pmp.value().check(base, 8, PmpAccess::Write).isOk(),
            i % 2 == 0)
            << i;
        /* The gap above each region stays denied. */
        EXPECT_FALSE(
            pmp.value().check(base + 4096, 8, PmpAccess::Read)
                .isOk())
            << i;
    }
}

TEST(PmpTest, AdapterPropagatesEncodeFailures)
{
    /* A misaligned grant must fail closed, not silently shrink. */
    EXPECT_EQ(pmpForPartition({{0x10100, 4096, true}}).code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(pmpForPartition({{0x10000, 24, true}}).code(),
              ErrorCode::InvalidArgument);
}

} // namespace
} // namespace cronus::hw
