/** Tests for the RISC-V PMP model and the §VII-A adaptation. */

#include <gtest/gtest.h>

#include "hw/pmp.hh"

namespace cronus::hw
{
namespace
{

TEST(PmpTest, NapotEncodeDecodeRoundTrip)
{
    for (uint64_t size : {8ull, 4096ull, 1ull << 20, 16ull << 20}) {
        PhysAddr base = size * 3;  /* naturally aligned */
        auto encoded = Pmp::napotEncode(base, size);
        ASSERT_TRUE(encoded.isOk()) << size;
        auto [dbase, dsize] = Pmp::napotDecode(encoded.value());
        EXPECT_EQ(dbase, base);
        EXPECT_EQ(dsize, size);
    }
}

TEST(PmpTest, NapotRejectsBadShapes)
{
    EXPECT_FALSE(Pmp::napotEncode(0, 4).isOk());      /* too small */
    EXPECT_FALSE(Pmp::napotEncode(0, 24).isOk());     /* not pow2 */
    EXPECT_FALSE(Pmp::napotEncode(100, 4096).isOk()); /* misaligned */
}

TEST(PmpTest, DefaultDeny)
{
    Pmp pmp;
    EXPECT_EQ(pmp.check(0x1000, 8, PmpAccess::Read).code(),
              ErrorCode::AccessFault);
}

TEST(PmpTest, NapotEntryGrantsItsRangeOnly)
{
    Pmp pmp;
    PmpEntry entry;
    entry.mode = PmpMode::Napot;
    entry.addr = Pmp::napotEncode(0x10000, 0x1000).value();
    entry.read = true;
    entry.write = true;
    ASSERT_TRUE(pmp.configure(0, entry).isOk());

    EXPECT_TRUE(pmp.check(0x10000, 8, PmpAccess::Read).isOk());
    EXPECT_TRUE(pmp.check(0x10ff8, 8, PmpAccess::Write).isOk());
    EXPECT_FALSE(pmp.check(0xff00, 8, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x11000, 8, PmpAccess::Read).isOk());
    /* Straddling the top: whole access must be inside. */
    EXPECT_FALSE(pmp.check(0x10ffc, 8, PmpAccess::Read).isOk());
    /* Exec not granted. */
    EXPECT_FALSE(pmp.check(0x10000, 4, PmpAccess::Exec).isOk());
}

TEST(PmpTest, TorUsesPreviousEntryAsBase)
{
    Pmp pmp;
    PmpEntry lo;
    lo.mode = PmpMode::Off;
    lo.addr = 0x8000 >> 2;
    ASSERT_TRUE(pmp.configure(0, lo).isOk());
    PmpEntry hi;
    hi.mode = PmpMode::Tor;
    hi.addr = 0xc000 >> 2;
    hi.read = true;
    ASSERT_TRUE(pmp.configure(1, hi).isOk());

    EXPECT_TRUE(pmp.check(0x8000, 8, PmpAccess::Read).isOk());
    EXPECT_TRUE(pmp.check(0xbff8, 8, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0x7ff8, 8, PmpAccess::Read).isOk());
    EXPECT_FALSE(pmp.check(0xc000, 8, PmpAccess::Read).isOk());
}

TEST(PmpTest, LowestNumberedEntryWins)
{
    Pmp pmp;
    /* Entry 0 denies writes to a subrange entry 1 would allow. */
    PmpEntry deny;
    deny.mode = PmpMode::Napot;
    deny.addr = Pmp::napotEncode(0x10000, 0x1000).value();
    deny.read = true;
    deny.write = false;
    ASSERT_TRUE(pmp.configure(0, deny).isOk());
    PmpEntry allow;
    allow.mode = PmpMode::Napot;
    allow.addr = Pmp::napotEncode(0x10000, 0x10000).value();
    allow.read = true;
    allow.write = true;
    ASSERT_TRUE(pmp.configure(1, allow).isOk());

    EXPECT_FALSE(pmp.check(0x10800, 8, PmpAccess::Write).isOk());
    EXPECT_TRUE(pmp.check(0x12000, 8, PmpAccess::Write).isOk());
}

TEST(PmpTest, LockedEntriesSurviveReset)
{
    Pmp pmp;
    PmpEntry entry;
    entry.mode = PmpMode::Napot;
    entry.addr = Pmp::napotEncode(0x10000, 0x1000).value();
    entry.read = true;
    entry.locked = true;
    ASSERT_TRUE(pmp.configure(0, entry).isOk());
    EXPECT_EQ(pmp.configure(0, PmpEntry{}).code(),
              ErrorCode::PermissionDenied);
    pmp.reset();
    EXPECT_TRUE(pmp.check(0x10000, 8, PmpAccess::Read).isOk());
}

TEST(PmpTest, PartitionAdapterMirrorsSpmSemantics)
{
    /* Two partitions: A owns [1M, 2M), B owns [2M, 3M); A shares a
     * page at 1M with B (overlapped PMP configuration, §VII-A). */
    PhysAddr a_base = 1ull << 20, b_base = 2ull << 20;
    uint64_t part_size = 1ull << 20;
    PhysAddr shared = a_base;

    auto pmp_a = pmpForPartition({{a_base, part_size, true}});
    auto pmp_b = pmpForPartition(
        {{b_base, part_size, true}, {shared, kPageSize, true}});
    ASSERT_TRUE(pmp_a.isOk());
    ASSERT_TRUE(pmp_b.isOk());

    /* Own memory: allowed. */
    EXPECT_TRUE(pmp_a.value()
                    .check(a_base + 64, 8, PmpAccess::Write).isOk());
    EXPECT_TRUE(pmp_b.value()
                    .check(b_base + 64, 8, PmpAccess::Write).isOk());
    /* Foreign memory: denied -- same outcome as the stage-2 test. */
    EXPECT_FALSE(pmp_a.value()
                     .check(b_base, 8, PmpAccess::Read).isOk());
    /* Shared page: both sides reach it. */
    EXPECT_TRUE(pmp_a.value()
                    .check(shared, 8, PmpAccess::Write).isOk());
    EXPECT_TRUE(pmp_b.value()
                    .check(shared, 8, PmpAccess::Write).isOk());
    /* Failure step 1 on PMP: drop B's overlap entry; B's next
     * access faults, like the invalidated stage-2 entry. */
    Pmp &b = pmp_b.value();
    PmpEntry off;
    off.mode = PmpMode::Off;
    ASSERT_TRUE(b.configure(1, off).isOk());
    EXPECT_FALSE(b.check(shared, 8, PmpAccess::Read).isOk());
    EXPECT_TRUE(b.check(b_base, 8, PmpAccess::Read).isOk());
}

TEST(PmpTest, AdapterRejectsTooManyRegions)
{
    std::vector<PmpRegion> regions(Pmp::kEntries + 1,
                                   {0x10000, 4096, true});
    EXPECT_EQ(pmpForPartition(regions).code(),
              ErrorCode::ResourceExhausted);
}

} // namespace
} // namespace cronus::hw
