/** Unit tests for device-tree validation and measurement. */

#include <gtest/gtest.h>

#include "hw/device_tree.hh"

namespace cronus::hw
{
namespace
{

DtNode
node(const std::string &name, PhysAddr base, uint64_t size,
     uint32_t irq)
{
    DtNode n;
    n.name = name;
    n.compatible = "test," + name;
    n.mmioBase = base;
    n.mmioSize = size;
    n.irq = irq;
    return n;
}

TEST(DeviceTreeTest, ValidTreeAccepted)
{
    DeviceTree dt;
    dt.addNode(node("gpu0", 0x1000, 0x1000, 32));
    dt.addNode(node("npu0", 0x2000, 0x1000, 33));
    EXPECT_TRUE(dt.validate().isOk());
}

TEST(DeviceTreeTest, RejectsMmioOverlap)
{
    DeviceTree dt;
    dt.addNode(node("gpu0", 0x1000, 0x2000, 32));
    dt.addNode(node("npu0", 0x2000, 0x1000, 33));
    EXPECT_EQ(dt.validate().code(), ErrorCode::InvalidArgument);
}

TEST(DeviceTreeTest, RejectsDuplicateIrq)
{
    DeviceTree dt;
    dt.addNode(node("gpu0", 0x1000, 0x1000, 32));
    dt.addNode(node("npu0", 0x3000, 0x1000, 32));
    EXPECT_EQ(dt.validate().code(), ErrorCode::InvalidArgument);
}

TEST(DeviceTreeTest, RejectsDuplicateNameAndEmptyWindow)
{
    DeviceTree dup;
    dup.addNode(node("gpu0", 0x1000, 0x1000, 32));
    dup.addNode(node("gpu0", 0x3000, 0x1000, 33));
    EXPECT_FALSE(dup.validate().isOk());

    DeviceTree empty;
    empty.addNode(node("gpu0", 0x1000, 0, 32));
    EXPECT_FALSE(empty.validate().isOk());
}

TEST(DeviceTreeTest, SerializeRoundTrip)
{
    DeviceTree dt;
    DtNode n = node("gpu0", 0x1000, 0x1000, 32);
    n.world = World::Secure;
    n.memBytes = 1 << 20;
    dt.addNode(n);

    auto back = DeviceTree::deserialize(dt.serialize());
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    const DtNode *restored = back.value().find("gpu0");
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->compatible, "test,gpu0");
    EXPECT_EQ(restored->world, World::Secure);
    EXPECT_EQ(restored->memBytes, 1u << 20);
    EXPECT_EQ(back.value().measure(), dt.measure());
}

TEST(DeviceTreeTest, MeasurementDetectsTamper)
{
    DeviceTree dt;
    dt.addNode(node("gpu0", 0x1000, 0x1000, 32));
    crypto::Digest original = dt.measure();

    DeviceTree tampered;
    DtNode n = node("gpu0", 0x1000, 0x1000, 32);
    n.compatible = "evil,gpu0";
    tampered.addNode(n);
    EXPECT_NE(crypto::digestHex(original),
              crypto::digestHex(tampered.measure()));
}

TEST(DeviceTreeTest, DeserializeRejectsGarbage)
{
    EXPECT_FALSE(DeviceTree::deserialize("not json").isOk());
    EXPECT_FALSE(DeviceTree::deserialize("{}").isOk());
    EXPECT_FALSE(
        DeviceTree::deserialize("{\"nodes\":[{\"name\":\"x\"}]}")
            .isOk());
}

} // namespace
} // namespace cronus::hw
