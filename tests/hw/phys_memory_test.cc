/** Unit tests for sparse physical memory. */

#include <gtest/gtest.h>

#include "hw/phys_memory.hh"

namespace cronus::hw
{
namespace
{

TEST(PhysMemoryTest, ReadWriteRoundTrip)
{
    PhysicalMemory mem(1 << 20);
    Bytes data = {1, 2, 3, 4, 5};
    ASSERT_TRUE(mem.write(0x1000, data).isOk());
    auto back = mem.read(0x1000, data.size());
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), data);
}

TEST(PhysMemoryTest, UnwrittenReadsZero)
{
    PhysicalMemory mem(1 << 20);
    auto v = mem.read(0x5000, 16);
    ASSERT_TRUE(v.isOk());
    EXPECT_EQ(v.value(), Bytes(16, 0));
    EXPECT_EQ(mem.residentPages(), 0u);
}

TEST(PhysMemoryTest, CrossPageAccess)
{
    PhysicalMemory mem(1 << 20);
    Bytes data(kPageSize + 100, 0xab);
    ASSERT_TRUE(mem.write(kPageSize - 50, data).isOk());
    auto back = mem.read(kPageSize - 50, data.size());
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), data);
    EXPECT_EQ(mem.residentPages(), 3u);
}

TEST(PhysMemoryTest, OutOfRangeRejected)
{
    PhysicalMemory mem(0x2000);
    Bytes data(16);
    EXPECT_EQ(mem.write(0x2000, data).code(), ErrorCode::AccessFault);
    EXPECT_EQ(mem.write(0x1ff8, data).code(), ErrorCode::AccessFault);
    EXPECT_EQ(mem.read(0x3000, 1).code(), ErrorCode::AccessFault);
    /* Overflow-safe bounds check. */
    EXPECT_EQ(mem.read(~0ull, 16).code(), ErrorCode::AccessFault);
}

TEST(PhysMemoryTest, ClearScrubsData)
{
    PhysicalMemory mem(1 << 20);
    Bytes secret(256, 0x77);
    ASSERT_TRUE(mem.write(0x4000, secret).isOk());
    ASSERT_TRUE(mem.clear(0x4000, 256).isOk());
    auto back = mem.read(0x4000, 256);
    EXPECT_EQ(back.value(), Bytes(256, 0));
}

TEST(PhysMemoryTest, SparseLargeAddressSpace)
{
    /* A multi-GiB map must not allocate backing store up front. */
    PhysicalMemory mem(8ull << 30);
    Bytes data = {9};
    ASSERT_TRUE(mem.write((8ull << 30) - 1, data).isOk());
    EXPECT_EQ(mem.residentPages(), 1u);
}

} // namespace
} // namespace cronus::hw
