/** Unit tests for TZASC/TZPC world filtering. */

#include <gtest/gtest.h>

#include "hw/tzasc.hh"

namespace cronus::hw
{
namespace
{

Tzasc
makeController()
{
    Tzasc tz;
    EXPECT_TRUE(tz.addRegion({"normal", 0, 0x10000, World::Normal},
                             World::Secure).isOk());
    EXPECT_TRUE(tz.addRegion({"secure", 0x10000, 0x10000,
                              World::Secure},
                             World::Secure).isOk());
    return tz;
}

TEST(TzascTest, SecureWorldSeesEverything)
{
    Tzasc tz = makeController();
    EXPECT_TRUE(tz.checkAccess(0x0, 16, World::Secure).isOk());
    EXPECT_TRUE(tz.checkAccess(0x10000, 16, World::Secure).isOk());
}

TEST(TzascTest, NormalWorldBlockedFromSecureRegion)
{
    Tzasc tz = makeController();
    EXPECT_TRUE(tz.checkAccess(0x100, 16, World::Normal).isOk());
    EXPECT_EQ(tz.checkAccess(0x10000, 16, World::Normal).code(),
              ErrorCode::AccessFault);
    /* Access straddling the boundary also faults. */
    EXPECT_EQ(tz.checkAccess(0xfff8, 16, World::Normal).code(),
              ErrorCode::AccessFault);
}

TEST(TzascTest, IsSecurePredicate)
{
    Tzasc tz = makeController();
    EXPECT_FALSE(tz.isSecure(0x100, 16));
    EXPECT_TRUE(tz.isSecure(0x10000, 0x10000));
    EXPECT_FALSE(tz.isSecure(0xff00, 0x200));  /* straddles */
}

TEST(TzascTest, OnlySecureWorldConfigures)
{
    Tzasc tz;
    EXPECT_EQ(tz.addRegion({"x", 0, 0x1000, World::Secure},
                           World::Normal).code(),
              ErrorCode::PermissionDenied);
}

TEST(TzascTest, RejectsOverlapAndLockdown)
{
    Tzasc tz = makeController();
    EXPECT_EQ(tz.addRegion({"overlap", 0x8000, 0x10000,
                            World::Secure},
                           World::Secure).code(),
              ErrorCode::InvalidArgument);
    tz.lockDown();
    EXPECT_EQ(tz.addRegion({"late", 0x40000, 0x1000, World::Secure},
                           World::Secure).code(),
              ErrorCode::InvalidState);
}

TEST(TzascTest, ZeroSizeRegionRejected)
{
    Tzasc tz;
    EXPECT_EQ(tz.addRegion({"zero", 0, 0, World::Secure},
                           World::Secure).code(),
              ErrorCode::InvalidArgument);
}

TEST(TzascTest, FindRegion)
{
    Tzasc tz = makeController();
    const MemRegion *r = tz.findRegion(0x10500);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->name, "secure");
    EXPECT_EQ(tz.findRegion(0x999999), nullptr);
}

TEST(TzpcTest, GatesSecureDevices)
{
    Tzpc tzpc;
    ASSERT_TRUE(tzpc.assignDevice("gpu0", World::Secure,
                                  World::Secure).isOk());
    EXPECT_TRUE(tzpc.checkAccess("gpu0", World::Secure).isOk());
    EXPECT_EQ(tzpc.checkAccess("gpu0", World::Normal).code(),
              ErrorCode::AccessFault);
    /* Unassigned devices default to the normal world. */
    EXPECT_TRUE(tzpc.checkAccess("uart", World::Normal).isOk());
    EXPECT_EQ(tzpc.deviceWorld("gpu0"), World::Secure);
    EXPECT_EQ(tzpc.deviceWorld("uart"), World::Normal);
}

TEST(TzpcTest, ConfigRules)
{
    Tzpc tzpc;
    EXPECT_EQ(tzpc.assignDevice("gpu0", World::Secure,
                                World::Normal).code(),
              ErrorCode::PermissionDenied);
    tzpc.lockDown();
    EXPECT_EQ(tzpc.assignDevice("gpu0", World::Secure,
                                World::Secure).code(),
              ErrorCode::InvalidState);
}

} // namespace
} // namespace cronus::hw
