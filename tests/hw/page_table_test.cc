/** Unit tests for page table translation and invalidation. */

#include <gtest/gtest.h>

#include "hw/page_table.hh"
#include "hw/smmu.hh"

namespace cronus::hw
{
namespace
{

TEST(PageTableTest, MapTranslateUnmap)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0x80000, PagePerms::rw()).isOk());
    Translation t = pt.translate(0x1234, 8, false);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.phys, 0x80234u);

    ASSERT_TRUE(pt.unmap(0x1000).isOk());
    EXPECT_EQ(pt.translate(0x1234, 8, false).fault,
              FaultKind::Unmapped);
}

TEST(PageTableTest, AlignmentEnforced)
{
    PageTable pt;
    EXPECT_EQ(pt.map(0x1001, 0x80000, PagePerms::rw()).code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(pt.map(0x1000, 0x80001, PagePerms::rw()).code(),
              ErrorCode::InvalidArgument);
}

TEST(PageTableTest, DoubleMapRejected)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0x80000, PagePerms::rw()).isOk());
    EXPECT_EQ(pt.map(0x1000, 0x90000, PagePerms::rw()).code(),
              ErrorCode::InvalidState);
}

TEST(PageTableTest, PermissionChecks)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0x80000, PagePerms::ro()).isOk());
    EXPECT_TRUE(pt.translate(0x1000, 8, false).ok());
    EXPECT_EQ(pt.translate(0x1000, 8, true).fault,
              FaultKind::Permission);
}

TEST(PageTableTest, InvalidateGeneratesDistinctFault)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0x80000, PagePerms::rw()).isOk());
    ASSERT_TRUE(pt.invalidate(0x1000).isOk());
    EXPECT_EQ(pt.translate(0x1000, 8, false).fault,
              FaultKind::Invalidated);
    ASSERT_TRUE(pt.revalidate(0x1000).isOk());
    EXPECT_TRUE(pt.translate(0x1000, 8, false).ok());
}

TEST(PageTableTest, CrossPageContiguous)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0x80000, PagePerms::rw()).isOk());
    ASSERT_TRUE(pt.map(0x2000, 0x81000, PagePerms::rw()).isOk());
    /* Physically contiguous: single translation succeeds. */
    Translation t = pt.translate(0x1ff0, 32, true);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.phys, 0x80ff0u);

    /* Non-contiguous physical backing faults. */
    PageTable pt2;
    ASSERT_TRUE(pt2.map(0x1000, 0x80000, PagePerms::rw()).isOk());
    ASSERT_TRUE(pt2.map(0x2000, 0x90000, PagePerms::rw()).isOk());
    EXPECT_FALSE(pt2.translate(0x1ff0, 32, true).ok());
}

TEST(PageTableTest, ShareTagBulkOperations)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0x80000, PagePerms::rw(), 7).isOk());
    ASSERT_TRUE(pt.map(0x2000, 0x81000, PagePerms::rw(), 7).isOk());
    ASSERT_TRUE(pt.map(0x3000, 0x82000, PagePerms::rw(), 9).isOk());

    EXPECT_EQ(pt.invalidateByTag(7), 2u);
    EXPECT_EQ(pt.translate(0x1000, 8, false).fault,
              FaultKind::Invalidated);
    EXPECT_TRUE(pt.translate(0x3000, 8, false).ok());

    EXPECT_EQ(pt.unmapByTag(7), 2u);
    EXPECT_EQ(pt.entryCount(), 1u);
}

TEST(PageTableTest, LookupAndIntrospection)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(0x1000, 0x80000, PagePerms::rw(), 3).isOk());
    auto entry = pt.lookup(0x1500);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->phys, 0x80000u);
    EXPECT_EQ(entry->shareTag, 3u);
    EXPECT_FALSE(pt.lookup(0x9000).has_value());

    size_t visited = 0;
    pt.forEach([&](VirtAddr va, const PageEntry &e) {
        EXPECT_EQ(va, 0x1000u);
        EXPECT_EQ(e.phys, 0x80000u);
        ++visited;
    });
    EXPECT_EQ(visited, 1u);
}

TEST(SmmuTest, TranslateAndInvalidate)
{
    Smmu smmu;
    EXPECT_FALSE(smmu.hasStream(1));
    EXPECT_EQ(smmu.translate(1, 0x1000, 8, false).fault,
              FaultKind::Unmapped);

    ASSERT_TRUE(smmu.streamTable(1).map(0x1000, 0x40000,
                                        PagePerms::rw(), 5).isOk());
    ASSERT_TRUE(smmu.streamTable(2).map(0x1000, 0x50000,
                                        PagePerms::rw(), 5).isOk());
    EXPECT_TRUE(smmu.translate(1, 0x1000, 8, true).ok());

    EXPECT_EQ(smmu.invalidateByTag(5), 2u);
    EXPECT_EQ(smmu.translate(1, 0x1000, 8, true).fault,
              FaultKind::Invalidated);
}

} // namespace
} // namespace cronus::hw
