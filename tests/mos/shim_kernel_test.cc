/** Tests for the shim kernel (driver LibOS) and the HALs. */

#include <gtest/gtest.h>

#include "accel/builtin_kernels.hh"
#include "mos/cpu_hal.hh"
#include "mos/gpu_hal.hh"
#include "mos/npu_hal.hh"
#include "tee/normal_world.hh"

namespace cronus::mos
{
namespace
{

class MosTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Logger::instance().setQuiet(true);
        accel::registerBuiltinKernels();
        platform = std::make_unique<hw::Platform>();
        platform->registerDevice(
            std::make_unique<accel::GpuDevice>(), 40);
        platform->registerDevice(
            std::make_unique<accel::NpuDevice>(), 60);
        platform->registerDevice(
            std::make_unique<accel::CpuDevice>(), 32);

        monitor = std::make_unique<tee::SecureMonitor>(*platform);
        hw::DeviceTree dt;
        hw::DeviceTree discovered = platform->buildDeviceTree();
        for (auto node : discovered.all()) {
            node.world = hw::World::Secure;
            dt.addNode(node);
        }
        ASSERT_TRUE(monitor->boot(dt).isOk());
        spm = std::make_unique<tee::Spm>(*monitor);
        tee::MosImage image{"gpu0.mos", "gpu", toBytes("x")};
        pid = spm->createPartition(image, "gpu0",
                                   4ull << 20).value();
    }

    std::unique_ptr<hw::Platform> platform;
    std::unique_ptr<tee::SecureMonitor> monitor;
    std::unique_ptr<tee::Spm> spm;
    tee::PartitionId pid = 0;
};

TEST_F(MosTest, AllocPagesExhaustsPartitionBudget)
{
    ShimKernel shim(*spm, pid);
    /* 4 MiB partition, 64 pages reserved for the mOS. */
    uint64_t available = (4ull << 20) / hw::kPageSize - 64;
    auto first = shim.allocPages(available);
    ASSERT_TRUE(first.isOk());
    EXPECT_EQ(shim.allocPages(1).code(),
              ErrorCode::ResourceExhausted);
}

TEST_F(MosTest, ShimMemoryAccessGoesThroughStage2)
{
    ShimKernel shim(*spm, pid);
    auto page = shim.allocPages(1).value();
    ASSERT_TRUE(shim.write(page, Bytes{1, 2, 3}).isOk());
    EXPECT_EQ(shim.read(page, 3).value(), (Bytes{1, 2, 3}));
    /* Outside the partition: stage-2 fault. */
    EXPECT_EQ(shim.read(0x0, 8).code(), ErrorCode::AccessFault);
}

TEST_F(MosTest, IoremapFindsSecureDevices)
{
    ShimKernel shim(*spm, pid);
    EXPECT_TRUE(shim.ioremap("gpu0").isOk());
    EXPECT_EQ(shim.ioremap("nope").code(), ErrorCode::NotFound);
}

TEST_F(MosTest, SpinlockRoundTrip)
{
    ShimKernel shim(*spm, pid);
    auto lock = shim.allocPages(1).value();
    ASSERT_TRUE(shim.spinLock(lock).isOk());
    /* Locked: a second take spins out. */
    EXPECT_EQ(shim.spinLock(lock).code(), ErrorCode::Timeout);
    ASSERT_TRUE(shim.spinUnlock(lock).isOk());
    EXPECT_TRUE(shim.spinLock(lock).isOk());
}

TEST_F(MosTest, DmaMapInstallsSmmuEntries)
{
    ShimKernel shim(*spm, pid);
    auto page = shim.allocPages(2).value();
    hw::Device *gpu = platform->findDevice("gpu0");
    ASSERT_TRUE(shim.dmaMap(gpu->streamId(), 0x4000, page, 2,
                            99).isOk());
    EXPECT_TRUE(platform->smmu()
                    .translate(gpu->streamId(), 0x4000, 8, true)
                    .ok());
    EXPECT_EQ(platform->smmu().invalidateByTag(99), 2u);
}

TEST_F(MosTest, HeartbeatReachesSpm)
{
    ShimKernel shim(*spm, pid);
    uint64_t before = spm->partition(pid).value()->heartbeat;
    shim.heartbeat();
    EXPECT_EQ(spm->partition(pid).value()->heartbeat, before + 1);
}

TEST_F(MosTest, NouveauProbeChecksDeviceKind)
{
    ShimKernel shim(*spm, pid);
    /* Probing the NPU with the GPU driver fails cleanly. */
    NouveauDriver wrong(shim, "npu0");
    EXPECT_EQ(wrong.probe().code(), ErrorCode::InvalidArgument);
    NouveauDriver right(shim, "gpu0");
    EXPECT_TRUE(right.probe().isOk());
    EXPECT_TRUE(right.probed());
}

TEST_F(MosTest, VtaProbeChecksDeviceKind)
{
    ShimKernel shim(*spm, pid);
    VtaDriver wrong(shim, "gpu0");
    EXPECT_EQ(wrong.probe().code(), ErrorCode::InvalidArgument);
    VtaDriver right(shim, "npu0");
    EXPECT_TRUE(right.probe().isOk());
}

TEST_F(MosTest, GpuHalLifecycle)
{
    ShimKernel shim(*spm, pid);
    GpuHal hal(shim, "gpu0");
    EXPECT_EQ(hal.deviceType(), "gpu");
    auto ctx = hal.createDeviceContext();
    ASSERT_TRUE(ctx.isOk());

    auto va = hal.memAlloc(ctx.value(), 64);
    ASSERT_TRUE(va.isOk());
    Bytes data = {9, 8, 7, 6};
    ASSERT_TRUE(hal.memcpyHtoD(ctx.value(), va.value(),
                               data).isOk());
    auto back = hal.memcpyDtoH(ctx.value(), va.value(), 4);
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), data);
    ASSERT_TRUE(hal.memFree(ctx.value(), va.value()).isOk());
    ASSERT_TRUE(hal.destroyDeviceContext(ctx.value(), true).isOk());
}

TEST_F(MosTest, GpuHalAttestsRealHardware)
{
    ShimKernel shim(*spm, pid);
    GpuHal hal(shim, "gpu0");
    auto att = hal.attestDevice(toBytes("challenge"));
    ASSERT_TRUE(att.isOk()) << att.status().toString();
    auto *gpu = dynamic_cast<accel::GpuDevice *>(
        platform->findDevice("gpu0"));
    EXPECT_TRUE(att.value().devicePublicKey ==
                gpu->devicePublicKey());
}

TEST_F(MosTest, GpuCopiesFlowThroughTheSmmu)
{
    ShimKernel shim(*spm, pid);
    GpuHal hal(shim, "gpu0");
    auto ctx = hal.createDeviceContext().value();
    hw::Device *gpu = platform->findDevice("gpu0");

    /* Creating the context mapped the DMA staging window. */
    EXPECT_TRUE(platform->smmu().hasStream(gpu->streamId()));
    EXPECT_TRUE(platform->smmu()
                    .translate(gpu->streamId(), hal.bounceBase(), 8,
                               true)
                    .ok());

    /* A real copy round-trips through it. */
    auto va = hal.memAlloc(ctx, 64).value();
    Bytes data = {1, 2, 3, 4};
    ASSERT_TRUE(hal.memcpyHtoD(ctx, va, data).isOk());
    EXPECT_EQ(hal.memcpyDtoH(ctx, va, 4).value(), data);

    /* Failure step 2 drops the old incarnation's SMMU windows. */
    ASSERT_TRUE(spm->failPartition(pid).isOk());
    tee::MosImage image{"gpu0.mos", "gpu", toBytes("x")};
    ASSERT_TRUE(spm->recoverPartition(pid, image).isOk());
    EXPECT_FALSE(platform->smmu()
                     .translate(gpu->streamId(), hal.bounceBase(),
                                8, true)
                     .ok());
}

TEST_F(MosTest, LargeCopySpansBounceWindows)
{
    ShimKernel shim(*spm, pid);
    GpuHal hal(shim, "gpu0");
    auto ctx = hal.createDeviceContext().value();
    /* 600 KiB > the 256 KiB staging window: multiple DMA passes. */
    Bytes big(600 * 1024);
    for (size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<uint8_t>(i * 13);
    auto va = hal.memAlloc(ctx, big.size()).value();
    ASSERT_TRUE(hal.memcpyHtoD(ctx, va, big).isOk());
    EXPECT_EQ(hal.memcpyDtoH(ctx, va, big.size()).value(), big);
}

TEST_F(MosTest, HalChargesDriverCosts)
{
    ShimKernel shim(*spm, pid);
    GpuHal hal(shim, "gpu0");
    auto ctx = hal.createDeviceContext().value();
    accel::GpuModuleImage module{"m", {"fill_f32"}};
    ASSERT_TRUE(hal.loadModule(ctx, module).isOk());
    auto va = hal.memAlloc(ctx, 64).value();

    SimTime before = platform->clock().now();
    ASSERT_TRUE(hal.launchKernel(ctx, "fill_f32", {va, 16, 0},
                                 16).isOk());
    /* Launch submission cost is charged to the CPU clock even
     * though the kernel runs asynchronously. */
    EXPECT_GE(platform->clock().now() - before,
              platform->costs().gpuSubmitNs);
}

} // namespace
} // namespace cronus::mos
