/** Tests for SharedPipe and sealed checkpoints. */

#include "test_fixtures.hh"

#include "core/pipe.hh"

namespace cronus::core
{
namespace
{

using testing::CronusTest;

class PipeTest : public CronusTest
{
  protected:
    void
    SetUp() override
    {
        CronusTest::SetUp();
        cpu = makeCpuEnclave().value();
        gpu = makeGpuEnclave().value();
    }

    std::unique_ptr<SharedPipe>
    makePipe(const PipeConfig &config = PipeConfig())
    {
        auto pipe = SharedPipe::create(*cpu.host, cpu.eid,
                                       *gpu.host, gpu.eid,
                                       gpu.secret, config);
        EXPECT_TRUE(pipe.isOk()) << pipe.status().toString();
        return std::move(pipe.value());
    }

    AppHandle cpu, gpu;
};

TEST_F(PipeTest, WriteReadRoundTrip)
{
    auto pipe = makePipe();
    Bytes msg = toBytes("gradient shard #1");
    auto wrote = pipe->write(msg);
    ASSERT_TRUE(wrote.isOk());
    EXPECT_EQ(wrote.value(), msg.size());
    EXPECT_EQ(pipe->available().value(), msg.size());
    auto got = pipe->read(1024);
    ASSERT_TRUE(got.isOk());
    EXPECT_EQ(got.value(), msg);
    EXPECT_EQ(pipe->available().value(), 0u);
}

TEST_F(PipeTest, PartialReadsPreserveOrder)
{
    auto pipe = makePipe();
    ASSERT_TRUE(pipe->write(toBytes("abcdefgh")).isOk());
    EXPECT_EQ(pipe->read(3).value(), toBytes("abc"));
    ASSERT_TRUE(pipe->write(toBytes("XYZ")).isOk());
    EXPECT_EQ(pipe->read(100).value(), toBytes("defghXYZ"));
}

TEST_F(PipeTest, WrapsAroundCapacity)
{
    PipeConfig config;
    config.capacity = 4096;  /* rounds up to one page minus header */
    auto pipe = makePipe(config);
    Rng rng(3);
    Bytes chunk(1500);
    for (int round = 0; round < 20; ++round) {
        rng.fill(chunk);
        auto wrote = pipe->write(chunk);
        ASSERT_TRUE(wrote.isOk());
        ASSERT_EQ(wrote.value(), chunk.size());
        auto got = pipe->read(chunk.size());
        ASSERT_TRUE(got.isOk());
        EXPECT_EQ(got.value(), chunk) << "round " << round;
    }
}

TEST_F(PipeTest, BackpressureWhenFull)
{
    PipeConfig config;
    config.capacity = 4096;
    auto pipe = makePipe(config);
    uint64_t cap = 0;
    /* Fill to capacity. */
    for (;;) {
        auto wrote = pipe->write(Bytes(1024, 1));
        ASSERT_TRUE(wrote.isOk());
        cap += wrote.value();
        if (wrote.value() < 1024)
            break;
    }
    EXPECT_GT(cap, 0u);
    /* Full: zero accepted. */
    EXPECT_EQ(pipe->write(Bytes(16, 2)).value(), 0u);
    /* Drain frees space. */
    ASSERT_TRUE(pipe->read(512).isOk());
    EXPECT_EQ(pipe->write(Bytes(512, 3)).value(), 512u);
}

TEST_F(PipeTest, EndOfStream)
{
    auto pipe = makePipe();
    ASSERT_TRUE(pipe->write(toBytes("tail")).isOk());
    ASSERT_TRUE(pipe->closeWrite().isOk());
    EXPECT_EQ(pipe->closeWrite().code(), ErrorCode::InvalidState);
    EXPECT_FALSE(pipe->endOfStream().value());  /* data pending */
    EXPECT_EQ(pipe->read(64).value(), toBytes("tail"));
    EXPECT_TRUE(pipe->endOfStream().value());
    EXPECT_EQ(pipe->write(toBytes("x")).code(),
              ErrorCode::InvalidState);
}

TEST_F(PipeTest, DcheckRejectsWrongSecret)
{
    auto bad = SharedPipe::create(*cpu.host, cpu.eid, *gpu.host,
                                  gpu.eid, Bytes(32, 0x9),
                                  PipeConfig());
    EXPECT_EQ(bad.code(), ErrorCode::AuthFailed);
}

TEST_F(PipeTest, PeerFailureTrapsInsteadOfStaleData)
{
    auto pipe = makePipe();
    ASSERT_TRUE(pipe->write(toBytes("in flight")).isOk());
    ASSERT_TRUE(system->injectPanic("gpu0").isOk());
    /* Reader side died; writer's next access traps. */
    auto r = pipe->write(toBytes("more"));
    EXPECT_EQ(r.code(), ErrorCode::PeerFailed);
    EXPECT_TRUE(pipe->failed());
}

class CheckpointTest : public CronusTest
{
};

TEST_F(CheckpointTest, RoundTripSameEnclave)
{
    auto handle = makeCpuEnclave().value();
    ByteWriter w;
    w.putU64(41);
    ASSERT_TRUE(system->ecall(handle, "accumulate",
                              w.data()).isOk());

    auto sealed = system->checkpointEnclave(handle);
    ASSERT_TRUE(sealed.isOk()) << sealed.status().toString();

    /* Mutate further, then roll back to the checkpoint. */
    ASSERT_TRUE(system->ecall(handle, "accumulate",
                              w.data()).isOk());
    ASSERT_TRUE(system->restoreEnclave(handle, sealed.value(),
                                       handle.secret).isOk());

    ByteWriter one;
    one.putU64(1);
    auto total = system->ecall(handle, "accumulate", one.data());
    ASSERT_TRUE(total.isOk());
    ByteReader r(total.value());
    EXPECT_EQ(r.getU64().value(), 42u);
}

TEST_F(CheckpointTest, SurvivesPartitionFailure)
{
    auto victim = makeCpuEnclave().value();
    ByteWriter w;
    w.putU64(1000);
    ASSERT_TRUE(system->ecall(victim, "accumulate",
                              w.data()).isOk());
    auto sealed = system->checkpointEnclave(victim);
    ASSERT_TRUE(sealed.isOk());

    /* The CPU partition crashes and is recovered: the enclave and
     * all its state are gone. */
    ASSERT_TRUE(system->injectPanic("cpu0").isOk());
    ASSERT_TRUE(system->recover("cpu0").isOk());
    EXPECT_EQ(system->ecall(victim, "accumulate", w.data()).code(),
              ErrorCode::NotFound);

    /* The owner restores the sealed state into a fresh enclave. */
    auto fresh = makeCpuEnclave().value();
    ASSERT_TRUE(system->restoreEnclave(fresh, sealed.value(),
                                       victim.secret).isOk());
    ByteWriter delta;
    delta.putU64(24);
    auto total = system->ecall(fresh, "accumulate", delta.data());
    ASSERT_TRUE(total.isOk());
    ByteReader r(total.value());
    EXPECT_EQ(r.getU64().value(), 1024u);
}

TEST_F(CheckpointTest, TamperedCheckpointRejected)
{
    auto handle = makeCpuEnclave().value();
    auto sealed = system->checkpointEnclave(handle);
    ASSERT_TRUE(sealed.isOk());
    Bytes tampered = sealed.value();
    tampered[tampered.size() / 2] ^= 1;
    EXPECT_FALSE(system->restoreEnclave(handle, tampered,
                                        handle.secret).isOk());
}

TEST_F(CheckpointTest, WrongSecretCannotOpen)
{
    auto handle = makeCpuEnclave().value();
    auto sealed = system->checkpointEnclave(handle);
    ASSERT_TRUE(sealed.isOk());
    EXPECT_EQ(system->restoreEnclave(handle, sealed.value(),
                                     Bytes(32, 0x1)).code(),
              ErrorCode::IntegrityViolation);
}

TEST_F(CheckpointTest, GpuEnclaveRoundTripsDeviceMemory)
{
    /* GPU snapshots capture the enclave's device allocations; a
     * restore re-mallocs them in VA order, which requires a *fresh*
     * context -- the reconnect path always restores into a newly
     * created enclave, and that is the shape tested here. */
    auto gpu = makeGpuEnclave().value();
    auto va = system->ecall(gpu, "cuMemAlloc",
                            CudaRuntime::encodeMemAlloc(16));
    ASSERT_TRUE(va.isOk());
    uint64_t ptr = CudaRuntime::decodeU64Result(va.value()).value();
    Bytes fill(16, 0xAB);
    ASSERT_TRUE(system->ecall(gpu, "cuMemcpyHtoD",
                              CudaRuntime::encodeMemcpyHtoD(
                                  ptr, fill)).isOk());
    ASSERT_TRUE(system->ecall(gpu, "cuCtxSynchronize",
                              Bytes{}).isOk());

    auto sealed = system->checkpointEnclave(gpu);
    ASSERT_TRUE(sealed.isOk()) << sealed.status().toString();

    /* The old enclave dies with its partition; a fresh enclave on
     * the recovered incarnation restores the sealed snapshot. */
    ASSERT_TRUE(system->injectPanic("gpu0").isOk());
    ASSERT_TRUE(system->recover("gpu0").isOk());
    auto fresh = makeGpuEnclave().value();
    ASSERT_TRUE(system->restoreEnclave(fresh, sealed.value(),
                                       gpu.secret).isOk());

    /* A fresh context re-mallocs in ascending VA order, so the
     * snapshot's VAs are reproduced exactly. */
    auto back = system->ecall(fresh, "cuMemcpyDtoH",
                              CudaRuntime::encodeMemcpyDtoH(ptr, 16));
    ASSERT_TRUE(back.isOk());
    EXPECT_EQ(back.value(), fill);
}

} // namespace
} // namespace cronus::core
