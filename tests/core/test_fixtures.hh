/** Shared fixtures for core-layer tests. */

#ifndef CRONUS_TESTS_CORE_TEST_FIXTURES_HH
#define CRONUS_TESTS_CORE_TEST_FIXTURES_HH

#include <gtest/gtest.h>

#include "accel/builtin_kernels.hh"
#include "core/auto_partition.hh"
#include "core/system.hh"

namespace cronus::core::testing
{

/** Register test CPU functions once per process. */
inline void
registerTestCpuFunctions()
{
    auto &reg = CpuFunctionRegistry::instance();
    if (reg.has("echo"))
        return;
    reg.registerFunction("echo", [](CpuCallContext &ctx) {
        ctx.charge(100);
        return Result<Bytes>(ctx.args);
    });
    reg.registerFunction("accumulate", [](CpuCallContext &ctx) {
        ByteReader r(ctx.args);
        auto delta = r.getU64();
        if (!delta.isOk())
            return Result<Bytes>(delta.status());
        uint64_t total = delta.value();
        auto it = ctx.store.find("total");
        if (it != ctx.store.end()) {
            ByteReader prev(it->second);
            total += prev.getU64().value();
        }
        ByteWriter w;
        w.putU64(total);
        ctx.store["total"] = w.data();
        ctx.charge(50);
        return Result<Bytes>(w.take());
    });
    reg.registerFunction("fail", [](CpuCallContext &) {
        return Result<Bytes>(
            Status(ErrorCode::InvalidArgument, "requested failure"));
    });
}

inline Bytes
cpuImageBytes()
{
    CpuImage image;
    image.exports = {"echo", "accumulate", "fail"};
    return image.serialize();
}

inline Bytes
gpuImageBytes()
{
    accel::registerBuiltinKernels();
    accel::GpuModuleImage image{
        "test.cubin",
        {"fill_f32", "vec_add_f32", "matmul_f32", "saxpy_f32",
         "reduce_sum_f32"}};
    return image.serialize();
}

inline std::string
manifestJson(const std::string &device_type,
             const std::map<std::string, Bytes> &images,
             const std::vector<McallDecl> &calls,
             const std::string &memory = "4M")
{
    Manifest m;
    m.deviceType = device_type;
    for (const auto &[name, bytes] : images)
        m.images[name] = crypto::digestHex(crypto::sha256(bytes));
    m.mEcalls = calls;
    m.memoryBytes = Manifest::parseMemorySize(memory).value();
    return m.toJson();
}

inline std::string
cpuManifest()
{
    return manifestJson("cpu", {{"app.so", cpuImageBytes()}},
                        {{"echo", false},
                         {"accumulate", false},
                         {"fail", false}});
}

inline std::string
gpuManifest()
{
    std::vector<McallDecl> calls;
    for (const auto &fn : CudaRuntime::apiSurface()) {
        calls.push_back(
            {fn, AutoPartitioner::cudaCallIsAsync(fn)});
    }
    return manifestJson("gpu", {{"test.cubin", gpuImageBytes()}},
                        calls);
}

inline std::string
npuManifest()
{
    std::vector<McallDecl> calls;
    for (const auto &fn : NpuRuntime::apiSurface())
        calls.push_back({fn, false});
    return manifestJson("npu", {}, calls);
}

/** Machine-building helpers shared by the plain fixture and the
 *  isolation-backend-parameterized one. */
class CronusFixtureMixin
{
  protected:
    void
    boot(tee::BackendSelect backend = tee::BackendSelect::Default)
    {
        Logger::instance().setQuiet(true);
        registerTestCpuFunctions();
        accel::registerBuiltinKernels();
        CronusConfig cfg;
        cfg.backend = backend;
        system = std::make_unique<CronusSystem>(cfg);
    }

    Result<AppHandle>
    makeCpuEnclave()
    {
        return system->createEnclave(cpuManifest(), "app.so",
                                     cpuImageBytes());
    }

    Result<AppHandle>
    makeGpuEnclave(const std::string &device = "")
    {
        return system->createEnclave(gpuManifest(), "test.cubin",
                                     gpuImageBytes(), device);
    }

    Result<AppHandle>
    makeNpuEnclave()
    {
        return system->createEnclave(npuManifest(), "", Bytes{});
    }

    std::unique_ptr<CronusSystem> system;
};

/** A booted single-GPU + NPU CRONUS machine (default backend). */
class CronusTest : public ::testing::Test,
                   protected CronusFixtureMixin
{
  protected:
    void
    SetUp() override
    {
        boot();
    }
};

/** The same machine, value-parameterized over the isolation
 *  substrate (TrustZone vs. RISC-V PMP). Suites deriving from this
 *  run every case differentially on both backends. */
class CronusBackendTest
    : public ::testing::TestWithParam<tee::BackendSelect>,
      protected CronusFixtureMixin
{
  protected:
    void
    SetUp() override
    {
        boot(GetParam());
    }
};

/** INSTANTIATE_TEST_SUITE_P name generator for backend params. */
inline std::string
backendParamName(
    const ::testing::TestParamInfo<tee::BackendSelect> &info)
{
    return std::string(
        tee::backendName(tee::resolveBackend(info.param)));
}

} // namespace cronus::core::testing

#endif // CRONUS_TESTS_CORE_TEST_FIXTURES_HH
