/** End-to-end tests: the Fig. 2 application workflow and the
 *  automatic partitioner. */

#include "test_fixtures.hh"

namespace cronus::core
{
namespace
{

using testing::CronusTest;

class SystemTest : public CronusTest
{
};

TEST_F(SystemTest, PartitionsPerDevice)
{
    /* Default config: cpu0, gpu0, npu0 -> 3 partitions. */
    EXPECT_EQ(system->spm().partitionCount(), 3u);
    EXPECT_TRUE(system->mosForDevice("cpu0").isOk());
    EXPECT_TRUE(system->mosForDevice("gpu0").isOk());
    EXPECT_TRUE(system->mosForDevice("npu0").isOk());
    EXPECT_FALSE(system->mosForDevice("gpu7").isOk());
}

TEST_F(SystemTest, Figure2ApplicationWorkflow)
{
    /* 1. The user submits App-1 with a manifest; the app creates a
     * CPU mEnclave (mEnclave A). */
    auto enclave_a = makeCpuEnclave();
    ASSERT_TRUE(enclave_a.isOk());

    /* 2. Remote attestation of mEnclave A. */
    Bytes challenge = toBytes("user-nonce");
    auto report = system->attest(enclave_a.value(), challenge);
    ASSERT_TRUE(report.isOk());
    auto expect = system->expectationFor(enclave_a.value());
    expect.challenge = challenge;
    ASSERT_TRUE(verifyAttestation(report.value(), expect).isOk());

    /* 3. The user provides encrypted data; mEnclave A processes it
     * (modeled by an authenticated mECall). */
    Bytes sensitive = toBytes("user-training-data");
    auto processed = system->ecall(enclave_a.value(), "echo",
                                   sensitive);
    ASSERT_TRUE(processed.isOk());

    /* 4. During execution, a CUDA mEnclave (mEnclave C) is created
     * in the GPU partition and connected via sRPC. */
    auto enclave_c = makeGpuEnclave();
    ASSERT_TRUE(enclave_c.isOk());
    auto channel = system->connect(enclave_a.value(),
                                   enclave_c.value());
    ASSERT_TRUE(channel.isOk());

    /* 5. Heterogeneous computation streams over the channel. */
    auto va = channel.value()->callSync(
        "cuMemAlloc", CudaRuntime::encodeMemAlloc(16));
    ASSERT_TRUE(va.isOk());
    ASSERT_TRUE(channel.value()->close().isOk());
}

TEST_F(SystemTest, SpatialSharingTwoEnclavesOneGpu)
{
    /* R2: two mEnclaves share gpu0 concurrently. */
    auto e1 = makeGpuEnclave().value();
    auto e2 = makeGpuEnclave().value();
    EXPECT_EQ(e1.host, e2.host);

    auto r1 = system->ecall(e1, "cuMemAlloc",
                            CudaRuntime::encodeMemAlloc(1 << 20));
    auto r2 = system->ecall(e2, "cuMemAlloc",
                            CudaRuntime::encodeMemAlloc(1 << 20));
    ASSERT_TRUE(r1.isOk());
    ASSERT_TRUE(r2.isOk());

    auto gpu_os = system->mosForDevice("gpu0").value();
    auto &hal = static_cast<mos::GpuHal &>(gpu_os->hal());
    EXPECT_EQ(hal.rawDevice().contextCount(), 2u);
}

TEST_F(SystemTest, FaultIsolationAcrossAccelerators)
{
    /* R3.1: killing the GPU partition leaves NPU + CPU running. */
    auto cpu = makeCpuEnclave().value();
    auto npu = makeNpuEnclave().value();
    ASSERT_TRUE(system->injectPanic("gpu0").isOk());

    EXPECT_TRUE(system->ecall(cpu, "echo", toBytes("x")).isOk());
    auto buf = system->ecall(npu, "vtaAllocBuffer",
                             NpuRuntime::encodeAllocBuffer(64));
    EXPECT_TRUE(buf.isOk());

    /* GPU enclave creation fails while the partition is down. */
    EXPECT_FALSE(makeGpuEnclave().isOk());
    ASSERT_TRUE(system->recover("gpu0").isOk());
    EXPECT_TRUE(makeGpuEnclave().isOk());
}

TEST_F(SystemTest, MultiGpuConfig)
{
    CronusConfig cfg;
    cfg.numGpus = 4;
    CronusSystem multi(cfg);
    EXPECT_EQ(multi.spm().partitionCount(), 6u);  /* cpu + 4 gpu + npu */
    auto h0 = multi.createEnclave(testing::gpuManifest(),
                                  "test.cubin",
                                  testing::gpuImageBytes(), "gpu0");
    auto h3 = multi.createEnclave(testing::gpuManifest(),
                                  "test.cubin",
                                  testing::gpuImageBytes(), "gpu3");
    ASSERT_TRUE(h0.isOk());
    ASSERT_TRUE(h3.isOk());
    EXPECT_NE(h0.value().host, h3.value().host);
}

TEST_F(SystemTest, AutoPartitionerGeneratesPlan)
{
    MonolithicProgram prog;
    prog.name = "mat";
    prog.cpuImage.exports = {"echo"};
    prog.gpuImage = accel::GpuModuleImage{
        "mat.cubin", {"matmul_f32"}};
    prog.ops.push_back({MonoOp::Kind::Cpu, "echo", toBytes("hi")});
    prog.ops.push_back({MonoOp::Kind::Cuda, "cuMemAlloc",
                        CudaRuntime::encodeMemAlloc(64)});
    prog.ops.push_back({MonoOp::Kind::Cuda, "cuCtxSynchronize",
                        Bytes{}});

    auto plan = AutoPartitioner::partition(prog);
    ASSERT_TRUE(plan.isOk());
    EXPECT_TRUE(plan.value().needsCpu);
    EXPECT_TRUE(plan.value().needsGpu);
    EXPECT_FALSE(plan.value().needsNpu);

    auto gpu_manifest =
        Manifest::fromJson(plan.value().gpuManifest).value();
    EXPECT_TRUE(gpu_manifest.declaresCall("cuMemAlloc"));
    EXPECT_FALSE(gpu_manifest.declaresCall("cuMemcpyDtoH"));
    /* Async flags assigned by call semantics. */
    EXPECT_FALSE(gpu_manifest.isAsync("cuMemAlloc"));
    auto cpu_manifest =
        Manifest::fromJson(plan.value().cpuManifest).value();
    EXPECT_TRUE(cpu_manifest.declaresCall("echo"));
}

TEST_F(SystemTest, AutoPartitionerRunsMonolithicProgram)
{
    /* A monolithic "vector add on GPU + CPU post-processing"
     * program, converted automatically to mEnclaves + sRPC. */
    MonolithicProgram prog;
    prog.name = "vadd";
    prog.cpuImage.exports = {"echo"};
    prog.gpuImage = accel::GpuModuleImage{
        "vadd.cubin", {"fill_f32", "vec_add_f32"}};

    prog.ops.push_back({MonoOp::Kind::Cuda, "cuMemAlloc",
                        CudaRuntime::encodeMemAlloc(1024)});
    /* The partitioner's runner feeds results forward only through
     * explicit args, so use fixed VAs: the first allocation in a
     * fresh context is deterministic (0x10000000). */
    uint64_t va = 0x10000000;
    uint32_t bits;
    float two = 2.0f;
    std::memcpy(&bits, &two, 4);
    prog.ops.push_back({MonoOp::Kind::Cuda, "cuLaunchKernel",
                        CudaRuntime::encodeLaunchKernel(
                            "fill_f32", {va, 256, bits}, 256)});
    prog.ops.push_back({MonoOp::Kind::Cuda, "cuMemcpyDtoH",
                        CudaRuntime::encodeMemcpyDtoH(va, 16)});
    prog.ops.push_back({MonoOp::Kind::Cpu, "echo",
                        toBytes("post-process")});

    auto result = AutoPartitioner::run(*system, prog);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    ASSERT_EQ(result.value().outputs.size(), 4u);
    const float *filled = reinterpret_cast<const float *>(
        result.value().outputs[2].data());
    EXPECT_EQ(filled[0], 2.0f);
    EXPECT_EQ(filled[3], 2.0f);
    EXPECT_EQ(result.value().outputs[3], toBytes("post-process"));
    /* Device calls streamed through sRPC. */
    EXPECT_GE(result.value().gpuStats.executed, 3u);
}

TEST_F(SystemTest, HangDetectionRecoversGpuPartition)
{
    auto gpu = makeGpuEnclave().value();
    (void)gpu;
    /* The heartbeat table is seeded at partition creation, so idle
     * partitions (no heartbeat since boot) fail on the very first
     * poll -- a born-hung mOS is caught within one interval. */
    auto failed = system->spm().pollHangs();
    EXPECT_FALSE(failed.empty());
}

TEST_F(SystemTest, DispatcherBalancesAcrossIdenticalGpus)
{
    CronusConfig cfg;
    cfg.numGpus = 2;
    cfg.withNpu = false;
    CronusSystem multi(cfg);
    auto h1 = multi.createEnclave(testing::gpuManifest(),
                                  "test.cubin",
                                  testing::gpuImageBytes());
    auto h2 = multi.createEnclave(testing::gpuManifest(),
                                  "test.cubin",
                                  testing::gpuImageBytes());
    ASSERT_TRUE(h1.isOk());
    ASSERT_TRUE(h2.isOk());
    /* Least-loaded placement spreads the two enclaves. */
    EXPECT_NE(h1.value().host, h2.value().host);
}

TEST_F(SystemTest, StatsReportCoversTheSystem)
{
    auto cpu = makeCpuEnclave().value();
    ASSERT_TRUE(system->ecall(cpu, "echo", toBytes("x")).isOk());
    ASSERT_TRUE(system->injectPanic("gpu0").isOk());
    ASSERT_TRUE(system->recover("gpu0").isOk());

    JsonValue report = system->statsReport();
    EXPECT_GT(report["virtual_time_ns"].asInt(), 0);
    EXPECT_GT(report["monitor"]["world_switches"].asInt(), 0);
    EXPECT_EQ(report["spm"]["partitions_failed"].asInt(), 1);
    EXPECT_EQ(report["spm"]["partitions_recovered"].asInt(), 1);
    EXPECT_EQ(report["spm"]["partitions_created"].asInt(), 3);
    bool found_cpu = false;
    for (const auto &[key, entry] :
         report["partitions"].asObject()) {
        if (entry["device"].asString() == "cpu0") {
            found_cpu = true;
            EXPECT_EQ(entry["enclaves"].asInt(), 1);
            EXPECT_GT(entry["memory_in_use"].asInt(), 0);
        }
        if (entry["device"].asString() == "gpu0")
            EXPECT_EQ(entry["incarnation"].asInt(), 2);
    }
    EXPECT_TRUE(found_cpu);
    /* The report is valid JSON end to end. */
    EXPECT_TRUE(parseJson(report.dump()).isOk());
}

TEST_F(SystemTest, TimeAdvancesWithWork)
{
    auto handle = makeCpuEnclave().value();
    SimTime before = system->platform().clock().now();
    ASSERT_TRUE(system->ecall(handle, "echo", Bytes(1024, 1)).isOk());
    EXPECT_GT(system->platform().clock().now(), before);
}

} // namespace
} // namespace cronus::core
