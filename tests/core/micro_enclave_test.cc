/** Tests for mEnclave lifecycle, ownership and authentication. */

#include "test_fixtures.hh"

namespace cronus::core
{
namespace
{

using testing::CronusTest;

class MicroEnclaveTest : public CronusTest
{
};

TEST_F(MicroEnclaveTest, CreateAndEcall)
{
    auto handle = makeCpuEnclave();
    ASSERT_TRUE(handle.isOk()) << handle.status().toString();

    Bytes payload = toBytes("hello enclave");
    auto echoed = system->ecall(handle.value(), "echo", payload);
    ASSERT_TRUE(echoed.isOk()) << echoed.status().toString();
    EXPECT_EQ(echoed.value(), payload);
}

TEST_F(MicroEnclaveTest, EnclaveStatePersistsAcrossCalls)
{
    auto handle = makeCpuEnclave().value();
    ByteWriter w;
    w.putU64(5);
    auto first = system->ecall(handle, "accumulate", w.data());
    ASSERT_TRUE(first.isOk());
    auto second = system->ecall(handle, "accumulate", w.data());
    ASSERT_TRUE(second.isOk());
    ByteReader r(second.value());
    EXPECT_EQ(r.getU64().value(), 10u);
}

TEST_F(MicroEnclaveTest, UndeclaredCallRejected)
{
    auto handle = makeCpuEnclave().value();
    /* "secret_fn" is not in the manifest's static mECall list. */
    auto r = system->ecall(handle, "secret_fn", Bytes{});
    EXPECT_EQ(r.code(), ErrorCode::PermissionDenied);
}

TEST_F(MicroEnclaveTest, BodyErrorPropagates)
{
    auto handle = makeCpuEnclave().value();
    EXPECT_EQ(system->ecall(handle, "fail", Bytes{}).code(),
              ErrorCode::InvalidArgument);
}

TEST_F(MicroEnclaveTest, NonOwnerCannotInvoke)
{
    auto handle = makeCpuEnclave().value();
    MicroOS *os = handle.host;
    /* Forge a request with the wrong secret. */
    Bytes wrong_secret(32, 0x42);
    Bytes tag = EnclaveManager::authTag(wrong_secret, handle.eid, 1,
                                        "echo", Bytes{});
    auto r = os->enclaveManager().ecall(handle.eid, "echo", Bytes{},
                                        1, tag);
    EXPECT_EQ(r.code(), ErrorCode::AuthFailed);
}

TEST_F(MicroEnclaveTest, ReplayedEcallRejected)
{
    auto handle = makeCpuEnclave().value();
    MicroOS *os = handle.host;
    Bytes args = toBytes("x");
    Bytes tag = EnclaveManager::authTag(handle.secret, handle.eid, 1,
                                        "echo", args);
    ASSERT_TRUE(os->enclaveManager()
                    .ecall(handle.eid, "echo", args, 1, tag).isOk());
    /* Same nonce again: replay. */
    EXPECT_EQ(os->enclaveManager()
                  .ecall(handle.eid, "echo", args, 1, tag).code(),
              ErrorCode::IntegrityViolation);
    /* Old nonce after progress: also replay. */
    Bytes tag2 = EnclaveManager::authTag(handle.secret, handle.eid,
                                         5, "echo", args);
    ASSERT_TRUE(os->enclaveManager()
                    .ecall(handle.eid, "echo", args, 5, tag2).isOk());
    EXPECT_EQ(os->enclaveManager()
                  .ecall(handle.eid, "echo", args, 3,
                         EnclaveManager::authTag(handle.secret,
                                                 handle.eid, 3,
                                                 "echo", args))
                  .code(),
              ErrorCode::IntegrityViolation);
}

TEST_F(MicroEnclaveTest, TamperedArgsRejected)
{
    auto handle = makeCpuEnclave().value();
    MicroOS *os = handle.host;
    Bytes args = toBytes("legit");
    Bytes tag = EnclaveManager::authTag(handle.secret, handle.eid, 1,
                                        "echo", args);
    Bytes tampered = toBytes("evil!");
    EXPECT_EQ(os->enclaveManager()
                  .ecall(handle.eid, "echo", tampered, 1, tag).code(),
              ErrorCode::AuthFailed);
}

TEST_F(MicroEnclaveTest, MisdispatchedRequestRejected)
{
    /* A malicious dispatcher routes the request to the NPU
     * partition; the eid's mOS bits do not match. */
    auto handle = makeCpuEnclave().value();
    auto npu_os = system->mosForDevice("npu0");
    ASSERT_TRUE(npu_os.isOk());
    system->dispatcher().setMisroute(
        [&](Eid) { return npu_os.value(); });
    auto r = system->ecall(handle, "echo", Bytes{});
    EXPECT_EQ(r.code(), ErrorCode::PermissionDenied);
    system->dispatcher().setMisroute(nullptr);
    EXPECT_TRUE(system->ecall(handle, "echo", Bytes{}).isOk());
}

TEST_F(MicroEnclaveTest, ImageHashMismatchRejected)
{
    /* Manifest declares one hash, the provided image differs. */
    Bytes evil_image = testing::cpuImageBytes();
    evil_image.push_back(0xff);
    auto r = system->createEnclave(testing::cpuManifest(), "app.so",
                                   evil_image);
    EXPECT_EQ(r.code(), ErrorCode::IntegrityViolation);
}

TEST_F(MicroEnclaveTest, UndeclaredImageNameRejected)
{
    auto r = system->createEnclave(testing::cpuManifest(),
                                   "other.so",
                                   testing::cpuImageBytes());
    EXPECT_EQ(r.code(), ErrorCode::InvalidArgument);
}

TEST_F(MicroEnclaveTest, ManifestDeviceMismatchRejected)
{
    /* A GPU manifest cannot be instantiated on the CPU partition. */
    auto cpu_os = system->mosForDevice("cpu0").value();
    crypto::KeyPair owner = crypto::deriveKeyPair(toBytes("o"));
    auto r = cpu_os->enclaveManager().create(
        testing::gpuManifest(), "test.cubin",
        testing::gpuImageBytes(), owner.pub);
    EXPECT_EQ(r.code(), ErrorCode::InvalidArgument);
}

TEST_F(MicroEnclaveTest, MemoryQuotaEnforced)
{
    /* Partition budget is 24 MiB; a 1 GiB manifest is rejected. */
    std::string huge = testing::manifestJson(
        "cpu", {{"app.so", testing::cpuImageBytes()}},
        {{"echo", false}}, "1G");
    auto r = system->createEnclave(huge, "app.so",
                                   testing::cpuImageBytes());
    EXPECT_EQ(r.code(), ErrorCode::ResourceExhausted);
}

TEST_F(MicroEnclaveTest, DestroyRequiresOwnershipAndFreesQuota)
{
    auto handle = makeCpuEnclave().value();
    MicroOS *os = handle.host;
    uint64_t used = os->enclaveManager().memoryInUse();
    EXPECT_GT(used, 0u);

    /* Wrong tag. */
    EXPECT_EQ(os->enclaveManager()
                  .destroy(handle.eid, 99, Bytes(32, 0)).code(),
              ErrorCode::AuthFailed);

    ASSERT_TRUE(system->destroyEnclave(handle).isOk());
    EXPECT_EQ(os->enclaveManager().memoryInUse(), 0u);
    EXPECT_EQ(system->ecall(handle, "echo", Bytes{}).code(),
              ErrorCode::NotFound);
}

TEST_F(MicroEnclaveTest, EidsEncodePartition)
{
    auto cpu = makeCpuEnclave().value();
    auto gpu = makeGpuEnclave().value();
    EXPECT_NE(mosIdOf(cpu.eid), mosIdOf(gpu.eid));
    EXPECT_EQ(mosIdOf(cpu.eid), cpu.host->partitionId());
    EXPECT_EQ(enclaveIdOf(makeEid(3, 77)), 77u);
    EXPECT_EQ(mosIdOf(makeEid(3, 77)), 3u);
}

TEST_F(MicroEnclaveTest, LocalAttestationRoundTrip)
{
    auto handle = makeCpuEnclave().value();
    Bytes challenge = {1, 2, 3};
    auto report = handle.host->enclaveManager().localAttest(
        handle.eid, challenge);
    ASSERT_TRUE(report.isOk());
    const Bytes &lsk = system->monitor().localSealKey();
    EXPECT_TRUE(EnclaveManager::verifyLocalReport(report.value(),
                                                  lsk));

    /* Tampering with any field breaks the MAC. */
    auto bad = report.value();
    bad.partitionIncarnation += 1;
    EXPECT_FALSE(EnclaveManager::verifyLocalReport(bad, lsk));
    auto bad2 = report.value();
    bad2.challenge.push_back(9);
    EXPECT_FALSE(EnclaveManager::verifyLocalReport(bad2, lsk));
    /* And a different machine's LSK does not verify. */
    EXPECT_FALSE(EnclaveManager::verifyLocalReport(report.value(),
                                                   Bytes(32, 1)));
}

TEST_F(MicroEnclaveTest, GpuEnclaveEndToEnd)
{
    auto handle = makeGpuEnclave().value();

    std::vector<float> a = {1, 2, 3, 4};
    std::vector<float> b = {5, 6, 7, 8};
    Bytes a_bytes(reinterpret_cast<uint8_t *>(a.data()),
                  reinterpret_cast<uint8_t *>(a.data()) + 16);
    Bytes b_bytes(reinterpret_cast<uint8_t *>(b.data()),
                  reinterpret_cast<uint8_t *>(b.data()) + 16);

    auto alloc = [&](uint64_t n) {
        auto r = system->ecall(handle, "cuMemAlloc",
                               CudaRuntime::encodeMemAlloc(n));
        EXPECT_TRUE(r.isOk()) << r.status().toString();
        return CudaRuntime::decodeU64Result(r.value()).value();
    };
    uint64_t va_a = alloc(16), va_b = alloc(16), va_c = alloc(16);

    ASSERT_TRUE(system->ecall(handle, "cuMemcpyHtoD",
                              CudaRuntime::encodeMemcpyHtoD(
                                  va_a, a_bytes)).isOk());
    ASSERT_TRUE(system->ecall(handle, "cuMemcpyHtoD",
                              CudaRuntime::encodeMemcpyHtoD(
                                  va_b, b_bytes)).isOk());
    ASSERT_TRUE(system->ecall(handle, "cuLaunchKernel",
                              CudaRuntime::encodeLaunchKernel(
                                  "vec_add_f32",
                                  {va_a, va_b, va_c, 4}, 4)).isOk());
    auto out = system->ecall(handle, "cuMemcpyDtoH",
                             CudaRuntime::encodeMemcpyDtoH(va_c, 16));
    ASSERT_TRUE(out.isOk());
    const float *result =
        reinterpret_cast<const float *>(out.value().data());
    EXPECT_EQ(result[0], 6);
    EXPECT_EQ(result[3], 12);
}

TEST_F(MicroEnclaveTest, NpuEnclaveEndToEnd)
{
    auto handle = makeNpuEnclave().value();

    auto alloc_buf = [&](uint64_t n) {
        auto r = system->ecall(handle, "vtaAllocBuffer",
                               NpuRuntime::encodeAllocBuffer(n));
        EXPECT_TRUE(r.isOk()) << r.status().toString();
        ByteReader reader(r.value());
        return reader.getU32().value();
    };
    uint32_t in_buf = alloc_buf(4), w_buf = alloc_buf(4),
             out_buf = alloc_buf(4);

    Bytes inp = {1, 2, 3, 4};
    Bytes wgt = {1, 1, 1, 1};
    ASSERT_TRUE(system->ecall(handle, "vtaWriteBuffer",
                              NpuRuntime::encodeWriteBuffer(
                                  in_buf, 0, inp)).isOk());
    ASSERT_TRUE(system->ecall(handle, "vtaWriteBuffer",
                              NpuRuntime::encodeWriteBuffer(
                                  w_buf, 0, wgt)).isOk());

    accel::NpuProgram prog;
    accel::NpuInsn load_in;
    load_in.op = accel::NpuOp::Load;
    load_in.buffer = in_buf;
    load_in.bank = accel::NpuBank::Input;
    load_in.length = 4;
    prog.insns.push_back(load_in);
    accel::NpuInsn load_w = load_in;
    load_w.buffer = w_buf;
    load_w.bank = accel::NpuBank::Weight;
    prog.insns.push_back(load_w);
    accel::NpuInsn gemm;
    gemm.op = accel::NpuOp::Gemm;
    gemm.rows = 1;
    gemm.cols = 1;
    gemm.inner = 4;
    gemm.resetAccum = true;
    prog.insns.push_back(gemm);
    accel::NpuInsn store;
    store.op = accel::NpuOp::Store;
    store.buffer = out_buf;
    store.length = 1;
    prog.insns.push_back(store);

    ASSERT_TRUE(system->ecall(handle, "vtaRun",
                              NpuRuntime::encodeRun(prog)).isOk());
    auto out = system->ecall(handle, "vtaReadBuffer",
                             NpuRuntime::encodeReadBuffer(out_buf, 0,
                                                          1));
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(static_cast<int8_t>(out.value()[0]), 10);
}

} // namespace
} // namespace cronus::core
