/**
 * @file
 * AutoPartitioner edge cases: empty programs are rejected, and
 * single-device programs produce single-device plans that still run
 * (no CPU driver enclave, no sRPC channels -- device calls fall back
 * to the authenticated untrusted path).
 */

#include "test_fixtures.hh"

namespace cronus::core
{
namespace
{

using testing::CronusTest;

class AutoPartitionEdgeTest : public CronusTest
{
};

TEST_F(AutoPartitionEdgeTest, EmptyProgramIsRejected)
{
    MonolithicProgram program;
    program.name = "empty";
    auto plan = AutoPartitioner::partition(program);
    EXPECT_FALSE(plan.isOk());
    EXPECT_EQ(plan.status().code(), ErrorCode::InvalidArgument);
    auto run = AutoPartitioner::run(*system, program);
    EXPECT_FALSE(run.isOk());
}

TEST_F(AutoPartitionEdgeTest, CpuOnlyProgramYieldsCpuOnlyPlan)
{
    MonolithicProgram program;
    program.name = "cpuonly";
    program.cpuImage.exports = {"echo"};
    program.ops.push_back(
        {MonoOp::Kind::Cpu, "echo", toBytes("ping")});
    program.ops.push_back(
        {MonoOp::Kind::Cpu, "echo", toBytes("pong")});

    auto plan = AutoPartitioner::partition(program);
    ASSERT_TRUE(plan.isOk());
    EXPECT_TRUE(plan.value().needsCpu);
    EXPECT_FALSE(plan.value().needsGpu);
    EXPECT_FALSE(plan.value().needsNpu);
    EXPECT_FALSE(plan.value().cpuManifest.empty());
    EXPECT_TRUE(plan.value().gpuManifest.empty());
    EXPECT_TRUE(plan.value().npuManifest.empty());

    auto run = AutoPartitioner::run(*system, program);
    ASSERT_TRUE(run.isOk());
    ASSERT_EQ(run.value().outputs.size(), 2u);
    EXPECT_EQ(run.value().outputs[0], toBytes("ping"));
    EXPECT_EQ(run.value().outputs[1], toBytes("pong"));
    /* No channels were built for a single-device program. */
    EXPECT_EQ(run.value().gpuStats.executed, 0u);
    EXPECT_EQ(run.value().npuStats.executed, 0u);
}

TEST_F(AutoPartitionEdgeTest, GpuOnlyProgramRunsWithoutDriver)
{
    MonolithicProgram program;
    program.name = "gpuonly";
    program.gpuImage = {"gpuonly.cubin", {"fill_f32"}};
    program.ops.push_back({MonoOp::Kind::Cuda, "cuMemAlloc",
                           CudaRuntime::encodeMemAlloc(256)});

    auto plan = AutoPartitioner::partition(program);
    ASSERT_TRUE(plan.isOk());
    EXPECT_FALSE(plan.value().needsCpu);
    EXPECT_TRUE(plan.value().needsGpu);
    EXPECT_FALSE(plan.value().needsNpu);

    auto run = AutoPartitioner::run(*system, program);
    ASSERT_TRUE(run.isOk());
    ASSERT_EQ(run.value().outputs.size(), 1u);
    auto va = CudaRuntime::decodeU64Result(run.value().outputs[0]);
    ASSERT_TRUE(va.isOk());
    EXPECT_NE(va.value(), 0u);
}

TEST_F(AutoPartitionEdgeTest, NpuOnlyProgramRunsWithoutDriver)
{
    MonolithicProgram program;
    program.name = "npuonly";
    program.ops.push_back({MonoOp::Kind::Npu, "vtaAllocBuffer",
                           NpuRuntime::encodeAllocBuffer(64)});

    auto plan = AutoPartitioner::partition(program);
    ASSERT_TRUE(plan.isOk());
    EXPECT_FALSE(plan.value().needsCpu);
    EXPECT_FALSE(plan.value().needsGpu);
    EXPECT_TRUE(plan.value().needsNpu);
    EXPECT_TRUE(plan.value().cpuManifest.empty());

    auto run = AutoPartitioner::run(*system, program);
    ASSERT_TRUE(run.isOk());
    ASSERT_EQ(run.value().outputs.size(), 1u);
    EXPECT_FALSE(run.value().outputs[0].empty());
}

TEST_F(AutoPartitionEdgeTest, ManifestDeclaresOnlyCallsTheOpsUse)
{
    MonolithicProgram program;
    program.name = "narrow";
    program.gpuImage = {"narrow.cubin", {"fill_f32"}};
    program.ops.push_back({MonoOp::Kind::Cuda, "cuMemAlloc",
                           CudaRuntime::encodeMemAlloc(64)});
    program.ops.push_back({MonoOp::Kind::Cuda, "cuMemAlloc",
                           CudaRuntime::encodeMemAlloc(64)});

    auto plan = AutoPartitioner::partition(program);
    ASSERT_TRUE(plan.isOk());
    auto manifest = Manifest::fromJson(plan.value().gpuManifest);
    ASSERT_TRUE(manifest.isOk());
    /* Duplicate ops collapse to one declaration; undeclared calls
     * stay outside the attack surface. */
    ASSERT_EQ(manifest.value().mEcalls.size(), 1u);
    EXPECT_EQ(manifest.value().mEcalls[0].name, "cuMemAlloc");
    EXPECT_FALSE(manifest.value().mEcalls[0].async);
}

} // namespace
} // namespace cronus::core
