/** Unit tests for manifest parsing and measurement. */

#include <gtest/gtest.h>

#include "core/manifest.hh"

namespace cronus::core
{
namespace
{

const char *kGoodManifest = R"({
    "device_type": "gpu",
    "images": {
        "mat.cubin": "654c28186756aa92",
        "cudart.so": "2814c867aa955265"
    },
    "mEcalls": [
        {"name": "cuLaunchKernel", "async": true},
        {"name": "cuMemcpyDtoH", "async": false},
        "cuCtxSynchronize"
    ],
    "resources": { "memory": "1G" }
})";

TEST(ManifestTest, ParsesPaperStyleManifest)
{
    auto m = Manifest::fromJson(kGoodManifest);
    ASSERT_TRUE(m.isOk()) << m.status().toString();
    EXPECT_EQ(m.value().deviceType, "gpu");
    EXPECT_EQ(m.value().images.at("mat.cubin"), "654c28186756aa92");
    EXPECT_EQ(m.value().memoryBytes, 1ull << 30);
    EXPECT_TRUE(m.value().declaresCall("cuLaunchKernel"));
    EXPECT_TRUE(m.value().isAsync("cuLaunchKernel"));
    EXPECT_FALSE(m.value().isAsync("cuMemcpyDtoH"));
    EXPECT_FALSE(m.value().isAsync("cuCtxSynchronize"));
    EXPECT_FALSE(m.value().declaresCall("cuEvil"));
}

TEST(ManifestTest, MemorySizeParsing)
{
    EXPECT_EQ(Manifest::parseMemorySize("4096").value(), 4096u);
    EXPECT_EQ(Manifest::parseMemorySize("16K").value(), 16384u);
    EXPECT_EQ(Manifest::parseMemorySize("2M").value(), 2u << 20);
    EXPECT_EQ(Manifest::parseMemorySize("1GB").value(), 1ull << 30);
    EXPECT_FALSE(Manifest::parseMemorySize("").isOk());
    EXPECT_FALSE(Manifest::parseMemorySize("G").isOk());
    EXPECT_FALSE(Manifest::parseMemorySize("1T").isOk());
    EXPECT_FALSE(Manifest::parseMemorySize("99999999999999999999")
                     .isOk());
}

TEST(ManifestTest, RejectsBadManifests)
{
    EXPECT_FALSE(Manifest::fromJson("not json").isOk());
    EXPECT_FALSE(Manifest::fromJson("{}").isOk());
    /* Unknown device type. */
    EXPECT_FALSE(Manifest::fromJson(R"({
        "device_type": "fpga",
        "mEcalls": ["x"],
        "resources": {"memory": "1M"}
    })").isOk());
    /* No mECalls. */
    EXPECT_FALSE(Manifest::fromJson(R"({
        "device_type": "cpu",
        "mEcalls": [],
        "resources": {"memory": "1M"}
    })").isOk());
    /* Missing memory. */
    EXPECT_FALSE(Manifest::fromJson(R"({
        "device_type": "cpu",
        "mEcalls": ["f"],
        "resources": {}
    })").isOk());
    /* Zero memory. */
    EXPECT_FALSE(Manifest::fromJson(R"({
        "device_type": "cpu",
        "mEcalls": ["f"],
        "resources": {"memory": "0"}
    })").isOk());
    /* Bad mEcall entry. */
    EXPECT_FALSE(Manifest::fromJson(R"({
        "device_type": "cpu",
        "mEcalls": [42],
        "resources": {"memory": "1M"}
    })").isOk());
}

TEST(ManifestTest, RoundTripPreservesMeasurement)
{
    auto m = Manifest::fromJson(kGoodManifest).value();
    auto again = Manifest::fromJson(m.toJson());
    ASSERT_TRUE(again.isOk());
    EXPECT_EQ(crypto::digestHex(m.measure()),
              crypto::digestHex(again.value().measure()));
}

TEST(ManifestTest, MeasurementSensitiveToContent)
{
    auto a = Manifest::fromJson(kGoodManifest).value();
    auto b = a;
    b.images["mat.cubin"] = "ffffffffffffffff";
    EXPECT_NE(crypto::digestHex(a.measure()),
              crypto::digestHex(b.measure()));
    auto c = a;
    c.mEcalls[0].async = false;
    EXPECT_NE(crypto::digestHex(a.measure()),
              crypto::digestHex(c.measure()));
}

} // namespace
} // namespace cronus::core
