/**
 * @file
 * SharedPipe crash edges: a partition dying mid-message must surface
 * PeerFailed to the surviving end (never a torn message), the
 * failure latches on the pipe even after the partition recovers, and
 * degenerate transfers (zero-length, empty ring) stay well-defined.
 */

#include "test_fixtures.hh"

#include "core/pipe.hh"

namespace cronus::core
{
namespace
{

using testing::CronusTest;

class PipeEdgeTest : public CronusTest
{
  protected:
    void
    SetUp() override
    {
        CronusTest::SetUp();
        cpu = makeCpuEnclave().value();
        gpu = makeGpuEnclave().value();
    }

    std::unique_ptr<SharedPipe>
    makePipe(const PipeConfig &config = PipeConfig())
    {
        auto pipe = SharedPipe::create(*cpu.host, cpu.eid,
                                       *gpu.host, gpu.eid,
                                       gpu.secret, config);
        EXPECT_TRUE(pipe.isOk());
        return std::move(pipe.value());
    }

    AppHandle cpu;
    AppHandle gpu;
};

TEST_F(PipeEdgeTest, WriterCrashMidMessageSurfacesPeerFailed)
{
    auto pipe = makePipe();

    /* First half of a 20-byte message lands... */
    Bytes first(10, 0xaa);
    auto accepted = pipe->write(first);
    ASSERT_TRUE(accepted.isOk());
    EXPECT_EQ(accepted.value(), 10u);

    /* ...then the writer's partition dies before the second half. */
    ASSERT_TRUE(system->injectPanic("cpu0").isOk());

    /* The reader does not get a torn message: its next ring access
     * traps and surfaces PeerFailed. */
    auto r = pipe->read(20);
    EXPECT_FALSE(r.isOk());
    EXPECT_EQ(r.status().code(), ErrorCode::PeerFailed);
    EXPECT_TRUE(pipe->failed());

    /* The failure latches: even after the partition recovers, this
     * pipe instance stays dead (its grant died with the old
     * incarnation). */
    ASSERT_TRUE(system->recover("cpu0").isOk());
    auto after = pipe->read(20);
    EXPECT_FALSE(after.isOk());
    EXPECT_EQ(after.status().code(), ErrorCode::PeerFailed);
    EXPECT_FALSE(pipe->write(Bytes{0x01}).isOk());
}

TEST_F(PipeEdgeTest, ReaderCrashFailsSubsequentWrites)
{
    auto pipe = makePipe();
    ASSERT_TRUE(pipe->write(Bytes(8, 0x42)).isOk());

    ASSERT_TRUE(system->injectPanic("gpu0").isOk());

    auto w = pipe->write(Bytes(8, 0x43));
    EXPECT_FALSE(w.isOk());
    EXPECT_EQ(w.status().code(), ErrorCode::PeerFailed);
    EXPECT_TRUE(pipe->failed());
}

TEST_F(PipeEdgeTest, DegenerateTransfersAreWellDefined)
{
    auto pipe = makePipe();

    /* Zero-length write accepts zero bytes. */
    auto w = pipe->write(Bytes{});
    ASSERT_TRUE(w.isOk());
    EXPECT_EQ(w.value(), 0u);

    /* Reading an empty pipe returns an empty chunk, not an error. */
    auto r = pipe->read(64);
    ASSERT_TRUE(r.isOk());
    EXPECT_TRUE(r.value().empty());

    /* Close-then-drain reaches end-of-stream exactly when the
     * buffered bytes are gone. */
    ASSERT_TRUE(pipe->write(Bytes(4, 0x07)).isOk());
    ASSERT_TRUE(pipe->closeWrite().isOk());
    auto eos = pipe->endOfStream();
    ASSERT_TRUE(eos.isOk());
    EXPECT_FALSE(eos.value());
    auto drained = pipe->read(64);
    ASSERT_TRUE(drained.isOk());
    EXPECT_EQ(drained.value().size(), 4u);
    eos = pipe->endOfStream();
    ASSERT_TRUE(eos.isOk());
    EXPECT_TRUE(eos.value());
}

} // namespace
} // namespace cronus::core
