/** Tests for the streaming RPC protocol, including failover. */

#include "test_fixtures.hh"

namespace cronus::core
{
namespace
{

using testing::CronusTest;

class SrpcTest : public CronusTest
{
  protected:
    void
    SetUp() override
    {
        CronusTest::SetUp();
        cpu = makeCpuEnclave().value();
        gpu = makeGpuEnclave().value();
    }

    std::unique_ptr<SrpcChannel>
    makeChannel()
    {
        auto channel = system->connect(cpu, gpu);
        EXPECT_TRUE(channel.isOk()) << channel.status().toString();
        return std::move(channel.value());
    }

    uint64_t
    gpuAlloc(SrpcChannel &channel, uint64_t bytes)
    {
        auto r = channel.callSync("cuMemAlloc",
                                  CudaRuntime::encodeMemAlloc(bytes));
        EXPECT_TRUE(r.isOk()) << r.status().toString();
        return CudaRuntime::decodeU64Result(r.value()).value();
    }

    AppHandle cpu, gpu;
};

TEST_F(SrpcTest, ConnectPerformsDcheck)
{
    auto channel = makeChannel();
    EXPECT_FALSE(channel->failed());
    EXPECT_GT(channel->grantId(), 0u);
}

TEST_F(SrpcTest, ConnectRejectsWrongSecret)
{
    AppHandle forged = gpu;
    forged.secret = Bytes(32, 0x13);
    auto channel = system->connect(cpu, forged);
    /* dCheck tags differ between the two sides -> rejected. */
    EXPECT_FALSE(channel.isOk());
}

TEST_F(SrpcTest, SyncCallReturnsResult)
{
    auto channel = makeChannel();
    uint64_t va = gpuAlloc(*channel, 64);
    EXPECT_GT(va, 0u);
}

TEST_F(SrpcTest, AsyncCallsStreamWithoutWaiting)
{
    auto channel = makeChannel();
    uint64_t va = gpuAlloc(*channel, 4096);

    Bytes data(512, 7);
    /* cuMemcpyHtoD is async per the manifest: call() returns
     * immediately with no payload. */
    auto r = channel->call("cuMemcpyHtoD",
                           CudaRuntime::encodeMemcpyHtoD(va, data));
    ASSERT_TRUE(r.isOk());
    EXPECT_TRUE(r.value().empty());
    EXPECT_GE(channel->stats().asyncCalls, 1u);
    ASSERT_TRUE(channel->drain().isOk());
}

TEST_F(SrpcTest, StreamedCudaPipelineComputes)
{
    auto channel = makeChannel();
    uint64_t va_a = gpuAlloc(*channel, 16);
    uint64_t va_b = gpuAlloc(*channel, 16);
    uint64_t va_c = gpuAlloc(*channel, 16);

    std::vector<float> a = {1, 2, 3, 4}, b = {10, 20, 30, 40};
    Bytes a_bytes(reinterpret_cast<uint8_t *>(a.data()),
                  reinterpret_cast<uint8_t *>(a.data()) + 16);
    Bytes b_bytes(reinterpret_cast<uint8_t *>(b.data()),
                  reinterpret_cast<uint8_t *>(b.data()) + 16);

    /* Stream: two copies + launch (all async), then a sync DtoH. */
    ASSERT_TRUE(channel->call("cuMemcpyHtoD",
                              CudaRuntime::encodeMemcpyHtoD(
                                  va_a, a_bytes)).isOk());
    ASSERT_TRUE(channel->call("cuMemcpyHtoD",
                              CudaRuntime::encodeMemcpyHtoD(
                                  va_b, b_bytes)).isOk());
    ASSERT_TRUE(channel->call("cuLaunchKernel",
                              CudaRuntime::encodeLaunchKernel(
                                  "vec_add_f32",
                                  {va_a, va_b, va_c, 4}, 4)).isOk());
    auto out = channel->call("cuMemcpyDtoH",
                             CudaRuntime::encodeMemcpyDtoH(va_c, 16));
    ASSERT_TRUE(out.isOk()) << out.status().toString();
    const float *c =
        reinterpret_cast<const float *>(out.value().data());
    EXPECT_EQ(c[0], 11);
    EXPECT_EQ(c[1], 22);
    EXPECT_EQ(c[2], 33);
    EXPECT_EQ(c[3], 44);

    ASSERT_TRUE(channel->close().isOk());
    /* streamCheck held: everything issued was executed. */
    EXPECT_EQ(channel->stats().executed,
              channel->stats().asyncCalls +
                  channel->stats().syncCalls);
}

TEST_F(SrpcTest, RequestsExecuteInOrder)
{
    /* saxpy y += a*x is order-sensitive: y = (y + x) * ... ordering
     * is observable through accumulate semantics. We use repeated
     * saxpy with a=1: y[i] accumulates x. */
    auto channel = makeChannel();
    uint64_t va_x = gpuAlloc(*channel, 16);
    uint64_t va_y = gpuAlloc(*channel, 16);
    std::vector<float> x = {1, 1, 1, 1}, y0 = {0, 0, 0, 0};
    Bytes x_bytes(reinterpret_cast<uint8_t *>(x.data()),
                  reinterpret_cast<uint8_t *>(x.data()) + 16);
    Bytes y_bytes(reinterpret_cast<uint8_t *>(y0.data()),
                  reinterpret_cast<uint8_t *>(y0.data()) + 16);
    ASSERT_TRUE(channel->call("cuMemcpyHtoD",
                              CudaRuntime::encodeMemcpyHtoD(
                                  va_x, x_bytes)).isOk());
    ASSERT_TRUE(channel->call("cuMemcpyHtoD",
                              CudaRuntime::encodeMemcpyHtoD(
                                  va_y, y_bytes)).isOk());

    uint32_t one_bits;
    float one = 1.0f;
    std::memcpy(&one_bits, &one, 4);
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(channel->call("cuLaunchKernel",
                                  CudaRuntime::encodeLaunchKernel(
                                      "saxpy_f32",
                                      {one_bits, va_x, va_y, 4},
                                      4)).isOk());
    }
    auto out = channel->call("cuMemcpyDtoH",
                             CudaRuntime::encodeMemcpyDtoH(va_y, 16));
    ASSERT_TRUE(out.isOk());
    const float *result =
        reinterpret_cast<const float *>(out.value().data());
    EXPECT_EQ(result[0], 10.0f);
}

TEST_F(SrpcTest, NoWorldSwitchesInSteadyState)
{
    auto channel = makeChannel();
    uint64_t va = gpuAlloc(*channel, 4096);
    uint64_t switches_before = system->monitor().worldSwitchCount();

    Bytes data(256, 1);
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(channel->call("cuMemcpyHtoD",
                                  CudaRuntime::encodeMemcpyHtoD(
                                      va, data)).isOk());
    }
    ASSERT_TRUE(channel->drain().isOk());
    /* 50 streamed RPCs: zero additional world switches. */
    EXPECT_EQ(system->monitor().worldSwitchCount(), switches_before);
}

TEST_F(SrpcTest, RingWrapsAroundManyCalls)
{
    auto channel = makeChannel();
    uint64_t va = gpuAlloc(*channel, 4096);
    Bytes data(64, 9);
    /* Far more calls than ring slots (32). */
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(channel->call("cuMemcpyHtoD",
                                  CudaRuntime::encodeMemcpyHtoD(
                                      va, data)).isOk());
    }
    ASSERT_TRUE(channel->drain().isOk());
    EXPECT_EQ(channel->stats().executed, 201u);
}

TEST_F(SrpcTest, OversizedRequestRejected)
{
    auto channel = makeChannel();
    Bytes huge(1 << 20, 0);
    auto r = channel->callAsync("cuMemcpyHtoD",
                                CudaRuntime::encodeMemcpyHtoD(1,
                                                              huge));
    EXPECT_EQ(r.code(), ErrorCode::InvalidArgument);
}

TEST_F(SrpcTest, RemoteErrorSurfacesOnSyncCall)
{
    auto channel = makeChannel();
    /* Allocation bigger than VRAM fails remotely. */
    auto r = channel->callSync(
        "cuMemAlloc", CudaRuntime::encodeMemAlloc(1ull << 40));
    EXPECT_EQ(r.code(), ErrorCode::ResourceExhausted);
}

TEST_F(SrpcTest, CalleeFailureSurfacesAsPeerFailed)
{
    auto channel = makeChannel();
    uint64_t va = gpuAlloc(*channel, 4096);

    /* The GPU partition fails (mOS panic). */
    ASSERT_TRUE(system->injectPanic("gpu0").isOk());

    Bytes data(64, 1);
    auto r = channel->call("cuMemcpyDtoH",
                           CudaRuntime::encodeMemcpyDtoH(va, 16));
    EXPECT_EQ(r.code(), ErrorCode::PeerFailed);
    EXPECT_TRUE(channel->failed());
    /* Channel stays failed -- no TOCTOU window (A1). */
    EXPECT_EQ(channel->call("cuMemcpyHtoD",
                            CudaRuntime::encodeMemcpyHtoD(va, data))
                  .code(),
              ErrorCode::PeerFailed);
    /* The trap signal was delivered to the failover wiring. */
    ASSERT_FALSE(system->trapSignals().empty());
    EXPECT_EQ(system->trapSignals().back().grantId,
              channel->grantId());
}

TEST_F(SrpcTest, RecoveredPartitionCannotReadOldTraffic)
{
    auto channel = makeChannel();
    uint64_t va = gpuAlloc(*channel, 4096);
    Bytes secret_payload = toBytes("sensitive-weights");
    ASSERT_TRUE(channel->call("cuMemcpyHtoD",
                              CudaRuntime::encodeMemcpyHtoD(
                                  va, secret_payload)).isOk());
    ASSERT_TRUE(channel->drain().isOk());

    ASSERT_TRUE(system->injectPanic("gpu0").isOk());
    ASSERT_TRUE(system->recover("gpu0").isOk());

    /* A3 defense: the recovered partition's device memory was
     * scrubbed; the old VRAM contents and contexts are gone. */
    auto *gpu_dev = dynamic_cast<accel::GpuDevice *>(
        system->platform().findDevice("gpu0"));
    ASSERT_NE(gpu_dev, nullptr);
    EXPECT_EQ(gpu_dev->contextCount(), 0u);

    /* And the old channel remains unusable. */
    auto r = channel->call("cuMemcpyDtoH",
                           CudaRuntime::encodeMemcpyDtoH(va, 16));
    EXPECT_EQ(r.code(), ErrorCode::PeerFailed);
}

TEST_F(SrpcTest, CallerSurvivesAndCanRebuild)
{
    auto channel = makeChannel();
    (void)gpuAlloc(*channel, 4096);
    ASSERT_TRUE(system->injectPanic("gpu0").isOk());
    Bytes data(16, 2);
    EXPECT_EQ(channel->call("cuMemAlloc",
                            CudaRuntime::encodeMemAlloc(16)).code(),
              ErrorCode::PeerFailed);

    /* The CPU enclave itself is unaffected (fault isolation R3.1):
     * its own mECalls still work. */
    EXPECT_TRUE(system->ecall(cpu, "echo", data).isOk());

    /* After recovery a fresh enclave + channel works again. */
    ASSERT_TRUE(system->recover("gpu0").isOk());
    auto gpu2 = makeGpuEnclave();
    ASSERT_TRUE(gpu2.isOk()) << gpu2.status().toString();
    auto channel2 = system->connect(cpu, gpu2.value());
    ASSERT_TRUE(channel2.isOk()) << channel2.status().toString();
    EXPECT_GT(gpuAlloc(*channel2.value(), 64), 0u);
}

TEST_F(SrpcTest, CloseRunsStreamCheckAndRevokesGrant)
{
    auto channel = makeChannel();
    uint64_t gid = channel->grantId();
    (void)gpuAlloc(*channel, 64);
    ASSERT_TRUE(channel->close().isOk());
    auto grant = system->spm().grant(gid);
    ASSERT_TRUE(grant.isOk());
    EXPECT_FALSE(grant.value()->active);
    /* No further calls. */
    EXPECT_EQ(channel->call("cuMemAlloc",
                            CudaRuntime::encodeMemAlloc(16)).code(),
              ErrorCode::InvalidState);
}

/** Property sweep: random async/sync interleavings equal the
 *  monolithic result (the §IV-C equivalence guarantee). */
class SrpcInterleavingTest : public SrpcTest,
                             public ::testing::WithParamInterface<int>
{
};

TEST_P(SrpcInterleavingTest, MatchesDirectExecution)
{
    Rng rng(GetParam());
    auto channel = makeChannel();
    uint64_t va = gpuAlloc(*channel, 16);
    std::vector<float> x = {1, 2, 3, 4};
    Bytes x_bytes(reinterpret_cast<uint8_t *>(x.data()),
                  reinterpret_cast<uint8_t *>(x.data()) + 16);
    ASSERT_TRUE(channel->call("cuMemcpyHtoD",
                              CudaRuntime::encodeMemcpyHtoD(
                                  va, x_bytes)).isOk());

    /* Random stream of saxpy with random coefficients; track the
     * expected value locally. */
    std::vector<float> expected = x;
    for (int i = 0; i < 20; ++i) {
        float coeff = 1.0f + static_cast<float>(rng.nextBelow(3));
        uint32_t bits;
        std::memcpy(&bits, &coeff, 4);
        ASSERT_TRUE(channel->call("cuLaunchKernel",
                                  CudaRuntime::encodeLaunchKernel(
                                      "saxpy_f32",
                                      {bits, va, va, 4}, 4)).isOk());
        for (auto &v : expected)
            v += coeff * v;
        /* Occasionally interleave a sync point. */
        if (rng.nextBelow(4) == 0)
            ASSERT_TRUE(channel->call("cuCtxSynchronize",
                                      Bytes{}).isOk());
    }
    auto out = channel->call("cuMemcpyDtoH",
                             CudaRuntime::encodeMemcpyDtoH(va, 16));
    ASSERT_TRUE(out.isOk());
    const float *result =
        reinterpret_cast<const float *>(out.value().data());
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(result[i], expected[i]) << "lane " << i;
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, SrpcInterleavingTest,
                         ::testing::Range(1, 9));

} // namespace
} // namespace cronus::core
