/** Module store, enclave shells + bind, and the warm pool. */

#include <cstdlib>

#include "core/warm_pool.hh"
#include "test_fixtures.hh"

namespace cronus::core
{
namespace
{

using testing::cpuImageBytes;
using testing::cpuManifest;
using testing::gpuImageBytes;
using testing::gpuManifest;
using testing::manifestJson;

CronusConfig
storeConfig(uint64_t store_bytes)
{
    CronusConfig cfg;
    cfg.moduleStoreBytes = store_bytes;
    return cfg;
}

/** Like CronusTest, but with the module store switched on. */
class ModuleStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Logger::instance().setQuiet(true);
        testing::registerTestCpuFunctions();
        accel::registerBuiltinKernels();
        /* A stale ablation toggle must not leak into these tests. */
        unsetenv("CRONUS_DISABLE_MODSTORE");
        system = std::make_unique<CronusSystem>(
            storeConfig(16ull << 20));
    }

    std::unique_ptr<CronusSystem> system;
};

/* ---------------- store mechanics ---------------- */

TEST_F(ModuleStoreTest, DigestIsAContentAddress)
{
    auto a = ModuleStore::digestOf(cpuManifest(), cpuImageBytes());
    auto b = ModuleStore::digestOf(cpuManifest(), cpuImageBytes());
    EXPECT_EQ(a, b);

    auto other_manifest =
        ModuleStore::digestOf(gpuManifest(), cpuImageBytes());
    auto other_image =
        ModuleStore::digestOf(cpuManifest(), gpuImageBytes());
    EXPECT_NE(a, other_manifest);
    EXPECT_NE(a, other_image);
}

TEST_F(ModuleStoreTest, AdmitVerifiesAndCachesIdentity)
{
    auto &store = system->moduleStore();
    auto admitted =
        store.admit(cpuManifest(), "app.so", cpuImageBytes());
    ASSERT_TRUE(admitted.isOk());
    const ModuleRecord *rec = admitted.value();

    EXPECT_EQ(rec->imageHash, crypto::sha256(cpuImageBytes()));
    EXPECT_EQ(rec->digest,
              ModuleStore::digestOf(cpuManifest(), cpuImageBytes()));

    /* The cached measurement is exactly what the legacy pipeline
     * derives: sha256(manifest.measure() || sha256(image)). */
    crypto::Sha256 expected;
    expected.update(
        crypto::digestToBytes(rec->manifest.measure()));
    expected.update(crypto::digestToBytes(rec->imageHash));
    EXPECT_EQ(rec->measurement, expected.finalize());

    EXPECT_EQ(store.moduleCount(), 1u);
    EXPECT_EQ(store.residentBytes(), rec->residentBytes());
    EXPECT_EQ(system->spm().storeBytesResident(),
              rec->residentBytes());
}

TEST_F(ModuleStoreTest, AdmitRejectsUnverifiableModules)
{
    auto &store = system->moduleStore();

    /* Image name the manifest never declared. */
    auto bad_name =
        store.admit(cpuManifest(), "other.so", cpuImageBytes());
    EXPECT_FALSE(bad_name.isOk());

    /* Image bytes that do not match the declared hash. */
    Bytes tampered = cpuImageBytes();
    tampered.push_back(0x5a);
    auto bad_hash = store.admit(cpuManifest(), "app.so", tampered);
    ASSERT_FALSE(bad_hash.isOk());
    EXPECT_EQ(bad_hash.status().code(),
              ErrorCode::IntegrityViolation);

    EXPECT_EQ(store.moduleCount(), 0u);
    EXPECT_EQ(system->spm().storeBytesResident(), 0u);
}

TEST_F(ModuleStoreTest, LookupMissesThenHitsAndReAdmissionIsAHit)
{
    auto &store = system->moduleStore();
    auto digest =
        ModuleStore::digestOf(cpuManifest(), cpuImageBytes());

    auto miss = store.lookup(digest);
    ASSERT_FALSE(miss.isOk());
    EXPECT_EQ(miss.status().code(), ErrorCode::NotFound);

    ASSERT_TRUE(
        store.admit(cpuManifest(), "app.so", cpuImageBytes())
            .isOk());
    auto hit = store.lookup(digest);
    ASSERT_TRUE(hit.isOk());
    EXPECT_EQ(hit.value()->hits, 1u);

    /* Admitting resident bytes again must not duplicate them. */
    auto again =
        store.admit(cpuManifest(), "app.so", cpuImageBytes());
    ASSERT_TRUE(again.isOk());
    EXPECT_EQ(again.value(), hit.value());
    EXPECT_EQ(store.moduleCount(), 1u);
    EXPECT_EQ(again.value()->hits, 2u);
}

TEST_F(ModuleStoreTest, EvictsLruWhenCapacityWouldBeExceeded)
{
    std::string mf_a = cpuManifest();
    std::string mf_b = gpuManifest();
    uint64_t bytes_a = mf_a.size() + cpuImageBytes().size();
    uint64_t bytes_b = mf_b.size() + gpuImageBytes().size();

    /* Room for both modules but not for a third copy of A under a
     * distinct digest (manifest with a different memory figure). */
    std::string mf_c =
        manifestJson("cpu", {{"app.so", cpuImageBytes()}},
                     {{"echo", false}}, "2M");
    uint64_t bytes_c = mf_c.size() + cpuImageBytes().size();

    ModuleStore store(system->spm(), bytes_a + bytes_b +
                                         bytes_c / 2);
    ASSERT_TRUE(
        store.admit(mf_a, "app.so", cpuImageBytes()).isOk());
    ASSERT_TRUE(
        store.admit(mf_b, "test.cubin", gpuImageBytes()).isOk());

    /* Touch A so B is the least recently used. */
    ASSERT_TRUE(
        store.lookup(ModuleStore::digestOf(mf_a, cpuImageBytes()))
            .isOk());

    ASSERT_TRUE(
        store.admit(mf_c, "app.so", cpuImageBytes()).isOk());
    EXPECT_TRUE(
        store.lookup(ModuleStore::digestOf(mf_a, cpuImageBytes()))
            .isOk());
    EXPECT_FALSE(
        store.lookup(ModuleStore::digestOf(mf_b, gpuImageBytes()))
            .isOk());
    EXPECT_EQ(store.moduleCount(), 2u);
    EXPECT_EQ(store.residentBytes(), bytes_a + bytes_c);
    EXPECT_LE(store.residentBytes(), store.capacity());
}

TEST_F(ModuleStoreTest, RejectsModuleLargerThanCapacity)
{
    ModuleStore store(system->spm(), 16);
    auto admitted =
        store.admit(cpuManifest(), "app.so", cpuImageBytes());
    ASSERT_FALSE(admitted.isOk());
    EXPECT_EQ(admitted.status().code(),
              ErrorCode::ResourceExhausted);
    EXPECT_EQ(store.residentBytes(), 0u);
}

TEST_F(ModuleStoreTest, DestructionReleasesSpmResidency)
{
    uint64_t before = system->spm().storeBytesResident();
    {
        ModuleStore store(system->spm(), 8ull << 20);
        ASSERT_TRUE(
            store.admit(cpuManifest(), "app.so", cpuImageBytes())
                .isOk());
        EXPECT_GT(system->spm().storeBytesResident(), before);
    }
    EXPECT_EQ(system->spm().storeBytesResident(), before);
}

/* ---------------- cached create ---------------- */

TEST_F(ModuleStoreTest, CachedHitSkipsTheMeasurementSha)
{
    auto &clock = system->platform().clock();
    const auto &costs = system->platform().costs();

    SimTime t0 = clock.now();
    auto legacy = system->createEnclave(cpuManifest(), "app.so",
                                        cpuImageBytes());
    ASSERT_TRUE(legacy.isOk());
    SimTime legacy_cost = clock.now() - t0;

    /* Miss path: admission charges exactly the legacy SHA, so cost
     * parity holds on first touch... */
    t0 = clock.now();
    auto miss = system->createEnclaveCached(
        cpuManifest(), "app.so", cpuImageBytes());
    ASSERT_TRUE(miss.isOk());
    SimTime miss_cost = clock.now() - t0;
    EXPECT_EQ(miss_cost, legacy_cost);

    /* ...and the hit path is cheaper by exactly that SHA. */
    t0 = clock.now();
    auto hit = system->createEnclaveCached(
        cpuManifest(), "app.so", cpuImageBytes());
    ASSERT_TRUE(hit.isOk());
    SimTime hit_cost = clock.now() - t0;

    auto sha_cost = static_cast<SimTime>(
        (cpuManifest().size() + cpuImageBytes().size()) *
        costs.shaNsPerByte);
    EXPECT_EQ(hit_cost, legacy_cost - sha_cost);
    EXPECT_LT(hit_cost, miss_cost);
}

TEST_F(ModuleStoreTest, CachedCreateAttestsLikeLegacyCreate)
{
    auto legacy = system->createEnclave(cpuManifest(), "app.so",
                                        cpuImageBytes());
    auto cached = system->createEnclaveCached(
        cpuManifest(), "app.so", cpuImageBytes());
    ASSERT_TRUE(legacy.isOk());
    ASSERT_TRUE(cached.isOk());

    Bytes challenge = toBytes("modstore-challenge");
    auto lr = system->attest(legacy.value(), challenge);
    auto cr = system->attest(cached.value(), challenge);
    ASSERT_TRUE(lr.isOk());
    ASSERT_TRUE(cr.isOk());
    EXPECT_EQ(lr.value().report.enclaveMeasurement,
              cr.value().report.enclaveMeasurement);

    /* The cached instance passes the same remote verification. */
    auto expect = system->expectationFor(cached.value());
    expect.challenge = challenge;
    EXPECT_TRUE(verifyAttestation(cr.value(), expect).isOk());

    /* And it is a live, callable enclave. */
    auto out = system->ecall(cached.value(), "echo",
                             toBytes("hello"));
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(out.value(), toBytes("hello"));
}

/* ---------------- shells + bind ---------------- */

TEST_F(ModuleStoreTest, ShellIsInertUntilAModuleIsBound)
{
    auto shell =
        system->createEnclaveShell("cpu", 4ull << 20);
    ASSERT_TRUE(shell.isOk());

    /* The shell's empty manifest exposes no mECalls. */
    auto before = system->ecall(shell.value(), "echo",
                                toBytes("x"));
    ASSERT_FALSE(before.isOk());
    EXPECT_EQ(before.status().code(), ErrorCode::PermissionDenied);

    auto rec = system->moduleStore().admit(
        cpuManifest(), "app.so", cpuImageBytes());
    ASSERT_TRUE(rec.isOk());
    ASSERT_TRUE(
        system->bindEnclaveModule(shell.value(), *rec.value())
            .isOk());

    auto after = system->ecall(shell.value(), "echo",
                               toBytes("x"));
    ASSERT_TRUE(after.isOk());
    EXPECT_EQ(after.value(), toBytes("x"));

    /* Bind swapped the attested identity to the module's. */
    Bytes challenge = toBytes("shell-challenge");
    auto report = system->attest(shell.value(), challenge);
    ASSERT_TRUE(report.isOk());
    EXPECT_EQ(report.value().report.enclaveMeasurement,
              rec.value()->measurement);
}

TEST_F(ModuleStoreTest, RebindResetsEnclaveState)
{
    auto shell =
        system->createEnclaveShell("cpu", 4ull << 20);
    ASSERT_TRUE(shell.isOk());
    auto rec = system->moduleStore().admit(
        cpuManifest(), "app.so", cpuImageBytes());
    ASSERT_TRUE(rec.isOk());
    ASSERT_TRUE(
        system->bindEnclaveModule(shell.value(), *rec.value())
            .isOk());

    ByteWriter w;
    w.putU64(41);
    ASSERT_TRUE(
        system->ecall(shell.value(), "accumulate", w.data())
            .isOk());

    /* Enclave-per-request: a rebind starts from fresh state, so the
     * accumulator does not see the previous lease's total. */
    ASSERT_TRUE(
        system->bindEnclaveModule(shell.value(), *rec.value())
            .isOk());
    auto out =
        system->ecall(shell.value(), "accumulate", w.data());
    ASSERT_TRUE(out.isOk());
    ByteReader r(out.value());
    EXPECT_EQ(r.getU64().value(), 41u);
}

TEST_F(ModuleStoreTest, BindIsOwnerAuthenticatedAndReplayProof)
{
    auto shell =
        system->createEnclaveShell("cpu", 4ull << 20);
    ASSERT_TRUE(shell.isOk());
    auto rec = system->moduleStore().admit(
        cpuManifest(), "app.so", cpuImageBytes());
    ASSERT_TRUE(rec.isOk());

    /* Wrong secret -> AuthFailed. */
    AppHandle thief = shell.value();
    thief.secret = toBytes("not-the-dhke-secret");
    auto forged = system->bindEnclaveModule(thief, *rec.value());
    ASSERT_FALSE(forged.isOk());
    EXPECT_EQ(forged.code(), ErrorCode::AuthFailed);

    /* A recorded (nonce, tag) pair cannot be replayed. */
    auto &handle = shell.value();
    ASSERT_TRUE(
        system->bindEnclaveModule(handle, *rec.value()).isOk());
    uint64_t used_nonce = handle.nonce;
    Bytes tag = EnclaveManager::authTag(
        handle.secret, handle.eid, used_nonce, "bind",
        crypto::digestToBytes(rec.value()->digest));
    auto replay = handle.host->enclaveManager().bindModule(
        handle.eid, *rec.value(), used_nonce, tag);
    ASSERT_FALSE(replay.isOk());
    EXPECT_EQ(replay.code(), ErrorCode::IntegrityViolation);
}

TEST_F(ModuleStoreTest, BindRejectsDeviceTypeMismatch)
{
    auto shell =
        system->createEnclaveShell("cpu", 4ull << 20);
    ASSERT_TRUE(shell.isOk());
    auto rec = system->moduleStore().admit(
        gpuManifest(), "test.cubin", gpuImageBytes());
    ASSERT_TRUE(rec.isOk());

    auto bound =
        system->bindEnclaveModule(shell.value(), *rec.value());
    ASSERT_FALSE(bound.isOk());
    EXPECT_EQ(bound.code(), ErrorCode::InvalidArgument);
}

TEST_F(ModuleStoreTest, BindAdmissionUsesTheQuotaDelta)
{
    /* Fill the CPU partition (24M) to 20M with legacy enclaves,
     * leaving room for a 2M shell (22M used). */
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(system
                        ->createEnclave(cpuManifest(), "app.so",
                                        cpuImageBytes())
                        .isOk());
    }
    auto shell =
        system->createEnclaveShell("cpu", 2ull << 20);
    ASSERT_TRUE(shell.isOk());

    /* Swapping the shell's 2M for a 4M module fits (24M)... */
    auto small = system->moduleStore().admit(
        cpuManifest(), "app.so", cpuImageBytes());
    ASSERT_TRUE(small.isOk());
    EXPECT_TRUE(
        system->bindEnclaveModule(shell.value(), *small.value())
            .isOk());

    /* ...but an 8M module would put the partition at 28M. */
    std::string big_mf =
        manifestJson("cpu", {{"app.so", cpuImageBytes()}},
                     {{"echo", false}}, "8M");
    auto big = system->moduleStore().admit(big_mf, "app.so",
                                           cpuImageBytes());
    ASSERT_TRUE(big.isOk());
    auto bound =
        system->bindEnclaveModule(shell.value(), *big.value());
    ASSERT_FALSE(bound.isOk());
    EXPECT_EQ(bound.code(), ErrorCode::ResourceExhausted);

    /* The failed bind kept the previous binding callable. */
    EXPECT_TRUE(
        system->ecall(shell.value(), "echo", toBytes("y")).isOk());
}

/* ---------------- warm pool ---------------- */

TEST_F(ModuleStoreTest, WarmPoolBindsCachedModulesOntoShells)
{
    auto driver = system->createEnclave(cpuManifest(), "app.so",
                                        cpuImageBytes());
    ASSERT_TRUE(driver.isOk());

    WarmPool::Config cfg;
    cfg.deviceType = "gpu";
    WarmPool pool(*system, cfg);
    ASSERT_TRUE(pool.prefill(2, &driver.value()).isOk());
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.available(), 2u);

    auto rec = system->moduleStore().admit(
        gpuManifest(), "test.cubin", gpuImageBytes());
    ASSERT_TRUE(rec.isOk());

    auto lease = pool.acquire(*rec.value());
    ASSERT_TRUE(lease.isOk());
    WarmShell *shell = lease.value();
    EXPECT_EQ(pool.available(), 1u);
    EXPECT_EQ(shell->boundDigest, rec.value()->digest);

    /* The prefilled channel survives the bind: dCheck proved
     * ownership of the shell's secret, not of the module. */
    ASSERT_NE(shell->channel, nullptr);
    auto va = shell->channel->callSync(
        "cuMemAlloc", CudaRuntime::encodeMemAlloc(16));
    ASSERT_TRUE(va.isOk());

    ASSERT_TRUE(pool.release(shell).isOk());
    EXPECT_EQ(pool.available(), 2u);

    /* Re-acquiring the same digest reuses the binding. */
    auto again = pool.acquire(*rec.value());
    ASSERT_TRUE(again.isOk());
    EXPECT_EQ(again.value(), shell);
    EXPECT_EQ(pool.statistics().counter("affinity_hits").value(),
              1u);
    EXPECT_EQ(pool.statistics().counter("binds").value(), 1u);

    /* Both shells leased -> the pool is dry. */
    ASSERT_TRUE(pool.acquire(*rec.value()).isOk());
    auto dry = pool.acquire(*rec.value());
    ASSERT_FALSE(dry.isOk());
    EXPECT_EQ(dry.status().code(), ErrorCode::ResourceExhausted);

    EXPECT_FALSE(pool.release(nullptr).isOk());
}

TEST_F(ModuleStoreTest, WarmPoolAcquireBeforePrefillIsNotFound)
{
    WarmPool pool(*system, WarmPool::Config{});
    auto rec = system->moduleStore().admit(
        gpuManifest(), "test.cubin", gpuImageBytes());
    ASSERT_TRUE(rec.isOk());
    auto lease = pool.acquire(*rec.value());
    ASSERT_FALSE(lease.isOk());
    EXPECT_EQ(lease.status().code(), ErrorCode::NotFound);
}

/* ---------------- ablation toggle ---------------- */

TEST_F(ModuleStoreTest, DisableToggleForcesTheLegacyPath)
{
    setenv("CRONUS_DISABLE_MODSTORE", "1", 1);
    CronusSystem disabled(storeConfig(16ull << 20));
    unsetenv("CRONUS_DISABLE_MODSTORE");

    EXPECT_FALSE(disabled.moduleStoreEnabled());

    /* createEnclaveCached degrades to the legacy pipeline. */
    auto enclave = disabled.createEnclaveCached(
        cpuManifest(), "app.so", cpuImageBytes());
    ASSERT_TRUE(enclave.isOk());
    auto out = disabled.ecall(enclave.value(), "echo",
                              toBytes("z"));
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(out.value(), toBytes("z"));
}

TEST_F(ModuleStoreTest, DefaultConfigLeavesTheStoreOff)
{
    CronusSystem plain;
    EXPECT_FALSE(plain.moduleStoreEnabled());
}

} // namespace
} // namespace cronus::core
