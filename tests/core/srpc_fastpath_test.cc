/**
 * Fast-path regression tests: the sRPC polling loops (drain's
 * streamCheck, pump's Rid poll) and the shim spinlock must perform
 * exactly one in-place counter access per poll and zero heap
 * allocations. A global counting operator new catches any future
 * change that silently reintroduces per-poll Bytes temporaries --
 * which is why this suite owns its binary.
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "../core/test_fixtures.hh"
#include "mos/shim_kernel.hh"

/* ---------------- counting allocator hook ---------------- */

namespace
{
std::atomic<uint64_t> gAllocCount{0};
}

void *
operator new(std::size_t n)
{
    ++gAllocCount;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace cronus::core
{
namespace
{

class SrpcFastPathTest : public testing::CronusTest
{
  protected:
    void
    SetUp() override
    {
        CronusTest::SetUp();
        cpu = makeCpuEnclave().value();
        gpu = makeGpuEnclave().value();
        channel = std::move(system->connect(cpu, gpu).value());
        /* Warm every lazy path (context creation, first ring use). */
        auto warm = channel->call("cuCtxSynchronize", Bytes{});
        ASSERT_TRUE(warm.isOk()) << warm.status().toString();
        ASSERT_TRUE(channel->drain().isOk());
    }

    void
    TearDown() override
    {
        channel.reset();
        CronusTest::TearDown();
    }

    /** Count SPM accesses via the injection hook. */
    uint64_t
    installAccessCounter()
    {
        accesses = 0;
        system->spm().setAccessHook(
            [this](const tee::SpmAccess &) {
                ++accesses;
                return Status::ok();
            });
        return accesses;
    }

    AppHandle cpu, gpu;
    std::unique_ptr<SrpcChannel> channel;
    uint64_t accesses = 0;
};

TEST_F(SrpcFastPathTest, IdleDrainIsTwoCounterAccessesZeroAlloc)
{
    installAccessCounter();
    uint64_t fast0 = channel->stats().counterFastOps;
    uint64_t alloc0 = gAllocCount.load();

    Status s = channel->drain();

    uint64_t allocs = gAllocCount.load() - alloc0;
    EXPECT_TRUE(s.isOk()) << s.toString();
    /* streamCheck = one Rid read + one Sid read, nothing else. */
    EXPECT_EQ(accesses, 2u);
    EXPECT_EQ(channel->stats().counterFastOps - fast0, 2u);
    EXPECT_EQ(allocs, 0u);
}

TEST_F(SrpcFastPathTest, EmptyPumpIsOneCounterAccessZeroAlloc)
{
    installAccessCounter();
    uint64_t alloc0 = gAllocCount.load();

    uint64_t done = channel->pump(1);

    uint64_t allocs = gAllocCount.load() - alloc0;
    EXPECT_EQ(done, 0u);
    /* The executor poll is a single in-place Rid read. */
    EXPECT_EQ(accesses, 1u);
    EXPECT_EQ(allocs, 0u);
}

TEST_F(SrpcFastPathTest, SyncCallPollingAllocatesOnlyForPayload)
{
    /* A sync no-payload call: the enqueue writes headers straight
     * into the ring and the completion polls are counter reads; the
     * per-call allocations must stay O(1) (the executor's fn-string
     * and args buffers), not O(polls). */
    ASSERT_TRUE(channel->call("cuCtxSynchronize", Bytes{}).isOk());
    uint64_t alloc0 = gAllocCount.load();
    ASSERT_TRUE(channel->call("cuCtxSynchronize", Bytes{}).isOk());
    uint64_t allocs = gAllocCount.load() - alloc0;
    EXPECT_LE(allocs, 8u);
}

class SpinLockFastPathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Logger::instance().setQuiet(true);
        accel::registerBuiltinKernels();
        platform = std::make_unique<hw::Platform>();
        platform->registerDevice(
            std::make_unique<accel::GpuDevice>(), 40);
        monitor = std::make_unique<tee::SecureMonitor>(*platform);
        hw::DeviceTree dt;
        hw::DeviceTree discovered = platform->buildDeviceTree();
        for (auto node : discovered.all()) {
            node.world = hw::World::Secure;
            dt.addNode(node);
        }
        ASSERT_TRUE(monitor->boot(dt).isOk());
        spm = std::make_unique<tee::Spm>(*monitor);
        tee::MosImage image{"gpu0.mos", "gpu", toBytes("x")};
        pid = spm->createPartition(image, "gpu0", 4ull << 20)
                  .value();
        shim = std::make_unique<mos::ShimKernel>(*spm, pid);
        lock = shim->allocPages(1).value();
    }

    std::unique_ptr<hw::Platform> platform;
    std::unique_ptr<tee::SecureMonitor> monitor;
    std::unique_ptr<tee::Spm> spm;
    tee::PartitionId pid = 0;
    std::unique_ptr<mos::ShimKernel> shim;
    tee::PhysAddr lock = 0;
};

TEST_F(SpinLockFastPathTest, UncontendedLockUnlockZeroAlloc)
{
    /* Warm the page + TLB. */
    ASSERT_TRUE(shim->spinLock(lock).isOk());
    ASSERT_TRUE(shim->spinUnlock(lock).isOk());

    uint64_t alloc0 = gAllocCount.load();
    Status take = shim->spinLock(lock);
    Status give = shim->spinUnlock(lock);
    uint64_t allocs = gAllocCount.load() - alloc0;
    EXPECT_TRUE(take.isOk());
    EXPECT_TRUE(give.isOk());
    EXPECT_EQ(allocs, 0u);
}

TEST_F(SpinLockFastPathTest, ContendedSpinAllocatesNothingPerPoll)
{
    ASSERT_TRUE(shim->spinLock(lock).isOk());

    uint64_t seq = 0;
    spm->setAccessHook([&](const tee::SpmAccess &) {
        ++seq;
        return Status::ok();
    });
    uint64_t alloc0 = gAllocCount.load();
    Status s = shim->spinLock(lock);  /* spins out: 1024 polls */
    uint64_t allocs = gAllocCount.load() - alloc0;
    EXPECT_EQ(s.code(), ErrorCode::Timeout);
    EXPECT_EQ(seq, 1024u);
    /* Only the terminal Timeout status may allocate -- the cost must
     * not scale with the number of polls. */
    EXPECT_LE(allocs, 2u);
}

} // namespace
} // namespace cronus::core
