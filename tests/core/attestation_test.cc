/** Tests for the dynamic remote-attestation protocol. */

#include "test_fixtures.hh"

namespace cronus::core
{
namespace
{

using testing::CronusTest;

class AttestationTest : public CronusTest
{
  protected:
    void
    SetUp() override
    {
        CronusTest::SetUp();
        handle = makeGpuEnclave().value();
        challenge = toBytes("client-nonce-123");
        auto r = system->attest(handle, challenge);
        ASSERT_TRUE(r.isOk()) << r.status().toString();
        report = r.value();
        expect = system->expectationFor(handle);
        expect.challenge = challenge;
    }

    AppHandle handle;
    Bytes challenge;
    SignedAttestationReport report;
    ClientExpectation expect;
};

TEST_F(AttestationTest, HonestReportVerifies)
{
    EXPECT_TRUE(verifyAttestation(report, expect).isOk());
}

TEST_F(AttestationTest, TamperedEnclaveMeasurementRejected)
{
    auto bad = report;
    bad.report.enclaveMeasurement[0] ^= 1;
    /* Either the signature check or the measurement check fires. */
    EXPECT_FALSE(verifyAttestation(bad, expect).isOk());
}

TEST_F(AttestationTest, WrongExpectedMosRejected)
{
    auto wrong = expect;
    wrong.expectedMos[5] ^= 0xff;
    EXPECT_EQ(verifyAttestation(report, wrong).code(),
              ErrorCode::IntegrityViolation);
}

TEST_F(AttestationTest, WrongDtRejected)
{
    /* A client expecting a different hardware configuration
     * (misconfigured accelerator defense). */
    auto wrong = expect;
    wrong.expectedDt[0] ^= 1;
    EXPECT_EQ(verifyAttestation(report, wrong).code(),
              ErrorCode::IntegrityViolation);
}

TEST_F(AttestationTest, StaleChallengeRejected)
{
    auto wrong = expect;
    wrong.challenge = toBytes("old-nonce");
    EXPECT_EQ(verifyAttestation(report, wrong).code(),
              ErrorCode::AuthFailed);
}

TEST_F(AttestationTest, ForgedAtkRejected)
{
    /* An attacker substitutes their own AtK: the RoT endorsement
     * does not verify. */
    auto bad = report;
    crypto::KeyPair evil = crypto::deriveKeyPair(toBytes("evil"));
    bad.atkPublicKey = evil.pub.toBytes();
    bad.reportSignature = crypto::sign(evil.priv,
                                       bad.report.serialize());
    EXPECT_EQ(verifyAttestation(bad, expect).code(),
              ErrorCode::AuthFailed);
}

TEST_F(AttestationTest, FabricatedAcceleratorRejected)
{
    /* A fabricated device key lacks the vendor endorsement. */
    auto wrong = expect;
    crypto::KeyPair fake_vendor =
        crypto::deriveKeyPair(toBytes("fake-vendor"));
    wrong.deviceEndorsement = crypto::sign(
        fake_vendor.priv, report.report.devicePublicKey);
    EXPECT_EQ(verifyAttestation(report, wrong).code(),
              ErrorCode::AuthFailed);
}

TEST_F(AttestationTest, WrongPlatformRootRejected)
{
    auto wrong = expect;
    wrong.platformRoot =
        crypto::deriveKeyPair(toBytes("other-cloud")).pub;
    EXPECT_EQ(verifyAttestation(report, wrong).code(),
              ErrorCode::AuthFailed);
}

TEST_F(AttestationTest, ReportCoversEveryDeviceKind)
{
    auto attest_handle = [&](AppHandle h) {
        auto r = system->attest(h, challenge);
        ASSERT_TRUE(r.isOk()) << r.status().toString();
        auto e = system->expectationFor(h);
        e.challenge = challenge;
        EXPECT_TRUE(verifyAttestation(r.value(), e).isOk());
    };
    attest_handle(makeCpuEnclave().value());
    attest_handle(makeNpuEnclave().value());
}

TEST_F(AttestationTest, WireFormRoundTripsAndVerifies)
{
    Bytes wire = report.toWire();
    auto back = SignedAttestationReport::fromWire(wire);
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_TRUE(verifyAttestation(back.value(), expect).isOk());
}

TEST_F(AttestationTest, WireByteFlipsNeverVerify)
{
    Bytes wire = report.toWire();
    Rng rng(77);
    for (int trial = 0; trial < 32; ++trial) {
        Bytes bad = wire;
        bad[rng.nextBelow(bad.size())] ^=
            uint8_t(1 << rng.nextBelow(8));
        auto parsed = SignedAttestationReport::fromWire(bad);
        if (!parsed.isOk())
            continue;  /* framing rejected: fine */
        EXPECT_FALSE(
            verifyAttestation(parsed.value(), expect).isOk())
            << "flipped byte accepted on trial " << trial;
    }
}

TEST_F(AttestationTest, WireRejectsTruncationAndTrailing)
{
    Bytes wire = report.toWire();
    Bytes truncated(wire.begin(), wire.end() - 10);
    EXPECT_FALSE(SignedAttestationReport::fromWire(truncated)
                     .isOk());
    Bytes trailing = wire;
    trailing.push_back(0);
    EXPECT_FALSE(SignedAttestationReport::fromWire(trailing)
                     .isOk());
}

TEST_F(AttestationTest, DifferentPartitionsHaveDifferentMosHashes)
{
    /* R3.2: each service trusts only its own mOS. Verify the
     * measurements actually differ across partitions. */
    auto cpu = makeCpuEnclave().value();
    auto gpu_mos = handle.host->mosMeasurement().value();
    auto cpu_mos = cpu.host->mosMeasurement().value();
    EXPECT_NE(crypto::digestHex(gpu_mos), crypto::digestHex(cpu_mos));
}

} // namespace
} // namespace cronus::core
