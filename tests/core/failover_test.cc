/**
 * @file
 * Failover-path tests at the CronusSystem level: the §IV-D
 * proceed-trap sequence (step 1 invalidate, step 2 clear + reload,
 * step 3 trap on next access), sealed-checkpoint recovery across a
 * partition crash, and double faults inside the recovery window.
 */

#include "test_fixtures.hh"

namespace cronus::core
{
namespace
{

using testing::CronusTest;

class FailoverTest : public CronusTest
{
  protected:
    Result<Bytes>
    accumulate(AppHandle &handle, uint64_t delta)
    {
        ByteWriter w;
        w.putU64(delta);
        return system->ecall(handle, "accumulate", w.take());
    }

    uint64_t
    asU64(const Bytes &b)
    {
        ByteReader r(b);
        return r.getU64().value();
    }
};

TEST_F(FailoverTest, ProceedTrapOrderingInvalidateReloadTrap)
{
    auto cpu = makeCpuEnclave();
    ASSERT_TRUE(cpu.isOk());
    auto gpu = makeGpuEnclave();
    ASSERT_TRUE(gpu.isOk());
    auto ch = system->connect(cpu.value(), gpu.value());
    ASSERT_TRUE(ch.isOk());
    SrpcChannel &channel = *ch.value();

    auto warm = channel.callSync("cuMemAlloc",
                                 CudaRuntime::encodeMemAlloc(64));
    ASSERT_TRUE(warm.isOk());

    tee::PartitionId cpu_pid = cpu.value().host->partitionId();
    auto gpu_mos = system->mosForDevice("gpu0");
    ASSERT_TRUE(gpu_mos.isOk());
    tee::PartitionId gpu_pid = gpu_mos.value()->partitionId();

    auto ring_grants = system->spm().grantsOf(cpu_pid);
    ASSERT_FALSE(ring_grants.empty());

    /* Step 1: the panic invalidates the survivor's mappings and
     * marks the grant trap-pending -- but delivers no trap yet. */
    ASSERT_TRUE(system->injectPanic("gpu0").isOk());
    auto failed = system->spm().partition(gpu_pid);
    ASSERT_TRUE(failed.isOk());
    EXPECT_EQ(failed.value()->state, tee::PartitionState::Failed);
    EXPECT_TRUE(failed.value()->rf);
    bool pending = false;
    for (uint64_t gid : ring_grants) {
        auto g = system->spm().grant(gid);
        if (g.isOk() && g.value()->pendingTrap)
            pending = true;
    }
    EXPECT_TRUE(pending);
    EXPECT_TRUE(system->trapSignals().empty());

    /* Step 2: clear + reload. The partition comes back as a fresh
     * incarnation with r_f dropped; the trap is still lazy. */
    ASSERT_TRUE(system->recover("gpu0").isOk());
    auto ready = system->spm().partition(gpu_pid);
    ASSERT_TRUE(ready.isOk());
    EXPECT_EQ(ready.value()->state, tee::PartitionState::Ready);
    EXPECT_FALSE(ready.value()->rf);
    EXPECT_EQ(ready.value()->incarnation, 2u);
    EXPECT_TRUE(system->trapSignals().empty());

    /* Step 3: the survivor's next ring access takes the trap and
     * surfaces PeerFailed. */
    auto trapped = channel.callSync("cuMemAlloc",
                                    CudaRuntime::encodeMemAlloc(64));
    EXPECT_EQ(trapped.code(), ErrorCode::PeerFailed);
    ASSERT_EQ(system->trapSignals().size(), 1u);
    const tee::TrapSignal &sig = system->trapSignals()[0];
    EXPECT_EQ(sig.accessor, cpu_pid);
    EXPECT_EQ(sig.failedPeer, gpu_pid);
    EXPECT_TRUE(channel.failed());

    /* The failure latches on the channel: no duplicate trap. */
    auto after = channel.callSync("cuMemAlloc",
                                  CudaRuntime::encodeMemAlloc(64));
    EXPECT_EQ(after.code(), ErrorCode::PeerFailed);
    EXPECT_EQ(system->trapSignals().size(), 1u);
}

TEST_F(FailoverTest, SealedCheckpointRestoresAcrossPartitionCrash)
{
    auto created = makeCpuEnclave();
    ASSERT_TRUE(created.isOk());
    AppHandle app = created.value();

    auto r = accumulate(app, 5);
    ASSERT_TRUE(r.isOk());
    r = accumulate(app, 7);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(asU64(r.value()), 12u);

    auto sealed = system->checkpointEnclave(app);
    ASSERT_TRUE(sealed.isOk());

    /* State diverges after the checkpoint; the crash must roll this
     * back to the sealed snapshot. */
    ASSERT_TRUE(accumulate(app, 1).isOk());

    ASSERT_TRUE(system->injectPanic("cpu0").isOk());
    ASSERT_TRUE(system->recover("cpu0").isOk());

    /* The scrub wiped the old enclave with the partition. */
    EXPECT_FALSE(accumulate(app, 1).isOk());

    /* A fresh enclave restores the blob under the dead enclave's
     * secret and continues from the checkpointed total. */
    auto fresh = makeCpuEnclave();
    ASSERT_TRUE(fresh.isOk());
    AppHandle replacement = fresh.value();
    ASSERT_TRUE(system
                    ->restoreEnclave(replacement, sealed.value(),
                                     app.secret)
                    .isOk());
    auto resumed = accumulate(replacement, 3);
    ASSERT_TRUE(resumed.isOk());
    EXPECT_EQ(asU64(resumed.value()), 15u);
}

TEST_F(FailoverTest, DoubleFaultDuringRecoveryWindow)
{
    /* A second fault on an already-failed partition is rejected
     * deterministically rather than re-running step 1. */
    ASSERT_TRUE(system->injectPanic("gpu0").isOk());
    EXPECT_EQ(system->injectPanic("gpu0").code(),
              ErrorCode::InvalidState);

    /* An independent partition can still fail while gpu0 is inside
     * its recovery window, and the recoveries are independent. */
    ASSERT_TRUE(system->injectPanic("npu0").isOk());
    ASSERT_TRUE(system->recover("npu0").isOk());
    ASSERT_TRUE(system->recover("gpu0").isOk());

    /* Recovering a healthy partition is rejected. */
    EXPECT_EQ(system->recover("gpu0").code(),
              ErrorCode::InvalidState);

    /* A repeat crash after recovery yields a third incarnation. */
    ASSERT_TRUE(system->injectPanic("gpu0").isOk());
    ASSERT_TRUE(system->recover("gpu0").isOk());
    auto mos = system->mosForDevice("gpu0");
    ASSERT_TRUE(mos.isOk());
    auto part = system->spm().partition(mos.value()->partitionId());
    ASSERT_TRUE(part.isOk());
    EXPECT_EQ(part.value()->incarnation, 3u);
    EXPECT_EQ(part.value()->state, tee::PartitionState::Ready);
}

} // namespace
} // namespace cronus::core
