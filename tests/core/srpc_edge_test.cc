/** Edge-case tests for sRPC channel lifecycle and concurrency. */

#include "test_fixtures.hh"

#include "workloads/sharing.hh"

namespace cronus::core
{
namespace
{

using testing::CronusTest;

class SrpcEdgeTest : public CronusTest
{
  protected:
    void
    SetUp() override
    {
        CronusTest::SetUp();
        cpu = makeCpuEnclave().value();
        gpu = makeGpuEnclave().value();
    }

    AppHandle cpu, gpu;
};

TEST_F(SrpcEdgeTest, ConnectToNonexistentCalleeFails)
{
    AppHandle ghost = gpu;
    ghost.eid = makeEid(mosIdOf(gpu.eid), 999);
    auto channel = system->connect(cpu, ghost);
    EXPECT_EQ(channel.code(), ErrorCode::NotFound);
}

TEST_F(SrpcEdgeTest, TwoChannelsToSamePartitionAreIndependent)
{
    auto gpu2 = makeGpuEnclave().value();
    auto ch1 = std::move(system->connect(cpu, gpu).value());
    auto ch2 = std::move(system->connect(cpu, gpu2).value());
    EXPECT_NE(ch1->grantId(), ch2->grantId());

    auto va1 = ch1->callSync("cuMemAlloc",
                             CudaRuntime::encodeMemAlloc(64));
    auto va2 = ch2->callSync("cuMemAlloc",
                             CudaRuntime::encodeMemAlloc(64));
    ASSERT_TRUE(va1.isOk());
    ASSERT_TRUE(va2.isOk());
    ASSERT_TRUE(ch1->close().isOk());
    /* ch2 unaffected by ch1's closure. */
    EXPECT_TRUE(ch2->callSync("cuMemAlloc",
                              CudaRuntime::encodeMemAlloc(64))
                    .isOk());
    ASSERT_TRUE(ch2->close().isOk());
}

TEST_F(SrpcEdgeTest, ResultOfValidation)
{
    auto channel = std::move(system->connect(cpu, gpu).value());
    EXPECT_EQ(channel->resultOf(0).code(),
              ErrorCode::InvalidArgument);  /* never issued */

    auto rid = channel->callAsync("cuMemAlloc",
                                  CudaRuntime::encodeMemAlloc(64));
    ASSERT_TRUE(rid.isOk());
    EXPECT_EQ(channel->resultOf(rid.value()).code(),
              ErrorCode::InvalidState);  /* not yet executed */
    ASSERT_TRUE(channel->drain().isOk());
    EXPECT_TRUE(channel->resultOf(rid.value()).isOk());

    /* Recycle the slot by issuing more than a ring's worth. */
    SrpcConfig cfg;
    for (uint64_t i = 0; i < cfg.slots + 2; ++i)
        ASSERT_TRUE(channel->callAsync(
            "cuMemAlloc", CudaRuntime::encodeMemAlloc(64)).isOk());
    ASSERT_TRUE(channel->drain().isOk());
    EXPECT_EQ(channel->resultOf(rid.value()).code(),
              ErrorCode::NotFound);  /* slot recycled */
}

TEST_F(SrpcEdgeTest, DoubleCloseRejected)
{
    auto channel = std::move(system->connect(cpu, gpu).value());
    ASSERT_TRUE(channel->close().isOk());
    EXPECT_EQ(channel->close().code(), ErrorCode::InvalidState);
}

TEST_F(SrpcEdgeTest, ShareOnceExhaustionIsOrderly)
{
    /* Channels consume partition memory + grants; opening and
     * closing many must not leak the share-once budget. */
    for (int round = 0; round < 8; ++round) {
        auto channel = system->connect(cpu, gpu);
        ASSERT_TRUE(channel.isOk()) << "round " << round << ": "
                                    << channel.status().toString();
        ASSERT_TRUE(channel.value()->close().isOk());
    }
}

TEST_F(SrpcEdgeTest, EmptyArgsAndEmptyResponse)
{
    auto channel = std::move(system->connect(cpu, gpu).value());
    /* cuCtxSynchronize takes no args and returns no payload. */
    auto r = channel->callSync("cuCtxSynchronize", Bytes{});
    ASSERT_TRUE(r.isOk());
    EXPECT_TRUE(r.value().empty());
}

TEST_F(SrpcEdgeTest, PerThreadStreamsToOneEnclave)
{
    /* §IV-C: each caller thread creates its own stream. Two
     * channels to the SAME callee enclave act as two independent,
     * individually-ordered streams. */
    auto stream1 = system->connect(cpu, gpu);
    auto stream2 = system->connect(cpu, gpu);
    ASSERT_TRUE(stream1.isOk()) << stream1.status().toString();
    ASSERT_TRUE(stream2.isOk()) << stream2.status().toString();

    auto va = stream1.value()->callSync(
        "cuMemAlloc", CudaRuntime::encodeMemAlloc(16));
    uint64_t buf = CudaRuntime::decodeU64Result(va.value()).value();

    /* Interleave fills from both streams; each stream's own order
     * is preserved, and both target the same enclave context. */
    auto fill = [&](SrpcChannel &ch, float v) {
        uint32_t bits;
        std::memcpy(&bits, &v, 4);
        return ch.call("cuLaunchKernel",
                       CudaRuntime::encodeLaunchKernel(
                           "fill_f32", {buf, 4, bits}, 4));
    };
    ASSERT_TRUE(fill(*stream1.value(), 1.0f).isOk());
    ASSERT_TRUE(fill(*stream2.value(), 2.0f).isOk());
    ASSERT_TRUE(stream1.value()->drain().isOk());
    ASSERT_TRUE(stream2.value()->drain().isOk());

    auto out = stream1.value()->call(
        "cuMemcpyDtoH", CudaRuntime::encodeMemcpyDtoH(buf, 16));
    ASSERT_TRUE(out.isOk());
    const float *result =
        reinterpret_cast<const float *>(out.value().data());
    /* One of the two fills won; memory is consistent either way. */
    EXPECT_TRUE(result[0] == 1.0f || result[0] == 2.0f);
    EXPECT_EQ(result[0], result[3]);
    ASSERT_TRUE(stream1.value()->close().isOk());
    ASSERT_TRUE(stream2.value()->close().isOk());
}

TEST(SpatialTemporalTest, TemporalModeGainsNothing)
{
    workloads::SpatialConfig spatial;
    spatial.enclaves = 2;
    spatial.iterationsPerEnclave = 3;
    workloads::SpatialConfig temporal = spatial;
    temporal.temporal = true;

    auto s = workloads::runSpatialSharing(spatial);
    auto t = workloads::runSpatialSharing(temporal);
    ASSERT_TRUE(s.isOk());
    ASSERT_TRUE(t.isOk());
    /* Spatial packing clearly beats dedicated/serialized turns. */
    EXPECT_GT(s.value().imagesPerSecond,
              t.value().imagesPerSecond * 1.2);
}

} // namespace
} // namespace cronus::core
