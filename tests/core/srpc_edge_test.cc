/** Edge-case tests for sRPC channel lifecycle and concurrency. */

#include "test_fixtures.hh"

#include "inject/injector.hh"
#include "inject/invariant_auditor.hh"
#include "workloads/sharing.hh"

namespace cronus::core
{
namespace
{

using testing::CronusTest;

class SrpcEdgeTest : public CronusTest
{
  protected:
    void
    SetUp() override
    {
        CronusTest::SetUp();
        cpu = makeCpuEnclave().value();
        gpu = makeGpuEnclave().value();
    }

    AppHandle cpu, gpu;
};

TEST_F(SrpcEdgeTest, ConnectToNonexistentCalleeFails)
{
    AppHandle ghost = gpu;
    ghost.eid = makeEid(mosIdOf(gpu.eid), 999);
    auto channel = system->connect(cpu, ghost);
    EXPECT_EQ(channel.code(), ErrorCode::NotFound);
}

TEST_F(SrpcEdgeTest, TwoChannelsToSamePartitionAreIndependent)
{
    auto gpu2 = makeGpuEnclave().value();
    auto ch1 = std::move(system->connect(cpu, gpu).value());
    auto ch2 = std::move(system->connect(cpu, gpu2).value());
    EXPECT_NE(ch1->grantId(), ch2->grantId());

    auto va1 = ch1->callSync("cuMemAlloc",
                             CudaRuntime::encodeMemAlloc(64));
    auto va2 = ch2->callSync("cuMemAlloc",
                             CudaRuntime::encodeMemAlloc(64));
    ASSERT_TRUE(va1.isOk());
    ASSERT_TRUE(va2.isOk());
    ASSERT_TRUE(ch1->close().isOk());
    /* ch2 unaffected by ch1's closure. */
    EXPECT_TRUE(ch2->callSync("cuMemAlloc",
                              CudaRuntime::encodeMemAlloc(64))
                    .isOk());
    ASSERT_TRUE(ch2->close().isOk());
}

TEST_F(SrpcEdgeTest, ResultOfValidation)
{
    auto channel = std::move(system->connect(cpu, gpu).value());
    EXPECT_EQ(channel->resultOf(0).code(),
              ErrorCode::InvalidArgument);  /* never issued */

    auto rid = channel->callAsync("cuMemAlloc",
                                  CudaRuntime::encodeMemAlloc(64));
    ASSERT_TRUE(rid.isOk());
    EXPECT_EQ(channel->resultOf(rid.value()).code(),
              ErrorCode::InvalidState);  /* not yet executed */
    ASSERT_TRUE(channel->drain().isOk());
    EXPECT_TRUE(channel->resultOf(rid.value()).isOk());

    /* Recycle the slot by issuing more than a ring's worth. */
    SrpcConfig cfg;
    for (uint64_t i = 0; i < cfg.slots + 2; ++i)
        ASSERT_TRUE(channel->callAsync(
            "cuMemAlloc", CudaRuntime::encodeMemAlloc(64)).isOk());
    ASSERT_TRUE(channel->drain().isOk());
    EXPECT_EQ(channel->resultOf(rid.value()).code(),
              ErrorCode::NotFound);  /* slot recycled */
}

TEST_F(SrpcEdgeTest, RingWraparoundRecyclesSlotAtExactDistance)
{
    /* Slot-lifetime rule: request r's slot counts as recycled the
     * moment Rid - r == slots, because slotOffset wraps mod slots.
     * The old `>` check handed back the slot's contents at exactly
     * ring distance. */
    SrpcConfig cfg;
    cfg.slots = 4;
    cfg.slotBytes = 4096;
    auto channel = std::move(system->connect(cpu, gpu, cfg).value());

    auto first = channel->callAsync(
        "cuMemAlloc", CudaRuntime::encodeMemAlloc(64));
    ASSERT_TRUE(first.isOk());
    /* Fill the rest of the ring: Rid - first == slots afterwards. */
    for (uint64_t i = 1; i < cfg.slots; ++i)
        ASSERT_TRUE(channel->callAsync(
            "cuMemAlloc", CudaRuntime::encodeMemAlloc(64)).isOk());
    ASSERT_TRUE(channel->drain().isOk());

    EXPECT_EQ(channel->requestIndex() - first.value(), cfg.slots);
    EXPECT_EQ(channel->resultOf(first.value()).code(),
              ErrorCode::NotFound);
    /* Every younger request is still within its slot lifetime. */
    for (uint64_t r = first.value() + 1;
         r < channel->requestIndex(); ++r)
        EXPECT_TRUE(channel->resultOf(r).isOk()) << "rid " << r;
    ASSERT_TRUE(channel->close().isOk());
}

TEST_F(SrpcEdgeTest, FailureInjectedMidPumpSurfacesPeerFailed)
{
    auto channel = std::move(system->connect(cpu, gpu).value());
    ASSERT_TRUE(channel->callAsync(
        "cuMemAlloc", CudaRuntime::encodeMemAlloc(64)).isOk());

    /* Kill the callee's partition on its next checked read: that is
     * the executor fetching Rid inside pump(), so the failure lands
     * mid-pump and must surface as PeerFailed, not hang or crash. */
    auto gpu_pid = gpu.host->partitionId();
    inject::FaultPlan plan(3);
    plan.killOnAccess(1, gpu_pid,
                      inject::AccessFilter::readsBy(gpu_pid));
    inject::FaultInjector injector(system->spm(), plan);
    injector.arm();

    EXPECT_EQ(channel->drain().code(), ErrorCode::PeerFailed);
    EXPECT_TRUE(channel->failed());
    EXPECT_TRUE(injector.allFired());
    injector.disarm();

    /* Further traffic is refused; closing still releases state. */
    EXPECT_EQ(channel->callAsync("cuCtxSynchronize", Bytes{}).code(),
              ErrorCode::PeerFailed);
    EXPECT_TRUE(channel->close().isOk());
}

TEST_F(SrpcEdgeTest, CloseAfterPeerFailureReleasesResources)
{
    auto channel = std::move(system->connect(cpu, gpu).value());
    uint64_t grant_id = channel->grantId();

    ASSERT_TRUE(
        system->spm().panic(gpu.host->partitionId()).isOk());
    /* The caller's next ring access proceed-traps. */
    EXPECT_EQ(channel->callSync("cuCtxSynchronize", Bytes{}).code(),
              ErrorCode::PeerFailed);
    EXPECT_TRUE(channel->failed());

    /* close() on a failed channel is the orderly path: it must
     * release the smem and report success, and a second close is
     * still rejected. */
    EXPECT_TRUE(channel->close().isOk());
    EXPECT_EQ(channel->close().code(), ErrorCode::InvalidState);
    auto g = system->spm().grant(grant_id);
    ASSERT_TRUE(g.isOk());
    EXPECT_FALSE(g.value()->active);
    EXPECT_TRUE(system->spm()
                    .grantsOf(cpu.host->partitionId())
                    .empty());
}

TEST_F(SrpcEdgeTest, SetupFailureDoesNotLeakPagesOrGrant)
{
    inject::InvariantAuditor auditor;
    auditor.attachSpm(system->spm());

    /* Fail the caller's first checked write during connect: that is
     * the ring-header magic write, which happens after the smem
     * pages were allocated and shared -- the error path must give
     * both back. */
    auto cpu_pid = cpu.host->partitionId();
    inject::FaultPlan plan(5);
    plan.failAccess(1, inject::AccessFilter::writesBy(cpu_pid));
    inject::FaultInjector injector(system->spm(), plan);
    injector.arm();
    auto failed = system->connect(cpu, gpu);
    EXPECT_FALSE(failed.isOk());
    EXPECT_TRUE(injector.allFired());
    injector.disarm();

    EXPECT_TRUE(system->spm().grantsOf(cpu_pid).empty());
    /* The bump allocator got its pages back: fresh channels keep
     * fitting in the partition despite the failed attempt. */
    for (int round = 0; round < 8; ++round) {
        auto retry = system->connect(cpu, gpu);
        ASSERT_TRUE(retry.isOk()) << "round " << round << ": "
                                  << retry.status().toString();
        ASSERT_TRUE(retry.value()->close().isOk());
    }
    EXPECT_TRUE(auditor.finalCheck().isOk())
        << auditor.report().dump();
}

TEST_F(SrpcEdgeTest, OversizedResponseIsOrderlyError)
{
    /* Small ring: response half of a slot holds 2032 bytes. */
    SrpcConfig cfg;
    cfg.slots = 4;
    cfg.slotBytes = 4096;
    auto channel = std::move(system->connect(cpu, gpu, cfg).value());

    auto va = channel->callSync("cuMemAlloc",
                                CudaRuntime::encodeMemAlloc(4096));
    ASSERT_TRUE(va.isOk());
    uint64_t buf = CudaRuntime::decodeU64Result(va.value()).value();

    /* A 4 KiB readback cannot fit the response half: the executor
     * must answer with an error frame, not corrupt the ring. */
    auto big = channel->callSync(
        "cuMemcpyDtoH", CudaRuntime::encodeMemcpyDtoH(buf, 4096));
    EXPECT_EQ(big.code(), ErrorCode::ResourceExhausted);

    /* The channel survives and keeps serving. */
    EXPECT_TRUE(channel->callSync("cuCtxSynchronize", Bytes{})
                    .isOk());
    ASSERT_TRUE(channel->close().isOk());
}

TEST_F(SrpcEdgeTest, ResponseBytesCountedInTransferStats)
{
    auto channel = std::move(system->connect(cpu, gpu).value());
    ASSERT_EQ(channel->stats().bytesTransferred, 0u);

    ASSERT_TRUE(channel->callSync("cuCtxSynchronize", Bytes{})
                    .isOk());
    /* Request frame: 4-byte string length + 16-byte name + 4-byte
     * empty args = 24. Response frame: 4-byte status + 4-byte
     * payload length = 8. Both directions count. */
    EXPECT_EQ(channel->stats().bytesTransferred, 24u + 8u);
    ASSERT_TRUE(channel->close().isOk());
}

TEST_F(SrpcEdgeTest, DoubleCloseRejected)
{
    auto channel = std::move(system->connect(cpu, gpu).value());
    ASSERT_TRUE(channel->close().isOk());
    EXPECT_EQ(channel->close().code(), ErrorCode::InvalidState);
}

TEST_F(SrpcEdgeTest, ShareOnceExhaustionIsOrderly)
{
    /* Channels consume partition memory + grants; opening and
     * closing many must not leak the share-once budget. */
    for (int round = 0; round < 8; ++round) {
        auto channel = system->connect(cpu, gpu);
        ASSERT_TRUE(channel.isOk()) << "round " << round << ": "
                                    << channel.status().toString();
        ASSERT_TRUE(channel.value()->close().isOk());
    }
}

TEST_F(SrpcEdgeTest, EmptyArgsAndEmptyResponse)
{
    auto channel = std::move(system->connect(cpu, gpu).value());
    /* cuCtxSynchronize takes no args and returns no payload. */
    auto r = channel->callSync("cuCtxSynchronize", Bytes{});
    ASSERT_TRUE(r.isOk());
    EXPECT_TRUE(r.value().empty());
}

TEST_F(SrpcEdgeTest, PerThreadStreamsToOneEnclave)
{
    /* §IV-C: each caller thread creates its own stream. Two
     * channels to the SAME callee enclave act as two independent,
     * individually-ordered streams. */
    auto stream1 = system->connect(cpu, gpu);
    auto stream2 = system->connect(cpu, gpu);
    ASSERT_TRUE(stream1.isOk()) << stream1.status().toString();
    ASSERT_TRUE(stream2.isOk()) << stream2.status().toString();

    auto va = stream1.value()->callSync(
        "cuMemAlloc", CudaRuntime::encodeMemAlloc(16));
    uint64_t buf = CudaRuntime::decodeU64Result(va.value()).value();

    /* Interleave fills from both streams; each stream's own order
     * is preserved, and both target the same enclave context. */
    auto fill = [&](SrpcChannel &ch, float v) {
        uint32_t bits;
        std::memcpy(&bits, &v, 4);
        return ch.call("cuLaunchKernel",
                       CudaRuntime::encodeLaunchKernel(
                           "fill_f32", {buf, 4, bits}, 4));
    };
    ASSERT_TRUE(fill(*stream1.value(), 1.0f).isOk());
    ASSERT_TRUE(fill(*stream2.value(), 2.0f).isOk());
    ASSERT_TRUE(stream1.value()->drain().isOk());
    ASSERT_TRUE(stream2.value()->drain().isOk());

    auto out = stream1.value()->call(
        "cuMemcpyDtoH", CudaRuntime::encodeMemcpyDtoH(buf, 16));
    ASSERT_TRUE(out.isOk());
    const float *result =
        reinterpret_cast<const float *>(out.value().data());
    /* One of the two fills won; memory is consistent either way. */
    EXPECT_TRUE(result[0] == 1.0f || result[0] == 2.0f);
    EXPECT_EQ(result[0], result[3]);
    ASSERT_TRUE(stream1.value()->close().isOk());
    ASSERT_TRUE(stream2.value()->close().isOk());
}

TEST(SpatialTemporalTest, TemporalModeGainsNothing)
{
    workloads::SpatialConfig spatial;
    spatial.enclaves = 2;
    spatial.iterationsPerEnclave = 3;
    workloads::SpatialConfig temporal = spatial;
    temporal.temporal = true;

    auto s = workloads::runSpatialSharing(spatial);
    auto t = workloads::runSpatialSharing(temporal);
    ASSERT_TRUE(s.isOk());
    ASSERT_TRUE(t.isOk());
    /* Spatial packing clearly beats dedicated/serialized turns. */
    EXPECT_GT(s.value().imagesPerSecond,
              t.value().imagesPerSecond * 1.2);
}

} // namespace
} // namespace cronus::core
