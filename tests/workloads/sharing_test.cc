/** Tests for the spatial-sharing, multi-GPU and failover drivers. */

#include <gtest/gtest.h>

#include "workloads/failover.hh"
#include "workloads/sharing.hh"

namespace cronus::workloads
{
namespace
{

TEST(SpatialSharingTest, TwoEnclavesRaiseThroughput)
{
    SpatialConfig one;
    one.enclaves = 1;
    SpatialConfig two;
    two.enclaves = 2;
    auto r1 = runSpatialSharing(one);
    auto r2 = runSpatialSharing(two);
    ASSERT_TRUE(r1.isOk()) << r1.status().toString();
    ASSERT_TRUE(r2.isOk()) << r2.status().toString();
    double gain = r2.value().imagesPerSecond /
                  r1.value().imagesPerSecond;
    /* The paper reports up to 63.4% gain at two enclaves. */
    EXPECT_GT(gain, 1.3);
    EXPECT_LT(gain, 2.0);
}

TEST(SpatialSharingTest, FourEnclavesShowContention)
{
    SpatialConfig two;
    two.enclaves = 2;
    SpatialConfig four;
    four.enclaves = 4;
    auto r2 = runSpatialSharing(two);
    auto r4 = runSpatialSharing(four);
    ASSERT_TRUE(r2.isOk());
    ASSERT_TRUE(r4.isOk());
    /* Resource contention: 4 enclaves do not beat 2. */
    EXPECT_LT(r4.value().imagesPerSecond,
              r2.value().imagesPerSecond * 1.05);
}

TEST(DataParallelTest, P2pScalesWithGpus)
{
    DistributedConfig one;
    one.gpus = 1;
    DistributedConfig four;
    four.gpus = 4;
    auto r1 = runDataParallel(one);
    auto r4 = runDataParallel(four);
    ASSERT_TRUE(r1.isOk()) << r1.status().toString();
    ASSERT_TRUE(r4.isOk()) << r4.status().toString();
    EXPECT_LT(r4.value().perIterationNs,
              r1.value().perIterationNs);
}

TEST(DataParallelTest, TransportOrdering)
{
    /* P2P over trusted PCIe shared memory beats secure-memory
     * staging beats encrypted staging (Fig. 11b). */
    auto run = [](GradTransport transport) {
        DistributedConfig cfg;
        cfg.gpus = 2;
        cfg.transport = transport;
        return runDataParallel(cfg).value().perIterationNs;
    };
    SimTime p2p = run(GradTransport::P2pPcie);
    SimTime staged = run(GradTransport::SecureMemStaging);
    SimTime encrypted = run(GradTransport::EncryptedStaging);
    EXPECT_LT(p2p, staged);
    EXPECT_LT(staged, encrypted);
}

TEST(DataParallelTest, TransportNames)
{
    EXPECT_STREQ(gradTransportName(GradTransport::P2pPcie),
                 "p2p-pcie");
    EXPECT_STREQ(gradTransportName(GradTransport::SecureMemStaging),
                 "secure-mem");
    EXPECT_STREQ(gradTransportName(GradTransport::EncryptedStaging),
                 "encrypted");
}

TEST(FailoverTimelineTest, RecoversFastAndIsolatesTaskB)
{
    FailoverConfig cfg;
    auto timeline = runFailoverTimeline(cfg);
    ASSERT_TRUE(timeline.isOk()) << timeline.status().toString();
    const FailoverTimeline &t = timeline.value();

    /* Recovery in hundreds of ms, not minutes. */
    EXPECT_GE(t.recoveryNs, 100 * kNsPerMs);
    EXPECT_LT(t.recoveryNs, 2 * kNsPerSec);
    EXPECT_LT(t.recoveryNs * 50, t.machineRebootNs);

    /* Task B kept completing work while A's partition recovered. */
    EXPECT_GT(t.taskBStepsDuringOutage, 0u);

    /* Task A served before the crash and after recovery. */
    size_t crash_bucket = cfg.crashAtNs / cfg.bucketNs;
    double before = 0, after = 0;
    for (size_t i = 0; i < t.taskARate.size(); ++i) {
        if (i < crash_bucket)
            before += t.taskARate[i];
        else if (i > crash_bucket + 6)
            after += t.taskARate[i];
    }
    EXPECT_GT(before, 0.0);
    EXPECT_GT(after, 0.0);
}

} // namespace
} // namespace cronus::workloads
