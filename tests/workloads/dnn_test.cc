/** DNN training and TVM inference workload tests. */

#include <gtest/gtest.h>

#include "baseline/cronus_backend.hh"
#include "baseline/native.hh"
#include "workloads/dnn.hh"
#include "workloads/tvm.hh"
#include "workloads/vta_bench.hh"

namespace cronus::workloads
{
namespace
{

std::unique_ptr<baseline::ComputeBackend>
makeNative()
{
    Logger::instance().setQuiet(true);
    registerDnnKernels();
    baseline::NativeConfig c;
    c.gpuKernels = dnnKernelNames();
    return std::make_unique<baseline::NativeBackend>(c);
}

std::unique_ptr<baseline::ComputeBackend>
makeCronus()
{
    Logger::instance().setQuiet(true);
    registerDnnKernels();
    baseline::CronusBackendConfig c;
    c.gpuKernels = dnnKernelNames();
    return std::make_unique<baseline::CronusBackend>(c);
}

TEST(DnnModelTest, ModelShapes)
{
    EXPECT_EQ(lenet2().name, "LeNet-2");
    EXPECT_EQ(resnet50().layers.size(), 50u);
    EXPECT_EQ(densenet121().layers.size(), 121u);
    /* Relative FLOP ordering matches the real networks. */
    EXPECT_LT(lenet2().totalFlopsPerSample(),
              resnet50().totalFlopsPerSample());
    EXPECT_LT(resnet50().totalFlopsPerSample(),
              vgg16().totalFlopsPerSample());
    EXPECT_LT(vgg16().totalFlopsPerSample(),
              densenet121().totalFlopsPerSample());
    EXPECT_GT(vgg16().totalParamBytes(),
              resnet50().totalParamBytes());
}

TEST(DnnTrainTest, TrainingRunsAndScalesWithModel)
{
    auto backend = makeNative();
    TrainConfig cfg;
    cfg.iterations = 4;
    auto small = trainModel(*backend, lenet2(), mnist(), cfg);
    ASSERT_TRUE(small.isOk()) << small.status().toString();
    EXPECT_GT(small.value().perIterationNs, 0u);
    EXPECT_EQ(small.value().kernelLaunches,
              4u * 3 * lenet2().layers.size());

    auto big = trainModel(*backend, resnet50(), cifar10(), cfg);
    ASSERT_TRUE(big.isOk());
    EXPECT_GT(big.value().perIterationNs,
              small.value().perIterationNs);
}

TEST(DnnTrainTest, CronusOverheadWithinBand)
{
    TrainConfig cfg;
    cfg.iterations = 4;
    auto native = makeNative();
    auto cronus = makeCronus();
    SimTime native_iter =
        trainModel(*native, lenet2(), mnist(), cfg).value()
            .perIterationNs;
    SimTime cronus_iter =
        trainModel(*cronus, lenet2(), mnist(), cfg).value()
            .perIterationNs;
    double ratio = double(cronus_iter) / native_iter;
    EXPECT_GT(ratio, 0.99);
    EXPECT_LT(ratio, 1.25);
}

TEST(VtaBenchTest, ThroughputAndVerification)
{
    auto backend = makeNative();
    VtaBenchConfig cfg;
    auto result = runVtaBench(*backend, cfg);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_TRUE(result.value().verified);
    EXPECT_GT(result.value().gemmOpsPerSecond, 0.0);
}

TEST(VtaBenchTest, WorksThroughCronusNpuEnclave)
{
    auto backend = makeCronus();
    VtaBenchConfig cfg;
    cfg.batches = 4;
    auto result = runVtaBench(*backend, cfg);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_TRUE(result.value().verified);
}

TEST(TvmTest, InferenceLatencyOrdering)
{
    auto backend = makeNative();
    auto r18 = runInferenceNpu(*backend, tvmResnet18());
    auto r50 = runInferenceNpu(*backend, tvmResnet50());
    auto yolo = runInferenceNpu(*backend, tvmYolov3());
    ASSERT_TRUE(r18.isOk());
    ASSERT_TRUE(r50.isOk());
    ASSERT_TRUE(yolo.isOk());
    EXPECT_TRUE(r18.value().verified);
    EXPECT_TRUE(r50.value().verified);
    EXPECT_TRUE(yolo.value().verified);
    EXPECT_LT(r18.value().latencyNs, r50.value().latencyNs);
    EXPECT_LT(r50.value().latencyNs, yolo.value().latencyNs);
}

TEST(TvmTest, NpuBeatsScalarCpu)
{
    auto backend = makeNative();
    auto npu = runInferenceNpu(*backend, tvmResnet18());
    auto cpu = runInferenceCpu(*backend, tvmResnet18());
    ASSERT_TRUE(npu.isOk());
    ASSERT_TRUE(cpu.isOk());
    EXPECT_LT(npu.value().latencyNs, cpu.value().latencyNs);
}

TEST(TvmTest, InferenceThroughCronus)
{
    auto backend = makeCronus();
    auto r = runInferenceNpu(*backend, tvmResnet18());
    ASSERT_TRUE(r.isOk()) << r.status().toString();
    EXPECT_TRUE(r.value().verified);
}

} // namespace
} // namespace cronus::workloads
