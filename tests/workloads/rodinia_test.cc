/** Rodinia workload tests: every benchmark verifies on every
 *  system. */

#include <gtest/gtest.h>

#include "baseline/cronus_backend.hh"
#include "baseline/hix_tz.hh"
#include "baseline/monolithic_tz.hh"
#include "baseline/native.hh"
#include "workloads/rodinia.hh"

namespace cronus::workloads
{
namespace
{

struct Case
{
    std::string system;
    std::string benchmark;
};

class RodiniaTest : public ::testing::TestWithParam<Case>
{
};

std::unique_ptr<baseline::ComputeBackend>
makeBackend(const std::string &which)
{
    Logger::instance().setQuiet(true);
    registerRodiniaKernels();
    if (which == "native") {
        baseline::NativeConfig c;
        c.gpuKernels = rodiniaKernelNames();
        return std::make_unique<baseline::NativeBackend>(c);
    }
    if (which == "tz") {
        baseline::MonolithicConfig c;
        c.gpuKernels = rodiniaKernelNames();
        return std::make_unique<baseline::MonolithicTzBackend>(c);
    }
    if (which == "hix") {
        baseline::HixConfig c;
        c.gpuKernels = rodiniaKernelNames();
        return std::make_unique<baseline::HixTzBackend>(c);
    }
    baseline::CronusBackendConfig c;
    c.gpuKernels = rodiniaKernelNames();
    return std::make_unique<baseline::CronusBackend>(c);
}

TEST_P(RodiniaTest, VerifiesAndReportsTime)
{
    auto backend = makeBackend(GetParam().system);
    RodiniaSize size;
    size.scale = 64;
    size.iterations = 2;
    auto result = runRodinia(*backend, GetParam().benchmark, size);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    EXPECT_TRUE(result.value().verified)
        << GetParam().benchmark << " on " << GetParam().system;
    EXPECT_GT(result.value().computeTimeNs, 0u);
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const auto &system :
         {"native", "tz", "hix", "cronus"}) {
        for (const auto &benchmark : rodiniaBenchmarks())
            cases.push_back({system, benchmark});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSystemsAllBenchmarks, RodiniaTest,
    ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<Case> &info) {
        return info.param.system + "_" + info.param.benchmark;
    });

TEST(RodiniaShape, CronusOverheadIsSmallAndHixIsSlower)
{
    /* The Fig. 7 headline: CRONUS < ~7% over native; HIX clearly
     * slower due to per-control-message encrypted RPC. */
    RodiniaSize size;
    size.scale = 96;
    size.iterations = 4;

    double cronus_ratio_sum = 0, hix_ratio_sum = 0;
    int count = 0;
    for (const auto &benchmark : {"gaussian", "hotspot", "srad"}) {
        auto native = makeBackend("native");
        auto cronus = makeBackend("cronus");
        auto hix = makeBackend("hix");
        SimTime native_time =
            runRodinia(*native, benchmark, size).value()
                .computeTimeNs;
        SimTime cronus_time =
            runRodinia(*cronus, benchmark, size).value()
                .computeTimeNs;
        SimTime hix_time =
            runRodinia(*hix, benchmark, size).value().computeTimeNs;
        cronus_ratio_sum += double(cronus_time) / native_time;
        hix_ratio_sum += double(hix_time) / native_time;
        ++count;
    }
    double cronus_avg = cronus_ratio_sum / count;
    double hix_avg = hix_ratio_sum / count;
    EXPECT_LT(cronus_avg, 1.15);        /* low overhead */
    EXPECT_GT(hix_avg, cronus_avg);     /* HIX is slower */
}

TEST(RodiniaShape, UnknownBenchmarkRejected)
{
    auto backend = makeBackend("native");
    EXPECT_EQ(runRodinia(*backend, "nonsense", RodiniaSize{}).code(),
              ErrorCode::NotFound);
}

} // namespace
} // namespace cronus::workloads
