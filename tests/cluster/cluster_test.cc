/**
 * @file
 * Fleet-level suites for src/cluster/: placement sharding
 * determinism, migrate-under-load acked-call preservation,
 * drain-with-budget-exhaustion fleet quarantine, and
 * interconnect-partition liveness. Every case runs on both
 * isolation substrates (TrustZone and RISC-V PMP) via the
 * value-parameterized fixture.
 */

#include <gtest/gtest.h>

#include "../core/test_fixtures.hh"
#include "cluster/cluster.hh"

using namespace cronus;
using namespace cronus::cluster;

namespace
{

class ClusterBackendTest
    : public ::testing::TestWithParam<tee::BackendSelect>
{
  protected:
    /** Build a CPU-only fleet of @p num_nodes SoCs. */
    void
    build(uint32_t num_nodes, uint32_t auto_ckpt = 0)
    {
        Logger::instance().setQuiet(true);
        core::testing::registerTestCpuFunctions();
        ClusterConfig cc;
        cc.numNodes = num_nodes;
        cc.nodeSystem.numGpus = 0;
        cc.nodeSystem.withNpu = false;
        cc.nodeSystem.backend = GetParam();
        /* Room for every enclave plus a transient migration copy on
         * one node (tests deliberately pile enclaves up). */
        cc.nodeSystem.partitionMemBytes = 64ull << 20;
        cc.autoCheckpointEvery = auto_ckpt;
        cl = std::make_unique<Cluster>(cc);
    }

    Result<Fid>
    place()
    {
        return cl->placeEnclave(core::testing::cpuManifest(),
                                "app.so",
                                core::testing::cpuImageBytes());
    }

    /** accumulate(delta) on @p fid; returns the running total. */
    Result<uint64_t>
    acc(Fid fid, uint64_t delta)
    {
        ByteWriter w;
        w.putU64(delta);
        auto r = cl->call(fid, "accumulate", w.take());
        if (!r.isOk())
            return r.status();
        ByteReader rd(r.value());
        return rd.getU64();
    }

    NodeId
    hostOf(Fid fid)
    {
        auto n = cl->nodeOf(fid);
        EXPECT_TRUE(n.isOk());
        return n.isOk() ? n.value() : kFrontend;
    }

    std::unique_ptr<Cluster> cl;
};

INSTANTIATE_TEST_SUITE_P(
    Backends, ClusterBackendTest,
    ::testing::Values(tee::BackendSelect::Tz,
                      tee::BackendSelect::Pmp),
    [](const ::testing::TestParamInfo<tee::BackendSelect> &info) {
        return std::string(
            tee::backendName(tee::resolveBackend(info.param)));
    });

} // namespace

/* ---------------- placement sharding ---------------- */

TEST_P(ClusterBackendTest, PlacementShardsLeastLoadedDeterministic)
{
    build(4);
    std::vector<NodeId> got;
    for (int i = 0; i < 8; ++i) {
        auto fid = place();
        ASSERT_TRUE(fid.isOk()) << fid.status().toString();
        got.push_back(hostOf(fid.value()));
    }
    /* Least-loaded with lowest-id ties: two clean round-robins. */
    std::vector<NodeId> want = {0, 1, 2, 3, 0, 1, 2, 3};
    EXPECT_EQ(got, want);
    EXPECT_EQ(cl->placements, 8u);

    /* A second identically-shaped fleet shards identically --
     * placement is a pure function of (healths, loads). */
    auto first = std::move(cl);
    build(4);
    std::vector<NodeId> again;
    for (int i = 0; i < 8; ++i) {
        auto fid = place();
        ASSERT_TRUE(fid.isOk());
        again.push_back(hostOf(fid.value()));
    }
    EXPECT_EQ(again, got);
}

TEST_P(ClusterBackendTest, PlacementSkipsDownAndPenalizesDegraded)
{
    build(3);
    ASSERT_TRUE(cl->killNode(1).isOk());
    cl->node(2).setHealth(NodeHealth::Degraded);
    /* Node 1 is Down (hard skip); node 2 is Degraded (usable but
     * deprioritized): everything lands on node 0. */
    for (int i = 0; i < 3; ++i) {
        auto fid = place();
        ASSERT_TRUE(fid.isOk());
        EXPECT_EQ(hostOf(fid.value()), 0u);
    }
}

TEST_P(ClusterBackendTest, DegradedNodeIsLastResort)
{
    build(2);
    cl->node(0).setHealth(NodeHealth::Degraded);
    /* Healthy node 1 wins every placement despite the id tie-break
     * favouring 0. */
    for (int i = 0; i < 3; ++i) {
        auto fid = place();
        ASSERT_TRUE(fid.isOk());
        EXPECT_EQ(hostOf(fid.value()), 1u);
    }
    /* With node 1 gone, the Degraded node still takes work. */
    ASSERT_TRUE(cl->killNode(1).isOk());
    cl->pump();
    auto fid = place();
    ASSERT_TRUE(fid.isOk()) << fid.status().toString();
    EXPECT_EQ(hostOf(fid.value()), 0u);
}

/* ---------------- calls + journal ---------------- */

TEST_P(ClusterBackendTest, CallsRouteAndJournal)
{
    build(2);
    auto fid = place();
    ASSERT_TRUE(fid.isOk());
    EXPECT_EQ(acc(fid.value(), 10).value(), 10u);
    EXPECT_EQ(acc(fid.value(), 20).value(), 30u);
    EXPECT_EQ(acc(fid.value(), 12).value(), 42u);
    EXPECT_EQ(cl->ackedCalls(fid.value()), 3u);
    EXPECT_GT(cl->interconnect().messages, 0u);
    EXPECT_GT(cl->interconnect().bytesMoved, 0u);
}

TEST_P(ClusterBackendTest, CallToUnknownFidIsNotFound)
{
    build(2);
    ByteWriter w;
    w.putU64(1);
    EXPECT_EQ(cl->call(999, "accumulate", w.take()).code(),
              ErrorCode::NotFound);
}

/* ---------------- migration ---------------- */

TEST_P(ClusterBackendTest, MigrateUnderLoadPreservesAckedCalls)
{
    build(2);
    auto fid = place();
    ASSERT_TRUE(fid.isOk());
    ASSERT_EQ(hostOf(fid.value()), 0u);

    EXPECT_EQ(acc(fid.value(), 10).value(), 10u);
    EXPECT_EQ(acc(fid.value(), 20).value(), 30u);
    ASSERT_TRUE(cl->checkpoint(fid.value()).isOk());
    /* One post-watermark call: exactly this much must replay. */
    EXPECT_EQ(acc(fid.value(), 5).value(), 35u);

    Status s = cl->migrateEnclave(fid.value(), 1);
    ASSERT_TRUE(s.isOk()) << s.toString();
    EXPECT_EQ(hostOf(fid.value()), 1u);
    EXPECT_EQ(cl->migrationsCompleted, 1u);

    ASSERT_EQ(cl->migrations().size(), 1u);
    const MigrationAudit &a = cl->migrations().front();
    EXPECT_EQ(a.outcome, "completed");
    EXPECT_EQ(a.src, 0u);
    EXPECT_EQ(a.dst, 1u);
    EXPECT_EQ(a.replayedCalls, 1u);
    EXPECT_TRUE(a.converged());
    EXPECT_FALSE(a.srcAlive);
    EXPECT_TRUE(a.dstAlive);

    /* The running total -- watermark + replayed journal -- survived
     * the move bit-for-bit. */
    EXPECT_EQ(acc(fid.value(), 7).value(), 42u);
    EXPECT_EQ(cl->ackedCalls(fid.value()), 4u);
}

TEST_P(ClusterBackendTest, MigrateToDownNodeAbortsAtSnapshot)
{
    build(3);
    auto fid = place();
    ASSERT_TRUE(fid.isOk());
    ASSERT_EQ(hostOf(fid.value()), 0u);
    EXPECT_EQ(acc(fid.value(), 9).value(), 9u);
    ASSERT_TRUE(cl->killNode(2).isOk());

    Status s = cl->migrateEnclave(fid.value(), 2);
    EXPECT_EQ(s.code(), ErrorCode::InvalidState);
    EXPECT_EQ(cl->migrationsAborted, 1u);
    ASSERT_EQ(cl->migrations().size(), 1u);
    const MigrationAudit &a = cl->migrations().front();
    EXPECT_EQ(a.outcome.rfind("aborted:snapshot", 0), 0u);
    EXPECT_TRUE(a.srcAlive);
    EXPECT_FALSE(a.dstAlive);

    /* The source copy is untouched by the aborted attempt. */
    EXPECT_TRUE(cl->enclaveAlive(fid.value()));
    EXPECT_EQ(acc(fid.value(), 1).value(), 10u);
}

TEST_P(ClusterBackendTest, AutoCheckpointBoundsReplay)
{
    build(2, /*auto_ckpt=*/2);
    auto fid = place();
    ASSERT_TRUE(fid.isOk());
    /* 5 acked calls with a watermark every 2: at most one call sits
     * in the journal when the migration snapshots. */
    uint64_t want = 0;
    for (uint64_t d = 1; d <= 5; ++d) {
        want += d;
        EXPECT_EQ(acc(fid.value(), d).value(), want);
    }
    ASSERT_TRUE(cl->migrateEnclave(fid.value(), 1).isOk());
    ASSERT_EQ(cl->migrations().size(), 1u);
    EXPECT_LE(cl->migrations().front().replayedCalls, 1u);
    EXPECT_EQ(acc(fid.value(), 10).value(), want + 10);
}

/* ---------------- node kill / recover ---------------- */

TEST_P(ClusterBackendTest, NodeLossRecoversEnclavesWithoutAckedLoss)
{
    build(2);
    auto fid = place();
    ASSERT_TRUE(fid.isOk());
    ASSERT_EQ(hostOf(fid.value()), 0u);
    EXPECT_EQ(acc(fid.value(), 10).value(), 10u);
    EXPECT_EQ(acc(fid.value(), 20).value(), 30u);

    ASSERT_TRUE(cl->killNode(0).isOk());
    cl->pump();
    /* The fleet sweep re-placed the enclave from watermark+journal
     * on the surviving node; no acked call was lost. */
    EXPECT_TRUE(cl->enclaveAlive(fid.value()));
    EXPECT_EQ(hostOf(fid.value()), 1u);
    EXPECT_GE(cl->replacements, 1u);
    EXPECT_EQ(acc(fid.value(), 12).value(), 42u);

    ASSERT_TRUE(cl->recoverNode(0).isOk());
    EXPECT_EQ(cl->node(0).health(), NodeHealth::Healthy);
}

TEST_P(ClusterBackendTest, KillRefusesLastUsableNodeAndIsIdempotent)
{
    build(2);
    ASSERT_TRUE(cl->killNode(0).isOk());
    EXPECT_EQ(cl->killNode(1).code(), ErrorCode::InvalidState);
    EXPECT_TRUE(cl->killNode(0).isOk());  // Down -> Ok, idempotent
    EXPECT_EQ(cl->killNode(7).code(), ErrorCode::InvalidArgument);
}

/* ---------------- drain ---------------- */

TEST_P(ClusterBackendTest, DrainEvacuatesUnderUnlimitedBudget)
{
    build(3);
    std::vector<Fid> fids;
    for (int i = 0; i < 4; ++i) {
        auto fid = place();
        ASSERT_TRUE(fid.isOk());
        fids.push_back(fid.value());
    }
    /* Least-loaded: 0,1,2,0 -- node 0 hosts two enclaves. */
    ASSERT_EQ(cl->enclavesOn(0).size(), 2u);

    Status s = cl->drainNode(0, DrainBudget{});
    ASSERT_TRUE(s.isOk()) << s.toString();
    EXPECT_TRUE(cl->enclavesOn(0).empty());
    EXPECT_EQ(cl->drains, 1u);
    EXPECT_EQ(cl->fleetQuarantines, 0u);
    /* A clean drain leaves the node usable (maintenance, not
     * punishment). */
    EXPECT_TRUE(cl->node(0).placeable());
    for (Fid fid : fids)
        EXPECT_TRUE(cl->enclaveAlive(fid));
    EXPECT_EQ(cl->migrationsCompleted, 2u);
}

TEST_P(ClusterBackendTest, DrainBudgetExhaustionFleetQuarantines)
{
    build(3);
    std::vector<Fid> fids;
    for (int i = 0; i < 5; ++i) {
        auto fid = place();
        ASSERT_TRUE(fid.isOk());
        fids.push_back(fid.value());
    }
    ASSERT_EQ(cl->enclavesOn(0).size(), 2u);

    DrainBudget tight;
    tight.maxMigrations = 1;
    Status s = cl->drainNode(0, tight);
    ASSERT_TRUE(s.isOk()) << s.toString();
    /* One live migration, then the budget ran dry: the fleet
     * quarantined the node and re-placed the remainder cold. */
    EXPECT_EQ(cl->migrationsCompleted, 1u);
    EXPECT_EQ(cl->fleetQuarantines, 1u);
    EXPECT_EQ(cl->node(0).health(), NodeHealth::Quarantined);
    EXPECT_TRUE(cl->enclavesOn(0).empty());
    for (Fid fid : fids)
        EXPECT_TRUE(cl->enclaveAlive(fid));

    /* Quarantine is terminal: no recovery, no placements. */
    EXPECT_EQ(cl->recoverNode(0).code(), ErrorCode::Degraded);
    auto fid = place();
    ASSERT_TRUE(fid.isOk());
    EXPECT_NE(hostOf(fid.value()), 0u);
}

TEST_P(ClusterBackendTest, DrainRefusesLastUsableNode)
{
    build(2);
    ASSERT_TRUE(cl->killNode(0).isOk());
    EXPECT_EQ(cl->drainNode(1, DrainBudget{}).code(),
              ErrorCode::InvalidState);
    /* Draining an already-Down node is trivially fine. */
    EXPECT_TRUE(cl->drainNode(0, DrainBudget{}).isOk());
}

/* ---------------- interconnect ---------------- */

TEST_P(ClusterBackendTest, PartitionedFrontendLinkFailsCallsThenHeals)
{
    build(2);
    auto fid = place();
    ASSERT_TRUE(fid.isOk());
    ASSERT_EQ(hostOf(fid.value()), 0u);
    EXPECT_EQ(acc(fid.value(), 10).value(), 10u);

    cl->partitionLink(kFrontend, 0, true);
    auto r = acc(fid.value(), 5);
    EXPECT_EQ(r.code(), ErrorCode::PeerFailed);
    EXPECT_GT(cl->interconnect().partitionedDrops, 0u);
    /* The failed call was never acked, so it is not journaled. */
    EXPECT_EQ(cl->ackedCalls(fid.value()), 1u);

    cl->partitionLink(kFrontend, 0, false);
    EXPECT_EQ(acc(fid.value(), 5).value(), 15u);
    EXPECT_EQ(cl->ackedCalls(fid.value()), 2u);
}

TEST_P(ClusterBackendTest, PartitionedPeerLinkAbortsMigrationSafely)
{
    build(2);
    auto fid = place();
    ASSERT_TRUE(fid.isOk());
    ASSERT_EQ(hostOf(fid.value()), 0u);
    EXPECT_EQ(acc(fid.value(), 10).value(), 10u);

    cl->partitionLink(0, 1, true);
    Status s = cl->migrateEnclave(fid.value(), 1);
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(cl->migrationsAborted, 1u);
    ASSERT_EQ(cl->migrations().size(), 1u);
    EXPECT_TRUE(cl->migrations().front().srcAlive);
    EXPECT_FALSE(cl->migrations().front().dstAlive);
    /* Liveness across the partition: the source copy keeps
     * serving. */
    EXPECT_EQ(acc(fid.value(), 2).value(), 12u);

    cl->partitionLink(0, 1, false);
    ASSERT_TRUE(cl->migrateEnclave(fid.value(), 1).isOk());
    EXPECT_EQ(hostOf(fid.value()), 1u);
    EXPECT_EQ(acc(fid.value(), 3).value(), 15u);
}

TEST_P(ClusterBackendTest, NodesCarryDistinctAttestedIdentities)
{
    build(2);
    NodeCredential c0 = cl->node(0).credential();
    NodeCredential c1 = cl->node(1).credential();
    EXPECT_EQ(c0.name, "node0");
    EXPECT_EQ(c1.name, "node1");
    /* Per-node RoT seeds: fleet peers must not share keys. */
    EXPECT_NE(c0.rotKey.toBytes(), c1.rotKey.toBytes());

    EXPECT_TRUE(cl->interconnect().ensureAttested(0, 1).isOk());
    EXPECT_TRUE(cl->interconnect().ensureAttested(1, 0).isOk());
}

TEST_P(ClusterBackendTest, ForgedCredentialIsRefused)
{
    build(3);
    /* An impostor presents node 1's endorsement under a different
     * name: the RoT signature no longer covers the message. */
    NodeCredential forged = cl->node(1).credential();
    forged.name = "evil";
    cl->interconnect().registerNode(2, forged);
    uint64_t refusals = cl->interconnect().refusals;
    EXPECT_EQ(cl->interconnect().ensureAttested(0, 2).code(),
              ErrorCode::AuthFailed);
    EXPECT_GT(cl->interconnect().refusals, refusals);

    /* A consistent credential whose machine measurement is not in
     * the fleet's trusted set: signature fine, membership not. */
    crypto::KeyPair rogueRot =
        crypto::deriveKeyPair(toBytes("rogue-rot"));
    NodeCredential rogue = cl->node(2).credential();
    rogue.dtMeasurement[0] ^= 0xff;
    rogue.rotKey = rogueRot.pub;
    rogue.endorsement =
        crypto::sign(rogueRot.priv, rogue.signedMessage());
    cl->interconnect().registerNode(2, rogue);
    EXPECT_EQ(cl->interconnect().ensureAttested(0, 2).code(),
              ErrorCode::PermissionDenied);

    /* Re-presenting the genuine credential heals the link. */
    cl->interconnect().registerNode(2, cl->node(2).credential());
    EXPECT_TRUE(cl->interconnect().ensureAttested(0, 2).isOk());
}
