/**
 * @file
 * End-to-end determinism of the parallel engine through the fleet
 * API: the same batched workload -- placements, call rounds, a node
 * kill with batched recovery, migrations -- must produce identical
 * call results, fleet report, end-of-run virtual time and exported
 * trace whatever the worker count (0 = the serial seed path).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../core/test_fixtures.hh"
#include "cluster/cluster.hh"
#include "obs/trace.hh"

using namespace cronus;
using namespace cronus::cluster;

namespace
{

struct RunResult
{
    std::vector<uint64_t> totals;  ///< every acked running total
    std::vector<std::string> errors;  ///< non-Ok call codes, in order
    std::string report;
    std::string trace;
    SimTime endNs = 0;
    uint64_t replacements = 0;
};

/** One fixed fleet workload, batched through the async API. */
RunResult
runWorkload(int workers)
{
    auto &tracer = obs::Tracer::instance();
    tracer.ensureMode(obs::TraceMode::Full);
    tracer.clear();
    Logger::instance().setQuiet(true);
    core::testing::registerTestCpuFunctions();

    ClusterConfig cc;
    cc.numNodes = 4;
    cc.nodeSystem.numGpus = 0;
    cc.nodeSystem.withNpu = false;
    cc.nodeSystem.partitionMemBytes = 64ull << 20;
    cc.autoCheckpointEvery = 4;
    cc.parallelWorkers = workers;
    Cluster cl(cc);
    EXPECT_EQ(cl.parallelEnabled(), workers > 1);

    RunResult out;

    /* Batched placement. */
    std::vector<Fid> fids;
    for (int i = 0; i < 12; ++i) {
        cl.placeEnclaveAsync(
            core::testing::cpuManifest(), "app.so",
            core::testing::cpuImageBytes(),
            [&](const Result<Fid> &fid) {
                ASSERT_TRUE(fid.isOk()) << fid.status().toString();
                fids.push_back(fid.value());
            });
    }
    cl.flush();
    EXPECT_EQ(fids.size(), 12u);

    auto callAll = [&](uint64_t delta) {
        for (Fid fid : fids) {
            ByteWriter w;
            w.putU64(delta + fid);
            cl.callAsync(
                fid, "accumulate", w.take(),
                [&](const Result<Bytes> &r) {
                    if (!r.isOk()) {
                        out.errors.push_back(
                            r.status().toString());
                        return;
                    }
                    ByteReader rd(r.value());
                    out.totals.push_back(rd.getU64().value());
                });
        }
        cl.flush();
    };

    callAll(10);
    callAll(20);

    /* Kill a node mid-run; the pump sweep re-places its enclaves
     * (batched across target domains when the engine is on). */
    EXPECT_TRUE(cl.killNode(2).isOk());
    cl.pump();
    out.replacements = cl.replacements;

    callAll(30);

    /* A couple of serial-path operations between batches must
     * compose with the engine untouched. */
    (void)cl.migrateEnclave(fids[0], 3);
    (void)cl.checkpoint(fids[1]);

    callAll(40);

    out.report = cl.report().dump();
    out.endNs = cl.clock().now();
    out.trace = tracer.traceJson().dump();
    tracer.clear();
    return out;
}

TEST(ClusterParallelDeterminism, IdenticalAcrossWorkerCounts)
{
    const RunResult serial = runWorkload(0);
    EXPECT_EQ(serial.totals.size(), 4u * 12u);
    EXPECT_TRUE(serial.errors.empty()) << serial.errors[0];
    EXPECT_GT(serial.replacements, 0u);  // the kill forced recovery
    EXPECT_GT(serial.endNs, 0u);

    for (int workers : {2, 4}) {
        const RunResult par = runWorkload(workers);
        EXPECT_EQ(par.totals, serial.totals) << "workers=" << workers;
        EXPECT_EQ(par.errors, serial.errors) << "workers=" << workers;
        EXPECT_EQ(par.endNs, serial.endNs) << "workers=" << workers;
        EXPECT_EQ(par.replacements, serial.replacements)
            << "workers=" << workers;
        EXPECT_EQ(par.report, serial.report) << "workers=" << workers;
        EXPECT_EQ(par.trace, serial.trace) << "workers=" << workers;
    }
}

/* Repeated identical runs at a fixed worker count are also
 * byte-stable -- no hidden dependence on thread scheduling. */
TEST(ClusterParallelDeterminism, RepeatedRunsAreByteStable)
{
    const RunResult a = runWorkload(4);
    const RunResult b = runWorkload(4);
    EXPECT_EQ(a.totals, b.totals);
    EXPECT_EQ(a.endNs, b.endNs);
    EXPECT_EQ(a.report, b.report);
    EXPECT_EQ(a.trace, b.trace);
}

} // namespace
