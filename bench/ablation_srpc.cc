/**
 * @file
 * Ablation: sRPC vs synchronous S-EL2 RPC vs encrypted RPC over
 * untrusted memory (§IV-C / §II-C).
 *
 * Measures per-call cost and world/context switches for a stream of
 * identical mECalls under the three inter-enclave RPC designs the
 * paper contrasts. This is the design choice sRPC exists for.
 */

#include <chrono>

#include "accel/builtin_kernels.hh"
#include "bench_util.hh"
#include "core/auto_partition.hh"
#include "core/system.hh"
#include "crypto/aes.hh"
#include "hw/translation_cache.hh"

using namespace cronus;
using namespace cronus::bench;
using namespace cronus::core;

namespace
{

constexpr int kCalls = 200;

std::string
gpuManifest(const Bytes &image)
{
    Manifest m;
    m.deviceType = "gpu";
    m.images["a.cubin"] = crypto::digestHex(crypto::sha256(image));
    for (const auto &fn : CudaRuntime::apiSurface())
        m.mEcalls.push_back(
            {fn, AutoPartitioner::cudaCallIsAsync(fn)});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

std::string
cpuManifest(const Bytes &image)
{
    Manifest m;
    m.deviceType = "cpu";
    m.images["a.so"] = crypto::digestHex(crypto::sha256(image));
    m.mEcalls.push_back({"ab_noop", false});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

struct Setup
{
    std::unique_ptr<CronusSystem> system;
    AppHandle cpu, gpu;
    std::unique_ptr<SrpcChannel> channel;

    Setup()
    {
        Logger::instance().setQuiet(true);
        accel::registerBuiltinKernels();
        auto &reg = CpuFunctionRegistry::instance();
        if (!reg.has("ab_noop")) {
            reg.registerFunction("ab_noop", [](CpuCallContext &ctx) {
                ctx.charge(1);
                return Result<Bytes>(Bytes{});
            });
        }
        system = std::make_unique<CronusSystem>();
        CpuImage ci;
        ci.exports = {"ab_noop"};
        Bytes cb = ci.serialize();
        cpu = system->createEnclave(cpuManifest(cb), "a.so", cb)
                  .value();
        accel::GpuModuleImage module{"a.cubin", {"fill_f32"}};
        Bytes gb = module.serialize();
        gpu = system->createEnclave(gpuManifest(gb), "a.cubin", gb)
                  .value();
        channel = std::move(system->connect(cpu, gpu).value());
    }
};

} // namespace

int
main()
{
    header("Ablation: inter-enclave RPC designs "
           "(200 cuMemAlloc calls)");

    Bytes args = CudaRuntime::encodeMemAlloc(64);

    /* --- 1. sRPC (CRONUS) --- */
    double srpc_us;
    double srpc_host_ns;
    uint64_t srpc_switches;
    {
        Setup s;
        uint64_t switches0 = s.system->monitor().worldSwitchCount() +
                             s.system->monitor().sel2SwitchCount();
        SimTime t0 = s.system->platform().clock().now();
        auto h0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kCalls; ++i)
            s.channel->callAsync("cuMemAlloc", args);
        s.channel->drain();
        auto h1 = std::chrono::steady_clock::now();
        srpc_us = (s.system->platform().clock().now() - t0) /
                  (1000.0 * kCalls);
        srpc_host_ns = std::chrono::duration<double, std::nano>(
                           h1 - h0).count() / kCalls;
        srpc_switches = s.system->monitor().worldSwitchCount() +
                        s.system->monitor().sel2SwitchCount() -
                        switches0;
    }

    /* --- 2. synchronous S-EL2 RPC (sRPC disabled) --- */
    double sync_us;
    uint64_t sync_switches;
    {
        Setup s;
        tee::SecureMonitor &monitor = s.system->monitor();
        uint64_t switches0 =
            monitor.worldSwitchCount() + monitor.sel2SwitchCount();
        SimTime t0 = s.system->platform().clock().now();
        for (int i = 0; i < kCalls; ++i) {
            /* Four context switches to activate the remote
             * mEnclave, and four to resume (the paper's [72]). */
            monitor.sel2RpcSwitch();
            s.gpu.host->enclaveManager().invokeLocal(
                s.gpu.eid, "cuMemAlloc", args);
            monitor.sel2RpcSwitch();
        }
        sync_us = (s.system->platform().clock().now() - t0) /
                  (1000.0 * kCalls);
        sync_switches = monitor.worldSwitchCount() +
                        monitor.sel2SwitchCount() - switches0;
    }

    /* --- 3. encrypted lock-step RPC over untrusted memory --- */
    double enc_us;
    uint64_t enc_switches;
    {
        Setup s;
        tee::SecureMonitor &monitor = s.system->monitor();
        hw::Platform &plat = s.system->platform();
        Bytes secret(32, 0x21);
        uint64_t switches0 =
            monitor.worldSwitchCount() + monitor.sel2SwitchCount();
        SimTime t0 = plat.clock().now();
        uint64_t nonce = 0;
        for (int i = 0; i < kCalls; ++i) {
            Bytes sealed = crypto::sealMessage(secret, ++nonce,
                                               args);
            plat.clock().advance(static_cast<SimTime>(
                args.size() * (plat.costs().aesNsPerByte +
                               plat.costs().hmacNsPerByte)));
            monitor.worldSwitch();
            monitor.worldSwitch();
            crypto::openMessage(secret, sealed);
            s.gpu.host->enclaveManager().invokeLocal(
                s.gpu.eid, "cuMemAlloc", args);
            Bytes ack = crypto::sealMessage(secret, ++nonce,
                                            toBytes("ack"));
            monitor.worldSwitch();
            monitor.worldSwitch();
            crypto::openMessage(secret, ack);
        }
        enc_us = (plat.clock().now() - t0) / (1000.0 * kCalls);
        enc_switches = monitor.worldSwitchCount() +
                       monitor.sel2SwitchCount() - switches0;
    }

    std::printf("%-36s %12s %10s\n", "RPC design", "us/call",
                "switches");
    std::printf("%-36s %12.2f %10llu\n",
                "sRPC (streaming, trusted smem)", srpc_us,
                static_cast<unsigned long long>(srpc_switches));
    std::printf("%-36s %12.2f %10llu\n",
                "synchronous S-EL2 RPC", sync_us,
                static_cast<unsigned long long>(sync_switches));
    std::printf("%-36s %12.2f %10llu\n",
                "encrypted RPC (untrusted memory)", enc_us,
                static_cast<unsigned long long>(enc_switches));
    std::printf("\nsRPC speedup: %.1fx vs sync, %.1fx vs "
                "encrypted\n",
                sync_us / srpc_us, enc_us / srpc_us);
    /* Host (wall-clock) per-call cost of the simulator itself; this
     * is what the software-TLB fast path ablation moves
     * (CRONUS_DISABLE_TLB=1), while the virtual-time table above is
     * byte-identical by construction. */
    std::printf("sRPC host-time per call: %.0f ns (wall clock, "
                "TLB %s)\n", srpc_host_ns,
                hw::TranslationCache::globalEnable() ? "on" : "off");

    /* --- §VII-B hardware advice: trusted TEE shared memory --- */
    header("Ablation: channel setup with hardware trusted shared "
           "memory (SS VII-B)");
    auto measure_setup = [](bool hw_assisted) {
        Setup s;
        if (hw_assisted) {
            /* The proposed hardware mechanism establishes and
             * tears down identity-checked shared mappings without
             * SPM page-table co-design. */
            CostModel &costs =
                s.system->platform().mutableCosts();
            costs.pageTableUpdateNs = 0;
            costs.tlbInvalidateNs = 0;
            costs.smmuUpdateNs = 0;
        }
        auto gpu2 = s.system->createEnclave(
            gpuManifest(accel::GpuModuleImage{"a.cubin",
                                              {"fill_f32"}}
                            .serialize()),
            "a.cubin",
            accel::GpuModuleImage{"a.cubin", {"fill_f32"}}
                .serialize());
        SimTime t0 = s.system->platform().clock().now();
        auto channel = s.system->connect(s.cpu, gpu2.value());
        SimTime cost = s.system->platform().clock().now() - t0;
        channel.value()->close();
        return cost;
    };
    SimTime sw_setup = measure_setup(false);
    SimTime hw_setup = measure_setup(true);
    std::printf("%-36s %12.1f us\n", "software (SPM co-design)",
                sw_setup / 1000.0);
    std::printf("%-36s %12.1f us\n", "hardware-assisted sharing",
                hw_setup / 1000.0);
    std::printf("setup saving: %.1f%%\n",
                100.0 * (1.0 - double(hw_setup) / sw_setup));
    return 0;
}
