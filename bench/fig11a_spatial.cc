/**
 * @file
 * Figure 11a: spatial sharing of one GPU by multiple mEnclaves.
 *
 * LeNet training throughput with 1/2/4 mEnclaves on the same GPU;
 * the paper reports up to 63.4% higher throughput at two enclaves
 * and degradation at four due to resource contention.
 */

#include "bench_util.hh"
#include "workloads/sharing.hh"

using namespace cronus;
using namespace cronus::bench;
using namespace cronus::workloads;

int
main()
{
    header("Figure 11a: spatial sharing of one GPU "
           "(LeNet training)");

    std::printf("%-9s %14s %9s %16s\n", "enclaves", "images/sec",
                "gain", "temporal (cmp)");
    double base = 0.0;
    for (uint32_t enclaves : {1u, 2u, 3u, 4u}) {
        SpatialConfig config;
        config.enclaves = enclaves;
        auto result = runSpatialSharing(config);
        SpatialConfig temporal_cfg = config;
        temporal_cfg.temporal = true;
        auto temporal = runSpatialSharing(temporal_cfg);
        if (!result.isOk() || !temporal.isOk()) {
            std::printf("%-9u %14s\n", enclaves, "ERROR");
            continue;
        }
        if (enclaves == 1)
            base = result.value().imagesPerSecond;
        std::printf("%-9u %14.0f %8.1f%% %16.0f\n", enclaves,
                    result.value().imagesPerSecond,
                    100.0 * (result.value().imagesPerSecond / base -
                             1.0),
                    temporal.value().imagesPerSecond);
    }
    std::printf("\n(paper: up to 63.4%% gain, contention beyond 2 "
                "enclaves; the temporal column is what bus-level "
                "hardware TEEs achieve -- no packing gain)\n");
    return 0;
}
