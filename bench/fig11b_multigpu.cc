/**
 * @file
 * Figure 11b: data-parallel LeNet training on 1-4 GPUs, comparing
 * gradient-exchange transports: direct P2P over trusted PCIe shared
 * memory (CRONUS) vs staging through secure CPU memory vs encrypted
 * staging (HIX/Graviton-style).
 */

#include "bench_util.hh"
#include "workloads/sharing.hh"

using namespace cronus;
using namespace cronus::bench;
using namespace cronus::workloads;

int
main()
{
    header("Figure 11b: multi-GPU data-parallel training "
           "(ms per iteration)");

    const std::vector<GradTransport> transports = {
        GradTransport::P2pPcie, GradTransport::SecureMemStaging,
        GradTransport::EncryptedStaging};

    std::printf("%-12s", "gpus");
    for (auto transport : transports)
        std::printf(" %13s", gradTransportName(transport));
    std::printf("\n");

    for (uint32_t gpus : {1u, 2u, 3u, 4u}) {
        std::printf("%-12u", gpus);
        for (auto transport : transports) {
            DistributedConfig config;
            config.gpus = gpus;
            config.transport = transport;
            auto result = runDataParallel(config);
            if (!result.isOk()) {
                std::printf(" %13s", "ERROR");
                continue;
            }
            std::printf(" %13.2f",
                        result.value().perIterationNs / 1e6);
        }
        std::printf("\n");
    }
    std::printf("\n(P2P over trusted shared GPU memory scales best; "
                "encrypted staging pays software crypto on every "
                "gradient)\n");
    return 0;
}
