/**
 * @file
 * Figure 8: DNN training time across systems.
 *
 * LeNet-2/MNIST, ResNet50/CIFAR-10, VGG16/CIFAR-10,
 * DenseNet/ImageNet trained with a PyTorch-like loop; per-iteration
 * time reported for Linux, TrustZone, HIX-TrustZone and CRONUS.
 */

#include "bench_util.hh"
#include "workloads/dnn.hh"

using namespace cronus;
using namespace cronus::bench;
using namespace cronus::workloads;

int
main()
{
    registerDnnKernels();
    header("Figure 8: DNN training time per iteration (ms)");

    TrainConfig config;
    config.batchSize = 32;
    config.iterations = 6;

    struct Job
    {
        ModelSpec model;
        DatasetSpec dataset;
    };
    const std::vector<Job> jobs = {
        {lenet2(), mnist()},
        {resnet50(), cifar10()},
        {vgg16(), cifar10()},
        {densenet121(), imagenet()},
    };

    std::printf("%-10s %-9s", "model", "dataset");
    for (const auto &system : allSystems())
        std::printf(" %14s", system.c_str());
    std::printf("\n");

    for (const auto &job : jobs) {
        std::printf("%-10s %-9s", job.model.name.c_str(),
                    job.dataset.name.c_str());
        double native_iter = 0.0;
        for (const auto &system : allSystems()) {
            auto backend = makeBackend(system, dnnKernelNames());
            auto result = trainModel(*backend, job.model,
                                     job.dataset, config);
            if (!result.isOk()) {
                std::printf(" %14s", "ERROR");
                continue;
            }
            double ms = result.value().perIterationNs / 1e6;
            if (system == "Linux")
                native_iter = ms;
            std::printf(" %9.2f", ms);
            std::printf("(%3.0f%%)",
                        native_iter > 0
                            ? 100.0 * ms / native_iter
                            : 0.0);
        }
        std::printf("\n");
    }
    std::printf("\n(percentages are relative to Linux/native)\n");
    return 0;
}
