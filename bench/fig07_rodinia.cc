/**
 * @file
 * Figure 7: Rodinia computation time, normalized to native (gdev).
 *
 * Paper claims: CRONUS incurs < 7.1% overhead over native on all
 * benchmarks and is faster than HIX-TrustZone (whose per-control-
 * message encrypted RPC dominates).
 */

#include <cstdlib>

#include "bench_util.hh"
#include "workloads/rodinia.hh"

using namespace cronus;
using namespace cronus::bench;
using namespace cronus::workloads;

int
main(int argc, char **argv)
{
    registerRodiniaKernels();
    header("Figure 7: Rodinia computation time (normalized to "
           "Linux/native)");

    RodiniaSize size;
    size.scale = 160;
    size.iterations = 8;
    /* Usage: fig07_rodinia [scale [iterations]] */
    if (argc > 1)
        size.scale = std::strtoull(argv[1], nullptr, 10);
    if (argc > 2)
        size.iterations =
            static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10));
    if (size.scale == 0 || size.iterations == 0) {
        std::printf("usage: %s [scale [iterations]]\n", argv[0]);
        return 1;
    }

    std::printf("%-11s", "benchmark");
    for (const auto &system : allSystems())
        std::printf(" %14s", system.c_str());
    std::printf("   verified\n");

    double worst_cronus = 0.0;
    for (const auto &benchmark : rodiniaBenchmarks()) {
        std::printf("%-11s", benchmark.c_str());
        double native_time = 0.0;
        bool all_verified = true;
        for (const auto &system : allSystems()) {
            auto backend = makeBackend(system,
                                       rodiniaKernelNames());
            auto result = runRodinia(*backend, benchmark, size);
            if (!result.isOk()) {
                std::printf(" %14s", "ERROR");
                continue;
            }
            all_verified &= result.value().verified;
            double t = double(result.value().computeTimeNs);
            if (system == "Linux") {
                native_time = t;
                std::printf(" %13.2fx", 1.0);
            } else {
                double ratio = t / native_time;
                std::printf(" %13.2fx", ratio);
                if (system == "CRONUS")
                    worst_cronus = std::max(worst_cronus, ratio);
            }
        }
        std::printf("   %s\n", all_verified ? "yes" : "NO");
    }
    std::printf("\nCRONUS worst-case overhead: %.1f%% "
                "(paper: < 7.1%%)\n",
                100.0 * (worst_cronus - 1.0));
    exportTraceIfEnabled("fig07_rodinia.trace.json");
    return 0;
}
