/**
 * @file
 * Figure 9: supervised failover of two tasks on separate partitions.
 *
 * Task A's partition is crashed mid-run by a deterministic fault
 * plan (src/inject/): the kill fires inside a checked SPM access and
 * surfaces to the task through the proceed-trap path. A Supervisor
 * (src/recover/) stages the recovery -- backoff, scrub, mOS reload --
 * and task A's ResumableChannel reconnects to the new incarnation,
 * restores its sealed checkpoint and replays the in-flight calls;
 * task B is unaffected throughout. The monolithic comparator needs a
 * whole-machine reboot (~2 minutes) and takes every task down with
 * it. A second run crash-loops the partition (every incarnation is
 * killed) and must end in deterministic quarantine with the channel
 * reporting GaveUp. The bench exits nonzero on any invariant-audit
 * violation, a failed recovery, or a crash-loop that does not end
 * quarantined. `--smoke` shrinks the matrix and timeline for CI.
 */

#include <cstring>

#include "bench_util.hh"
#include "workloads/failover.hh"

using namespace cronus;
using namespace cronus::bench;
using namespace cronus::workloads;

namespace
{

void
printSeries(const char *name, const std::vector<double> &rates,
            SimTime bucket_ns)
{
    std::printf("%-7s t(ms):rate ", name);
    for (size_t i = 0; i < rates.size(); ++i) {
        if (i % 5 == 0)
            std::printf(" %llu:%.0f",
                        static_cast<unsigned long long>(
                            i * bucket_ns / kNsPerMs),
                        rates[i]);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    header("Figure 9: supervised failover timeline "
           "(task steps/second)");

    FailoverConfig config;
    if (smoke) {
        config.matrixDim = 16;
        config.runForNs = 2 * kNsPerSec;
        config.crashAtNs = 500 * kNsPerMs;
    }
    auto timeline = runFailoverTimeline(config);
    if (!timeline.isOk()) {
        std::printf("run failed: %s\n",
                    timeline.status().toString().c_str());
        return 1;
    }
    const FailoverTimeline &t = timeline.value();

    std::printf("crash scheduled at t=%llu ms into task A's "
                "partition (seed %llu)\n\n",
                static_cast<unsigned long long>(config.crashAtNs /
                                                kNsPerMs),
                static_cast<unsigned long long>(config.faultSeed));
    printSeries("task A", t.taskARate, config.bucketNs);
    printSeries("task B", t.taskBRate, config.bucketNs);

    std::printf("\n%-34s %14s\n", "recovery strategy",
                "downtime");
    std::printf("%-34s %11.0f ms\n",
                "CRONUS supervised (partition)",
                t.recoveryNs / double(kNsPerMs));
    std::printf("%-34s %11.0f ms\n",
                "monolithic (machine reboot)",
                t.machineRebootNs / double(kNsPerMs));
    std::printf("\ntask B steps during A's outage: %llu "
                "(fault isolation R3.1)\n",
                static_cast<unsigned long long>(
                    t.taskBStepsDuringOutage));
    std::printf("channel reconnects: %llu, replayed in-flight "
                "calls: %llu, final state: %s\n",
                static_cast<unsigned long long>(t.reconnects),
                static_cast<unsigned long long>(t.replayedCalls),
                t.finalChannelState.c_str());
    if (t.recoveryNs != 0)
        std::printf("speedup over reboot: %.0fx\n",
                    double(t.machineRebootNs) / t.recoveryNs);

    std::printf("\nsupervisor: %s\n", t.supervisorReport.c_str());
    std::printf("injection log: %s\n", t.injectionReport.c_str());
    std::printf("invariant audit: %llu violation(s)\n",
                static_cast<unsigned long long>(t.auditViolations));

    bool failed = false;
    if (t.auditViolations != 0) {
        std::printf("FAILED: invariant violations detected\n");
        failed = true;
    }
    if (t.recoveryNs == 0 || t.reconnects == 0 || t.gaveUp) {
        std::printf("FAILED: task A did not recover through the "
                    "supervised path\n");
        failed = true;
    }

    /* Second run: crash-loop the partition. Every incarnation is
     * killed; the Supervisor must exhaust its restart budget and
     * quarantine gpu0, and the channel must surface GaveUp. */
    header("Figure 9b: crash-loop quarantine (restart budget)");
    FailoverConfig loop_cfg = config;
    loop_cfg.crashLoop = true;
    auto loop = runFailoverTimeline(loop_cfg);
    if (!loop.isOk()) {
        std::printf("crash-loop run failed: %s\n",
                    loop.status().toString().c_str());
        return 1;
    }
    const FailoverTimeline &l = loop.value();
    std::printf("restart budget: %u, reconnects survived: %llu, "
                "final state: %s, quarantined: %s\n",
                loop_cfg.restartBudget,
                static_cast<unsigned long long>(l.reconnects),
                l.finalChannelState.c_str(),
                l.quarantined ? "yes" : "no");
    std::printf("supervisor: %s\n", l.supervisorReport.c_str());
    std::printf("invariant audit: %llu violation(s)\n",
                static_cast<unsigned long long>(l.auditViolations));
    if (l.auditViolations != 0) {
        std::printf("FAILED: invariant violations in crash-loop "
                    "run\n");
        failed = true;
    }
    if (!l.gaveUp || !l.quarantined) {
        std::printf("FAILED: crash-loop did not end in quarantine "
                    "+ GaveUp\n");
        failed = true;
    }
    exportTraceIfEnabled("fig09_failover.trace.json");
    return failed ? 1 : 0;
}
