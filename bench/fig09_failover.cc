/**
 * @file
 * Figure 9: failover of two tasks on separate partitions.
 *
 * Task A's partition is crashed mid-run by a deterministic fault
 * plan (src/inject/): the kill fires inside a checked SPM access and
 * surfaces to the task through the proceed-trap path. CRONUS
 * recovers only that partition (hundreds of ms) while task B is
 * unaffected; the monolithic comparator needs a whole-machine reboot
 * (~2 minutes) and takes every task down with it. The run fails if
 * the invariant auditor records any violation.
 */

#include "bench_util.hh"
#include "workloads/failover.hh"

using namespace cronus;
using namespace cronus::bench;
using namespace cronus::workloads;

namespace
{

void
printSeries(const char *name, const std::vector<double> &rates,
            SimTime bucket_ns)
{
    std::printf("%-7s t(ms):rate ", name);
    for (size_t i = 0; i < rates.size(); ++i) {
        if (i % 5 == 0)
            std::printf(" %llu:%.0f",
                        static_cast<unsigned long long>(
                            i * bucket_ns / kNsPerMs),
                        rates[i]);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    header("Figure 9: failover timeline (task steps/second)");

    FailoverConfig config;
    auto timeline = runFailoverTimeline(config);
    if (!timeline.isOk()) {
        std::printf("run failed: %s\n",
                    timeline.status().toString().c_str());
        return 1;
    }
    const FailoverTimeline &t = timeline.value();

    std::printf("crash scheduled at t=%llu ms into task A's "
                "partition (seed %llu)\n\n",
                static_cast<unsigned long long>(config.crashAtNs /
                                                kNsPerMs),
                static_cast<unsigned long long>(config.faultSeed));
    printSeries("task A", t.taskARate, config.bucketNs);
    printSeries("task B", t.taskBRate, config.bucketNs);

    std::printf("\n%-34s %14s\n", "recovery strategy",
                "downtime");
    std::printf("%-34s %11.0f ms\n",
                "CRONUS proceed-trap (partition)",
                t.recoveryNs / double(kNsPerMs));
    std::printf("%-34s %11.0f ms\n",
                "monolithic (machine reboot)",
                t.machineRebootNs / double(kNsPerMs));
    std::printf("\ntask B steps during A's outage: %llu "
                "(fault isolation R3.1)\n",
                static_cast<unsigned long long>(
                    t.taskBStepsDuringOutage));
    std::printf("speedup over reboot: %.0fx\n",
                double(t.machineRebootNs) / t.recoveryNs);

    std::printf("\ninjection log: %s\n", t.injectionReport.c_str());
    std::printf("invariant audit: %llu violation(s)\n",
                static_cast<unsigned long long>(t.auditViolations));
    std::printf("audit report: %s\n", t.auditReport.c_str());
    if (t.auditViolations != 0) {
        std::printf("FAILED: invariant violations detected\n");
        return 1;
    }
    return 0;
}
