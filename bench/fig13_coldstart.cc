/**
 * @file
 * Figure 13: enclave cold-start amortization (module store + warm
 * pool).
 *
 * Measures the per-request startup pipeline for a GPU worker enclave
 * under three strategies, in virtual time:
 *
 *  - cold:   legacy pipeline per request -- create (manifest parse,
 *            image hash, measurement SHA), remote attestation, then
 *            sRPC connect (local attestation, grant, dCheck,
 *            executor spawn).
 *  - warm:   createEnclaveCached() with the module resident in the
 *            SPM module store: the create step skips the parse +
 *            hash + measurement SHA; attestation and connect are
 *            unchanged.
 *  - pooled: a WarmPool prefilled with attested, pre-connected
 *            shells; a request binds the cached module onto a free
 *            shell (owner-authenticated HMAC) and goes straight to
 *            work.
 *
 * Each request does the same unit of work (one synchronous sRPC
 * call) so the strategies stay comparable. The report breaks the
 * startup down by phase and writes a google-benchmark-shaped JSON
 * document (BENCH_modstore.json) for bench/check_modstore.py, which
 * gates warm and pooled against cold. Times are virtual, so the
 * ratios are exactly reproducible. `--smoke` shrinks the request
 * count for CI; `--out PATH` redirects the JSON.
 */

#include <cstring>

#include "accel/builtin_kernels.hh"
#include "bench_util.hh"
#include "core/auto_partition.hh"
#include "core/system.hh"
#include "core/warm_pool.hh"

using namespace cronus;
using namespace cronus::bench;
using namespace cronus::core;

namespace
{

/** Startup phases of one request, virtual ns. */
struct Phases
{
    SimTime create = 0;  ///< create / cached-create
    SimTime attest = 0;  ///< remote attestation round trip
    SimTime chanAttest = 0;  ///< connect: local attestation
    SimTime chanGrant = 0;   ///< connect: shared-memory grant
    SimTime chanDcheck = 0;  ///< connect: dCheck handshake
    SimTime chanExec = 0;    ///< connect: executor spawn
    SimTime chanOther = 0;   ///< connect: framing remainder
    SimTime bind = 0;        ///< pooled: acquire + module bind

    SimTime
    startup() const
    {
        return create + attest + chanAttest + chanGrant +
               chanDcheck + chanExec + chanOther + bind;
    }

    void
    accumulate(const Phases &p)
    {
        create += p.create;
        attest += p.attest;
        chanAttest += p.chanAttest;
        chanGrant += p.chanGrant;
        chanDcheck += p.chanDcheck;
        chanExec += p.chanExec;
        chanOther += p.chanOther;
        bind += p.bind;
    }
};

/** The worker payload. The kernel list is padded with repeats to a
 *  realistic cubin size: module-store savings scale with the bytes
 *  the measurement SHA no longer hashes. */
struct WorkerModule
{
    std::string manifestJson;
    std::string imageName = "worker.cubin";
    Bytes image;

    WorkerModule()
    {
        accel::GpuModuleImage module;
        module.name = imageName;
        const char *kernels[] = {"fill_f32", "vec_add_f32",
                                 "saxpy_f32"};
        for (int i = 0; i < 2000; ++i)
            module.kernels.push_back(kernels[i % 3]);
        image = module.serialize();

        Manifest m;
        m.deviceType = "gpu";
        m.images[imageName] =
            crypto::digestHex(crypto::sha256(image));
        for (const auto &fn : CudaRuntime::apiSurface())
            m.mEcalls.push_back(
                {fn, AutoPartitioner::cudaCallIsAsync(fn)});
        m.memoryBytes = 4ull << 20;
        manifestJson = m.toJson();
    }
};

/** One machine per strategy run, so strategies don't share clock or
 *  partition state. */
struct Rig
{
    std::unique_ptr<CronusSystem> system;
    AppHandle driver;
    WorkerModule worker;

    Rig()
    {
        Logger::instance().setQuiet(true);
        accel::registerBuiltinKernels();
        auto &reg = CpuFunctionRegistry::instance();
        if (!reg.has("fig13_noop")) {
            reg.registerFunction(
                "fig13_noop", [](CpuCallContext &ctx) {
                    ctx.charge(1);
                    return Result<Bytes>(Bytes{});
                });
        }
        CronusConfig config;
        config.numGpus = 1;
        config.withNpu = false;
        config.moduleStoreBytes = 16ull << 20;
        system = std::make_unique<CronusSystem>(config);

        Manifest dm;
        dm.deviceType = "cpu";
        dm.mEcalls.push_back({"fig13_noop", false});
        CpuImage di;
        di.exports = {"fig13_noop"};
        Bytes db = di.serialize();
        dm.images["driver.so"] =
            crypto::digestHex(crypto::sha256(db));
        dm.memoryBytes = 2ull << 20;
        driver = system->createEnclave(dm.toJson(), "driver.so", db)
                     .value();
    }

    SimTime now() const
    {
        return system->platform().clock().now();
    }
};

/** Shared tail of a cold/warm request once the enclave exists:
 *  attestation, connect (with per-phase channel stats), one unit of
 *  work, teardown. */
Status
finishRequest(Rig &rig, AppHandle &handle, Phases &p)
{
    SimTime t = rig.now();
    auto report = rig.system->attest(handle, toBytes("fig13"));
    if (!report.isOk())
        return report.status();
    p.attest = rig.now() - t;

    t = rig.now();
    auto channel = rig.system->connect(rig.driver, handle);
    if (!channel.isOk())
        return channel.status();
    SimTime connect_total = rig.now() - t;
    const SrpcStats &cs = channel.value()->stats();
    p.chanAttest = cs.setupAttestNs;
    p.chanGrant = cs.setupGrantNs;
    p.chanDcheck = cs.setupDcheckNs;
    p.chanExec = cs.setupExecutorNs;
    p.chanOther = connect_total - cs.setupAttestNs -
                  cs.setupGrantNs - cs.setupDcheckNs -
                  cs.setupExecutorNs;

    auto r = channel.value()->callSync("cuCtxSynchronize", Bytes{});
    if (!r.isOk())
        return r.status();
    channel.value().reset();
    return rig.system->destroyEnclave(handle);
}

Result<Phases>
coldRequest(Rig &rig)
{
    Phases p;
    SimTime t = rig.now();
    auto handle = rig.system->createEnclave(
        rig.worker.manifestJson, rig.worker.imageName,
        rig.worker.image, "gpu0");
    if (!handle.isOk())
        return handle.status();
    p.create = rig.now() - t;
    Status s = finishRequest(rig, handle.value(), p);
    if (!s.isOk())
        return s;
    return p;
}

Result<Phases>
warmRequest(Rig &rig)
{
    Phases p;
    SimTime t = rig.now();
    auto handle = rig.system->createEnclaveCached(
        rig.worker.manifestJson, rig.worker.imageName,
        rig.worker.image, "gpu0");
    if (!handle.isOk())
        return handle.status();
    p.create = rig.now() - t;
    Status s = finishRequest(rig, handle.value(), p);
    if (!s.isOk())
        return s;
    return p;
}

Result<Phases>
pooledRequest(Rig &rig, WarmPool &pool, const ModuleRecord &record)
{
    Phases p;
    SimTime t = rig.now();
    auto shell = pool.acquire(record);
    if (!shell.isOk())
        return shell.status();
    p.bind = rig.now() - t;

    auto r = shell.value()->channel->callSync("cuCtxSynchronize",
                                              Bytes{});
    if (!r.isOk())
        return r.status();
    Status s = pool.release(shell.value());
    if (!s.isOk())
        return s;
    return p;
}

void
printRow(const char *name, SimTime cold, SimTime warm,
         SimTime pooled)
{
    std::printf("%-26s %10.1f %10.1f %10.1f\n", name,
                cold / double(kNsPerUs), warm / double(kNsPerUs),
                pooled / double(kNsPerUs));
}

Status
writeBenchJson(const std::string &path, uint64_t requests,
               SimTime cold, SimTime warm, SimTime pooled)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status(ErrorCode::InvalidArgument,
                      "cannot write " + path);
    std::fprintf(f, "{\n  \"context\": {\"executable\": "
                    "\"fig13_coldstart\", \"virtual_time\": true},\n"
                    "  \"benchmarks\": [\n");
    struct Row
    {
        const char *name;
        SimTime ns;
    } rows[] = {{"fig13/cold", cold},
                {"fig13/warm", warm},
                {"fig13/pooled", pooled}};
    for (size_t i = 0; i < 3; ++i) {
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
            "\"iterations\": %llu, \"real_time\": %llu, "
            "\"cpu_time\": %llu, \"time_unit\": \"ns\"}%s\n",
            rows[i].name,
            static_cast<unsigned long long>(requests),
            static_cast<unsigned long long>(rows[i].ns),
            static_cast<unsigned long long>(rows[i].ns),
            i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return Status::ok();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_modstore.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out = argv[++i];
    }
    const uint64_t requests = smoke ? 4 : 16;

    header("Figure 13: cold-start amortization "
           "(module store + warm pool)");

    /* --- cold: the legacy pipeline, per request --- */
    Rig cold_rig;
    Phases cold_sum;
    for (uint64_t i = 0; i < requests; ++i) {
        auto p = coldRequest(cold_rig);
        if (!p.isOk()) {
            std::printf("cold request failed: %s\n",
                        p.status().toString().c_str());
            return 1;
        }
        cold_sum.accumulate(p.value());
    }

    /* --- warm: module resident in the store --- */
    Rig warm_rig;
    if (!warm_rig.system->moduleStoreEnabled()) {
        std::printf("module store disabled "
                    "(CRONUS_DISABLE_MODSTORE set?) -- figure 13 "
                    "needs it\n");
        return 1;
    }
    /* Untimed admission so every measured request is a hit. */
    auto admitted = warm_rig.system->moduleStore().admit(
        warm_rig.worker.manifestJson, warm_rig.worker.imageName,
        warm_rig.worker.image);
    if (!admitted.isOk()) {
        std::printf("admission failed: %s\n",
                    admitted.status().toString().c_str());
        return 1;
    }
    Phases warm_sum;
    for (uint64_t i = 0; i < requests; ++i) {
        auto p = warmRequest(warm_rig);
        if (!p.isOk()) {
            std::printf("warm request failed: %s\n",
                        p.status().toString().c_str());
            return 1;
        }
        warm_sum.accumulate(p.value());
    }

    /* --- pooled: pre-attested, pre-connected shells --- */
    Rig pool_rig;
    auto record = pool_rig.system->moduleStore().admit(
        pool_rig.worker.manifestJson, pool_rig.worker.imageName,
        pool_rig.worker.image);
    if (!record.isOk()) {
        std::printf("admission failed: %s\n",
                    record.status().toString().c_str());
        return 1;
    }
    WarmPool::Config pc;
    pc.deviceType = "gpu";
    pc.deviceName = "gpu0";
    WarmPool pool(*pool_rig.system, pc);
    Status prefill = pool.prefill(2, &pool_rig.driver);
    if (!prefill.isOk()) {
        std::printf("prefill failed: %s\n",
                    prefill.toString().c_str());
        return 1;
    }
    Phases pooled_sum;
    for (uint64_t i = 0; i < requests; ++i) {
        auto p = pooledRequest(pool_rig, pool, *record.value());
        if (!p.isOk()) {
            std::printf("pooled request failed: %s\n",
                        p.status().toString().c_str());
            return 1;
        }
        pooled_sum.accumulate(p.value());
    }

    /* --- report (virtual us per request) --- */
    std::printf("\n%llu requests per strategy; startup phases in "
                "virtual us/request\n\n",
                static_cast<unsigned long long>(requests));
    std::printf("%-26s %10s %10s %10s\n", "phase", "cold", "warm",
                "pooled");
    printRow("create (parse+hash+SHA)", cold_sum.create / requests,
             warm_sum.create / requests, 0);
    printRow("remote attestation", cold_sum.attest / requests,
             warm_sum.attest / requests, 0);
    printRow("connect: local attest",
             cold_sum.chanAttest / requests,
             warm_sum.chanAttest / requests, 0);
    printRow("connect: grant", cold_sum.chanGrant / requests,
             warm_sum.chanGrant / requests, 0);
    printRow("connect: dCheck", cold_sum.chanDcheck / requests,
             warm_sum.chanDcheck / requests, 0);
    printRow("connect: executor", cold_sum.chanExec / requests,
             warm_sum.chanExec / requests, 0);
    printRow("connect: framing", cold_sum.chanOther / requests,
             warm_sum.chanOther / requests, 0);
    printRow("pool acquire+bind", 0, 0, pooled_sum.bind / requests);
    SimTime cold_ns = cold_sum.startup() / requests;
    SimTime warm_ns = warm_sum.startup() / requests;
    SimTime pooled_ns = pooled_sum.startup() / requests;
    std::printf("%-26s %10s %10s %10s\n", "", "----------",
                "----------", "----------");
    printRow("startup total", cold_ns, warm_ns, pooled_ns);

    std::printf("\nspeedup over cold: warm %.2fx, pooled %.2fx\n",
                double(cold_ns) / double(warm_ns),
                double(cold_ns) / double(pooled_ns));
    std::printf("pool: %s\n",
                pool.statistics().toJson().dump().c_str());
    std::printf("store: %s\n",
                warm_rig.system->moduleStore()
                    .statistics().toJson().dump().c_str());

    bool failed = false;
    if (warm_ns >= cold_ns) {
        std::printf("FAILED: warm start is not cheaper than cold\n");
        failed = true;
    }
    if (pooled_ns >= warm_ns) {
        std::printf("FAILED: pooled start is not cheaper than "
                    "warm\n");
        failed = true;
    }

    Status js = writeBenchJson(out, requests, cold_ns, warm_ns,
                               pooled_ns);
    if (!js.isOk()) {
        std::printf("FAILED: %s\n", js.toString().c_str());
        failed = true;
    } else {
        std::fprintf(stderr, "bench json: %s\n", out.c_str());
    }
    exportTraceIfEnabled("fig13_coldstart.trace.json");
    return failed ? 1 : 0;
}
