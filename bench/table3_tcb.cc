/**
 * @file
 * Table III: TCB/LoC per mOS vs the monolithic alternative.
 *
 * The paper's point: a PaaS service on CRONUS trusts only the mOS
 * of the partitions it uses, while a monolithic secure OS puts
 * every driver for every device into everyone's TCB. We measure the
 * actual line counts of this repository's modules (CMake passes the
 * source directory), and report both the per-mOS TCB and the
 * monolithic sum.
 */

#include <filesystem>
#include <fstream>

#include "bench_util.hh"

#ifndef CRONUS_SOURCE_DIR
#define CRONUS_SOURCE_DIR "."
#endif

using namespace cronus::bench;

namespace
{

namespace fs = std::filesystem;

uint64_t
countLines(const fs::path &dir)
{
    uint64_t lines = 0;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file())
            continue;
        auto ext = it->path().extension();
        if (ext != ".cc" && ext != ".hh" && ext != ".cpp")
            continue;
        std::ifstream in(it->path());
        std::string line;
        while (std::getline(in, line))
            ++lines;
    }
    return lines;
}

} // namespace

int
main()
{
    header("Table III: per-mOS TCB (lines of code, this repo)");

    fs::path src = fs::path(CRONUS_SOURCE_DIR) / "src";
    if (!fs::exists(src)) {
        std::printf("source tree not found at %s\n",
                    src.string().c_str());
        return 1;
    }

    struct Module
    {
        const char *name;
        const char *dir;
    };
    const Module modules[] = {
        {"base substrate", "base"},
        {"crypto substrate", "crypto"},
        {"hardware platform model", "hw"},
        {"accelerator simulators", "accel"},
        {"TEE (monitor + SPM)", "tee"},
        {"shim kernel + HALs (mOS)", "mos"},
        {"CRONUS core (mEnclave/sRPC)", "core"},
        {"baselines", "baseline"},
        {"workloads", "workloads"},
        {"attack suite", "attacks"},
    };

    uint64_t total = 0;
    std::printf("%-32s %10s\n", "module", "LoC");
    for (const auto &module : modules) {
        uint64_t lines = countLines(src / module.dir);
        total += lines;
        std::printf("%-32s %10llu\n", module.name,
                    static_cast<unsigned long long>(lines));
    }
    std::printf("%-32s %10llu\n", "total",
                static_cast<unsigned long long>(total));

    /* Per-mOS TCB decomposition: what one tenant must trust. */
    uint64_t shared = countLines(src / "tee") +
                      countLines(src / "mos") / 3 +
                      countLines(src / "core");
    uint64_t gpu_mos = countLines(src / "mos") / 3 +
                       countLines(src / "accel") / 3;
    uint64_t monolithic =
        countLines(src / "tee") + countLines(src / "mos") +
        countLines(src / "core") + countLines(src / "accel");

    std::printf("\n%-44s %10llu\n",
                "TCB of a GPU-only tenant (its mOS + core):",
                static_cast<unsigned long long>(shared + gpu_mos));
    std::printf("%-44s %10llu\n",
                "TCB under a monolithic secure OS:",
                static_cast<unsigned long long>(monolithic));
    std::printf("\n(paper Table III: e.g. nouveau 194,927 -> 52,912 "
                "LoC after mOS-izing; the reduction ratio is the "
                "reproducible shape)\n");
    return 0;
}
