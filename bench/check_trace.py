#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace emitted by a CRONUS bench.

Usage:
    check_trace.py TRACE.json [--require NAME[@TRACK_PREFIX]] ...

Checks that the JSON parses as a trace-event document, that every
event is well-formed (named, timestamped, attributed to a track that
has thread_name metadata), and that each --require'd event name
appears at least once -- optionally on a track whose thread_name
starts with TRACK_PREFIX ("p" = partition tracks "p<pid> <device>",
"e" = enclave tracks "e<eid> <device>", or a literal named track
like "dispatcher").

With no --require, applies the fig09_failover default set: sRPC call
spans on enclave tracks, execute spans and TLB shootdowns on
partition tracks, the Supervisor recovery stages, and the channel
replay span. Exits 1 with a per-requirement report on any miss.
"""

import argparse
import json
import sys

# Default requirement set: the fig09 failover story end to end.
FIG09_REQUIRED = [
    "srpc.call@e",        # caller-side sync call, enclave track
    "srpc.execute@p",     # callee-side execution, partition track
    "tlb.shootdown@p",    # survivor shootdown on partition failure
    "recover.backoff@p",  # Supervisor stages on the failed partition
    "recover.scrub@p",
    "recover.recovered@p",
    "channel.replay@channel",  # in-flight replay after reconnect
]


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("no traceEvents array")
    return doc, events


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument(
        "--require", action="append", default=[], metavar="NAME[@PFX]",
        help="event name that must appear (optionally @track-prefix)")
    args = ap.parse_args()

    try:
        doc, events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"{args.trace}: {e}", file=sys.stderr)
        return 1

    # Track registry from metadata events, then index real events by
    # name -> set of track names they appeared on.
    threads = {}   # (pid, tid) -> thread_name
    processes = {}  # pid -> process_name
    spans = 0
    instants = 0
    by_name = {}   # event name -> set of track names
    errors = []
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                processes[ev["pid"]] = ev["args"]["name"]
            elif ev.get("name") == "thread_name":
                threads[(ev["pid"], ev["tid"])] = ev["args"]["name"]
            continue
        name = ev.get("name", "")
        if not name:
            errors.append(f"event {i}: unnamed")
            continue
        if "ts" not in ev:
            errors.append(f"event {i} ({name}): no timestamp")
            continue
        key = (ev.get("pid"), ev.get("tid"))
        track = threads.get(key)
        if track is None:
            errors.append(
                f"event {i} ({name}): track {key} has no "
                f"thread_name metadata")
            continue
        if ph == "X":
            spans += 1
            if ev.get("dur", -1) < 0:
                errors.append(f"event {i} ({name}): bad dur")
        elif ph == "i":
            instants += 1
        else:
            errors.append(f"event {i} ({name}): unknown ph {ph!r}")
        by_name.setdefault(name, set()).add(track)

    required = args.require or FIG09_REQUIRED
    for req in required:
        name, _, prefix = req.partition("@")
        tracks = by_name.get(name, set())
        if not tracks:
            errors.append(f"required event missing: {name}")
            continue
        if prefix and not any(t.startswith(prefix) for t in tracks):
            errors.append(
                f"required event {name} never on a track "
                f"'{prefix}*' (saw: {sorted(tracks)})")

    dropped = doc.get("droppedEvents", 0)
    print(f"{args.trace}: {spans} spans + {instants} instants on "
          f"{len(threads)} tracks across {len(processes)} "
          f"platform(s), {len(by_name)} distinct names"
          + (f", {dropped} DROPPED" if dropped else ""))
    for name in sorted(by_name):
        print(f"  {name}: {len(by_name[name])} track(s)")
    if errors:
        print("trace-smoke FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print("trace-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
