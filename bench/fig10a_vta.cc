/**
 * @file
 * Figure 10a: vta-bench throughput (GEMM ops/s) on the NPU.
 *
 * CRONUS ~= monolithic TrustZone ~= native (the NPU does the work;
 * the TEE layers add little). HIX is GPU-only and cannot run it.
 */

#include "bench_util.hh"
#include "workloads/vta_bench.hh"

using namespace cronus;
using namespace cronus::bench;
using namespace cronus::workloads;

int
main()
{
    header("Figure 10a: vta-bench NPU throughput");

    VtaBenchConfig config;
    config.gemmDim = 16;
    config.opsPerBatch = 8;
    config.batches = 16;

    std::printf("%-15s %16s %10s\n", "system", "GEMM ops/s",
                "verified");
    double native_tput = 0.0;
    for (const auto &system : allSystems()) {
        auto backend = makeBackend(system, {});
        auto result = runVtaBench(*backend, config);
        if (!result.isOk()) {
            std::printf("%-15s %16s\n", system.c_str(),
                        system == "HIX-TrustZone"
                            ? "n/a (GPU only)"
                            : "ERROR");
            continue;
        }
        if (system == "Linux")
            native_tput = result.value().gemmOpsPerSecond;
        std::printf("%-15s %16.0f %10s   (%.1f%% of native)\n",
                    system.c_str(),
                    result.value().gemmOpsPerSecond,
                    result.value().verified ? "yes" : "NO",
                    100.0 * result.value().gemmOpsPerSecond /
                        native_tput);
    }
    return 0;
}
