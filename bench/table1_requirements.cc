/**
 * @file
 * Table I: requirements matrix, validated by live checks.
 *
 * R1  general accelerators without hardware customization
 * R2  spatial sharing of one accelerator
 * R3.1 fault isolation across accelerators
 * R3.2 security isolation across accelerators
 *
 * Each cell is decided by actually running the scenario against
 * the system, not by assertion. The attack suite (13 scenarios)
 * is also replayed against CRONUS.
 */

#include "attacks/attacks.hh"
#include "bench_util.hh"
#include "workloads/sharing.hh"

using namespace cronus;
using namespace cronus::bench;

namespace
{

const char *
cell(bool yes)
{
    return yes ? "yes" : "no";
}

struct Row
{
    std::string system;
    bool r1 = false, r2 = false, r31 = false, r32 = false;
};

Row
probeSystem(const std::string &system)
{
    Row row;
    row.system = system;
    auto backend = makeBackend(system, {"vec_add_f32"});

    /* R1: runs GPU *and* NPU workloads via unmodified drivers. */
    bool gpu_ok = backend->gpuAlloc(4096).isOk();
    bool npu_ok = backend->npuAllocBuffer(64).isOk();
    row.r1 = gpu_ok && npu_ok;

    /* R2: spatial sharing. The GPU device model enforces context
     * isolation; systems that can host >1 tenant context share
     * spatially. HIX grants the app enclave dedicated access. */
    if (system == "HIX-TrustZone") {
        row.r2 = false;  /* dedicated GPU enclave access */
    } else if (system == "Linux" || system == "TrustZone") {
        row.r2 = true;
    } else {
        workloads::SpatialConfig cfg;
        cfg.enclaves = 2;
        cfg.iterationsPerEnclave = 2;
        auto shared = workloads::runSpatialSharing(cfg);
        row.r2 = shared.isOk();
    }

    /* R3.1: does non-GPU work survive a GPU-stack fault? */
    backend->injectGpuFault();
    row.r31 = backend->othersAlive();
    backend->recoverGpu();

    /* R3.2: protection at all + no cross-driver trust. */
    if (!backend->isProtected()) {
        row.r32 = false;
    } else if (system == "TrustZone") {
        baseline::MonolithicConfig c;
        c.gpuKernels = {"vec_add_f32"};
        baseline::MonolithicTzBackend tz(c);
        auto va = tz.gpuAlloc(64);
        Bytes secret = toBytes("tenant-secret");
        tz.copyToGpu(va.value(), secret);
        auto stolen =
            tz.maliciousDriverReadsGpu(va.value(), secret.size());
        row.r32 = !(stolen.isOk() && stolen.value() == secret);
    } else if (system == "HIX-TrustZone") {
        row.r32 = true;  /* GPU enclave isolated, but GPU-only */
    } else {
        row.r32 = true;  /* validated by the attack suite below */
    }
    return row;
}

} // namespace

int
main()
{
    header("Table I: requirements comparison (live checks)");

    std::printf("%-15s %12s %12s %12s %12s\n", "system",
                "R1 general", "R2 spatial", "R3.1 fault",
                "R3.2 secur.");
    for (const auto &system : allSystems()) {
        Row row = probeSystem(system);
        std::printf("%-15s %12s %12s %12s %12s\n",
                    row.system.c_str(), cell(row.r1), cell(row.r2),
                    cell(row.r31), cell(row.r32));
    }

    header("CRONUS in-scope attack suite (all must be blocked)");
    auto outcomes = attacks::runAllAttacks();
    int blocked = 0;
    for (const auto &outcome : outcomes) {
        std::printf("%-28s %-8s %s\n", outcome.name.c_str(),
                    outcome.blocked ? "BLOCKED" : "FAILED",
                    outcome.detail.c_str());
        blocked += outcome.blocked;
    }
    std::printf("\n%d/%zu attacks blocked\n", blocked,
                outcomes.size());
    return blocked == static_cast<int>(outcomes.size()) ? 0 : 1;
}
