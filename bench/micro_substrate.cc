/**
 * @file
 * Substrate microbenchmarks (wall-clock, google-benchmark).
 *
 * Real-time throughput of the from-scratch primitives everything
 * else is built on: SHA-256, HMAC, AES-CTR, Schnorr, U256 modexp,
 * page-table translation, sRPC framing. These are host-time
 * numbers, unlike the virtual-time figure benches.
 */

#include <benchmark/benchmark.h>

#include "crypto/aes.hh"
#include "crypto/keys.hh"
#include "crypto/sha256.hh"
#include "hw/page_table.hh"

using namespace cronus;

namespace
{

void
BM_Sha256(benchmark::State &state)
{
    Bytes data(state.range(0), 0xab);
    for (auto _ : state) {
        auto digest = crypto::sha256(data);
        benchmark::DoNotOptimize(digest);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void
BM_HmacSha256(benchmark::State &state)
{
    Bytes key(32, 0x11);
    Bytes data(state.range(0), 0xab);
    for (auto _ : state) {
        auto mac = crypto::hmacSha256(key, data);
        benchmark::DoNotOptimize(mac);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void
BM_AesCtr(benchmark::State &state)
{
    crypto::AesKey key{};
    crypto::Aes128 aes(key);
    Bytes data(state.range(0), 0x5c);
    uint64_t nonce = 0;
    for (auto _ : state) {
        auto ct = aes.ctr(data, ++nonce);
        benchmark::DoNotOptimize(ct);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(4096)->Arg(65536);

void
BM_SealOpen(benchmark::State &state)
{
    Bytes secret(32, 0x07);
    Bytes data(state.range(0), 0x3c);
    uint64_t nonce = 0;
    for (auto _ : state) {
        Bytes sealed = crypto::sealMessage(secret, ++nonce, data);
        auto opened = crypto::openMessage(secret, sealed);
        benchmark::DoNotOptimize(opened);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_SealOpen)->Arg(1024)->Arg(16384);

void
BM_SchnorrSign(benchmark::State &state)
{
    crypto::KeyPair kp = crypto::deriveKeyPair(toBytes("bench"));
    Bytes msg(64, 0x99);
    for (auto _ : state) {
        auto sig = crypto::sign(kp.priv, msg);
        benchmark::DoNotOptimize(sig);
    }
}
BENCHMARK(BM_SchnorrSign);

void
BM_SchnorrVerify(benchmark::State &state)
{
    crypto::KeyPair kp = crypto::deriveKeyPair(toBytes("bench"));
    Bytes msg(64, 0x99);
    auto sig = crypto::sign(kp.priv, msg);
    for (auto _ : state) {
        bool ok = crypto::verify(kp.pub, msg, sig);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_SchnorrVerify);

void
BM_U256PowMod(benchmark::State &state)
{
    crypto::U256 base(123456789);
    auto exp = crypto::U256::fromHex(
        "0123456789abcdef0123456789abcdef"
        "0123456789abcdef0123456789abcdef").value();
    for (auto _ : state) {
        auto r = crypto::U256::powMod(base, exp,
                                      crypto::groupPrime());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_U256PowMod);

void
BM_PageTableTranslate(benchmark::State &state)
{
    hw::PageTable pt;
    for (uint64_t i = 0; i < 1024; ++i)
        pt.map(i * hw::kPageSize, (i + 4096) * hw::kPageSize,
               hw::PagePerms::rw());
    uint64_t va = 0;
    for (auto _ : state) {
        auto t = pt.translate((va++ % 1024) * hw::kPageSize, 8,
                              false);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_PageTableTranslate);

void
BM_DhSharedSecret(benchmark::State &state)
{
    crypto::KeyPair a = crypto::deriveKeyPair(toBytes("a"));
    crypto::KeyPair b = crypto::deriveKeyPair(toBytes("b"));
    for (auto _ : state) {
        auto s = crypto::dhSharedSecret(a.priv, b.pub);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_DhSharedSecret);

} // namespace

BENCHMARK_MAIN();
