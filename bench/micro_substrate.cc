/**
 * @file
 * Substrate microbenchmarks (wall-clock, google-benchmark).
 *
 * Real-time throughput of the from-scratch primitives everything
 * else is built on: SHA-256, HMAC, AES-CTR, Schnorr, U256 modexp,
 * page-table translation, sRPC framing. These are host-time
 * numbers, unlike the virtual-time figure benches.
 *
 * The memory fast-path benches (BM_Spm*, BM_Srpc*) take Arg(0) =
 * software TLB off / Arg(1) = TLB on, so a single run quantifies the
 * fast path against the uncached walk. Results are also written to
 * BENCH_substrate.json (benchmark's JSON format) unless the caller
 * passes its own --benchmark_out.
 */

#include <benchmark/benchmark.h>

#include "accel/builtin_kernels.hh"
#include "core/auto_partition.hh"
#include "core/system.hh"
#include "crypto/aes.hh"
#include "crypto/keys.hh"
#include "crypto/sha256.hh"
#include "hw/page_table.hh"
#include "tee/spm.hh"

using namespace cronus;

namespace
{

void
BM_Sha256(benchmark::State &state)
{
    Bytes data(state.range(0), 0xab);
    for (auto _ : state) {
        auto digest = crypto::sha256(data);
        benchmark::DoNotOptimize(digest);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void
BM_HmacSha256(benchmark::State &state)
{
    Bytes key(32, 0x11);
    Bytes data(state.range(0), 0xab);
    for (auto _ : state) {
        auto mac = crypto::hmacSha256(key, data);
        benchmark::DoNotOptimize(mac);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void
BM_AesCtr(benchmark::State &state)
{
    crypto::AesKey key{};
    crypto::Aes128 aes(key);
    Bytes data(state.range(0), 0x5c);
    uint64_t nonce = 0;
    for (auto _ : state) {
        auto ct = aes.ctr(data, ++nonce);
        benchmark::DoNotOptimize(ct);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(4096)->Arg(65536);

void
BM_SealOpen(benchmark::State &state)
{
    Bytes secret(32, 0x07);
    Bytes data(state.range(0), 0x3c);
    uint64_t nonce = 0;
    for (auto _ : state) {
        Bytes sealed = crypto::sealMessage(secret, ++nonce, data);
        auto opened = crypto::openMessage(secret, sealed);
        benchmark::DoNotOptimize(opened);
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_SealOpen)->Arg(1024)->Arg(16384);

void
BM_SchnorrSign(benchmark::State &state)
{
    crypto::KeyPair kp = crypto::deriveKeyPair(toBytes("bench"));
    Bytes msg(64, 0x99);
    for (auto _ : state) {
        auto sig = crypto::sign(kp.priv, msg);
        benchmark::DoNotOptimize(sig);
    }
}
BENCHMARK(BM_SchnorrSign);

void
BM_SchnorrVerify(benchmark::State &state)
{
    crypto::KeyPair kp = crypto::deriveKeyPair(toBytes("bench"));
    Bytes msg(64, 0x99);
    auto sig = crypto::sign(kp.priv, msg);
    for (auto _ : state) {
        bool ok = crypto::verify(kp.pub, msg, sig);
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_SchnorrVerify);

void
BM_U256PowMod(benchmark::State &state)
{
    crypto::U256 base(123456789);
    auto exp = crypto::U256::fromHex(
        "0123456789abcdef0123456789abcdef"
        "0123456789abcdef0123456789abcdef").value();
    for (auto _ : state) {
        auto r = crypto::U256::powMod(base, exp,
                                      crypto::groupPrime());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_U256PowMod);

void
BM_PageTableTranslate(benchmark::State &state)
{
    hw::PageTable pt;
    for (uint64_t i = 0; i < 1024; ++i)
        pt.map(i * hw::kPageSize, (i + 4096) * hw::kPageSize,
               hw::PagePerms::rw());
    uint64_t va = 0;
    for (auto _ : state) {
        auto t = pt.translate((va++ % 1024) * hw::kPageSize, 8,
                              false);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_PageTableTranslate);

void
BM_DhSharedSecret(benchmark::State &state)
{
    crypto::KeyPair a = crypto::deriveKeyPair(toBytes("a"));
    crypto::KeyPair b = crypto::deriveKeyPair(toBytes("b"));
    for (auto _ : state) {
        auto s = crypto::dhSharedSecret(a.priv, b.pub);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_DhSharedSecret);

/* ---------------- memory fast path (TLB off/on) ---------------- */

/** RAII toggle: Arg(0) = uncached walk, Arg(1) = software TLB. */
struct TlbScope
{
    explicit TlbScope(bool on)
    {
        hw::TranslationCache::setGlobalEnable(on);
    }
    ~TlbScope() { hw::TranslationCache::setGlobalEnable(true); }
};

/** Minimal SPM stack: one platform, one GPU partition. */
struct SpmBench
{
    std::unique_ptr<hw::Platform> platform;
    std::unique_ptr<tee::SecureMonitor> monitor;
    std::unique_ptr<tee::Spm> spm;
    tee::PartitionId pid = 0;
    tee::PhysAddr base = 0;

    SpmBench()
    {
        Logger::instance().setQuiet(true);
        platform = std::make_unique<hw::Platform>();
        platform->registerDevice(
            std::make_unique<accel::GpuDevice>(), 40);
        monitor = std::make_unique<tee::SecureMonitor>(*platform);
        hw::DeviceTree dt;
        hw::DeviceTree discovered = platform->buildDeviceTree();
        for (auto node : discovered.all()) {
            node.world = hw::World::Secure;
            dt.addNode(node);
        }
        monitor->boot(dt);
        spm = std::make_unique<tee::Spm>(*monitor);
        tee::MosImage image{"gpu0.mos", "gpu", toBytes("bench")};
        pid = spm->createPartition(image, "gpu0", 1 << 20).value();
        base = spm->partition(pid).value()->memBase;
    }
};

void
BM_SpmRead(benchmark::State &state)
{
    TlbScope tlb(state.range(0) != 0);
    SpmBench b;
    uint8_t buf[64];
    /* Stride one page per access across the whole partition, the
     * pattern ring + heap traffic produces; touch everything once so
     * neither variant measures first-touch page materialization. */
    constexpr uint64_t kPages = (1 << 20) / hw::kPageSize;
    for (uint64_t i = 0; i < kPages; ++i)
        b.spm->write(b.pid, b.base + i * hw::kPageSize, buf,
                     sizeof(buf));
    uint64_t page = 0;
    for (auto _ : state) {
        Status s = b.spm->readInto(
            b.pid, b.base + page * hw::kPageSize, buf, sizeof(buf));
        benchmark::DoNotOptimize(s);
        page = (page + 1) % kPages;
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            sizeof(buf));
}
BENCHMARK(BM_SpmRead)->Arg(0)->Arg(1);

void
BM_SpmWrite(benchmark::State &state)
{
    TlbScope tlb(state.range(0) != 0);
    SpmBench b;
    uint8_t buf[64] = {0x5a};
    constexpr uint64_t kPages = (1 << 20) / hw::kPageSize;
    for (uint64_t i = 0; i < kPages; ++i)
        b.spm->write(b.pid, b.base + i * hw::kPageSize, buf,
                     sizeof(buf));
    uint64_t page = 0;
    for (auto _ : state) {
        Status s = b.spm->write(
            b.pid, b.base + page * hw::kPageSize, buf, sizeof(buf));
        benchmark::DoNotOptimize(s);
        page = (page + 1) % kPages;
    }
    state.SetBytesProcessed(int64_t(state.iterations()) *
                            sizeof(buf));
}
BENCHMARK(BM_SpmWrite)->Arg(0)->Arg(1);

/** Full CRONUS machine with a CPU caller and GPU callee, as in the
 *  ablation bench; cuCtxSynchronize keeps iterations resource-flat. */
struct SrpcBench
{
    std::unique_ptr<core::CronusSystem> system;
    core::AppHandle cpu, gpu;
    std::unique_ptr<core::SrpcChannel> channel;

    SrpcBench()
    {
        Logger::instance().setQuiet(true);
        accel::registerBuiltinKernels();
        auto &reg = core::CpuFunctionRegistry::instance();
        if (!reg.has("bench_noop")) {
            reg.registerFunction(
                "bench_noop", [](core::CpuCallContext &ctx) {
                    ctx.charge(1);
                    return Result<Bytes>(Bytes{});
                });
        }
        system = std::make_unique<core::CronusSystem>();
        core::Manifest cm;
        cm.deviceType = "cpu";
        cm.mEcalls.push_back({"bench_noop", false});
        core::CpuImage ci;
        ci.exports = {"bench_noop"};
        Bytes cb = ci.serialize();
        cm.images["a.so"] = crypto::digestHex(crypto::sha256(cb));
        cm.memoryBytes = 4ull << 20;
        cpu = system->createEnclave(cm.toJson(), "a.so", cb).value();

        core::Manifest gm;
        gm.deviceType = "gpu";
        accel::GpuModuleImage module{"a.cubin", {"fill_f32"}};
        Bytes gb = module.serialize();
        gm.images["a.cubin"] = crypto::digestHex(crypto::sha256(gb));
        for (const auto &fn : core::CudaRuntime::apiSurface())
            gm.mEcalls.push_back(
                {fn, core::AutoPartitioner::cudaCallIsAsync(fn)});
        gm.memoryBytes = 4ull << 20;
        gpu = system->createEnclave(gm.toJson(), "a.cubin", gb)
                  .value();
        channel = std::move(system->connect(cpu, gpu).value());
    }
};

void
BM_SrpcCallSync(benchmark::State &state)
{
    TlbScope tlb(state.range(0) != 0);
    SrpcBench b;
    for (auto _ : state) {
        auto r = b.channel->callSync("cuCtxSynchronize", Bytes{});
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_SrpcCallSync)->Arg(0)->Arg(1);

void
BM_SrpcCallAsync(benchmark::State &state)
{
    TlbScope tlb(state.range(0) != 0);
    SrpcBench b;
    /* Streaming steady state: enqueue + executor keeps pace. */
    for (auto _ : state) {
        auto r = b.channel->callAsync("cuCtxSynchronize", Bytes{});
        benchmark::DoNotOptimize(r);
        b.channel->pump(1);
    }
    b.channel->drain();
}
BENCHMARK(BM_SrpcCallAsync)->Arg(0)->Arg(1);

} // namespace

int
main(int argc, char **argv)
{
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
            has_out = true;
    std::vector<char *> args(argv, argv + argc);
    std::string out = "--benchmark_out=BENCH_substrate.json";
    std::string fmt = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int ac = static_cast<int>(args.size());
    benchmark::Initialize(&ac, args.data());
    if (benchmark::ReportUnrecognizedArguments(ac, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
