/**
 * @file
 * Ablation: cost breakdown of proceed-trap recovery (§IV-D).
 *
 *  - step 1 (invalidate) cost vs number of shared pages,
 *  - step 2 (clear + reload) cost vs partition memory size,
 *  - serialized vs concurrent recovery for 1-4 failed partitions,
 *  - latency of a trapped shared-memory access.
 *
 * Every partition death is delivered through the deterministic fault
 * injector (src/inject/): the kill fires inside a checked SPM access
 * and the step-1 cost is read off the injection log's before/after
 * timestamps. An InvariantAuditor rides along on every rig; the
 * bench fails if any run leaks a grant or tears one down twice.
 */

#include "accel/gpu.hh"
#include "bench_util.hh"
#include "inject/injector.hh"
#include "inject/invariant_auditor.hh"
#include "tee/spm.hh"

using namespace cronus;
using namespace cronus::bench;
using namespace cronus::tee;

namespace
{

struct Rig
{
    std::unique_ptr<hw::Platform> platform;
    std::unique_ptr<SecureMonitor> monitor;
    std::unique_ptr<Spm> spm;
    inject::InvariantAuditor auditor;

    explicit Rig(int gpus, uint64_t secure_mem = 512ull << 20)
    {
        Logger::instance().setQuiet(true);
        hw::PlatformConfig pc;
        pc.secureMemBytes = secure_mem;
        platform = std::make_unique<hw::Platform>(pc);
        for (int i = 0; i < gpus; ++i) {
            accel::GpuConfig gc;
            gc.name = "gpu" + std::to_string(i);
            gc.vramBytes = 8ull << 20;
            gc.rotSeed = toBytes("rot" + std::to_string(i));
            platform->registerDevice(
                std::make_unique<accel::GpuDevice>(gc), 40 + i);
        }
        monitor = std::make_unique<SecureMonitor>(*platform);
        hw::DeviceTree dt = platform->buildDeviceTree();
        hw::DeviceTree secure;
        for (auto node : dt.all()) {
            node.world = hw::World::Secure;
            secure.addNode(node);
        }
        monitor->boot(secure);
        spm = std::make_unique<Spm>(*monitor);
        auditor.attachSpm(*spm);
    }

    MosImage
    image(int i)
    {
        return MosImage{"gpu" + std::to_string(i) + ".mos", "gpu",
                        toBytes("code" + std::to_string(i))};
    }

    PartitionId
    partition(int i, uint64_t mem)
    {
        return spm->createPartition(image(i),
                                    "gpu" + std::to_string(i), mem)
            .value();
    }

    /**
     * Kill @p victims through the fault injector. The plan arms one
     * kill per victim, all triggered by the next checked read issued
     * by @p trigger_pid (a probe read of its own first page), so the
     * deaths land inside an SPM access like real faults do. Returns
     * the injection log (tBefore/tAfter bracket each kill).
     */
    std::vector<inject::FiredFault>
    injectKills(const std::vector<PartitionId> &victims,
                PartitionId trigger_pid)
    {
        inject::FaultPlan plan(7);
        for (PartitionId v : victims)
            plan.killOnAccess(
                1, v, inject::AccessFilter::readsBy(trigger_pid));
        inject::FaultInjector inj(*spm, plan);
        inj.arm();
        PhysAddr probe =
            spm->partition(trigger_pid).value()->memBase;
        (void)spm->read(trigger_pid, probe, 8);
        inj.disarm();
        return inj.fired();
    }

    /** Final audit; returns the number of violations recorded. */
    uint64_t
    audit()
    {
        (void)auditor.finalCheck();
        return auditor.violations().size();
    }
};

} // namespace

int
main()
{
    header("Ablation: proceed-trap failure recovery breakdown");

    uint64_t violations = 0;

    /* --- step 1: invalidation vs shared pages --- */
    std::printf("step 1 (invalidate stage-2 + SMMU) vs shared "
                "pages:\n%-12s %14s\n", "pages", "cost (us)");
    for (uint64_t pages : {1u, 4u, 16u, 64u, 256u}) {
        Rig rig(2);
        PartitionId a = rig.partition(0, 8ull << 20);
        PartitionId b = rig.partition(1, 8ull << 20);
        PhysAddr base = rig.spm->partition(a).value()->memBase;
        rig.spm->sharePages(a, b, base, pages);
        auto fired = rig.injectKills({a}, b);
        SimTime cost = fired.empty()
                           ? 0
                           : fired[0].tAfter - fired[0].tBefore;
        std::printf("%-12llu %14.2f\n",
                    static_cast<unsigned long long>(pages),
                    cost / 1000.0);
        /* Deliver the pending trap so the grant retires. */
        rig.spm->read(b, base, 8);
        violations += rig.audit();
    }

    /* --- step 2: clear + reload vs partition memory --- */
    std::printf("\nstep 2 (scrub + mOS reload) vs partition "
                "memory:\n%-12s %14s\n", "mem (MiB)", "cost (ms)");
    for (uint64_t mib : {8u, 16u, 32u, 64u}) {
        Rig rig(1);
        PartitionId a = rig.partition(0, mib << 20);
        rig.injectKills({a}, a);
        SimTime t0 = rig.platform->clock().now();
        rig.spm->recoverPartition(a, rig.image(0));
        std::printf("%-12llu %14.1f\n",
                    static_cast<unsigned long long>(mib),
                    (rig.platform->clock().now() - t0) /
                        double(kNsPerMs));
        violations += rig.audit();
    }

    /* --- concurrent failures --- */
    std::printf("\nconcurrent partition failures (serial vs "
                "concurrent step 2):\n%-10s %13s %13s\n",
                "failures", "serial (ms)", "concur (ms)");
    for (int n : {1, 2, 3, 4}) {
        SimTime serial, concurrent;
        {
            Rig rig(n);
            std::vector<PartitionId> pids;
            for (int i = 0; i < n; ++i)
                pids.push_back(rig.partition(i, 16ull << 20));
            rig.injectKills(pids, pids[0]);
            SimTime t0 = rig.platform->clock().now();
            for (int i = 0; i < n; ++i)
                rig.spm->recoverPartition(pids[i], rig.image(i));
            serial = rig.platform->clock().now() - t0;
            violations += rig.audit();
        }
        {
            Rig rig(n);
            std::vector<PartitionId> pids;
            std::vector<MosImage> images;
            for (int i = 0; i < n; ++i) {
                pids.push_back(rig.partition(i, 16ull << 20));
                images.push_back(rig.image(i));
            }
            rig.injectKills(pids, pids[0]);
            SimTime t0 = rig.platform->clock().now();
            rig.spm->recoverConcurrently(pids, images);
            concurrent = rig.platform->clock().now() - t0;
            violations += rig.audit();
        }
        std::printf("%-10d %13.1f %13.1f\n", n,
                    serial / double(kNsPerMs),
                    concurrent / double(kNsPerMs));
    }

    /* --- trap latency --- */
    {
        Rig rig(2);
        PartitionId a = rig.partition(0, 8ull << 20);
        PartitionId b = rig.partition(1, 8ull << 20);
        PhysAddr base = rig.spm->partition(a).value()->memBase;
        rig.spm->sharePages(a, b, base, 1);
        rig.injectKills({a}, b);
        SimTime t0 = rig.platform->clock().now();
        rig.spm->read(b, base, 8);  /* traps */
        std::printf("\ntrapped shared-memory access latency: "
                    "%.2f us\n",
                    (rig.platform->clock().now() - t0) / 1000.0);
        violations += rig.audit();
    }

    std::printf("\ninvariant audit across all rigs: %llu "
                "violation(s)\n",
                static_cast<unsigned long long>(violations));
    if (violations != 0) {
        std::printf("FAILED: invariant violations detected\n");
        return 1;
    }
    return 0;
}
