#!/usr/bin/env python3
"""Robustness gate for the multi-SoC cluster bench.

Reads the JSON written by `fig12_cluster --out` (schema
cronus-cluster-bench-v1) and enforces the fleet's survival
contract under the seeded node-fault plan:

  - zero acked-call loss (`ledger_violations == 0`): every call the
    frontend acked survived two node kills, a link partition, a
    drain, and the operator's rebalance migrations;
  - zero lost or cloned enclaves (`dead_enclaves == 0`,
    `unconverged_migrations == 0`);
  - zero unexpected call failures (`call_failures == 0` -- PeerFailed
    during the partition window is tolerated by the bench itself and
    never acked, so it does not count);
  - the whole fault plan actually fired (`fault_events_fired == 3`);
  - full (non-smoke) runs meet the scale floor: >= 8 nodes and
    >= 2000 enclaves.

Everything the bench measures is *virtual* time on the shared fleet
clock, so with --baseline BASELINE.json (the committed snapshot under
bench/baselines/) the deterministic counters must match the baseline
exactly -- any drift is a real behavioral change in placement,
migration, or recovery, never host jitter.
"""

import argparse
import json
import sys

SCHEMA = "cronus-cluster-bench-v1"

# Counters that must be zero in every run.
ZERO_GATES = (
    "ledger_violations",
    "call_failures",
    "dead_enclaves",
    "unconverged_migrations",
)

# Deterministic counters compared exactly against the baseline.
BASELINE_EXACT = (
    "acked_calls",
    "migrations_completed",
    "migrations_aborted",
    "drains",
    "fleet_quarantines",
    "replacements",
    "fault_events_fired",
    "end_time_ns",
)

MIN_NODES = 8
MIN_ENCLAVES = 2000
FAULT_EVENTS = 3


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("result", nargs="?", default="BENCH_cluster.json")
    ap.add_argument("--baseline", metavar="JSON",
                    help="committed snapshot to compare counters "
                         "against (bench/baselines/)")
    args = ap.parse_args()

    doc = load(args.result)
    failures = []

    if doc.get("schema") != SCHEMA:
        print(f"cluster gate FAILED: schema "
              f"{doc.get('schema')!r} != {SCHEMA!r}", file=sys.stderr)
        return 1

    for key in ZERO_GATES:
        val = doc.get(key)
        status = "ok" if val == 0 else "FAIL"
        print(f"{key}: {val} {status}")
        if val != 0:
            failures.append(f"{key}: {val} != 0")

    fired = doc.get("fault_events_fired")
    status = "ok" if fired == FAULT_EVENTS else "FAIL"
    print(f"fault_events_fired: {fired} (want {FAULT_EVENTS}) {status}")
    if fired != FAULT_EVENTS:
        failures.append(
            f"fault_events_fired: {fired} != {FAULT_EVENTS}")

    if not doc.get("smoke", False):
        nodes, enclaves = doc.get("nodes"), doc.get("enclaves")
        ok = nodes >= MIN_NODES and enclaves >= MIN_ENCLAVES
        print(f"scale: {nodes} nodes, {enclaves} enclaves "
              f"(floors {MIN_NODES}/{MIN_ENCLAVES}) "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"scale below floor: {nodes} nodes / "
                f"{enclaves} enclaves")

    if args.baseline:
        base = load(args.baseline)
        if base.get("smoke", False) != doc.get("smoke", False):
            failures.append("baseline smoke flag differs from result")
        for key in BASELINE_EXACT:
            got, want = doc.get(key), base.get(key)
            status = "ok" if got == want else "FAIL"
            print(f"  baseline {key}: {got} (want {want}) {status}")
            if got != want:
                failures.append(
                    f"{key}: {got} != baseline {want}")

    if failures:
        print("cluster gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("cluster gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
