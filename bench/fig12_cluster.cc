/**
 * @file
 * Figure 12: multi-SoC fleet under a seeded node-fault plan.
 *
 * Builds a Cluster of 8 CPU SoCs sharing one virtual clock, places
 * 2000 mEnclaves through the FleetDispatcher, and drives rounds of
 * authenticated accumulate calls while a seeded FaultPlan crashes
 * nodes mid-run (via the FleetInjector), operators drain nodes
 * under migration budgets, a link partition severs part of the
 * fabric, and a batch of live migrations rebalances the survivors.
 *
 * The bench keeps its own *acked-call ledger*: every call the fleet
 * acked is mirrored into an expected running total per enclave, and
 * after every perturbation -- node kill, drain, migration,
 * partition -- the next call's returned total must extend that
 * ledger exactly. Any deviation is a lost (or doubled) acked call
 * and the bench exits nonzero; the same self-audit requires every
 * enclave alive at the end and every cross-node migration to have
 * converged (one live copy, or a fleet re-placement).
 *
 * Everything is virtual time, so two runs are byte-identical and
 * the --out JSON (schema cronus-cluster-bench-v1) is exactly
 * reproducible; bench/check_cluster.py gates CI on it. `--smoke`
 * shrinks enclave count and rounds for the tier-1 lane (the node
 * count stays at 8 so the fault plan keeps its shape).
 */

#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cluster/cluster.hh"
#include "cluster/fleet_injector.hh"
#include "core/manifest.hh"

using namespace cronus;
using namespace cronus::cluster;

namespace
{

/* Small per-enclave quota so 2000 enclaves fit a partition budget:
 * 250 enclaves/node x 256K = 62.5M. */
constexpr uint64_t kEnclaveQuota = 256ull << 10;

void
registerBenchCpuFunctions()
{
    auto &reg = core::CpuFunctionRegistry::instance();
    if (reg.has("fleet_acc"))
        return;
    reg.registerFunction(
        "fleet_acc", [](core::CpuCallContext &ctx) {
            ByteReader r(ctx.args);
            auto delta = r.getU64();
            if (!delta.isOk())
                return Result<Bytes>(delta.status());
            uint64_t total = delta.value();
            auto it = ctx.store.find("total");
            if (it != ctx.store.end()) {
                ByteReader prev(it->second);
                total += prev.getU64().value();
            }
            ByteWriter w;
            w.putU64(total);
            ctx.store["total"] = w.data();
            ctx.charge(50);
            return Result<Bytes>(w.take());
        });
}

Bytes
benchImage()
{
    core::CpuImage image;
    image.exports = {"fleet_acc"};
    return image.serialize();
}

std::string
benchManifest()
{
    core::Manifest m;
    m.deviceType = "cpu";
    m.images["fleet.so"] =
        crypto::digestHex(crypto::sha256(benchImage()));
    m.mEcalls = {{"fleet_acc", false}};
    m.memoryBytes = kEnclaveQuota;
    return m.toJson();
}

struct Audit
{
    uint64_t ackedCalls = 0;
    uint64_t ledgerViolations = 0;
    uint64_t callFailures = 0;  ///< non-Ok outside partition windows
    uint64_t deadEnclaves = 0;
    uint64_t unconvergedMigrations = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            outPath = argv[++i];
    }

    const uint32_t kNodes = 8;
    const uint32_t kEnclaves = smoke ? 320 : 2000;
    const uint32_t kRounds = smoke ? 6 : 10;
    const uint32_t kCallsPerRound = smoke ? 160 : 1000;
    const uint64_t kFaultSeed = 12;

    std::printf("==================================================="
                "===========\n"
                "Figure 12: %u-node fleet, %u enclaves, seeded "
                "node-fault plan\n"
                "==================================================="
                "===========\n",
                kNodes, kEnclaves);

    Logger::instance().setQuiet(true);
    registerBenchCpuFunctions();

    ClusterConfig cc;
    cc.numNodes = kNodes;
    cc.nodeSystem.numGpus = 0;
    cc.nodeSystem.withNpu = false;
    /* Room for an uneven shard plus transient migration copies. */
    cc.nodeSystem.partitionMemBytes = 128ull << 20;
    cc.autoCheckpointEvery = 8;
    Cluster cl(cc);

    /* Seeded fault plan, all on the virtual timeline: two node
     * crashes while call rounds are running, and one severed peer
     * link. Virtual time makes the schedule exactly reproducible. */
    inject::FaultPlan plan(kFaultSeed);
    plan.killNodeAtTime(40 * kNsPerMs, "node2");
    plan.killNodeAtTime(90 * kNsPerMs, "node5");
    plan.partitionLinkAtTime(140 * kNsPerMs, "node0", "node1");
    FleetInjector injector(cl, plan);
    injector.arm();

    /* ---- placement: shard kEnclaves across the fleet ---- */
    const std::string manifest = benchManifest();
    const Bytes image = benchImage();
    std::vector<Fid> fids;
    fids.reserve(kEnclaves);
    for (uint32_t i = 0; i < kEnclaves; ++i) {
        auto fid = cl.placeEnclave(manifest, "fleet.so", image);
        if (!fid.isOk()) {
            std::printf("FAILED: placement %u: %s\n", i,
                        fid.status().toString().c_str());
            return 1;
        }
        fids.push_back(fid.value());
    }
    std::printf("placed %u enclaves in %llu ms of virtual time\n",
                kEnclaves,
                static_cast<unsigned long long>(cl.clock().now() /
                                                kNsPerMs));

    /* ---- the acked-call ledger ---- */
    std::map<Fid, uint64_t> ledger;
    Audit audit;
    Rng rng(kFaultSeed);

    auto callOne = [&](Fid fid, uint64_t delta) {
        ByteWriter w;
        w.putU64(delta);
        auto r = cl.call(fid, "fleet_acc", w.take());
        if (!r.isOk()) {
            /* Only PeerFailed during the (deliberate) partition
             * window is acceptable; the call was not acked, so the
             * ledger does not move. */
            if (r.code() != ErrorCode::PeerFailed)
                ++audit.callFailures;
            return;
        }
        ledger[fid] += delta;
        ++audit.ackedCalls;
        ByteReader rd(r.value());
        if (rd.getU64().value() != ledger[fid])
            ++audit.ledgerViolations;
    };

    /* ---- call rounds with the fault plan firing mid-run ---- */
    for (uint32_t round = 0; round < kRounds; ++round) {
        for (uint32_t c = 0; c < kCallsPerRound; ++c) {
            Fid fid = fids[rng.nextBelow(fids.size())];
            callOne(fid, 1 + rng.nextBelow(100));
        }
        injector.poll();
        cl.pump();

        /* Operator actions at fixed rounds, mirroring the paper's
         * maintenance story. */
        if (round == 2) {
            /* Drain a healthy node under a tight budget: the
             * overflow quarantines it and re-places cold. */
            DrainBudget tight;
            tight.maxMigrations = smoke ? 8 : 50;
            Status s = cl.drainNode(3, tight);
            if (!s.isOk())
                std::printf("drain node3: %s\n",
                            s.toString().c_str());
        }
        if (round == 4) {
            /* Recover one crashed node; leave the other down. */
            Status s = cl.recoverNode(2);
            if (!s.isOk())
                std::printf("recover node2: %s\n",
                            s.toString().c_str());
        }
        if (round == 5)
            cl.partitionLink(0, 1, false);  // heal the severed link
        if (round == 6) {
            /* Rebalance: live-migrate a slice of node 0's load onto
             * the recovered node. */
            auto residents = cl.enclavesOn(0);
            uint32_t moved = 0;
            for (Fid fid : residents) {
                if (moved >= (smoke ? 8u : 40u))
                    break;
                if (cl.migrateEnclave(fid, 2).isOk())
                    ++moved;
            }
        }
        injector.poll();
        cl.pump();
    }

    /* ---- final self-audit ---- */
    for (Fid fid : fids) {
        if (!cl.enclaveAlive(fid)) {
            ++audit.deadEnclaves;
            continue;
        }
        /* Zero acked-call loss: one more call must extend the
         * ledger exactly, node crashes and migrations included. */
        callOne(fid, 1);
    }
    for (const MigrationAudit &m : cl.migrations()) {
        if (m.src == m.dst)
            continue;
        if (!m.converged() &&
            !(!m.srcAlive && !m.dstAlive && cl.enclaveAlive(m.fid)))
            ++audit.unconvergedMigrations;
    }

    const SimTime endNs = cl.clock().now();
    std::printf("\nvirtual time: %llu ms, acked calls: %llu\n",
                static_cast<unsigned long long>(endNs / kNsPerMs),
                static_cast<unsigned long long>(audit.ackedCalls));
    std::printf("fleet: %llu placements, %llu migrations completed, "
                "%llu aborted, %llu drains, %llu quarantines, "
                "%llu cold re-placements\n",
                static_cast<unsigned long long>(cl.placements),
                static_cast<unsigned long long>(
                    cl.migrationsCompleted),
                static_cast<unsigned long long>(
                    cl.migrationsAborted),
                static_cast<unsigned long long>(cl.drains),
                static_cast<unsigned long long>(
                    cl.fleetQuarantines),
                static_cast<unsigned long long>(cl.replacements));
    std::printf("interconnect: %llu messages, %llu bytes, "
                "%llu attestations, %llu partition drops\n",
                static_cast<unsigned long long>(
                    cl.interconnect().messages),
                static_cast<unsigned long long>(
                    cl.interconnect().bytesMoved),
                static_cast<unsigned long long>(
                    cl.interconnect().attestations),
                static_cast<unsigned long long>(
                    cl.interconnect().partitionedDrops));
    std::printf("fault plan: %zu fleet event(s) fired\n",
                injector.fired().size());
    for (uint32_t id = 0; id < kNodes; ++id)
        std::printf("  node%u: %s, %llu enclave(s)\n", id,
                    nodeHealthName(cl.node(id).health()),
                    static_cast<unsigned long long>(
                        cl.node(id).liveEnclaves));

    bool failed = false;
    auto gate = [&](uint64_t bad, const char *what) {
        if (bad == 0)
            return;
        std::printf("FAILED: %llu %s\n",
                    static_cast<unsigned long long>(bad), what);
        failed = true;
    };
    gate(audit.ledgerViolations, "acked-call ledger violation(s)");
    gate(audit.callFailures, "unexpected call failure(s)");
    gate(audit.deadEnclaves, "dead enclave(s) at end of run");
    gate(audit.unconvergedMigrations, "unconverged migration(s)");
    if (injector.fired().size() != plan.events().size()) {
        std::printf("FAILED: fault plan only fired %zu/%zu events\n",
                    injector.fired().size(), plan.events().size());
        failed = true;
    }
    std::printf("\nself-audit: %s (zero acked-call loss %s)\n",
                failed ? "FAILED" : "PASSED",
                failed ? "violated" : "held");

    if (!outPath.empty()) {
        JsonObject root;
        root["schema"] = "cronus-cluster-bench-v1";
        root["smoke"] = smoke;
        root["nodes"] = static_cast<int64_t>(kNodes);
        root["enclaves"] = static_cast<int64_t>(kEnclaves);
        root["acked_calls"] =
            static_cast<int64_t>(audit.ackedCalls);
        root["ledger_violations"] =
            static_cast<int64_t>(audit.ledgerViolations);
        root["call_failures"] =
            static_cast<int64_t>(audit.callFailures);
        root["dead_enclaves"] =
            static_cast<int64_t>(audit.deadEnclaves);
        root["unconverged_migrations"] =
            static_cast<int64_t>(audit.unconvergedMigrations);
        root["migrations_completed"] =
            static_cast<int64_t>(cl.migrationsCompleted);
        root["migrations_aborted"] =
            static_cast<int64_t>(cl.migrationsAborted);
        root["drains"] = static_cast<int64_t>(cl.drains);
        root["fleet_quarantines"] =
            static_cast<int64_t>(cl.fleetQuarantines);
        root["replacements"] =
            static_cast<int64_t>(cl.replacements);
        root["fault_events_fired"] =
            static_cast<int64_t>(injector.fired().size());
        root["end_time_ns"] = static_cast<int64_t>(endNs);
        root["interconnect"] = cl.interconnect().report();
        std::ofstream out(outPath);
        if (!out) {
            std::printf("FAILED: cannot write %s\n",
                        outPath.c_str());
            failed = true;
        } else {
            out << JsonValue(root).dump() << "\n";
        }
    }
    bench::exportTraceIfEnabled("fig12_cluster.trace.json");
    return failed ? 1 : 0;
}
