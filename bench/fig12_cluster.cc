/**
 * @file
 * Figure 12: multi-SoC fleet under a seeded node-fault plan.
 *
 * Builds a Cluster of 8 CPU SoCs sharing one virtual clock, places
 * 2000 mEnclaves through the FleetDispatcher, and drives rounds of
 * authenticated accumulate calls while a seeded FaultPlan crashes
 * nodes mid-run (via the FleetInjector), operators drain nodes
 * under migration budgets, a link partition severs part of the
 * fabric, and a batch of live migrations rebalances the survivors.
 *
 * The bench keeps its own *acked-call ledger*: every call the fleet
 * acked is mirrored into an expected running total per enclave, and
 * after every perturbation -- node kill, drain, migration,
 * partition -- the next call's returned total must extend that
 * ledger exactly. Any deviation is a lost (or doubled) acked call
 * and the bench exits nonzero; the same self-audit requires every
 * enclave alive at the end and every cross-node migration to have
 * converged (one live copy, or a fleet re-placement).
 *
 * Everything is virtual time, so two runs are byte-identical and
 * the --out JSON (schema cronus-cluster-bench-v1) is exactly
 * reproducible; bench/check_cluster.py gates CI on it. `--smoke`
 * shrinks enclave count and rounds for the tier-1 lane (the node
 * count stays at 8 so the fault plan keeps its shape).
 *
 * Placements and call rounds go through the async fleet API
 * (placeEnclaveAsync / callAsync + flush), so CRONUS_PARALLEL=N
 * runs the same batches on N workers: stdout and --out JSON stay
 * byte-identical while wall-clock drops. `--perf-out FILE` writes a
 * host-time report (schema cronus-parallel-bench-v1) that
 * bench/check_substrate.py --parallel gates in CI; the wall-clock
 * note itself goes to stderr so stdout never depends on the host.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "cluster/cluster.hh"
#include "cluster/fleet_injector.hh"
#include "core/manifest.hh"

using namespace cronus;
using namespace cronus::cluster;

namespace
{

/* Small per-enclave quota so 2000 enclaves fit a partition budget:
 * 250 enclaves/node x 256K = 62.5M. */
constexpr uint64_t kEnclaveQuota = 256ull << 10;

void
registerBenchCpuFunctions()
{
    auto &reg = core::CpuFunctionRegistry::instance();
    if (reg.has("fleet_acc"))
        return;
    reg.registerFunction(
        "fleet_acc", [](core::CpuCallContext &ctx) {
            ByteReader r(ctx.args);
            auto delta = r.getU64();
            if (!delta.isOk())
                return Result<Bytes>(delta.status());
            uint64_t total = delta.value();
            auto it = ctx.store.find("total");
            if (it != ctx.store.end()) {
                ByteReader prev(it->second);
                total += prev.getU64().value();
            }
            ByteWriter w;
            w.putU64(total);
            ctx.store["total"] = w.data();
            ctx.charge(50);
            return Result<Bytes>(w.take());
        });
}

Bytes
benchImage()
{
    core::CpuImage image;
    image.exports = {"fleet_acc"};
    return image.serialize();
}

std::string
benchManifest()
{
    core::Manifest m;
    m.deviceType = "cpu";
    m.images["fleet.so"] =
        crypto::digestHex(crypto::sha256(benchImage()));
    m.mEcalls = {{"fleet_acc", false}};
    m.memoryBytes = kEnclaveQuota;
    return m.toJson();
}

struct Audit
{
    uint64_t ackedCalls = 0;
    uint64_t ledgerViolations = 0;
    uint64_t callFailures = 0;  ///< non-Ok outside partition windows
    uint64_t deadEnclaves = 0;
    uint64_t unconvergedMigrations = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath;
    std::string perfOutPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            outPath = argv[++i];
        else if (std::strcmp(argv[i], "--perf-out") == 0 &&
                 i + 1 < argc)
            perfOutPath = argv[++i];
    }

    const uint32_t kNodes = 8;
    const uint32_t kEnclaves = smoke ? 320 : 2000;
    const uint32_t kRounds = smoke ? 6 : 10;
    const uint32_t kCallsPerRound = smoke ? 160 : 1000;
    const uint64_t kFaultSeed = 12;

    std::printf("==================================================="
                "===========\n"
                "Figure 12: %u-node fleet, %u enclaves, seeded "
                "node-fault plan\n"
                "==================================================="
                "===========\n",
                kNodes, kEnclaves);

    Logger::instance().setQuiet(true);
    registerBenchCpuFunctions();

    ClusterConfig cc;
    cc.numNodes = kNodes;
    cc.nodeSystem.numGpus = 0;
    cc.nodeSystem.withNpu = false;
    /* Room for an uneven shard plus transient migration copies. */
    cc.nodeSystem.partitionMemBytes = 128ull << 20;
    cc.autoCheckpointEvery = 8;
    Cluster cl(cc);

    /* Seeded fault plan, all on the virtual timeline: two node
     * crashes while call rounds are running, and one severed peer
     * link. Virtual time makes the schedule exactly reproducible. */
    inject::FaultPlan plan(kFaultSeed);
    plan.killNodeAtTime(40 * kNsPerMs, "node2");
    plan.killNodeAtTime(90 * kNsPerMs, "node5");
    plan.partitionLinkAtTime(140 * kNsPerMs, "node0", "node1");
    FleetInjector injector(cl, plan);
    injector.arm();

    /* Host-clock instrumentation (stderr + --perf-out only; stdout
     * carries virtual time exclusively, so it is byte-identical
     * across worker counts and machines). `issued` counts the async
     * fleet operations the bench itself batched -- the same number
     * in serial and parallel mode. */
    const auto wallStart = std::chrono::steady_clock::now();
    uint64_t issued = 0;

    /* ---- placement: shard kEnclaves across the fleet ----
     * One async batch: decisions are made at issue time by the
     * dispatcher, so the shard layout is identical to the serial
     * loop; the expensive attested creations run per-node. */
    const std::string manifest = benchManifest();
    const Bytes image = benchImage();
    std::vector<Fid> fids;
    fids.reserve(kEnclaves);
    bool placementFailed = false;
    for (uint32_t i = 0; i < kEnclaves; ++i) {
        cl.placeEnclaveAsync(
            manifest, "fleet.so", image,
            [&, i](const Result<Fid> &fid) {
                if (!fid.isOk()) {
                    if (!placementFailed)
                        std::printf("FAILED: placement %u: %s\n", i,
                                    fid.status().toString().c_str());
                    placementFailed = true;
                    return;
                }
                fids.push_back(fid.value());
            });
        ++issued;
        if (placementFailed)
            return 1;
    }
    cl.flush();
    if (placementFailed)
        return 1;
    std::printf("placed %u enclaves in %llu ms of virtual time\n",
                kEnclaves,
                static_cast<unsigned long long>(cl.clock().now() /
                                                kNsPerMs));

    /* ---- the acked-call ledger ---- */
    std::map<Fid, uint64_t> ledger;
    Audit audit;
    Rng rng(kFaultSeed);

    /* Issue one accumulate call; the ledger bookkeeping runs in the
     * completion callback, which fires at commit time in issue
     * order -- the exact order the serial loop audited in. */
    auto callOne = [&](Fid fid, uint64_t delta) {
        ByteWriter w;
        w.putU64(delta);
        ++issued;
        cl.callAsync(
            fid, "fleet_acc", w.take(),
            [&, fid, delta](const Result<Bytes> &r) {
                if (!r.isOk()) {
                    /* Only PeerFailed during the (deliberate)
                     * partition window is acceptable; the call was
                     * not acked, so the ledger does not move. */
                    if (r.code() != ErrorCode::PeerFailed)
                        ++audit.callFailures;
                    return;
                }
                ledger[fid] += delta;
                ++audit.ackedCalls;
                ByteReader rd(r.value());
                if (rd.getU64().value() != ledger[fid])
                    ++audit.ledgerViolations;
            });
    };

    /* ---- call rounds with the fault plan firing mid-run ----
     * Each round's calls form one batch; the flush barrier sits
     * before the injector poll, so node health is constant within a
     * batch (the conservative rule the engine relies on). */
    for (uint32_t round = 0; round < kRounds; ++round) {
        for (uint32_t c = 0; c < kCallsPerRound; ++c) {
            Fid fid = fids[rng.nextBelow(fids.size())];
            callOne(fid, 1 + rng.nextBelow(100));
        }
        cl.flush();
        injector.poll();
        cl.pump();

        /* Operator actions at fixed rounds, mirroring the paper's
         * maintenance story. */
        if (round == 2) {
            /* Drain a healthy node under a tight budget: the
             * overflow quarantines it and re-places cold. */
            DrainBudget tight;
            tight.maxMigrations = smoke ? 8 : 50;
            Status s = cl.drainNode(3, tight);
            if (!s.isOk())
                std::printf("drain node3: %s\n",
                            s.toString().c_str());
        }
        if (round == 4) {
            /* Recover one crashed node; leave the other down. */
            Status s = cl.recoverNode(2);
            if (!s.isOk())
                std::printf("recover node2: %s\n",
                            s.toString().c_str());
        }
        if (round == 5)
            cl.partitionLink(0, 1, false);  // heal the severed link
        if (round == 6) {
            /* Rebalance: live-migrate a slice of node 0's load onto
             * the recovered node. */
            auto residents = cl.enclavesOn(0);
            uint32_t moved = 0;
            for (Fid fid : residents) {
                if (moved >= (smoke ? 8u : 40u))
                    break;
                if (cl.migrateEnclave(fid, 2).isOk())
                    ++moved;
            }
        }
        injector.poll();
        cl.pump();
    }

    /* ---- final self-audit (one more batch) ---- */
    for (Fid fid : fids) {
        if (!cl.enclaveAlive(fid)) {
            ++audit.deadEnclaves;
            continue;
        }
        /* Zero acked-call loss: one more call must extend the
         * ledger exactly, node crashes and migrations included. */
        callOne(fid, 1);
    }
    cl.flush();
    for (const MigrationAudit &m : cl.migrations()) {
        if (m.src == m.dst)
            continue;
        if (!m.converged() &&
            !(!m.srcAlive && !m.dstAlive && cl.enclaveAlive(m.fid)))
            ++audit.unconvergedMigrations;
    }

    const SimTime endNs = cl.clock().now();
    const auto wallEnd = std::chrono::steady_clock::now();
    const double wallMs =
        std::chrono::duration<double, std::milli>(wallEnd -
                                                  wallStart)
            .count();
    std::printf("\nvirtual time: %llu ms, acked calls: %llu\n",
                static_cast<unsigned long long>(endNs / kNsPerMs),
                static_cast<unsigned long long>(audit.ackedCalls));
    std::printf("fleet: %llu placements, %llu migrations completed, "
                "%llu aborted, %llu drains, %llu quarantines, "
                "%llu cold re-placements\n",
                static_cast<unsigned long long>(cl.placements),
                static_cast<unsigned long long>(
                    cl.migrationsCompleted),
                static_cast<unsigned long long>(
                    cl.migrationsAborted),
                static_cast<unsigned long long>(cl.drains),
                static_cast<unsigned long long>(
                    cl.fleetQuarantines),
                static_cast<unsigned long long>(cl.replacements));
    std::printf("interconnect: %llu messages, %llu bytes, "
                "%llu attestations, %llu partition drops\n",
                static_cast<unsigned long long>(
                    cl.interconnect().messages),
                static_cast<unsigned long long>(
                    cl.interconnect().bytesMoved),
                static_cast<unsigned long long>(
                    cl.interconnect().attestations),
                static_cast<unsigned long long>(
                    cl.interconnect().partitionedDrops));
    std::printf("fault plan: %zu fleet event(s) fired\n",
                injector.fired().size());
    for (uint32_t id = 0; id < kNodes; ++id)
        std::printf("  node%u: %s, %llu enclave(s)\n", id,
                    nodeHealthName(cl.node(id).health()),
                    static_cast<unsigned long long>(
                        cl.node(id).liveEnclaves));

    bool failed = false;
    auto gate = [&](uint64_t bad, const char *what) {
        if (bad == 0)
            return;
        std::printf("FAILED: %llu %s\n",
                    static_cast<unsigned long long>(bad), what);
        failed = true;
    };
    gate(audit.ledgerViolations, "acked-call ledger violation(s)");
    gate(audit.callFailures, "unexpected call failure(s)");
    gate(audit.deadEnclaves, "dead enclave(s) at end of run");
    gate(audit.unconvergedMigrations, "unconverged migration(s)");
    if (injector.fired().size() != plan.events().size()) {
        std::printf("FAILED: fault plan only fired %zu/%zu events\n",
                    injector.fired().size(), plan.events().size());
        failed = true;
    }
    std::printf("\nself-audit: %s (zero acked-call loss %s)\n",
                failed ? "FAILED" : "PASSED",
                failed ? "violated" : "held");

    if (!outPath.empty()) {
        JsonObject root;
        root["schema"] = "cronus-cluster-bench-v1";
        root["smoke"] = smoke;
        root["nodes"] = static_cast<int64_t>(kNodes);
        root["enclaves"] = static_cast<int64_t>(kEnclaves);
        root["acked_calls"] =
            static_cast<int64_t>(audit.ackedCalls);
        root["ledger_violations"] =
            static_cast<int64_t>(audit.ledgerViolations);
        root["call_failures"] =
            static_cast<int64_t>(audit.callFailures);
        root["dead_enclaves"] =
            static_cast<int64_t>(audit.deadEnclaves);
        root["unconverged_migrations"] =
            static_cast<int64_t>(audit.unconvergedMigrations);
        root["migrations_completed"] =
            static_cast<int64_t>(cl.migrationsCompleted);
        root["migrations_aborted"] =
            static_cast<int64_t>(cl.migrationsAborted);
        root["drains"] = static_cast<int64_t>(cl.drains);
        root["fleet_quarantines"] =
            static_cast<int64_t>(cl.fleetQuarantines);
        root["replacements"] =
            static_cast<int64_t>(cl.replacements);
        root["fault_events_fired"] =
            static_cast<int64_t>(injector.fired().size());
        root["end_time_ns"] = static_cast<int64_t>(endNs);
        root["interconnect"] = cl.interconnect().report();
        std::ofstream out(outPath);
        if (!out) {
            std::printf("FAILED: cannot write %s\n",
                        outPath.c_str());
            failed = true;
        } else {
            out << JsonValue(root).dump() << "\n";
        }
    }

    /* Host-clock report: stderr note + optional --perf-out JSON.
     * Never printed to stdout -- CI byte-diffs stdout across worker
     * counts, and the wall clock is the one thing allowed to vary. */
    const double eventsPerSec =
        wallMs > 0.0 ? static_cast<double>(issued) * 1000.0 / wallMs
                     : 0.0;
    std::fprintf(stderr,
                 "host-time: %.1f ms wall, %llu events issued, "
                 "%.0f events/sec, %u workers\n",
                 wallMs, static_cast<unsigned long long>(issued),
                 eventsPerSec, cl.executor().workers());
    if (!perfOutPath.empty()) {
        JsonObject perf;
        perf["schema"] = "cronus-parallel-bench-v1";
        perf["smoke"] = smoke;
        perf["workers"] =
            static_cast<int64_t>(cl.executor().workers());
        perf["host_cpus"] = static_cast<int64_t>(
            std::thread::hardware_concurrency());
        perf["wall_ms"] = wallMs;
        perf["events"] = static_cast<int64_t>(issued);
        perf["events_committed"] = static_cast<int64_t>(
            cl.executor().eventsCommitted());
        perf["events_discarded"] = static_cast<int64_t>(
            cl.executor().eventsDiscarded());
        perf["batches"] =
            static_cast<int64_t>(cl.executor().batches());
        perf["max_local_advance_ns"] = static_cast<int64_t>(
            cl.executor().maxLocalAdvanceNs());
        perf["events_per_sec"] = eventsPerSec;
        perf["end_time_ns"] = static_cast<int64_t>(endNs);
        perf["acked_calls"] =
            static_cast<int64_t>(audit.ackedCalls);
        std::ofstream pout(perfOutPath);
        if (!pout) {
            std::printf("FAILED: cannot write %s\n",
                        perfOutPath.c_str());
            failed = true;
        } else {
            pout << JsonValue(perf).dump() << "\n";
        }
    }
    bench::exportTraceIfEnabled("fig12_cluster.trace.json");
    return failed ? 1 : 0;
}
