/**
 * @file
 * Table II: the prototyped system's configuration.
 *
 * The paper's Table II lists the host/guest testbed. Our "testbed"
 * is the simulated platform; this binary prints its full
 * configuration -- memory map, devices, and the calibrated cost
 * model -- so any reported number can be traced to its inputs.
 */

#include "bench_util.hh"
#include "core/system.hh"

using namespace cronus;
using namespace cronus::bench;

int
main()
{
    Logger::instance().setQuiet(true);
    header("Table II: simulated platform configuration");

    core::CronusSystem system;
    hw::Platform &plat = system.platform();

    std::printf("%-28s %s\n", "platform", "simulated TrustZone + "
                                          "S-EL2 (deterministic)");
    std::printf("%-28s %llu MiB normal + %llu MiB secure\n",
                "DRAM",
                static_cast<unsigned long long>(plat.normalSize() >>
                                                20),
                static_cast<unsigned long long>(plat.secureSize() >>
                                                20));

    std::printf("\ndevices (from the frozen DT):\n");
    hw::DeviceTree dt = system.monitor().deviceTree();
    for (const auto &node : dt.all()) {
        std::printf("  %-8s %-22s irq=%-3u %s%s\n",
                    node.name.c_str(), node.compatible.c_str(),
                    node.irq,
                    node.world == hw::World::Secure ? "secure"
                                                    : "normal",
                    node.memBytes
                        ? (" mem=" +
                           std::to_string(node.memBytes >> 20) +
                           "MiB").c_str()
                        : "");
    }

    const CostModel &costs = plat.costs();
    std::printf("\ncost model (virtual ns):\n");
    std::printf("  %-28s %llu\n", "world switch",
                static_cast<unsigned long long>(costs.worldSwitchNs));
    std::printf("  %-28s %llu\n", "S-EL2 RPC leg (4 switches)",
                static_cast<unsigned long long>(
                    costs.sel2RpcSwitchNs));
    std::printf("  %-28s %llu\n", "stage-2 PTE update",
                static_cast<unsigned long long>(
                    costs.pageTableUpdateNs));
    std::printf("  %-28s %llu\n", "GPU kernel submit (driver)",
                static_cast<unsigned long long>(costs.gpuSubmitNs));
    std::printf("  %-28s %.2f / %.2f\n",
                "memcpy / DMA (ns per byte)", costs.memcpyNsPerByte,
                costs.dmaNsPerByte);
    std::printf("  %-28s %.2f / %.2f\n",
                "AES / HMAC (ns per byte)", costs.aesNsPerByte,
                costs.hmacNsPerByte);
    std::printf("  %-28s %llu ms\n", "mOS (re)boot",
                static_cast<unsigned long long>(costs.mosBootNs /
                                                kNsPerMs));
    std::printf("  %-28s %llu s\n", "machine reboot comparator",
                static_cast<unsigned long long>(
                    costs.machineRebootNs / kNsPerSec));

    std::printf("\npartitions at boot:\n%s\n",
                system.statsReport()["partitions"].dump().c_str());
    return 0;
}
