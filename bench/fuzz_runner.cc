/**
 * @file
 * CLI front-end for the deterministic scenario fuzzer (src/fuzz/).
 *
 *   fuzz_runner                     run the default 50-seed corpus
 *   fuzz_runner --runs N            run seeds 1..N
 *   fuzz_runner --seed S            run one seed (prints the trace)
 *   fuzz_runner --replay FILE       re-run a scenario or trace JSON
 *   fuzz_runner --plant-bug         enable the test-only planted bug
 *   fuzz_runner --no-shrink         skip minimization on failure
 *   fuzz_runner --diff-backends     replay N coverage-scheduled
 *                                   seeds on both isolation
 *                                   substrates (tz and pmp) and
 *                                   flag any verdict divergence
 *   fuzz_runner --scheduled         use coverage-guided seed
 *                                   scheduling for the oracle corpus
 *                                   instead of the sequential walk
 *   fuzz_runner --cluster           generate multi-SoC fleet
 *                                   scenarios (fleet calls, live
 *                                   migration, node kill/drain)
 *                                   instead of single-node ones;
 *                                   composes with --runs, --seed
 *                                   and --diff-backends
 *   fuzz_runner --jobs N            run corpus seeds on N host
 *                                   threads; every seed owns its own
 *                                   simulated universe, so verdicts,
 *                                   stdout and exit code are
 *                                   byte-identical to --jobs 1
 *   fuzz_runner --verdicts FILE     write one "seed=S PASS|FAIL
 *                                   oracles" line per corpus seed
 *                                   (runs the whole corpus even
 *                                   past a failure, so the file is
 *                                   diffable across --jobs values)
 *
 * On any oracle failure it prints the seed, the failure list, the
 * full decision trace and (unless --no-shrink) the greedily
 * minimized repro scenario, then exits 1. The printed trace/minimal
 * JSON can be fed straight back to --replay.
 *
 * A failing --replay additionally runs with full tracing enabled and
 * writes FILE.trace.json (Perfetto trace of every replay run) and
 * FILE.flight.json (the flight-recorder tail of the faulted run)
 * next to the input, so a shrunken repro comes with its timeline.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "base/parallel.hh"
#include "fuzz/fuzz.hh"
#include "fuzz/scheduler.hh"
#include "obs/trace.hh"

using namespace cronus;
using namespace cronus::fuzz;

namespace
{

void
printFailure(const FuzzReport &rep)
{
    std::printf("FAIL seed=%llu (%zu oracle failure%s)\n",
                static_cast<unsigned long long>(rep.seed),
                rep.failures.size(),
                rep.failures.size() == 1 ? "" : "s");
    for (const FuzzFailure &f : rep.failures)
        std::printf("  [%s] %s\n", f.oracle.c_str(),
                    f.detail.c_str());
    std::printf("--- trace ---\n%s\n", rep.trace.dump().c_str());
    if (rep.shrunk)
        std::printf("--- minimal repro (%zu ops) ---\n%s\n",
                    rep.minimal.ops.size(),
                    rep.minimal.toJson().dump().c_str());
}

/** "seed=S PASS" or "seed=S FAIL oracle1,oracle2" (oracle names
 *  sorted and deduplicated, so the line is order-independent). */
std::string
verdictLine(uint64_t seed, const FuzzReport &rep)
{
    std::string line =
        "seed=" + std::to_string(seed) + (rep.ok ? " PASS" : " FAIL ");
    if (rep.ok)
        return line;
    std::set<std::string> oracles;
    for (const FuzzFailure &f : rep.failures)
        oracles.insert(f.oracle);
    bool first = true;
    for (const std::string &o : oracles) {
        if (!first)
            line += ",";
        line += o;
        first = false;
    }
    return line;
}

int
replayFile(const std::string &path, const FuzzOptions &opts)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto sc = Scenario::parse(text.str());
    if (!sc.isOk()) {
        std::fprintf(stderr, "cannot parse %s: %s\n", path.c_str(),
                     sc.status().toString().c_str());
        return 2;
    }
    /* A replay is a debugging session: trace it fully so a failure
     * leaves a Perfetto timeline behind. */
    auto &tracer = obs::Tracer::instance();
    tracer.ensureMode(obs::TraceMode::Full);
    tracer.clear();
    FuzzReport rep = fuzzScenario(sc.value(), opts);
    if (!rep.ok) {
        printFailure(rep);
        const std::string tracePath = path + ".trace.json";
        Status ws = tracer.writeTraceFile(tracePath);
        if (ws.isOk())
            std::printf("trace written to %s\n", tracePath.c_str());
        else
            std::fprintf(stderr, "cannot write %s: %s\n",
                         tracePath.c_str(), ws.toString().c_str());
        const std::string flightPath = path + ".flight.json";
        std::ofstream fout(flightPath);
        if (fout) {
            fout << rep.flight.dump() << "\n";
            std::printf("flight recorder written to %s\n",
                        flightPath.c_str());
        } else {
            std::fprintf(stderr, "cannot write %s\n",
                         flightPath.c_str());
        }
        return 1;
    }
    std::printf("PASS replay of %s (seed=%llu, %zu ops)\n",
                path.c_str(),
                static_cast<unsigned long long>(rep.seed),
                sc.value().ops.size());
    return 0;
}

/**
 * Differential substrate mode: coverage-scheduled seeds, each
 * replayed on the TrustZone and the PMP backend; any field-level
 * verdict mismatch is a divergence (and an exit-1 failure). Run
 * results feed behaviour edges back into the scheduler, so the
 * corpus drifts toward scenarios with novel outcome paths.
 */
int
runDiffBackends(size_t runs, bool cluster)
{
    SeedScheduler sched;
    size_t divergent = 0;
    for (size_t i = 0; i < runs; ++i) {
        uint64_t seed = sched.next();
        Scenario sc = cluster ? generateClusterScenario(seed)
                              : generateScenario(seed);
        DiffReport rep = diffBackends(sc);

        CoverageSet edges = scenarioEdges(sc);
        for (const OpRecord &r : rep.tz.records)
            edges.insert(behaviorEdge(r.kind, r.code, r.blocked));
        for (const OpRecord &r : rep.pmp.records)
            edges.insert(behaviorEdge(r.kind, r.code, r.blocked));
        sched.feedback(seed, edges);

        if (!rep.ok) {
            ++divergent;
            std::printf(
                "DIVERGENCE seed=%llu (%zu field%s differ)\n",
                static_cast<unsigned long long>(seed),
                rep.divergences.size(),
                rep.divergences.size() == 1 ? "" : "s");
            for (const std::string &d : rep.divergences)
                std::printf("  %s\n", d.c_str());
            std::printf("--- scenario ---\n%s\n",
                        sc.toJson().dump().c_str());
        }
        if ((i + 1) % 25 == 0 || i + 1 == runs)
            std::printf("... %zu/%zu seeds diffed (%zu edges, "
                        "%zu deduped)\n",
                        i + 1, runs, sched.edgesCovered(),
                        sched.deduped());
    }
    if (divergent) {
        std::printf("FAIL %zu/%zu scheduled seeds diverged between "
                    "backends\n",
                    divergent, runs);
        return 1;
    }
    std::printf("PASS %zu scheduled seeds, tz and pmp verdicts "
                "identical\n",
                runs);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions opts;
    uint64_t seed = 0;
    bool haveSeed = false;
    size_t runs = 50;
    bool haveRuns = false;
    bool diffMode = false;
    bool scheduled = false;
    bool cluster = false;
    unsigned jobs = 1;
    std::string replayPath;
    std::string verdictsPath;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 0);
            haveSeed = true;
        } else if (arg == "--runs") {
            runs = std::strtoull(next(), nullptr, 0);
            haveRuns = true;
        } else if (arg == "--replay") {
            replayPath = next();
        } else if (arg == "--plant-bug") {
            opts.plantBug = true;
        } else if (arg == "--no-shrink") {
            opts.shrink = false;
        } else if (arg == "--diff-backends") {
            diffMode = true;
        } else if (arg == "--scheduled") {
            scheduled = true;
        } else if (arg == "--cluster") {
            cluster = true;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 0));
            if (jobs == 0)
                jobs = 1;
        } else if (arg == "--verdicts") {
            verdictsPath = next();
        } else {
            std::fprintf(stderr,
                         "usage: fuzz_runner [--seed S] [--runs N] "
                         "[--replay FILE] [--plant-bug] "
                         "[--no-shrink] [--diff-backends] "
                         "[--scheduled] [--cluster] [--jobs N] "
                         "[--verdicts FILE]\n");
            return 2;
        }
    }

    /* In cluster mode every seed goes through the fleet scenario
     * generator; the oracle/shrink/diff pipeline is unchanged. */
    auto runSeed = [&](uint64_t s) {
        return cluster ? fuzzScenario(generateClusterScenario(s), opts)
                       : fuzzSeed(s, opts);
    };

    if (!replayPath.empty())
        return replayFile(replayPath, opts);

    if (diffMode)
        return runDiffBackends(runs, cluster);

    if (haveSeed && !haveRuns) {
        FuzzReport rep = runSeed(seed);
        if (!rep.ok) {
            printFailure(rep);
            return 1;
        }
        std::printf("PASS seed=%llu\n%s\n",
                    static_cast<unsigned long long>(seed),
                    rep.trace.dump().c_str());
        return 0;
    }

    const std::vector<uint64_t> corpus =
        scheduled ? scheduleCorpus(runs) : defaultCorpus(runs);

    auto reproHint = [&](uint64_t s) {
        std::printf("reproduce with: fuzz_runner --seed %llu%s%s\n",
                    static_cast<unsigned long long>(s),
                    cluster ? " --cluster" : "",
                    opts.plantBug ? " --plant-bug" : "");
    };

    if (jobs > 1 || !verdictsPath.empty()) {
        /* Batched mode: run the whole corpus (each seed owns its
         * own simulated universe; the worker threads share nothing
         * but the tracer/logger singletons, which lock), then replay
         * the serial reporting logic over the collected reports --
         * stdout, exit code and the verdict file are byte-identical
         * whatever the job count. */
        std::vector<FuzzReport> reports(corpus.size());
        std::vector<std::function<void()>> tasks;
        tasks.reserve(corpus.size());
        for (size_t i = 0; i < corpus.size(); ++i)
            tasks.push_back(
                [&, i] { reports[i] = runSeed(corpus[i]); });
        runTasks(jobs, tasks);

        if (!verdictsPath.empty()) {
            std::ofstream vout(verdictsPath);
            if (!vout) {
                std::fprintf(stderr, "cannot write %s\n",
                             verdictsPath.c_str());
                return 2;
            }
            for (size_t i = 0; i < corpus.size(); ++i)
                vout << verdictLine(corpus[i], reports[i]) << "\n";
        }

        size_t done = 0;
        for (size_t i = 0; i < corpus.size(); ++i) {
            if (!reports[i].ok) {
                printFailure(reports[i]);
                reproHint(corpus[i]);
                return 1;
            }
            ++done;
            if (done % 25 == 0 || done == runs)
                std::printf("... %zu/%zu seeds ok\n", done, runs);
        }
        std::printf("PASS %zu seeds, no oracle failures\n", done);
        return 0;
    }

    size_t done = 0;
    for (uint64_t s : corpus) {
        FuzzReport rep = runSeed(s);
        if (!rep.ok) {
            printFailure(rep);
            reproHint(s);
            return 1;
        }
        ++done;
        if (done % 25 == 0 || done == runs)
            std::printf("... %zu/%zu seeds ok\n", done, runs);
    }
    std::printf("PASS %zu seeds, no oracle failures\n", done);
    return 0;
}
