#!/usr/bin/env python3
"""Perf-smoke gate for the memory fast path.

Reads the google-benchmark JSON written by `micro_substrate`
(BENCH_substrate.json) and compares each fast-path benchmark's
TLB-off variant (/0) against its TLB-on variant (/1). A single run
contains both: the benches flip the software TLB per measurement.

Fails (exit 1) if the TLB-on variant is slower than the floor for
its family. The SPM copy benches are translation-bound and must show
a real multiple; the sRPC per-call benches are dominated by fixed
executor cost (see DESIGN.md section 8), so their floor only asserts
the fast path never regresses below the uncached walk.

With --baseline BASELINE.json (normally the committed snapshot under
bench/baselines/), each family's measured off/on ratio is also
compared against the baseline's ratio. Ratios are machine-relative
-- both sides of the division come from the same run -- so they
transfer across hosts far better than absolute nanoseconds, but CI
runners still jitter; the gate therefore only fires when a family
keeps less than BASELINE_KEEP (half) of its baseline speedup.
"""

import argparse
import json
import sys

# family -> minimum required off/on real_time ratio
FLOORS = {
    "BM_SpmRead": 2.0,
    "BM_SpmWrite": 2.0,
    "BM_SrpcCallSync": 1.0,
    "BM_SrpcCallAsync": 1.0,
}

# Fraction of the baseline off/on ratio that must survive.
BASELINE_KEEP = 0.5


def load_times(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        times[b.get("name", "")] = float(b["real_time"])
    return times


def ratio_of(times, family):
    off = times.get(f"{family}/0")
    on = times.get(f"{family}/1")
    if off is None or on is None:
        return None
    return off / on if on > 0 else float("inf")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("result", nargs="?",
                    default="BENCH_substrate.json")
    ap.add_argument("--baseline", metavar="JSON",
                    help="committed snapshot to compare ratios "
                         "against (bench/baselines/)")
    args = ap.parse_args()

    times = load_times(args.result)
    base = load_times(args.baseline) if args.baseline else None
    failures = []
    for family, floor in FLOORS.items():
        ratio = ratio_of(times, family)
        if ratio is None:
            failures.append(f"{family}: missing /0 or /1 result")
            continue
        off = times[f"{family}/0"]
        on = times[f"{family}/1"]
        status = "ok" if ratio >= floor else "FAIL"
        print(f"{family}: off={off:.1f}ns on={on:.1f}ns "
              f"ratio={ratio:.2f}x (floor {floor:.1f}x) {status}")
        if ratio < floor:
            failures.append(
                f"{family}: {ratio:.2f}x < required {floor:.1f}x")
        if base is None:
            continue
        base_ratio = ratio_of(base, family)
        if base_ratio is None:
            failures.append(
                f"{family}: missing from baseline {args.baseline}")
            continue
        need = base_ratio * BASELINE_KEEP
        kept = "ok" if ratio >= need else "FAIL"
        print(f"  baseline ratio {base_ratio:.2f}x, must keep "
              f">= {need:.2f}x {kept}")
        if ratio < need:
            failures.append(
                f"{family}: {ratio:.2f}x lost more than half of "
                f"baseline {base_ratio:.2f}x")
    if failures:
        print("perf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("perf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
