#!/usr/bin/env python3
"""Perf-smoke gate for the memory fast path.

Reads the google-benchmark JSON written by `micro_substrate`
(BENCH_substrate.json) and compares each fast-path benchmark's
TLB-off variant (/0) against its TLB-on variant (/1). A single run
contains both: the benches flip the software TLB per measurement.

Fails (exit 1) if the TLB-on variant is slower than the floor for
its family. The SPM copy benches are translation-bound and must show
a real multiple; the sRPC per-call benches are dominated by fixed
executor cost (see DESIGN.md section 8), so their floor only asserts
the fast path never regresses below the uncached walk.
"""

import json
import sys

# family -> minimum required off/on real_time ratio
FLOORS = {
    "BM_SpmRead": 2.0,
    "BM_SpmWrite": 2.0,
    "BM_SrpcCallSync": 1.0,
    "BM_SrpcCallAsync": 1.0,
}


def main(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate":
            continue
        times[name] = float(b["real_time"])
    failures = []
    for family, floor in FLOORS.items():
        off = times.get(f"{family}/0")
        on = times.get(f"{family}/1")
        if off is None or on is None:
            failures.append(f"{family}: missing /0 or /1 result")
            continue
        ratio = off / on if on > 0 else float("inf")
        status = "ok" if ratio >= floor else "FAIL"
        print(f"{family}: off={off:.1f}ns on={on:.1f}ns "
              f"ratio={ratio:.2f}x (floor {floor:.1f}x) {status}")
        if ratio < floor:
            failures.append(
                f"{family}: {ratio:.2f}x < required {floor:.1f}x")
    if failures:
        print("perf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("perf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1
                  else "BENCH_substrate.json"))
