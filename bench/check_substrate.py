#!/usr/bin/env python3
"""Perf-smoke gate for the memory fast path.

Reads the google-benchmark JSON written by `micro_substrate`
(BENCH_substrate.json) and compares each fast-path benchmark's
TLB-off variant (/0) against its TLB-on variant (/1). A single run
contains both: the benches flip the software TLB per measurement.

Fails (exit 1) if the TLB-on variant is slower than the floor for
its family. The SPM copy benches are translation-bound and must show
a real multiple; the sRPC per-call benches are dominated by fixed
executor cost (see DESIGN.md section 8), so their floor only asserts
the fast path never regresses below the uncached walk.

With --baseline BASELINE.json (normally the committed snapshot under
bench/baselines/), each family's measured off/on ratio is also
compared against the baseline's ratio. Ratios are machine-relative
-- both sides of the division come from the same run -- so they
transfer across hosts far better than absolute nanoseconds, but CI
runners still jitter; the gate therefore only fires when a family
keeps less than BASELINE_KEEP (half) of its baseline speedup.

Parallel-engine mode (--parallel SERIAL.json PARALLEL.json) gates
the conservative parallel engine instead of the TLB families. Both
inputs are `fig12_cluster --perf-out` documents (schema
cronus-parallel-bench-v1). The gate asserts:
  - determinism: both runs ended at the same virtual time and acked
    the same number of calls (wall-clock is the only thing allowed
    to differ);
  - a wall-clock speedup floor scaled to the host's core count
    (os.cpu_count()): parallelism cannot beat physics on a 1-core
    runner, so the floor only demands >= 3x when at least 8 CPUs
    are available (the ISSUE target), ~2x at 4-7, and merely
    "not pathologically slower" below that;
  - with --baseline, the measured speedup must keep at least
    BASELINE_KEEP of the committed snapshot's speedup, and only
    when the snapshot was recorded on a host with a comparable
    core count (otherwise the comparison is meaningless and is
    reported but not enforced).
"""

import argparse
import json
import os
import sys

# family -> minimum required off/on real_time ratio
FLOORS = {
    "BM_SpmRead": 2.0,
    "BM_SpmWrite": 2.0,
    "BM_SrpcCallSync": 1.0,
    "BM_SrpcCallAsync": 1.0,
}

# Fraction of the baseline off/on ratio that must survive.
BASELINE_KEEP = 0.5


def load_times(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        times[b.get("name", "")] = float(b["real_time"])
    return times


def ratio_of(times, family):
    off = times.get(f"{family}/0")
    on = times.get(f"{family}/1")
    if off is None or on is None:
        return None
    return off / on if on > 0 else float("inf")


def speedup_floor(cpus):
    """Wall-clock speedup floor for the parallel engine, scaled to
    the machine actually running the bench."""
    if cpus >= 8:
        return 3.0
    if cpus >= 4:
        return 2.0
    if cpus >= 2:
        return 1.2
    # Single core: demand only that the engine's overhead does not
    # more than double the wall time.
    return 0.5


def check_parallel(serial_path, parallel_path, baseline_path):
    with open(serial_path) as f:
        serial = json.load(f)
    with open(parallel_path) as f:
        parallel = json.load(f)
    failures = []

    for doc, path in ((serial, serial_path), (parallel, parallel_path)):
        if doc.get("schema") != "cronus-parallel-bench-v1":
            failures.append(f"{path}: unexpected schema "
                            f"{doc.get('schema')!r}")

    # Determinism: virtual results must be bit-equal across worker
    # counts (CI additionally byte-diffs the full stdout).
    for key in ("end_time_ns", "acked_calls", "events", "smoke"):
        if serial.get(key) != parallel.get(key):
            failures.append(
                f"determinism: {key} differs "
                f"(serial {serial.get(key)!r} vs parallel "
                f"{parallel.get(key)!r})")

    cpus = os.cpu_count() or 1
    floor = speedup_floor(cpus)
    s_ms = float(serial.get("wall_ms", 0.0))
    p_ms = float(parallel.get("wall_ms", 0.0))
    speedup = s_ms / p_ms if p_ms > 0 else float("inf")
    workers = parallel.get("workers", 0)
    status = "ok" if speedup >= floor else "FAIL"
    print(f"fig12 wall: serial={s_ms:.0f}ms parallel={p_ms:.0f}ms "
          f"({workers} workers) speedup={speedup:.2f}x "
          f"(floor {floor:.1f}x on {cpus} cpus) {status}")
    eps = parallel.get("events_per_sec")
    if eps is not None:
        print(f"  parallel throughput: {float(eps):.0f} events/sec "
              f"({parallel.get('events')} events, "
              f"{parallel.get('batches')} batches)")
    if speedup < floor:
        failures.append(f"speedup {speedup:.2f}x < required "
                        f"{floor:.1f}x at {cpus} cpus")

    if baseline_path:
        with open(baseline_path) as f:
            base = json.load(f)
        b_speedup = float(base.get("speedup", 0.0))
        b_cpus = int(base.get("host_cpus", 0))
        # Comparable means the same floor bucket: a 1-core snapshot
        # says nothing about an 8-core runner and vice versa.
        comparable = speedup_floor(b_cpus) == floor
        need = b_speedup * BASELINE_KEEP
        if not comparable:
            print(f"  baseline speedup {b_speedup:.2f}x recorded on "
                  f"{b_cpus} cpus: not comparable to this "
                  f"{cpus}-cpu host, skipping keep-check")
        else:
            kept = "ok" if speedup >= need else "FAIL"
            print(f"  baseline speedup {b_speedup:.2f}x "
                  f"({b_cpus} cpus), must keep >= {need:.2f}x {kept}")
            if speedup < need:
                failures.append(
                    f"speedup {speedup:.2f}x lost more than half of "
                    f"baseline {b_speedup:.2f}x")

    if failures:
        print("parallel perf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("parallel perf-smoke passed")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("result", nargs="?",
                    default="BENCH_substrate.json")
    ap.add_argument("--baseline", metavar="JSON",
                    help="committed snapshot to compare ratios "
                         "against (bench/baselines/)")
    ap.add_argument("--parallel", nargs=2,
                    metavar=("SERIAL.json", "PARALLEL.json"),
                    help="gate the parallel engine: two "
                         "fig12_cluster --perf-out documents "
                         "(skips the TLB families)")
    args = ap.parse_args()

    if args.parallel:
        return check_parallel(args.parallel[0], args.parallel[1],
                              args.baseline)

    times = load_times(args.result)
    base = load_times(args.baseline) if args.baseline else None
    failures = []
    for family, floor in FLOORS.items():
        ratio = ratio_of(times, family)
        if ratio is None:
            failures.append(f"{family}: missing /0 or /1 result")
            continue
        off = times[f"{family}/0"]
        on = times[f"{family}/1"]
        status = "ok" if ratio >= floor else "FAIL"
        print(f"{family}: off={off:.1f}ns on={on:.1f}ns "
              f"ratio={ratio:.2f}x (floor {floor:.1f}x) {status}")
        if ratio < floor:
            failures.append(
                f"{family}: {ratio:.2f}x < required {floor:.1f}x")
        if base is None:
            continue
        base_ratio = ratio_of(base, family)
        if base_ratio is None:
            failures.append(
                f"{family}: missing from baseline {args.baseline}")
            continue
        need = base_ratio * BASELINE_KEEP
        kept = "ok" if ratio >= need else "FAIL"
        print(f"  baseline ratio {base_ratio:.2f}x, must keep "
              f">= {need:.2f}x {kept}")
        if ratio < need:
            failures.append(
                f"{family}: {ratio:.2f}x lost more than half of "
                f"baseline {base_ratio:.2f}x")
    if failures:
        print("perf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("perf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
