/** Shared helpers for the figure/table benches. */

#ifndef CRONUS_BENCH_BENCH_UTIL_HH
#define CRONUS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baseline/cronus_backend.hh"
#include "baseline/hix_tz.hh"
#include "baseline/monolithic_tz.hh"
#include "baseline/native.hh"
#include "obs/trace.hh"

namespace cronus::bench
{

inline void
header(const std::string &title)
{
    std::printf("\n================================================="
                "=============\n%s\n"
                "================================================="
                "=============\n",
                title.c_str());
}

inline std::unique_ptr<baseline::ComputeBackend>
makeBackend(const std::string &which,
            const std::vector<std::string> &kernels)
{
    Logger::instance().setQuiet(true);
    if (which == "Linux") {
        baseline::NativeConfig c;
        c.gpuKernels = kernels;
        return std::make_unique<baseline::NativeBackend>(c);
    }
    if (which == "TrustZone") {
        baseline::MonolithicConfig c;
        c.gpuKernels = kernels;
        return std::make_unique<baseline::MonolithicTzBackend>(c);
    }
    if (which == "HIX-TrustZone") {
        baseline::HixConfig c;
        c.gpuKernels = kernels;
        return std::make_unique<baseline::HixTzBackend>(c);
    }
    baseline::CronusBackendConfig c;
    c.gpuKernels = kernels;
    return std::make_unique<baseline::CronusBackend>(c);
}

/**
 * Write the accumulated Perfetto trace at bench exit when tracing is
 * on (CRONUS_TRACE=1). The destination is CRONUS_TRACE_FILE if set,
 * else @p default_path. The note goes to stderr: the figure output
 * on stdout must stay byte-identical with tracing on or off.
 */
inline void
exportTraceIfEnabled(const std::string &default_path)
{
    auto &tracer = obs::Tracer::instance();
    if (!tracer.exporting())
        return;
    const char *env = std::getenv("CRONUS_TRACE_FILE");
    const std::string path =
        (env != nullptr && env[0] != '\0') ? env : default_path;
    Status s = tracer.writeTraceFile(path);
    if (s.isOk())
        std::fprintf(stderr,
                     "trace: %llu events written to %s\n",
                     static_cast<unsigned long long>(
                         tracer.eventCount()),
                     path.c_str());
    else
        std::fprintf(stderr, "trace: cannot write %s: %s\n",
                     path.c_str(), s.toString().c_str());
}

inline const std::vector<std::string> &
allSystems()
{
    static const std::vector<std::string> systems = {
        "Linux", "TrustZone", "HIX-TrustZone", "CRONUS"};
    return systems;
}

} // namespace cronus::bench

#endif // CRONUS_BENCH_BENCH_UTIL_HH
