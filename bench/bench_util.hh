/** Shared helpers for the figure/table benches. */

#ifndef CRONUS_BENCH_BENCH_UTIL_HH
#define CRONUS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baseline/cronus_backend.hh"
#include "baseline/hix_tz.hh"
#include "baseline/monolithic_tz.hh"
#include "baseline/native.hh"

namespace cronus::bench
{

inline void
header(const std::string &title)
{
    std::printf("\n================================================="
                "=============\n%s\n"
                "================================================="
                "=============\n",
                title.c_str());
}

inline std::unique_ptr<baseline::ComputeBackend>
makeBackend(const std::string &which,
            const std::vector<std::string> &kernels)
{
    Logger::instance().setQuiet(true);
    if (which == "Linux") {
        baseline::NativeConfig c;
        c.gpuKernels = kernels;
        return std::make_unique<baseline::NativeBackend>(c);
    }
    if (which == "TrustZone") {
        baseline::MonolithicConfig c;
        c.gpuKernels = kernels;
        return std::make_unique<baseline::MonolithicTzBackend>(c);
    }
    if (which == "HIX-TrustZone") {
        baseline::HixConfig c;
        c.gpuKernels = kernels;
        return std::make_unique<baseline::HixTzBackend>(c);
    }
    baseline::CronusBackendConfig c;
    c.gpuKernels = kernels;
    return std::make_unique<baseline::CronusBackend>(c);
}

inline const std::vector<std::string> &
allSystems()
{
    static const std::vector<std::string> systems = {
        "Linux", "TrustZone", "HIX-TrustZone", "CRONUS"};
    return systems;
}

} // namespace cronus::bench

#endif // CRONUS_BENCH_BENCH_UTIL_HH
