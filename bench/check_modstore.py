#!/usr/bin/env python3
"""Perf gate for the cold-start amortization paths.

Reads the google-benchmark-shaped JSON written by `fig13_coldstart`
(BENCH_modstore.json) and compares the per-request startup time of
the amortized strategies against the legacy cold pipeline from the
same run:

  fig13/warm    createEnclaveCached() with the module resident in
                the SPM module store (skips parse + hash +
                measurement SHA)
  fig13/pooled  WarmPool bind onto a pre-attested, pre-connected
                shell

Fails (exit 1) if a strategy's cold/strategy speedup drops below its
floor. The numbers are *virtual* time, so unlike the wall-clock
substrate gate they are exactly reproducible: a floor violation is a
real costing regression (e.g. a cache hit started re-charging the
measurement SHA, or acquire() stopped reusing the prefill
attestation), never host jitter.

With --baseline BASELINE.json (the committed snapshot under
bench/baselines/), each measured speedup must also keep at least
BASELINE_KEEP of the baseline's speedup. Determinism would allow an
exact comparison, but the request mix is allowed to evolve (e.g.
`--smoke` runs fewer requests, which shifts the pooled bind
amortization), so the gate keeps a margin instead.
"""

import argparse
import json
import sys

# strategy -> minimum required cold/strategy real_time speedup
FLOORS = {
    "fig13/warm": 1.01,
    "fig13/pooled": 50.0,
}

COLD = "fig13/cold"

# Fraction of the baseline speedup that must survive.
BASELINE_KEEP = 0.5


def load_times(path):
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        times[b.get("name", "")] = float(b["real_time"])
    return times


def speedup_of(times, strategy):
    cold = times.get(COLD)
    t = times.get(strategy)
    if cold is None or t is None:
        return None
    return cold / t if t > 0 else float("inf")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("result", nargs="?",
                    default="BENCH_modstore.json")
    ap.add_argument("--baseline", metavar="JSON",
                    help="committed snapshot to compare speedups "
                         "against (bench/baselines/)")
    args = ap.parse_args()

    times = load_times(args.result)
    base = load_times(args.baseline) if args.baseline else None
    failures = []
    for strategy, floor in FLOORS.items():
        speedup = speedup_of(times, strategy)
        if speedup is None:
            failures.append(f"{strategy}: missing result")
            continue
        cold = times[COLD]
        t = times[strategy]
        status = "ok" if speedup >= floor else "FAIL"
        print(f"{strategy}: cold={cold:.0f}ns this={t:.0f}ns "
              f"speedup={speedup:.2f}x (floor {floor:.2f}x) "
              f"{status}")
        if speedup < floor:
            failures.append(
                f"{strategy}: {speedup:.2f}x < required "
                f"{floor:.2f}x")
        if base is None:
            continue
        base_speedup = speedup_of(base, strategy)
        if base_speedup is None:
            failures.append(
                f"{strategy}: missing from baseline "
                f"{args.baseline}")
            continue
        need = base_speedup * BASELINE_KEEP
        kept = "ok" if speedup >= need else "FAIL"
        print(f"  baseline speedup {base_speedup:.2f}x, must keep "
              f">= {need:.2f}x {kept}")
        if speedup < need:
            failures.append(
                f"{strategy}: {speedup:.2f}x lost more than half "
                f"of baseline {base_speedup:.2f}x")
    if failures:
        print("modstore gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("modstore gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
