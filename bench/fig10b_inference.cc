/**
 * @file
 * Figure 10b: DNN inference latency on the NPU simulator and CPU.
 *
 * TVM-compiled ResNet18 / ResNet50 / YoloV3 on the VTA-style NPU
 * (Linux, TrustZone, CRONUS) plus the scalar-CPU fallback.
 */

#include "bench_util.hh"
#include "workloads/tvm.hh"

using namespace cronus;
using namespace cronus::bench;
using namespace cronus::workloads;

int
main()
{
    header("Figure 10b: inference latency (ms)");

    const std::vector<TvmModel> models = {
        tvmResnet18(), tvmResnet50(), tvmYolov3()};
    const std::vector<std::string> npu_systems = {
        "Linux", "TrustZone", "CRONUS"};

    std::printf("%-10s", "model");
    for (const auto &system : npu_systems)
        std::printf(" %13s", ("npu/" + system).c_str());
    std::printf(" %13s\n", "cpu");

    for (const auto &model : models) {
        std::printf("%-10s", model.name.c_str());
        for (const auto &system : npu_systems) {
            auto backend = makeBackend(system, {});
            auto result = runInferenceNpu(*backend, model);
            if (!result.isOk() || !result.value().verified) {
                std::printf(" %13s", "ERROR");
                continue;
            }
            std::printf(" %13.2f",
                        result.value().latencyNs / 1e6);
        }
        auto cpu_backend = makeBackend("Linux", {});
        auto cpu = runInferenceCpu(*cpu_backend, model);
        std::printf(" %13.2f\n", cpu.value().latencyNs / 1e6);
    }
    std::printf("\n(NPU latencies nearly identical across systems; "
                "CPU is the slow fallback)\n");
    return 0;
}
