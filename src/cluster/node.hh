/**
 * @file
 * One SoC of a multi-node CRONUS fleet.
 *
 * A ClusterNode owns a complete single-node CRONUS machine -- its
 * own Platform, devices, Spm and Supervisor -- but charges all
 * virtual time against the fleet-shared SimClock, so events on
 * different nodes are totally ordered on one timeline. The node
 * presents a signed credential (its RoT public key plus the
 * device-tree measurement, endorsed by the RoT) that peers verify
 * before trusting the interconnect link (Composite-Enclave-style
 * common attestation root across physically separate components).
 */

#ifndef CRONUS_CLUSTER_NODE_HH
#define CRONUS_CLUSTER_NODE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "recover/supervisor.hh"

namespace cronus::cluster
{

using NodeId = uint32_t;

/** Sentinel id for the fleet frontend (dispatcher host). */
constexpr NodeId kFrontend = 0xffffffffu;

enum class NodeHealth
{
    Healthy,
    Degraded,     ///< a device quarantined locally; placeable last
    Quarantined,  ///< fleet gave up on the node (terminal)
    Down,         ///< crashed / powered off; recoverable
};

const char *nodeHealthName(NodeHealth health);

/**
 * What a node presents over the interconnect before any grant is
 * forwarded: identity, RoT public key and the DT measurement, with
 * an RoT signature binding the three together. A peer accepts the
 * link only if the signature verifies under the presented key AND
 * the measurement is in the fleet's trusted set -- a stolen name
 * with a different machine underneath fails the measurement check,
 * a forged measurement fails the signature.
 */
struct NodeCredential
{
    std::string name;
    crypto::PublicKey rotKey;
    crypto::Digest dtMeasurement{};
    crypto::Signature endorsement;

    /** The byte string the endorsement signs. */
    Bytes signedMessage() const;
};

class ClusterNode
{
  public:
    /**
     * Build the node's machine from @p system_template with the
     * name and fleet clock filled in. The supervisor watches every
     * device from boot.
     */
    ClusterNode(NodeId id, std::string name,
                core::CronusConfig system_template,
                SimClock *fleet_clock,
                const recover::SupervisorConfig &sup_cfg);

    NodeId id() const { return nodeId; }
    const std::string &name() const { return nodeName; }
    core::CronusSystem &system() { return *sys; }
    recover::Supervisor &supervisor() { return *sup; }

    NodeHealth health() const { return h; }
    void setHealth(NodeHealth health) { h = health; }
    /** Usable as a placement / migration target. */
    bool placeable() const
    {
        return h == NodeHealth::Healthy || h == NodeHealth::Degraded;
    }

    /** Names of every device the node hosts ("cpu0", "gpu0", ...). */
    std::vector<std::string> deviceNames();

    /** Signed identity + measurement for link attestation. */
    NodeCredential credential();

    /**
     * SoC-fatal crash: every partition panics at once and the node
     * goes Down. Idempotent.
     */
    void crash();

    /**
     * Power the node back on: scrub + reboot every partition.
     * Enclave instances do not survive (the fleet re-places them
     * from checkpoints); the node returns Healthy on success.
     */
    Status reboot();

    /** Enclaves currently placed here (fleet bookkeeping). */
    uint64_t liveEnclaves = 0;

  private:
    NodeId nodeId;
    std::string nodeName;
    std::unique_ptr<core::CronusSystem> sys;
    std::unique_ptr<recover::Supervisor> sup;
    NodeHealth h = NodeHealth::Healthy;
};

} // namespace cronus::cluster

#endif // CRONUS_CLUSTER_NODE_HH
