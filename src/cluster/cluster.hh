/**
 * @file
 * Multi-SoC CRONUS fleet: placement, cross-node calls, live
 * migration and node-drain fault tolerance.
 *
 * A Cluster owns N ClusterNodes on one shared SimClock, an
 * Interconnect between them, and a FleetDispatcher for placement.
 * Every placed enclave is tracked in a FleetEnclave record holding
 * its respawn spec (manifest/image), the latest sealed checkpoint
 * (the *watermark*) and the journal of acked calls made since that
 * watermark -- the ResumableChannel recipe lifted to fleet scope.
 * Because the frontend journals at ack time, the fleet can always
 * rebuild an enclave as watermark + replay, which is what makes
 * both live migration and node-loss recovery acked-call-lossless.
 *
 * Migration state machine (migrateEnclave):
 *
 *   Snapshot -> ReAttest -> Transfer -> Restore -> Replay -> Retire
 *
 * The single commit point is Retire: the source copy is destroyed
 * only after the destination finished replaying. A failure (or an
 * injected node kill) at any earlier stage aborts back to the
 * source -- destroying any partial destination copy -- and a dead
 * *source* mid-flight does not abort: the frontend already holds
 * watermark + journal, so the migration completes onto the
 * destination. Either way exactly one live copy survives, which is
 * the fuzzer's convergence oracle.
 *
 * drainNode evacuates a node under a DrainBudget: live-migrate
 * while budget lasts, fall back to in-place recovery for enclaves
 * that cannot move, and finally quarantine the node at fleet level
 * (idempotent with the node Supervisor's own quarantine -- see
 * Supervisor::quarantineDevice) re-placing whatever remained.
 */

#ifndef CRONUS_CLUSTER_CLUSTER_HH
#define CRONUS_CLUSTER_CLUSTER_HH

#include "base/parallel.hh"
#include "fleet_dispatcher.hh"
#include "interconnect.hh"
#include "node.hh"

namespace cronus::cluster
{

/** Fleet-wide enclave id (stable across migrations). */
using Fid = uint64_t;

struct ClusterConfig
{
    uint32_t numNodes = 2;
    /** Per-node machine shape (sharedClock/nodeName overwritten). */
    core::CronusConfig nodeSystem;
    recover::SupervisorConfig supervisor;
    LinkCostModel link;
    /** Auto-checkpoint after this many acked calls (0 = manual). */
    uint32_t autoCheckpointEvery = 0;
    /** FleetDispatcher score penalty for Degraded nodes. */
    uint64_t degradedPenalty = 1ull << 20;
    /**
     * Conservative-parallel engine workers. -1 (default) defers to
     * the CRONUS_PARALLEL environment toggle; 0/1 forces the serial
     * engine; N >= 2 runs N workers. Parallel execution changes
     * wall-clock time only: virtual time, reports and traces are
     * byte-identical to the serial engine (DESIGN.md section 13).
     */
    int parallelWorkers = -1;
};

enum class MigrationStage
{
    Snapshot,
    ReAttest,
    Transfer,
    Restore,
    Replay,
    Retire,
};

const char *migrationStageName(MigrationStage stage);
Result<MigrationStage> migrationStageFromName(
    const std::string &name);

/** One completed (or aborted) migration, for audits and oracles. */
struct MigrationAudit
{
    uint64_t seq = 0;
    Fid fid = 0;
    NodeId src = 0;
    NodeId dst = 0;
    std::string outcome;  ///< "completed" | "aborted:<stage>: ..."
    bool srcAlive = false;  ///< live copy on src after the attempt
    bool dstAlive = false;  ///< live copy on dst after the attempt
    SimTime startNs = 0;
    SimTime endNs = 0;
    uint64_t replayedCalls = 0;

    /** The convergence invariant: exactly one live copy. */
    bool converged() const { return srcAlive != dstAlive; }
};

/** Evacuation limits for drainNode. */
struct DrainBudget
{
    /** Live migrations allowed (the rest re-place cold). */
    uint32_t maxMigrations = 0xffffffffu;
    /** Virtual-time ceiling for the whole drain (0 = none). */
    SimTime maxNs = 0;
};

class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &config);
    ~Cluster();

    SimClock &clock() { return fleetClock; }
    size_t numNodes() const { return nodes.size(); }
    ClusterNode &node(NodeId id) { return *nodes.at(id); }
    Interconnect &interconnect() { return fabric; }
    FleetDispatcher &dispatcher() { return placer; }
    const ClusterConfig &config() const { return cfg; }

    /* --- parallel engine --- */

    /** The cluster's conservative-parallel engine (serial-mode
     *  passthrough when workers are disabled). */
    ParallelExecutor &executor() { return exec; }
    bool parallelEnabled() const { return exec.parallel(); }

    /**
     * Commit every batched *Async operation: runs the batch on the
     * worker pool (one FIFO per node domain), then replays the
     * receipts in issue order, which makes virtual time, callbacks,
     * counters and traces byte-identical to issuing the same
     * operations serially. No-op (returns 0) in serial mode, where
     * *Async ran inline. Between submit and flush the batched fids
     * must not be destroyed and node health must not be changed.
     */
    uint64_t flush() { return exec.flush(); }

    /* --- placement + calls --- */

    /**
     * Place a new enclave on the best node (health-aware
     * least-loaded). The spec is retained for re-placement after
     * node loss.
     */
    Result<Fid> placeEnclave(const std::string &manifest_json,
                             const std::string &image_name,
                             const Bytes &image);

    /**
     * Batched placeEnclave: placement is decided now (so successive
     * placements score against each other exactly like serial), the
     * expensive create/attest pipeline runs on the target node's
     * domain at flush(), and @p done fires at commit in issue order.
     * Serial mode places inline and fires @p done immediately.
     */
    using PlaceDone = std::function<void(const Result<Fid> &)>;
    void placeEnclaveAsync(const std::string &manifest_json,
                           const std::string &image_name,
                           const Bytes &image,
                           PlaceDone done = nullptr);

    /**
     * Authenticated call routed frontend -> node over the
     * interconnect. An acked (successful) call is journaled before
     * it is reported acked, so no acked call can be lost to a later
     * node failure; the auto-checkpoint cadence advances the
     * watermark.
     */
    Result<Bytes> call(Fid fid, const std::string &fn,
                       const Bytes &args);

    /** Batched call(): body runs on the hosting node's domain at
     *  flush(); @p done fires at commit in issue order. */
    using CallDone = std::function<void(const Result<Bytes> &)>;
    void callAsync(Fid fid, const std::string &fn, const Bytes &args,
                   CallDone done = nullptr);

    /**
     * Advance the enclave's watermark: seal its state, pull the
     * blob to the frontend and clear the journal.
     */
    Status checkpoint(Fid fid);

    Status destroyEnclave(Fid fid);

    /* --- migration + drain --- */

    /** Live-migrate @p fid to @p dst (see the state machine). */
    Status migrateEnclave(Fid fid, NodeId dst);

    /** Evacuate every enclave from @p node under @p budget. */
    Status drainNode(NodeId node, const DrainBudget &budget);

    /* --- node lifecycle (benches, injection) --- */

    /**
     * Crash an entire SoC. Refuses (InvalidState) to kill the last
     * placeable node -- the fleet must keep a recovery target.
     * Idempotent: killing a Down node is Ok.
     */
    Status killNode(NodeId id);

    /** Reboot a Down node and re-admit it to the fleet. */
    Status recoverNode(NodeId id);

    /** Sever/heal the interconnect between two nodes. */
    void partitionLink(NodeId a, NodeId b, bool down);

    /**
     * Fleet-level quarantine of @p node: marks it Quarantined,
     * quarantines its devices on the node Supervisor (idempotent --
     * a device the Supervisor already gave up on is not re-dumped)
     * and re-places its enclaves elsewhere.
     */
    Status quarantineNode(NodeId id, const std::string &why);

    /**
     * Fleet sweep: re-place enclaves stranded on Down/Quarantined
     * nodes and refresh node health from each Supervisor. Call
     * between operations (the fuzz runner pumps after node kills).
     */
    void pump();

    /* --- introspection + audit --- */

    bool exists(Fid fid) const;
    /** The node currently hosting @p fid. */
    Result<NodeId> nodeOf(Fid fid) const;
    /** A live, callable copy exists (host node up, partition Ready). */
    bool enclaveAlive(Fid fid);
    uint64_t ackedCalls(Fid fid) const;
    std::vector<Fid> enclavesOn(NodeId id) const;

    const std::vector<MigrationAudit> &migrations() const
    {
        return migrationLog;
    }

    /**
     * Stage hook, fired just *before* each migration stage executes
     * (seq is 1-based). The FleetInjector lands migration-window
     * kills through this.
     */
    using StageHook = std::function<void(
        uint64_t seq, MigrationStage stage, NodeId src, NodeId dst)>;
    void setStageHook(StageHook hook) { stageHook = std::move(hook); }

    /** Fleet counters + per-node health + interconnect report. */
    JsonValue report();

    /* --- fleet counters (public for bench assertions) --- */
    uint64_t placements = 0;
    uint64_t migrationsCompleted = 0;
    uint64_t migrationsAborted = 0;
    uint64_t drains = 0;
    uint64_t fleetQuarantines = 0;
    uint64_t replacements = 0;  ///< cold re-places after node loss
    uint64_t supervisorEscalations = 0;  ///< node-sup quarantine hooks

  private:
    struct FleetCall
    {
        std::string fn;
        Bytes args;
    };

    struct FleetEnclave
    {
        Fid fid = 0;
        NodeId nodeId = 0;
        core::AppHandle handle;
        /* Respawn spec. */
        std::string manifestJson;
        std::string imageName;
        Bytes image;
        /* Watermark + journal (frontend-durable). */
        Bytes sealed;
        Bytes sealedSecret;
        bool haveCheckpoint = false;
        std::vector<FleetCall> journal;
        uint64_t acked = 0;
        uint32_t callsSinceCkpt = 0;
    };

    /** What one create+restore+replay attempt produced (no fleet
     *  bookkeeping -- that belongs to the commit step). */
    struct MaterializeOutcome
    {
        Status status = Status::ok();
        core::AppHandle handle;
        uint64_t replayed = 0;
    };

    /**
     * The domain-confined part of materialize: transfer + create +
     * restore + replay onto @p target, destroying the partial copy
     * on failure. Touches only @p target's node, the interconnect
     * and the clock, so it is safe as a parallel event body.
     */
    MaterializeOutcome materializeWork(FleetEnclave &rec,
                                       NodeId target,
                                       bool via_frontend);

    /** Create + restore + replay @p rec onto @p target; updates the
     *  record on success. The shared tail of migration Restore/
     *  Replay and cold re-placement. */
    Status materialize(FleetEnclave &rec, NodeId target,
                       uint64_t *replayed, bool via_frontend);

    /** Re-place a stranded enclave on the best other node. */
    Status recoverEnclave(FleetEnclave &rec);

    /** The domain-confined body of call(): transfers + ecall +
     *  journal + auto-checkpoint (no existence/health checks). */
    Result<Bytes> callBody(FleetEnclave &rec, const std::string &fn,
                           const Bytes &args);

    /** checkpoint() minus the lookup/health guards. */
    Status checkpointRec(FleetEnclave &rec);

    /**
     * Queue one cold re-placement on the parallel engine: placement
     * decision + optimistic bookkeeping now, materializeWork on the
     * target domain at flush. Returns a settled flag (nullptr when
     * no node can take the enclave): still false after flush() means
     * the event was discarded by a batch abort and the recovery must
     * be redone serially.
     */
    std::shared_ptr<bool> issueRecovery(FleetEnclave &rec);

    /** Recover every record in @p recs (serial engine: one by one;
     *  parallel: batched with a serial redo of any aborted tail). */
    void recoverBatch(const std::vector<FleetEnclave *> &recs);

    /**
     * Destroy an enclave copy a discarded (batch-aborted) event
     * speculatively created: no virtual-time charge, no trace
     * events, no traffic counts -- the serial engine never built it.
     */
    void destroySpeculative(NodeId node, core::AppHandle handle);

    /** Domain id for frontend-only events (no node work). */
    ParallelExecutor::DomainId frontendDomain() const
    {
        return static_cast<ParallelExecutor::DomainId>(nodes.size());
    }

    /** Live copy of @p rec on node @p id right now? */
    bool aliveOn(FleetEnclave &rec, NodeId id);

    uint64_t journalBytes(const FleetEnclave &rec) const;
    void fireStage(uint64_t seq, MigrationStage stage, NodeId src,
                   NodeId dst);

    ClusterConfig cfg;
    SimClock fleetClock;
    std::vector<std::unique_ptr<ClusterNode>> nodes;
    Interconnect fabric;
    FleetDispatcher placer;
    std::map<Fid, FleetEnclave> enclaves;
    Fid nextFid = 1;
    uint64_t migrationSeq = 0;
    std::vector<MigrationAudit> migrationLog;
    StageHook stageHook;
    /* Last member: its destructor joins the worker pool before the
     * nodes/fabric the workers reference go away. */
    ParallelExecutor exec;
};

} // namespace cronus::cluster

#endif // CRONUS_CLUSTER_CLUSTER_HH
