/**
 * @file
 * Arms fleet-scoped FaultPlan events against a live Cluster.
 *
 * The SPM-level inject::FaultInjector skips any event for which
 * inject::isFleetEvent() is true; this class claims them instead:
 *
 *  - AtTime + KillNode        -> Cluster::killNode on poll()
 *  - AtTime + PartitionLink   -> Cluster::partitionLink on poll()
 *  - NthMigration + KillMigration -> Cluster::killNode from inside
 *    the migration stage hook, at the named stage, against the
 *    source (or destination with killDst) of the Nth migration.
 *
 * poll() is driven by the bench/fuzz loop between operations; the
 * stage hook fires synchronously inside migrateEnclave, which is
 * what makes migration-window kills land deterministically at a
 * specific stage. Every firing (including refusals, e.g. killNode
 * declining to take out the last placeable node) is logged for the
 * run report and the differential oracle.
 */

#ifndef CRONUS_CLUSTER_FLEET_INJECTOR_HH
#define CRONUS_CLUSTER_FLEET_INJECTOR_HH

#include "cluster.hh"
#include "inject/fault_plan.hh"

namespace cronus::cluster
{

class FleetInjector
{
  public:
    /** Holds references: @p target and @p plan must outlive this. */
    FleetInjector(Cluster &target, const inject::FaultPlan &plan);
    ~FleetInjector();

    /** Install the migration stage hook (idempotent). */
    void arm();

    /** Fire any due AtTime fleet events. Call between operations. */
    void poll();

    struct Firing
    {
        uint64_t eventId = 0;
        std::string what;  ///< e.g. "kill_node node3: ok"
        SimTime atNs = 0;
    };

    const std::vector<Firing> &fired() const { return firings; }
    /** Fleet events still pending (AtTime not yet due, NthMigration
     *  not yet reached). */
    size_t pending() const;

    JsonValue report() const;

  private:
    void onStage(uint64_t seq, MigrationStage stage, NodeId src,
                 NodeId dst);
    Result<NodeId> resolveNode(const std::string &name) const;
    void note(const inject::FaultEvent &e, const std::string &what);

    Cluster &cluster;
    /** Fleet-scoped subset of the plan, in schedule order. */
    std::vector<inject::FaultEvent> events;
    std::set<uint64_t> firedIds;
    std::vector<Firing> firings;
    bool armed = false;
};

} // namespace cronus::cluster

#endif // CRONUS_CLUSTER_FLEET_INJECTOR_HH
