#include "fleet_dispatcher.hh"

namespace cronus::cluster
{

Result<NodeId>
FleetDispatcher::placeNode(
    const std::vector<std::unique_ptr<ClusterNode>> &nodes,
    const std::set<NodeId> &exclude) const
{
    bool found = false;
    NodeId best = 0;
    uint64_t bestScore = 0;
    for (const auto &node : nodes) {
        if (!node->placeable() || exclude.count(node->id()))
            continue;
        uint64_t score = node->liveEnclaves;
        if (node->health() == NodeHealth::Degraded)
            score += penalty;
        /* Strictly-less keeps the lowest-id winner on ties. */
        if (!found || score < bestScore) {
            found = true;
            best = node->id();
            bestScore = score;
        }
    }
    if (!found)
        return Status(ErrorCode::ResourceExhausted,
                      "no placeable node in the fleet");
    return best;
}

} // namespace cronus::cluster
