/**
 * @file
 * Simulated secure interconnect between the SoCs of a fleet.
 *
 * The interconnect is the only path between nodes (and between the
 * fleet frontend and any node). It charges virtual time from a
 * per-transfer cost model (hop latency + per-byte cost on the
 * shared fleet clock) and enforces two policies before moving a
 * single byte:
 *
 *  - *link attestation*: the sending side must have verified the
 *    receiver's NodeCredential -- RoT signature over the node's
 *    name/key/measurement, plus membership of the measurement in
 *    the fleet's trusted set. Verification is cached per directed
 *    link and charged once (CostModel::verifyNs).
 *  - *partitions*: a severed link drops every transfer with
 *    PeerFailed until healed (node-crash and fault-plan testing).
 *
 * What the interconnect does NOT trust: node names (anyone can
 * claim one -- the measurement check catches it), payload contents
 * (enclave state moves sealed; the interconnect never sees
 * plaintext), or link availability (callers must handle
 * PeerFailed).
 */

#ifndef CRONUS_CLUSTER_INTERCONNECT_HH
#define CRONUS_CLUSTER_INTERCONNECT_HH

#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "node.hh"

namespace cronus::cluster
{

/** Per-transfer cost model (defaults ~= a PCIe/CXL-class fabric:
 *  5us per hop, 10 GB/s effective). */
struct LinkCostModel
{
    SimTime hopLatencyNs = 5 * kNsPerUs;
    double nsPerByte = 0.1;
};

class Interconnect
{
  public:
    Interconnect(SimClock &fleet_clock, const LinkCostModel &costs =
                                            LinkCostModel());

    /** Present @p cred as @p id's identity on the fabric. */
    void registerNode(NodeId id, const NodeCredential &cred);

    /** Admit @p measurement to the fleet's trusted set. */
    void trustMeasurement(const crypto::Digest &measurement);

    /** Sever / heal the (symmetric) link between @p a and @p b. */
    void setLinkDown(NodeId a, NodeId b, bool down);
    bool linkUp(NodeId a, NodeId b) const;

    /**
     * Verify @p dst's credential on behalf of @p src (cached per
     * directed link; the first verification charges verifyNs).
     * AuthFailed when the RoT signature does not verify,
     * PermissionDenied when the measurement is not in the trusted
     * set, NotFound for an unregistered node. The frontend is the
     * fleet's own trust root and is never verified as a
     * destination.
     */
    Status ensureAttested(NodeId src, NodeId dst);

    /**
     * Move @p bytes from @p src to @p dst: link must be up and the
     * directed pair attested; charges hop + per-byte cost on the
     * fleet clock and counts the traffic.
     */
    Status transfer(NodeId src, NodeId dst, uint64_t bytes);

    /** Drop every cached attestation involving @p node (its
     *  credential is stale after a crash/reboot). */
    void invalidateAttestation(NodeId node);

    const LinkCostModel &costs() const { return cost; }

    /* --- deferred traffic (parallel engine) --- */

    /**
     * Traffic counted by one parallel-engine event. While installed
     * on a thread, counter increments accumulate here instead of the
     * shared totals, and are applied at commit (in issue order) or
     * thrown away on discard -- so an aborted batch suffix leaves no
     * counter residue. Cache *insertions* into attestedLinks happen
     * immediately (each directed link is touched by exactly one
     * domain per batch, so the single verifyNs charge stays in that
     * domain's frame); newAttested remembers them for rollback.
     */
    struct Traffic
    {
        uint64_t messages = 0;
        uint64_t bytes = 0;
        uint64_t attestations = 0;
        uint64_t refusals = 0;
        uint64_t drops = 0;
        std::vector<std::pair<NodeId, NodeId>> newAttested;
        Traffic *prev = nullptr;
    };

    /** Install a deferred-traffic sink on this thread. */
    Traffic *beginDeferred();
    /** Uninstall @p t (no-op on nullptr); stays alive until
     *  commitDeferred()/discardDeferred(). */
    void endDeferred(Traffic *t);
    /** Apply @p t's counts to the shared totals and free it. */
    void commitDeferred(Traffic *t);
    /** Roll back @p t's attestation-cache inserts, drop its counts
     *  and free it. */
    void discardDeferred(Traffic *t);

    /* --- counters (fleet metrics; committed totals) --- */
    uint64_t messages = 0;
    uint64_t bytesMoved = 0;
    uint64_t attestations = 0;
    uint64_t refusals = 0;       ///< attestation failures
    uint64_t partitionedDrops = 0;

    JsonValue report() const;

  private:
    static std::pair<NodeId, NodeId> linkKey(NodeId a, NodeId b);
    Status ensureAttestedLocked(NodeId src, NodeId dst);

    SimClock &clock;
    LinkCostModel cost;
    /* Guards the maps/sets and the counter totals. Virtual-time
     * charges inside the lock are frame-local in parallel mode, so
     * the critical sections stay short. */
    mutable std::mutex mu;
    std::map<NodeId, NodeCredential> credentials;
    std::set<std::string> trustedMeasurements;  ///< hex digests
    std::set<std::pair<NodeId, NodeId>> downLinks;
    std::set<std::pair<NodeId, NodeId>> attestedLinks;  ///< directed
};

} // namespace cronus::cluster

#endif // CRONUS_CLUSTER_INTERCONNECT_HH
