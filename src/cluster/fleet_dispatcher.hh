/**
 * @file
 * Fleet-level placement: shard enclaves across nodes with
 * health-aware scoring.
 *
 * The FleetDispatcher is the cluster analog of the per-node
 * EnclaveDispatcher: it picks a *node* for each new (or re-placed)
 * enclave; the node's own dispatcher then picks the device
 * partition. Scoring is least-loaded by live-enclave count, with a
 * large additive penalty for Degraded nodes (deprioritized but
 * still usable when everything else is worse) and a hard skip for
 * Down/Quarantined/excluded nodes. Ties break to the lowest node
 * id, so placement is a pure function of (node healths, loads) --
 * two fleets fed the same sequence shard identically.
 */

#ifndef CRONUS_CLUSTER_FLEET_DISPATCHER_HH
#define CRONUS_CLUSTER_FLEET_DISPATCHER_HH

#include <functional>
#include <set>

#include "node.hh"

namespace cronus::cluster
{

class FleetDispatcher
{
  public:
    /** @p degraded_penalty is added to a Degraded node's score. */
    explicit FleetDispatcher(uint64_t degraded_penalty = 1ull << 20)
        : penalty(degraded_penalty)
    {
    }

    /**
     * Choose a placement target among @p nodes (non-owning; the
     * cluster's node table). ResourceExhausted when no node is
     * placeable.
     */
    Result<NodeId> placeNode(
        const std::vector<std::unique_ptr<ClusterNode>> &nodes,
        const std::set<NodeId> &exclude = {}) const;

    /** Observes every placement decision (fid, chosen node). */
    using PlacementObserver =
        std::function<void(uint64_t fid, NodeId node)>;
    void setPlacementObserver(PlacementObserver fn)
    {
        observer = std::move(fn);
    }
    void notePlacement(uint64_t fid, NodeId node) const
    {
        if (observer)
            observer(fid, node);
    }

  private:
    uint64_t penalty;
    PlacementObserver observer;
};

} // namespace cronus::cluster

#endif // CRONUS_CLUSTER_FLEET_DISPATCHER_HH
