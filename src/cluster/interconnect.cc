#include "interconnect.hh"

#include "crypto/sha256.hh"

namespace cronus::cluster
{

namespace
{

thread_local Interconnect::Traffic *tlsTraffic = nullptr;

} // namespace

Interconnect::Interconnect(SimClock &fleet_clock,
                           const LinkCostModel &costs)
    : clock(fleet_clock), cost(costs)
{
}

void
Interconnect::registerNode(NodeId id, const NodeCredential &cred)
{
    std::lock_guard<std::mutex> lock(mu);
    credentials[id] = cred;
    /* A re-registered (rebooted) node invalidates what peers
     * verified about the old incarnation. */
    for (auto it = attestedLinks.begin();
         it != attestedLinks.end();) {
        if (it->first == id || it->second == id)
            it = attestedLinks.erase(it);
        else
            ++it;
    }
}

void
Interconnect::trustMeasurement(const crypto::Digest &measurement)
{
    std::lock_guard<std::mutex> lock(mu);
    trustedMeasurements.insert(crypto::digestHex(measurement));
}

std::pair<NodeId, NodeId>
Interconnect::linkKey(NodeId a, NodeId b)
{
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void
Interconnect::setLinkDown(NodeId a, NodeId b, bool down)
{
    std::lock_guard<std::mutex> lock(mu);
    if (down)
        downLinks.insert(linkKey(a, b));
    else
        downLinks.erase(linkKey(a, b));
}

bool
Interconnect::linkUp(NodeId a, NodeId b) const
{
    std::lock_guard<std::mutex> lock(mu);
    return downLinks.find(linkKey(a, b)) == downLinks.end();
}

Status
Interconnect::ensureAttested(NodeId src, NodeId dst)
{
    std::lock_guard<std::mutex> lock(mu);
    return ensureAttestedLocked(src, dst);
}

Status
Interconnect::ensureAttestedLocked(NodeId src, NodeId dst)
{
    if (dst == kFrontend || src == dst)
        return Status::ok();
    if (attestedLinks.count({src, dst}))
        return Status::ok();
    auto it = credentials.find(dst);
    if (it == credentials.end())
        return Status(ErrorCode::NotFound,
                      "no credential registered for node " +
                          std::to_string(dst));
    const NodeCredential &cred = it->second;
    /* One Schnorr verification per directed link, charged on the
     * fleet clock; renewed only after invalidateAttestation. */
    clock.advance(CostModel{}.verifyNs);
    if (Traffic *t = tlsTraffic)
        ++t->attestations;
    else
        ++attestations;
    if (!crypto::verify(cred.rotKey, cred.signedMessage(),
                        cred.endorsement)) {
        if (Traffic *t = tlsTraffic)
            ++t->refusals;
        else
            ++refusals;
        return Status(ErrorCode::AuthFailed,
                      "credential signature for '" + cred.name +
                          "' does not verify");
    }
    if (!trustedMeasurements.count(
            crypto::digestHex(cred.dtMeasurement))) {
        if (Traffic *t = tlsTraffic)
            ++t->refusals;
        else
            ++refusals;
        return Status(ErrorCode::PermissionDenied,
                      "measurement of '" + cred.name +
                          "' is not in the fleet trusted set");
    }
    attestedLinks.insert({src, dst});
    if (Traffic *t = tlsTraffic)
        t->newAttested.push_back({src, dst});
    return Status::ok();
}

Status
Interconnect::transfer(NodeId src, NodeId dst, uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu);
    if (downLinks.count(linkKey(src, dst))) {
        if (Traffic *t = tlsTraffic)
            ++t->drops;
        else
            ++partitionedDrops;
        return Status(ErrorCode::PeerFailed,
                      "interconnect link is partitioned");
    }
    CRONUS_RETURN_IF_ERROR(ensureAttestedLocked(src, dst));
    clock.advance(cost.hopLatencyNs +
                  static_cast<SimTime>(bytes * cost.nsPerByte));
    if (Traffic *t = tlsTraffic) {
        ++t->messages;
        t->bytes += bytes;
    } else {
        ++messages;
        bytesMoved += bytes;
    }
    return Status::ok();
}

void
Interconnect::invalidateAttestation(NodeId node)
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto it = attestedLinks.begin();
         it != attestedLinks.end();) {
        if (it->first == node || it->second == node)
            it = attestedLinks.erase(it);
        else
            ++it;
    }
}

Interconnect::Traffic *
Interconnect::beginDeferred()
{
    Traffic *t = new Traffic;
    t->prev = tlsTraffic;
    tlsTraffic = t;
    return t;
}

void
Interconnect::endDeferred(Traffic *t)
{
    if (t == nullptr)
        return;
    tlsTraffic = t->prev;
}

void
Interconnect::commitDeferred(Traffic *t)
{
    if (t == nullptr)
        return;
    std::lock_guard<std::mutex> lock(mu);
    messages += t->messages;
    bytesMoved += t->bytes;
    attestations += t->attestations;
    refusals += t->refusals;
    partitionedDrops += t->drops;
    delete t;
}

void
Interconnect::discardDeferred(Traffic *t)
{
    if (t == nullptr)
        return;
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &link : t->newAttested)
        attestedLinks.erase(link);
    delete t;
}

JsonValue
Interconnect::report() const
{
    std::lock_guard<std::mutex> lock(mu);
    JsonObject o;
    o["messages"] = static_cast<int64_t>(messages);
    o["bytes_moved"] = static_cast<int64_t>(bytesMoved);
    o["attestations"] = static_cast<int64_t>(attestations);
    o["refusals"] = static_cast<int64_t>(refusals);
    o["partitioned_drops"] =
        static_cast<int64_t>(partitionedDrops);
    o["links_down"] = static_cast<int64_t>(downLinks.size());
    return JsonValue(std::move(o));
}

} // namespace cronus::cluster
