#include "interconnect.hh"

#include "crypto/sha256.hh"

namespace cronus::cluster
{

Interconnect::Interconnect(SimClock &fleet_clock,
                           const LinkCostModel &costs)
    : clock(fleet_clock), cost(costs)
{
}

void
Interconnect::registerNode(NodeId id, const NodeCredential &cred)
{
    credentials[id] = cred;
    /* A re-registered (rebooted) node invalidates what peers
     * verified about the old incarnation. */
    invalidateAttestation(id);
}

void
Interconnect::trustMeasurement(const crypto::Digest &measurement)
{
    trustedMeasurements.insert(crypto::digestHex(measurement));
}

std::pair<NodeId, NodeId>
Interconnect::linkKey(NodeId a, NodeId b)
{
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void
Interconnect::setLinkDown(NodeId a, NodeId b, bool down)
{
    if (down)
        downLinks.insert(linkKey(a, b));
    else
        downLinks.erase(linkKey(a, b));
}

bool
Interconnect::linkUp(NodeId a, NodeId b) const
{
    return downLinks.find(linkKey(a, b)) == downLinks.end();
}

Status
Interconnect::ensureAttested(NodeId src, NodeId dst)
{
    if (dst == kFrontend || src == dst)
        return Status::ok();
    if (attestedLinks.count({src, dst}))
        return Status::ok();
    auto it = credentials.find(dst);
    if (it == credentials.end())
        return Status(ErrorCode::NotFound,
                      "no credential registered for node " +
                          std::to_string(dst));
    const NodeCredential &cred = it->second;
    /* One Schnorr verification per directed link, charged on the
     * fleet clock; renewed only after invalidateAttestation. */
    clock.advance(CostModel{}.verifyNs);
    ++attestations;
    if (!crypto::verify(cred.rotKey, cred.signedMessage(),
                        cred.endorsement)) {
        ++refusals;
        return Status(ErrorCode::AuthFailed,
                      "credential signature for '" + cred.name +
                          "' does not verify");
    }
    if (!trustedMeasurements.count(
            crypto::digestHex(cred.dtMeasurement))) {
        ++refusals;
        return Status(ErrorCode::PermissionDenied,
                      "measurement of '" + cred.name +
                          "' is not in the fleet trusted set");
    }
    attestedLinks.insert({src, dst});
    return Status::ok();
}

Status
Interconnect::transfer(NodeId src, NodeId dst, uint64_t bytes)
{
    if (!linkUp(src, dst)) {
        ++partitionedDrops;
        return Status(ErrorCode::PeerFailed,
                      "interconnect link is partitioned");
    }
    CRONUS_RETURN_IF_ERROR(ensureAttested(src, dst));
    clock.advance(cost.hopLatencyNs +
                  static_cast<SimTime>(bytes * cost.nsPerByte));
    ++messages;
    bytesMoved += bytes;
    return Status::ok();
}

void
Interconnect::invalidateAttestation(NodeId node)
{
    for (auto it = attestedLinks.begin();
         it != attestedLinks.end();) {
        if (it->first == node || it->second == node)
            it = attestedLinks.erase(it);
        else
            ++it;
    }
}

JsonValue
Interconnect::report() const
{
    JsonObject o;
    o["messages"] = static_cast<int64_t>(messages);
    o["bytes_moved"] = static_cast<int64_t>(bytesMoved);
    o["attestations"] = static_cast<int64_t>(attestations);
    o["refusals"] = static_cast<int64_t>(refusals);
    o["partitioned_drops"] =
        static_cast<int64_t>(partitionedDrops);
    o["links_down"] = static_cast<int64_t>(downLinks.size());
    return JsonValue(std::move(o));
}

} // namespace cronus::cluster
