#include "node.hh"

namespace cronus::cluster
{

const char *
nodeHealthName(NodeHealth health)
{
    switch (health) {
      case NodeHealth::Healthy:     return "healthy";
      case NodeHealth::Degraded:    return "degraded";
      case NodeHealth::Quarantined: return "quarantined";
      case NodeHealth::Down:        return "down";
    }
    return "?";
}

Bytes
NodeCredential::signedMessage() const
{
    Bytes m = toBytes("cronus-node-credential:" + name + ":");
    Bytes key = rotKey.toBytes();
    m.insert(m.end(), key.begin(), key.end());
    m.insert(m.end(), dtMeasurement.begin(), dtMeasurement.end());
    return m;
}

ClusterNode::ClusterNode(NodeId id, std::string name,
                         core::CronusConfig system_template,
                         SimClock *fleet_clock,
                         const recover::SupervisorConfig &sup_cfg)
    : nodeId(id), nodeName(std::move(name))
{
    system_template.sharedClock = fleet_clock;
    system_template.nodeName = nodeName;
    sys = std::make_unique<core::CronusSystem>(system_template);
    sup = std::make_unique<recover::Supervisor>(*sys, sup_cfg);
    for (core::MicroOS *os : sys->allMos())
        (void)sup->watch(os->deviceName());
}

std::vector<std::string>
ClusterNode::deviceNames()
{
    std::vector<std::string> names;
    for (core::MicroOS *os : sys->allMos())
        names.push_back(os->deviceName());
    return names;
}

NodeCredential
ClusterNode::credential()
{
    NodeCredential cred;
    cred.name = nodeName;
    cred.rotKey = sys->platform().rootOfTrust().publicKey();
    cred.dtMeasurement = sys->platform().buildDeviceTree().measure();
    cred.endorsement =
        sys->platform().rootOfTrust().sign(cred.signedMessage());
    return cred;
}

void
ClusterNode::crash()
{
    if (h == NodeHealth::Down)
        return;
    for (const std::string &dev : deviceNames())
        (void)sys->injectPanic(dev);
    h = NodeHealth::Down;
}

Status
ClusterNode::reboot()
{
    Status verdict = Status::ok();
    for (const std::string &dev : deviceNames()) {
        Status s = sys->recover(dev);
        if (!s.isOk())
            verdict = s;
    }
    h = verdict.isOk() ? NodeHealth::Healthy : NodeHealth::Degraded;
    return verdict;
}

} // namespace cronus::cluster
