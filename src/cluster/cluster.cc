#include "cluster.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace cronus::cluster
{

namespace
{

/** Modeled wire overhead of one fleet control message. */
constexpr uint64_t kMsgOverheadBytes = 64;
/** Journal entry framing (fn-name length, arg length, rid). */
constexpr uint64_t kJournalEntryOverheadBytes = 16;

/** Static-lifetime instant names (the tracer stores the pointer). */
const char *
stageInstantName(MigrationStage stage)
{
    switch (stage) {
      case MigrationStage::Snapshot: return "migrate.snapshot";
      case MigrationStage::ReAttest: return "migrate.reattest";
      case MigrationStage::Transfer: return "migrate.transfer";
      case MigrationStage::Restore:  return "migrate.restore";
      case MigrationStage::Replay:   return "migrate.replay";
      case MigrationStage::Retire:   return "migrate.retire";
    }
    return "migrate.?";
}

void
fleetInstant(const char *name, JsonObject args)
{
    auto &tr = obs::Tracer::instance();
    if (!tr.active())
        return;
    tr.instant(tr.track("fleet"), name, "cluster", std::move(args));
}

/** Per-event observability state threaded through the engine hooks:
 *  the tracer capture and the interconnect's deferred traffic. */
struct EventCtx
{
    obs::Tracer::Capture *cap = nullptr;
    Interconnect::Traffic *traffic = nullptr;
};

/** Result slot a batched call body fills for its commit callback. */
struct CallOutcome
{
    Status status = Status::ok();
    Bytes payload;
};

} // namespace

const char *
migrationStageName(MigrationStage stage)
{
    switch (stage) {
      case MigrationStage::Snapshot: return "snapshot";
      case MigrationStage::ReAttest: return "reattest";
      case MigrationStage::Transfer: return "transfer";
      case MigrationStage::Restore:  return "restore";
      case MigrationStage::Replay:   return "replay";
      case MigrationStage::Retire:   return "retire";
    }
    return "?";
}

Result<MigrationStage>
migrationStageFromName(const std::string &name)
{
    for (MigrationStage s :
         {MigrationStage::Snapshot, MigrationStage::ReAttest,
          MigrationStage::Transfer, MigrationStage::Restore,
          MigrationStage::Replay, MigrationStage::Retire}) {
        if (name == migrationStageName(s))
            return s;
    }
    return Status(ErrorCode::InvalidArgument,
                  "unknown migration stage '" + name + "'");
}

Cluster::Cluster(const ClusterConfig &config)
    : cfg(config), fabric(fleetClock, config.link),
      placer(config.degradedPenalty),
      exec(fleetClock,
           config.parallelWorkers < 0
               ? ParallelExecutor::workersFromEnv()
               : static_cast<unsigned>(config.parallelWorkers))
{
    if (exec.parallel()) {
        /* Conservative lookahead = the minimum virtual latency of
         * any cross-domain message (one interconnect hop). */
        exec.setLookaheadNs(cfg.link.hopLatencyNs);
        ParallelExecutor::Hooks hooks;
        hooks.beginEvent = [this]() -> void * {
            auto *ctx = new EventCtx;
            ctx->cap = obs::Tracer::instance().beginCapture();
            ctx->traffic = fabric.beginDeferred();
            return ctx;
        };
        hooks.endEvent = [this](void *p) {
            auto *ctx = static_cast<EventCtx *>(p);
            fabric.endDeferred(ctx->traffic);
            obs::Tracer::instance().endCapture(ctx->cap);
        };
        hooks.commitEvent = [this](void *p, SimTime true_start,
                                   SimTime frame_base) {
            auto *ctx = static_cast<EventCtx *>(p);
            obs::Tracer::instance().spliceCapture(
                ctx->cap, true_start, frame_base);
            fabric.commitDeferred(ctx->traffic);
            delete ctx;
        };
        hooks.discardEvent = [this](void *p) {
            auto *ctx = static_cast<EventCtx *>(p);
            obs::Tracer::instance().dropCapture(ctx->cap);
            fabric.discardDeferred(ctx->traffic);
            delete ctx;
        };
        exec.setHooks(std::move(hooks));
    }
    for (uint32_t i = 0; i < cfg.numNodes; ++i) {
        auto n = std::make_unique<ClusterNode>(
            i, "node" + std::to_string(i), cfg.nodeSystem,
            &fleetClock, cfg.supervisor);
        NodeCredential cred = n->credential();
        fabric.registerNode(i, cred);
        fabric.trustMeasurement(cred.dtMeasurement);
        /* Node-local quarantine escalates to fleet placement state
         * (and only placement state: the fleet does not re-dump or
         * re-quarantine what the node already handled). */
        n->supervisor().setOnQuarantine(
            [this, i](const std::string &) {
                ++supervisorEscalations;
                ClusterNode &esc = *nodes[i];
                if (esc.health() == NodeHealth::Healthy)
                    esc.setHealth(NodeHealth::Degraded);
            });
        nodes.push_back(std::move(n));
    }
}

Cluster::~Cluster() = default;

uint64_t
Cluster::journalBytes(const FleetEnclave &rec) const
{
    uint64_t bytes = 0;
    for (const FleetCall &c : rec.journal)
        bytes += c.fn.size() + c.args.size() +
                 kJournalEntryOverheadBytes;
    return bytes;
}

void
Cluster::fireStage(uint64_t seq, MigrationStage stage, NodeId src,
                   NodeId dst)
{
    if (auto &tr = obs::Tracer::instance(); tr.active()) {
        JsonObject args;
        args["seq"] = static_cast<int64_t>(seq);
        args["src"] = static_cast<int64_t>(src);
        args["dst"] = static_cast<int64_t>(dst);
        tr.instant(tr.track("fleet"), stageInstantName(stage),
                   "cluster", std::move(args));
    }
    if (stageHook)
        stageHook(seq, stage, src, dst);
}

bool
Cluster::aliveOn(FleetEnclave &rec, NodeId id)
{
    if (rec.nodeId != id || id >= nodes.size())
        return false;
    ClusterNode &n = *nodes[id];
    if (n.health() == NodeHealth::Down)
        return false;
    if (rec.handle.host == nullptr)
        return false;
    auto p = n.system().spm().partition(
        rec.handle.host->partitionId());
    return p.isOk() &&
           p.value()->state == tee::PartitionState::Ready;
}

Result<Fid>
Cluster::placeEnclave(const std::string &manifest_json,
                      const std::string &image_name,
                      const Bytes &image)
{
    auto target = placer.placeNode(nodes);
    if (!target.isOk())
        return target.status();
    ClusterNode &n = *nodes[target.value()];
    /* Ship manifest + image to the node before it can create. */
    CRONUS_RETURN_IF_ERROR(fabric.transfer(
        kFrontend, target.value(),
        manifest_json.size() + image.size() + kMsgOverheadBytes));
    auto h = n.system().createEnclave(manifest_json, image_name,
                                      image);
    if (!h.isOk())
        return h.status();

    FleetEnclave rec;
    rec.fid = nextFid++;
    rec.nodeId = target.value();
    rec.handle = h.value();
    rec.manifestJson = manifest_json;
    rec.imageName = image_name;
    rec.image = image;
    Fid fid = rec.fid;
    enclaves.emplace(fid, std::move(rec));
    ++n.liveEnclaves;
    ++placements;
    placer.notePlacement(fid, target.value());
    JsonObject args;
    args["fid"] = static_cast<int64_t>(fid);
    args["node"] = static_cast<int64_t>(target.value());
    fleetInstant("fleet.place", std::move(args));
    return fid;
}

void
Cluster::placeEnclaveAsync(const std::string &manifest_json,
                           const std::string &image_name,
                           const Bytes &image, PlaceDone done)
{
    if (!exec.parallel()) {
        Result<Fid> r = placeEnclave(manifest_json, image_name,
                                     image);
        if (done)
            done(r);
        return;
    }
    auto target = placer.placeNode(nodes);
    if (!target.isOk()) {
        Status err = target.status();
        exec.submit(
            frontendDomain(), {},
            [done, err] {
                if (done)
                    done(Result<Fid>(err));
                return true;
            });
        return;
    }
    const NodeId nodeId = target.value();
    /* The placement decision and its bookkeeping happen at issue
     * time: the next placement must score against this one exactly
     * like the serial engine. The expensive transfer + create
     * pipeline runs on the target's domain at flush. */
    FleetEnclave rec;
    rec.fid = nextFid++;
    rec.nodeId = nodeId;
    rec.manifestJson = manifest_json;
    rec.imageName = image_name;
    rec.image = image;
    const Fid fid = rec.fid;
    auto [it, inserted] = enclaves.emplace(fid, std::move(rec));
    CRONUS_ASSERT(inserted, "duplicate fid");
    FleetEnclave *recp = &it->second;
    ++nodes[nodeId]->liveEnclaves;
    auto out = std::make_shared<MaterializeOutcome>();
    exec.submit(
        static_cast<ParallelExecutor::DomainId>(nodeId),
        [this, recp, nodeId, out] {
            Status t = fabric.transfer(
                kFrontend, nodeId,
                recp->manifestJson.size() + recp->image.size() +
                    kMsgOverheadBytes);
            if (!t.isOk()) {
                out->status = t;
                return;
            }
            auto h = nodes[nodeId]->system().createEnclave(
                recp->manifestJson, recp->imageName, recp->image);
            if (h.isOk())
                out->handle = h.value();
            else
                out->status = h.status();
        },
        [this, recp, nodeId, fid, out, done] {
            if (!out->status.isOk()) {
                /* The serial engine would have returned the error
                 * without inserting anything: undo the optimistic
                 * bookkeeping. (Deviation, documented in DESIGN.md
                 * section 13: same-batch placements issued after
                 * this one scored against the optimistic insert.) */
                if (nodes[nodeId]->liveEnclaves > 0)
                    --nodes[nodeId]->liveEnclaves;
                Status err = out->status;
                enclaves.erase(fid);
                if (done)
                    done(Result<Fid>(err));
                return true;
            }
            recp->handle = out->handle;
            ++placements;
            placer.notePlacement(fid, nodeId);
            JsonObject args;
            args["fid"] = static_cast<int64_t>(fid);
            args["node"] = static_cast<int64_t>(nodeId);
            fleetInstant("fleet.place", std::move(args));
            if (done)
                done(Result<Fid>(fid));
            return true;
        },
        [this, nodeId, fid, out] {
            /* Discarded by a batch abort: the serial engine never
             * built this copy -- tear it down invisibly and undo
             * the bookkeeping. */
            if (out->status.isOk() && out->handle.host != nullptr)
                destroySpeculative(nodeId, out->handle);
            if (nodes[nodeId]->liveEnclaves > 0)
                --nodes[nodeId]->liveEnclaves;
            enclaves.erase(fid);
        });
}

void
Cluster::destroySpeculative(NodeId node, core::AppHandle handle)
{
    auto &tr = obs::Tracer::instance();
    obs::Tracer::Capture *scratch = tr.beginCapture();
    Interconnect::Traffic *tf = fabric.beginDeferred();
    {
        SimClock::FrameScope frame(fleetClock, fleetClock.now());
        (void)nodes[node]->system().destroyEnclave(handle);
    }
    fabric.endDeferred(tf);
    fabric.discardDeferred(tf);
    tr.endCapture(scratch);
    tr.dropCapture(scratch);
}

Result<Bytes>
Cluster::callBody(FleetEnclave &rec, const std::string &fn,
                  const Bytes &args)
{
    ClusterNode &n = *nodes[rec.nodeId];
    CRONUS_RETURN_IF_ERROR(fabric.transfer(
        kFrontend, rec.nodeId,
        fn.size() + args.size() + kMsgOverheadBytes));
    auto r = n.system().ecall(rec.handle, fn, args);
    if (!r.isOk())
        return r;
    CRONUS_RETURN_IF_ERROR(fabric.transfer(
        rec.nodeId, kFrontend,
        r.value().size() + kMsgOverheadBytes));
    /* The call is acked only now; journaling first means an acked
     * call is always reconstructible as watermark + replay. */
    rec.journal.push_back(FleetCall{fn, args});
    ++rec.acked;
    if (cfg.autoCheckpointEvery != 0 &&
        ++rec.callsSinceCkpt >= cfg.autoCheckpointEvery) {
        /* Best effort: a failed checkpoint leaves the journal
         * covering the un-checkpointed tail. */
        (void)checkpointRec(rec);
    }
    return r;
}

Result<Bytes>
Cluster::call(Fid fid, const std::string &fn, const Bytes &args)
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound,
                      "fid " + std::to_string(fid));
    FleetEnclave &rec = it->second;
    ClusterNode &n = *nodes[rec.nodeId];
    if (n.health() == NodeHealth::Down)
        return Status(ErrorCode::PeerFailed,
                      "node '" + n.name() + "' is down");
    return callBody(rec, fn, args);
}

void
Cluster::callAsync(Fid fid, const std::string &fn,
                   const Bytes &args, CallDone done)
{
    if (!exec.parallel()) {
        Result<Bytes> r = call(fid, fn, args);
        if (done)
            done(r);
        return;
    }
    /* Existence/health checks happen at issue time -- node health
     * only changes between batches, so this is what the serial
     * engine would observe too. Failed checks still become (empty)
     * events so the callback fires in issue order at commit. */
    auto it = enclaves.find(fid);
    if (it == enclaves.end()) {
        Status err(ErrorCode::NotFound,
                   "fid " + std::to_string(fid));
        exec.submit(
            frontendDomain(), {},
            [done, err] {
                if (done)
                    done(Result<Bytes>(err));
                return true;
            });
        return;
    }
    FleetEnclave &rec = it->second;
    ClusterNode &n = *nodes[rec.nodeId];
    if (n.health() == NodeHealth::Down) {
        Status err(ErrorCode::PeerFailed,
                   "node '" + n.name() + "' is down");
        exec.submit(
            frontendDomain(), {},
            [done, err] {
                if (done)
                    done(Result<Bytes>(err));
                return true;
            });
        return;
    }
    FleetEnclave *recp = &rec;
    auto out = std::make_shared<CallOutcome>();
    exec.submit(
        static_cast<ParallelExecutor::DomainId>(rec.nodeId),
        [this, recp, fn, args, out] {
            auto r = callBody(*recp, fn, args);
            if (r.isOk())
                out->payload = r.value();
            else
                out->status = r.status();
        },
        [done, out] {
            if (done) {
                if (out->status.isOk())
                    done(Result<Bytes>(out->payload));
                else
                    done(Result<Bytes>(out->status));
            }
            return true;
        });
}

Status
Cluster::checkpointRec(FleetEnclave &rec)
{
    ClusterNode &n = *nodes[rec.nodeId];
    auto sealed = n.system().checkpointEnclave(rec.handle);
    if (!sealed.isOk())
        return sealed.status();
    CRONUS_RETURN_IF_ERROR(
        fabric.transfer(rec.nodeId, kFrontend,
                        sealed.value().size() + kMsgOverheadBytes));
    rec.sealed = sealed.value();
    rec.sealedSecret = rec.handle.secret;
    rec.haveCheckpoint = true;
    rec.journal.clear();
    rec.callsSinceCkpt = 0;
    return Status::ok();
}

Status
Cluster::checkpoint(Fid fid)
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound,
                      "fid " + std::to_string(fid));
    FleetEnclave &rec = it->second;
    ClusterNode &n = *nodes[rec.nodeId];
    if (n.health() == NodeHealth::Down)
        return Status(ErrorCode::PeerFailed,
                      "node '" + n.name() + "' is down");
    return checkpointRec(rec);
}

Status
Cluster::destroyEnclave(Fid fid)
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound,
                      "fid " + std::to_string(fid));
    FleetEnclave &rec = it->second;
    ClusterNode &n = *nodes[rec.nodeId];
    Status s = Status::ok();
    if (aliveOn(rec, rec.nodeId)) {
        (void)fabric.transfer(kFrontend, rec.nodeId,
                              kMsgOverheadBytes);
        s = n.system().destroyEnclave(rec.handle);
    }
    if (n.liveEnclaves > 0)
        --n.liveEnclaves;
    enclaves.erase(it);
    return s;
}

Cluster::MaterializeOutcome
Cluster::materializeWork(FleetEnclave &rec, NodeId target,
                         bool via_frontend)
{
    MaterializeOutcome out;
    ClusterNode &n = *nodes[target];
    NodeId from = via_frontend ? kFrontend : rec.nodeId;
    Status t = fabric.transfer(
        from, target,
        rec.manifestJson.size() + rec.image.size() +
            rec.sealed.size() + journalBytes(rec) +
            kMsgOverheadBytes);
    if (!t.isOk()) {
        out.status = t;
        return out;
    }
    auto fresh = n.system().createEnclave(rec.manifestJson,
                                          rec.imageName, rec.image);
    if (!fresh.isOk()) {
        out.status = fresh.status();
        return out;
    }
    core::AppHandle h = fresh.value();
    if (rec.haveCheckpoint) {
        Status s = n.system().restoreEnclave(h, rec.sealed,
                                             rec.sealedSecret);
        if (!s.isOk()) {
            (void)n.system().destroyEnclave(h);
            out.status = s;
            return out;
        }
    }
    for (const FleetCall &c : rec.journal) {
        auto r = n.system().ecall(h, c.fn, c.args);
        if (!r.isOk()) {
            (void)n.system().destroyEnclave(h);
            out.status = r.status();
            return out;
        }
        ++out.replayed;
    }
    out.handle = h;
    return out;
}

Status
Cluster::materialize(FleetEnclave &rec, NodeId target,
                     uint64_t *replayed, bool via_frontend)
{
    if (target >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    ClusterNode &n = *nodes[target];
    if (!n.placeable())
        return Status(ErrorCode::InvalidState,
                      "node '" + n.name() + "' is not placeable");
    MaterializeOutcome out = materializeWork(rec, target,
                                             via_frontend);
    if (!out.status.isOk())
        return out.status;
    if (replayed != nullptr)
        *replayed += out.replayed;
    /* Commit: the record now points at the new copy. */
    if (rec.nodeId < nodes.size() &&
        nodes[rec.nodeId]->liveEnclaves > 0)
        --nodes[rec.nodeId]->liveEnclaves;
    rec.nodeId = target;
    rec.handle = out.handle;
    ++n.liveEnclaves;
    return Status::ok();
}

Status
Cluster::recoverEnclave(FleetEnclave &rec)
{
    auto target = placer.placeNode(nodes);
    if (!target.isOk())
        return target.status();
    Status s = materialize(rec, target.value(), nullptr,
                           /*via_frontend=*/true);
    if (s.isOk()) {
        ++replacements;
        placer.notePlacement(rec.fid, target.value());
        JsonObject args;
        args["fid"] = static_cast<int64_t>(rec.fid);
        args["node"] = static_cast<int64_t>(target.value());
        fleetInstant("fleet.replace", std::move(args));
    }
    return s;
}

std::shared_ptr<bool>
Cluster::issueRecovery(FleetEnclave &rec)
{
    auto target = placer.placeNode(nodes);
    if (!target.isOk()) {
        /* The serial engine's attempt fails in placeNode with zero
         * virtual-time charge and no state change; skipping the
         * event reproduces that exactly (placeability is static
         * within a batch). */
        return nullptr;
    }
    const NodeId dst = target.value();
    const NodeId oldNode = rec.nodeId;
    /* Optimistic bookkeeping at issue time: the next recovery's
     * placement must score against this one, like the serial sweep.
     * Undone by the failure-commit and discard paths. */
    const bool decremented =
        oldNode < nodes.size() && nodes[oldNode]->liveEnclaves > 0;
    if (decremented)
        --nodes[oldNode]->liveEnclaves;
    ++nodes[dst]->liveEnclaves;
    FleetEnclave *recp = &rec;
    auto out = std::make_shared<MaterializeOutcome>();
    auto settled = std::make_shared<bool>(false);
    exec.submit(
        static_cast<ParallelExecutor::DomainId>(dst),
        [this, recp, dst, out] {
            *out = materializeWork(*recp, dst,
                                   /*via_frontend=*/true);
        },
        [this, recp, dst, oldNode, decremented, out, settled] {
            *settled = true;
            if (!out->status.isOk()) {
                /* This failure falsifies the optimistic bookkeeping
                 * every later event was issued against: undo ours
                 * and abort the batch; recoverBatch() redoes the
                 * discarded tail serially at the true clock. */
                if (decremented)
                    ++nodes[oldNode]->liveEnclaves;
                if (nodes[dst]->liveEnclaves > 0)
                    --nodes[dst]->liveEnclaves;
                return false;
            }
            recp->nodeId = dst;
            recp->handle = out->handle;
            ++replacements;
            placer.notePlacement(recp->fid, dst);
            JsonObject args;
            args["fid"] = static_cast<int64_t>(recp->fid);
            args["node"] = static_cast<int64_t>(dst);
            fleetInstant("fleet.replace", std::move(args));
            return true;
        },
        [this, dst, oldNode, decremented, out] {
            if (out->status.isOk() && out->handle.host != nullptr)
                destroySpeculative(dst, out->handle);
            if (decremented)
                ++nodes[oldNode]->liveEnclaves;
            if (nodes[dst]->liveEnclaves > 0)
                --nodes[dst]->liveEnclaves;
        });
    return settled;
}

void
Cluster::recoverBatch(const std::vector<FleetEnclave *> &recs)
{
    if (recs.empty())
        return;
    if (!exec.parallel()) {
        for (FleetEnclave *rec : recs)
            (void)recoverEnclave(*rec);
        return;
    }
    std::vector<std::pair<FleetEnclave *, std::shared_ptr<bool>>>
        issued;
    issued.reserve(recs.size());
    for (FleetEnclave *rec : recs)
        issued.emplace_back(rec, issueRecovery(*rec));
    exec.flush();
    /* A mid-batch failure aborts the suffix; finish it serially --
     * exactly what the serial sweep does past the failure point.
     * (The failed recovery itself committed and stays stranded,
     * as it would serially.) */
    for (auto &[rec, settled] : issued) {
        if (settled != nullptr && !*settled)
            (void)recoverEnclave(*rec);
    }
}

Status
Cluster::migrateEnclave(Fid fid, NodeId dstId)
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound,
                      "fid " + std::to_string(fid));
    if (dstId >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    FleetEnclave &rec = it->second;
    const NodeId srcId = rec.nodeId;

    const uint64_t seq = ++migrationSeq;
    MigrationAudit audit;
    audit.seq = seq;
    audit.fid = fid;
    audit.src = srcId;
    audit.dst = dstId;
    audit.startNs = fleetClock.now();

    auto &tr = obs::Tracer::instance();
    obs::Span span;
    if (tr.active()) {
        span = obs::Span(tr.track("fleet"), "fleet.migrate",
                         "cluster");
        span.arg("fid", static_cast<int64_t>(fid));
        span.arg("src", static_cast<int64_t>(srcId));
        span.arg("dst", static_cast<int64_t>(dstId));
    }

    core::AppHandle dstHandle;
    bool dstCreated = false;

    auto finish = [&](Status s, const char *outcome,
                      MigrationStage stage) -> Status {
        if (!s.isOk()) {
            /* Abort path: tear down any partial destination copy
             * (possible only while its node is still up). */
            if (dstCreated &&
                nodes[dstId]->health() != NodeHealth::Down)
                (void)nodes[dstId]->system().destroyEnclave(
                    dstHandle);
            audit.outcome = std::string("aborted:") +
                            migrationStageName(stage) + ": " +
                            s.message();
            ++migrationsAborted;
        } else {
            audit.outcome = outcome;
            ++migrationsCompleted;
        }
        audit.srcAlive = srcId != dstId && aliveOn(rec, srcId);
        audit.dstAlive = aliveOn(rec, dstId);
        audit.endNs = fleetClock.now();
        if (span.live())
            span.arg("outcome", audit.outcome);
        migrationLog.push_back(audit);
        return s;
    };

    /* --- Snapshot: fix the replay set (watermark + journal are
     * already frontend-durable; a dead source does not lose acked
     * calls). The destination must look usable before we start. */
    fireStage(seq, MigrationStage::Snapshot, srcId, dstId);
    if (!nodes[dstId]->placeable())
        return finish(Status(ErrorCode::InvalidState,
                             "destination '" +
                                 nodes[dstId]->name() +
                                 "' is not placeable"),
                      "", MigrationStage::Snapshot);

    /* --- ReAttest: the sender verifies the destination's
     * measurement root before any sealed state moves; the
     * destination symmetrically verifies a node sender. */
    fireStage(seq, MigrationStage::ReAttest, srcId, dstId);
    if (nodes[dstId]->health() == NodeHealth::Down)
        return finish(Status(ErrorCode::PeerFailed,
                             "destination died before attestation"),
                      "", MigrationStage::ReAttest);
    bool srcUp = aliveOn(rec, srcId) || srcId == dstId;
    NodeId sender = srcUp ? srcId : kFrontend;
    Status att = fabric.ensureAttested(sender, dstId);
    if (att.isOk() && sender != kFrontend)
        att = fabric.ensureAttested(dstId, sender);
    if (!att.isOk())
        return finish(att, "", MigrationStage::ReAttest);

    /* --- Transfer: sealed watermark + journal to the destination
     * (straight from the source, or from the frontend's durable
     * copy when the source is already dead). */
    fireStage(seq, MigrationStage::Transfer, srcId, dstId);
    if (nodes[dstId]->health() == NodeHealth::Down)
        return finish(Status(ErrorCode::PeerFailed,
                             "destination died in transfer"),
                      "", MigrationStage::Transfer);
    srcUp = aliveOn(rec, srcId) || srcId == dstId;
    sender = srcUp ? srcId : kFrontend;
    Status t = fabric.transfer(
        sender, dstId,
        rec.manifestJson.size() + rec.image.size() +
            rec.sealed.size() + journalBytes(rec) +
            kMsgOverheadBytes);
    if (!t.isOk())
        return finish(t, "", MigrationStage::Transfer);

    /* --- Restore: fresh enclave on the destination, watermark
     * restored into it (the blob re-seals under the new secret). */
    fireStage(seq, MigrationStage::Restore, srcId, dstId);
    if (nodes[dstId]->health() == NodeHealth::Down)
        return finish(Status(ErrorCode::PeerFailed,
                             "destination died before restore"),
                      "", MigrationStage::Restore);
    auto fresh = nodes[dstId]->system().createEnclave(
        rec.manifestJson, rec.imageName, rec.image);
    if (!fresh.isOk())
        return finish(fresh.status(), "", MigrationStage::Restore);
    dstHandle = fresh.value();
    dstCreated = true;
    if (rec.haveCheckpoint) {
        Status s = nodes[dstId]->system().restoreEnclave(
            dstHandle, rec.sealed, rec.sealedSecret);
        if (!s.isOk())
            return finish(s, "", MigrationStage::Restore);
    }

    /* --- Replay: the journaled calls past the watermark, in
     * order. After this the destination state equals the source's
     * acked state. */
    fireStage(seq, MigrationStage::Replay, srcId, dstId);
    if (nodes[dstId]->health() == NodeHealth::Down)
        return finish(Status(ErrorCode::PeerFailed,
                             "destination died before replay"),
                      "", MigrationStage::Replay);
    for (const FleetCall &c : rec.journal) {
        auto r = nodes[dstId]->system().ecall(dstHandle, c.fn,
                                              c.args);
        if (!r.isOk())
            return finish(r.status(), "", MigrationStage::Replay);
        ++audit.replayedCalls;
    }

    /* --- Retire: the commit point. Only after the destination
     * holds the full state does the source copy die; a destination
     * loss even here aborts back to the intact source. */
    fireStage(seq, MigrationStage::Retire, srcId, dstId);
    if (nodes[dstId]->health() == NodeHealth::Down)
        return finish(Status(ErrorCode::PeerFailed,
                             "destination died at retire"),
                      "", MigrationStage::Retire);
    if (srcId != dstId && aliveOn(rec, srcId)) {
        (void)fabric.transfer(kFrontend, srcId, kMsgOverheadBytes);
        (void)nodes[srcId]->system().destroyEnclave(rec.handle);
    }
    if (srcId < nodes.size() && nodes[srcId]->liveEnclaves > 0)
        --nodes[srcId]->liveEnclaves;
    rec.nodeId = dstId;
    rec.handle = dstHandle;
    ++nodes[dstId]->liveEnclaves;
    return finish(Status::ok(), "completed", MigrationStage::Retire);
}

Status
Cluster::drainNode(NodeId id, const DrainBudget &budget)
{
    if (id >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    if (nodes[id]->placeable()) {
        /* Mirror of killNode's guard: evacuating the only usable
         * node would leave the evacuees nowhere to go. */
        bool survivor = false;
        for (const auto &other : nodes) {
            if (other->id() != id && other->placeable())
                survivor = true;
        }
        if (!survivor)
            return Status(ErrorCode::InvalidState,
                          "refusing to drain the last usable node");
    }
    ++drains;
    auto &tr = obs::Tracer::instance();
    obs::Span span;
    if (tr.active()) {
        span = obs::Span(tr.track("fleet"), "fleet.drain",
                         "cluster");
        span.arg("node", static_cast<int64_t>(id));
    }
    const SimTime start = fleetClock.now();
    const std::vector<Fid> fids = enclavesOn(id);
    uint32_t migrated = 0;
    uint32_t failures = 0;
    bool exhausted = false;
    for (Fid fid : fids) {
        if (migrated >= budget.maxMigrations ||
            (budget.maxNs != 0 &&
             fleetClock.now() - start >= budget.maxNs)) {
            exhausted = true;
            break;
        }
        auto target = placer.placeNode(nodes, {id});
        if (!target.isOk()) {
            exhausted = true;
            break;
        }
        Status s = migrateEnclave(fid, target.value());
        if (s.isOk()) {
            ++migrated;
            continue;
        }
        /* Fallback 1: in-place recovery. A live source copy simply
         * stays put; a lost one is rebuilt from the frontend's
         * watermark + journal on the same node if it still can. */
        auto it = enclaves.find(fid);
        if (it == enclaves.end())
            continue;
        FleetEnclave &rec = it->second;
        if (aliveOn(rec, id))
            continue;
        if (nodes[id]->placeable() &&
            materialize(rec, id, nullptr, /*via_frontend=*/true)
                .isOk())
            continue;
        ++failures;
    }
    if (exhausted || failures > 0) {
        /* Fallback 2: fleet-level quarantine re-places whatever is
         * still stranded; the node is done taking work. */
        (void)quarantineNode(id, "drain budget exhausted");
    }
    if (span.live()) {
        span.arg("migrated", static_cast<int64_t>(migrated));
        span.arg("quarantined",
                 static_cast<int64_t>(exhausted || failures > 0));
    }
    /* The drain succeeded iff every enclave that lived here is
     * still alive somewhere. */
    for (Fid fid : fids) {
        if (enclaves.count(fid) && !enclaveAlive(fid))
            return Status(ErrorCode::Degraded,
                          "drain lost enclave " +
                              std::to_string(fid));
    }
    return Status::ok();
}

Status
Cluster::killNode(NodeId id)
{
    if (id >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    ClusterNode &n = *nodes[id];
    if (n.health() == NodeHealth::Down)
        return Status::ok();
    bool survivor = false;
    for (const auto &other : nodes) {
        if (other->id() != id && other->placeable())
            survivor = true;
    }
    if (!survivor)
        return Status(ErrorCode::InvalidState,
                      "refusing to crash the last usable node");
    n.crash();
    JsonObject args;
    args["node"] = static_cast<int64_t>(id);
    fleetInstant("fleet.node_kill", std::move(args));
    return Status::ok();
}

Status
Cluster::recoverNode(NodeId id)
{
    if (id >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    ClusterNode &n = *nodes[id];
    if (n.health() == NodeHealth::Quarantined)
        return Status(ErrorCode::Degraded,
                      "node '" + n.name() + "' is quarantined");
    if (n.health() != NodeHealth::Down)
        return Status::ok();
    /* Re-place stranded enclaves first so nothing still points at
     * the node when its scrubbed (enclave-less) partitions return. */
    pump();
    Status s = n.reboot();
    if (s.isOk()) {
        /* The rebooted incarnation presents a fresh credential;
         * peers must re-verify before trusting the link again. */
        fabric.registerNode(id, n.credential());
        n.liveEnclaves = enclavesOn(id).size();
    }
    return s;
}

void
Cluster::partitionLink(NodeId a, NodeId b, bool down)
{
    fabric.setLinkDown(a, b, down);
    JsonObject args;
    args["a"] = static_cast<int64_t>(a);
    args["b"] = static_cast<int64_t>(b);
    args["down"] = down;
    fleetInstant("fleet.partition_link", std::move(args));
}

Status
Cluster::quarantineNode(NodeId id, const std::string &why)
{
    if (id >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    ClusterNode &n = *nodes[id];
    if (n.health() == NodeHealth::Quarantined)
        return Status::ok();
    n.setHealth(NodeHealth::Quarantined);
    ++fleetQuarantines;
    JsonObject args;
    args["node"] = static_cast<int64_t>(id);
    args["why"] = why;
    fleetInstant("fleet.quarantine", std::move(args));
    /* Device-level quarantine through the node Supervisor is
     * idempotent: devices it already gave up on are not re-dumped
     * and the escalation hook does not re-fire. */
    for (const std::string &dev : n.deviceNames())
        (void)n.supervisor().quarantineDevice(dev, why);
    std::vector<FleetEnclave *> stranded;
    for (Fid fid : enclavesOn(id)) {
        auto it = enclaves.find(fid);
        if (it != enclaves.end())
            stranded.push_back(&it->second);
    }
    recoverBatch(stranded);
    return Status::ok();
}

void
Cluster::pump()
{
    for (auto &n : nodes) {
        if (n->health() == NodeHealth::Down ||
            n->health() == NodeHealth::Quarantined)
            continue;
        n->supervisor().pump();
    }
    /* Re-place enclaves stranded on dead or quarantined nodes.
     * Recoveries never change which *other* records are stranded
     * (they only move enclaves onto healthy nodes), so collecting
     * the sweep up front matches the serial in-place loop and lets
     * the parallel engine batch it across target domains. */
    std::vector<FleetEnclave *> stranded;
    for (auto &[fid, rec] : enclaves) {
        (void)fid;
        if (rec.nodeId >= nodes.size())
            continue;
        NodeHealth h = nodes[rec.nodeId]->health();
        if (h == NodeHealth::Down || h == NodeHealth::Quarantined)
            stranded.push_back(&rec);
    }
    recoverBatch(stranded);
}

bool
Cluster::exists(Fid fid) const
{
    return enclaves.count(fid) != 0;
}

Result<NodeId>
Cluster::nodeOf(Fid fid) const
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound,
                      "fid " + std::to_string(fid));
    return it->second.nodeId;
}

bool
Cluster::enclaveAlive(Fid fid)
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return false;
    return aliveOn(it->second, it->second.nodeId);
}

uint64_t
Cluster::ackedCalls(Fid fid) const
{
    auto it = enclaves.find(fid);
    return it == enclaves.end() ? 0 : it->second.acked;
}

std::vector<Fid>
Cluster::enclavesOn(NodeId id) const
{
    std::vector<Fid> fids;
    for (const auto &[fid, rec] : enclaves) {
        if (rec.nodeId == id)
            fids.push_back(fid);
    }
    return fids;
}

JsonValue
Cluster::report()
{
    JsonArray nodeArr;
    for (auto &n : nodes) {
        JsonObject o;
        o["name"] = n->name();
        o["health"] = nodeHealthName(n->health());
        o["live_enclaves"] =
            static_cast<int64_t>(n->liveEnclaves);
        nodeArr.push_back(JsonValue(std::move(o)));
    }
    JsonArray migArr;
    for (const MigrationAudit &m : migrationLog) {
        JsonObject o;
        o["seq"] = static_cast<int64_t>(m.seq);
        o["fid"] = static_cast<int64_t>(m.fid);
        o["src"] = static_cast<int64_t>(m.src);
        o["dst"] = static_cast<int64_t>(m.dst);
        o["outcome"] = m.outcome;
        o["src_alive"] = m.srcAlive;
        o["dst_alive"] = m.dstAlive;
        o["converged"] = m.converged();
        o["replayed_calls"] =
            static_cast<int64_t>(m.replayedCalls);
        o["start_ns"] = static_cast<int64_t>(m.startNs);
        o["end_ns"] = static_cast<int64_t>(m.endNs);
        migArr.push_back(JsonValue(std::move(o)));
    }
    JsonObject r;
    r["num_nodes"] = static_cast<int64_t>(nodes.size());
    r["placements"] = static_cast<int64_t>(placements);
    r["migrations_completed"] =
        static_cast<int64_t>(migrationsCompleted);
    r["migrations_aborted"] =
        static_cast<int64_t>(migrationsAborted);
    r["drains"] = static_cast<int64_t>(drains);
    r["fleet_quarantines"] =
        static_cast<int64_t>(fleetQuarantines);
    r["replacements"] = static_cast<int64_t>(replacements);
    r["supervisor_escalations"] =
        static_cast<int64_t>(supervisorEscalations);
    r["nodes"] = JsonValue(std::move(nodeArr));
    r["migrations"] = JsonValue(std::move(migArr));
    r["interconnect"] = fabric.report();
    r["end_time_ns"] = static_cast<int64_t>(fleetClock.now());
    return JsonValue(std::move(r));
}

} // namespace cronus::cluster
