#include "cluster.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace cronus::cluster
{

namespace
{

/** Modeled wire overhead of one fleet control message. */
constexpr uint64_t kMsgOverheadBytes = 64;
/** Journal entry framing (fn-name length, arg length, rid). */
constexpr uint64_t kJournalEntryOverheadBytes = 16;

/** Static-lifetime instant names (the tracer stores the pointer). */
const char *
stageInstantName(MigrationStage stage)
{
    switch (stage) {
      case MigrationStage::Snapshot: return "migrate.snapshot";
      case MigrationStage::ReAttest: return "migrate.reattest";
      case MigrationStage::Transfer: return "migrate.transfer";
      case MigrationStage::Restore:  return "migrate.restore";
      case MigrationStage::Replay:   return "migrate.replay";
      case MigrationStage::Retire:   return "migrate.retire";
    }
    return "migrate.?";
}

void
fleetInstant(const char *name, JsonObject args)
{
    auto &tr = obs::Tracer::instance();
    if (!tr.active())
        return;
    tr.instant(tr.track("fleet"), name, "cluster", std::move(args));
}

} // namespace

const char *
migrationStageName(MigrationStage stage)
{
    switch (stage) {
      case MigrationStage::Snapshot: return "snapshot";
      case MigrationStage::ReAttest: return "reattest";
      case MigrationStage::Transfer: return "transfer";
      case MigrationStage::Restore:  return "restore";
      case MigrationStage::Replay:   return "replay";
      case MigrationStage::Retire:   return "retire";
    }
    return "?";
}

Result<MigrationStage>
migrationStageFromName(const std::string &name)
{
    for (MigrationStage s :
         {MigrationStage::Snapshot, MigrationStage::ReAttest,
          MigrationStage::Transfer, MigrationStage::Restore,
          MigrationStage::Replay, MigrationStage::Retire}) {
        if (name == migrationStageName(s))
            return s;
    }
    return Status(ErrorCode::InvalidArgument,
                  "unknown migration stage '" + name + "'");
}

Cluster::Cluster(const ClusterConfig &config)
    : cfg(config), fabric(fleetClock, config.link),
      placer(config.degradedPenalty)
{
    for (uint32_t i = 0; i < cfg.numNodes; ++i) {
        auto n = std::make_unique<ClusterNode>(
            i, "node" + std::to_string(i), cfg.nodeSystem,
            &fleetClock, cfg.supervisor);
        NodeCredential cred = n->credential();
        fabric.registerNode(i, cred);
        fabric.trustMeasurement(cred.dtMeasurement);
        /* Node-local quarantine escalates to fleet placement state
         * (and only placement state: the fleet does not re-dump or
         * re-quarantine what the node already handled). */
        n->supervisor().setOnQuarantine(
            [this, i](const std::string &) {
                ++supervisorEscalations;
                ClusterNode &esc = *nodes[i];
                if (esc.health() == NodeHealth::Healthy)
                    esc.setHealth(NodeHealth::Degraded);
            });
        nodes.push_back(std::move(n));
    }
}

Cluster::~Cluster() = default;

uint64_t
Cluster::journalBytes(const FleetEnclave &rec) const
{
    uint64_t bytes = 0;
    for (const FleetCall &c : rec.journal)
        bytes += c.fn.size() + c.args.size() +
                 kJournalEntryOverheadBytes;
    return bytes;
}

void
Cluster::fireStage(uint64_t seq, MigrationStage stage, NodeId src,
                   NodeId dst)
{
    if (auto &tr = obs::Tracer::instance(); tr.active()) {
        JsonObject args;
        args["seq"] = static_cast<int64_t>(seq);
        args["src"] = static_cast<int64_t>(src);
        args["dst"] = static_cast<int64_t>(dst);
        tr.instant(tr.track("fleet"), stageInstantName(stage),
                   "cluster", std::move(args));
    }
    if (stageHook)
        stageHook(seq, stage, src, dst);
}

bool
Cluster::aliveOn(FleetEnclave &rec, NodeId id)
{
    if (rec.nodeId != id || id >= nodes.size())
        return false;
    ClusterNode &n = *nodes[id];
    if (n.health() == NodeHealth::Down)
        return false;
    if (rec.handle.host == nullptr)
        return false;
    auto p = n.system().spm().partition(
        rec.handle.host->partitionId());
    return p.isOk() &&
           p.value()->state == tee::PartitionState::Ready;
}

Result<Fid>
Cluster::placeEnclave(const std::string &manifest_json,
                      const std::string &image_name,
                      const Bytes &image)
{
    auto target = placer.placeNode(nodes);
    if (!target.isOk())
        return target.status();
    ClusterNode &n = *nodes[target.value()];
    /* Ship manifest + image to the node before it can create. */
    CRONUS_RETURN_IF_ERROR(fabric.transfer(
        kFrontend, target.value(),
        manifest_json.size() + image.size() + kMsgOverheadBytes));
    auto h = n.system().createEnclave(manifest_json, image_name,
                                      image);
    if (!h.isOk())
        return h.status();

    FleetEnclave rec;
    rec.fid = nextFid++;
    rec.nodeId = target.value();
    rec.handle = h.value();
    rec.manifestJson = manifest_json;
    rec.imageName = image_name;
    rec.image = image;
    Fid fid = rec.fid;
    enclaves.emplace(fid, std::move(rec));
    ++n.liveEnclaves;
    ++placements;
    placer.notePlacement(fid, target.value());
    JsonObject args;
    args["fid"] = static_cast<int64_t>(fid);
    args["node"] = static_cast<int64_t>(target.value());
    fleetInstant("fleet.place", std::move(args));
    return fid;
}

Result<Bytes>
Cluster::call(Fid fid, const std::string &fn, const Bytes &args)
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound,
                      "fid " + std::to_string(fid));
    FleetEnclave &rec = it->second;
    ClusterNode &n = *nodes[rec.nodeId];
    if (n.health() == NodeHealth::Down)
        return Status(ErrorCode::PeerFailed,
                      "node '" + n.name() + "' is down");
    CRONUS_RETURN_IF_ERROR(fabric.transfer(
        kFrontend, rec.nodeId,
        fn.size() + args.size() + kMsgOverheadBytes));
    auto r = n.system().ecall(rec.handle, fn, args);
    if (!r.isOk())
        return r;
    CRONUS_RETURN_IF_ERROR(fabric.transfer(
        rec.nodeId, kFrontend,
        r.value().size() + kMsgOverheadBytes));
    /* The call is acked only now; journaling first means an acked
     * call is always reconstructible as watermark + replay. */
    rec.journal.push_back(FleetCall{fn, args});
    ++rec.acked;
    if (cfg.autoCheckpointEvery != 0 &&
        ++rec.callsSinceCkpt >= cfg.autoCheckpointEvery) {
        /* Best effort: a failed checkpoint leaves the journal
         * covering the un-checkpointed tail. */
        (void)checkpoint(fid);
    }
    return r;
}

Status
Cluster::checkpoint(Fid fid)
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound,
                      "fid " + std::to_string(fid));
    FleetEnclave &rec = it->second;
    ClusterNode &n = *nodes[rec.nodeId];
    if (n.health() == NodeHealth::Down)
        return Status(ErrorCode::PeerFailed,
                      "node '" + n.name() + "' is down");
    auto sealed = n.system().checkpointEnclave(rec.handle);
    if (!sealed.isOk())
        return sealed.status();
    CRONUS_RETURN_IF_ERROR(
        fabric.transfer(rec.nodeId, kFrontend,
                        sealed.value().size() + kMsgOverheadBytes));
    rec.sealed = sealed.value();
    rec.sealedSecret = rec.handle.secret;
    rec.haveCheckpoint = true;
    rec.journal.clear();
    rec.callsSinceCkpt = 0;
    return Status::ok();
}

Status
Cluster::destroyEnclave(Fid fid)
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound,
                      "fid " + std::to_string(fid));
    FleetEnclave &rec = it->second;
    ClusterNode &n = *nodes[rec.nodeId];
    Status s = Status::ok();
    if (aliveOn(rec, rec.nodeId)) {
        (void)fabric.transfer(kFrontend, rec.nodeId,
                              kMsgOverheadBytes);
        s = n.system().destroyEnclave(rec.handle);
    }
    if (n.liveEnclaves > 0)
        --n.liveEnclaves;
    enclaves.erase(it);
    return s;
}

Status
Cluster::materialize(FleetEnclave &rec, NodeId target,
                     uint64_t *replayed, bool via_frontend)
{
    if (target >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    ClusterNode &n = *nodes[target];
    if (!n.placeable())
        return Status(ErrorCode::InvalidState,
                      "node '" + n.name() + "' is not placeable");
    NodeId from = via_frontend ? kFrontend : rec.nodeId;
    CRONUS_RETURN_IF_ERROR(fabric.transfer(
        from, target,
        rec.manifestJson.size() + rec.image.size() +
            rec.sealed.size() + journalBytes(rec) +
            kMsgOverheadBytes));
    auto fresh = n.system().createEnclave(rec.manifestJson,
                                          rec.imageName, rec.image);
    if (!fresh.isOk())
        return fresh.status();
    core::AppHandle h = fresh.value();
    if (rec.haveCheckpoint) {
        Status s = n.system().restoreEnclave(h, rec.sealed,
                                             rec.sealedSecret);
        if (!s.isOk()) {
            (void)n.system().destroyEnclave(h);
            return s;
        }
    }
    for (const FleetCall &c : rec.journal) {
        auto r = n.system().ecall(h, c.fn, c.args);
        if (!r.isOk()) {
            (void)n.system().destroyEnclave(h);
            return r.status();
        }
        if (replayed != nullptr)
            ++*replayed;
    }
    /* Commit: the record now points at the new copy. */
    if (rec.nodeId < nodes.size() &&
        nodes[rec.nodeId]->liveEnclaves > 0)
        --nodes[rec.nodeId]->liveEnclaves;
    rec.nodeId = target;
    rec.handle = h;
    ++n.liveEnclaves;
    return Status::ok();
}

Status
Cluster::recoverEnclave(FleetEnclave &rec)
{
    auto target = placer.placeNode(nodes);
    if (!target.isOk())
        return target.status();
    Status s = materialize(rec, target.value(), nullptr,
                           /*via_frontend=*/true);
    if (s.isOk()) {
        ++replacements;
        placer.notePlacement(rec.fid, target.value());
        JsonObject args;
        args["fid"] = static_cast<int64_t>(rec.fid);
        args["node"] = static_cast<int64_t>(target.value());
        fleetInstant("fleet.replace", std::move(args));
    }
    return s;
}

Status
Cluster::migrateEnclave(Fid fid, NodeId dstId)
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound,
                      "fid " + std::to_string(fid));
    if (dstId >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    FleetEnclave &rec = it->second;
    const NodeId srcId = rec.nodeId;

    const uint64_t seq = ++migrationSeq;
    MigrationAudit audit;
    audit.seq = seq;
    audit.fid = fid;
    audit.src = srcId;
    audit.dst = dstId;
    audit.startNs = fleetClock.now();

    auto &tr = obs::Tracer::instance();
    obs::Span span;
    if (tr.active()) {
        span = obs::Span(tr.track("fleet"), "fleet.migrate",
                         "cluster");
        span.arg("fid", static_cast<int64_t>(fid));
        span.arg("src", static_cast<int64_t>(srcId));
        span.arg("dst", static_cast<int64_t>(dstId));
    }

    core::AppHandle dstHandle;
    bool dstCreated = false;

    auto finish = [&](Status s, const char *outcome,
                      MigrationStage stage) -> Status {
        if (!s.isOk()) {
            /* Abort path: tear down any partial destination copy
             * (possible only while its node is still up). */
            if (dstCreated &&
                nodes[dstId]->health() != NodeHealth::Down)
                (void)nodes[dstId]->system().destroyEnclave(
                    dstHandle);
            audit.outcome = std::string("aborted:") +
                            migrationStageName(stage) + ": " +
                            s.message();
            ++migrationsAborted;
        } else {
            audit.outcome = outcome;
            ++migrationsCompleted;
        }
        audit.srcAlive = srcId != dstId && aliveOn(rec, srcId);
        audit.dstAlive = aliveOn(rec, dstId);
        audit.endNs = fleetClock.now();
        if (span.live())
            span.arg("outcome", audit.outcome);
        migrationLog.push_back(audit);
        return s;
    };

    /* --- Snapshot: fix the replay set (watermark + journal are
     * already frontend-durable; a dead source does not lose acked
     * calls). The destination must look usable before we start. */
    fireStage(seq, MigrationStage::Snapshot, srcId, dstId);
    if (!nodes[dstId]->placeable())
        return finish(Status(ErrorCode::InvalidState,
                             "destination '" +
                                 nodes[dstId]->name() +
                                 "' is not placeable"),
                      "", MigrationStage::Snapshot);

    /* --- ReAttest: the sender verifies the destination's
     * measurement root before any sealed state moves; the
     * destination symmetrically verifies a node sender. */
    fireStage(seq, MigrationStage::ReAttest, srcId, dstId);
    if (nodes[dstId]->health() == NodeHealth::Down)
        return finish(Status(ErrorCode::PeerFailed,
                             "destination died before attestation"),
                      "", MigrationStage::ReAttest);
    bool srcUp = aliveOn(rec, srcId) || srcId == dstId;
    NodeId sender = srcUp ? srcId : kFrontend;
    Status att = fabric.ensureAttested(sender, dstId);
    if (att.isOk() && sender != kFrontend)
        att = fabric.ensureAttested(dstId, sender);
    if (!att.isOk())
        return finish(att, "", MigrationStage::ReAttest);

    /* --- Transfer: sealed watermark + journal to the destination
     * (straight from the source, or from the frontend's durable
     * copy when the source is already dead). */
    fireStage(seq, MigrationStage::Transfer, srcId, dstId);
    if (nodes[dstId]->health() == NodeHealth::Down)
        return finish(Status(ErrorCode::PeerFailed,
                             "destination died in transfer"),
                      "", MigrationStage::Transfer);
    srcUp = aliveOn(rec, srcId) || srcId == dstId;
    sender = srcUp ? srcId : kFrontend;
    Status t = fabric.transfer(
        sender, dstId,
        rec.manifestJson.size() + rec.image.size() +
            rec.sealed.size() + journalBytes(rec) +
            kMsgOverheadBytes);
    if (!t.isOk())
        return finish(t, "", MigrationStage::Transfer);

    /* --- Restore: fresh enclave on the destination, watermark
     * restored into it (the blob re-seals under the new secret). */
    fireStage(seq, MigrationStage::Restore, srcId, dstId);
    if (nodes[dstId]->health() == NodeHealth::Down)
        return finish(Status(ErrorCode::PeerFailed,
                             "destination died before restore"),
                      "", MigrationStage::Restore);
    auto fresh = nodes[dstId]->system().createEnclave(
        rec.manifestJson, rec.imageName, rec.image);
    if (!fresh.isOk())
        return finish(fresh.status(), "", MigrationStage::Restore);
    dstHandle = fresh.value();
    dstCreated = true;
    if (rec.haveCheckpoint) {
        Status s = nodes[dstId]->system().restoreEnclave(
            dstHandle, rec.sealed, rec.sealedSecret);
        if (!s.isOk())
            return finish(s, "", MigrationStage::Restore);
    }

    /* --- Replay: the journaled calls past the watermark, in
     * order. After this the destination state equals the source's
     * acked state. */
    fireStage(seq, MigrationStage::Replay, srcId, dstId);
    if (nodes[dstId]->health() == NodeHealth::Down)
        return finish(Status(ErrorCode::PeerFailed,
                             "destination died before replay"),
                      "", MigrationStage::Replay);
    for (const FleetCall &c : rec.journal) {
        auto r = nodes[dstId]->system().ecall(dstHandle, c.fn,
                                              c.args);
        if (!r.isOk())
            return finish(r.status(), "", MigrationStage::Replay);
        ++audit.replayedCalls;
    }

    /* --- Retire: the commit point. Only after the destination
     * holds the full state does the source copy die; a destination
     * loss even here aborts back to the intact source. */
    fireStage(seq, MigrationStage::Retire, srcId, dstId);
    if (nodes[dstId]->health() == NodeHealth::Down)
        return finish(Status(ErrorCode::PeerFailed,
                             "destination died at retire"),
                      "", MigrationStage::Retire);
    if (srcId != dstId && aliveOn(rec, srcId)) {
        (void)fabric.transfer(kFrontend, srcId, kMsgOverheadBytes);
        (void)nodes[srcId]->system().destroyEnclave(rec.handle);
    }
    if (srcId < nodes.size() && nodes[srcId]->liveEnclaves > 0)
        --nodes[srcId]->liveEnclaves;
    rec.nodeId = dstId;
    rec.handle = dstHandle;
    ++nodes[dstId]->liveEnclaves;
    return finish(Status::ok(), "completed", MigrationStage::Retire);
}

Status
Cluster::drainNode(NodeId id, const DrainBudget &budget)
{
    if (id >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    if (nodes[id]->placeable()) {
        /* Mirror of killNode's guard: evacuating the only usable
         * node would leave the evacuees nowhere to go. */
        bool survivor = false;
        for (const auto &other : nodes) {
            if (other->id() != id && other->placeable())
                survivor = true;
        }
        if (!survivor)
            return Status(ErrorCode::InvalidState,
                          "refusing to drain the last usable node");
    }
    ++drains;
    auto &tr = obs::Tracer::instance();
    obs::Span span;
    if (tr.active()) {
        span = obs::Span(tr.track("fleet"), "fleet.drain",
                         "cluster");
        span.arg("node", static_cast<int64_t>(id));
    }
    const SimTime start = fleetClock.now();
    const std::vector<Fid> fids = enclavesOn(id);
    uint32_t migrated = 0;
    uint32_t failures = 0;
    bool exhausted = false;
    for (Fid fid : fids) {
        if (migrated >= budget.maxMigrations ||
            (budget.maxNs != 0 &&
             fleetClock.now() - start >= budget.maxNs)) {
            exhausted = true;
            break;
        }
        auto target = placer.placeNode(nodes, {id});
        if (!target.isOk()) {
            exhausted = true;
            break;
        }
        Status s = migrateEnclave(fid, target.value());
        if (s.isOk()) {
            ++migrated;
            continue;
        }
        /* Fallback 1: in-place recovery. A live source copy simply
         * stays put; a lost one is rebuilt from the frontend's
         * watermark + journal on the same node if it still can. */
        auto it = enclaves.find(fid);
        if (it == enclaves.end())
            continue;
        FleetEnclave &rec = it->second;
        if (aliveOn(rec, id))
            continue;
        if (nodes[id]->placeable() &&
            materialize(rec, id, nullptr, /*via_frontend=*/true)
                .isOk())
            continue;
        ++failures;
    }
    if (exhausted || failures > 0) {
        /* Fallback 2: fleet-level quarantine re-places whatever is
         * still stranded; the node is done taking work. */
        (void)quarantineNode(id, "drain budget exhausted");
    }
    if (span.live()) {
        span.arg("migrated", static_cast<int64_t>(migrated));
        span.arg("quarantined",
                 static_cast<int64_t>(exhausted || failures > 0));
    }
    /* The drain succeeded iff every enclave that lived here is
     * still alive somewhere. */
    for (Fid fid : fids) {
        if (enclaves.count(fid) && !enclaveAlive(fid))
            return Status(ErrorCode::Degraded,
                          "drain lost enclave " +
                              std::to_string(fid));
    }
    return Status::ok();
}

Status
Cluster::killNode(NodeId id)
{
    if (id >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    ClusterNode &n = *nodes[id];
    if (n.health() == NodeHealth::Down)
        return Status::ok();
    bool survivor = false;
    for (const auto &other : nodes) {
        if (other->id() != id && other->placeable())
            survivor = true;
    }
    if (!survivor)
        return Status(ErrorCode::InvalidState,
                      "refusing to crash the last usable node");
    n.crash();
    JsonObject args;
    args["node"] = static_cast<int64_t>(id);
    fleetInstant("fleet.node_kill", std::move(args));
    return Status::ok();
}

Status
Cluster::recoverNode(NodeId id)
{
    if (id >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    ClusterNode &n = *nodes[id];
    if (n.health() == NodeHealth::Quarantined)
        return Status(ErrorCode::Degraded,
                      "node '" + n.name() + "' is quarantined");
    if (n.health() != NodeHealth::Down)
        return Status::ok();
    /* Re-place stranded enclaves first so nothing still points at
     * the node when its scrubbed (enclave-less) partitions return. */
    pump();
    Status s = n.reboot();
    if (s.isOk()) {
        /* The rebooted incarnation presents a fresh credential;
         * peers must re-verify before trusting the link again. */
        fabric.registerNode(id, n.credential());
        n.liveEnclaves = enclavesOn(id).size();
    }
    return s;
}

void
Cluster::partitionLink(NodeId a, NodeId b, bool down)
{
    fabric.setLinkDown(a, b, down);
    JsonObject args;
    args["a"] = static_cast<int64_t>(a);
    args["b"] = static_cast<int64_t>(b);
    args["down"] = down;
    fleetInstant("fleet.partition_link", std::move(args));
}

Status
Cluster::quarantineNode(NodeId id, const std::string &why)
{
    if (id >= nodes.size())
        return Status(ErrorCode::InvalidArgument, "bad node id");
    ClusterNode &n = *nodes[id];
    if (n.health() == NodeHealth::Quarantined)
        return Status::ok();
    n.setHealth(NodeHealth::Quarantined);
    ++fleetQuarantines;
    JsonObject args;
    args["node"] = static_cast<int64_t>(id);
    args["why"] = why;
    fleetInstant("fleet.quarantine", std::move(args));
    /* Device-level quarantine through the node Supervisor is
     * idempotent: devices it already gave up on are not re-dumped
     * and the escalation hook does not re-fire. */
    for (const std::string &dev : n.deviceNames())
        (void)n.supervisor().quarantineDevice(dev, why);
    for (Fid fid : enclavesOn(id)) {
        auto it = enclaves.find(fid);
        if (it != enclaves.end())
            (void)recoverEnclave(it->second);
    }
    return Status::ok();
}

void
Cluster::pump()
{
    for (auto &n : nodes) {
        if (n->health() == NodeHealth::Down ||
            n->health() == NodeHealth::Quarantined)
            continue;
        n->supervisor().pump();
    }
    /* Re-place enclaves stranded on dead or quarantined nodes. */
    for (auto &[fid, rec] : enclaves) {
        (void)fid;
        if (rec.nodeId >= nodes.size())
            continue;
        NodeHealth h = nodes[rec.nodeId]->health();
        if (h == NodeHealth::Down || h == NodeHealth::Quarantined)
            (void)recoverEnclave(rec);
    }
}

bool
Cluster::exists(Fid fid) const
{
    return enclaves.count(fid) != 0;
}

Result<NodeId>
Cluster::nodeOf(Fid fid) const
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound,
                      "fid " + std::to_string(fid));
    return it->second.nodeId;
}

bool
Cluster::enclaveAlive(Fid fid)
{
    auto it = enclaves.find(fid);
    if (it == enclaves.end())
        return false;
    return aliveOn(it->second, it->second.nodeId);
}

uint64_t
Cluster::ackedCalls(Fid fid) const
{
    auto it = enclaves.find(fid);
    return it == enclaves.end() ? 0 : it->second.acked;
}

std::vector<Fid>
Cluster::enclavesOn(NodeId id) const
{
    std::vector<Fid> fids;
    for (const auto &[fid, rec] : enclaves) {
        if (rec.nodeId == id)
            fids.push_back(fid);
    }
    return fids;
}

JsonValue
Cluster::report()
{
    JsonArray nodeArr;
    for (auto &n : nodes) {
        JsonObject o;
        o["name"] = n->name();
        o["health"] = nodeHealthName(n->health());
        o["live_enclaves"] =
            static_cast<int64_t>(n->liveEnclaves);
        nodeArr.push_back(JsonValue(std::move(o)));
    }
    JsonArray migArr;
    for (const MigrationAudit &m : migrationLog) {
        JsonObject o;
        o["seq"] = static_cast<int64_t>(m.seq);
        o["fid"] = static_cast<int64_t>(m.fid);
        o["src"] = static_cast<int64_t>(m.src);
        o["dst"] = static_cast<int64_t>(m.dst);
        o["outcome"] = m.outcome;
        o["src_alive"] = m.srcAlive;
        o["dst_alive"] = m.dstAlive;
        o["converged"] = m.converged();
        o["replayed_calls"] =
            static_cast<int64_t>(m.replayedCalls);
        o["start_ns"] = static_cast<int64_t>(m.startNs);
        o["end_ns"] = static_cast<int64_t>(m.endNs);
        migArr.push_back(JsonValue(std::move(o)));
    }
    JsonObject r;
    r["num_nodes"] = static_cast<int64_t>(nodes.size());
    r["placements"] = static_cast<int64_t>(placements);
    r["migrations_completed"] =
        static_cast<int64_t>(migrationsCompleted);
    r["migrations_aborted"] =
        static_cast<int64_t>(migrationsAborted);
    r["drains"] = static_cast<int64_t>(drains);
    r["fleet_quarantines"] =
        static_cast<int64_t>(fleetQuarantines);
    r["replacements"] = static_cast<int64_t>(replacements);
    r["supervisor_escalations"] =
        static_cast<int64_t>(supervisorEscalations);
    r["nodes"] = JsonValue(std::move(nodeArr));
    r["migrations"] = JsonValue(std::move(migArr));
    r["interconnect"] = fabric.report();
    r["end_time_ns"] = static_cast<int64_t>(fleetClock.now());
    return JsonValue(std::move(r));
}

} // namespace cronus::cluster
