#include "fleet_injector.hh"

namespace cronus::cluster
{

using inject::FaultAction;
using inject::FaultTrigger;

FleetInjector::FleetInjector(Cluster &target,
                             const inject::FaultPlan &plan)
    : cluster(target)
{
    for (const auto &e : plan.events())
        if (inject::isFleetEvent(e.trigger, e.action))
            events.push_back(e);
}

FleetInjector::~FleetInjector()
{
    if (armed)
        cluster.setStageHook(nullptr);
}

void
FleetInjector::arm()
{
    if (armed)
        return;
    armed = true;
    cluster.setStageHook([this](uint64_t seq, MigrationStage stage,
                                NodeId src, NodeId dst) {
        onStage(seq, stage, src, dst);
    });
}

Result<NodeId>
FleetInjector::resolveNode(const std::string &name) const
{
    for (NodeId id = 0; id < cluster.numNodes(); ++id)
        if (cluster.node(id).name() == name)
            return id;
    return Status(ErrorCode::NotFound,
                  "no fleet node named '" + name + "'");
}

void
FleetInjector::note(const inject::FaultEvent &e,
                    const std::string &what)
{
    firedIds.insert(e.id);
    firings.push_back({e.id, what, cluster.clock().now()});
}

void
FleetInjector::poll()
{
    for (const auto &e : events) {
        if (firedIds.count(e.id))
            continue;
        if (e.trigger.kind != FaultTrigger::Kind::AtTime ||
            cluster.clock().now() < e.trigger.when)
            continue;
        if (e.action.kind == FaultAction::Kind::KillNode) {
            auto id = resolveNode(e.action.node);
            if (!id.isOk()) {
                note(e, "kill_node " + e.action.node + ": " +
                            id.status().message());
                continue;
            }
            Status s = cluster.killNode(id.value());
            note(e, "kill_node " + e.action.node + ": " +
                        (s.isOk() ? "ok" : s.message()));
        } else if (e.action.kind == FaultAction::Kind::PartitionLink) {
            auto a = resolveNode(e.action.node);
            if (!a.isOk()) {
                note(e, "partition_link " + e.action.node + ": " +
                            a.status().message());
                continue;
            }
            NodeId b = kFrontend;
            if (!e.action.nodeB.empty()) {
                auto rb = resolveNode(e.action.nodeB);
                if (!rb.isOk()) {
                    note(e, "partition_link " + e.action.nodeB +
                                ": " + rb.status().message());
                    continue;
                }
                b = rb.value();
            }
            cluster.partitionLink(a.value(), b, true);
            note(e, "partition_link " + e.action.node + "<->" +
                        (e.action.nodeB.empty() ? "frontend"
                                                : e.action.nodeB) +
                        ": down");
        }
    }
}

void
FleetInjector::onStage(uint64_t seq, MigrationStage stage,
                       NodeId src, NodeId dst)
{
    for (const auto &e : events) {
        if (firedIds.count(e.id))
            continue;
        if (e.trigger.kind != FaultTrigger::Kind::NthMigration ||
            e.action.kind != FaultAction::Kind::KillMigration)
            continue;
        if (seq != e.trigger.nth)
            continue;
        auto want = migrationStageFromName(e.action.stage);
        if (!want.isOk() || want.value() != stage)
            continue;
        NodeId victim = e.action.killDst ? dst : src;
        Status s = cluster.killNode(victim);
        note(e, std::string("kill_migration ") +
                    (e.action.killDst ? "dst" : "src") + " node" +
                    std::to_string(victim) + " at " + e.action.stage +
                    ": " + (s.isOk() ? "ok" : s.message()));
    }
}

size_t
FleetInjector::pending() const
{
    return events.size() - firedIds.size();
}

JsonValue
FleetInjector::report() const
{
    JsonObject o;
    o["fleet_events"] = static_cast<int64_t>(events.size());
    o["fired"] = static_cast<int64_t>(firings.size());
    o["pending"] = static_cast<int64_t>(pending());
    JsonArray arr;
    for (const auto &f : firings) {
        JsonObject fo;
        fo["event"] = static_cast<int64_t>(f.eventId);
        fo["what"] = f.what;
        fo["at_ns"] = static_cast<int64_t>(f.atNs);
        arr.push_back(JsonValue(std::move(fo)));
    }
    o["firings"] = JsonValue(std::move(arr));
    return JsonValue(std::move(o));
}

} // namespace cronus::cluster
