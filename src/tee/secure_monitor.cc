#include "secure_monitor.hh"

#include "base/logging.hh"

namespace cronus::tee
{

SecureMonitor::SecureMonitor(hw::Platform &platform)
    : plat(platform)
{
    /* Derive AtK from the RoT and endorse it: clients verify the
     * endorsement chain RoT -> AtK -> report (§IV-A). */
    Bytes atk_seed = toBytes("cronus-atk:");
    Bytes rot_pub = plat.rootOfTrust().publicKey().toBytes();
    atk_seed.insert(atk_seed.end(), rot_pub.begin(), rot_pub.end());
    atk = crypto::deriveKeyPair(atk_seed);
    atkEndorsementSig = plat.rootOfTrust().sign(atk.pub.toBytes());

    Bytes lsk_seed = toBytes("cronus-lsk:");
    lsk_seed.insert(lsk_seed.end(), rot_pub.begin(), rot_pub.end());
    lsk = crypto::digestToBytes(crypto::sha256(lsk_seed));
}

Status
SecureMonitor::boot(const hw::DeviceTree &dt)
{
    if (bootedFlag)
        return Status(ErrorCode::InvalidState, "already booted");
    /* Only valid DTs are accepted (TrustPath-style checks). */
    CRONUS_RETURN_IF_ERROR(dt.validate());

    /* Lock secure devices down so the normal world cannot
     * reconfigure them (§V-A). */
    for (const auto &node : dt.all()) {
        if (node.world == hw::World::Secure) {
            CRONUS_RETURN_IF_ERROR(plat.tzpc().assignDevice(
                node.name, hw::World::Secure, hw::World::Secure));
        }
    }
    plat.lockDown();
    frozenDt = dt;
    bootedFlag = true;
    stats.counter("boots").inc();
    return Status::ok();
}

const hw::DeviceTree &
SecureMonitor::deviceTree() const
{
    CRONUS_ASSERT(frozenDt.has_value(),
                  "deviceTree() before secure boot");
    return *frozenDt;
}

void
SecureMonitor::worldSwitch()
{
    plat.clock().advance(plat.costs().worldSwitchNs);
    stats.counter("world_switches").inc();
}

void
SecureMonitor::sel2RpcSwitch()
{
    plat.clock().advance(plat.costs().sel2RpcSwitchNs);
    stats.counter("sel2_rpc_switches").inc();
}

crypto::Signature
SecureMonitor::signReport(const Bytes &report)
{
    plat.clock().advance(plat.costs().signNs);
    stats.counter("reports_signed").inc();
    return crypto::sign(atk.priv, report);
}

} // namespace cronus::tee
