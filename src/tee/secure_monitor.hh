/**
 * @file
 * Secure monitor (EL3) model.
 *
 * Responsible for secure boot (validating the device tree, locking
 * secure devices and memory regions), world switching (with cost
 * accounting -- the S-EL2 RPC switch cost is what sRPC amortizes),
 * the platform attestation key AtK, and the local seal key LSK used
 * by local attestation (§IV-A).
 */

#ifndef CRONUS_TEE_SECURE_MONITOR_HH
#define CRONUS_TEE_SECURE_MONITOR_HH

#include <optional>

#include "base/stats.hh"
#include "crypto/keys.hh"
#include "hw/device_tree.hh"
#include "hw/platform.hh"

namespace cronus::tee
{

class SecureMonitor
{
  public:
    explicit SecureMonitor(hw::Platform &platform);

    /**
     * Secure boot: validate the DT provided by the (untrusted)
     * normal OS, assign secure devices per the DT, lock down the
     * TZASC/TZPC, and freeze the DT for attestation (§IV-A: the DT
     * is retrieved once during SPM initialization and cannot be
     * modified afterwards).
     */
    Status boot(const hw::DeviceTree &dt);

    bool booted() const { return bootedFlag; }

    /** The frozen device tree (panics if not booted). */
    const hw::DeviceTree &deviceTree() const;

    /* --- world switching --- */

    /** One normal<->secure world switch; charges cost. */
    void worldSwitch();

    /** The four-context-switch S-EL2 cross-partition RPC leg. */
    void sel2RpcSwitch();

    uint64_t worldSwitchCount() const
    {
        return stats.value("world_switches");
    }
    uint64_t sel2SwitchCount() const
    {
        return stats.value("sel2_rpc_switches");
    }

    /* --- attestation --- */

    /** Attestation key, endorsed (signed) by the platform RoT. */
    const crypto::PublicKey &attestationKey() const
    {
        return atk.pub;
    }
    const crypto::Signature &atkEndorsement() const
    {
        return atkEndorsementSig;
    }

    /** Sign an attestation report with AtK; charges signNs. */
    crypto::Signature signReport(const Bytes &report);

    /** Local seal key shared by all partitions on this machine. */
    const Bytes &localSealKey() const { return lsk; }

    hw::Platform &platform() { return plat; }
    StatGroup &statistics() { return stats; }

  private:
    hw::Platform &plat;
    crypto::KeyPair atk;
    crypto::Signature atkEndorsementSig;
    Bytes lsk;
    std::optional<hw::DeviceTree> frozenDt;
    bool bootedFlag = false;
    StatGroup stats;
};

} // namespace cronus::tee

#endif // CRONUS_TEE_SECURE_MONITOR_HH
