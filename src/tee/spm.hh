/**
 * @file
 * Secure Partition Manager (S-EL2) model.
 *
 * The SPM isolates the secure world into partitions, each running
 * one MicroOS that manages exactly one device (§III-A). It owns the
 * stage-2 page tables, implements the inter-mOS shared-memory
 * workflow of Fig. 6 (including the page-shared-only-once rule), and
 * drives the proceed-trap failure recovery of §IV-D:
 *
 *   step 1  on failure, invalidate every surviving partition's
 *           stage-2 (and SMMU) entries for memory shared with the
 *           failed partition, then set r_f = 1 to block new shares;
 *   step 2  run the failure-clearing logic (scrub device + shared
 *           memory), reload the mOS, set r_f = 0;
 *   step 3  subsequent accesses to invalidated shared pages trap;
 *           the SPM unmaps/recovers the page and signals the
 *           accessing mEnclave so it neither leaks data (A1) nor
 *           deadlocks (A2).
 */

#ifndef CRONUS_TEE_SPM_HH
#define CRONUS_TEE_SPM_HH

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "crypto/sha256.hh"
#include "hw/page_table.hh"
#include "isolation_backend.hh"
#include "secure_monitor.hh"

namespace cronus::tee
{

using hw::PartitionId;
using hw::PhysAddr;

/** A MicroOS image, provided by the normal world and measured. */
struct MosImage
{
    std::string name;        ///< e.g. "cudav3.mos"
    std::string deviceType;  ///< "cpu" | "gpu" | "npu"
    Bytes code;              ///< opaque payload, measured

    crypto::Digest measure() const;
};

enum class PartitionState
{
    Ready,
    Failed,
};

/** An inter-mOS shared-memory grant. */
struct ShareGrant
{
    uint64_t id = 0;
    PartitionId owner = 0;
    PartitionId peer = 0;
    PhysAddr base = 0;       ///< page-aligned, inside owner's range
    uint64_t pages = 0;
    bool active = false;
    /** Set by failure step 1; cleared when the trap is delivered. */
    bool pendingTrap = false;
    /** Which side failed (valid while pendingTrap). */
    PartitionId failedSide = 0;
};

/** Everything the SPM tracks about one partition. */
struct Partition
{
    PartitionId id = 0;
    std::string deviceName;
    PhysAddr memBase = 0;
    uint64_t memBytes = 0;
    hw::PageTable stage2;
    PartitionState state = PartitionState::Ready;
    MosImage image;
    crypto::Digest mosHash{};
    /** r_f: blocks new memory sharing while set (§IV-D). */
    bool rf = false;
    /** Incremented on every (re)boot: a restarted partition is a
     *  different instance (TOCTOU defense surfaces this). */
    uint64_t incarnation = 1;
    /** Liveness counter ticked by the mOS; used by hang detection. */
    uint64_t heartbeat = 0;
};

/**
 * Delivered to the fault-signal handler when a trapped shared-memory
 * access is resolved (step 3).
 */
struct TrapSignal
{
    PartitionId accessor = 0;
    PartitionId failedPeer = 0;
    uint64_t grantId = 0;
    PhysAddr addr = 0;
};

/** One checked memory access, as presented to the access hook. */
struct SpmAccess
{
    PartitionId pid = 0;
    PhysAddr addr = 0;
    uint64_t len = 0;
    bool isWrite = false;
    /** 1-based ordinal of this access since the hook was installed;
     *  fault plans use it as a deterministic trigger point. */
    uint64_t seq = 0;
};

/** Grant lifecycle event, as presented to the grant hook. */
struct GrantEvent
{
    enum class Kind
    {
        Created,  ///< sharePages succeeded
        Revoked,  ///< revokeGrant tore it down (normal path)
        Retired,  ///< failure handling tore it down (trap/scrub)
    };
    Kind kind = Kind::Created;
    uint64_t id = 0;
    PartitionId owner = 0;
    PartitionId peer = 0;
};

class Spm
{
  public:
    /** @p backend_select picks the isolation substrate; Default
     *  resolves CRONUS_BACKEND=tz|pmp and falls back to TrustZone. */
    explicit Spm(SecureMonitor &monitor,
                 BackendSelect backend_select = BackendSelect::Default);
    ~Spm();

    /* ---------------- partition lifecycle ---------------- */

    /**
     * Create a partition running @p image and managing
     * @p device_name. Each device is managed by exactly one
     * partition and vice versa (§III-A).
     */
    Result<PartitionId> createPartition(const MosImage &image,
                                        const std::string &device_name,
                                        uint64_t mem_bytes);

    Result<const Partition *> partition(PartitionId pid) const;
    size_t partitionCount() const { return partitions.size(); }

    /** mOS liveness tick (hang detection input). */
    Status heartbeat(PartitionId pid);

    /**
     * Hang detection: compare each Ready partition's heartbeat with
     * the last poll; a partition that made no progress is failed.
     * Returns the list of newly failed partitions.
     */
    std::vector<PartitionId> pollHangs();

    /** A partition panicked (hardware/software failure). */
    Status panic(PartitionId pid);

    /**
     * The normal world (or the partition itself) requests a restart,
     * e.g. for an mOS update. Runs fail + recover with @p new_image.
     */
    Status requestRestart(PartitionId pid, const MosImage &new_image);

    /** Failure step 1 (see file comment). */
    Status failPartition(PartitionId pid);

    /** Failure step 2. Loads @p image (pass the old image for plain
     *  crash recovery, a new one for updates). @p charge_clock may
     *  be false when the caller already accounted the recovery time
     *  on the virtual clock (e.g. while simulating work proceeding
     *  concurrently on other partitions). */
    Status recoverPartition(PartitionId pid, const MosImage &image,
                            bool charge_clock = true);

    /** Deterministic virtual-time cost of recovering @p pid. */
    Result<SimTime> recoveryEstimate(PartitionId pid) const;

    /**
     * Recover several failed partitions; step 1 must already have
     * run for each. Step-2 work proceeds concurrently, so the clock
     * advances by the *maximum* single recovery cost (§IV-D,
     * "handling concurrent failures").
     */
    Status recoverConcurrently(const std::vector<PartitionId> &pids,
                               const std::vector<MosImage> &images);

    /* ---------------- checked memory access ---------------- */

    /**
     * Memory access issued from @p pid. Translated by the
     * partition's stage-2 table; an access to an invalidated shared
     * page takes the trap path and returns PeerFailed.
     */
    Result<Bytes> read(PartitionId pid, PhysAddr addr, uint64_t len);
    Status write(PartitionId pid, PhysAddr addr, const Bytes &data);
    Status write(PartitionId pid, PhysAddr addr, const uint8_t *data,
                 uint64_t len);

    /** Non-allocating read into a caller-provided buffer. Same
     *  checks, hooks and trap path as read(). */
    Status readInto(PartitionId pid, PhysAddr addr, uint8_t *out,
                    uint64_t len);

    /**
     * Borrow a zero-copy window into the partition's memory. One
     * logical access: the access hook, stage-2 translation, TZASC
     * check and bus observer all fire exactly as for read()/write().
     * Only same-page runs can be borrowed; a null-span success means
     * the caller must fall back to the copy path. The span must not
     * be cached across accesses (translations can be revoked).
     */
    Result<hw::MemSpan> borrow(PartitionId pid, PhysAddr addr,
                               uint64_t len, bool is_write);

    /** 8-byte accesses on the fast path (ring counters). */
    Result<uint64_t> readU64(PartitionId pid, PhysAddr addr);
    Status writeU64(PartitionId pid, PhysAddr addr, uint64_t value);

    /* ---------------- shared memory (Fig. 6) ---------------- */

    /**
     * Owner shares @p pages pages at @p base (inside its own range)
     * with @p peer. Enforces the share-once rule. Returns grant id.
     */
    Result<uint64_t> sharePages(PartitionId owner, PartitionId peer,
                                PhysAddr base, uint64_t pages);

    /** Tear down an active grant (normal termination path). */
    Status revokeGrant(uint64_t grant_id, PartitionId requester);

    Result<const ShareGrant *> grant(uint64_t grant_id) const;
    std::vector<uint64_t> grantsOf(PartitionId pid) const;

    /* ---------------- module-store residency ---------------- */

    /**
     * Reserve @p bytes of SPM-resident storage for the enclave
     * module store (measured module images cached across creates).
     * The reservation is carved from the secure-memory pool that
     * also backs partitions, so a store cannot starve partition
     * creation silently -- the usual ResourceExhausted surfaces.
     */
    Status reserveStoreBytes(uint64_t bytes);

    /** Return a reservation made by reserveStoreBytes. */
    void releaseStoreBytes(uint64_t bytes);

    /** Bytes currently reserved for module-store residency. */
    uint64_t storeBytesResident() const { return storeResident; }

    /* ---------------- fault signals ---------------- */

    using TrapHandler = std::function<void(const TrapSignal &)>;
    void setTrapHandler(TrapHandler handler)
    {
        trapHandler = std::move(handler);
    }

    /* ---------------- injection / audit hooks ---------------- */

    /**
     * Installed ahead of every read()/write() translation. A non-OK
     * return aborts the access with that status (fault injection);
     * the hook may also kill partitions (panic) before the access
     * proceeds, turning it into a proceed-trap. Resets the access
     * ordinal. Pass an empty function to uninstall.
     */
    using AccessHook = std::function<Status(const SpmAccess &)>;
    void setAccessHook(AccessHook hook)
    {
        accessHook = std::move(hook);
        accessSeq = 0;
    }

    /** Observes grant create/revoke/retire (invariant auditing). */
    using GrantHook = std::function<void(const GrantEvent &)>;
    void setGrantHook(GrantHook hook) { grantHook = std::move(hook); }

    SecureMonitor &monitor() { return sm; }
    StatGroup &statistics() { return stats; }

    /** The isolation substrate enforcing partition boundaries. */
    IsolationBackend &isolation() { return *backend; }
    BackendKind backendKind() const { return backend->kind(); }

    /** Aggregated stage-2 software-TLB counters over all partitions
     *  (SMMU stream caches are reported by Platform::smmu()). */
    hw::TlbCounters tlbCounters() const;

    /** Cross-mOS message validation: the mOS part of an eid must
     *  name an existing Ready partition (§IV-A). */
    bool validateMosId(PartitionId pid) const;

  private:
    Result<Partition *> mutablePartition(PartitionId pid);
    /** Hook + lookup + state check shared by every access entry
     *  point; on success @p out names the Ready partition. */
    Status accessCheck(PartitionId pid, PhysAddr addr, uint64_t len,
                       bool is_write, Partition *&out);
    /** Software-TLB zero-copy fast path: host pointer for a
     *  single-page access whose translation and backing page are
     *  cached (observer/byte counters fired), or nullptr meaning
     *  "take the full translate + bus path". */
    uint8_t *fastPath(Partition &p, PhysAddr addr, uint64_t len,
                      bool is_write);
    Status handleInvalidatedAccess(Partition &accessor, PhysAddr addr);
    SimTime recoveryCost(const Partition &p) const;
    void scrubPartition(Partition &p, const MosImage &image);

    SecureMonitor &sm;
    std::unique_ptr<IsolationBackend> backend;
    /** True when this Spm installed the Platform bus filter (so the
     *  destructor uninstalls exactly its own). */
    bool busFilterInstalled = false;
    std::map<PartitionId, Partition> partitions;
    std::map<uint64_t, ShareGrant> grants;
    std::map<PhysAddr, uint64_t> pageShareCount;
    std::map<PartitionId, uint64_t> lastHeartbeat;
    void notifyGrant(GrantEvent::Kind kind, const ShareGrant &g);

    /* One-entry partition-lookup cache for the access paths. Safe to
     * hold across calls: partitions are never erased and std::map
     * nodes are address-stable. */
    Partition *lastAccessed = nullptr;

    PartitionId nextPid = 1;
    uint64_t nextGrant = 1;
    PhysAddr nextSecureAlloc;
    uint64_t storeResident = 0;
    StatGroup stats;
    TrapHandler trapHandler;
    AccessHook accessHook;
    GrantHook grantHook;
    uint64_t accessSeq = 0;
};

} // namespace cronus::tee

#endif // CRONUS_TEE_SPM_HH
