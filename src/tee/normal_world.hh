/**
 * @file
 * The untrusted normal world: a full-fledged OS stand-in.
 *
 * Provides untrusted memory for cross-world message passing, thread
 * scheduling for sRPC execution loops, and the (legitimate) restart
 * request path. All of its memory accesses go through the platform
 * bus as World::Normal, so TZASC filtering genuinely applies; the
 * attack suite drives its raw interfaces to emulate a malicious OS.
 */

#ifndef CRONUS_TEE_NORMAL_WORLD_HH
#define CRONUS_TEE_NORMAL_WORLD_HH

#include <functional>
#include <vector>

#include "spm.hh"

namespace cronus::tee
{

class NormalWorld
{
  public:
    explicit NormalWorld(SecureMonitor &monitor, Spm &spm);

    /* --- untrusted memory --- */

    /** Allocate page-aligned untrusted memory. */
    Result<PhysAddr> allocate(uint64_t bytes);

    /** Raw access as the (possibly malicious) normal world. */
    Result<Bytes> read(PhysAddr addr, uint64_t len);
    Status write(PhysAddr addr, const Bytes &data);

    /* --- scheduling --- */

    /**
     * Create an execution-loop "thread" (the paper: CRONUS asks the
     * normal world to create a thread T which enters the execution
     * loop in mE_B). Returns a thread id. The body is a polling
     * step invoked by runThreads(); it returns false when done.
     */
    uint64_t spawnThread(std::function<bool()> step);

    /** Run all live threads round-robin until none makes progress
     *  or all finish. Returns steps executed. */
    uint64_t runThreads(uint64_t max_steps = 1 << 20);

    size_t liveThreads() const;

    /* --- legitimate control-plane requests --- */

    /** Ask the SPM to restart a partition's mOS (update path). */
    Status requestMosRestart(PartitionId pid, const MosImage &image);

    SecureMonitor &monitor() { return sm; }
    Spm &spm() { return partitionManager; }

  private:
    struct Thread
    {
        uint64_t id;
        std::function<bool()> step;
        bool done = false;
    };

    SecureMonitor &sm;
    Spm &partitionManager;
    PhysAddr nextAlloc;
    std::vector<Thread> threads;
    uint64_t nextThread = 1;
};

} // namespace cronus::tee

#endif // CRONUS_TEE_NORMAL_WORLD_HH
