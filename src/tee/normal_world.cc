#include "normal_world.hh"

namespace cronus::tee
{

NormalWorld::NormalWorld(SecureMonitor &monitor, Spm &spm)
    : sm(monitor), partitionManager(spm),
      nextAlloc(monitor.platform().normalBase() + hw::kPageSize)
{
}

Result<PhysAddr>
NormalWorld::allocate(uint64_t bytes)
{
    uint64_t aligned = hw::pageAlignUp(bytes);
    hw::Platform &plat = sm.platform();
    if (nextAlloc + aligned > plat.normalBase() + plat.normalSize())
        return Status(ErrorCode::ResourceExhausted,
                      "normal memory exhausted");
    PhysAddr addr = nextAlloc;
    nextAlloc += aligned;
    return addr;
}

Result<Bytes>
NormalWorld::read(PhysAddr addr, uint64_t len)
{
    return sm.platform().busRead(hw::World::Normal, addr, len);
}

Status
NormalWorld::write(PhysAddr addr, const Bytes &data)
{
    return sm.platform().busWrite(hw::World::Normal, addr, data);
}

uint64_t
NormalWorld::spawnThread(std::function<bool()> step)
{
    uint64_t id = nextThread++;
    threads.push_back(Thread{id, std::move(step), false});
    return id;
}

uint64_t
NormalWorld::runThreads(uint64_t max_steps)
{
    uint64_t steps = 0;
    bool progress = true;
    while (progress && steps < max_steps) {
        progress = false;
        for (auto &t : threads) {
            if (t.done)
                continue;
            bool more = t.step();
            ++steps;
            if (!more)
                t.done = true;
            else
                progress = true;
        }
        /* Sweep finished threads. */
        std::erase_if(threads,
                      [](const Thread &t) { return t.done; });
        if (threads.empty())
            break;
    }
    return steps;
}

size_t
NormalWorld::liveThreads() const
{
    size_t live = 0;
    for (const auto &t : threads)
        live += !t.done;
    return live;
}

Status
NormalWorld::requestMosRestart(PartitionId pid, const MosImage &image)
{
    return partitionManager.requestRestart(pid, image);
}


} // namespace cronus::tee
