#include "spm.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"
#include "obs/trace.hh"

namespace cronus::tee
{

crypto::Digest
MosImage::measure() const
{
    crypto::Sha256 ctx;
    ctx.update(name);
    ctx.update(deviceType);
    ctx.update(code);
    return ctx.finalize();
}

Spm::Spm(SecureMonitor &monitor, BackendSelect backend_select)
    : sm(monitor), nextSecureAlloc(monitor.platform().secureBase())
{
    hw::Platform &plat = sm.platform();
    backend = makeBackend(resolveBackend(backend_select),
                          plat.normalBase(), plat.normalSize(),
                          stats);
    if (backend->wantsBusFilter()) {
        /* The substrate (not the TZASC) classifies raw bus traffic.
         * The filter charges no virtual time, so figure output stays
         * byte-identical across backends. */
        plat.setBusFilter([this](hw::World from, PhysAddr addr,
                                 uint64_t len, bool is_write) {
            return backend->classifyBus(from, addr, len, is_write);
        });
        busFilterInstalled = true;
    }
}

Spm::~Spm()
{
    if (busFilterInstalled)
        sm.platform().clearBusFilter();
}

Result<Partition *>
Spm::mutablePartition(PartitionId pid)
{
    if (lastAccessed != nullptr && lastAccessed->id == pid)
        return lastAccessed;
    auto it = partitions.find(pid);
    if (it == partitions.end())
        return Status(ErrorCode::NotFound,
                      "no partition " + std::to_string(pid));
    lastAccessed = &it->second;
    return &it->second;
}

Result<const Partition *>
Spm::partition(PartitionId pid) const
{
    auto it = partitions.find(pid);
    if (it == partitions.end())
        return Status(ErrorCode::NotFound,
                      "no partition " + std::to_string(pid));
    return &it->second;
}

Result<PartitionId>
Spm::createPartition(const MosImage &image,
                     const std::string &device_name,
                     uint64_t mem_bytes)
{
    if (!sm.booted())
        return Status(ErrorCode::InvalidState,
                      "SPM requires secure boot");
    if (nextPid > 255)
        return Status(ErrorCode::ResourceExhausted,
                      "eid reserves 8 bits for the mOS id");
    /* Devices map 1:1 to partitions. */
    for (const auto &[pid, p] : partitions) {
        if (p.deviceName == device_name)
            return Status(ErrorCode::InvalidState,
                          "device '" + device_name +
                          "' already managed by partition " +
                          std::to_string(pid));
    }
    if (sm.deviceTree().find(device_name) == nullptr)
        return Status(ErrorCode::NotFound,
                      "device '" + device_name + "' not in DT");

    uint64_t bytes = hw::pageAlignUp(mem_bytes);
    hw::Platform &plat = sm.platform();
    if (nextSecureAlloc + bytes + storeResident >
        plat.secureBase() + plat.secureSize())
        return Status(ErrorCode::ResourceExhausted,
                      "secure memory exhausted");

    Partition p;
    p.id = nextPid++;
    p.deviceName = device_name;
    p.memBase = nextSecureAlloc;
    p.memBytes = bytes;
    p.image = image;
    p.mosHash = image.measure();
    nextSecureAlloc += bytes;

    for (uint64_t off = 0; off < bytes; off += hw::kPageSize) {
        Status s = p.stage2.map(p.memBase + off, p.memBase + off,
                                hw::PagePerms::rw());
        CRONUS_ASSERT(s.isOk(), "stage2 identity map failed");
    }
    /* Program the substrate's region for the new partition (a no-op
     * on TrustZone, where the stage-2 map above is the programming;
     * a private TOR pair on PMP). */
    Status substrate = backend->partitionCreated(p.id, p.memBase,
                                                 p.memBytes);
    if (!substrate.isOk())
        return substrate;

    /* mOS boot cost is paid at system startup (§III-A: mOSes run at
     * startup so mEnclaves need not wait). */
    plat.clock().advance(plat.costs().mosBootNs);
    stats.counter("partitions_created").inc();

    PartitionId pid = p.id;
    partitions.emplace(pid, std::move(p));
    /* Seed hang detection: a partition that never heartbeats after
     * boot (born hung) is caught within one poll interval. */
    lastHeartbeat[pid] = 0;
    return pid;
}

Status
Spm::reserveStoreBytes(uint64_t bytes)
{
    hw::Platform &plat = sm.platform();
    if (nextSecureAlloc + storeResident + bytes >
        plat.secureBase() + plat.secureSize())
        return Status(ErrorCode::ResourceExhausted,
                      "secure memory exhausted (module store)");
    storeResident += bytes;
    stats.counter("store_bytes_reserved").inc(bytes);
    return Status::ok();
}

void
Spm::releaseStoreBytes(uint64_t bytes)
{
    CRONUS_ASSERT(bytes <= storeResident,
                  "module-store release exceeds reservation");
    storeResident -= bytes;
    stats.counter("store_bytes_released").inc(bytes);
}

Status
Spm::heartbeat(PartitionId pid)
{
    auto p = mutablePartition(pid);
    if (!p.isOk())
        return p.status();
    ++p.value()->heartbeat;
    return Status::ok();
}

std::vector<PartitionId>
Spm::pollHangs()
{
    sm.platform().clock().advance(sm.platform().costs().hangPollNs);
    std::vector<PartitionId> failed;
    for (auto &[pid, p] : partitions) {
        if (p.state != PartitionState::Ready)
            continue;
        auto it = lastHeartbeat.find(pid);
        if (it != lastHeartbeat.end() &&
            it->second == p.heartbeat) {
            /* No progress since last poll: hang. */
            failPartition(pid);
            failed.push_back(pid);
        }
        lastHeartbeat[pid] = p.heartbeat;
    }
    return failed;
}

Status
Spm::panic(PartitionId pid)
{
    stats.counter("panics").inc();
    return failPartition(pid);
}

Status
Spm::requestRestart(PartitionId pid, const MosImage &new_image)
{
    auto pr = partition(pid);
    if (!pr.isOk())
        return pr.status();
    /* The fail step is idempotent: a partition that already crashed
     * (panic/hang) skips straight to recovery. */
    if (pr.value()->state != PartitionState::Failed)
        CRONUS_RETURN_IF_ERROR(failPartition(pid));
    return recoverPartition(pid, new_image);
}

Status
Spm::failPartition(PartitionId pid)
{
    auto pr = mutablePartition(pid);
    if (!pr.isOk())
        return pr.status();
    Partition &p = *pr.value();
    if (p.state == PartitionState::Failed)
        return Status(ErrorCode::InvalidState, "already failed");

    hw::Platform &plat = sm.platform();
    const CostModel &costs = plat.costs();

    auto &tr = obs::Tracer::instance();
    obs::Span fail_span;
    if (tr.active()) {
        fail_span = obs::Span(tr.partitionTrack(p.id, p.deviceName),
                              "spm.fail", "spm");
        fail_span.arg("partition", static_cast<int64_t>(p.id));
        fail_span.arg("incarnation",
                      static_cast<int64_t>(p.incarnation));
    }

    /* Step 1: invalidate surviving partitions' stage-2 and SMMU
     * entries for every page shared with pid. */
    for (auto &[gid, g] : grants) {
        if (!g.active || (g.owner != pid && g.peer != pid))
            continue;
        PartitionId survivor_id = g.owner == pid ? g.peer : g.owner;
        auto survivor = mutablePartition(survivor_id);
        if (survivor.isOk() &&
            survivor.value()->state == PartitionState::Ready) {
            obs::Span shootdown;
            if (tr.active()) {
                shootdown = obs::Span(
                    tr.partitionTrack(survivor_id,
                                      survivor.value()->deviceName),
                    "tlb.shootdown", "tlb");
                shootdown.arg("grant", static_cast<int64_t>(gid));
                shootdown.arg("pages",
                              static_cast<int64_t>(g.pages));
                shootdown.arg("failedPeer",
                              static_cast<int64_t>(pid));
            }
            for (uint64_t i = 0; i < g.pages; ++i) {
                survivor.value()->stage2.invalidate(
                    g.base + i * hw::kPageSize);
                plat.clock().advance(costs.pageTableUpdateNs);
            }
            plat.clock().advance(costs.tlbInvalidateNs);
        }
        plat.smmu().invalidateByTag(gid);
        plat.clock().advance(costs.smmuUpdateNs);
        g.pendingTrap = true;
        g.failedSide = pid;
    }

    /* Mark r_f = 1: new sharing requests involving pid blocked. */
    p.rf = true;
    p.state = PartitionState::Failed;
    stats.counter("partitions_failed").inc();
    return Status::ok();
}

SimTime
Spm::recoveryCost(const Partition &p) const
{
    const CostModel &costs = sm.platform().costs();
    uint64_t mib = (p.memBytes + (1 << 20) - 1) >> 20;
    const hw::Platform &plat = sm.platform();
    const hw::Device *dev = plat.findDevice(p.deviceName);
    uint64_t dev_mib = dev == nullptr
                           ? 0
                           : (dev->memoryBytes() + (1 << 20) - 1) >> 20;
    /* The scrub rebuilds the stage-2 from scratch, which is a full
     * TLB shootdown for the partition. */
    return (mib + dev_mib) * costs.deviceClearNsPerMiB +
           costs.mosBootNs + costs.tlbInvalidateNs;
}

void
Spm::scrubPartition(Partition &p, const MosImage &image)
{
    hw::Platform &plat = sm.platform();
    /* Clear D_f: device contents of the failed partition, and drop
     * its stale SMMU mappings so the old incarnation's DMA windows
     * die with it. */
    if (hw::Device *dev = plat.findDevice(p.deviceName)) {
        dev->reset(true);
        plat.smmu().streamTable(dev->streamId()).clear();
    }
    /* Clear the partition's memory, including smem it owned. */
    plat.dram().clear(p.memBase, p.memBytes);

    /* Reload the mOS and rebuild a fresh identity stage-2 map. */
    p.stage2.clear();
    for (uint64_t off = 0; off < p.memBytes; off += hw::kPageSize) {
        Status s = p.stage2.map(p.memBase + off, p.memBase + off,
                                hw::PagePerms::rw());
        CRONUS_ASSERT(s.isOk(), "stage2 rebuild failed");
    }
    p.image = image;
    p.mosHash = image.measure();
    p.heartbeat = 0;
    /* Re-seed hang detection so a born-hung new incarnation is
     * caught within one poll interval. */
    lastHeartbeat[p.id] = 0;
    ++p.incarnation;
    p.rf = false;
    p.state = PartitionState::Ready;
    /* The new incarnation's substrate view is private-only; windows
     * granted *to* other (surviving) partitions stay until their
     * pending traps resolve. */
    backend->partitionScrubbed(p.id);

    /* Grants of the old incarnation do not survive the reboot: the
     * rebuilt stage-2 no longer maps them. Retire them; pages owned
     * by the scrubbed partition return to the share-once budget,
     * while a surviving owner's pages stay reserved until its
     * pending trap resolves. */
    for (auto &[gid, g] : grants) {
        if (!g.active || (g.owner != p.id && g.peer != p.id))
            continue;
        g.active = false;
        if (g.owner == p.id && !g.pendingTrap) {
            for (uint64_t i = 0; i < g.pages; ++i)
                pageShareCount[g.base + i * hw::kPageSize] = 0;
        }
        stats.counter("grants_retired").inc();
        notifyGrant(GrantEvent::Kind::Retired, g);
    }
}

Result<SimTime>
Spm::recoveryEstimate(PartitionId pid) const
{
    auto pr = partition(pid);
    if (!pr.isOk())
        return pr.status();
    return recoveryCost(*pr.value());
}

Status
Spm::recoverPartition(PartitionId pid, const MosImage &image,
                      bool charge_clock)
{
    auto pr = mutablePartition(pid);
    if (!pr.isOk())
        return pr.status();
    Partition &p = *pr.value();
    if (p.state != PartitionState::Failed)
        return Status(ErrorCode::InvalidState,
                      "recover requires a failed partition");

    auto &tr = obs::Tracer::instance();
    obs::Span recover_span;
    if (tr.active()) {
        recover_span = obs::Span(
            tr.partitionTrack(p.id, p.deviceName), "spm.recover",
            "spm");
        recover_span.arg("chargeClock",
                         static_cast<int64_t>(charge_clock ? 1 : 0));
    }
    if (charge_clock)
        sm.platform().clock().advance(recoveryCost(p));
    scrubPartition(p, image);
    recover_span.arg("incarnation",
                     static_cast<int64_t>(p.incarnation));

    /* Release this partition's share of the share-once budget for
     * grants it owned; surviving peers' traps remain pending. */
    stats.counter("partitions_recovered").inc();
    return Status::ok();
}

Status
Spm::recoverConcurrently(const std::vector<PartitionId> &pids,
                         const std::vector<MosImage> &images)
{
    if (pids.size() != images.size())
        return Status(ErrorCode::InvalidArgument,
                      "pids/images size mismatch");
    SimTime max_cost = 0;
    for (PartitionId pid : pids) {
        auto pr = mutablePartition(pid);
        if (!pr.isOk())
            return pr.status();
        if (pr.value()->state != PartitionState::Failed)
            return Status(ErrorCode::InvalidState,
                          "recover requires failed partitions");
        max_cost = std::max(max_cost, recoveryCost(*pr.value()));
    }
    sm.platform().clock().advance(max_cost);
    for (size_t i = 0; i < pids.size(); ++i) {
        Partition &p = *mutablePartition(pids[i]).value();
        scrubPartition(p, images[i]);
        stats.counter("partitions_recovered").inc();
    }
    return Status::ok();
}

Status
Spm::handleInvalidatedAccess(Partition &accessor, PhysAddr addr)
{
    hw::Platform &plat = sm.platform();
    auto &tr = obs::Tracer::instance();
    obs::Span trap_span;
    if (tr.active()) {
        trap_span = obs::Span(
            tr.partitionTrack(accessor.id, accessor.deviceName),
            "spm.trap", "spm");
        trap_span.arg("addr", static_cast<int64_t>(addr));
    }
    plat.clock().advance(plat.costs().trapHandleNs);
    stats.counter("share_traps").inc();

    /* Find the grant covering this page. */
    for (auto &[gid, g] : grants) {
        if (!g.pendingTrap)
            continue;
        bool covers = addr >= g.base &&
                      addr < g.base + g.pages * hw::kPageSize;
        bool involves = g.owner == accessor.id ||
                        g.peer == accessor.id;
        if (!covers || !involves)
            continue;

        for (uint64_t i = 0; i < g.pages; ++i) {
            PhysAddr page = g.base + i * hw::kPageSize;
            if (g.owner == accessor.id) {
                /* Pages owned by the accessor: recover access. */
                accessor.stage2.revalidate(page);
            } else {
                /* Foreign pages: drop the mapping entirely. */
                accessor.stage2.unmap(page);
            }
            plat.clock().advance(plat.costs().pageTableUpdateNs);
        }
        /* Trap resolution rewrote translations: shoot them down.
         * The peer's substrate window dies with the grant. */
        plat.clock().advance(plat.costs().tlbInvalidateNs);
        backend->grantUnmapped(gid, g.peer);
        g.pendingTrap = false;
        bool was_active = g.active;
        g.active = false;
        for (uint64_t i = 0; i < g.pages; ++i)
            pageShareCount[g.base + i * hw::kPageSize] = 0;
        if (was_active) {
            /* Already-revoked grants only need the page-table
             * cleanup above; their teardown was accounted. */
            stats.counter("grants_retired").inc();
            notifyGrant(GrantEvent::Kind::Retired, g);
        }

        trap_span.arg("grant", static_cast<int64_t>(gid));
        trap_span.arg("failedPeer",
                      static_cast<int64_t>(g.failedSide));
        if (trapHandler)
            trapHandler(TrapSignal{accessor.id, g.failedSide, gid,
                                   addr});
        return Status(ErrorCode::PeerFailed,
                      "shared-memory peer partition failed");
    }
    return Status(ErrorCode::AccessFault,
                  "access to invalidated page without grant");
}

void
Spm::notifyGrant(GrantEvent::Kind kind, const ShareGrant &g)
{
    auto &tr = obs::Tracer::instance();
    if (tr.active()) {
        const char *name = kind == GrantEvent::Kind::Created
                               ? "spm.grant"
                               : kind == GrantEvent::Kind::Revoked
                                     ? "spm.revoke"
                                     : "spm.retire";
        auto it = partitions.find(g.owner);
        std::string dev = it != partitions.end()
                              ? it->second.deviceName
                              : std::string("?");
        JsonObject args;
        args["grant"] = static_cast<int64_t>(g.id);
        args["owner"] = static_cast<int64_t>(g.owner);
        args["peer"] = static_cast<int64_t>(g.peer);
        args["pages"] = static_cast<int64_t>(g.pages);
        tr.instant(tr.partitionTrack(g.owner, dev), name, "spm",
                   std::move(args));
    }
    if (grantHook)
        grantHook(GrantEvent{kind, g.id, g.owner, g.peer});
}

Status
Spm::accessCheck(PartitionId pid, PhysAddr addr, uint64_t len,
                 bool is_write, Partition *&out)
{
    if (accessHook) {
        Status s = accessHook(SpmAccess{pid, addr, len, is_write,
                                        ++accessSeq});
        if (!s.isOk())
            return s;
    }
    /* The lookup cache is consulted *after* the hook: the hook may
     * panic partitions, but state is re-checked below and stage-2
     * mutations evict the TLB, so a cached pointer never bypasses a
     * state change. */
    Partition *p = lastAccessed;
    if (p == nullptr || p->id != pid) {
        auto it = partitions.find(pid);
        if (it == partitions.end())
            return Status(ErrorCode::NotFound,
                          "no partition " + std::to_string(pid));
        p = &it->second;
        lastAccessed = p;
    }
    if (p->state != PartitionState::Ready)
        return Status(ErrorCode::InvalidState, "partition not ready");
    /* Substrate filter (free on TrustZone; PMP unit walk on RISC-V).
     * Runs before translation, so a page the substrate revoked faults
     * here with the same AccessFault an unmapped stage-2 entry gives;
     * pages still granted pass through to the stage-2 walk, keeping
     * the Invalidated proceed-trap semantics backend-independent. */
    CRONUS_RETURN_IF_ERROR(
        backend->checkAccess(pid, addr, len, is_write));
    out = p;
    return Status::ok();
}

uint8_t *
Spm::fastPath(Partition &p, PhysAddr addr, uint64_t len,
              bool is_write)
{
    uint64_t off = addr & (hw::kPageSize - 1);
    if (len == 0 || off + len > hw::kPageSize)
        return nullptr;
    hw::PhysAddr phys_page = 0;
    uint8_t *host = nullptr;
    if (!p.stage2.cachedTranslate(addr >> hw::kPageShift, phys_page,
                                  is_write, host) ||
        host == nullptr)
        return nullptr;
    /* Same externally-visible effects as a bus access: the observer
     * and byte counter fire; the TZASC check is skipped because the
     * SPM only issues secure-world traffic, which it passes
     * unconditionally. Validity is the TLB's tag/epoch discipline:
     * any stage-2 mutation evicts the entry, so a stale host pointer
     * can never be reached. */
    sm.platform().noteFastPathAccess(hw::World::Secure,
                                     phys_page + off, len, is_write);
    return host + off;
}

Result<Bytes>
Spm::read(PartitionId pid, PhysAddr addr, uint64_t len)
{
    Bytes out(len);
    Status s = readInto(pid, addr, out.data(), len);
    if (!s.isOk())
        return s;
    return out;
}

Status
Spm::readInto(PartitionId pid, PhysAddr addr, uint8_t *out,
              uint64_t len)
{
    Partition *p = nullptr;
    CRONUS_RETURN_IF_ERROR(accessCheck(pid, addr, len, false, p));
    if (const uint8_t *src = fastPath(*p, addr, len, false)) {
        std::memcpy(out, src, len);
        return Status::ok();
    }
    hw::Translation t = p->stage2.translate(addr, len, false);
    if (t.fault == hw::FaultKind::Invalidated)
        return handleInvalidatedAccess(*p, t.faultVa);
    if (!t.ok())
        return Status(ErrorCode::AccessFault,
                      "stage-2 fault on read");
    Status s =
        sm.platform().busRead(hw::World::Secure, t.phys, out, len);
    if (s.isOk() && ((addr ^ (addr + len - 1)) >> hw::kPageShift) == 0)
        p->stage2.cacheHostPage(
            addr >> hw::kPageShift,
            sm.platform().dram().borrow(
                t.phys & ~PhysAddr(hw::kPageSize - 1), 1).data);
    return s;
}

Status
Spm::write(PartitionId pid, PhysAddr addr, const uint8_t *data,
           uint64_t len)
{
    Partition *p = nullptr;
    CRONUS_RETURN_IF_ERROR(accessCheck(pid, addr, len, true, p));
    if (uint8_t *dst = fastPath(*p, addr, len, true)) {
        std::memcpy(dst, data, len);
        return Status::ok();
    }
    hw::Translation t = p->stage2.translate(addr, len, true);
    if (t.fault == hw::FaultKind::Invalidated)
        return handleInvalidatedAccess(*p, t.faultVa);
    if (!t.ok())
        return Status(ErrorCode::AccessFault,
                      "stage-2 fault on write");
    Status s = sm.platform().busWrite(hw::World::Secure, t.phys,
                                      data, len);
    if (s.isOk() && ((addr ^ (addr + len - 1)) >> hw::kPageShift) == 0)
        p->stage2.cacheHostPage(
            addr >> hw::kPageShift,
            sm.platform().dram().borrow(
                t.phys & ~PhysAddr(hw::kPageSize - 1), 1).data);
    return s;
}

Status
Spm::write(PartitionId pid, PhysAddr addr, const Bytes &data)
{
    return write(pid, addr, data.data(), data.size());
}

Result<hw::MemSpan>
Spm::borrow(PartitionId pid, PhysAddr addr, uint64_t len,
            bool is_write)
{
    Partition *p = nullptr;
    CRONUS_RETURN_IF_ERROR(accessCheck(pid, addr, len, is_write, p));
    if (uint8_t *hp = fastPath(*p, addr, len, is_write))
        return hw::MemSpan{hp, len};
    hw::Translation t = p->stage2.translate(addr, len, is_write);
    if (t.fault == hw::FaultKind::Invalidated)
        return handleInvalidatedAccess(*p, t.faultVa);
    if (!t.ok())
        return Status(ErrorCode::AccessFault,
                      "stage-2 fault on borrow");
    Status fault = Status::ok();
    hw::MemSpan span = sm.platform().busBorrow(
        hw::World::Secure, t.phys, len, is_write, &fault);
    if (!fault.isOk())
        return fault;
    if (span.ok())
        p->stage2.cacheHostPage(
            addr >> hw::kPageShift,
            span.data - (addr & (hw::kPageSize - 1)));
    /* A null span with no fault means cross-page: the caller falls
     * back to the copying path. */
    return span;
}

Result<uint64_t>
Spm::readU64(PartitionId pid, PhysAddr addr)
{
    /* Little-endian on the wire, matching ByteWriter::putU64, so
     * counters written either way read back identically. */
    uint8_t buf[8];
    const uint8_t *src = buf;
    auto span = borrow(pid, addr, sizeof(buf), false);
    if (!span.isOk())
        return span.status();
    if (span.value().ok()) {
        src = span.value().data;
    } else {
        /* Cross-page run: the borrow above already fired the hook
         * and observer for this logical access, so go straight to
         * the bus for the copy. */
        Partition *p = lastAccessed;
        hw::Translation t = p->stage2.translate(addr, sizeof(buf),
                                                false);
        if (!t.ok())
            return Status(ErrorCode::AccessFault,
                          "stage-2 fault on read");
        Status s = sm.platform().busRead(hw::World::Secure, t.phys,
                                         buf, sizeof(buf));
        if (!s.isOk())
            return s;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(src[i]) << (8 * i);
    return v;
}

Status
Spm::writeU64(PartitionId pid, PhysAddr addr, uint64_t value)
{
    uint8_t buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = (value >> (8 * i)) & 0xff;
    auto span = borrow(pid, addr, sizeof(buf), true);
    if (!span.isOk())
        return span.status();
    if (span.value().ok()) {
        std::memcpy(span.value().data, buf, sizeof(buf));
        return Status::ok();
    }
    Partition *p = lastAccessed;
    hw::Translation t = p->stage2.translate(addr, sizeof(buf), true);
    if (!t.ok())
        return Status(ErrorCode::AccessFault,
                      "stage-2 fault on write");
    return sm.platform().busWrite(hw::World::Secure, t.phys, buf,
                                  sizeof(buf));
}

hw::TlbCounters
Spm::tlbCounters() const
{
    hw::TlbCounters sum;
    for (const auto &[pid, p] : partitions)
        sum.add(p.stage2.tlbCounters());
    return sum;
}

Result<uint64_t>
Spm::sharePages(PartitionId owner, PartitionId peer, PhysAddr base,
                uint64_t pages)
{
    if (owner == peer)
        return Status(ErrorCode::InvalidArgument,
                      "cannot share with self");
    auto owner_p = mutablePartition(owner);
    if (!owner_p.isOk())
        return owner_p.status();
    auto peer_p = mutablePartition(peer);
    if (!peer_p.isOk())
        return peer_p.status();
    Partition &po = *owner_p.value();
    Partition &pp = *peer_p.value();
    /* r_f blocks all new sharing with a failing partition. */
    if (po.rf || po.state != PartitionState::Ready)
        return Status(ErrorCode::PeerFailed, "owner partition failed");
    if (pp.rf || pp.state != PartitionState::Ready)
        return Status(ErrorCode::PeerFailed, "peer partition failed");
    if (!hw::isPageAligned(base) || pages == 0)
        return Status(ErrorCode::InvalidArgument,
                      "share range must be whole pages");
    if (base < po.memBase ||
        base + pages * hw::kPageSize > po.memBase + po.memBytes)
        return Status(ErrorCode::PermissionDenied,
                      "share range outside owner's memory");

    /* Share-once rule (§IV-D): a page may be shared only once. */
    for (uint64_t i = 0; i < pages; ++i) {
        if (pageShareCount[base + i * hw::kPageSize] != 0)
            return Status(ErrorCode::InvalidState,
                          "page already shared (share-once rule)");
    }

    uint64_t gid = nextGrant++;
    hw::Platform &plat = sm.platform();
    for (uint64_t i = 0; i < pages; ++i) {
        PhysAddr page = base + i * hw::kPageSize;
        Status s = pp.stage2.map(page, page, hw::PagePerms::rw(), gid);
        if (!s.isOk())
            return Status(ErrorCode::InvalidState,
                          "peer stage-2 collision: " + s.toString());
        /* Re-tag the owner's identity entry so failure handling can
         * find it. */
        po.stage2.unmap(page);
        Status s2 = po.stage2.map(page, page, hw::PagePerms::rw(),
                                  gid);
        CRONUS_ASSERT(s2.isOk(), "owner retag failed");
        pageShareCount[page] = 1;
        plat.clock().advance(plat.costs().pageTableUpdateNs);
    }
    plat.clock().advance(plat.costs().tlbInvalidateNs);

    /* Overlapped substrate configuration (§VII-A): the peer gains a
     * window over the owner's range. Both partitions were validated
     * above, so the substrate cannot refuse. */
    Status substrate = backend->grantMapped(gid, peer, base, pages);
    CRONUS_ASSERT(substrate.isOk(),
                  "substrate grant map: " + substrate.toString());

    ShareGrant g;
    g.id = gid;
    g.owner = owner;
    g.peer = peer;
    g.base = base;
    g.pages = pages;
    g.active = true;
    grants.emplace(gid, g);
    stats.counter("grants_created").inc();
    notifyGrant(GrantEvent::Kind::Created, g);
    return gid;
}

Status
Spm::revokeGrant(uint64_t grant_id, PartitionId requester)
{
    auto it = grants.find(grant_id);
    if (it == grants.end())
        return Status(ErrorCode::NotFound, "no such grant");
    ShareGrant &g = it->second;
    if (g.owner != requester && g.peer != requester)
        return Status(ErrorCode::PermissionDenied,
                      "not a party to this grant");
    if (!g.active)
        return Status(ErrorCode::InvalidState, "grant not active");

    hw::Platform &plat = sm.platform();
    auto peer_p = mutablePartition(g.peer);
    if (peer_p.isOk()) {
        for (uint64_t i = 0; i < g.pages; ++i) {
            peer_p.value()->stage2.unmap(g.base + i * hw::kPageSize);
            plat.clock().advance(plat.costs().pageTableUpdateNs);
        }
        /* Revocation is a shootdown: the peer's cached translations
         * for these pages die here. */
        plat.clock().advance(plat.costs().tlbInvalidateNs);
    }
    backend->grantUnmapped(grant_id, g.peer);
    for (uint64_t i = 0; i < g.pages; ++i)
        pageShareCount[g.base + i * hw::kPageSize] = 0;
    g.active = false;
    stats.counter("grants_revoked").inc();
    notifyGrant(GrantEvent::Kind::Revoked, g);
    return Status::ok();
}

Result<const ShareGrant *>
Spm::grant(uint64_t grant_id) const
{
    auto it = grants.find(grant_id);
    if (it == grants.end())
        return Status(ErrorCode::NotFound, "no such grant");
    return &it->second;
}

std::vector<uint64_t>
Spm::grantsOf(PartitionId pid) const
{
    std::vector<uint64_t> out;
    for (const auto &[gid, g] : grants) {
        if (g.active && (g.owner == pid || g.peer == pid))
            out.push_back(gid);
    }
    return out;
}

bool
Spm::validateMosId(PartitionId pid) const
{
    if (lastAccessed != nullptr && lastAccessed->id == pid)
        return lastAccessed->state == PartitionState::Ready;
    auto it = partitions.find(pid);
    return it != partitions.end() &&
           it->second.state == PartitionState::Ready;
}

} // namespace cronus::tee
