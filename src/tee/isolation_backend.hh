/**
 * @file
 * Pluggable isolation substrate behind the SPM (§VII-A).
 *
 * The SPM's *policy* -- partitions, share-once grants, proceed-trap
 * failover -- is substrate-independent. What differs between a
 * TrustZone SoC and a RISC-V PMP platform is the *mechanism* that
 * makes the policy stick in hardware: stage-2 tables + TZASC world
 * filtering on Arm, priority-ordered PMP entries per hart (plus an
 * M-mode PMP classifying untrusted traffic) on RISC-V.
 *
 * `IsolationBackend` is that mechanism seam. The SPM drives it with
 * region-programming hooks (partition create/scrub, grant map/unmap)
 * and consults it on every checked access; the backend additionally
 * classifies raw bus traffic (the TZASC world-check role). Stage-2
 * tables are retained under *both* backends -- they carry the
 * Invalidated-fault proceed-trap semantics and the software TLB --
 * so a backend is an additional physical filter, never a replacement
 * for the fault machinery. Backend checks charge no virtual time,
 * which keeps figure-bench output byte-identical across backends.
 */

#ifndef CRONUS_TEE_ISOLATION_BACKEND_HH
#define CRONUS_TEE_ISOLATION_BACKEND_HH

#include <map>
#include <memory>
#include <vector>

#include "base/stats.hh"
#include "base/status.hh"
#include "hw/pmp.hh"
#include "hw/types.hh"

namespace cronus::tee
{

using hw::PartitionId;
using hw::PhysAddr;

/** Configured backend choice (CronusConfig / test parameter). */
enum class BackendSelect : uint8_t
{
    Default,  ///< CRONUS_BACKEND env var, falling back to Tz
    Tz,
    Pmp,
};

/** Resolved substrate. */
enum class BackendKind : uint8_t
{
    Tz,
    Pmp,
};

/** Resolve a selection: Default consults CRONUS_BACKEND=tz|pmp. */
BackendKind resolveBackend(BackendSelect select);

const char *backendName(BackendKind kind);

class IsolationBackend
{
  public:
    virtual ~IsolationBackend() = default;

    virtual BackendKind kind() const = 0;
    const char *name() const { return backendName(kind()); }

    /** Program the substrate for a new/rebooted partition owning
     *  [base, base+bytes). */
    virtual Status partitionCreated(PartitionId pid, PhysAddr base,
                                    uint64_t bytes) = 0;

    /** Failover step 2: drop everything but the private region. */
    virtual void partitionScrubbed(PartitionId pid) = 0;

    /** Grant @p gid maps [base, base+pages*4K) of the owner's
     *  memory into @p peer (overlapped configuration, §VII-A). */
    virtual Status grantMapped(uint64_t gid, PartitionId peer,
                               PhysAddr base, uint64_t pages) = 0;

    /** The peer side of @p gid is torn down (revoke, retirement, or
     *  proceed-trap resolution). */
    virtual void grantUnmapped(uint64_t gid, PartitionId peer) = 0;

    /**
     * Substrate check for a secure-world access by @p pid. On the
     * TrustZone backend this is free: stage-2 + TZASC already
     * enforce, and secure traffic passes the TZASC unconditionally.
     */
    virtual Status checkAccess(PartitionId pid, PhysAddr addr,
                               uint64_t len, bool is_write) = 0;

    /**
     * World/secure-traffic classification for raw bus accesses.
     * Only consulted when wantsBusFilter() -- the TrustZone backend
     * leaves the TZASC in charge.
     */
    virtual Status classifyBus(hw::World from, PhysAddr addr,
                               uint64_t len, bool is_write) = 0;

    virtual bool wantsBusFilter() const = 0;
};

/**
 * TrustZone substrate: stage-2 tables + TZASC/TZPC, exactly the
 * pre-seam behaviour. Every hook is a no-op -- the SPM's stage-2
 * programming *is* the region programming, and the TZASC installed
 * in the Platform *is* the world classifier.
 */
class TzBackend final : public IsolationBackend
{
  public:
    BackendKind kind() const override { return BackendKind::Tz; }

    Status
    partitionCreated(PartitionId, PhysAddr, uint64_t) override
    {
        return Status::ok();
    }

    void partitionScrubbed(PartitionId) override {}

    Status
    grantMapped(uint64_t, PartitionId, PhysAddr, uint64_t) override
    {
        return Status::ok();
    }

    void grantUnmapped(uint64_t, PartitionId) override {}

    Status
    checkAccess(PartitionId, PhysAddr, uint64_t, bool) override
    {
        return Status::ok();
    }

    Status
    classifyBus(hw::World, PhysAddr, uint64_t, bool) override
    {
        return Status::ok();
    }

    bool wantsBusFilter() const override { return false; }
};

/**
 * RISC-V PMP substrate (§VII-A). Each partition gets a chain of
 * "virtual" 16-entry PMP units (what firmware would context-switch
 * per hart); regions become Off/TOR entry pairs so arbitrary
 * page-granular ranges fit without power-of-two alignment. The
 * private region is pair 0 of unit 0; every peer-side grant window
 * adds a pair (the owner side is already covered by its private
 * pair -- the overlap lives in the peer's configuration). A
 * partition that outgrows one unit spills into the next; the first
 * unit whose entries match decides, mirroring in-unit priority.
 *
 * Untrusted ("normal world" on Arm) traffic is classified by a
 * locked machine-level PMP granting exactly the untrusted DRAM
 * range -- the M-mode firmware filter HECTOR-V argues for instead
 * of implicit shared-bus trust.
 */
class PmpBackend final : public IsolationBackend
{
  public:
    /** @p untrusted_base/@p untrusted_bytes is the DRAM range the
     *  machine PMP concedes to untrusted software. */
    PmpBackend(PhysAddr untrusted_base, uint64_t untrusted_bytes,
               StatGroup &stat_group);

    BackendKind kind() const override { return BackendKind::Pmp; }

    Status partitionCreated(PartitionId pid, PhysAddr base,
                            uint64_t bytes) override;
    void partitionScrubbed(PartitionId pid) override;
    Status grantMapped(uint64_t gid, PartitionId peer, PhysAddr base,
                       uint64_t pages) override;
    void grantUnmapped(uint64_t gid, PartitionId peer) override;
    Status checkAccess(PartitionId pid, PhysAddr addr, uint64_t len,
                       bool is_write) override;
    Status classifyBus(hw::World from, PhysAddr addr, uint64_t len,
                       bool is_write) override;
    bool wantsBusFilter() const override { return true; }

    /** PMP units currently programmed for @p pid (tests). */
    const std::vector<hw::Pmp> *unitsOf(PartitionId pid) const;

  private:
    struct Window
    {
        PhysAddr base = 0;
        uint64_t bytes = 0;
    };

    struct PartitionPmp
    {
        PhysAddr base = 0;
        uint64_t bytes = 0;
        /** gid -> peer-side grant window. */
        std::map<uint64_t, Window> windows;
        /** Derived Off/TOR programming, rebuilt on any change. */
        std::vector<hw::Pmp> units;
    };

    /** Reprogram @p part's unit chain from its region list. */
    void rebuild(PartitionPmp &part);

    /** True if some unit allows the whole page-chunked access. */
    bool unitsAllow(const hw::Pmp *units, size_t count,
                    PhysAddr addr, uint64_t len, bool is_write) const;

    std::map<PartitionId, PartitionPmp> parts;
    hw::Pmp machinePmp;  ///< locked M-mode classifier
    Counter *checks;
    Counter *faults;
    Counter *worldFaults;
    Counter *reprograms;
};

/** Instantiate the substrate for @p kind. @p stat_group receives
 *  the backend's counters (none for Tz -- byte-identity). */
std::unique_ptr<IsolationBackend> makeBackend(
    BackendKind kind, PhysAddr untrusted_base,
    uint64_t untrusted_bytes, StatGroup &stat_group);

} // namespace cronus::tee

#endif // CRONUS_TEE_ISOLATION_BACKEND_HH
