#include "isolation_backend.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"

namespace cronus::tee
{
namespace
{

/** Regions per 16-entry unit when every region is an Off/TOR pair. */
constexpr size_t kPairsPerUnit = hw::Pmp::kEntries / 2;

/** Program region @p slot of @p unit as an Off/TOR pair over
 *  [lo, hi). The Off entry parks the low bound in its pmpaddr; the
 *  TOR entry reads it as its base even though the entry is Off --
 *  the standard RISC-V idiom for non-power-of-two ranges. */
void
programTorPair(hw::Pmp &unit, size_t slot, PhysAddr lo, PhysAddr hi)
{
    hw::PmpEntry bound;
    bound.mode = hw::PmpMode::Off;
    bound.addr = lo >> 2;
    Status s = unit.configure(slot * 2, bound);
    CRONUS_ASSERT(s.isOk(), "PMP bound entry: " + s.toString());

    hw::PmpEntry top;
    top.mode = hw::PmpMode::Tor;
    top.addr = hi >> 2;
    top.read = true;
    top.write = true;
    s = unit.configure(slot * 2 + 1, top);
    CRONUS_ASSERT(s.isOk(), "PMP top entry: " + s.toString());
}

} // namespace

BackendKind
resolveBackend(BackendSelect select)
{
    if (select == BackendSelect::Tz)
        return BackendKind::Tz;
    if (select == BackendSelect::Pmp)
        return BackendKind::Pmp;
    const char *env = std::getenv("CRONUS_BACKEND");
    if (env == nullptr || env[0] == '\0')
        return BackendKind::Tz;
    if (std::strcmp(env, "pmp") == 0)
        return BackendKind::Pmp;
    if (std::strcmp(env, "tz") != 0)
        warn("unknown CRONUS_BACKEND '" + std::string(env) +
             "', using tz");
    return BackendKind::Tz;
}

const char *
backendName(BackendKind kind)
{
    return kind == BackendKind::Pmp ? "pmp" : "tz";
}

PmpBackend::PmpBackend(PhysAddr untrusted_base,
                       uint64_t untrusted_bytes,
                       StatGroup &stat_group)
    : checks(&stat_group.counter("pmp_checks")),
      faults(&stat_group.counter("pmp_faults")),
      worldFaults(&stat_group.counter("pmp_world_faults")),
      reprograms(&stat_group.counter("pmp_reprograms"))
{
    /* The machine-level classifier concedes exactly the untrusted
     * DRAM range and is locked at boot: even machine-mode software
     * cannot widen it without a reset (the RISC-V analogue of the
     * TZASC lockDown). */
    hw::PmpEntry bound;
    bound.mode = hw::PmpMode::Off;
    bound.addr = untrusted_base >> 2;
    bound.locked = true;
    Status s = machinePmp.configure(0, bound);
    CRONUS_ASSERT(s.isOk(), "machine PMP bound: " + s.toString());

    hw::PmpEntry top;
    top.mode = hw::PmpMode::Tor;
    top.addr = (untrusted_base + untrusted_bytes) >> 2;
    top.read = true;
    top.write = true;
    top.locked = true;
    s = machinePmp.configure(1, top);
    CRONUS_ASSERT(s.isOk(), "machine PMP top: " + s.toString());
}

void
PmpBackend::rebuild(PartitionPmp &part)
{
    part.units.clear();
    size_t regions = 1 + part.windows.size();
    part.units.resize((regions + kPairsPerUnit - 1) / kPairsPerUnit);

    programTorPair(part.units[0], 0, part.base,
                   part.base + part.bytes);
    size_t index = 1;
    for (const auto &[gid, window] : part.windows) {
        programTorPair(part.units[index / kPairsPerUnit],
                       index % kPairsPerUnit, window.base,
                       window.base + window.bytes);
        ++index;
    }
    reprograms->inc();
}

bool
PmpBackend::unitsAllow(const hw::Pmp *units, size_t count,
                       PhysAddr addr, uint64_t len,
                       bool is_write) const
{
    /* A logical SPM access decomposes into per-page bus transactions
     * (the ring fast path already copies page-by-page), so each page
     * chunk must find *a* matching entry -- contiguous windows
     * compose instead of requiring one entry to span them. */
    hw::PmpAccess access =
        is_write ? hw::PmpAccess::Write : hw::PmpAccess::Read;
    while (len > 0) {
        uint64_t chunk = std::min<uint64_t>(
            len, hw::kPageSize - (addr & (hw::kPageSize - 1)));
        bool allowed = false;
        for (size_t i = 0; i < count; ++i) {
            if (units[i].check(addr, chunk, access).isOk()) {
                allowed = true;
                break;
            }
        }
        if (!allowed)
            return false;
        addr += chunk;
        len -= chunk;
    }
    return true;
}

Status
PmpBackend::partitionCreated(PartitionId pid, PhysAddr base,
                             uint64_t bytes)
{
    PartitionPmp &part = parts[pid];
    part.base = base;
    part.bytes = bytes;
    part.windows.clear();
    rebuild(part);
    return Status::ok();
}

void
PmpBackend::partitionScrubbed(PartitionId pid)
{
    auto it = parts.find(pid);
    if (it == parts.end())
        return;
    it->second.windows.clear();
    rebuild(it->second);
}

Status
PmpBackend::grantMapped(uint64_t gid, PartitionId peer,
                        PhysAddr base, uint64_t pages)
{
    auto it = parts.find(peer);
    if (it == parts.end())
        return Status(ErrorCode::NotFound,
                      "PMP: no configuration for partition " +
                          std::to_string(peer));
    it->second.windows[gid] = Window{base, pages * hw::kPageSize};
    rebuild(it->second);
    return Status::ok();
}

void
PmpBackend::grantUnmapped(uint64_t gid, PartitionId peer)
{
    auto it = parts.find(peer);
    if (it == parts.end())
        return;
    if (it->second.windows.erase(gid) > 0)
        rebuild(it->second);
}

Status
PmpBackend::checkAccess(PartitionId pid, PhysAddr addr, uint64_t len,
                        bool is_write)
{
    checks->inc();
    auto it = parts.find(pid);
    if (it == parts.end() ||
        !unitsAllow(it->second.units.data(), it->second.units.size(),
                    addr, len, is_write)) {
        faults->inc();
        return Status(ErrorCode::AccessFault,
                      "PMP: partition " + std::to_string(pid) +
                          " has no entry covering " +
                          std::to_string(addr));
    }
    return Status::ok();
}

Status
PmpBackend::classifyBus(hw::World from, PhysAddr addr, uint64_t len,
                        bool is_write)
{
    /* Trusted-domain traffic (the SPM and secure devices) plays the
     * M/S-mode role: the machine PMP does not constrain it, exactly
     * as secure-world traffic passes the TZASC unconditionally. */
    if (from == hw::World::Secure)
        return Status::ok();
    if (!unitsAllow(&machinePmp, 1, addr, len, is_write)) {
        worldFaults->inc();
        return Status(ErrorCode::AccessFault,
                      "PMP: untrusted access outside conceded DRAM");
    }
    return Status::ok();
}

const std::vector<hw::Pmp> *
PmpBackend::unitsOf(PartitionId pid) const
{
    auto it = parts.find(pid);
    return it == parts.end() ? nullptr : &it->second.units;
}

std::unique_ptr<IsolationBackend>
makeBackend(BackendKind kind, PhysAddr untrusted_base,
            uint64_t untrusted_bytes, StatGroup &stat_group)
{
    if (kind == BackendKind::Pmp)
        return std::make_unique<PmpBackend>(
            untrusted_base, untrusted_bytes, stat_group);
    return std::make_unique<TzBackend>();
}

} // namespace cronus::tee
