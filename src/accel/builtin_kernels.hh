/**
 * @file
 * Small built-in GPU kernel library (vector/matrix primitives).
 *
 * The rodinia-like benchmark kernels and the DNN layer kernels live
 * in src/workloads; these primitives are used by tests, examples and
 * the DNN layers.
 */

#ifndef CRONUS_ACCEL_BUILTIN_KERNELS_HH
#define CRONUS_ACCEL_BUILTIN_KERNELS_HH

namespace cronus::accel
{

/**
 * Register the built-in kernels with the global registry
 * (idempotent):
 *   fill_f32(buf, n, bits)        buf[i] = bitcast(bits)
 *   vec_add_f32(a, b, out, n)     out[i] = a[i] + b[i]
 *   saxpy_f32(a, x, y, n)         y[i] += bitcast(a) * x[i]
 *   matmul_f32(a, b, c, m, k, n)  c = a(mxk) * b(kxn)
 *   reduce_sum_f32(in, out, n)    out[0] = sum(in)
 */
void registerBuiltinKernels();

} // namespace cronus::accel

#endif // CRONUS_ACCEL_BUILTIN_KERNELS_HH
