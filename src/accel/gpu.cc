#include "gpu.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace cronus::accel
{

/* ------------------------------------------------------------------ */
/* GpuAccessor                                                         */
/* ------------------------------------------------------------------ */

Result<uint8_t *>
GpuAccessor::mapRange(GpuVa va, uint64_t len, bool write)
{
    return dev.translate(ctxId, va, len, write);
}

/* ------------------------------------------------------------------ */
/* GpuKernelRegistry                                                   */
/* ------------------------------------------------------------------ */

GpuKernelRegistry &
GpuKernelRegistry::instance()
{
    static GpuKernelRegistry registry;
    return registry;
}

void
GpuKernelRegistry::registerKernel(const std::string &name,
                                  GpuKernel kernel)
{
    std::unique_lock<std::shared_mutex> lock(mu);
    kernels.emplace(name, std::move(kernel));
}

const GpuKernel *
GpuKernelRegistry::find(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    auto it = kernels.find(name);
    return it == kernels.end() ? nullptr : &it->second;
}

bool
GpuKernelRegistry::has(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    return kernels.count(name) > 0;
}

/* ------------------------------------------------------------------ */
/* GpuModuleImage                                                      */
/* ------------------------------------------------------------------ */

Bytes
GpuModuleImage::serialize() const
{
    ByteWriter w;
    w.putString(name);
    w.putU32(static_cast<uint32_t>(kernels.size()));
    for (const auto &k : kernels)
        w.putString(k);
    return w.take();
}

Result<GpuModuleImage>
GpuModuleImage::deserialize(const Bytes &data)
{
    ByteReader r(data);
    GpuModuleImage image;
    auto name = r.getString();
    if (!name.isOk())
        return name.status();
    image.name = name.value();
    auto count = r.getU32();
    if (!count.isOk())
        return count.status();
    if (count.value() > 4096)
        return Status(ErrorCode::InvalidArgument,
                      "implausible kernel count");
    for (uint32_t i = 0; i < count.value(); ++i) {
        auto k = r.getString();
        if (!k.isOk())
            return k.status();
        image.kernels.push_back(k.value());
    }
    return image;
}

/* ------------------------------------------------------------------ */
/* GpuDevice                                                           */
/* ------------------------------------------------------------------ */

GpuDevice::GpuDevice(const GpuConfig &config)
    : hw::Device(config.name, "nvidia,gtx2080-sim", 0x1000),
      cfg(config), vram(config.vramBytes, 0),
      rotKeys(crypto::deriveKeyPair(config.rotSeed))
{
}

Result<uint64_t>
GpuDevice::mmioRead(uint64_t offset)
{
    switch (offset) {
      case 0x0:  return uint64_t(0x47505553);     /* 'GPUS' magic */
      case 0x8:  return uint64_t(contexts.size());
      case 0x10: return cfg.vramBytes;
      case 0x18: return freeVram();
      default:
        return Status(ErrorCode::AccessFault, "gpu mmio oob read");
    }
}

Status
GpuDevice::mmioWrite(uint64_t offset, uint64_t value)
{
    (void)value;
    if (offset >= mmioSize())
        return Status(ErrorCode::AccessFault, "gpu mmio oob write");
    /* All control goes through the typed driver API; register writes
     * are accepted but ignored. */
    return Status::ok();
}

void
GpuDevice::reset(bool clear_memory)
{
    contexts.clear();
    vramNext = 0;
    vramFreeList.clear();
    if (clear_memory)
        std::fill(vram.begin(), vram.end(), 0);
}

Result<GpuDevice::Context *>
GpuDevice::findContext(GpuContextId ctx)
{
    auto it = contexts.find(ctx);
    if (it == contexts.end())
        return Status(ErrorCode::NotFound, "no such GPU context");
    return &it->second;
}

Result<GpuContextId>
GpuDevice::createContext()
{
    if (contexts.size() >= cfg.maxContexts)
        return Status(ErrorCode::ResourceExhausted,
                      "GPU context limit reached");
    GpuContextId id = nextCtx++;
    contexts.emplace(id, Context{});
    return id;
}

Status
GpuDevice::destroyContext(GpuContextId ctx, bool scrub)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    if (scrub) {
        for (const auto &[va, alloc] : c.value()->allocations)
            std::memset(vram.data() + alloc.offset, 0, alloc.bytes);
    }
    for (const auto &[va, alloc] : c.value()->allocations)
        vramFreeList.emplace_back(alloc.offset, alloc.bytes);
    contexts.erase(ctx);
    return Status::ok();
}

uint64_t
GpuDevice::freeVram() const
{
    uint64_t freed = 0;
    for (const auto &[off, bytes] : vramFreeList)
        freed += bytes;
    return cfg.vramBytes - vramNext + freed;
}

Result<GpuVa>
GpuDevice::malloc(GpuContextId ctx, uint64_t bytes)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    if (bytes == 0)
        return Status(ErrorCode::InvalidArgument, "zero allocation");
    uint64_t aligned = hw::pageAlignUp(bytes);

    /* First-fit over the free list, else bump. */
    uint64_t offset = ~0ull;
    for (auto it = vramFreeList.begin(); it != vramFreeList.end();
         ++it) {
        if (it->second >= aligned) {
            offset = it->first;
            if (it->second == aligned) {
                vramFreeList.erase(it);
            } else {
                it->first += aligned;
                it->second -= aligned;
            }
            break;
        }
    }
    if (offset == ~0ull) {
        if (vramNext + aligned > cfg.vramBytes)
            return Status(ErrorCode::ResourceExhausted,
                          "out of GPU memory");
        offset = vramNext;
        vramNext += aligned;
    }

    Context &context = *c.value();
    GpuVa va = context.nextVa;
    context.nextVa += aligned;
    for (uint64_t page = 0; page < aligned; page += hw::kPageSize) {
        Status s = context.vaSpace.map(va + page, offset + page,
                                       hw::PagePerms::rw());
        CRONUS_ASSERT(s.isOk(), "gpu va map: " + s.toString());
    }
    context.allocations[va] = Allocation{offset, aligned};
    return va;
}

Status
GpuDevice::free(GpuContextId ctx, GpuVa va)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    Context &context = *c.value();
    auto it = context.allocations.find(va);
    if (it == context.allocations.end())
        return Status(ErrorCode::NotFound, "no such GPU allocation");
    for (uint64_t page = 0; page < it->second.bytes;
         page += hw::kPageSize)
        context.vaSpace.unmap(va + page);
    vramFreeList.emplace_back(it->second.offset, it->second.bytes);
    context.allocations.erase(it);
    return Status::ok();
}

Result<uint8_t *>
GpuDevice::translate(GpuContextId ctx, GpuVa va, uint64_t len,
                     bool write)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    if (len == 0)
        return Status(ErrorCode::InvalidArgument, "zero-length map");
    hw::Translation t = c.value()->vaSpace.translate(va, len, write);
    if (!t.ok())
        return Status(ErrorCode::AccessFault,
                      "GPU VA fault at 0x" +
                      detail::formatString("%llx",
                          static_cast<unsigned long long>(va)));
    if (t.phys + len > vram.size())
        return Status(ErrorCode::AccessFault, "VRAM range overflow");
    return vram.data() + t.phys;
}

Status
GpuDevice::write(GpuContextId ctx, GpuVa va, const uint8_t *data,
                 uint64_t len)
{
    auto p = translate(ctx, va, len, true);
    if (!p.isOk())
        return p.status();
    std::memcpy(p.value(), data, len);
    return Status::ok();
}

Status
GpuDevice::read(GpuContextId ctx, GpuVa va, uint8_t *out,
                uint64_t len)
{
    auto p = translate(ctx, va, len, false);
    if (!p.isOk())
        return p.status();
    std::memcpy(out, p.value(), len);
    return Status::ok();
}

Result<Bytes>
GpuDevice::snapshotContext(GpuContextId ctx) const
{
    auto it = contexts.find(ctx);
    if (it == contexts.end())
        return Status(ErrorCode::NotFound, "no such GPU context");
    const Context &context = it->second;
    ByteWriter w;
    w.putU32(static_cast<uint32_t>(context.allocations.size()));
    for (const auto &[va, alloc] : context.allocations) {
        w.putU64(va);
        w.putU64(alloc.bytes);
        Bytes contents(alloc.bytes);
        std::memcpy(contents.data(), vram.data() + alloc.offset,
                    alloc.bytes);
        w.putBytes(contents);
    }
    return w.take();
}

Status
GpuDevice::restoreContext(GpuContextId ctx, const Bytes &snapshot)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    if (!c.value()->allocations.empty())
        return Status(ErrorCode::InvalidState,
                      "restore requires a fresh context");
    ByteReader r(snapshot);
    auto count = r.getU32();
    if (!count.isOk())
        return count.status();
    if (count.value() > (1u << 20))
        return Status(ErrorCode::InvalidArgument,
                      "implausible allocation count");
    for (uint32_t i = 0; i < count.value(); ++i) {
        auto va = r.getU64();
        if (!va.isOk())
            return va.status();
        auto bytes = r.getU64();
        if (!bytes.isOk())
            return bytes.status();
        auto contents = r.getBytes();
        if (!contents.isOk())
            return contents.status();
        if (contents.value().size() != bytes.value())
            return Status(ErrorCode::InvalidArgument,
                          "snapshot length mismatch");
        auto placed = malloc(ctx, bytes.value());
        if (!placed.isOk())
            return placed.status();
        if (placed.value() != va.value())
            return Status(ErrorCode::InvalidState,
                          "restored VA diverged from snapshot");
        CRONUS_RETURN_IF_ERROR(write(ctx, placed.value(),
                                     contents.value().data(),
                                     contents.value().size()));
    }
    return Status::ok();
}

Status
GpuDevice::loadModule(GpuContextId ctx, const GpuModuleImage &image)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    for (const auto &kernel : image.kernels) {
        if (!GpuKernelRegistry::instance().has(kernel))
            return Status(ErrorCode::NotFound,
                          "module references unknown kernel '" +
                          kernel + "'");
        c.value()->loadedKernels.insert(kernel);
    }
    return Status::ok();
}

uint32_t
GpuDevice::activeContexts(SimTime now) const
{
    uint32_t active = 0;
    for (const auto &[id, context] : contexts) {
        if (context.busyUntil > now)
            ++active;
    }
    return active;
}

Result<SimTime>
GpuDevice::launch(GpuContextId ctx, const std::string &kernel,
                  const std::vector<uint64_t> &args,
                  const LaunchDims &dims, SimTime now)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    Context &context = *c.value();
    if (!context.loadedKernels.count(kernel))
        return Status(ErrorCode::PermissionDenied,
                      "kernel '" + kernel +
                      "' not loaded in this context");
    const GpuKernel *info = GpuKernelRegistry::instance().find(kernel);
    CRONUS_ASSERT(info != nullptr, "registry lost kernel");

    /* Functional execution (checked through the context VA space). */
    GpuAccessor accessor(*this, ctx);
    Status s = info->body(accessor, args, dims);
    if (!s.isOk())
        return s;

    /* Timing: spatial-sharing model. Peers with in-flight work share
     * the SMs; packing is free until aggregate utilization exceeds
     * 1.0, then everything dilates, plus a per-peer contention
     * penalty. */
    double total_util = info->utilization;
    uint32_t peers = 0;
    for (const auto &[id, peer] : contexts) {
        if (id != ctx && peer.busyUntil > now) {
            total_util += peer.currentUtilization;
            ++peers;
        }
    }
    double dilation = std::max(1.0, total_util) *
                      (1.0 + cfg.contentionPenalty * peers);

    double busy_ns = info->launchOverheadNs +
                     dims.workItems * info->nsPerItem * dilation;
    SimTime start = std::max(now, context.busyUntil);
    context.busyUntil = start + static_cast<SimTime>(busy_ns);
    context.currentUtilization = info->utilization;
    return context.busyUntil;
}

SimTime
GpuDevice::streamBusyUntil(GpuContextId ctx) const
{
    auto it = contexts.find(ctx);
    return it == contexts.end() ? 0 : it->second.busyUntil;
}

crypto::Signature
GpuDevice::attestConfig(const Bytes &challenge) const
{
    ByteWriter w;
    w.putString(cfg.name);
    w.putString(devCompatible);
    w.putU64(cfg.vramBytes);
    w.putBytes(challenge);
    return crypto::sign(rotKeys.priv, w.take());
}

} // namespace cronus::accel
