#include "builtin_kernels.hh"

#include <cstring>

#include "gpu.hh"

namespace cronus::accel
{

namespace
{

Status
needArgs(const std::vector<uint64_t> &args, size_t n,
         const char *kernel)
{
    if (args.size() != n)
        return Status(ErrorCode::InvalidArgument,
                      std::string(kernel) + ": bad argument count");
    return Status::ok();
}

float
bitsToFloat(uint64_t bits)
{
    float f;
    uint32_t w = static_cast<uint32_t>(bits);
    std::memcpy(&f, &w, sizeof(f));
    return f;
}

} // namespace

void
registerBuiltinKernels()
{
    auto &reg = GpuKernelRegistry::instance();
    if (reg.has("vec_add_f32"))
        return;

    GpuKernel fill;
    fill.utilization = 0.4;
    fill.nsPerItem = 0.5;
    fill.body = [](GpuAccessor &mem, const std::vector<uint64_t> &args,
                   const LaunchDims &) -> Status {
        CRONUS_RETURN_IF_ERROR(needArgs(args, 3, "fill_f32"));
        uint64_t n = args[1];
        auto buf = mem.span<float>(args[0], n);
        if (!buf.isOk())
            return buf.status();
        float v = bitsToFloat(args[2]);
        for (uint64_t i = 0; i < n; ++i)
            buf.value()[i] = v;
        return Status::ok();
    };
    reg.registerKernel("fill_f32", fill);

    GpuKernel vec_add;
    vec_add.utilization = 0.5;
    vec_add.nsPerItem = 0.8;
    vec_add.body = [](GpuAccessor &mem,
                      const std::vector<uint64_t> &args,
                      const LaunchDims &) -> Status {
        CRONUS_RETURN_IF_ERROR(needArgs(args, 4, "vec_add_f32"));
        uint64_t n = args[3];
        auto a = mem.constSpan<float>(args[0], n);
        if (!a.isOk())
            return a.status();
        auto b = mem.constSpan<float>(args[1], n);
        if (!b.isOk())
            return b.status();
        auto out = mem.span<float>(args[2], n);
        if (!out.isOk())
            return out.status();
        for (uint64_t i = 0; i < n; ++i)
            out.value()[i] = a.value()[i] + b.value()[i];
        return Status::ok();
    };
    reg.registerKernel("vec_add_f32", vec_add);

    GpuKernel saxpy;
    saxpy.utilization = 0.5;
    saxpy.nsPerItem = 0.8;
    saxpy.body = [](GpuAccessor &mem,
                    const std::vector<uint64_t> &args,
                    const LaunchDims &) -> Status {
        CRONUS_RETURN_IF_ERROR(needArgs(args, 4, "saxpy_f32"));
        float a = bitsToFloat(args[0]);
        uint64_t n = args[3];
        auto x = mem.constSpan<float>(args[1], n);
        if (!x.isOk())
            return x.status();
        auto y = mem.span<float>(args[2], n);
        if (!y.isOk())
            return y.status();
        for (uint64_t i = 0; i < n; ++i)
            y.value()[i] += a * x.value()[i];
        return Status::ok();
    };
    reg.registerKernel("saxpy_f32", saxpy);

    GpuKernel matmul;
    matmul.utilization = 0.95;
    matmul.nsPerItem = 0.02;  /* per multiply-accumulate */
    matmul.body = [](GpuAccessor &mem,
                     const std::vector<uint64_t> &args,
                     const LaunchDims &) -> Status {
        CRONUS_RETURN_IF_ERROR(needArgs(args, 6, "matmul_f32"));
        uint64_t m = args[3], k = args[4], n = args[5];
        auto a = mem.constSpan<float>(args[0], m * k);
        if (!a.isOk())
            return a.status();
        auto b = mem.constSpan<float>(args[1], k * n);
        if (!b.isOk())
            return b.status();
        auto c = mem.span<float>(args[2], m * n);
        if (!c.isOk())
            return c.status();
        for (uint64_t i = 0; i < m; ++i) {
            for (uint64_t j = 0; j < n; ++j) {
                float acc = 0.0f;
                for (uint64_t x = 0; x < k; ++x)
                    acc += a.value()[i * k + x] *
                           b.value()[x * n + j];
                c.value()[i * n + j] = acc;
            }
        }
        return Status::ok();
    };
    reg.registerKernel("matmul_f32", matmul);

    GpuKernel reduce;
    reduce.utilization = 0.6;
    reduce.nsPerItem = 0.6;
    reduce.body = [](GpuAccessor &mem,
                     const std::vector<uint64_t> &args,
                     const LaunchDims &) -> Status {
        CRONUS_RETURN_IF_ERROR(needArgs(args, 3, "reduce_sum_f32"));
        uint64_t n = args[2];
        auto in = mem.constSpan<float>(args[0], n);
        if (!in.isOk())
            return in.status();
        auto out = mem.span<float>(args[1], 1);
        if (!out.isOk())
            return out.status();
        float acc = 0.0f;
        for (uint64_t i = 0; i < n; ++i)
            acc += in.value()[i];
        out.value()[0] = acc;
        return Status::ok();
    };
    reg.registerKernel("reduce_sum_f32", reduce);
}

} // namespace cronus::accel
