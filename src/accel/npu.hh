/**
 * @file
 * Simulated VTA-compatible NPU.
 *
 * Models the paper's NPU: a QEMU PCIe device running TVM VTA's fsim
 * functional simulator. The instruction set follows VTA's structure:
 * LOAD / GEMM / ALU / STORE over int8 inputs with int32 accumulators,
 * executed against per-context SRAM banks so concurrent NPU programs
 * are isolated by virtual memory (§V-B).
 */

#ifndef CRONUS_ACCEL_NPU_HH
#define CRONUS_ACCEL_NPU_HH

#include <cstdint>
#include <map>
#include <vector>

#include "base/sim_clock.hh"
#include "base/status.hh"
#include "crypto/keys.hh"
#include "hw/device.hh"

namespace cronus::accel
{

using NpuContextId = uint32_t;

/** VTA-style opcode. */
enum class NpuOp : uint8_t
{
    /** Copy from context DRAM buffer into an SRAM bank. */
    Load,
    /** out[i,j] (acc) += sum_k inp[i,k] * wgt[j,k]  (int8 -> int32) */
    Gemm,
    /** Elementwise op on the accumulator bank. */
    Alu,
    /** Copy accumulator (clamped to int8) back to a DRAM buffer. */
    Store,
};

/** ALU sub-opcodes. */
enum class NpuAluOp : uint8_t
{
    Relu,
    AddImm,
    MulImm,
    ShrImm,
    MaxImm,
};

/** SRAM banks addressable by instructions. */
enum class NpuBank : uint8_t
{
    Input,
    Weight,
    Accum,
};

/** One NPU instruction. */
struct NpuInsn
{
    NpuOp op = NpuOp::Gemm;

    /* Load/Store: DRAM buffer id + offsets + length (bytes for
     * Input/Weight, int32 elements for Accum via Store). */
    uint32_t buffer = 0;
    uint64_t dramOffset = 0;
    uint64_t sramOffset = 0;
    uint64_t length = 0;
    NpuBank bank = NpuBank::Input;

    /* Gemm: dimensions. inp is rows x inner, wgt is cols x inner,
     * accumulates into acc[rows x cols]. */
    uint32_t rows = 0;
    uint32_t cols = 0;
    uint32_t inner = 0;
    bool resetAccum = false;

    /* Alu */
    NpuAluOp aluOp = NpuAluOp::Relu;
    int32_t imm = 0;
    uint64_t aluElems = 0;
};

/** An NPU program (what the TVM-like compiler emits). */
struct NpuProgram
{
    std::vector<NpuInsn> insns;
};

struct NpuConfig
{
    std::string name = "npu0";
    uint64_t sramBytes = 1 << 20;     ///< per bank
    uint64_t accumElems = 1 << 18;    ///< int32 accumulator elements
    uint64_t dramBytes = 16ull << 20; ///< per-context buffer space
    /** ns per MAC at full throughput. */
    double nsPerMac = 0.05;
    /** ns per byte moved between DRAM buffer and SRAM. */
    double nsPerByte = 0.25;
    uint64_t insnOverheadNs = 200;
    Bytes rotSeed = {'n', 'p', 'u', '-', 'r', 'o', 't'};
};

class NpuDevice : public hw::Device
{
  public:
    explicit NpuDevice(const NpuConfig &config = NpuConfig());

    /* --- hw::Device interface --- */
    Result<uint64_t> mmioRead(uint64_t offset) override;
    Status mmioWrite(uint64_t offset, uint64_t value) override;
    void reset(bool clear_memory) override;
    uint64_t memoryBytes() const override { return cfg.dramBytes; }

    /* --- context management --- */
    Result<NpuContextId> createContext();
    Status destroyContext(NpuContextId ctx, bool scrub);
    size_t contextCount() const { return contexts.size(); }

    /* --- DRAM-side buffers (inputs/weights/outputs) --- */
    Result<uint32_t> allocBuffer(NpuContextId ctx, uint64_t bytes);
    Status writeBuffer(NpuContextId ctx, uint32_t buffer,
                       uint64_t offset, const uint8_t *data,
                       uint64_t len);
    Status readBuffer(NpuContextId ctx, uint32_t buffer,
                      uint64_t offset, uint8_t *out, uint64_t len);

    /**
     * Execute a program; functional semantics now, timing on the
     * virtual clock (returns completion time given start @p now).
     */
    Result<SimTime> run(NpuContextId ctx, const NpuProgram &program,
                        SimTime now);

    SimTime busyUntil(NpuContextId ctx) const;

    /* --- attestation --- */
    const crypto::PublicKey &devicePublicKey() const
    {
        return rotKeys.pub;
    }
    crypto::Signature attestConfig(const Bytes &challenge) const;

    const NpuConfig &config() const { return cfg; }

  private:
    struct Buffer
    {
        std::vector<uint8_t> data;
    };

    struct Context
    {
        std::map<uint32_t, Buffer> buffers;
        uint32_t nextBuffer = 1;
        uint64_t dramUsed = 0;
        std::vector<int8_t> inputSram;
        std::vector<int8_t> weightSram;
        std::vector<int32_t> accum;
        SimTime busy = 0;
    };

    Result<Context *> findContext(NpuContextId ctx);
    Status execute(Context &context, const NpuInsn &insn,
                   double &cost_ns);

    NpuConfig cfg;
    std::map<NpuContextId, Context> contexts;
    NpuContextId nextCtx = 1;
    crypto::KeyPair rotKeys;
};

} // namespace cronus::accel

#endif // CRONUS_ACCEL_NPU_HH
