/**
 * @file
 * Simulated CUDA-class GPU.
 *
 * Stands in for the paper's NVIDIA GTX 2080 driven by nouveau/gdev.
 * The device provides:
 *  - device-local VRAM with per-context virtual address spaces
 *    (GPU virtual-address isolation, the paper's spatial-sharing
 *    mechanism on GTX 2080),
 *  - module loading ("cubin" images listing kernels),
 *  - an asynchronous launch queue per context with a timing model
 *    that captures MPS-style spatial sharing: concurrent contexts
 *    pack onto the SMs until aggregate utilization exceeds 1.0,
 *    after which kernels slow down proportionally (plus a small
 *    contention penalty), reproducing Fig. 11a's shape,
 *  - a device root of trust for hardware authenticity attestation.
 *
 * Kernels execute *functionally* (real C++ bodies over VRAM) at
 * launch; their *timing* is modeled analytically on the virtual
 * clock, so results are deterministic.
 */

#ifndef CRONUS_ACCEL_GPU_HH
#define CRONUS_ACCEL_GPU_HH

#include <functional>
#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "base/sim_clock.hh"
#include "base/status.hh"
#include "crypto/keys.hh"
#include "hw/device.hh"
#include "hw/page_table.hh"

namespace cronus::accel
{

using GpuContextId = uint32_t;
using GpuVa = uint64_t;

class GpuDevice;

/**
 * Checked access to one context's GPU memory. Kernels receive this
 * accessor; all loads/stores are translated through the context's
 * VA space, so a kernel cannot touch another context's memory.
 */
class GpuAccessor
{
  public:
    GpuAccessor(GpuDevice &device, GpuContextId ctx)
        : dev(device), ctxId(ctx) {}

    /** Map a contiguous VA range as a typed span. */
    template <typename T>
    Result<T *>
    span(GpuVa va, size_t count)
    {
        auto raw = mapRange(va, count * sizeof(T), true);
        if (!raw.isOk())
            return raw.status();
        return reinterpret_cast<T *>(raw.value());
    }

    template <typename T>
    Result<const T *>
    constSpan(GpuVa va, size_t count)
    {
        auto raw = mapRange(va, count * sizeof(T), false);
        if (!raw.isOk())
            return raw.status();
        return reinterpret_cast<const T *>(raw.value());
    }

  private:
    Result<uint8_t *> mapRange(GpuVa va, uint64_t len, bool write);

    GpuDevice &dev;
    GpuContextId ctxId;
};

/** Launch geometry: total work items and per-item cost weight. */
struct LaunchDims
{
    uint64_t workItems = 1;
};

/** A registered GPU kernel: functional body + timing properties. */
struct GpuKernel
{
    /** Functional body; returns error on faulting access. */
    std::function<Status(GpuAccessor &, const std::vector<uint64_t> &,
                         const LaunchDims &)> body;
    /** Fraction of the SMs this kernel can keep busy (0..1]. */
    double utilization = 0.9;
    /** Virtual ns of GPU time per work item at full utilization. */
    double nsPerItem = 1.0;
    /** Fixed launch overhead on the device, ns. */
    uint64_t launchOverheadNs = 4000;
};

/**
 * Process-wide kernel registry; "cubin" module images reference
 * kernels by name.
 */
class GpuKernelRegistry
{
  public:
    static GpuKernelRegistry &instance();

    /** First registration of a name wins; re-registering is a no-op
     *  (see CpuFunctionRegistry::registerFunction). */
    void registerKernel(const std::string &name, GpuKernel kernel);
    const GpuKernel *find(const std::string &name) const;
    bool has(const std::string &name) const;

  private:
    mutable std::shared_mutex mu;
    std::map<std::string, GpuKernel> kernels;
};

/** A "cubin" image: names of kernels the module exports. */
struct GpuModuleImage
{
    std::string name;
    std::vector<std::string> kernels;

    Bytes serialize() const;
    static Result<GpuModuleImage> deserialize(const Bytes &data);
};

/** Per-device configuration. */
struct GpuConfig
{
    std::string name = "gpu0";
    uint64_t vramBytes = 64ull << 20;
    /** Max contexts (channels) the device supports. */
    uint32_t maxContexts = 16;
    /** Extra per-active-peer contention penalty (Fig. 11a droop). */
    double contentionPenalty = 0.06;
    Bytes rotSeed = {'g', 'p', 'u', '-', 'r', 'o', 't'};
};

class GpuDevice : public hw::Device
{
  public:
    explicit GpuDevice(const GpuConfig &config = GpuConfig());

    /* --- hw::Device interface --- */
    Result<uint64_t> mmioRead(uint64_t offset) override;
    Status mmioWrite(uint64_t offset, uint64_t value) override;
    void reset(bool clear_memory) override;
    uint64_t memoryBytes() const override { return cfg.vramBytes; }

    /* --- context management (driver-facing) --- */
    Result<GpuContextId> createContext();
    Status destroyContext(GpuContextId ctx, bool scrub);
    size_t contextCount() const { return contexts.size(); }

    /* --- memory management --- */
    Result<GpuVa> malloc(GpuContextId ctx, uint64_t bytes);
    Status free(GpuContextId ctx, GpuVa va);
    Status write(GpuContextId ctx, GpuVa va, const uint8_t *data,
                 uint64_t len);
    Status read(GpuContextId ctx, GpuVa va, uint8_t *out,
                uint64_t len);
    /** Free VRAM remaining, bytes. */
    uint64_t freeVram() const;

    /* --- checkpoint / restore --- */

    /**
     * Serialize the context's allocations (VA, size, contents) into
     * an opaque blob. Allocation order is the VA-sorted map order,
     * so the blob is deterministic.
     */
    Result<Bytes> snapshotContext(GpuContextId ctx) const;

    /**
     * Rebuild a *fresh* context's memory from @p snapshot. VAs are
     * assigned sequentially by malloc, so replaying the allocations
     * in snapshot (ascending-VA) order on an empty context
     * reproduces the original addresses; a mismatch aborts.
     */
    Status restoreContext(GpuContextId ctx, const Bytes &snapshot);

    /* --- modules and kernels --- */
    Status loadModule(GpuContextId ctx, const GpuModuleImage &image);

    /**
     * Asynchronously launch a kernel: the functional body runs now,
     * the completion time is queued on the context's stream.
     * @p now is the submitting CPU's virtual time.
     */
    Result<SimTime> launch(GpuContextId ctx, const std::string &kernel,
                           const std::vector<uint64_t> &args,
                           const LaunchDims &dims, SimTime now);

    /** Virtual time at which the context's stream goes idle. */
    SimTime streamBusyUntil(GpuContextId ctx) const;

    /** Number of contexts with work in flight at time @p now. */
    uint32_t activeContexts(SimTime now) const;

    /* --- peer-to-peer (Fig. 11b) --- */
    /** Direct VRAM read for P2P DMA; checked against the context. */
    Status p2pRead(GpuContextId ctx, GpuVa va, uint8_t *out,
                   uint64_t len)
    {
        return read(ctx, va, out, len);
    }

    /* --- attestation --- */
    const crypto::PublicKey &devicePublicKey() const
    {
        return rotKeys.pub;
    }
    /** Sign the device configuration (authenticity proof, §IV-A). */
    crypto::Signature attestConfig(const Bytes &challenge) const;

    const GpuConfig &config() const { return cfg; }

    /** Aggregated software-TLB counters over all context VA spaces
     *  (kernel bodies translate every span through them). */
    hw::TlbCounters
    tlbCounters() const
    {
        hw::TlbCounters sum;
        for (const auto &[id, context] : contexts)
            sum.add(context.vaSpace.tlbCounters());
        return sum;
    }

  private:
    friend class GpuAccessor;

    struct Allocation
    {
        uint64_t offset; ///< VRAM offset
        uint64_t bytes;
    };

    struct Context
    {
        hw::PageTable vaSpace;
        std::map<GpuVa, Allocation> allocations;
        GpuVa nextVa = 0x10000000;
        std::set<std::string> loadedKernels;
        SimTime busyUntil = 0;
        double currentUtilization = 0.0;
    };

    Result<Context *> findContext(GpuContextId ctx);
    Result<uint8_t *> translate(GpuContextId ctx, GpuVa va,
                                uint64_t len, bool write);

    GpuConfig cfg;
    std::vector<uint8_t> vram;
    uint64_t vramNext = 0;
    std::vector<std::pair<uint64_t, uint64_t>> vramFreeList;
    std::map<GpuContextId, Context> contexts;
    GpuContextId nextCtx = 1;
    crypto::KeyPair rotKeys;
};

} // namespace cronus::accel

#endif // CRONUS_ACCEL_GPU_HH
