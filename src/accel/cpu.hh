/**
 * @file
 * Simulated CPU "device".
 *
 * CPU mEnclaves execute directly on cores; for symmetry with
 * accelerator partitions the CPU is modeled as a device with
 * contexts so the same mOS/HAL machinery manages all three kinds of
 * computation (§V-B).
 */

#ifndef CRONUS_ACCEL_CPU_HH
#define CRONUS_ACCEL_CPU_HH

#include <functional>
#include <map>

#include "base/sim_clock.hh"
#include "base/status.hh"
#include "crypto/keys.hh"
#include "hw/device.hh"

namespace cronus::accel
{

using CpuContextId = uint32_t;

struct CpuConfig
{
    std::string name = "cpu0";
    uint32_t cores = 4;
    /** Virtual ns charged per abstract work unit. */
    double nsPerWorkUnit = 1.0;
    Bytes rotSeed = {'c', 'p', 'u', '-', 'r', 'o', 't'};
};

class CpuDevice : public hw::Device
{
  public:
    explicit CpuDevice(const CpuConfig &config = CpuConfig());

    Result<uint64_t> mmioRead(uint64_t offset) override;
    Status mmioWrite(uint64_t offset, uint64_t value) override;
    void reset(bool clear_memory) override;

    Result<CpuContextId> createContext();
    Status destroyContext(CpuContextId ctx);
    size_t contextCount() const { return contexts.size(); }

    /**
     * Execute @p work_units of computation in @p ctx; the functional
     * body @p fn runs immediately, cost is returned in virtual ns.
     */
    Result<SimTime> execute(CpuContextId ctx, uint64_t work_units,
                            const std::function<Status()> &fn);

    const crypto::PublicKey &devicePublicKey() const
    {
        return rotKeys.pub;
    }
    crypto::Signature attestConfig(const Bytes &challenge) const;

    const CpuConfig &config() const { return cfg; }

  private:
    CpuConfig cfg;
    std::map<CpuContextId, uint64_t> contexts; ///< ctx -> work done
    CpuContextId nextCtx = 1;
    crypto::KeyPair rotKeys;
};

} // namespace cronus::accel

#endif // CRONUS_ACCEL_CPU_HH
