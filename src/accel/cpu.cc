#include "cpu.hh"

namespace cronus::accel
{

CpuDevice::CpuDevice(const CpuConfig &config)
    : hw::Device(config.name, "arm,cortex-a53-sim", 0x100),
      cfg(config), rotKeys(crypto::deriveKeyPair(config.rotSeed))
{
}

Result<uint64_t>
CpuDevice::mmioRead(uint64_t offset)
{
    switch (offset) {
      case 0x0: return uint64_t(0x43505553);  /* 'CPUS' */
      case 0x8: return uint64_t(cfg.cores);
      default:
        return Status(ErrorCode::AccessFault, "cpu mmio oob read");
    }
}

Status
CpuDevice::mmioWrite(uint64_t offset, uint64_t value)
{
    (void)value;
    if (offset >= mmioSize())
        return Status(ErrorCode::AccessFault, "cpu mmio oob write");
    return Status::ok();
}

void
CpuDevice::reset(bool clear_memory)
{
    (void)clear_memory;
    contexts.clear();
}

Result<CpuContextId>
CpuDevice::createContext()
{
    CpuContextId id = nextCtx++;
    contexts[id] = 0;
    return id;
}

Status
CpuDevice::destroyContext(CpuContextId ctx)
{
    if (contexts.erase(ctx) == 0)
        return Status(ErrorCode::NotFound, "no such CPU context");
    return Status::ok();
}

Result<SimTime>
CpuDevice::execute(CpuContextId ctx, uint64_t work_units,
                   const std::function<Status()> &fn)
{
    auto it = contexts.find(ctx);
    if (it == contexts.end())
        return Status(ErrorCode::NotFound, "no such CPU context");
    if (fn) {
        Status s = fn();
        if (!s.isOk())
            return s;
    }
    it->second += work_units;
    return static_cast<SimTime>(work_units * cfg.nsPerWorkUnit);
}

crypto::Signature
CpuDevice::attestConfig(const Bytes &challenge) const
{
    ByteWriter w;
    w.putString(cfg.name);
    w.putString(devCompatible);
    w.putU64(cfg.cores);
    w.putBytes(challenge);
    return crypto::sign(rotKeys.priv, w.take());
}

} // namespace cronus::accel
