#include "npu.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace cronus::accel
{

NpuDevice::NpuDevice(const NpuConfig &config)
    : hw::Device(config.name, "tvm,vta-fsim", 0x1000), cfg(config),
      rotKeys(crypto::deriveKeyPair(config.rotSeed))
{
}

Result<uint64_t>
NpuDevice::mmioRead(uint64_t offset)
{
    switch (offset) {
      case 0x0: return uint64_t(0x56544121);  /* 'VTA!' magic */
      case 0x8: return uint64_t(contexts.size());
      case 0x10: return cfg.sramBytes;
      default:
        return Status(ErrorCode::AccessFault, "npu mmio oob read");
    }
}

Status
NpuDevice::mmioWrite(uint64_t offset, uint64_t value)
{
    (void)value;
    if (offset >= mmioSize())
        return Status(ErrorCode::AccessFault, "npu mmio oob write");
    return Status::ok();
}

void
NpuDevice::reset(bool clear_memory)
{
    if (clear_memory) {
        for (auto &[id, context] : contexts) {
            for (auto &[bid, buffer] : context.buffers)
                std::fill(buffer.data.begin(), buffer.data.end(), 0);
        }
    }
    contexts.clear();
}

Result<NpuDevice::Context *>
NpuDevice::findContext(NpuContextId ctx)
{
    auto it = contexts.find(ctx);
    if (it == contexts.end())
        return Status(ErrorCode::NotFound, "no such NPU context");
    return &it->second;
}

Result<NpuContextId>
NpuDevice::createContext()
{
    NpuContextId id = nextCtx++;
    Context context;
    context.inputSram.assign(cfg.sramBytes, 0);
    context.weightSram.assign(cfg.sramBytes, 0);
    context.accum.assign(cfg.accumElems, 0);
    contexts.emplace(id, std::move(context));
    return id;
}

Status
NpuDevice::destroyContext(NpuContextId ctx, bool scrub)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    if (scrub) {
        for (auto &[bid, buffer] : c.value()->buffers)
            std::fill(buffer.data.begin(), buffer.data.end(), 0);
    }
    contexts.erase(ctx);
    return Status::ok();
}

Result<uint32_t>
NpuDevice::allocBuffer(NpuContextId ctx, uint64_t bytes)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    Context &context = *c.value();
    if (bytes == 0)
        return Status(ErrorCode::InvalidArgument, "zero buffer");
    if (context.dramUsed + bytes > cfg.dramBytes)
        return Status(ErrorCode::ResourceExhausted,
                      "NPU DRAM quota exceeded");
    uint32_t id = context.nextBuffer++;
    context.buffers[id].data.assign(bytes, 0);
    context.dramUsed += bytes;
    return id;
}

Status
NpuDevice::writeBuffer(NpuContextId ctx, uint32_t buffer,
                       uint64_t offset, const uint8_t *data,
                       uint64_t len)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    auto it = c.value()->buffers.find(buffer);
    if (it == c.value()->buffers.end())
        return Status(ErrorCode::NotFound, "no such NPU buffer");
    if (offset + len > it->second.data.size())
        return Status(ErrorCode::AccessFault, "NPU buffer overflow");
    std::memcpy(it->second.data.data() + offset, data, len);
    return Status::ok();
}

Status
NpuDevice::readBuffer(NpuContextId ctx, uint32_t buffer,
                      uint64_t offset, uint8_t *out, uint64_t len)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    auto it = c.value()->buffers.find(buffer);
    if (it == c.value()->buffers.end())
        return Status(ErrorCode::NotFound, "no such NPU buffer");
    if (offset + len > it->second.data.size())
        return Status(ErrorCode::AccessFault, "NPU buffer overflow");
    std::memcpy(out, it->second.data.data() + offset, len);
    return Status::ok();
}

Status
NpuDevice::execute(Context &context, const NpuInsn &insn,
                   double &cost_ns)
{
    cost_ns = cfg.insnOverheadNs;
    switch (insn.op) {
      case NpuOp::Load: {
        auto it = context.buffers.find(insn.buffer);
        if (it == context.buffers.end())
            return Status(ErrorCode::NotFound, "LOAD: no buffer");
        const auto &src = it->second.data;
        if (insn.dramOffset + insn.length > src.size())
            return Status(ErrorCode::AccessFault,
                          "LOAD: DRAM range overflow");
        std::vector<int8_t> *bank = nullptr;
        if (insn.bank == NpuBank::Input)
            bank = &context.inputSram;
        else if (insn.bank == NpuBank::Weight)
            bank = &context.weightSram;
        else
            return Status(ErrorCode::InvalidArgument,
                          "LOAD: accumulator is not loadable");
        if (insn.sramOffset + insn.length > bank->size())
            return Status(ErrorCode::AccessFault,
                          "LOAD: SRAM range overflow");
        std::memcpy(bank->data() + insn.sramOffset,
                    src.data() + insn.dramOffset, insn.length);
        cost_ns += insn.length * cfg.nsPerByte;
        return Status::ok();
      }
      case NpuOp::Gemm: {
        uint64_t in_need = insn.sramOffset +
                           uint64_t(insn.rows) * insn.inner;
        uint64_t wgt_need = uint64_t(insn.cols) * insn.inner;
        uint64_t acc_need = uint64_t(insn.rows) * insn.cols;
        if (in_need > context.inputSram.size() ||
            wgt_need > context.weightSram.size() ||
            acc_need > context.accum.size())
            return Status(ErrorCode::AccessFault,
                          "GEMM: bank range overflow");
        if (insn.resetAccum)
            std::fill_n(context.accum.begin(), acc_need, 0);
        const int8_t *inp = context.inputSram.data() +
                            insn.sramOffset;
        const int8_t *wgt = context.weightSram.data();
        for (uint32_t i = 0; i < insn.rows; ++i) {
            for (uint32_t j = 0; j < insn.cols; ++j) {
                int32_t acc = 0;
                for (uint32_t k = 0; k < insn.inner; ++k)
                    acc += int32_t(inp[i * insn.inner + k]) *
                           int32_t(wgt[j * insn.inner + k]);
                context.accum[i * insn.cols + j] += acc;
            }
        }
        cost_ns += double(insn.rows) * insn.cols * insn.inner *
                   cfg.nsPerMac;
        return Status::ok();
      }
      case NpuOp::Alu: {
        if (insn.aluElems > context.accum.size())
            return Status(ErrorCode::AccessFault,
                          "ALU: accumulator overflow");
        for (uint64_t i = 0; i < insn.aluElems; ++i) {
            int32_t &v = context.accum[i];
            switch (insn.aluOp) {
              case NpuAluOp::Relu:   v = std::max(v, 0); break;
              case NpuAluOp::AddImm: v += insn.imm; break;
              case NpuAluOp::MulImm: v *= insn.imm; break;
              case NpuAluOp::ShrImm: v >>= insn.imm; break;
              case NpuAluOp::MaxImm: v = std::max(v, insn.imm); break;
            }
        }
        cost_ns += insn.aluElems * cfg.nsPerMac * 0.5;
        return Status::ok();
      }
      case NpuOp::Store: {
        auto it = context.buffers.find(insn.buffer);
        if (it == context.buffers.end())
            return Status(ErrorCode::NotFound, "STORE: no buffer");
        auto &dst = it->second.data;
        if (insn.sramOffset + insn.length > context.accum.size())
            return Status(ErrorCode::AccessFault,
                          "STORE: accumulator range overflow");
        if (insn.dramOffset + insn.length > dst.size())
            return Status(ErrorCode::AccessFault,
                          "STORE: DRAM range overflow");
        for (uint64_t i = 0; i < insn.length; ++i) {
            int32_t v = context.accum[insn.sramOffset + i];
            v = std::clamp(v, -128, 127);
            dst[insn.dramOffset + i] = static_cast<uint8_t>(
                static_cast<int8_t>(v));
        }
        cost_ns += insn.length * cfg.nsPerByte;
        return Status::ok();
      }
    }
    return Status(ErrorCode::InvalidArgument, "unknown NPU opcode");
}

Result<SimTime>
NpuDevice::run(NpuContextId ctx, const NpuProgram &program,
               SimTime now)
{
    auto c = findContext(ctx);
    if (!c.isOk())
        return c.status();
    Context &context = *c.value();
    double total_ns = 0;
    for (const auto &insn : program.insns) {
        double cost = 0;
        Status s = execute(context, insn, cost);
        if (!s.isOk())
            return s;
        total_ns += cost;
    }
    SimTime start = std::max(now, context.busy);
    context.busy = start + static_cast<SimTime>(total_ns);
    return context.busy;
}

SimTime
NpuDevice::busyUntil(NpuContextId ctx) const
{
    auto it = contexts.find(ctx);
    return it == contexts.end() ? 0 : it->second.busy;
}

crypto::Signature
NpuDevice::attestConfig(const Bytes &challenge) const
{
    ByteWriter w;
    w.putString(cfg.name);
    w.putString(devCompatible);
    w.putU64(cfg.sramBytes);
    w.putBytes(challenge);
    return crypto::sign(rotKeys.priv, w.take());
}

} // namespace cronus::accel
