#include "npu_hal.hh"

#include "base/logging.hh"

namespace cronus::mos
{

VtaDriver::VtaDriver(ShimKernel &shim_kernel,
                     const std::string &device_name)
    : shim(shim_kernel), devName(device_name)
{
}

Status
VtaDriver::probe()
{
    auto dev = shim.ioremap(devName);
    if (!dev.isOk())
        return dev.status();
    auto *as_npu = dynamic_cast<accel::NpuDevice *>(dev.value());
    if (as_npu == nullptr)
        return Status(ErrorCode::InvalidArgument,
                      "'" + devName + "' is not an NPU");
    auto magic = as_npu->mmioRead(0x0);
    if (!magic.isOk() || magic.value() != 0x56544121)
        return Status(ErrorCode::InvalidState,
                      "NPU magic register mismatch");
    npu = as_npu;
    return Status::ok();
}

accel::NpuDevice &
VtaDriver::device()
{
    CRONUS_ASSERT(npu != nullptr, "driver not probed");
    return *npu;
}

NpuHal::NpuHal(ShimKernel &shim_kernel, const std::string &device_name)
    : Hal(shim_kernel), driver(shim_kernel, device_name)
{
}

Status
NpuHal::ensureProbed()
{
    if (driver.probed())
        return Status::ok();
    return driver.probe();
}

Status
NpuHal::ensureBounce()
{
    if (bounce != 0)
        return Status::ok();
    auto region = shim.allocPages(kBouncePages);
    if (!region.isOk())
        return region.status();
    bounce = region.value();
    return shim.dmaMap(driver.device().streamId(), bounce, bounce,
                       kBouncePages);
}

Result<uint64_t>
NpuHal::createDeviceContext()
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    CRONUS_RETURN_IF_ERROR(ensureBounce());
    shim.heartbeat();
    auto ctx = driver.device().createContext();
    if (!ctx.isOk())
        return ctx.status();
    return uint64_t(ctx.value());
}

Status
NpuHal::destroyDeviceContext(uint64_t ctx, bool scrub)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    return driver.device().destroyContext(
        static_cast<accel::NpuContextId>(ctx), scrub);
}

Result<DeviceAttestation>
NpuHal::attestDevice(const Bytes &challenge)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    accel::NpuDevice &npu = driver.device();
    DeviceAttestation att;
    att.challenge = challenge;
    att.devicePublicKey = npu.devicePublicKey();
    att.configSignature = npu.attestConfig(challenge);

    ByteWriter w;
    w.putString(npu.config().name);
    w.putString(npu.compatible());
    w.putU64(npu.config().sramBytes);
    w.putBytes(challenge);
    if (!crypto::verify(att.devicePublicKey, w.take(),
                        att.configSignature))
        return Status(ErrorCode::AuthFailed,
                      "NPU failed hardware authenticity check");
    return att;
}

Result<uint32_t>
NpuHal::allocBuffer(uint64_t ctx, uint64_t bytes)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    return driver.device().allocBuffer(
        static_cast<accel::NpuContextId>(ctx), bytes);
}

Status
NpuHal::writeBuffer(uint64_t ctx, uint32_t buffer, uint64_t offset,
                    const Bytes &data)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    CRONUS_RETURN_IF_ERROR(ensureBounce());
    shim.heartbeat();
    hw::Platform &plat = shim.platform();
    accel::NpuDevice &npu = driver.device();
    /* Stage through the SMMU-mapped bounce buffer, as the GPU HAL
     * does: the device DMA-reads host memory under full checking. */
    uint64_t window = kBouncePages * hw::kPageSize;
    for (uint64_t off = 0; off < data.size(); off += window) {
        uint64_t len = std::min<uint64_t>(window, data.size() - off);
        CRONUS_RETURN_IF_ERROR(
            shim.write(bounce, data.data() + off, len));
        Bytes staged(len);
        CRONUS_RETURN_IF_ERROR(
            plat.dmaRead(npu, bounce, staged.data(), len));
        CRONUS_RETURN_IF_ERROR(npu.writeBuffer(
            static_cast<accel::NpuContextId>(ctx), buffer,
            offset + off, staged.data(), len));
    }
    return Status::ok();
}

Result<Bytes>
NpuHal::readBuffer(uint64_t ctx, uint32_t buffer, uint64_t offset,
                   uint64_t len)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    CRONUS_RETURN_IF_ERROR(ensureBounce());
    hw::Platform &plat = shim.platform();
    accel::NpuDevice &npu = driver.device();
    uint64_t window = kBouncePages * hw::kPageSize;
    Bytes out(len);
    for (uint64_t off = 0; off < len; off += window) {
        uint64_t n = std::min<uint64_t>(window, len - off);
        Bytes staged(n);
        Status s = npu.readBuffer(
            static_cast<accel::NpuContextId>(ctx), buffer,
            offset + off, staged.data(), n);
        if (!s.isOk())
            return s;
        CRONUS_RETURN_IF_ERROR(
            plat.dmaWrite(npu, bounce, staged.data(), n));
        /* Read the bounce window straight into the result buffer. */
        CRONUS_RETURN_IF_ERROR(
            shim.readInto(bounce, out.data() + off, n));
    }
    return out;
}

Status
NpuHal::runProgram(uint64_t ctx, const accel::NpuProgram &program)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    shim.heartbeat();
    hw::Platform &plat = shim.platform();
    plat.clock().advance(plat.costs().npuSubmitNs);
    auto done = driver.device().run(
        static_cast<accel::NpuContextId>(ctx), program,
        plat.clock().now());
    if (!done.isOk())
        return done.status();
    plat.clock().advanceTo(done.value());
    return Status::ok();
}

} // namespace cronus::mos
