/**
 * @file
 * NPU driver (VTA fsim style) and NPU HAL (§V-B).
 */

#ifndef CRONUS_MOS_NPU_HAL_HH
#define CRONUS_MOS_NPU_HAL_HH

#include "accel/npu.hh"
#include "hal.hh"

namespace cronus::mos
{

/** Kernel-side VTA driver running on the shim kernel. */
class VtaDriver
{
  public:
    VtaDriver(ShimKernel &shim_kernel,
              const std::string &device_name);

    Status probe();
    bool probed() const { return npu != nullptr; }
    accel::NpuDevice &device();

  private:
    ShimKernel &shim;
    std::string devName;
    accel::NpuDevice *npu = nullptr;
};

class NpuHal : public Hal
{
  public:
    NpuHal(ShimKernel &shim_kernel, const std::string &device_name);

    std::string deviceType() const override { return "npu"; }
    Result<uint64_t> createDeviceContext() override;
    Status destroyDeviceContext(uint64_t ctx, bool scrub) override;
    Result<DeviceAttestation> attestDevice(
        const Bytes &challenge) override;

    /* --- VTA-facing operations --- */
    Result<uint32_t> allocBuffer(uint64_t ctx, uint64_t bytes);
    Status writeBuffer(uint64_t ctx, uint32_t buffer, uint64_t offset,
                       const Bytes &data);
    Result<Bytes> readBuffer(uint64_t ctx, uint32_t buffer,
                             uint64_t offset, uint64_t len);
    /** Run a program; blocks (advances the clock) to completion. */
    Status runProgram(uint64_t ctx, const accel::NpuProgram &program);

    accel::NpuDevice &rawDevice() { return driver.device(); }

    /** Host address (IOVA) of the DMA bounce buffer, for tests. */
    hw::PhysAddr bounceBase() const { return bounce; }

  private:
    Status ensureProbed();
    /** Allocate + SMMU-map the DMA staging buffer on first use. */
    Status ensureBounce();

    VtaDriver driver;
    hw::PhysAddr bounce = 0;
    static constexpr uint64_t kBouncePages = 64;
};

} // namespace cronus::mos

#endif // CRONUS_MOS_NPU_HAL_HH
