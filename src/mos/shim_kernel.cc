#include "shim_kernel.hh"

#include "base/logging.hh"

namespace cronus::mos
{

ShimKernel::ShimKernel(tee::Spm &spm, PartitionId partition_id,
                       uint64_t reserved_bytes)
    : partitionManager(spm), pid(partition_id)
{
    auto p = spm.partition(pid);
    CRONUS_ASSERT(p.isOk(), "ShimKernel for unknown partition");
    allocNext = p.value()->memBase + hw::pageAlignUp(reserved_bytes);
    allocEnd = p.value()->memBase + p.value()->memBytes;
    CRONUS_ASSERT(allocNext <= allocEnd,
                  "mOS reservation exceeds partition memory");
}

hw::Platform &
ShimKernel::platform()
{
    return partitionManager.monitor().platform();
}

Result<hw::Device *>
ShimKernel::ioremap(const std::string &device_name)
{
    return platform().accessDevice(device_name, hw::World::Secure);
}

void
ShimKernel::resetAllocator(uint64_t reserved_bytes)
{
    auto p = partitionManager.partition(pid);
    CRONUS_ASSERT(p.isOk(), "resetAllocator on unknown partition");
    allocNext = p.value()->memBase + hw::pageAlignUp(reserved_bytes);
    allocEnd = p.value()->memBase + p.value()->memBytes;
}

Result<PhysAddr>
ShimKernel::allocPages(uint64_t pages)
{
    uint64_t bytes = pages * hw::kPageSize;
    if (allocNext + bytes > allocEnd)
        return Status(ErrorCode::ResourceExhausted,
                      "partition memory exhausted");
    PhysAddr addr = allocNext;
    allocNext += bytes;
    return addr;
}

void
ShimKernel::freePages(PhysAddr base, uint64_t pages)
{
    if (base + pages * hw::kPageSize == allocNext)
        allocNext = base;
}

Result<Bytes>
ShimKernel::read(PhysAddr addr, uint64_t len)
{
    return partitionManager.read(pid, addr, len);
}

Status
ShimKernel::write(PhysAddr addr, const Bytes &data)
{
    return partitionManager.write(pid, addr, data);
}

Status
ShimKernel::write(PhysAddr addr, const uint8_t *data, uint64_t len)
{
    return partitionManager.write(pid, addr, data, len);
}

Status
ShimKernel::readInto(PhysAddr addr, uint8_t *out, uint64_t len)
{
    return partitionManager.readInto(pid, addr, out, len);
}

Result<hw::MemSpan>
ShimKernel::borrow(PhysAddr addr, uint64_t len, bool is_write)
{
    return partitionManager.borrow(pid, addr, len, is_write);
}

Result<uint64_t>
ShimKernel::readU64(PhysAddr addr)
{
    return partitionManager.readU64(pid, addr);
}

Status
ShimKernel::writeU64(PhysAddr addr, uint64_t value)
{
    return partitionManager.writeU64(pid, addr, value);
}

Status
ShimKernel::spinLock(PhysAddr addr)
{
    hw::Platform &plat = platform();
    /* Compare-and-swap loop on the lock word; in the deterministic
     * single-scheduler simulation at most a few spins happen. */
    for (int attempt = 0; attempt < 1024; ++attempt) {
        uint8_t word = 0;
        Status s = partitionManager.readInto(pid, addr, &word, 1);
        if (!s.isOk())
            return s;  /* PeerFailed propagates (A2) */
        plat.clock().advance(plat.costs().spinlockOpNs);
        if (word == 0) {
            const uint8_t one = 1;
            return partitionManager.write(pid, addr, &one, 1);
        }
    }
    return Status(ErrorCode::Timeout, "spinlock livelock");
}

Status
ShimKernel::spinUnlock(PhysAddr addr)
{
    hw::Platform &plat = platform();
    plat.clock().advance(plat.costs().spinlockOpNs);
    const uint8_t zero = 0;
    return partitionManager.write(pid, addr, &zero, 1);
}

Status
ShimKernel::dmaMap(hw::StreamId stream, hw::VirtAddr iova,
                   PhysAddr pa, uint64_t pages, uint64_t tag)
{
    hw::Platform &plat = platform();
    hw::PageTable &table = plat.smmu().streamTable(stream);
    for (uint64_t i = 0; i < pages; ++i) {
        Status s = table.map(iova + i * hw::kPageSize,
                             pa + i * hw::kPageSize,
                             hw::PagePerms::rw(), tag);
        if (!s.isOk())
            return s;
        plat.clock().advance(plat.costs().smmuUpdateNs);
    }
    return Status::ok();
}

void
ShimKernel::heartbeat()
{
    partitionManager.heartbeat(pid);
}

} // namespace cronus::mos
