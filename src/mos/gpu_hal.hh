/**
 * @file
 * GPU driver ("nouveau", simulated) and GPU HAL.
 *
 * The paper builds the GPU HAL from the open-source nouveau driver
 * plus gdev/ocelot for the CUDA runtime (§V-B). Here NouveauDriver
 * is the kernel-side driver written against the shim kernel, and
 * GpuHal exposes the CUDA-ish operations the CUDA mEnclave runtime
 * needs (malloc/memcpy/launch/synchronize/module loading).
 */

#ifndef CRONUS_MOS_GPU_HAL_HH
#define CRONUS_MOS_GPU_HAL_HH

#include "accel/gpu.hh"
#include "hal.hh"

namespace cronus::mos
{

/** Kernel-side GPU driver running on the shim kernel. */
class NouveauDriver
{
  public:
    NouveauDriver(ShimKernel &shim_kernel,
                  const std::string &device_name);

    /** ioremap the device and sanity-check its magic register. */
    Status probe();
    bool probed() const { return gpu != nullptr; }

    accel::GpuDevice &device();

  private:
    ShimKernel &shim;
    std::string devName;
    accel::GpuDevice *gpu = nullptr;
};

class GpuHal : public Hal
{
  public:
    GpuHal(ShimKernel &shim_kernel, const std::string &device_name);

    /* --- Hal interface --- */
    std::string deviceType() const override { return "gpu"; }
    Result<uint64_t> createDeviceContext() override;
    Status destroyDeviceContext(uint64_t ctx, bool scrub) override;
    Result<DeviceAttestation> attestDevice(
        const Bytes &challenge) override;

    /* --- CUDA-facing operations (used by the CUDA runtime) --- */
    Status loadModule(uint64_t ctx, const accel::GpuModuleImage &image);
    Result<accel::GpuVa> memAlloc(uint64_t ctx, uint64_t bytes);
    Status memFree(uint64_t ctx, accel::GpuVa va);
    /** Host-to-device copy: DMA cost charged on the platform. */
    Status memcpyHtoD(uint64_t ctx, accel::GpuVa dst,
                      const Bytes &src);
    /** Device-to-host copy: synchronizes the stream first. */
    Result<Bytes> memcpyDtoH(uint64_t ctx, accel::GpuVa src,
                             uint64_t len);
    /** Asynchronous kernel launch. */
    Status launchKernel(uint64_t ctx, const std::string &kernel,
                        const std::vector<uint64_t> &args,
                        uint64_t work_items);
    /** Block (advance the clock) until the context stream drains. */
    Status synchronize(uint64_t ctx);

    /** Serialize the context's device memory (checkpointing). */
    Result<Bytes> snapshotContext(uint64_t ctx);
    /** Rebuild a fresh context's device memory from a snapshot. */
    Status restoreContext(uint64_t ctx, const Bytes &snapshot);

    accel::GpuDevice &rawDevice() { return driver.device(); }

    /** Host address (IOVA) of the DMA bounce buffer, for tests. */
    hw::PhysAddr bounceBase() const { return bounce; }

  private:
    Status ensureProbed();
    /** Allocate + SMMU-map the DMA staging buffer on first use. */
    Status ensureBounce();

    NouveauDriver driver;
    hw::PhysAddr bounce = 0;
    static constexpr uint64_t kBouncePages = 64;
};

} // namespace cronus::mos

#endif // CRONUS_MOS_GPU_HAL_HH
