/**
 * @file
 * Shim kernel: the LibOS layer an mOS provides to device drivers.
 *
 * The paper integrates off-the-shelf Linux drivers (.ko) into mOSes
 * by supplying standard kernel functions (ioremap, memory mapping,
 * locks) from a shim runtime (§IV-B). Drivers in this reproduction
 * are written against exactly this interface and nothing else, so
 * they are portable across partitions the same way.
 */

#ifndef CRONUS_MOS_SHIM_KERNEL_HH
#define CRONUS_MOS_SHIM_KERNEL_HH

#include <map>

#include "tee/spm.hh"

namespace cronus::mos
{

using tee::PartitionId;
using tee::PhysAddr;

class ShimKernel
{
  public:
    /**
     * @p reserved_bytes at the start of the partition's memory are
     * kept for the mOS itself; the rest is handed out by
     * allocPages().
     */
    ShimKernel(tee::Spm &spm, PartitionId pid,
               uint64_t reserved_bytes = 64 * hw::kPageSize);

    /* --- device access (ioremap) --- */

    /**
     * Map a device for driver use. The access is made from the
     * secure world; the TZPC still gates which devices exist there.
     */
    Result<hw::Device *> ioremap(const std::string &device_name);

    /* --- partition-memory management --- */

    /** Allocate @p pages whole pages from the partition's range. */
    Result<PhysAddr> allocPages(uint64_t pages);

    /**
     * Return @p pages at @p base to the allocator. The allocator is
     * a bump pointer, so only the most recent allocation is actually
     * reclaimed; interior frees stay unavailable until the next mOS
     * reload resets the allocator.
     */
    void freePages(PhysAddr base, uint64_t pages);

    /** Reset the allocator after an mOS reload (all allocations of
     *  the previous incarnation are gone with the scrub). */
    void resetAllocator(uint64_t reserved_bytes = 64 * hw::kPageSize);

    /** Checked access to partition memory (through stage-2). */
    Result<Bytes> read(PhysAddr addr, uint64_t len);
    Status write(PhysAddr addr, const Bytes &data);
    Status write(PhysAddr addr, const uint8_t *data, uint64_t len);

    /** Non-allocating variants (memory fast path). */
    Status readInto(PhysAddr addr, uint8_t *out, uint64_t len);
    Result<hw::MemSpan> borrow(PhysAddr addr, uint64_t len,
                               bool is_write);
    Result<uint64_t> readU64(PhysAddr addr);
    Status writeU64(PhysAddr addr, uint64_t value);

    /* --- synchronization --- */

    /**
     * Spinlock on shared memory (the paper replaces mutexes with
     * spinlocks to avoid involving the untrusted OS, §IV-C). The
     * lock word lives at @p addr; returns PeerFailed if the word is
     * in failed shared memory (deadlock defense A2).
     */
    Status spinLock(PhysAddr addr);
    Status spinUnlock(PhysAddr addr);

    /* --- DMA --- */

    /** Install SMMU mappings so the device can DMA at @p iova. */
    Status dmaMap(hw::StreamId stream, hw::VirtAddr iova,
                  PhysAddr pa, uint64_t pages, uint64_t tag = 0);

    /* --- liveness --- */

    /** Tick the partition heartbeat (SPM hang detection input). */
    void heartbeat();

    PartitionId partitionId() const { return pid; }
    tee::Spm &spm() { return partitionManager; }
    hw::Platform &platform();

  private:
    tee::Spm &partitionManager;
    PartitionId pid;
    PhysAddr allocNext;
    PhysAddr allocEnd;
};

} // namespace cronus::mos

#endif // CRONUS_MOS_SHIM_KERNEL_HH
