/**
 * @file
 * CPU HAL: OPTEE-style HAL for CPU mEnclaves (§V-B).
 */

#ifndef CRONUS_MOS_CPU_HAL_HH
#define CRONUS_MOS_CPU_HAL_HH

#include "accel/cpu.hh"
#include "hal.hh"

namespace cronus::mos
{

class CpuHal : public Hal
{
  public:
    CpuHal(ShimKernel &shim_kernel, const std::string &device_name);

    std::string deviceType() const override { return "cpu"; }
    Result<uint64_t> createDeviceContext() override;
    Status destroyDeviceContext(uint64_t ctx, bool scrub) override;
    Result<DeviceAttestation> attestDevice(
        const Bytes &challenge) override;

    /** Run a function charging @p work_units of CPU time. */
    Status execute(uint64_t ctx, uint64_t work_units,
                   const std::function<Status()> &fn);

    accel::CpuDevice &rawDevice();

  private:
    Status ensureProbed();

    std::string devName;
    accel::CpuDevice *cpu = nullptr;
};

} // namespace cronus::mos

#endif // CRONUS_MOS_CPU_HAL_HH
