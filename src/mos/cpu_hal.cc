#include "cpu_hal.hh"

#include "base/logging.hh"

namespace cronus::mos
{

CpuHal::CpuHal(ShimKernel &shim_kernel, const std::string &device_name)
    : Hal(shim_kernel), devName(device_name)
{
}

Status
CpuHal::ensureProbed()
{
    if (cpu != nullptr)
        return Status::ok();
    auto dev = shim.ioremap(devName);
    if (!dev.isOk())
        return dev.status();
    auto *as_cpu = dynamic_cast<accel::CpuDevice *>(dev.value());
    if (as_cpu == nullptr)
        return Status(ErrorCode::InvalidArgument,
                      "'" + devName + "' is not a CPU");
    cpu = as_cpu;
    return Status::ok();
}

accel::CpuDevice &
CpuHal::rawDevice()
{
    CRONUS_ASSERT(cpu != nullptr, "CPU HAL not probed");
    return *cpu;
}

Result<uint64_t>
CpuHal::createDeviceContext()
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    shim.heartbeat();
    auto ctx = cpu->createContext();
    if (!ctx.isOk())
        return ctx.status();
    return uint64_t(ctx.value());
}

Status
CpuHal::destroyDeviceContext(uint64_t ctx, bool scrub)
{
    (void)scrub;
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    return cpu->destroyContext(static_cast<accel::CpuContextId>(ctx));
}

Result<DeviceAttestation>
CpuHal::attestDevice(const Bytes &challenge)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    DeviceAttestation att;
    att.challenge = challenge;
    att.devicePublicKey = cpu->devicePublicKey();
    att.configSignature = cpu->attestConfig(challenge);

    ByteWriter w;
    w.putString(cpu->config().name);
    w.putString(cpu->compatible());
    w.putU64(cpu->config().cores);
    w.putBytes(challenge);
    if (!crypto::verify(att.devicePublicKey, w.take(),
                        att.configSignature))
        return Status(ErrorCode::AuthFailed,
                      "CPU failed hardware authenticity check");
    return att;
}

Status
CpuHal::execute(uint64_t ctx, uint64_t work_units,
                const std::function<Status()> &fn)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    shim.heartbeat();
    auto cost = cpu->execute(static_cast<accel::CpuContextId>(ctx),
                             work_units, fn);
    if (!cost.isOk())
        return cost.status();
    shim.platform().clock().advance(cost.value());
    return Status::ok();
}

} // namespace cronus::mos
