#include "gpu_hal.hh"

#include "base/logging.hh"

namespace cronus::mos
{

NouveauDriver::NouveauDriver(ShimKernel &shim_kernel,
                             const std::string &device_name)
    : shim(shim_kernel), devName(device_name)
{
}

Status
NouveauDriver::probe()
{
    auto dev = shim.ioremap(devName);
    if (!dev.isOk())
        return dev.status();
    auto *as_gpu = dynamic_cast<accel::GpuDevice *>(dev.value());
    if (as_gpu == nullptr)
        return Status(ErrorCode::InvalidArgument,
                      "'" + devName + "' is not a GPU");
    auto magic = as_gpu->mmioRead(0x0);
    if (!magic.isOk() || magic.value() != 0x47505553)
        return Status(ErrorCode::InvalidState,
                      "GPU magic register mismatch");
    gpu = as_gpu;
    return Status::ok();
}

accel::GpuDevice &
NouveauDriver::device()
{
    CRONUS_ASSERT(gpu != nullptr, "driver not probed");
    return *gpu;
}

GpuHal::GpuHal(ShimKernel &shim_kernel, const std::string &device_name)
    : Hal(shim_kernel), driver(shim_kernel, device_name)
{
}

Status
GpuHal::ensureProbed()
{
    if (driver.probed())
        return Status::ok();
    return driver.probe();
}

Status
GpuHal::ensureBounce()
{
    if (bounce != 0)
        return Status::ok();
    /* The driver's DMA staging area lives in the partition's secure
     * memory and is mapped into the device's SMMU stream, so every
     * copy genuinely flows through the checked DMA path (and a
     * secure-bus device can only reach secure memory). */
    auto region = shim.allocPages(kBouncePages);
    if (!region.isOk())
        return region.status();
    bounce = region.value();
    return shim.dmaMap(driver.device().streamId(), bounce, bounce,
                       kBouncePages);
}

Result<uint64_t>
GpuHal::createDeviceContext()
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    /* Set up the driver's DMA staging window eagerly so copies pay
     * no first-use penalty. */
    CRONUS_RETURN_IF_ERROR(ensureBounce());
    shim.heartbeat();
    auto ctx = driver.device().createContext();
    if (!ctx.isOk())
        return ctx.status();
    return uint64_t(ctx.value());
}

Status
GpuHal::destroyDeviceContext(uint64_t ctx, bool scrub)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    return driver.device().destroyContext(
        static_cast<accel::GpuContextId>(ctx), scrub);
}

Result<DeviceAttestation>
GpuHal::attestDevice(const Bytes &challenge)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    accel::GpuDevice &gpu = driver.device();
    DeviceAttestation att;
    att.challenge = challenge;
    att.devicePublicKey = gpu.devicePublicKey();
    att.configSignature = gpu.attestConfig(challenge);

    /* The mOS verifies the device owns the key before reporting it
     * (fabricated-accelerator defense, §IV-A). */
    ByteWriter w;
    w.putString(gpu.config().name);
    w.putString(gpu.compatible());
    w.putU64(gpu.config().vramBytes);
    w.putBytes(challenge);
    if (!crypto::verify(att.devicePublicKey, w.take(),
                        att.configSignature))
        return Status(ErrorCode::AuthFailed,
                      "GPU failed hardware authenticity check");
    return att;
}

Status
GpuHal::loadModule(uint64_t ctx, const accel::GpuModuleImage &image)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    shim.heartbeat();
    return driver.device().loadModule(
        static_cast<accel::GpuContextId>(ctx), image);
}

Result<accel::GpuVa>
GpuHal::memAlloc(uint64_t ctx, uint64_t bytes)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    return driver.device().malloc(
        static_cast<accel::GpuContextId>(ctx), bytes);
}

Status
GpuHal::memFree(uint64_t ctx, accel::GpuVa va)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    return driver.device().free(
        static_cast<accel::GpuContextId>(ctx), va);
}

Status
GpuHal::memcpyHtoD(uint64_t ctx, accel::GpuVa dst, const Bytes &src)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    CRONUS_RETURN_IF_ERROR(ensureBounce());
    shim.heartbeat();
    hw::Platform &plat = shim.platform();
    plat.clock().advance(plat.costs().gpuCopyCmdNs);

    /* Stage through the bounce buffer; the device DMA-reads it
     * through the SMMU (translation + TZASC + secure-bus
     * confinement all apply). */
    uint64_t window = kBouncePages * hw::kPageSize;
    accel::GpuDevice &gpu = driver.device();
    for (uint64_t off = 0; off < src.size(); off += window) {
        uint64_t len = std::min<uint64_t>(window, src.size() - off);
        CRONUS_RETURN_IF_ERROR(
            shim.write(bounce, src.data() + off, len));
        Bytes staged(len);
        CRONUS_RETURN_IF_ERROR(
            plat.dmaRead(gpu, bounce, staged.data(), len));
        CRONUS_RETURN_IF_ERROR(gpu.write(
            static_cast<accel::GpuContextId>(ctx), dst + off,
            staged.data(), len));
    }
    if (src.empty())
        return gpu.write(static_cast<accel::GpuContextId>(ctx), dst,
                         src.data(), 0);
    return Status::ok();
}

Result<Bytes>
GpuHal::memcpyDtoH(uint64_t ctx, accel::GpuVa src, uint64_t len)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    CRONUS_RETURN_IF_ERROR(ensureBounce());
    /* DtoH is synchronous in the CUDA model. */
    CRONUS_RETURN_IF_ERROR(synchronize(ctx));
    hw::Platform &plat = shim.platform();
    plat.clock().advance(plat.costs().gpuCopyCmdNs);

    accel::GpuDevice &gpu = driver.device();
    uint64_t window = kBouncePages * hw::kPageSize;
    Bytes out(len);
    for (uint64_t off = 0; off < len; off += window) {
        uint64_t n = std::min<uint64_t>(window, len - off);
        Bytes staged(n);
        Status s = gpu.read(static_cast<accel::GpuContextId>(ctx),
                            src + off, staged.data(), n);
        if (!s.isOk())
            return s;
        /* Device DMA-writes the bounce buffer through the SMMU. */
        CRONUS_RETURN_IF_ERROR(
            plat.dmaWrite(gpu, bounce, staged.data(), n));
        /* Read the bounce window straight into the result buffer. */
        CRONUS_RETURN_IF_ERROR(
            shim.readInto(bounce, out.data() + off, n));
    }
    return out;
}

Status
GpuHal::launchKernel(uint64_t ctx, const std::string &kernel,
                     const std::vector<uint64_t> &args,
                     uint64_t work_items)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    shim.heartbeat();
    hw::Platform &plat = shim.platform();
    plat.clock().advance(plat.costs().gpuSubmitNs);
    auto done = driver.device().launch(
        static_cast<accel::GpuContextId>(ctx), kernel, args,
        accel::LaunchDims{work_items}, plat.clock().now());
    if (!done.isOk())
        return done.status();
    /* Asynchronous: the CPU does not wait for completion. */
    return Status::ok();
}

Status
GpuHal::synchronize(uint64_t ctx)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    hw::Platform &plat = shim.platform();
    plat.clock().advanceTo(driver.device().streamBusyUntil(
        static_cast<accel::GpuContextId>(ctx)));
    return Status::ok();
}

Result<Bytes>
GpuHal::snapshotContext(uint64_t ctx)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    /* A snapshot captures quiesced state. */
    CRONUS_RETURN_IF_ERROR(synchronize(ctx));
    return driver.device().snapshotContext(
        static_cast<accel::GpuContextId>(ctx));
}

Status
GpuHal::restoreContext(uint64_t ctx, const Bytes &snapshot)
{
    CRONUS_RETURN_IF_ERROR(ensureProbed());
    shim.heartbeat();
    return driver.device().restoreContext(
        static_cast<accel::GpuContextId>(ctx), snapshot);
}

} // namespace cronus::mos
