/**
 * @file
 * Hardware Adaptation Layer interface (§IV-B).
 *
 * The HAL gives the Enclave Manager a unified way to configure,
 * attest and virtualize a device for mEnclaves. Device-specific
 * HALs (GpuHal, NpuHal, CpuHal) run off-the-shelf-style drivers on
 * the shim kernel.
 */

#ifndef CRONUS_MOS_HAL_HH
#define CRONUS_MOS_HAL_HH

#include <string>

#include "crypto/keys.hh"
#include "shim_kernel.hh"

namespace cronus::mos
{

/** Result of the HAL's hardware-authenticity check (§IV-A). */
struct DeviceAttestation
{
    crypto::PublicKey devicePublicKey;
    crypto::Signature configSignature;
    Bytes challenge;
};

class Hal
{
  public:
    explicit Hal(ShimKernel &shim_kernel) : shim(shim_kernel) {}
    virtual ~Hal() = default;

    /** "cpu" | "gpu" | "npu" -- matched against manifests. */
    virtual std::string deviceType() const = 0;

    /** Allocate an isolated device context for one mEnclave. */
    virtual Result<uint64_t> createDeviceContext() = 0;
    virtual Status destroyDeviceContext(uint64_t ctx, bool scrub) = 0;

    /**
     * Verify the device really owns its RoT key and produce the
     * material the attestation report embeds (PubK_acc).
     */
    virtual Result<DeviceAttestation> attestDevice(
        const Bytes &challenge) = 0;

    ShimKernel &shimKernel() { return shim; }

  protected:
    ShimKernel &shim;
};

} // namespace cronus::mos

#endif // CRONUS_MOS_HAL_HH
