/**
 * @file
 * Monolithic TrustZone baseline (§VI-A "TrustZone").
 *
 * All device drivers (GPU, NPU) live in one trusted OS in the
 * secure world. mECall-style entry from the untrusted app costs a
 * world switch, but once inside the TEE, GPU/NPU calls are local
 * function calls over trusted memory -- fast, and spatial sharing
 * works (R1, R2). The price is isolation: a fault in ANY driver
 * crashes the whole secure world (all enclaves, all accelerators),
 * and recovery means rebooting the machine (violating R3.1); every
 * enclave must trust every driver (violating R3.2).
 */

#ifndef CRONUS_BASELINE_MONOLITHIC_TZ_HH
#define CRONUS_BASELINE_MONOLITHIC_TZ_HH

#include "accel/gpu.hh"
#include "compute_backend.hh"
#include "hw/platform.hh"
#include "tee/secure_monitor.hh"

namespace cronus::baseline
{

struct MonolithicConfig
{
    uint64_t gpuVramBytes = 64ull << 20;
    std::vector<std::string> gpuKernels;
    /** Calls per secure-world entry batch: the monolithic design
     *  amortizes the world switch over one app-level operation. */
    uint32_t worldSwitchEveryNCalls = 1;
};

class MonolithicTzBackend : public ComputeBackend
{
  public:
    explicit MonolithicTzBackend(
        const MonolithicConfig &config = MonolithicConfig());

    std::string name() const override { return "TrustZone"; }
    bool isProtected() const override { return true; }

    Result<uint64_t> gpuAlloc(uint64_t bytes) override;
    Status gpuFree(uint64_t va) override;
    Status copyToGpu(uint64_t va, const Bytes &data) override;
    Result<Bytes> copyFromGpu(uint64_t va, uint64_t len) override;
    Status launchKernel(const std::string &kernel,
                        const std::vector<uint64_t> &args,
                        uint64_t work_items) override;
    Status gpuSynchronize() override;

    Result<uint32_t> npuAllocBuffer(uint64_t bytes) override;
    Status npuWriteBuffer(uint32_t buffer, uint64_t offset,
                          const Bytes &data) override;
    Result<Bytes> npuReadBuffer(uint32_t buffer, uint64_t offset,
                                uint64_t len) override;
    Status npuRun(const accel::NpuProgram &program) override;

    Status cpuWork(uint64_t work_units) override;
    SimTime now() const override;

    Status injectGpuFault() override;
    Result<SimTime> recoverGpu() override;
    bool othersAlive() override;

    /**
     * Monolithic-design probe: the (possibly malicious) NPU driver,
     * living in the same trusted OS, reads another enclave's GPU
     * data. Succeeds here -- demonstrating the R3.2 violation the
     * attack suite checks.
     */
    Result<Bytes> maliciousDriverReadsGpu(uint64_t va, uint64_t len);

    hw::Platform &platform() { return *plat; }

  private:
    Status ensureAlive() const;
    void enterTee();

    MonolithicConfig cfg;
    std::unique_ptr<hw::Platform> plat;
    std::unique_ptr<tee::SecureMonitor> monitor;
    accel::GpuDevice *gpu = nullptr;
    accel::NpuDevice *npu = nullptr;
    accel::GpuContextId gpuCtx = 0;
    accel::NpuContextId npuCtx = 0;
    bool secureWorldDown = false;
};

} // namespace cronus::baseline

#endif // CRONUS_BASELINE_MONOLITHIC_TZ_HH
