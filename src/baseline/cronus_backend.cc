#include "cronus_backend.hh"

#include "accel/builtin_kernels.hh"
#include "base/logging.hh"

namespace cronus::baseline
{

using core::CudaRuntime;
using core::NpuRuntime;

namespace
{

std::string
gpuManifestFor(const std::vector<std::string> &kernels,
               const Bytes &image_bytes)
{
    core::Manifest m;
    m.deviceType = "gpu";
    m.images["app.cubin"] =
        crypto::digestHex(crypto::sha256(image_bytes));
    for (const auto &fn : CudaRuntime::apiSurface()) {
        m.mEcalls.push_back(
            {fn, core::AutoPartitioner::cudaCallIsAsync(fn)});
    }
    (void)kernels;
    m.memoryBytes = 8ull << 20;
    return m.toJson();
}

std::string
cpuManifestBasic()
{
    core::Manifest m;
    m.deviceType = "cpu";
    m.mEcalls.push_back({"noop", false});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

std::string
npuManifestBasic()
{
    core::Manifest m;
    m.deviceType = "npu";
    for (const auto &fn : NpuRuntime::apiSurface())
        m.mEcalls.push_back({fn, false});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

} // namespace

CronusBackend::CronusBackend(const CronusBackendConfig &config)
    : cfg(config)
{
    accel::registerBuiltinKernels();
    core::CpuFunctionRegistry::instance().registerFunction(
        "noop", [](core::CpuCallContext &ctx) {
            ctx.charge(1);
            return Result<Bytes>(Bytes{});
        });

    core::CronusConfig sc;
    sc.gpuVramBytes = cfg.gpuVramBytes;
    sc.withNpu = cfg.withNpu;
    sys = std::make_unique<core::CronusSystem>(sc);

    /* CPU mEnclave (the application's trusted part). */
    core::CpuImage cpu_image;
    cpu_image.exports = {"noop"};
    Bytes cpu_bytes = cpu_image.serialize();
    core::Manifest cm;
    cm.deviceType = "cpu";
    cm.images["app.so"] = crypto::digestHex(crypto::sha256(cpu_bytes));
    cm.mEcalls.push_back({"noop", false});
    cm.memoryBytes = 4ull << 20;
    auto cpu = sys->createEnclave(cm.toJson(), "app.so", cpu_bytes);
    CRONUS_ASSERT(cpu.isOk(),
                  "cpu enclave: " + cpu.status().toString());
    cpuEnclave = cpu.value();
    (void)cpuManifestBasic;
}

Status
CronusBackend::ensureGpuChannel()
{
    if (gpuUp)
        return Status::ok();
    accel::GpuModuleImage image{"app.cubin", cfg.gpuKernels};
    Bytes image_bytes = image.serialize();
    auto gpu = sys->createEnclave(
        gpuManifestFor(cfg.gpuKernels, image_bytes), "app.cubin",
        image_bytes);
    if (!gpu.isOk())
        return gpu.status();
    gpuEnclave = gpu.value();
    auto channel = sys->connect(cpuEnclave, gpuEnclave, srpcConfig);
    if (!channel.isOk())
        return channel.status();
    gpuChannel = std::move(channel.value());
    gpuUp = true;
    return Status::ok();
}

Status
CronusBackend::ensureNpuChannel()
{
    if (npuUp)
        return Status::ok();
    if (!cfg.withNpu)
        return Status(ErrorCode::Unsupported, "NPU disabled");
    auto npu = sys->createEnclave(npuManifestBasic(), "", Bytes{});
    if (!npu.isOk())
        return npu.status();
    npuEnclave = npu.value();
    auto channel = sys->connect(cpuEnclave, npuEnclave, srpcConfig);
    if (!channel.isOk())
        return channel.status();
    npuChannel = std::move(channel.value());
    npuUp = true;
    return Status::ok();
}

Result<uint64_t>
CronusBackend::gpuAlloc(uint64_t bytes)
{
    CRONUS_RETURN_IF_ERROR(ensureGpuChannel());
    auto r = gpuChannel->callSync("cuMemAlloc",
                                  CudaRuntime::encodeMemAlloc(bytes));
    if (!r.isOk())
        return r.status();
    return CudaRuntime::decodeU64Result(r.value());
}

Status
CronusBackend::gpuFree(uint64_t va)
{
    CRONUS_RETURN_IF_ERROR(ensureGpuChannel());
    auto r = gpuChannel->call("cuMemFree",
                              CudaRuntime::encodeMemFree(va));
    return r.isOk() ? Status::ok() : r.status();
}

Status
CronusBackend::streamCopy(uint64_t va, const Bytes &data)
{
    uint64_t chunk = srpcConfig.requestBytes() - 64;
    for (uint64_t off = 0; off < data.size(); off += chunk) {
        uint64_t len = std::min<uint64_t>(chunk, data.size() - off);
        Bytes piece(data.begin() + off, data.begin() + off + len);
        auto r = gpuChannel->call(
            "cuMemcpyHtoD",
            CudaRuntime::encodeMemcpyHtoD(va + off, piece));
        if (!r.isOk())
            return r.status();
    }
    if (data.empty()) {
        auto r = gpuChannel->call(
            "cuMemcpyHtoD", CudaRuntime::encodeMemcpyHtoD(va, data));
        if (!r.isOk())
            return r.status();
    }
    return Status::ok();
}

Status
CronusBackend::copyToGpu(uint64_t va, const Bytes &data)
{
    CRONUS_RETURN_IF_ERROR(ensureGpuChannel());
    return streamCopy(va, data);
}

Result<Bytes>
CronusBackend::copyFromGpu(uint64_t va, uint64_t len)
{
    CRONUS_RETURN_IF_ERROR(ensureGpuChannel());
    uint64_t chunk = srpcConfig.responseBytes() - 64;
    Bytes out;
    out.reserve(len);
    for (uint64_t off = 0; off < len; off += chunk) {
        uint64_t n = std::min<uint64_t>(chunk, len - off);
        auto r = gpuChannel->call(
            "cuMemcpyDtoH",
            CudaRuntime::encodeMemcpyDtoH(va + off, n));
        if (!r.isOk())
            return r.status();
        out.insert(out.end(), r.value().begin(), r.value().end());
    }
    return out;
}

Status
CronusBackend::launchKernel(const std::string &kernel,
                            const std::vector<uint64_t> &args,
                            uint64_t work_items)
{
    CRONUS_RETURN_IF_ERROR(ensureGpuChannel());
    auto r = gpuChannel->call(
        "cuLaunchKernel",
        CudaRuntime::encodeLaunchKernel(kernel, args, work_items));
    return r.isOk() ? Status::ok() : r.status();
}

Status
CronusBackend::gpuSynchronize()
{
    CRONUS_RETURN_IF_ERROR(ensureGpuChannel());
    auto r = gpuChannel->call("cuCtxSynchronize", Bytes{});
    return r.isOk() ? Status::ok() : r.status();
}

Result<uint32_t>
CronusBackend::npuAllocBuffer(uint64_t bytes)
{
    CRONUS_RETURN_IF_ERROR(ensureNpuChannel());
    auto r = npuChannel->callSync(
        "vtaAllocBuffer", NpuRuntime::encodeAllocBuffer(bytes));
    if (!r.isOk())
        return r.status();
    ByteReader reader(r.value());
    return reader.getU32();
}

Status
CronusBackend::npuWriteBuffer(uint32_t buffer, uint64_t offset,
                              const Bytes &data)
{
    CRONUS_RETURN_IF_ERROR(ensureNpuChannel());
    uint64_t chunk = srpcConfig.requestBytes() - 64;
    for (uint64_t off = 0; off < data.size(); off += chunk) {
        uint64_t len = std::min<uint64_t>(chunk, data.size() - off);
        Bytes piece(data.begin() + off, data.begin() + off + len);
        auto r = npuChannel->call(
            "vtaWriteBuffer",
            NpuRuntime::encodeWriteBuffer(buffer, offset + off,
                                          piece));
        if (!r.isOk())
            return r.status();
    }
    return Status::ok();
}

Result<Bytes>
CronusBackend::npuReadBuffer(uint32_t buffer, uint64_t offset,
                             uint64_t len)
{
    CRONUS_RETURN_IF_ERROR(ensureNpuChannel());
    uint64_t chunk = srpcConfig.responseBytes() - 64;
    Bytes out;
    for (uint64_t off = 0; off < len; off += chunk) {
        uint64_t n = std::min<uint64_t>(chunk, len - off);
        auto r = npuChannel->call(
            "vtaReadBuffer",
            NpuRuntime::encodeReadBuffer(buffer, offset + off, n));
        if (!r.isOk())
            return r.status();
        out.insert(out.end(), r.value().begin(), r.value().end());
    }
    return out;
}

Status
CronusBackend::npuRun(const accel::NpuProgram &program)
{
    CRONUS_RETURN_IF_ERROR(ensureNpuChannel());
    auto r = npuChannel->call("vtaRun",
                              NpuRuntime::encodeRun(program));
    return r.isOk() ? Status::ok() : r.status();
}

Status
CronusBackend::cpuWork(uint64_t work_units)
{
    sys->platform().clock().advance(work_units);
    return Status::ok();
}

SimTime
CronusBackend::now() const
{
    return const_cast<CronusBackend *>(this)
        ->sys->platform().clock().now();
}

Status
CronusBackend::injectGpuFault()
{
    return sys->injectPanic("gpu0");
}

Result<SimTime>
CronusBackend::recoverGpu()
{
    SimTime before = sys->platform().clock().now();
    CRONUS_RETURN_IF_ERROR(sys->recover("gpu0"));
    /* The old enclave/channel died with the partition; rebuild on
     * next use. */
    gpuChannel.reset();
    gpuUp = false;
    return sys->platform().clock().now() - before;
}

bool
CronusBackend::othersAlive()
{
    /* NPU and CPU partitions are unaffected by the GPU fault. */
    if (!cfg.withNpu)
        return true;
    Status alive = ensureNpuChannel();
    if (!alive.isOk())
        return false;
    auto r = npuChannel->callSync(
        "vtaAllocBuffer", NpuRuntime::encodeAllocBuffer(64));
    return r.isOk();
}

} // namespace cronus::baseline
