/**
 * @file
 * CRONUS as a ComputeBackend: a CPU mEnclave driving a CUDA
 * mEnclave and an NPU mEnclave over sRPC channels, exactly the
 * Fig. 2 deployment the evaluation measures.
 */

#ifndef CRONUS_BASELINE_CRONUS_BACKEND_HH
#define CRONUS_BASELINE_CRONUS_BACKEND_HH

#include "compute_backend.hh"
#include "core/auto_partition.hh"
#include "core/system.hh"

namespace cronus::baseline
{

struct CronusBackendConfig
{
    uint64_t gpuVramBytes = 64ull << 20;
    std::vector<std::string> gpuKernels;
    bool withNpu = true;
};

class CronusBackend : public ComputeBackend
{
  public:
    explicit CronusBackend(
        const CronusBackendConfig &config = CronusBackendConfig());

    std::string name() const override { return "CRONUS"; }
    bool isProtected() const override { return true; }

    Result<uint64_t> gpuAlloc(uint64_t bytes) override;
    Status gpuFree(uint64_t va) override;
    Status copyToGpu(uint64_t va, const Bytes &data) override;
    Result<Bytes> copyFromGpu(uint64_t va, uint64_t len) override;
    Status launchKernel(const std::string &kernel,
                        const std::vector<uint64_t> &args,
                        uint64_t work_items) override;
    Status gpuSynchronize() override;

    Result<uint32_t> npuAllocBuffer(uint64_t bytes) override;
    Status npuWriteBuffer(uint32_t buffer, uint64_t offset,
                          const Bytes &data) override;
    Result<Bytes> npuReadBuffer(uint32_t buffer, uint64_t offset,
                                uint64_t len) override;
    Status npuRun(const accel::NpuProgram &program) override;

    Status cpuWork(uint64_t work_units) override;
    SimTime now() const override;

    Status injectGpuFault() override;
    Result<SimTime> recoverGpu() override;
    bool othersAlive() override;

    core::CronusSystem &system() { return *sys; }
    const core::SrpcStats *gpuChannelStats() const
    {
        return gpuChannel ? &gpuChannel->stats() : nullptr;
    }

  private:
    Status ensureGpuChannel();
    Status ensureNpuChannel();
    /** Split a copy into slot-sized sRPC requests. */
    Status streamCopy(uint64_t va, const Bytes &data);

    CronusBackendConfig cfg;
    std::unique_ptr<core::CronusSystem> sys;
    core::AppHandle cpuEnclave;
    core::AppHandle gpuEnclave;
    core::AppHandle npuEnclave;
    std::unique_ptr<core::SrpcChannel> gpuChannel;
    std::unique_ptr<core::SrpcChannel> npuChannel;
    bool gpuUp = false;
    bool npuUp = false;
    core::SrpcConfig srpcConfig;
};

} // namespace cronus::baseline

#endif // CRONUS_BASELINE_CRONUS_BACKEND_HH
