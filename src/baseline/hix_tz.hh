/**
 * @file
 * HIX-TrustZone baseline (§VI-A).
 *
 * Emulates HIX on TrustZone the way the paper does: the GPU driver
 * runs inside a dedicated GPU enclave with exclusive device access,
 * and the application enclave talks to it with *encrypted,
 * acknowledged, lock-step RPC over untrusted memory*. Every
 * hardware control message is its own round trip: AES-CTR + HMAC
 * seal, copy into normal-world memory, world switches in and out,
 * unseal, execute, sealed ack back. Large copies are chunked at the
 * control-message payload size, which is why HIX trails CRONUS on
 * memcpy-heavy workloads (Fig. 7/8).
 *
 * The normal world genuinely carries the ciphertext: the attack
 * suite can observe (but not decrypt) RPC traffic and its timing.
 */

#ifndef CRONUS_BASELINE_HIX_TZ_HH
#define CRONUS_BASELINE_HIX_TZ_HH

#include "accel/gpu.hh"
#include "compute_backend.hh"
#include "crypto/aes.hh"
#include "hw/platform.hh"
#include "tee/secure_monitor.hh"

namespace cronus::baseline
{

struct HixConfig
{
    uint64_t gpuVramBytes = 64ull << 20;
    std::vector<std::string> gpuKernels;
    /** Payload bytes per hardware control message. */
    uint64_t messageBytes = 16 * 1024;
    /** Control messages per kernel launch (submit + doorbell). */
    uint32_t messagesPerLaunch = 2;
};

/** One observed (encrypted) RPC message, as the normal OS sees it. */
struct ObservedMessage
{
    SimTime when = 0;
    uint64_t bytes = 0;
    Bytes ciphertext;  ///< first bytes only, for the attack tests
};

class HixTzBackend : public ComputeBackend
{
  public:
    explicit HixTzBackend(const HixConfig &config = HixConfig());

    std::string name() const override { return "HIX-TrustZone"; }
    bool isProtected() const override { return true; }

    Result<uint64_t> gpuAlloc(uint64_t bytes) override;
    Status gpuFree(uint64_t va) override;
    Status copyToGpu(uint64_t va, const Bytes &data) override;
    Result<Bytes> copyFromGpu(uint64_t va, uint64_t len) override;
    Status launchKernel(const std::string &kernel,
                        const std::vector<uint64_t> &args,
                        uint64_t work_items) override;
    Status gpuSynchronize() override;

    /* HIX supports only GPUs (§VI-A). */
    Result<uint32_t> npuAllocBuffer(uint64_t bytes) override;
    Status npuWriteBuffer(uint32_t buffer, uint64_t offset,
                          const Bytes &data) override;
    Result<Bytes> npuReadBuffer(uint32_t buffer, uint64_t offset,
                                uint64_t len) override;
    Status npuRun(const accel::NpuProgram &program) override;

    Status cpuWork(uint64_t work_units) override;
    SimTime now() const override;

    Status injectGpuFault() override;
    Result<SimTime> recoverGpu() override;
    bool othersAlive() override;

    /** RPC traffic as visible to the untrusted OS. */
    const std::vector<ObservedMessage> &observedMessages() const
    {
        return observed;
    }
    uint64_t rpcRoundTrips() const { return roundTrips; }

    hw::Platform &platform() { return *plat; }

  private:
    Status ensureAlive() const;
    /** One lock-step round trip carrying @p payload bytes. */
    Status rpcRoundTrip(const Bytes &payload);

    HixConfig cfg;
    std::unique_ptr<hw::Platform> plat;
    std::unique_ptr<tee::SecureMonitor> monitor;
    accel::GpuDevice *gpu = nullptr;
    accel::GpuContextId gpuCtx = 0;
    Bytes sessionSecret;
    uint64_t nonce = 0;
    uint64_t roundTrips = 0;
    std::vector<ObservedMessage> observed;
    hw::PhysAddr mailbox = 0;
    bool gpuEnclaveDown = false;
};

} // namespace cronus::baseline

#endif // CRONUS_BASELINE_HIX_TZ_HH
