/**
 * @file
 * Native (unprotected) Linux baseline: direct driver access to the
 * devices, no TEE, no world switches, no authentication.
 */

#ifndef CRONUS_BASELINE_NATIVE_HH
#define CRONUS_BASELINE_NATIVE_HH

#include "accel/cpu.hh"
#include "accel/gpu.hh"
#include "compute_backend.hh"
#include "hw/platform.hh"

namespace cronus::baseline
{

struct NativeConfig
{
    uint64_t gpuVramBytes = 64ull << 20;
    std::vector<std::string> gpuKernels;  ///< module to load
};

class NativeBackend : public ComputeBackend
{
  public:
    explicit NativeBackend(const NativeConfig &config = NativeConfig());

    std::string name() const override { return "Linux"; }
    bool isProtected() const override { return false; }

    Result<uint64_t> gpuAlloc(uint64_t bytes) override;
    Status gpuFree(uint64_t va) override;
    Status copyToGpu(uint64_t va, const Bytes &data) override;
    Result<Bytes> copyFromGpu(uint64_t va, uint64_t len) override;
    Status launchKernel(const std::string &kernel,
                        const std::vector<uint64_t> &args,
                        uint64_t work_items) override;
    Status gpuSynchronize() override;

    Result<uint32_t> npuAllocBuffer(uint64_t bytes) override;
    Status npuWriteBuffer(uint32_t buffer, uint64_t offset,
                          const Bytes &data) override;
    Result<Bytes> npuReadBuffer(uint32_t buffer, uint64_t offset,
                                uint64_t len) override;
    Status npuRun(const accel::NpuProgram &program) override;

    Status cpuWork(uint64_t work_units) override;
    SimTime now() const override;

    Status injectGpuFault() override;
    Result<SimTime> recoverGpu() override;
    bool othersAlive() override;

    hw::Platform &platform() { return *plat; }

  private:
    Status ensureGpuAlive() const;

    NativeConfig cfg;
    std::unique_ptr<hw::Platform> plat;
    accel::GpuDevice *gpu = nullptr;
    accel::NpuDevice *npu = nullptr;
    accel::GpuContextId gpuCtx = 0;
    accel::NpuContextId npuCtx = 0;
    bool gpuFaulted = false;
    bool machineDown = false;
};

} // namespace cronus::baseline

#endif // CRONUS_BASELINE_NATIVE_HH
