#include "native.hh"

#include "accel/builtin_kernels.hh"
#include "base/logging.hh"

namespace cronus::baseline
{

NativeBackend::NativeBackend(const NativeConfig &config)
    : cfg(config)
{
    hw::PlatformConfig pc;
    plat = std::make_unique<hw::Platform>(pc);
    accel::registerBuiltinKernels();

    accel::GpuConfig gc;
    gc.vramBytes = config.gpuVramBytes;
    gpu = static_cast<accel::GpuDevice *>(
        plat->registerDevice(std::make_unique<accel::GpuDevice>(gc),
                             40));
    accel::NpuConfig nc;
    npu = static_cast<accel::NpuDevice *>(
        plat->registerDevice(std::make_unique<accel::NpuDevice>(nc),
                             60));

    gpuCtx = gpu->createContext().value();
    npuCtx = npu->createContext().value();

    accel::GpuModuleImage image{"native.cubin", config.gpuKernels};
    if (!config.gpuKernels.empty()) {
        Status s = gpu->loadModule(gpuCtx, image);
        CRONUS_ASSERT(s.isOk(), "native module load: " + s.toString());
    }
}

Status
NativeBackend::ensureGpuAlive() const
{
    if (machineDown)
        return Status(ErrorCode::PeerFailed, "machine down");
    if (gpuFaulted)
        return Status(ErrorCode::PeerFailed, "GPU stack crashed");
    return Status::ok();
}

Result<uint64_t>
NativeBackend::gpuAlloc(uint64_t bytes)
{
    CRONUS_RETURN_IF_ERROR(ensureGpuAlive());
    auto va = gpu->malloc(gpuCtx, bytes);
    if (!va.isOk())
        return va.status();
    return uint64_t(va.value());
}

Status
NativeBackend::gpuFree(uint64_t va)
{
    CRONUS_RETURN_IF_ERROR(ensureGpuAlive());
    return gpu->free(gpuCtx, va);
}

Status
NativeBackend::copyToGpu(uint64_t va, const Bytes &data)
{
    CRONUS_RETURN_IF_ERROR(ensureGpuAlive());
    plat->clock().advance(plat->costs().gpuCopyCmdNs);
    /* Pageable host memory: the driver stages through a CPU copy
     * before the DMA (as cudaMemcpy does). */
    plat->chargeMemcpy(data.size());
    plat->chargeDma(data.size());
    return gpu->write(gpuCtx, va, data.data(), data.size());
}

Result<Bytes>
NativeBackend::copyFromGpu(uint64_t va, uint64_t len)
{
    CRONUS_RETURN_IF_ERROR(ensureGpuAlive());
    CRONUS_RETURN_IF_ERROR(gpuSynchronize());
    plat->clock().advance(plat->costs().gpuCopyCmdNs);
    plat->chargeMemcpy(len);
    plat->chargeDma(len);
    Bytes out(len);
    Status s = gpu->read(gpuCtx, va, out.data(), len);
    if (!s.isOk())
        return s;
    return out;
}

Status
NativeBackend::launchKernel(const std::string &kernel,
                            const std::vector<uint64_t> &args,
                            uint64_t work_items)
{
    CRONUS_RETURN_IF_ERROR(ensureGpuAlive());
    plat->clock().advance(plat->costs().gpuSubmitNs);
    auto done = gpu->launch(gpuCtx, kernel, args,
                            accel::LaunchDims{work_items},
                            plat->clock().now());
    if (!done.isOk())
        return done.status();
    return Status::ok();
}

Status
NativeBackend::gpuSynchronize()
{
    CRONUS_RETURN_IF_ERROR(ensureGpuAlive());
    plat->clock().advanceTo(gpu->streamBusyUntil(gpuCtx));
    return Status::ok();
}

Result<uint32_t>
NativeBackend::npuAllocBuffer(uint64_t bytes)
{
    if (machineDown)
        return Status(ErrorCode::PeerFailed, "machine down");
    return npu->allocBuffer(npuCtx, bytes);
}

Status
NativeBackend::npuWriteBuffer(uint32_t buffer, uint64_t offset,
                              const Bytes &data)
{
    if (machineDown)
        return Status(ErrorCode::PeerFailed, "machine down");
    plat->chargeDma(data.size());
    return npu->writeBuffer(npuCtx, buffer, offset, data.data(),
                            data.size());
}

Result<Bytes>
NativeBackend::npuReadBuffer(uint32_t buffer, uint64_t offset,
                             uint64_t len)
{
    if (machineDown)
        return Status(ErrorCode::PeerFailed, "machine down");
    plat->chargeDma(len);
    Bytes out(len);
    Status s = npu->readBuffer(npuCtx, buffer, offset, out.data(),
                               len);
    if (!s.isOk())
        return s;
    return out;
}

Status
NativeBackend::npuRun(const accel::NpuProgram &program)
{
    if (machineDown)
        return Status(ErrorCode::PeerFailed, "machine down");
    plat->clock().advance(plat->costs().npuSubmitNs);
    auto done = npu->run(npuCtx, program, plat->clock().now());
    if (!done.isOk())
        return done.status();
    plat->clock().advanceTo(done.value());
    return Status::ok();
}

Status
NativeBackend::cpuWork(uint64_t work_units)
{
    if (machineDown)
        return Status(ErrorCode::PeerFailed, "machine down");
    plat->clock().advance(work_units);
    return Status::ok();
}

SimTime
NativeBackend::now() const
{
    return plat->clock().now();
}

Status
NativeBackend::injectGpuFault()
{
    /* A GPU driver fault in a monolithic kernel takes the machine
     * down with it. */
    gpuFaulted = true;
    machineDown = true;
    return Status::ok();
}

Result<SimTime>
NativeBackend::recoverGpu()
{
    if (!gpuFaulted)
        return Status(ErrorCode::InvalidState, "no fault injected");
    SimTime cost = plat->costs().machineRebootNs;
    plat->clock().advance(cost);
    gpu->reset(true);
    npu->reset(true);
    gpuCtx = gpu->createContext().value();
    npuCtx = npu->createContext().value();
    if (!cfg.gpuKernels.empty()) {
        accel::GpuModuleImage image{"native.cubin", cfg.gpuKernels};
        CRONUS_RETURN_IF_ERROR(gpu->loadModule(gpuCtx, image));
    }
    gpuFaulted = false;
    machineDown = false;
    return cost;
}

bool
NativeBackend::othersAlive()
{
    return !machineDown;
}

} // namespace cronus::baseline
