/**
 * @file
 * Common interface over CRONUS and its baselines (§VI-A).
 *
 * The evaluation compares four systems on identical workloads:
 *   - Linux (native, unprotected),
 *   - TrustZone (monolithic secure OS with all drivers inside),
 *   - HIX-TrustZone (GPU enclave + encrypted lock-step RPC over
 *     untrusted memory),
 *   - CRONUS (mEnclaves + sRPC).
 * ComputeBackend is the workload-facing surface all four implement:
 * CUDA-ish GPU ops, VTA-ish NPU ops, and the failure/recovery hooks
 * Fig. 9 needs.
 */

#ifndef CRONUS_BASELINE_COMPUTE_BACKEND_HH
#define CRONUS_BASELINE_COMPUTE_BACKEND_HH

#include "accel/npu.hh"
#include "base/sim_clock.hh"
#include "base/status.hh"

namespace cronus::baseline
{

class ComputeBackend
{
  public:
    virtual ~ComputeBackend() = default;

    virtual std::string name() const = 0;

    /* --- GPU ops --- */
    virtual Result<uint64_t> gpuAlloc(uint64_t bytes) = 0;
    virtual Status gpuFree(uint64_t va) = 0;
    virtual Status copyToGpu(uint64_t va, const Bytes &data) = 0;
    virtual Result<Bytes> copyFromGpu(uint64_t va, uint64_t len) = 0;
    virtual Status launchKernel(const std::string &kernel,
                                const std::vector<uint64_t> &args,
                                uint64_t work_items) = 0;
    virtual Status gpuSynchronize() = 0;

    /* --- NPU ops (Unsupported on GPU-only baselines) --- */
    virtual Result<uint32_t> npuAllocBuffer(uint64_t bytes) = 0;
    virtual Status npuWriteBuffer(uint32_t buffer, uint64_t offset,
                                  const Bytes &data) = 0;
    virtual Result<Bytes> npuReadBuffer(uint32_t buffer,
                                        uint64_t offset,
                                        uint64_t len) = 0;
    virtual Status npuRun(const accel::NpuProgram &program) = 0;

    /* --- CPU-side work (e.g. optimizer steps, data prep) --- */
    virtual Status cpuWork(uint64_t work_units) = 0;

    /* --- virtual time --- */
    virtual SimTime now() const = 0;

    /* --- failure / recovery (Fig. 9) --- */

    /** Inject a fault into the GPU software stack. */
    virtual Status injectGpuFault() = 0;

    /**
     * Recover from the injected fault; returns the virtual-time
     * cost. Monolithic baselines reboot the whole machine; CRONUS
     * restarts one partition.
     */
    virtual Result<SimTime> recoverGpu() = 0;

    /** Whether non-GPU computation survived the GPU fault. */
    virtual bool othersAlive() = 0;

    /** TEE protection in place? (native answers false). */
    virtual bool isProtected() const = 0;
};

} // namespace cronus::baseline

#endif // CRONUS_BASELINE_COMPUTE_BACKEND_HH
