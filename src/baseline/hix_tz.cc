#include "hix_tz.hh"

#include "accel/builtin_kernels.hh"
#include "base/logging.hh"

namespace cronus::baseline
{

HixTzBackend::HixTzBackend(const HixConfig &config) : cfg(config)
{
    plat = std::make_unique<hw::Platform>();
    accel::registerBuiltinKernels();

    accel::GpuConfig gc;
    gc.vramBytes = cfg.gpuVramBytes;
    gpu = static_cast<accel::GpuDevice *>(
        plat->registerDevice(std::make_unique<accel::GpuDevice>(gc),
                             40));

    monitor = std::make_unique<tee::SecureMonitor>(*plat);
    hw::DeviceTree dt = plat->buildDeviceTree();
    hw::DeviceTree secure_dt;
    for (auto node : dt.all()) {
        node.world = hw::World::Secure;
        secure_dt.addNode(node);
    }
    Status booted = monitor->boot(secure_dt);
    CRONUS_ASSERT(booted.isOk(), "HIX boot failed");

    gpuCtx = gpu->createContext().value();
    if (!cfg.gpuKernels.empty()) {
        accel::GpuModuleImage image{"hix.cubin", cfg.gpuKernels};
        Status s = gpu->loadModule(gpuCtx, image);
        CRONUS_ASSERT(s.isOk(), "HIX module load failed");
    }

    /* Session key between app enclave and GPU enclave. */
    sessionSecret = crypto::digestToBytes(
        crypto::sha256(std::string("hix-session-key")));
    /* Mailbox page in untrusted memory. */
    mailbox = hw::kPageSize;
}

Status
HixTzBackend::ensureAlive() const
{
    if (gpuEnclaveDown)
        return Status(ErrorCode::PeerFailed, "GPU enclave crashed");
    return Status::ok();
}

Status
HixTzBackend::rpcRoundTrip(const Bytes &payload)
{
    const CostModel &costs = plat->costs();

    /* Seal in the app enclave. */
    Bytes sealed = crypto::sealMessage(sessionSecret, ++nonce,
                                       payload);
    plat->clock().advance(static_cast<SimTime>(
        payload.size() * (costs.aesNsPerByte + costs.hmacNsPerByte)));

    /* The ciphertext really transits untrusted memory. */
    uint64_t write_len =
        std::min<uint64_t>(sealed.size(), hw::kPageSize);
    Status s = plat->busWrite(hw::World::Normal, mailbox,
                              sealed.data(), write_len);
    if (!s.isOk())
        return s;
    plat->chargeMemcpy(sealed.size());

    ObservedMessage msg;
    msg.when = plat->clock().now();
    msg.bytes = sealed.size();
    msg.ciphertext.assign(sealed.begin(),
                          sealed.begin() +
                              std::min<size_t>(sealed.size(), 64));
    observed.push_back(std::move(msg));

    /* Deliver into the GPU enclave and unseal there. */
    monitor->worldSwitch();
    monitor->worldSwitch();
    auto opened = crypto::openMessage(sessionSecret, sealed);
    if (!opened.isOk())
        return opened.status();
    plat->clock().advance(static_cast<SimTime>(
        payload.size() * (costs.aesNsPerByte + costs.hmacNsPerByte)));

    /* Sealed acknowledgement back (lock-step). */
    Bytes ack = crypto::sealMessage(sessionSecret, ++nonce,
                                    toBytes("ack"));
    plat->busWrite(hw::World::Normal, mailbox, ack.data(),
                   std::min<uint64_t>(ack.size(), hw::kPageSize));
    monitor->worldSwitch();
    monitor->worldSwitch();
    auto ack_open = crypto::openMessage(sessionSecret, ack);
    if (!ack_open.isOk())
        return ack_open.status();

    ++roundTrips;
    return Status::ok();
}

Result<uint64_t>
HixTzBackend::gpuAlloc(uint64_t bytes)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    ByteWriter w;
    w.putString("alloc");
    w.putU64(bytes);
    CRONUS_RETURN_IF_ERROR(rpcRoundTrip(w.take()));
    auto va = gpu->malloc(gpuCtx, bytes);
    if (!va.isOk())
        return va.status();
    return uint64_t(va.value());
}

Status
HixTzBackend::gpuFree(uint64_t va)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    ByteWriter w;
    w.putString("free");
    w.putU64(va);
    CRONUS_RETURN_IF_ERROR(rpcRoundTrip(w.take()));
    return gpu->free(gpuCtx, va);
}

Status
HixTzBackend::copyToGpu(uint64_t va, const Bytes &data)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    /* Chunked at the control-message payload size, one lock-step
     * round trip per chunk. */
    for (uint64_t off = 0; off < data.size();
         off += cfg.messageBytes) {
        uint64_t len = std::min<uint64_t>(cfg.messageBytes,
                                          data.size() - off);
        Bytes chunk(data.begin() + off, data.begin() + off + len);
        CRONUS_RETURN_IF_ERROR(rpcRoundTrip(chunk));
        plat->clock().advance(plat->costs().gpuCopyCmdNs);
        CRONUS_RETURN_IF_ERROR(
            gpu->write(gpuCtx, va + off, chunk.data(), len));
        plat->chargeDma(len);
    }
    if (data.empty())
        CRONUS_RETURN_IF_ERROR(rpcRoundTrip(Bytes{}));
    return Status::ok();
}

Result<Bytes>
HixTzBackend::copyFromGpu(uint64_t va, uint64_t len)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    CRONUS_RETURN_IF_ERROR(gpuSynchronize());
    Bytes out;
    out.reserve(len);
    for (uint64_t off = 0; off < len; off += cfg.messageBytes) {
        uint64_t n = std::min<uint64_t>(cfg.messageBytes, len - off);
        Bytes chunk(n);
        plat->clock().advance(plat->costs().gpuCopyCmdNs);
        CRONUS_RETURN_IF_ERROR(
            gpu->read(gpuCtx, va + off, chunk.data(), n));
        plat->chargeDma(n);
        CRONUS_RETURN_IF_ERROR(rpcRoundTrip(chunk));
        out.insert(out.end(), chunk.begin(), chunk.end());
    }
    return out;
}

Status
HixTzBackend::launchKernel(const std::string &kernel,
                           const std::vector<uint64_t> &args,
                           uint64_t work_items)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    /* Submit + doorbell: one round trip per control message. */
    for (uint32_t i = 0; i < cfg.messagesPerLaunch; ++i) {
        ByteWriter w;
        w.putString("launch-msg");
        w.putU32(i);
        w.putString(kernel);
        CRONUS_RETURN_IF_ERROR(rpcRoundTrip(w.take()));
    }
    plat->clock().advance(plat->costs().gpuSubmitNs);
    auto done = gpu->launch(gpuCtx, kernel, args,
                            accel::LaunchDims{work_items},
                            plat->clock().now());
    if (!done.isOk())
        return done.status();
    return Status::ok();
}

Status
HixTzBackend::gpuSynchronize()
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    ByteWriter w;
    w.putString("sync");
    CRONUS_RETURN_IF_ERROR(rpcRoundTrip(w.take()));
    plat->clock().advanceTo(gpu->streamBusyUntil(gpuCtx));
    return Status::ok();
}

Result<uint32_t>
HixTzBackend::npuAllocBuffer(uint64_t)
{
    return Status(ErrorCode::Unsupported, "HIX supports only GPUs");
}

Status
HixTzBackend::npuWriteBuffer(uint32_t, uint64_t, const Bytes &)
{
    return Status(ErrorCode::Unsupported, "HIX supports only GPUs");
}

Result<Bytes>
HixTzBackend::npuReadBuffer(uint32_t, uint64_t, uint64_t)
{
    return Status(ErrorCode::Unsupported, "HIX supports only GPUs");
}

Status
HixTzBackend::npuRun(const accel::NpuProgram &)
{
    return Status(ErrorCode::Unsupported, "HIX supports only GPUs");
}

Status
HixTzBackend::cpuWork(uint64_t work_units)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    plat->clock().advance(work_units);
    return Status::ok();
}

SimTime
HixTzBackend::now() const
{
    return plat->clock().now();
}

Status
HixTzBackend::injectGpuFault()
{
    gpuEnclaveDown = true;
    return Status::ok();
}

Result<SimTime>
HixTzBackend::recoverGpu()
{
    if (!gpuEnclaveDown)
        return Status(ErrorCode::InvalidState, "no fault injected");
    /* HIX requires a cold reboot of the accelerator to clear its
     * state when the GPU enclave dies (Table I remark 2). */
    SimTime cost = plat->costs().machineRebootNs;
    plat->clock().advance(cost);
    gpu->reset(true);
    gpuCtx = gpu->createContext().value();
    if (!cfg.gpuKernels.empty()) {
        accel::GpuModuleImage image{"hix.cubin", cfg.gpuKernels};
        CRONUS_RETURN_IF_ERROR(gpu->loadModule(gpuCtx, image));
    }
    gpuEnclaveDown = false;
    return cost;
}

bool
HixTzBackend::othersAlive()
{
    /* The app enclave survives (HIX isolates the GPU enclave), but
     * there is no other accelerator to keep running. */
    return true;
}

} // namespace cronus::baseline
