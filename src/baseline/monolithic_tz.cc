#include "monolithic_tz.hh"

#include "accel/builtin_kernels.hh"
#include "base/logging.hh"

namespace cronus::baseline
{

MonolithicTzBackend::MonolithicTzBackend(const MonolithicConfig &config)
    : cfg(config)
{
    plat = std::make_unique<hw::Platform>();
    accel::registerBuiltinKernels();

    accel::GpuConfig gc;
    gc.vramBytes = cfg.gpuVramBytes;
    gpu = static_cast<accel::GpuDevice *>(
        plat->registerDevice(std::make_unique<accel::GpuDevice>(gc),
                             40));
    accel::NpuConfig nc;
    npu = static_cast<accel::NpuDevice *>(
        plat->registerDevice(std::make_unique<accel::NpuDevice>(nc),
                             60));

    monitor = std::make_unique<tee::SecureMonitor>(*plat);
    hw::DeviceTree dt = plat->buildDeviceTree();
    hw::DeviceTree secure_dt;
    for (auto node : dt.all()) {
        node.world = hw::World::Secure;
        secure_dt.addNode(node);
    }
    Status booted = monitor->boot(secure_dt);
    CRONUS_ASSERT(booted.isOk(), "monolithic boot failed");

    gpuCtx = gpu->createContext().value();
    npuCtx = npu->createContext().value();
    if (!cfg.gpuKernels.empty()) {
        accel::GpuModuleImage image{"tz.cubin", cfg.gpuKernels};
        Status s = gpu->loadModule(gpuCtx, image);
        CRONUS_ASSERT(s.isOk(), "monolithic module load failed");
    }
}

Status
MonolithicTzBackend::ensureAlive() const
{
    if (secureWorldDown)
        return Status(ErrorCode::PeerFailed,
                      "secure world crashed (monolithic)");
    return Status::ok();
}

void
MonolithicTzBackend::enterTee()
{
    /* App (normal world) -> trusted OS entry + exit. Only used when
     * an untrusted client calls into the TEE; the training/compute
     * loops run entirely inside the secure world (the paper runs
     * the whole PyTorch program in the TEE). */
    monitor->worldSwitch();
    monitor->worldSwitch();
}

Result<uint64_t>
MonolithicTzBackend::gpuAlloc(uint64_t bytes)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    auto va = gpu->malloc(gpuCtx, bytes);
    if (!va.isOk())
        return va.status();
    return uint64_t(va.value());
}

Status
MonolithicTzBackend::gpuFree(uint64_t va)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    return gpu->free(gpuCtx, va);
}

Status
MonolithicTzBackend::copyToGpu(uint64_t va, const Bytes &data)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    plat->clock().advance(plat->costs().gpuCopyCmdNs);
    plat->chargeMemcpy(data.size());
    plat->chargeDma(data.size());
    return gpu->write(gpuCtx, va, data.data(), data.size());
}

Result<Bytes>
MonolithicTzBackend::copyFromGpu(uint64_t va, uint64_t len)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    plat->clock().advanceTo(gpu->streamBusyUntil(gpuCtx));
    plat->clock().advance(plat->costs().gpuCopyCmdNs);
    plat->chargeMemcpy(len);
    plat->chargeDma(len);
    Bytes out(len);
    Status s = gpu->read(gpuCtx, va, out.data(), len);
    if (!s.isOk())
        return s;
    return out;
}

Status
MonolithicTzBackend::launchKernel(const std::string &kernel,
                                  const std::vector<uint64_t> &args,
                                  uint64_t work_items)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    plat->clock().advance(plat->costs().gpuSubmitNs);
    auto done = gpu->launch(gpuCtx, kernel, args,
                            accel::LaunchDims{work_items},
                            plat->clock().now());
    if (!done.isOk())
        return done.status();
    return Status::ok();
}

Status
MonolithicTzBackend::gpuSynchronize()
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    plat->clock().advanceTo(gpu->streamBusyUntil(gpuCtx));
    return Status::ok();
}

Result<uint32_t>
MonolithicTzBackend::npuAllocBuffer(uint64_t bytes)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    return npu->allocBuffer(npuCtx, bytes);
}

Status
MonolithicTzBackend::npuWriteBuffer(uint32_t buffer, uint64_t offset,
                                    const Bytes &data)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    plat->chargeDma(data.size());
    return npu->writeBuffer(npuCtx, buffer, offset, data.data(),
                            data.size());
}

Result<Bytes>
MonolithicTzBackend::npuReadBuffer(uint32_t buffer, uint64_t offset,
                                   uint64_t len)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    plat->chargeDma(len);
    Bytes out(len);
    Status s = npu->readBuffer(npuCtx, buffer, offset, out.data(),
                               len);
    if (!s.isOk())
        return s;
    return out;
}

Status
MonolithicTzBackend::npuRun(const accel::NpuProgram &program)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    plat->clock().advance(plat->costs().npuSubmitNs);
    auto done = npu->run(npuCtx, program, plat->clock().now());
    if (!done.isOk())
        return done.status();
    plat->clock().advanceTo(done.value());
    return Status::ok();
}

Status
MonolithicTzBackend::cpuWork(uint64_t work_units)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    plat->clock().advance(work_units);
    return Status::ok();
}

SimTime
MonolithicTzBackend::now() const
{
    return plat->clock().now();
}

Status
MonolithicTzBackend::injectGpuFault()
{
    /* The GPU driver shares the trusted OS with everything else:
     * the whole secure world goes down (R3.1 violation). */
    secureWorldDown = true;
    return Status::ok();
}

Result<SimTime>
MonolithicTzBackend::recoverGpu()
{
    if (!secureWorldDown)
        return Status(ErrorCode::InvalidState, "no fault injected");
    /* Clearing accelerator state needs a cold machine reboot. */
    SimTime cost = plat->costs().machineRebootNs;
    plat->clock().advance(cost);
    gpu->reset(true);
    npu->reset(true);
    gpuCtx = gpu->createContext().value();
    npuCtx = npu->createContext().value();
    if (!cfg.gpuKernels.empty()) {
        accel::GpuModuleImage image{"tz.cubin", cfg.gpuKernels};
        CRONUS_RETURN_IF_ERROR(gpu->loadModule(gpuCtx, image));
    }
    secureWorldDown = false;
    return cost;
}

bool
MonolithicTzBackend::othersAlive()
{
    /* NPU computation dies with the secure world. */
    return !secureWorldDown;
}

Result<Bytes>
MonolithicTzBackend::maliciousDriverReadsGpu(uint64_t va, uint64_t len)
{
    CRONUS_RETURN_IF_ERROR(ensureAlive());
    /* In the monolithic trusted OS the NPU driver runs in the same
     * address space and trust domain as the GPU driver: nothing
     * stops it from reading GPU state of other tenants. */
    Bytes out(len);
    Status s = gpu->read(gpuCtx, va, out.data(), len);
    if (!s.isOk())
        return s;
    return out;
}

} // namespace cronus::baseline
