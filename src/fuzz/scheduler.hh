/**
 * @file
 * Coverage-guided seed scheduling for the scenario fuzzer.
 *
 * The plain swarm corpus (`defaultCorpus`) walks seeds 1..N with no
 * feedback: two seeds that expand to near-identical scenarios both
 * burn a full differential run. The scheduler replaces that with a
 * deterministic evolutionary loop over *seed space*:
 *
 *   - every scenario is abstracted into a set of grammar edges
 *     (op-kind bigrams, fault x op-kind pairs, machine shape,
 *     channel geometry) -- `scenarioEdges` -- plus, when the caller
 *     feeds run results back, behaviour edges (op-kind x result
 *     code) -- `runEdges`;
 *   - a seed whose scenario or run covered edges never seen before
 *     is *interesting*: it spawns child seeds (a deterministic hash
 *     mix of the parent), queued ahead of the sequential frontier;
 *   - seeds whose scenario duplicates an already-scheduled structure
 *     (identical normalized fingerprint) are skipped entirely.
 *
 * Everything is a pure function of (options, feedback sequence): no
 * wall clock, no global RNG. Replaying the same loop yields the same
 * seed schedule, so a CI failure on "scheduled seed #137" reproduces
 * locally, and `fuzz_runner --diff-backends` can log just the seed.
 */

#ifndef CRONUS_FUZZ_SCHEDULER_HH
#define CRONUS_FUZZ_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "scenario.hh"

namespace cronus::fuzz
{

/** Hashed coverage edge ids (grammar or behaviour). */
using CoverageSet = std::set<uint64_t>;

/** Static grammar edges of @p sc (no run needed). */
CoverageSet scenarioEdges(const Scenario &sc);

/**
 * Behaviour edges of one executed op: (kind, result code, blocked).
 * Fold into the feedback set alongside scenarioEdges to steer the
 * schedule toward seeds that exercise new outcome paths.
 */
uint64_t behaviorEdge(OpKind kind, const std::string &code,
                      bool blocked);

/**
 * Structural fingerprint of @p sc, independent of the seed that
 * generated it: machine shape, enclave plans, fault schedule and op
 * list. Two seeds expanding to the same structure dedup to one run.
 */
uint64_t scenarioFingerprint(const Scenario &sc);

struct SchedulerOptions
{
    /** First sequential seed (the fallback frontier walks up from
     *  here when no interesting parent has pending children). */
    uint64_t baseSeed = 1;
    /** Children spawned per interesting seed. */
    uint32_t childrenPerParent = 3;
    /** Cap on dedup-skipped candidates per next() call, so a
     *  degenerate corpus cannot stall the schedule. */
    uint32_t maxSkipsPerNext = 64;
};

/**
 * Deterministic corpus evolution. Usage:
 *
 *   SeedScheduler sched;
 *   for (...) {
 *       uint64_t seed = sched.next();
 *       Scenario sc = generateScenario(seed);
 *       ... run sc ...
 *       CoverageSet edges = scenarioEdges(sc);
 *       ... add behaviorEdge(...) per executed op ...
 *       sched.feedback(seed, edges);
 *   }
 */
class SeedScheduler
{
  public:
    explicit SeedScheduler(SchedulerOptions options = {});

    /** Next seed to run: pending children first (FIFO), then the
     *  sequential frontier. Skips seeds whose scenario duplicates an
     *  already-scheduled fingerprint. */
    uint64_t next();

    /** Report the edges covered by @p seed's run. A seed that
     *  covered anything new spawns childrenPerParent children. */
    void feedback(uint64_t seed, const CoverageSet &edges);

    /** Deterministic k-th child of @p parent (exposed for tests and
     *  for replaying a schedule without a scheduler instance). */
    static uint64_t childSeed(uint64_t parent, uint32_t k);

    size_t edgesCovered() const { return covered.size(); }
    size_t scheduled() const { return issued; }
    size_t deduped() const { return dedupSkips; }

  private:
    SchedulerOptions opts;
    std::deque<uint64_t> pending;  ///< children awaiting their turn
    std::set<uint64_t> seenSeeds;
    std::set<uint64_t> seenFingerprints;
    CoverageSet covered;
    uint64_t nextSequential;
    size_t issued = 0;
    size_t dedupSkips = 0;
};

/**
 * Run the evolution loop with static grammar coverage as the only
 * feedback and return the first @p count scheduled seeds -- the
 * drop-in replacement for defaultCorpus when no run results are
 * available up front.
 */
std::vector<uint64_t> scheduleCorpus(size_t count,
                                     SchedulerOptions options = {});

} // namespace cronus::fuzz

#endif // CRONUS_FUZZ_SCHEDULER_HH
