/**
 * @file
 * Reference model: replays a scenario's compute on plain host state.
 *
 * The model mirrors every data-bearing op of the scenario grammar
 * with ordinary C++ (float vectors for GPU buffers, byte arrays for
 * the NPU, a ring-capacity-aware FIFO for the pipe, a running sum
 * for the driver) and produces the byte-exact outputs the real
 * system must report for enclaves whose partition was never faulted.
 * The simulated GPU executes kernels with host IEEE floats, so
 * equality is exact, not approximate.
 */

#ifndef CRONUS_FUZZ_REFERENCE_HH
#define CRONUS_FUZZ_REFERENCE_HH

#include "scenario.hh"

namespace cronus::fuzz
{

/** Expected observable outcome of one op. */
struct ExpectedOp
{
    std::string code = "Ok";
    Bytes output;
    /** Attack ops are checked for `blocked`, not for output. */
    bool isAttack = false;
};

/** Pure-CPU replay of @p sc (fault-free semantics). */
std::vector<ExpectedOp> referenceRun(const Scenario &sc);

} // namespace cronus::fuzz

#endif // CRONUS_FUZZ_REFERENCE_HH
