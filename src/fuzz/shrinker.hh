/**
 * @file
 * Greedy trace shrinker: reduces a failing scenario to a minimal
 * repro while the oracles keep failing.
 *
 * ddmin-style pass over the op list (chunk sizes n/2, n/4, ..., 1),
 * then fault events one at a time, then Scenario::normalize() to
 * drop the now-unreferenced enclaves/pipe -- so the minimal repro
 * also has a minimal machine. Every candidate is re-judged with the
 * full oracle harness (shrinking disabled), so the minimized
 * scenario provably still fails.
 */

#ifndef CRONUS_FUZZ_SHRINKER_HH
#define CRONUS_FUZZ_SHRINKER_HH

#include "fuzz.hh"

namespace cronus::fuzz
{

struct ShrinkResult
{
    Scenario minimal;
    /** Oracle-harness evaluations spent. */
    uint32_t attempts = 0;
    /** The minimized scenario was re-verified to still fail. */
    bool stillFails = false;
};

ShrinkResult shrinkScenario(const Scenario &sc,
                            const FuzzOptions &opts);

} // namespace cronus::fuzz

#endif // CRONUS_FUZZ_SHRINKER_HH
