/**
 * @file
 * Scenario runner: executes one fuzz Scenario on a real CronusSystem
 * under the InvariantAuditor and (optionally) an armed FaultInjector.
 *
 * The runner is the bridge between the scenario grammar and the
 * system under test. It boots the machine the scenario describes,
 * creates the mEnclaves and sRPC channels, arms the fault schedule,
 * and then executes the op list one op at a time, snapshotting every
 * observable output into an OpRecord.
 *
 * Taint tracking: faults are *expected* to perturb the streams they
 * hit, so the runner tracks which streams (device enclave, driver,
 * pipe) a fired fault touched. Oracles only compare non-tainted
 * records -- a killed partition's outputs are unspecified, but a
 * never-faulted partition's outputs must match the reference model
 * exactly (the isolation property under test).
 *
 * Everything recorded here is deterministic: no wall-clock time, no
 * key material (checkpoint blobs are derived from per-process key
 * counters and are deliberately NOT recorded), no host pointers.
 * Running the same (scenario, options) twice yields a byte-for-byte
 * identical trace document.
 */

#ifndef CRONUS_FUZZ_RUNNER_HH
#define CRONUS_FUZZ_RUNNER_HH

#include "inject/injector.hh"
#include "inject/invariant_auditor.hh"
#include "scenario.hh"
#include "tee/isolation_backend.hh"

namespace cronus::fuzz
{

struct RunOptions
{
    /** Arm the scenario's fault schedule (the oracle harness also
     *  runs each scenario fault-free as the isolation baseline). */
    bool withFaults = true;
    /** Isolation substrate the run's machine is built on. Explicit
     *  (not Default) in differential mode so the CRONUS_BACKEND
     *  environment cannot skew one side of the comparison. */
    tee::BackendSelect backend = tee::BackendSelect::Default;
    /**
     * Test-only planted bug: GpuVecAdd launches a fill of the output
     * buffer instead of the add. The reference oracle must catch
     * this, and the shrinker must reduce the repro to the vec-add +
     * readback pair (acceptance test for the whole fuzz loop).
     */
    bool plantBug = false;
};

/** Everything observable about one executed op. */
struct OpRecord
{
    uint32_t index = 0;
    OpKind kind = OpKind::CpuAccumulate;
    uint32_t enclave = 0;
    std::string code = "Ok";  ///< errorCodeName of the op's status
    bool blocked = false;     ///< attack ops: defense held
    bool tainted = false;     ///< excluded from oracle comparison
    /** A fault fired while this op ran: semantics are unperturbed
     *  but the fault's own latency was charged to this op's virtual
     *  time, so only the duration is excluded from comparison. */
    bool timeTainted = false;
    Bytes output;             ///< snapshotted result payload
    SimTime durNs = 0;        ///< virtual time charged by this op
};

struct RunReport
{
    bool setupOk = false;
    std::string setupError;

    std::vector<OpRecord> records;
    /** Final per-enclave drain outcome ("Ok", "skipped", ...). */
    std::vector<std::string> finalDrain;

    /** Per-enclave supervised-recovery outcome: "none" (never
     *  needed), "recovered", "gave-up" (restart budget exhausted,
     *  deterministic quarantine) or "failed:<code>" (recovery
     *  machinery itself errored -- always a bug). */
    std::vector<std::string> enclaveRecovery;

    /* Stream taints at end of run. */
    std::vector<bool> enclaveTainted;
    bool driverTainted = false;
    bool pipeTainted = false;
    /** A CorruptHeader fault actually fired (auditor violations are
     *  then expected, not a bug). */
    bool corruptFired = false;

    std::vector<inject::FiredFault> faultsFired;
    std::vector<inject::Violation> violations;
    std::string finalCheck = "Ok";
    uint64_t trapCount = 0;
    SimTime endTimeNs = 0;

    /* --- fleet verdict (cluster scenarios: numNodes > 1) --- */

    /** One line per migration attempt: "seq fid src->dst outcome
     *  [src][dst]" -- part of the differential backend verdict. */
    std::vector<std::string> migrationOutcomes;
    /** The convergence oracle held: every migration between two
     *  distinct nodes ended with exactly one live copy (source XOR
     *  destination) -- or, when a migration-window kill left both
     *  ends dead, the fleet sweep re-placed the enclave on a third
     *  node. Checked even in faulted runs: two live copies (a
     *  clone) or a lost enclave is always a violation. */
    bool migrationConsistent = true;

    /** Interleaved decision log (placements, ecalls, op boundaries,
     *  fault firings, recoveries, traps) as a JSON array. */
    JsonValue decisions;

    /** Full trace document (deterministic; replayable). */
    JsonValue toJson(const Scenario &sc, const RunOptions &opts) const;
};

/** Execute @p sc on a fresh CronusSystem. Cluster scenarios
 *  (numNodes > 1) dispatch to the fleet runner (cluster_run.cc). */
RunReport runScenario(const Scenario &sc,
                      const RunOptions &opts = RunOptions());

/** Fleet runner for cluster scenarios (internal; use runScenario). */
RunReport runClusterScenario(const Scenario &sc,
                             const RunOptions &opts);

/* Shared CPU fixtures (runner.cc) reused by the fleet runner: the
 * fz_accumulate/fz_echo function registry entries, image and
 * manifest. */
void registerFuzzCpuFunctions();
Bytes fzCpuImage();
std::string fzCpuManifest();

/** Lower-case hex of @p b (trace dumps). */
std::string hexBytes(const Bytes &b);

} // namespace cronus::fuzz

#endif // CRONUS_FUZZ_RUNNER_HH
