/**
 * @file
 * Scenario grammar for the deterministic simulation fuzzer.
 *
 * A Scenario is the complete, serializable description of one fuzz
 * run: the machine shape (1-4 partitions), the mEnclaves to create,
 * the fault schedule and the operation list. Every decision is drawn
 * from a single seeded Rng stream, so a 64-bit seed fully determines
 * the scenario, and the JSON form round-trips losslessly -- replay
 * (`fuzz_runner --replay`) and the trace shrinker both operate on
 * this structure rather than on the seed.
 *
 * Fault victims and enclave placements are addressed by *device
 * name* ("gpu0", "npu0"), not partition id: partition ids are an
 * artifact of boot order, device names are stable across replays.
 */

#ifndef CRONUS_FUZZ_SCENARIO_HH
#define CRONUS_FUZZ_SCENARIO_HH

#include <string>
#include <vector>

#include "base/bytes.hh"
#include "base/json.hh"
#include "base/sim_clock.hh"

namespace cronus::fuzz
{

/** One operation of the scenario grammar. */
enum class OpKind : uint32_t
{
    /* -- workload ops (checked against the reference model) -- */
    CpuAccumulate,  ///< driver enclave: accumulate(a) -> running sum
    GpuFill,        ///< buffer a = float(b), streamed (async)
    GpuVecAdd,      ///< buf2 = buf0 + buf1, streamed (async)
    GpuSaxpy,       ///< buf1 += float(b) * buf0, streamed (async)
    GpuDrain,       ///< streamCheck: drain the enclave's channel
    GpuReadback,    ///< DtoH of buffer a (sync, snapshotted)
    NpuWrite,       ///< write chunk (off a, len b, seed c)
    NpuReadback,    ///< read back the whole NPU buffer (snapshotted)
    PipeWrite,      ///< driver writes chunk (len a, seed b) to pipe
    PipeRead,       ///< reader drains up to a bytes (snapshotted)
    Checkpoint,     ///< sealed checkpoint of the driver enclave
    /* -- lifecycle churn (create/destroy under load; stresses grant
     *    accounting and TLB shootdown on the target's partition) -- */
    ChurnCreate,    ///< ephemeral enclave + channel beside enclave a
    ChurnDestroy,   ///< close + destroy the newest churn enclave
    /* -- attack ops (sampled from the §III-B threat model; each
     *    must be *blocked* or the security oracle fails) -- */
    AttackReplay,         ///< replay a recorded authenticated mECall
    AttackTamperArgs,     ///< modified args under a stale tag
    AttackUndeclaredCall, ///< mECall outside the manifest
    AttackSmemTamper,     ///< normal world pokes enclave a's ring
    /** TLB-shootdown TOCTOU: share a driver page with enclave a's
     *  partition, heat the peer's translation, revoke, then race a
     *  stale read through the (hopefully dead) hot entry. */
    AttackShootdownToctou,
    /** Replay a report attested under an old challenge against a
     *  verifier expecting a fresh one (challenge seed in `a`). */
    AttackStaleAttestation,
    /** Confused deputy: reuse enclave a's device DMA stream to aim
     *  a transfer at a foreign partition's memory. */
    AttackSmmuStreamReuse,
    /* -- fleet ops (cluster scenarios only: numNodes > 1; the
     *    runner executes them against a cluster::Cluster and the
     *    reference model mirrors totals + node up/down state) -- */
    FleetCall,        ///< accumulate(a) on fleet enclave `enclave`
    FleetCheckpoint,  ///< advance fleet enclave's sealed watermark
    Migrate,          ///< live-migrate enclave to node a % numNodes
    NodeKill,         ///< crash node a % numNodes (fleet re-places)
    NodeRecover,      ///< reboot node a % numNodes
    NodeDrain,        ///< evacuate node a % numNodes
};

const char *opKindName(OpKind k);

struct ScenarioOp
{
    OpKind kind = OpKind::CpuAccumulate;
    /** Target device-enclave index (ignored by driver/pipe ops). */
    uint32_t enclave = 0;
    /** Kind-specific parameters (see OpKind comments). */
    uint64_t a = 0;
    uint64_t b = 0;
    uint64_t c = 0;
};

/** One device mEnclave the scenario creates, plus its sRPC shape. */
struct EnclavePlan
{
    std::string deviceType;  ///< "gpu" | "npu"
    std::string deviceName;  ///< "gpu0", "gpu1", "npu0"
    /** gpu: floats per buffer; npu: backing-buffer bytes. */
    uint64_t elems = 16;
    /** sRPC traffic shape (ring geometry varies per scenario). */
    uint64_t slots = 8;
    uint64_t slotBytes = 4096;
};

/** One scheduled fault (maps onto inject::FaultPlan at run time). */
struct FaultSpec
{
    enum class Kind : uint32_t
    {
        Kill,           ///< panic the partition managing `victim`
        FailAccess,     ///< abort the triggering checked access
        CorruptHeader,  ///< poke ring header of channel `channel`
        SkewClock,      ///< advance virtual time by skewNs
        /** Kill the migration source (or destination, with killDst)
         *  node when the nth fleet migration reaches `stage`.
         *  Cluster scenarios only; armed via the FleetInjector. */
        MigrationKill,
    };

    Kind kind = Kind::Kill;
    uint64_t nth = 10;     ///< Nth SPM access / Nth migration
    std::string victim;    ///< Kill: device name
    uint32_t channel = 0;  ///< CorruptHeader: device-enclave index
    std::string field;     ///< CorruptHeader: "rid" | "sid"
    uint64_t value = 0;    ///< CorruptHeader: small replacement value
    SimTime skewNs = 0;    ///< SkewClock
    std::string stage;     ///< MigrationKill: "snapshot".."retire"
    bool killDst = false;  ///< MigrationKill: kill dst, not src
};

struct Scenario
{
    uint64_t seed = 0;
    /** Fleet size. 1 (the default) runs the classic single-SoC
     *  machine below; > 1 runs a cluster::Cluster of CPU-only nodes
     *  and the op list speaks the fleet dialect (FleetCall /
     *  Migrate / NodeKill / ...). */
    uint32_t numNodes = 1;
    /** Machine shape: 1 CPU partition + numGpus + (withNpu ? 1 : 0)
     *  device partitions, i.e. 1-4 partitions total. */
    uint32_t numGpus = 1;
    bool withNpu = false;
    /** SharedPipe from the driver to device enclave `pipeEnclave`. */
    bool withPipe = false;
    uint32_t pipeEnclave = 0;
    uint64_t pipeCapacity = 4096;

    std::vector<EnclavePlan> enclaves;
    std::vector<FaultSpec> faults;
    std::vector<ScenarioOp> ops;

    JsonValue toJson() const;
    static Result<Scenario> fromJson(const JsonValue &v);

    /** Parse scenario JSON text; also accepts a full trace document
     *  (uses its "scenario" member), so a failing run's trace can be
     *  replayed directly. */
    static Result<Scenario> parse(const std::string &text);

    /** Drop enclaves (and the pipe) no remaining op or fault refers
     *  to, remapping indices -- run by the shrinker so a minimal
     *  repro also has a minimal machine. */
    void normalize();
};

/** Expand @p seed into a full scenario (pure function of the seed). */
Scenario generateScenario(uint64_t seed);

/**
 * Expand @p seed into a multi-node *cluster* scenario (numNodes > 1,
 * fleet-dialect ops, MigrationKill fault schedule). A separate
 * generator -- not a mode flag on generateScenario -- so the classic
 * single-SoC corpus keeps its exact draw order seed for seed.
 */
Scenario generateClusterScenario(uint64_t seed);

/**
 * Deterministic payload chunk used by NpuWrite/PipeWrite: both the
 * runner and the reference model derive the bytes from (len, seed)
 * so they can never disagree about what was written.
 */
Bytes chunkBytes(uint64_t len, uint64_t seed);

/* Parameter clamps shared by the runner and the reference model, so
 * hand-edited repro files with out-of-range parameters stay
 * well-defined (and both sides agree on the clamping). */
inline uint64_t
gpuBufIndex(uint64_t a)
{
    return a % 3;
}

inline void
npuSpan(uint64_t elems, uint64_t a, uint64_t b, uint64_t *off,
        uint64_t *len)
{
    *off = elems ? (a % elems) : 0;
    *len = b < elems - *off ? b : elems - *off;
}

} // namespace cronus::fuzz

#endif // CRONUS_FUZZ_SCENARIO_HH
