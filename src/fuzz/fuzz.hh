/**
 * @file
 * Fuzz harness: seed -> scenario -> differential runs -> oracles.
 *
 * One fuzz iteration runs a scenario up to three ways:
 *
 *   reference  pure-CPU replay (reference.hh), the expected outputs;
 *   faulted    the real system with the fault schedule armed;
 *   baseline   the real system with faults stripped (only when the
 *              scenario has faults) -- the isolation baseline.
 *
 * and then evaluates the oracles:
 *
 *   reference  every non-tainted record matches the reference model
 *              byte-for-byte (code + output);
 *   isolation  every non-tainted record is identical (code, output,
 *              charged virtual time) between the faulted run and the
 *              fault-free baseline -- a faulted partition must not
 *              perturb healthy partitions;
 *   liveness   every non-tainted op completed Ok (attacks: blocked),
 *              and every never-faulted channel drains clean at the
 *              end of the run;
 *   security   every attack op on a non-tainted stream was blocked;
 *   audit      the InvariantAuditor saw no violations, unless a
 *              CorruptHeader fault fired (violations then expected);
 *   runner     setup succeeded (the scenario could be built at all).
 *
 * On failure the report carries the full deterministic trace and --
 * unless shrinking is disabled -- a greedily minimized repro.
 */

#ifndef CRONUS_FUZZ_FUZZ_HH
#define CRONUS_FUZZ_FUZZ_HH

#include "reference.hh"
#include "runner.hh"

namespace cronus::fuzz
{

struct FuzzOptions
{
    bool plantBug = false;
    /** Shrink failing scenarios to a minimal repro. */
    bool shrink = true;
    uint32_t maxShrinkAttempts = 400;
    /** Emit a flight-recorder dump when an oracle fails. The
     *  shrinker turns this off for its probe runs so a shrink does
     *  not spam hundreds of dumps. */
    bool dumpFlightOnFailure = true;
};

struct FuzzFailure
{
    std::string oracle;  ///< "reference", "isolation", ...
    std::string detail;
    int opIndex = -1;    ///< -1: not tied to one op
};

struct FuzzReport
{
    uint64_t seed = 0;
    bool ok = false;
    Scenario scenario;
    std::vector<FuzzFailure> failures;
    /** Trace of the faulted run (deterministic, replayable). */
    JsonValue trace;
    /** Flight-recorder snapshot taken right after the faulted run
     *  (last N trace events before/at the failure). */
    JsonValue flight;
    /** Minimal failing scenario (only when !ok and shrinking ran). */
    Scenario minimal;
    bool shrunk = false;

    /** Failure document: seed, failures, minimal repro, trace. */
    JsonValue toJson() const;
};

/** Run the oracles over @p sc. */
FuzzReport fuzzScenario(const Scenario &sc,
                        const FuzzOptions &opts = FuzzOptions());

/** Expand @p seed and fuzz it. */
FuzzReport fuzzSeed(uint64_t seed,
                    const FuzzOptions &opts = FuzzOptions());

/** The fixed seed corpus for the `swarm` ctest label. */
std::vector<uint64_t> defaultCorpus(size_t runs);

/* ---------------- differential backend oracle ---------------- */

/**
 * One scenario replayed, faults armed, on both isolation substrates
 * (TrustZone stage-2+TZASC vs. RISC-V PMP). The substrate is a pure
 * physical filter beneath the stage-2 trap semantics and charges no
 * virtual time, so the *entire* verdict -- per-op codes, blocked
 * flags, outputs, durations, taints, drains, recoveries, violations,
 * trap counts, end time -- must match field for field. Any
 * difference is a real semantic divergence between the backends.
 */
struct DiffReport
{
    uint64_t seed = 0;
    bool ok = true;
    /** Human-readable field-level mismatches (empty when ok). */
    std::vector<std::string> divergences;
    RunReport tz, pmp;
};

/** Run @p sc on both backends and compare the full verdicts. */
DiffReport diffBackends(const Scenario &sc);

} // namespace cronus::fuzz

#endif // CRONUS_FUZZ_FUZZ_HH
