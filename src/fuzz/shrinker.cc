#include "shrinker.hh"

namespace cronus::fuzz
{

namespace
{

/** Does @p sc still fail the oracles? Charges one attempt; once the
 *  budget is gone every candidate is treated as passing, which stops
 *  the shrink where it stands. */
bool
stillFails(const Scenario &sc, const FuzzOptions &opts,
           uint32_t &attempts)
{
    if (attempts >= opts.maxShrinkAttempts)
        return false;
    ++attempts;
    FuzzOptions probe = opts;
    probe.shrink = false;
    probe.dumpFlightOnFailure = false;
    return !fuzzScenario(sc, probe).ok;
}

} // namespace

ShrinkResult
shrinkScenario(const Scenario &sc, const FuzzOptions &opts)
{
    ShrinkResult res;
    Scenario cur = sc;
    uint32_t attempts = 0;

    /* ddmin-lite over the op list. */
    size_t chunk = cur.ops.size() / 2;
    if (chunk == 0)
        chunk = 1;
    while (attempts < opts.maxShrinkAttempts) {
        bool removed = false;
        size_t start = 0;
        while (start < cur.ops.size() &&
               attempts < opts.maxShrinkAttempts) {
            Scenario cand = cur;
            size_t end = std::min(start + chunk, cand.ops.size());
            cand.ops.erase(cand.ops.begin() + start,
                           cand.ops.begin() + end);
            if (stillFails(cand, opts, attempts)) {
                cur = std::move(cand);
                removed = true;  /* same start: list shifted left */
            } else {
                start = end;
            }
        }
        if (chunk > 1)
            chunk = chunk / 2;
        else if (!removed)
            break;
    }

    /* Fault events one at a time. */
    for (size_t i = 0; i < cur.faults.size();) {
        Scenario cand = cur;
        cand.faults.erase(cand.faults.begin() + i);
        if (stillFails(cand, opts, attempts))
            cur = std::move(cand);
        else
            ++i;
    }

    /* Minimal machine: drop unreferenced enclaves/pipe. */
    Scenario norm = cur;
    norm.normalize();
    if (stillFails(norm, opts, attempts))
        cur = std::move(norm);

    res.attempts = attempts + 1;
    {
        FuzzOptions probe = opts;
        probe.shrink = false;
        probe.dumpFlightOnFailure = false;
        res.stillFails = !fuzzScenario(cur, probe).ok;
    }
    res.minimal = std::move(cur);
    return res;
}

} // namespace cronus::fuzz
