#include "fuzz.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "shrinker.hh"

namespace cronus::fuzz
{

namespace
{

std::string
hexPreview(const Bytes &b)
{
    if (b.empty())
        return "(empty)";
    std::string h = hexBytes(b);
    if (h.size() > 48)
        h = h.substr(0, 48) + "...";
    return h + " (" + std::to_string(b.size()) + "B)";
}

void
addFailure(FuzzReport &rep, const std::string &oracle,
           const std::string &detail, int opIndex = -1)
{
    FuzzFailure f;
    f.oracle = oracle;
    f.detail = detail;
    f.opIndex = opIndex;
    rep.failures.push_back(std::move(f));
}

std::string
opLabel(const Scenario &sc, size_t i)
{
    std::string s = "op " + std::to_string(i);
    if (i < sc.ops.size()) {
        s += " ";
        s += opKindName(sc.ops[i].kind);
    }
    return s;
}

/** Reference + security oracles over one run's records. */
void
checkAgainstReference(const Scenario &sc, const RunReport &run,
                      const std::vector<ExpectedOp> &expected,
                      const std::string &tag, FuzzReport &rep)
{
    size_t n = std::min(run.records.size(), expected.size());
    for (size_t i = 0; i < n; ++i) {
        const OpRecord &r = run.records[i];
        const ExpectedOp &e = expected[i];
        if (r.tainted)
            continue;
        if (e.isAttack) {
            if (!r.blocked)
                addFailure(rep, "security",
                           tag + opLabel(sc, i) +
                               ": attack not blocked (code " +
                               r.code + ")",
                           static_cast<int>(i));
            continue;
        }
        if (r.code != e.code) {
            addFailure(rep, "reference",
                       tag + opLabel(sc, i) + ": code " + r.code +
                           ", expected " + e.code,
                       static_cast<int>(i));
        } else if (r.output != e.output) {
            addFailure(rep, "reference",
                       tag + opLabel(sc, i) + ": output " +
                           hexPreview(r.output) + ", expected " +
                           hexPreview(e.output),
                       static_cast<int>(i));
        }
    }
    if (run.records.size() != expected.size())
        addFailure(rep, "reference",
                   tag + "ran " +
                       std::to_string(run.records.size()) +
                       " ops, expected " +
                       std::to_string(expected.size()));
}

/** Audit oracle: auditor must stay clean unless a CorruptHeader
 *  fault actually fired in this run. */
void
checkAudit(const RunReport &run, const std::string &tag,
           FuzzReport &rep)
{
    if (run.corruptFired)
        return;
    for (const inject::Violation &v : run.violations)
        addFailure(rep, "audit",
                   tag + v.invariant + ": " + v.detail);
    if (run.violations.empty() && run.finalCheck != "Ok")
        addFailure(rep, "audit", tag + "finalCheck: " + run.finalCheck);
}

} // namespace

JsonValue
FuzzReport::toJson() const
{
    JsonObject root;
    root["schema"] = std::string("cronus-fuzz-report-v1");
    root["seed"] = static_cast<int64_t>(seed);
    root["ok"] = ok;
    JsonArray fails;
    for (const FuzzFailure &f : failures) {
        JsonObject o;
        o["oracle"] = f.oracle;
        o["detail"] = f.detail;
        if (f.opIndex >= 0)
            o["op"] = static_cast<int64_t>(f.opIndex);
        fails.push_back(std::move(o));
    }
    root["failures"] = std::move(fails);
    root["shrunk"] = shrunk;
    if (shrunk)
        root["minimal"] = minimal.toJson();
    root["trace"] = trace;
    if (!flight.isNull())
        root["flight"] = flight;
    return root;
}

FuzzReport
fuzzScenario(const Scenario &sc, const FuzzOptions &opts)
{
    FuzzReport rep;
    rep.seed = sc.seed;
    rep.scenario = sc;

    std::vector<ExpectedOp> expected = referenceRun(sc);

    RunOptions fopts;
    fopts.withFaults = true;
    fopts.plantBug = opts.plantBug;
    RunReport faulted = runScenario(sc, fopts);
    rep.trace = faulted.toJson(sc, fopts);
    /* Snapshot the flight ring now, before the baseline run (and
     * any shrink probes) overwrite it with their own events. */
    rep.flight = obs::Tracer::instance().flightJson();

    if (!faulted.setupOk) {
        addFailure(rep, "runner",
                   "setup failed: " + faulted.setupError);
    } else {
        checkAgainstReference(sc, faulted, expected, "", rep);
        checkAudit(faulted, "", rep);
        /* Migration convergence: every cross-node migration --
         * including one whose window a node kill landed in -- must
         * end with exactly one live copy (source XOR destination).
         * Unlike the reference oracle this is checked on tainted
         * records too; it is the fleet's crash-safety contract. */
        if (!faulted.migrationConsistent) {
            std::string detail;
            for (const std::string &m : faulted.migrationOutcomes)
                detail += " [" + m + "]";
            addFailure(rep, "migration",
                       "migration-window convergence violated:" +
                           detail);
        }
        /* Liveness: every never-faulted channel drains clean. */
        for (size_t i = 0; i < faulted.finalDrain.size(); ++i) {
            bool tainted = i < faulted.enclaveTainted.size() &&
                           faulted.enclaveTainted[i];
            if (!tainted && faulted.finalDrain[i] != "Ok")
                addFailure(rep, "liveness",
                           "enclave " + std::to_string(i) +
                               " final drain: " +
                               faulted.finalDrain[i]);
        }
        /* Supervised recovery is the expected path for a killed
         * partition: it either completes ("recovered") or
         * deterministically quarantines ("gave-up"). A "faulted:"
         * outcome means a planned fault landed on the recovery
         * traffic itself -- perturbed, not a machinery bug. Only a
         * plain "failed:" means the recovery machinery broke. */
        for (size_t i = 0; i < faulted.enclaveRecovery.size(); ++i) {
            const std::string &out = faulted.enclaveRecovery[i];
            if (out.rfind("failed:", 0) == 0)
                addFailure(rep, "liveness",
                           "enclave " + std::to_string(i) +
                               " supervised recovery " + out);
        }
    }

    /* Differential baseline: same scenario, faults stripped. A fault
     * must not change anything outside its taint frontier. */
    if (faulted.setupOk && !sc.faults.empty()) {
        RunOptions bopts;
        bopts.withFaults = false;
        bopts.plantBug = opts.plantBug;
        RunReport baseline = runScenario(sc, bopts);
        if (!baseline.setupOk) {
            addFailure(rep, "runner",
                       "baseline setup failed: " +
                           baseline.setupError);
        } else {
            checkAgainstReference(sc, baseline, expected,
                                  "baseline: ", rep);
            checkAudit(baseline, "baseline: ", rep);
            if (!baseline.migrationConsistent) {
                std::string detail;
                for (const std::string &m :
                     baseline.migrationOutcomes)
                    detail += " [" + m + "]";
                addFailure(rep, "migration",
                           "baseline: migration-window convergence "
                           "violated:" +
                               detail);
            }
            size_t n = std::min(faulted.records.size(),
                                baseline.records.size());
            for (size_t i = 0; i < n; ++i) {
                const OpRecord &r1 = faulted.records[i];
                const OpRecord &r0 = baseline.records[i];
                if (r1.tainted)
                    continue;
                if (r1.code != r0.code || r1.blocked != r0.blocked ||
                    r1.output != r0.output) {
                    addFailure(rep, "isolation",
                               opLabel(sc, i) +
                                   ": faulted run diverged from "
                                   "fault-free baseline (code " +
                                   r1.code + " vs " + r0.code + ")",
                               static_cast<int>(i));
                } else if (!r1.timeTainted && r1.durNs != r0.durNs) {
                    addFailure(rep, "isolation",
                               opLabel(sc, i) +
                                   ": virtual-time divergence (" +
                                   std::to_string(r1.durNs) +
                                   " vs " +
                                   std::to_string(r0.durNs) +
                                   " ns)",
                               static_cast<int>(i));
                }
            }
        }
    }

    rep.ok = rep.failures.empty();
    if (!rep.ok && opts.dumpFlightOnFailure) {
        obs::Tracer::instance().dumpFlight(
            "fuzz oracle failure: seed " + std::to_string(sc.seed) +
                ", " + rep.failures.front().oracle,
            rep.flight);
    }
    rep.minimal = sc;
    if (!rep.ok && opts.shrink) {
        ShrinkResult s = shrinkScenario(sc, opts);
        if (s.stillFails) {
            rep.minimal = std::move(s.minimal);
            rep.shrunk = true;
        }
    }
    return rep;
}

FuzzReport
fuzzSeed(uint64_t seed, const FuzzOptions &opts)
{
    return fuzzScenario(generateScenario(seed), opts);
}

std::vector<uint64_t>
defaultCorpus(size_t runs)
{
    std::vector<uint64_t> seeds;
    seeds.reserve(runs);
    for (size_t i = 0; i < runs; ++i)
        seeds.push_back(i + 1);
    return seeds;
}

/* ---------------- differential backend oracle ---------------- */

namespace
{

void
diverge(DiffReport &rep, const std::string &what,
        const std::string &tz_val, const std::string &pmp_val)
{
    rep.ok = false;
    rep.divergences.push_back(what + ": tz=" + tz_val +
                              " pmp=" + pmp_val);
}

template <typename T>
void
diffField(DiffReport &rep, const std::string &what, const T &tz_val,
          const T &pmp_val)
{
    if (tz_val != pmp_val)
        diverge(rep, what, std::to_string(tz_val),
                std::to_string(pmp_val));
}

void
diffField(DiffReport &rep, const std::string &what,
          const std::string &tz_val, const std::string &pmp_val)
{
    if (tz_val != pmp_val)
        diverge(rep, what, tz_val, pmp_val);
}

} // namespace

DiffReport
diffBackends(const Scenario &sc)
{
    DiffReport rep;
    rep.seed = sc.seed;

    RunOptions opts;
    opts.withFaults = true;
    opts.backend = tee::BackendSelect::Tz;
    rep.tz = runScenario(sc, opts);
    opts.backend = tee::BackendSelect::Pmp;
    rep.pmp = runScenario(sc, opts);
    const RunReport &a = rep.tz;
    const RunReport &b = rep.pmp;

    diffField(rep, "setup_ok", a.setupOk, b.setupOk);
    diffField(rep, "setup_error", a.setupError, b.setupError);
    if (!a.setupOk || !b.setupOk)
        return rep;

    diffField(rep, "op count", a.records.size(), b.records.size());
    size_t n = std::min(a.records.size(), b.records.size());
    for (size_t i = 0; i < n; ++i) {
        const OpRecord &ra = a.records[i];
        const OpRecord &rb = b.records[i];
        std::string tag = opLabel(sc, i);
        diffField(rep, tag + " code", ra.code, rb.code);
        diffField(rep, tag + " blocked", ra.blocked, rb.blocked);
        diffField(rep, tag + " tainted", ra.tainted, rb.tainted);
        diffField(rep, tag + " time_tainted", ra.timeTainted,
                  rb.timeTainted);
        if (ra.output != rb.output)
            diverge(rep, tag + " output", hexPreview(ra.output),
                    hexPreview(rb.output));
        diffField(rep, tag + " dur_ns", ra.durNs, rb.durNs);
    }

    diffField(rep, "final_drain count", a.finalDrain.size(),
              b.finalDrain.size());
    for (size_t i = 0;
         i < std::min(a.finalDrain.size(), b.finalDrain.size()); ++i)
        diffField(rep, "final_drain " + std::to_string(i),
                  a.finalDrain[i], b.finalDrain[i]);

    diffField(rep, "recovery count", a.enclaveRecovery.size(),
              b.enclaveRecovery.size());
    for (size_t i = 0; i < std::min(a.enclaveRecovery.size(),
                                    b.enclaveRecovery.size());
         ++i)
        diffField(rep, "recovery " + std::to_string(i),
                  a.enclaveRecovery[i], b.enclaveRecovery[i]);

    diffField(rep, "enclave_tainted count", a.enclaveTainted.size(),
              b.enclaveTainted.size());
    for (size_t i = 0; i < std::min(a.enclaveTainted.size(),
                                    b.enclaveTainted.size());
         ++i)
        diffField(rep, "enclave_tainted " + std::to_string(i),
                  a.enclaveTainted[i], b.enclaveTainted[i]);
    diffField(rep, "driver_tainted", a.driverTainted,
              b.driverTainted);
    diffField(rep, "pipe_tainted", a.pipeTainted, b.pipeTainted);
    diffField(rep, "corrupt_fired", a.corruptFired, b.corruptFired);

    diffField(rep, "faults fired", a.faultsFired.size(),
              b.faultsFired.size());
    for (size_t i = 0; i < std::min(a.faultsFired.size(),
                                    b.faultsFired.size());
         ++i) {
        std::string tag = "fault " + std::to_string(i);
        diffField(rep, tag + " event", a.faultsFired[i].eventId,
                  b.faultsFired[i].eventId);
        diffField(rep, tag + " seq", a.faultsFired[i].seq,
                  b.faultsFired[i].seq);
    }

    diffField(rep, "violations", a.violations.size(),
              b.violations.size());
    /* Fleet verdict: migration audits must agree attempt-for-attempt
     * across isolation substrates, outcome and liveness bits alike. */
    diffField(rep, "migration count", a.migrationOutcomes.size(),
              b.migrationOutcomes.size());
    for (size_t i = 0; i < std::min(a.migrationOutcomes.size(),
                                    b.migrationOutcomes.size());
         ++i)
        diffField(rep, "migration " + std::to_string(i),
                  a.migrationOutcomes[i], b.migrationOutcomes[i]);
    diffField(rep, "migration_consistent", a.migrationConsistent,
              b.migrationConsistent);
    diffField(rep, "final_check", a.finalCheck, b.finalCheck);
    diffField(rep, "trap_count", a.trapCount, b.trapCount);
    diffField(rep, "end_time_ns", a.endTimeNs, b.endTimeNs);
    return rep;
}

} // namespace cronus::fuzz
