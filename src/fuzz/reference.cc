#include "reference.hh"

#include <cstring>
#include <deque>

#include "hw/types.hh"

namespace cronus::fuzz
{

namespace
{

Bytes
floatsToBytes(const std::vector<float> &v)
{
    Bytes out(v.size() * sizeof(float));
    std::memcpy(out.data(), v.data(), out.size());
    return out;
}

Bytes
u64Output(uint64_t v)
{
    ByteWriter w;
    w.putU64(v);
    return w.take();
}

struct GpuModel
{
    std::vector<float> buf[3];
};

} // namespace

std::vector<ExpectedOp>
referenceRun(const Scenario &sc)
{
    /* Per-enclave state, zero-initialized like the real devices
     * (VRAM and NPU buffers are scrubbed allocations). */
    std::vector<GpuModel> gpus(sc.enclaves.size());
    std::vector<Bytes> npus(sc.enclaves.size());
    for (size_t i = 0; i < sc.enclaves.size(); ++i) {
        if (sc.enclaves[i].deviceType == "gpu") {
            for (auto &b : gpus[i].buf)
                b.assign(sc.enclaves[i].elems, 0.0f);
        } else {
            npus[i].assign(sc.enclaves[i].elems, 0);
        }
    }

    uint64_t driverTotal = 0;

    /* Churn enclaves per plan index: the runner reports the live
     * count after each create/destroy, so a leaked or double-freed
     * churn enclave shows up as an output mismatch. */
    std::vector<uint64_t> churnLive(sc.enclaves.size(), 0);

    /* Pipe: same effective capacity as SharedPipe::setup, which
     * page-aligns header + capacity and gives the remainder to
     * data. */
    uint64_t pipeCap = 0;
    if (sc.withPipe)
        pipeCap = hw::pageAlignUp(0x40 + sc.pipeCapacity) - 0x40;
    std::deque<uint8_t> pipeFifo;

    std::vector<ExpectedOp> out;
    out.reserve(sc.ops.size());
    auto validFor = [&sc](const ScenarioOp &op,
                          const char *type) {
        return op.enclave < sc.enclaves.size() &&
               sc.enclaves[op.enclave].deviceType == type;
    };

    for (const ScenarioOp &op : sc.ops) {
        ExpectedOp exp;
        bool valid = true;
        switch (op.kind) {
          case OpKind::GpuFill:
          case OpKind::GpuVecAdd:
          case OpKind::GpuSaxpy:
          case OpKind::GpuDrain:
          case OpKind::GpuReadback:
            valid = validFor(op, "gpu");
            break;
          case OpKind::NpuWrite:
          case OpKind::NpuReadback:
            valid = validFor(op, "npu");
            break;
          case OpKind::Checkpoint:
          case OpKind::ChurnCreate:
          case OpKind::ChurnDestroy:
            valid = op.enclave < sc.enclaves.size();
            break;
          default:
            break;
        }
        switch (op.kind) {
          case OpKind::CpuAccumulate:
            driverTotal += op.a;
            exp.output = u64Output(driverTotal);
            break;
          case OpKind::GpuFill: {
            if (!valid)
                break;
            auto &b = gpus[op.enclave].buf[gpuBufIndex(op.a)];
            std::fill(b.begin(), b.end(),
                      static_cast<float>(op.b));
            break;
          }
          case OpKind::GpuVecAdd: {
            if (!valid)
                break;
            GpuModel &g = gpus[op.enclave];
            for (size_t i = 0; i < g.buf[2].size(); ++i)
                g.buf[2][i] = g.buf[0][i] + g.buf[1][i];
            break;
          }
          case OpKind::GpuSaxpy: {
            if (!valid)
                break;
            GpuModel &g = gpus[op.enclave];
            float a = static_cast<float>(op.b);
            for (size_t i = 0; i < g.buf[1].size(); ++i)
                g.buf[1][i] += a * g.buf[0][i];
            break;
          }
          case OpKind::GpuDrain:
            break;
          case OpKind::GpuReadback:
            if (valid)
                exp.output = floatsToBytes(
                    gpus[op.enclave].buf[gpuBufIndex(op.a)]);
            break;
          case OpKind::NpuWrite: {
            if (!valid)
                break;
            uint64_t off = 0, len = 0;
            npuSpan(sc.enclaves[op.enclave].elems, op.a, op.b, &off,
                    &len);
            Bytes chunk = chunkBytes(len, op.c);
            std::copy(chunk.begin(), chunk.end(),
                      npus[op.enclave].begin() + off);
            break;
          }
          case OpKind::NpuReadback:
            if (valid)
                exp.output = npus[op.enclave];
            break;
          case OpKind::PipeWrite: {
            if (!sc.withPipe) {
                exp.code = "InvalidState";
                break;
            }
            Bytes chunk = chunkBytes(op.a, op.b);
            uint64_t room = pipeCap - pipeFifo.size();
            uint64_t n = std::min<uint64_t>(room, chunk.size());
            pipeFifo.insert(pipeFifo.end(), chunk.begin(),
                            chunk.begin() + n);
            exp.output = u64Output(n);
            break;
          }
          case OpKind::PipeRead: {
            if (!sc.withPipe) {
                exp.code = "InvalidState";
                break;
            }
            uint64_t n =
                std::min<uint64_t>(op.a, pipeFifo.size());
            exp.output.assign(pipeFifo.begin(),
                              pipeFifo.begin() + n);
            pipeFifo.erase(pipeFifo.begin(), pipeFifo.begin() + n);
            break;
          }
          case OpKind::Checkpoint:
            /* Status-only op (sealed bytes are key-dependent). */
            break;
          case OpKind::ChurnCreate:
            if (!valid)
                break;
            exp.output = u64Output(++churnLive[op.enclave]);
            break;
          case OpKind::ChurnDestroy:
            if (!valid)
                break;
            if (churnLive[op.enclave] == 0) {
                exp.code = "InvalidState";
                break;
            }
            exp.output = u64Output(--churnLive[op.enclave]);
            break;
          case OpKind::AttackReplay:
          case OpKind::AttackTamperArgs:
          case OpKind::AttackUndeclaredCall:
          case OpKind::AttackSmemTamper:
          case OpKind::AttackShootdownToctou:
          case OpKind::AttackStaleAttestation:
          case OpKind::AttackSmmuStreamReuse:
            exp.isAttack = true;
            break;
        }
        out.push_back(std::move(exp));
    }
    return out;
}

} // namespace cronus::fuzz
