#include "reference.hh"

#include <cstring>
#include <deque>

#include "hw/types.hh"

namespace cronus::fuzz
{

namespace
{

Bytes
floatsToBytes(const std::vector<float> &v)
{
    Bytes out(v.size() * sizeof(float));
    std::memcpy(out.data(), v.data(), out.size());
    return out;
}

Bytes
u64Output(uint64_t v)
{
    ByteWriter w;
    w.putU64(v);
    return w.take();
}

struct GpuModel
{
    std::vector<float> buf[3];
};

/**
 * Fleet-aware reference model for cluster scenarios. Mirrors the
 * observables of the fault-free fleet: per-enclave accumulate
 * totals (which survive migration and node loss by construction --
 * watermark + journal replay), plus the node up/down set needed to
 * predict lifecycle op codes (killNode's last-usable-node refusal,
 * migrate to a Down destination, drain of the last usable node).
 * Quarantine never occurs fault-free, so it is not modelled; the
 * runner taints lifecycle records once a fleet fault has fired.
 */
std::vector<ExpectedOp>
clusterReferenceRun(const Scenario &sc)
{
    const size_t count = sc.enclaves.size();
    std::vector<uint64_t> totals(count, 0);
    std::vector<bool> down(sc.numNodes, false);

    auto upNodes = [&] {
        uint32_t up = 0;
        for (bool d : down)
            up += d ? 0 : 1;
        return up;
    };

    std::vector<ExpectedOp> out;
    out.reserve(sc.ops.size());
    for (const ScenarioOp &op : sc.ops) {
        ExpectedOp exp;
        size_t e = count ? op.enclave % count : 0;
        uint32_t node = sc.numNodes
                            ? static_cast<uint32_t>(op.a) %
                                  sc.numNodes
                            : 0;
        switch (op.kind) {
          case OpKind::FleetCall:
            if (count == 0) {
                exp.code = "InvalidArgument";
                break;
            }
            totals[e] += op.a;
            exp.output = u64Output(totals[e]);
            break;
          case OpKind::FleetCheckpoint:
            if (count == 0)
                exp.code = "InvalidArgument";
            break;
          case OpKind::Migrate:
            if (count == 0)
                exp.code = "InvalidArgument";
            else if (down[node])
                /* Snapshot-stage abort: destination not placeable. */
                exp.code = "InvalidState";
            break;
          case OpKind::NodeKill:
            if (down[node])
                break;  /* idempotent Ok */
            if (upNodes() <= 1) {
                exp.code = "InvalidState";
                break;
            }
            down[node] = true;
            break;
          case OpKind::NodeRecover:
            down[node] = false;
            break;
          case OpKind::NodeDrain:
            if (!down[node] && upNodes() <= 1)
                exp.code = "InvalidState";
            break;
          default:
            /* Non-fleet kinds are inert in the fleet dialect; the
             * runner reports them Unsupported. */
            exp.code = "Unsupported";
            break;
        }
        out.push_back(std::move(exp));
    }
    return out;
}

} // namespace

std::vector<ExpectedOp>
referenceRun(const Scenario &sc)
{
    if (sc.numNodes > 1)
        return clusterReferenceRun(sc);
    /* Per-enclave state, zero-initialized like the real devices
     * (VRAM and NPU buffers are scrubbed allocations). */
    std::vector<GpuModel> gpus(sc.enclaves.size());
    std::vector<Bytes> npus(sc.enclaves.size());
    for (size_t i = 0; i < sc.enclaves.size(); ++i) {
        if (sc.enclaves[i].deviceType == "gpu") {
            for (auto &b : gpus[i].buf)
                b.assign(sc.enclaves[i].elems, 0.0f);
        } else {
            npus[i].assign(sc.enclaves[i].elems, 0);
        }
    }

    uint64_t driverTotal = 0;

    /* Churn enclaves per plan index: the runner reports the live
     * count after each create/destroy, so a leaked or double-freed
     * churn enclave shows up as an output mismatch. */
    std::vector<uint64_t> churnLive(sc.enclaves.size(), 0);

    /* Pipe: same effective capacity as SharedPipe::setup, which
     * page-aligns header + capacity and gives the remainder to
     * data. */
    uint64_t pipeCap = 0;
    if (sc.withPipe)
        pipeCap = hw::pageAlignUp(0x40 + sc.pipeCapacity) - 0x40;
    std::deque<uint8_t> pipeFifo;

    std::vector<ExpectedOp> out;
    out.reserve(sc.ops.size());
    auto validFor = [&sc](const ScenarioOp &op,
                          const char *type) {
        return op.enclave < sc.enclaves.size() &&
               sc.enclaves[op.enclave].deviceType == type;
    };

    for (const ScenarioOp &op : sc.ops) {
        ExpectedOp exp;
        bool valid = true;
        switch (op.kind) {
          case OpKind::GpuFill:
          case OpKind::GpuVecAdd:
          case OpKind::GpuSaxpy:
          case OpKind::GpuDrain:
          case OpKind::GpuReadback:
            valid = validFor(op, "gpu");
            break;
          case OpKind::NpuWrite:
          case OpKind::NpuReadback:
            valid = validFor(op, "npu");
            break;
          case OpKind::Checkpoint:
          case OpKind::ChurnCreate:
          case OpKind::ChurnDestroy:
            valid = op.enclave < sc.enclaves.size();
            break;
          default:
            break;
        }
        switch (op.kind) {
          case OpKind::CpuAccumulate:
            driverTotal += op.a;
            exp.output = u64Output(driverTotal);
            break;
          case OpKind::GpuFill: {
            if (!valid)
                break;
            auto &b = gpus[op.enclave].buf[gpuBufIndex(op.a)];
            std::fill(b.begin(), b.end(),
                      static_cast<float>(op.b));
            break;
          }
          case OpKind::GpuVecAdd: {
            if (!valid)
                break;
            GpuModel &g = gpus[op.enclave];
            for (size_t i = 0; i < g.buf[2].size(); ++i)
                g.buf[2][i] = g.buf[0][i] + g.buf[1][i];
            break;
          }
          case OpKind::GpuSaxpy: {
            if (!valid)
                break;
            GpuModel &g = gpus[op.enclave];
            float a = static_cast<float>(op.b);
            for (size_t i = 0; i < g.buf[1].size(); ++i)
                g.buf[1][i] += a * g.buf[0][i];
            break;
          }
          case OpKind::GpuDrain:
            break;
          case OpKind::GpuReadback:
            if (valid)
                exp.output = floatsToBytes(
                    gpus[op.enclave].buf[gpuBufIndex(op.a)]);
            break;
          case OpKind::NpuWrite: {
            if (!valid)
                break;
            uint64_t off = 0, len = 0;
            npuSpan(sc.enclaves[op.enclave].elems, op.a, op.b, &off,
                    &len);
            Bytes chunk = chunkBytes(len, op.c);
            std::copy(chunk.begin(), chunk.end(),
                      npus[op.enclave].begin() + off);
            break;
          }
          case OpKind::NpuReadback:
            if (valid)
                exp.output = npus[op.enclave];
            break;
          case OpKind::PipeWrite: {
            if (!sc.withPipe) {
                exp.code = "InvalidState";
                break;
            }
            Bytes chunk = chunkBytes(op.a, op.b);
            uint64_t room = pipeCap - pipeFifo.size();
            uint64_t n = std::min<uint64_t>(room, chunk.size());
            pipeFifo.insert(pipeFifo.end(), chunk.begin(),
                            chunk.begin() + n);
            exp.output = u64Output(n);
            break;
          }
          case OpKind::PipeRead: {
            if (!sc.withPipe) {
                exp.code = "InvalidState";
                break;
            }
            uint64_t n =
                std::min<uint64_t>(op.a, pipeFifo.size());
            exp.output.assign(pipeFifo.begin(),
                              pipeFifo.begin() + n);
            pipeFifo.erase(pipeFifo.begin(), pipeFifo.begin() + n);
            break;
          }
          case OpKind::Checkpoint:
            /* Status-only op (sealed bytes are key-dependent). */
            break;
          case OpKind::ChurnCreate:
            if (!valid)
                break;
            exp.output = u64Output(++churnLive[op.enclave]);
            break;
          case OpKind::ChurnDestroy:
            if (!valid)
                break;
            if (churnLive[op.enclave] == 0) {
                exp.code = "InvalidState";
                break;
            }
            exp.output = u64Output(--churnLive[op.enclave]);
            break;
          case OpKind::AttackReplay:
          case OpKind::AttackTamperArgs:
          case OpKind::AttackUndeclaredCall:
          case OpKind::AttackSmemTamper:
          case OpKind::AttackShootdownToctou:
          case OpKind::AttackStaleAttestation:
          case OpKind::AttackSmmuStreamReuse:
            exp.isAttack = true;
            break;
          case OpKind::FleetCall:
          case OpKind::FleetCheckpoint:
          case OpKind::Migrate:
          case OpKind::NodeKill:
          case OpKind::NodeRecover:
          case OpKind::NodeDrain:
            /* Fleet ops in a single-node scenario: unsupported. */
            exp.code = "Unsupported";
            break;
        }
        out.push_back(std::move(exp));
    }
    return out;
}

} // namespace cronus::fuzz
