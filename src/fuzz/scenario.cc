#include "scenario.hh"

#include "base/rng.hh"

namespace cronus::fuzz
{

namespace
{

struct OpKindEntry
{
    OpKind kind;
    const char *name;
};

const OpKindEntry kOpKinds[] = {
    {OpKind::CpuAccumulate, "cpu_accumulate"},
    {OpKind::GpuFill, "gpu_fill"},
    {OpKind::GpuVecAdd, "gpu_vec_add"},
    {OpKind::GpuSaxpy, "gpu_saxpy"},
    {OpKind::GpuDrain, "gpu_drain"},
    {OpKind::GpuReadback, "gpu_readback"},
    {OpKind::NpuWrite, "npu_write"},
    {OpKind::NpuReadback, "npu_readback"},
    {OpKind::PipeWrite, "pipe_write"},
    {OpKind::PipeRead, "pipe_read"},
    {OpKind::Checkpoint, "checkpoint"},
    {OpKind::ChurnCreate, "churn_create"},
    {OpKind::ChurnDestroy, "churn_destroy"},
    {OpKind::AttackReplay, "attack_replay"},
    {OpKind::AttackTamperArgs, "attack_tamper_args"},
    {OpKind::AttackUndeclaredCall, "attack_undeclared_call"},
    {OpKind::AttackSmemTamper, "attack_smem_tamper"},
    {OpKind::AttackShootdownToctou, "attack_shootdown_toctou"},
    {OpKind::AttackStaleAttestation, "attack_stale_attestation"},
    {OpKind::AttackSmmuStreamReuse, "attack_smmu_stream_reuse"},
    {OpKind::FleetCall, "fleet_call"},
    {OpKind::FleetCheckpoint, "fleet_checkpoint"},
    {OpKind::Migrate, "migrate"},
    {OpKind::NodeKill, "node_kill"},
    {OpKind::NodeRecover, "node_recover"},
    {OpKind::NodeDrain, "node_drain"},
};

const char *
faultKindName(FaultSpec::Kind k)
{
    switch (k) {
      case FaultSpec::Kind::Kill: return "kill";
      case FaultSpec::Kind::FailAccess: return "fail_access";
      case FaultSpec::Kind::CorruptHeader: return "corrupt_header";
      case FaultSpec::Kind::SkewClock: return "skew_clock";
      case FaultSpec::Kind::MigrationKill: return "migration_kill";
    }
    return "?";
}

Result<FaultSpec::Kind>
faultKindFromName(const std::string &name)
{
    if (name == "kill")
        return FaultSpec::Kind::Kill;
    if (name == "fail_access")
        return FaultSpec::Kind::FailAccess;
    if (name == "corrupt_header")
        return FaultSpec::Kind::CorruptHeader;
    if (name == "skew_clock")
        return FaultSpec::Kind::SkewClock;
    if (name == "migration_kill")
        return FaultSpec::Kind::MigrationKill;
    return Status(ErrorCode::InvalidArgument,
                  "unknown fault kind '" + name + "'");
}

Result<OpKind>
opKindFromName(const std::string &name)
{
    for (const auto &entry : kOpKinds) {
        if (name == entry.name)
            return entry.kind;
    }
    return Status(ErrorCode::InvalidArgument,
                  "unknown op kind '" + name + "'");
}

bool
opTargetsEnclave(OpKind k)
{
    switch (k) {
      case OpKind::GpuFill:
      case OpKind::GpuVecAdd:
      case OpKind::GpuSaxpy:
      case OpKind::GpuDrain:
      case OpKind::GpuReadback:
      case OpKind::NpuWrite:
      case OpKind::NpuReadback:
      case OpKind::ChurnCreate:
      case OpKind::ChurnDestroy:
      case OpKind::AttackSmemTamper:
      case OpKind::AttackShootdownToctou:
      case OpKind::AttackSmmuStreamReuse:
      case OpKind::FleetCall:
      case OpKind::FleetCheckpoint:
      case OpKind::Migrate:
        return true;
      default:
        return false;
    }
}

bool
opUsesPipe(OpKind k)
{
    return k == OpKind::PipeWrite || k == OpKind::PipeRead;
}

} // namespace

const char *
opKindName(OpKind k)
{
    for (const auto &entry : kOpKinds) {
        if (entry.kind == k)
            return entry.name;
    }
    return "?";
}

Bytes
chunkBytes(uint64_t len, uint64_t seed)
{
    Rng rng(seed ^ 0xc4a9b6d2e1f08357ULL);
    Bytes out(len);
    rng.fill(out);
    return out;
}

/* ------------------------------------------------------------------ */
/* Generation                                                          */
/* ------------------------------------------------------------------ */

Scenario
generateScenario(uint64_t seed)
{
    Rng rng(seed ^ 0x5ce4a81fb0d9c237ULL);
    Scenario s;
    s.seed = seed;

    /* Machine shape: 1-4 partitions. */
    s.numGpus = static_cast<uint32_t>(rng.nextBelow(3));
    s.withNpu = rng.nextBelow(2) == 1;

    /* One device enclave per present device, with high probability
     * (a device may sit idle -- partitions without workloads are a
     * scenario too). */
    for (uint32_t g = 0; g < s.numGpus; ++g) {
        if (rng.nextBelow(10) < 8) {
            EnclavePlan plan;
            plan.deviceType = "gpu";
            plan.deviceName = "gpu" + std::to_string(g);
            plan.elems = 8ull << rng.nextBelow(3);  /* 8/16/32 */
            plan.slots = 2ull << rng.nextBelow(3);  /* 2/4/8 */
            plan.slotBytes = 1024ull << rng.nextBelow(2);
            s.enclaves.push_back(plan);
        }
    }
    if (s.withNpu && rng.nextBelow(10) < 8) {
        EnclavePlan plan;
        plan.deviceType = "npu";
        plan.deviceName = "npu0";
        plan.elems = 64 + 32 * rng.nextBelow(5);  /* 64..192 bytes */
        plan.slots = 2ull << rng.nextBelow(3);
        plan.slotBytes = 1024ull << rng.nextBelow(2);
        s.enclaves.push_back(plan);
    }

    if (!s.enclaves.empty() && rng.nextBelow(2) == 1) {
        s.withPipe = true;
        s.pipeEnclave =
            static_cast<uint32_t>(rng.nextBelow(s.enclaves.size()));
        s.pipeCapacity = 4096;
    }

    /* Fault schedule: 0-2 events over the checked-access stream. */
    uint64_t fault_count = rng.nextBelow(3);
    for (uint64_t i = 0; i < fault_count; ++i) {
        FaultSpec f;
        f.nth = 10 + rng.nextBelow(140);
        uint64_t roll = rng.nextBelow(100);
        if (roll < 40 && !s.enclaves.empty()) {
            f.kind = FaultSpec::Kind::Kill;
            f.victim =
                s.enclaves[rng.nextBelow(s.enclaves.size())]
                    .deviceName;
        } else if (roll < 65) {
            f.kind = FaultSpec::Kind::FailAccess;
        } else if (roll < 85 && !s.enclaves.empty()) {
            f.kind = FaultSpec::Kind::CorruptHeader;
            f.channel = static_cast<uint32_t>(
                rng.nextBelow(s.enclaves.size()));
            f.field = rng.nextBelow(2) == 0 ? "rid" : "sid";
            f.value = rng.nextBelow(32);
        } else {
            f.kind = FaultSpec::Kind::SkewClock;
            f.skewNs = (1 + rng.nextBelow(100)) * 10 * kNsPerUs;
        }
        s.faults.push_back(f);
    }

    /* Operation list, drawn from the kinds this machine supports. */
    std::vector<uint32_t> gpus, npus;
    for (uint32_t i = 0; i < s.enclaves.size(); ++i) {
        if (s.enclaves[i].deviceType == "gpu")
            gpus.push_back(i);
        else
            npus.push_back(i);
    }
    struct Weighted
    {
        OpKind kind;
        uint32_t weight;
    };
    std::vector<Weighted> menu = {
        {OpKind::CpuAccumulate, 4},
        {OpKind::Checkpoint, 1},
        {OpKind::AttackReplay, 1},
        {OpKind::AttackTamperArgs, 1},
        {OpKind::AttackUndeclaredCall, 1},
        {OpKind::AttackStaleAttestation, 1},
    };
    if (!gpus.empty()) {
        menu.push_back({OpKind::GpuFill, 5});
        menu.push_back({OpKind::GpuVecAdd, 3});
        menu.push_back({OpKind::GpuSaxpy, 2});
        menu.push_back({OpKind::GpuDrain, 2});
        menu.push_back({OpKind::GpuReadback, 5});
    }
    if (!npus.empty()) {
        menu.push_back({OpKind::NpuWrite, 3});
        menu.push_back({OpKind::NpuReadback, 3});
    }
    if (!s.enclaves.empty()) {
        menu.push_back({OpKind::ChurnCreate, 2});
        menu.push_back({OpKind::ChurnDestroy, 2});
        menu.push_back({OpKind::AttackSmemTamper, 1});
        menu.push_back({OpKind::AttackShootdownToctou, 1});
        menu.push_back({OpKind::AttackSmmuStreamReuse, 1});
    }
    if (s.withPipe) {
        menu.push_back({OpKind::PipeWrite, 2});
        menu.push_back({OpKind::PipeRead, 2});
    }
    uint32_t total_weight = 0;
    for (const auto &w : menu)
        total_weight += w.weight;

    uint64_t op_count = 6 + rng.nextBelow(25);
    for (uint64_t i = 0; i < op_count; ++i) {
        uint64_t roll = rng.nextBelow(total_weight);
        OpKind kind = menu.back().kind;
        for (const auto &w : menu) {
            if (roll < w.weight) {
                kind = w.kind;
                break;
            }
            roll -= w.weight;
        }

        ScenarioOp op;
        op.kind = kind;
        switch (kind) {
          case OpKind::CpuAccumulate:
            op.a = 1 + rng.nextBelow(100);
            break;
          case OpKind::GpuFill:
            op.enclave = gpus[rng.nextBelow(gpus.size())];
            op.a = rng.nextBelow(3);
            op.b = 1 + rng.nextBelow(7);
            break;
          case OpKind::GpuVecAdd:
            op.enclave = gpus[rng.nextBelow(gpus.size())];
            break;
          case OpKind::GpuSaxpy:
            op.enclave = gpus[rng.nextBelow(gpus.size())];
            op.b = 1 + rng.nextBelow(3);
            break;
          case OpKind::GpuDrain:
          case OpKind::GpuReadback:
            op.enclave = gpus[rng.nextBelow(gpus.size())];
            if (kind == OpKind::GpuReadback)
                op.a = rng.nextBelow(3);
            break;
          case OpKind::NpuWrite: {
            op.enclave = npus[rng.nextBelow(npus.size())];
            uint64_t cap = s.enclaves[op.enclave].elems;
            op.b = 8 + rng.nextBelow(25);      /* len 8..32 */
            op.a = rng.nextBelow(cap - op.b + 1);  /* offset */
            op.c = rng.next();                 /* payload seed */
            break;
          }
          case OpKind::NpuReadback:
            op.enclave = npus[rng.nextBelow(npus.size())];
            break;
          case OpKind::PipeWrite:
            op.a = 8 + rng.nextBelow(57);  /* len 8..64 */
            op.b = rng.next();             /* payload seed */
            break;
          case OpKind::PipeRead:
            op.a = 8 + rng.nextBelow(120);
            break;
          case OpKind::ChurnCreate:
          case OpKind::ChurnDestroy:
          case OpKind::AttackSmemTamper:
          case OpKind::AttackShootdownToctou:
          case OpKind::AttackSmmuStreamReuse:
            op.enclave = static_cast<uint32_t>(
                rng.nextBelow(s.enclaves.size()));
            break;
          case OpKind::AttackStaleAttestation:
            op.a = 1 + rng.nextBelow(1u << 20);  /* challenge seed */
            break;
          case OpKind::Checkpoint:
          case OpKind::AttackReplay:
          case OpKind::AttackTamperArgs:
          case OpKind::AttackUndeclaredCall:
            break;
          default:
            /* Fleet kinds are never on the single-SoC menu. */
            break;
        }
        s.ops.push_back(op);
    }
    return s;
}

Scenario
generateClusterScenario(uint64_t seed)
{
    /* Distinct stream constant: a cluster scenario for seed N is
     * unrelated to the single-SoC scenario for seed N. */
    Rng rng(seed ^ 0x9d3f72c8a65b01eeULL);
    Scenario s;
    s.seed = seed;
    s.numNodes = 2 + static_cast<uint32_t>(rng.nextBelow(3));
    s.numGpus = 0;
    s.withNpu = false;

    /* Fleet enclaves: CPU accumulate workers, placed by the fleet
     * dispatcher. elems/slots/slotBytes are unused in the fleet
     * dialect but kept well-formed for the JSON round trip. */
    uint64_t enclave_count = 2 + rng.nextBelow(4);
    for (uint64_t i = 0; i < enclave_count; ++i) {
        EnclavePlan plan;
        plan.deviceType = "cpu";
        plan.deviceName = "cpu";
        plan.elems = 0;
        s.enclaves.push_back(plan);
    }

    /* Fault schedule: 0-2 migration-window node kills. */
    static const char *kStages[] = {"snapshot", "reattest",
                                    "transfer", "restore",
                                    "replay",   "retire"};
    uint64_t fault_count = rng.nextBelow(3);
    for (uint64_t i = 0; i < fault_count; ++i) {
        FaultSpec f;
        f.kind = FaultSpec::Kind::MigrationKill;
        f.nth = 1 + rng.nextBelow(4);
        f.stage = kStages[rng.nextBelow(6)];
        f.killDst = rng.nextBelow(2) == 1;
        s.faults.push_back(f);
    }

    struct Weighted
    {
        OpKind kind;
        uint32_t weight;
    };
    const Weighted menu[] = {
        {OpKind::FleetCall, 8},    {OpKind::FleetCheckpoint, 2},
        {OpKind::Migrate, 4},      {OpKind::NodeKill, 2},
        {OpKind::NodeRecover, 2},  {OpKind::NodeDrain, 1},
    };
    uint32_t total_weight = 0;
    for (const auto &w : menu)
        total_weight += w.weight;

    uint64_t op_count = 8 + rng.nextBelow(20);
    for (uint64_t i = 0; i < op_count; ++i) {
        uint64_t roll = rng.nextBelow(total_weight);
        OpKind kind = menu[0].kind;
        for (const auto &w : menu) {
            if (roll < w.weight) {
                kind = w.kind;
                break;
            }
            roll -= w.weight;
        }
        ScenarioOp op;
        op.kind = kind;
        switch (kind) {
          case OpKind::FleetCall:
            op.enclave = static_cast<uint32_t>(
                rng.nextBelow(s.enclaves.size()));
            op.a = 1 + rng.nextBelow(100);
            break;
          case OpKind::FleetCheckpoint:
            op.enclave = static_cast<uint32_t>(
                rng.nextBelow(s.enclaves.size()));
            break;
          case OpKind::Migrate:
            op.enclave = static_cast<uint32_t>(
                rng.nextBelow(s.enclaves.size()));
            op.a = rng.nextBelow(s.numNodes);
            break;
          case OpKind::NodeKill:
          case OpKind::NodeRecover:
          case OpKind::NodeDrain:
            op.a = rng.nextBelow(s.numNodes);
            break;
          default:
            break;
        }
        s.ops.push_back(op);
    }
    return s;
}

/* ------------------------------------------------------------------ */
/* JSON round trip                                                     */
/* ------------------------------------------------------------------ */

JsonValue
Scenario::toJson() const
{
    JsonObject root;
    root["seed"] = static_cast<int64_t>(seed);
    /* Written only for cluster scenarios: single-node documents stay
     * byte-identical to the pre-cluster format. */
    if (numNodes != 1)
        root["num_nodes"] = static_cast<int64_t>(numNodes);
    root["num_gpus"] = static_cast<int64_t>(numGpus);
    root["with_npu"] = withNpu;
    root["with_pipe"] = withPipe;
    root["pipe_enclave"] = static_cast<int64_t>(pipeEnclave);
    root["pipe_capacity"] = static_cast<int64_t>(pipeCapacity);

    JsonArray enclave_list;
    for (const EnclavePlan &e : enclaves) {
        JsonObject o;
        o["type"] = e.deviceType;
        o["device"] = e.deviceName;
        o["elems"] = static_cast<int64_t>(e.elems);
        o["slots"] = static_cast<int64_t>(e.slots);
        o["slot_bytes"] = static_cast<int64_t>(e.slotBytes);
        enclave_list.push_back(JsonValue(o));
    }
    root["enclaves"] = JsonValue(enclave_list);

    JsonArray fault_list;
    for (const FaultSpec &f : faults) {
        JsonObject o;
        o["kind"] = faultKindName(f.kind);
        o["nth"] = static_cast<int64_t>(f.nth);
        switch (f.kind) {
          case FaultSpec::Kind::Kill:
            o["victim"] = f.victim;
            break;
          case FaultSpec::Kind::CorruptHeader:
            o["channel"] = static_cast<int64_t>(f.channel);
            o["field"] = f.field;
            o["value"] = static_cast<int64_t>(f.value);
            break;
          case FaultSpec::Kind::SkewClock:
            o["skew_ns"] = static_cast<int64_t>(f.skewNs);
            break;
          case FaultSpec::Kind::MigrationKill:
            o["stage"] = f.stage;
            o["kill_dst"] = f.killDst;
            break;
          case FaultSpec::Kind::FailAccess:
            break;
        }
        fault_list.push_back(JsonValue(o));
    }
    root["faults"] = JsonValue(fault_list);

    JsonArray op_list;
    for (const ScenarioOp &op : ops) {
        JsonObject o;
        o["kind"] = opKindName(op.kind);
        if (opTargetsEnclave(op.kind))
            o["enclave"] = static_cast<int64_t>(op.enclave);
        if (op.a != 0)
            o["a"] = static_cast<int64_t>(op.a);
        if (op.b != 0)
            o["b"] = static_cast<int64_t>(op.b);
        if (op.c != 0)
            o["c"] = static_cast<int64_t>(op.c);
        op_list.push_back(JsonValue(o));
    }
    root["ops"] = JsonValue(op_list);
    return JsonValue(root);
}

Result<Scenario>
Scenario::fromJson(const JsonValue &v)
{
    if (!v.isObject())
        return Status(ErrorCode::InvalidArgument,
                      "scenario must be a JSON object");
    Scenario s;
    auto seed_val = v.getInt("seed");
    if (!seed_val.isOk())
        return seed_val.status();
    s.seed = static_cast<uint64_t>(seed_val.value());
    if (v.has("num_nodes"))
        s.numNodes = static_cast<uint32_t>(v["num_nodes"].asInt());
    s.numGpus = static_cast<uint32_t>(v["num_gpus"].asInt());
    s.withNpu = v["with_npu"].isBool() && v["with_npu"].asBool();
    s.withPipe = v["with_pipe"].isBool() && v["with_pipe"].asBool();
    s.pipeEnclave = static_cast<uint32_t>(v["pipe_enclave"].asInt());
    if (v.has("pipe_capacity"))
        s.pipeCapacity =
            static_cast<uint64_t>(v["pipe_capacity"].asInt());

    auto enclave_list = v.getArray("enclaves");
    if (!enclave_list.isOk())
        return enclave_list.status();
    for (const JsonValue &e : enclave_list.value()) {
        EnclavePlan plan;
        auto type = e.getString("type");
        auto device = e.getString("device");
        if (!type.isOk() || !device.isOk())
            return Status(ErrorCode::InvalidArgument,
                          "enclave entry needs type + device");
        plan.deviceType = type.value();
        plan.deviceName = device.value();
        plan.elems = static_cast<uint64_t>(e["elems"].asInt());
        plan.slots = static_cast<uint64_t>(e["slots"].asInt());
        plan.slotBytes =
            static_cast<uint64_t>(e["slot_bytes"].asInt());
        s.enclaves.push_back(plan);
    }

    auto fault_list = v.getArray("faults");
    if (!fault_list.isOk())
        return fault_list.status();
    for (const JsonValue &fv : fault_list.value()) {
        FaultSpec f;
        auto kind_name = fv.getString("kind");
        if (!kind_name.isOk())
            return kind_name.status();
        auto kind = faultKindFromName(kind_name.value());
        if (!kind.isOk())
            return kind.status();
        f.kind = kind.value();
        f.nth = static_cast<uint64_t>(fv["nth"].asInt());
        if (fv.has("victim"))
            f.victim = fv["victim"].asString();
        if (fv.has("channel"))
            f.channel = static_cast<uint32_t>(fv["channel"].asInt());
        if (fv.has("field"))
            f.field = fv["field"].asString();
        if (fv.has("value"))
            f.value = static_cast<uint64_t>(fv["value"].asInt());
        if (fv.has("skew_ns"))
            f.skewNs = static_cast<SimTime>(fv["skew_ns"].asInt());
        if (fv.has("stage"))
            f.stage = fv["stage"].asString();
        if (fv.has("kill_dst"))
            f.killDst =
                fv["kill_dst"].isBool() && fv["kill_dst"].asBool();
        s.faults.push_back(f);
    }

    auto op_list = v.getArray("ops");
    if (!op_list.isOk())
        return op_list.status();
    for (const JsonValue &ov : op_list.value()) {
        ScenarioOp op;
        auto kind_name = ov.getString("kind");
        if (!kind_name.isOk())
            return kind_name.status();
        auto kind = opKindFromName(kind_name.value());
        if (!kind.isOk())
            return kind.status();
        op.kind = kind.value();
        if (ov.has("enclave"))
            op.enclave =
                static_cast<uint32_t>(ov["enclave"].asInt());
        if (ov.has("a"))
            op.a = static_cast<uint64_t>(ov["a"].asInt());
        if (ov.has("b"))
            op.b = static_cast<uint64_t>(ov["b"].asInt());
        if (ov.has("c"))
            op.c = static_cast<uint64_t>(ov["c"].asInt());
        s.ops.push_back(op);
    }
    return s;
}

Result<Scenario>
Scenario::parse(const std::string &text)
{
    auto doc = parseJson(text);
    if (!doc.isOk())
        return doc.status();
    const JsonValue &v = doc.value();
    if (v.isObject() && v.has("scenario"))
        return fromJson(v["scenario"]);
    return fromJson(v);
}

void
Scenario::normalize()
{
    /* Which enclaves does anything still refer to? */
    std::vector<bool> used(enclaves.size(), false);
    bool pipe_used = false;
    for (const ScenarioOp &op : ops) {
        if (opTargetsEnclave(op.kind) && op.enclave < used.size())
            used[op.enclave] = true;
        if (opUsesPipe(op.kind))
            pipe_used = true;
    }
    if (withPipe && pipe_used && pipeEnclave < used.size())
        used[pipeEnclave] = true;
    for (const FaultSpec &f : faults) {
        if (f.kind == FaultSpec::Kind::CorruptHeader &&
            f.channel < used.size())
            used[f.channel] = true;
        if (f.kind == FaultSpec::Kind::Kill) {
            for (size_t i = 0; i < enclaves.size(); ++i) {
                if (enclaves[i].deviceName == f.victim)
                    used[i] = true;
            }
        }
    }

    std::vector<uint32_t> remap(enclaves.size(), 0);
    std::vector<EnclavePlan> kept;
    for (size_t i = 0; i < enclaves.size(); ++i) {
        if (used[i]) {
            remap[i] = static_cast<uint32_t>(kept.size());
            kept.push_back(enclaves[i]);
        }
    }
    enclaves = std::move(kept);
    for (ScenarioOp &op : ops) {
        if (opTargetsEnclave(op.kind) && op.enclave < remap.size())
            op.enclave = remap[op.enclave];
    }
    for (FaultSpec &f : faults) {
        if (f.kind == FaultSpec::Kind::CorruptHeader &&
            f.channel < remap.size())
            f.channel = remap[f.channel];
    }
    if (!pipe_used)
        withPipe = false;
    else if (withPipe && pipeEnclave < remap.size())
        pipeEnclave = remap[pipeEnclave];

    /* Shrink the machine to the devices that remain referenced. */
    uint32_t max_gpu = 0;
    bool any_gpu = false, any_npu = false;
    for (const EnclavePlan &e : enclaves) {
        if (e.deviceType == "gpu") {
            any_gpu = true;
            uint32_t idx = static_cast<uint32_t>(
                std::stoul(e.deviceName.substr(3)));
            max_gpu = std::max(max_gpu, idx);
        } else if (e.deviceType == "npu") {
            any_npu = true;
        }
    }
    numGpus = any_gpu ? max_gpu + 1 : 0;
    withNpu = any_npu;

    /* Faults naming devices that no longer exist cannot arm. */
    std::vector<FaultSpec> kept_faults;
    for (const FaultSpec &f : faults) {
        if (f.kind == FaultSpec::Kind::Kill) {
            bool present = false;
            for (const EnclavePlan &e : enclaves)
                present = present || e.deviceName == f.victim;
            if (!present)
                continue;
        }
        if (f.kind == FaultSpec::Kind::CorruptHeader &&
            f.channel >= enclaves.size())
            continue;
        kept_faults.push_back(f);
    }
    faults = std::move(kept_faults);
}

} // namespace cronus::fuzz
