#include "scheduler.hh"

#include <string>

namespace cronus::fuzz
{

namespace
{

/* splitmix64: the standard 64-bit finalizer; good avalanche, cheap,
 * and stable across platforms (no libstdc++ hash dependency). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
combine(uint64_t h, uint64_t v)
{
    return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) +
                      (h >> 2)));
}

uint64_t
combineStr(uint64_t h, const std::string &s)
{
    for (unsigned char c : s)
        h = combine(h, c);
    return combine(h, 0x5f5f);  /* terminator: "ab"+"c" != "a"+"bc" */
}

/* Edge-space tags keep the edge families disjoint. */
constexpr uint64_t kTagShape = 0x01;
constexpr uint64_t kTagEnclave = 0x02;
constexpr uint64_t kTagFault = 0x03;
constexpr uint64_t kTagBigram = 0x04;
constexpr uint64_t kTagFaultOp = 0x05;
constexpr uint64_t kTagPipeOp = 0x06;
constexpr uint64_t kTagBehavior = 0x07;

} // namespace

CoverageSet
scenarioEdges(const Scenario &sc)
{
    CoverageSet edges;

    /* Machine shape: gpus x npu x pipe presence. */
    uint64_t shape = combine(kTagShape, sc.numGpus);
    shape = combine(shape, sc.withNpu ? 1 : 0);
    shape = combine(shape, sc.withPipe ? 1 : 0);
    edges.insert(shape);

    /* Enclave plans: device type x buffer size x ring geometry. */
    for (const EnclavePlan &e : sc.enclaves) {
        uint64_t h = combineStr(kTagEnclave, e.deviceType);
        h = combine(h, e.elems);
        h = combine(h, e.slots);
        h = combine(h, e.slotBytes);
        edges.insert(h);
    }

    /* Fault kinds present, and fault kind x op kind of the op list
     * (which workloads run under which perturbation). */
    for (const FaultSpec &f : sc.faults) {
        edges.insert(
            combine(kTagFault, static_cast<uint64_t>(f.kind)));
        for (const ScenarioOp &op : sc.ops) {
            uint64_t h =
                combine(kTagFaultOp, static_cast<uint64_t>(f.kind));
            edges.insert(
                combine(h, static_cast<uint64_t>(op.kind)));
        }
    }

    /* Op-kind bigrams: adjacency is what shakes out ordering bugs
     * (e.g. revoke-then-read, kill-then-checkpoint). The entry edge
     * (~0 -> first op) counts too. */
    uint64_t prev = ~0ULL;
    for (const ScenarioOp &op : sc.ops) {
        uint64_t h = combine(kTagBigram, prev);
        edges.insert(combine(h, static_cast<uint64_t>(op.kind)));
        prev = static_cast<uint64_t>(op.kind);
        if (sc.withPipe) {
            edges.insert(combine(kTagPipeOp,
                                 static_cast<uint64_t>(op.kind)));
        }
    }
    return edges;
}

uint64_t
behaviorEdge(OpKind kind, const std::string &code, bool blocked)
{
    uint64_t h = combine(kTagBehavior, static_cast<uint64_t>(kind));
    h = combineStr(h, code);
    return combine(h, blocked ? 1 : 0);
}

uint64_t
scenarioFingerprint(const Scenario &sc)
{
    uint64_t h = 0x0c59d1f05c5c9d6bULL;  /* fingerprint domain */
    h = combine(h, sc.numGpus);
    h = combine(h, sc.withNpu ? 1 : 0);
    h = combine(h, sc.withPipe ? 1 : 0);
    h = combine(h, sc.pipeEnclave);
    h = combine(h, sc.pipeCapacity);
    for (const EnclavePlan &e : sc.enclaves) {
        h = combineStr(h, e.deviceType);
        h = combineStr(h, e.deviceName);
        h = combine(h, e.elems);
        h = combine(h, e.slots);
        h = combine(h, e.slotBytes);
    }
    for (const FaultSpec &f : sc.faults) {
        h = combine(h, static_cast<uint64_t>(f.kind));
        h = combine(h, f.nth);
        h = combineStr(h, f.victim);
        h = combine(h, f.channel);
        h = combineStr(h, f.field);
        h = combine(h, f.value);
        h = combine(h, static_cast<uint64_t>(f.skewNs));
    }
    for (const ScenarioOp &op : sc.ops) {
        h = combine(h, static_cast<uint64_t>(op.kind));
        h = combine(h, op.enclave);
        h = combine(h, op.a);
        h = combine(h, op.b);
        h = combine(h, op.c);
    }
    return h;
}

SeedScheduler::SeedScheduler(SchedulerOptions options)
    : opts(options), nextSequential(options.baseSeed)
{
}

uint64_t
SeedScheduler::childSeed(uint64_t parent, uint32_t k)
{
    /* Child seeds live far from the sequential frontier, so mutation
     * lineages and the 1..N walk never collide in practice. */
    return mix64(combine(parent, 0xc87d0a5391e4f26dULL + k));
}

uint64_t
SeedScheduler::next()
{
    for (uint32_t skips = 0;; ++skips) {
        uint64_t seed;
        if (!pending.empty()) {
            seed = pending.front();
            pending.pop_front();
        } else {
            seed = nextSequential++;
        }
        if (!seenSeeds.insert(seed).second)
            continue;  /* a child collided with the frontier */
        if (skips < opts.maxSkipsPerNext) {
            uint64_t fp = scenarioFingerprint(generateScenario(seed));
            if (!seenFingerprints.insert(fp).second) {
                ++dedupSkips;
                continue;
            }
        }
        ++issued;
        return seed;
    }
}

void
SeedScheduler::feedback(uint64_t seed, const CoverageSet &edges)
{
    bool interesting = false;
    for (uint64_t e : edges)
        interesting |= covered.insert(e).second;
    if (!interesting)
        return;
    for (uint32_t k = 0; k < opts.childrenPerParent; ++k)
        pending.push_back(childSeed(seed, k));
}

std::vector<uint64_t>
scheduleCorpus(size_t count, SchedulerOptions options)
{
    SeedScheduler sched(options);
    std::vector<uint64_t> seeds;
    seeds.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        uint64_t seed = sched.next();
        sched.feedback(seed, scenarioEdges(generateScenario(seed)));
        seeds.push_back(seed);
    }
    return seeds;
}

} // namespace cronus::fuzz
