#include "runner.hh"

#include <cstring>

#include "accel/builtin_kernels.hh"
#include "base/logging.hh"
#include "core/auto_partition.hh"
#include "core/pipe.hh"
#include "core/system.hh"
#include "obs/trace.hh"
#include "recover/supervisor.hh"

namespace cronus::fuzz
{

using namespace core;

/* ---------------- fixtures ---------------- */

/* Non-static: the fleet runner (cluster_run.cc) places the same CPU
 * accumulate workers on every node of its cluster. */

void
registerFuzzCpuFunctions()
{
    auto &reg = CpuFunctionRegistry::instance();
    if (reg.has("fz_echo"))
        return;
    reg.registerFunction("fz_echo", [](CpuCallContext &ctx) {
        ctx.charge(10);
        return Result<Bytes>(ctx.args);
    });
    reg.registerFunction("fz_accumulate", [](CpuCallContext &ctx) {
        ByteReader r(ctx.args);
        auto delta = r.getU64();
        if (!delta.isOk())
            return Result<Bytes>(delta.status());
        uint64_t total = delta.value();
        auto it = ctx.store.find("total");
        if (it != ctx.store.end()) {
            ByteReader prev(it->second);
            total += prev.getU64().value();
        }
        ByteWriter w;
        w.putU64(total);
        ctx.store["total"] = w.data();
        ctx.charge(50);
        return Result<Bytes>(w.take());
    });
}

Bytes
fzCpuImage()
{
    CpuImage image;
    image.exports = {"fz_echo", "fz_accumulate"};
    return image.serialize();
}

std::string
fzCpuManifest()
{
    Manifest m;
    m.deviceType = "cpu";
    m.images["fz.so"] =
        crypto::digestHex(crypto::sha256(fzCpuImage()));
    m.mEcalls = {{"fz_echo", false}, {"fz_accumulate", false}};
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

namespace
{

Bytes
fzGpuImage()
{
    accel::GpuModuleImage image{
        "fz.cubin", {"fill_f32", "vec_add_f32", "saxpy_f32"}};
    return image.serialize();
}

std::string
fzGpuManifest()
{
    Manifest m;
    m.deviceType = "gpu";
    m.images["fz.cubin"] =
        crypto::digestHex(crypto::sha256(fzGpuImage()));
    for (const auto &fn : CudaRuntime::apiSurface())
        m.mEcalls.push_back(
            {fn, AutoPartitioner::cudaCallIsAsync(fn)});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

/**
 * Small-footprint manifest for churn enclaves (256K, vs 4M for the
 * workload enclaves): a generated scenario (<= 30 ops) can never
 * exhaust a 24M partition with them, so ChurnCreate is "Ok" by
 * construction and the reference model needs no quota bookkeeping.
 */
std::string
fzChurnManifest(const std::string &device_type)
{
    Manifest m;
    m.deviceType = device_type;
    if (device_type == "gpu") {
        m.images["fz.cubin"] =
            crypto::digestHex(crypto::sha256(fzGpuImage()));
        for (const auto &fn : CudaRuntime::apiSurface())
            m.mEcalls.push_back(
                {fn, AutoPartitioner::cudaCallIsAsync(fn)});
    } else {
        for (const auto &fn : NpuRuntime::apiSurface())
            m.mEcalls.push_back({fn, false});
    }
    m.memoryBytes = 256ull << 10;
    return m.toJson();
}

std::string
fzNpuManifest()
{
    Manifest m;
    m.deviceType = "npu";
    for (const auto &fn : NpuRuntime::apiSurface())
        m.mEcalls.push_back({fn, false});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

uint64_t
floatBits(float f)
{
    uint32_t bits = 0;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits;
}

/* Stream ids for taint tracking. */
constexpr int kStreamDriver = -1;
constexpr int kStreamPipe = -2;

int
streamOf(const ScenarioOp &op)
{
    switch (op.kind) {
      case OpKind::GpuFill:
      case OpKind::GpuVecAdd:
      case OpKind::GpuSaxpy:
      case OpKind::GpuDrain:
      case OpKind::GpuReadback:
      case OpKind::NpuWrite:
      case OpKind::NpuReadback:
      case OpKind::ChurnCreate:
      case OpKind::ChurnDestroy:
      case OpKind::AttackSmemTamper:
      case OpKind::AttackShootdownToctou:
      case OpKind::AttackSmmuStreamReuse:
        return static_cast<int>(op.enclave);
      case OpKind::PipeWrite:
      case OpKind::PipeRead:
        return kStreamPipe;
      default:
        return kStreamDriver;
    }
}

bool
isDeviceOp(OpKind k)
{
    switch (k) {
      case OpKind::GpuFill:
      case OpKind::GpuVecAdd:
      case OpKind::GpuSaxpy:
      case OpKind::GpuDrain:
      case OpKind::GpuReadback:
      case OpKind::NpuWrite:
      case OpKind::NpuReadback:
        return true;
      default:
        return false;
    }
}

struct EnclaveState
{
    EnclavePlan plan;
    AppHandle handle;
    std::unique_ptr<SrpcChannel> channel;
    uint64_t vas[3] = {0, 0, 0};  ///< gpu buffers
    uint32_t npuBuf = 0;
    bool alive = false;
    bool tainted = false;
};

/** One ephemeral enclave made by ChurnCreate (LIFO per plan). */
struct ChurnEnclave
{
    AppHandle handle;
    std::unique_ptr<SrpcChannel> channel;
};

class Run
{
  public:
    Run(const Scenario &scenario, const RunOptions &options)
        : sc(scenario), opts(options)
    {
    }

    RunReport
    execute()
    {
        RunReport rep;
        Status s = setup();
        if (!s.isOk()) {
            rep.setupOk = false;
            rep.setupError = s.toString();
            finish(rep);
            return rep;
        }
        rep.setupOk = true;

        for (uint32_t i = 0; i < sc.ops.size(); ++i) {
            const ScenarioOp &op = sc.ops[i];
            OpRecord rec;
            rec.index = i;
            rec.kind = op.kind;
            rec.enclave = op.enclave;
            note("op", [&](JsonObject &o) {
                o["i"] = static_cast<int64_t>(i);
                o["kind"] = opKindName(op.kind);
            });
            if (auto &trc = obs::Tracer::instance(); trc.active()) {
                JsonObject targs;
                targs["i"] = static_cast<int64_t>(i);
                targs["kind"] = opKindName(op.kind);
                targs["enclave"] =
                    static_cast<int64_t>(op.enclave);
                trc.instant(trc.track("fuzz"), "fuzz.op", "fuzz",
                            std::move(targs));
            }

            maybeRecover(op);
            int stream = streamOf(op);
            if (streamTainted(stream))
                rec.tainted = true;

            SimTime t0 = clock().now();
            runOp(op, rec);
            rec.durNs = clock().now() - t0;
            applyFired(stream, &rec);
            rep.records.push_back(rec);
        }

        finalDrain(rep);
        teardown();
        finish(rep);
        return rep;
    }

  private:
    SimClock &clock() { return sys->platform().clock(); }

    template <typename Fill>
    void
    note(const char *ev, Fill fill)
    {
        JsonObject o;
        o["ev"] = ev;
        fill(o);
        decisions.push_back(JsonValue(o));
    }

    bool
    streamTainted(int stream) const
    {
        if (stream == kStreamDriver)
            return driverTainted;
        if (stream == kStreamPipe)
            return pipeTainted;
        size_t idx = static_cast<size_t>(stream);
        return idx < states.size() && states[idx].tainted;
    }

    void
    taintStream(int stream)
    {
        if (stream == kStreamDriver)
            driverTainted = true;
        else if (stream == kStreamPipe)
            pipeTainted = true;
        else if (static_cast<size_t>(stream) < states.size())
            states[static_cast<size_t>(stream)].tainted = true;
    }

    /* ---------------- setup ---------------- */

    Status
    setup()
    {
        Logger::instance().setQuiet(true);
        registerFuzzCpuFunctions();
        accel::registerBuiltinKernels();

        /* Scope the flight ring to this run: a dump fired by the
         * auditor or an oracle then holds only this run's tail, not
         * a previous scenario's. (Only the ring -- a Full-mode
         * export trace keeps accumulating.) */
        obs::Tracer::instance().clearFlight();

        CronusConfig cfg;
        cfg.numGpus = sc.numGpus;
        cfg.withNpu = sc.withNpu;
        cfg.backend = opts.backend;
        sys = std::make_unique<CronusSystem>(cfg);
        auditor.attachSpm(sys->spm());
        supervisor = std::make_unique<recover::Supervisor>(*sys);

        sys->dispatcher().setPlacementObserver(
            [this](const std::string &type, const std::string &device,
                   MicroOS *os) {
                note("placement", [&](JsonObject &o) {
                    o["type"] = type;
                    o["device"] = device;
                    o["pid"] =
                        static_cast<int64_t>(os->partitionId());
                });
            });
        sys->setEcallObserver([this](Eid eid, const std::string &fn,
                                     const Status &st,
                                     const Bytes &result) {
            note("ecall", [&](JsonObject &o) {
                o["eid"] = static_cast<int64_t>(eid);
                o["fn"] = fn;
                o["code"] = errorCodeName(st.code());
                o["result_bytes"] =
                    static_cast<int64_t>(result.size());
            });
        });

        auto d =
            sys->createEnclave(fzCpuManifest(), "fz.so", fzCpuImage());
        if (!d.isOk())
            return d.status();
        driver = d.value();

        for (const EnclavePlan &plan : sc.enclaves) {
            EnclaveState st;
            st.plan = plan;
            CRONUS_RETURN_IF_ERROR(buildState(st));
            states.push_back(std::move(st));
            recoveryOutcome.push_back("none");
        }
        churn.resize(states.size());

        if (sc.withPipe && sc.pipeEnclave < states.size()) {
            EnclaveState &reader = states[sc.pipeEnclave];
            PipeConfig pcfg;
            pcfg.capacity = sc.pipeCapacity;
            auto p = SharedPipe::create(
                *driver.host, driver.eid, *reader.handle.host,
                reader.handle.eid, reader.handle.secret, pcfg);
            if (!p.isOk())
                return p.status();
            pipe = std::move(p.value());
        }

        if (opts.withFaults && !sc.faults.empty()) {
            inject::FaultPlan plan(sc.seed);
            for (const FaultSpec &f : sc.faults) {
                switch (f.kind) {
                  case FaultSpec::Kind::Kill: {
                    auto os = sys->mosForDevice(f.victim);
                    if (os.isOk())
                        plan.killOnAccess(
                            f.nth, os.value()->partitionId());
                    break;
                  }
                  case FaultSpec::Kind::FailAccess:
                    plan.failAccess(f.nth);
                    break;
                  case FaultSpec::Kind::CorruptHeader:
                    if (f.channel < states.size())
                        plan.corruptHeader(f.nth, f.field, f.value,
                                           f.channel);
                    break;
                  case FaultSpec::Kind::SkewClock:
                    plan.skewClock(f.nth, f.skewNs);
                    break;
                  case FaultSpec::Kind::MigrationKill:
                    /* Fleet-only fault; inert on a single node. */
                    break;
                }
            }
            injector = std::make_unique<inject::FaultInjector>(
                sys->spm(), std::move(plan));
            for (size_t i = 0; i < states.size(); ++i) {
                injector->attachChannel(*states[i].channel);
                attachEnclave.push_back(i);
            }
            injector->arm();
        }
        return Status::ok();
    }

    /** Create (or re-create) @p st's enclave, channel and buffers. */
    Status
    buildState(EnclaveState &st)
    {
        const EnclavePlan &plan = st.plan;
        auto h = plan.deviceType == "gpu"
                     ? sys->createEnclave(fzGpuManifest(), "fz.cubin",
                                          fzGpuImage(),
                                          plan.deviceName)
                     : sys->createEnclave(fzNpuManifest(), "", Bytes{},
                                          plan.deviceName);
        if (!h.isOk())
            return h.status();
        st.handle = h.value();

        SrpcConfig scfg;
        scfg.slots = plan.slots;
        scfg.slotBytes = plan.slotBytes;
        auto ch = sys->connect(driver, st.handle, scfg);
        if (!ch.isOk())
            return ch.status();
        st.channel = std::move(ch.value());
        auditor.attachChannel(*st.channel);

        if (plan.deviceType == "gpu") {
            for (uint64_t *va : {&st.vas[0], &st.vas[1], &st.vas[2]}) {
                auto r = st.channel->callSync(
                    "cuMemAlloc",
                    CudaRuntime::encodeMemAlloc(plan.elems * 4));
                if (!r.isOk())
                    return r.status();
                auto decoded =
                    CudaRuntime::decodeU64Result(r.value());
                if (!decoded.isOk())
                    return decoded.status();
                *va = decoded.value();
            }
        } else {
            auto r = st.channel->callSync(
                "vtaAllocBuffer",
                NpuRuntime::encodeAllocBuffer(plan.elems));
            if (!r.isOk())
                return r.status();
            ByteReader rd(r.value());
            auto buf = rd.getU32();
            if (!buf.isOk())
                return buf.status();
            st.npuBuf = buf.value();
        }
        st.alive = true;
        return Status::ok();
    }

    /* ---------------- fault bookkeeping ---------------- */

    /**
     * Fold freshly fired fault events into the taint state.
     * @p stream is the stream of the op during which they fired
     * (kStreamDriver if none), @p rec the op record to taint for
     * op-scoped perturbations (may be null during recovery).
     */
    void
    applyFired(int stream, OpRecord *rec)
    {
        if (!injector)
            return;
        const auto &log = injector->fired();
        const auto &events = injector->plan().events();
        for (; firedSeen < log.size(); ++firedSeen) {
            const inject::FiredFault &ff = log[firedSeen];
            note("fault", [&](JsonObject &o) {
                o["id"] = static_cast<int64_t>(ff.eventId);
                o["seq"] = static_cast<int64_t>(ff.seq);
                o["accessor"] = static_cast<int64_t>(ff.accessor);
            });
            /* The firing itself charges panic/trap latency to
             * whatever op was running, even one on a healthy
             * stream. */
            if (rec)
                rec->timeTainted = true;
            if (ff.eventId == 0 || ff.eventId > events.size())
                continue;
            const inject::FaultEvent &ev = events[ff.eventId - 1];
            switch (ev.action.kind) {
              case inject::FaultAction::Kind::KillPartition:
                for (EnclaveState &st : states) {
                    if (st.handle.host != nullptr &&
                        st.handle.host->partitionId() ==
                            ev.action.victim)
                        st.tainted = true;
                }
                if (pipe && sc.pipeEnclave < states.size() &&
                    states[sc.pipeEnclave].handle.host->partitionId() ==
                        ev.action.victim)
                    pipeTainted = true;
                break;
              case inject::FaultAction::Kind::FailAccess:
                taintStream(stream);
                if (rec)
                    rec->tainted = true;
                break;
              case inject::FaultAction::Kind::CorruptHeader: {
                corruptFired = true;
                size_t idx = ev.action.channelIndex;
                if (idx < attachEnclave.size())
                    states[attachEnclave[idx]].tainted = true;
                break;
              }
              case inject::FaultAction::Kind::SkewClock:
                if (rec)
                    rec->tainted = true;
                break;
              case inject::FaultAction::Kind::KillNode:
              case inject::FaultAction::Kind::PartitionLink:
              case inject::FaultAction::Kind::KillMigration:
                /* Fleet-scoped events never fire on the single-node
                 * SPM injector (it filters them out). */
                break;
            }
        }
        if (rec && streamTainted(stream))
            rec->tainted = true;
    }

    /** Supervised recovery before a device op whose channel saw the
     *  peer die: the Supervisor (src/recover/) stages backoff +
     *  scrub + reboot under its restart budget, then the enclave is
     *  stood back up. A quarantined device ends as "gave-up" -- the
     *  expected terminal outcome of a crash-looping plan, not a
     *  liveness bug. */
    void
    maybeRecover(const ScenarioOp &op)
    {
        if (!isDeviceOp(op.kind) || op.enclave >= states.size())
            return;
        EnclaveState &st = states[op.enclave];
        if (!st.alive || !st.channel || !st.channel->failed())
            return;

        graveyard.push_back(std::move(st.channel));
        /* A planned fault can land on the recovery traffic itself;
         * such a failure is the *fault's* doing, not the recovery
         * machinery's, and is recorded as "faulted:" so the liveness
         * oracle does not mistake it for a broken supervisor. */
        size_t fired_before = injector ? injector->fired().size() : 0;
        auto perturbed = [&] {
            return injector && injector->fired().size() > fired_before;
        };
        Status r = supervisor->watch(st.plan.deviceName);
        if (r.isOk())
            r = supervisor->awaitRecovery(st.plan.deviceName);
        note("recover", [&](JsonObject &o) {
            o["device"] = st.plan.deviceName;
            o["code"] = errorCodeName(r.code());
            o["restarts"] = static_cast<int64_t>(
                supervisor->restartsOf(st.plan.deviceName));
        });
        if (r.isOk()) {
            Status rebuilt = buildState(st);
            if (!rebuilt.isOk()) {
                st.alive = false;
                if (perturbed())
                    st.tainted = true;
                recoveryOutcome[op.enclave] =
                    std::string(perturbed() ? "faulted:" : "failed:") +
                    errorCodeName(rebuilt.code());
                note("rebuild-failed", [&](JsonObject &o) {
                    o["device"] = st.plan.deviceName;
                    o["code"] = errorCodeName(rebuilt.code());
                });
            } else {
                recoveryOutcome[op.enclave] = "recovered";
                if (injector) {
                    injector->attachChannel(*st.channel);
                    attachEnclave.push_back(op.enclave);
                }
            }
        } else {
            st.alive = false;
            if (perturbed() &&
                r.code() != ErrorCode::Degraded)
                st.tainted = true;
            recoveryOutcome[op.enclave] =
                r.code() == ErrorCode::Degraded
                    ? "gave-up"
                    : std::string(perturbed() ? "faulted:"
                                              : "failed:") +
                          errorCodeName(r.code());
        }
        /* Fault events can fire on recovery traffic too. */
        applyFired(kStreamDriver, nullptr);
    }

    /* ---------------- op execution ---------------- */

    void
    runOp(const ScenarioOp &op, OpRecord &rec)
    {
        switch (op.kind) {
          case OpKind::CpuAccumulate: {
            ByteWriter w;
            w.putU64(op.a);
            auto r = sys->ecall(driver, "fz_accumulate", w.take());
            rec.code = errorCodeName(r.code());
            if (r.isOk())
                rec.output = r.value();
            break;
          }
          case OpKind::GpuFill:
          case OpKind::GpuVecAdd:
          case OpKind::GpuSaxpy: {
            EnclaveState *st = deviceState(op, rec, "gpu");
            if (st == nullptr)
                break;
            uint64_t n = st->plan.elems;
            Bytes args;
            if (op.kind == OpKind::GpuFill) {
                args = CudaRuntime::encodeLaunchKernel(
                    "fill_f32",
                    {st->vas[gpuBufIndex(op.a)], n,
                     floatBits(static_cast<float>(op.b))},
                    n);
            } else if (op.kind == OpKind::GpuVecAdd) {
                args = opts.plantBug
                           ? CudaRuntime::encodeLaunchKernel(
                                 "fill_f32",
                                 {st->vas[2], n, floatBits(42.0f)}, n)
                           : CudaRuntime::encodeLaunchKernel(
                                 "vec_add_f32",
                                 {st->vas[0], st->vas[1], st->vas[2],
                                  n},
                                 n);
            } else {
                args = CudaRuntime::encodeLaunchKernel(
                    "saxpy_f32",
                    {floatBits(static_cast<float>(op.b)), st->vas[0],
                     st->vas[1], n},
                    n);
            }
            auto r = st->channel->call("cuLaunchKernel", args);
            rec.code = errorCodeName(r.code());
            break;
          }
          case OpKind::GpuDrain: {
            EnclaveState *st = deviceState(op, rec, "gpu");
            if (st == nullptr)
                break;
            rec.code = errorCodeName(st->channel->drain().code());
            break;
          }
          case OpKind::GpuReadback: {
            EnclaveState *st = deviceState(op, rec, "gpu");
            if (st == nullptr)
                break;
            auto r = st->channel->call(
                "cuMemcpyDtoH",
                CudaRuntime::encodeMemcpyDtoH(
                    st->vas[gpuBufIndex(op.a)], st->plan.elems * 4));
            rec.code = errorCodeName(r.code());
            if (r.isOk())
                rec.output = r.value();
            break;
          }
          case OpKind::NpuWrite: {
            EnclaveState *st = deviceState(op, rec, "npu");
            if (st == nullptr)
                break;
            uint64_t off = 0, len = 0;
            npuSpan(st->plan.elems, op.a, op.b, &off, &len);
            auto r = st->channel->call(
                "vtaWriteBuffer",
                NpuRuntime::encodeWriteBuffer(st->npuBuf, off,
                                              chunkBytes(len, op.c)));
            rec.code = errorCodeName(r.code());
            break;
          }
          case OpKind::NpuReadback: {
            EnclaveState *st = deviceState(op, rec, "npu");
            if (st == nullptr)
                break;
            auto r = st->channel->call(
                "vtaReadBuffer",
                NpuRuntime::encodeReadBuffer(st->npuBuf, 0,
                                             st->plan.elems));
            rec.code = errorCodeName(r.code());
            if (r.isOk())
                rec.output = r.value();
            break;
          }
          case OpKind::PipeWrite: {
            if (!pipe) {
                rec.code = "InvalidState";
                rec.tainted = true;
                break;
            }
            auto r = pipe->write(chunkBytes(op.a, op.b));
            rec.code = errorCodeName(r.code());
            if (r.isOk()) {
                ByteWriter w;
                w.putU64(r.value());
                rec.output = w.take();
            }
            break;
          }
          case OpKind::PipeRead: {
            if (!pipe) {
                rec.code = "InvalidState";
                rec.tainted = true;
                break;
            }
            auto r = pipe->read(op.a);
            rec.code = errorCodeName(r.code());
            if (r.isOk())
                rec.output = r.value();
            break;
          }
          case OpKind::Checkpoint: {
            /* The sealed blob depends on per-process key material --
             * record only the status, never the bytes. */
            auto r = sys->checkpointEnclave(driver);
            rec.code = errorCodeName(r.code());
            break;
          }
          case OpKind::ChurnCreate: {
            if (op.enclave >= states.size()) {
                rec.code = "InvalidArgument";
                rec.tainted = true;
                break;
            }
            const EnclavePlan &plan = states[op.enclave].plan;
            auto h = plan.deviceType == "gpu"
                         ? sys->createEnclave(fzChurnManifest("gpu"),
                                              "fz.cubin", fzGpuImage(),
                                              plan.deviceName)
                         : sys->createEnclave(fzChurnManifest("npu"),
                                              "", Bytes{},
                                              plan.deviceName);
            if (!h.isOk()) {
                rec.code = errorCodeName(h.code());
                break;
            }
            ChurnEnclave ce;
            ce.handle = h.value();
            /* The channel is the interesting part: its ring grant and
             * page-table entries are what ChurnDestroy must unwind
             * precisely. Not attached to the auditor/injector --
             * unlike workload channels it does not outlive the op
             * sequence. */
            auto ch = sys->connect(driver, ce.handle);
            if (!ch.isOk()) {
                sys->destroyEnclave(ce.handle);
                rec.code = errorCodeName(ch.code());
                break;
            }
            ce.channel = std::move(ch.value());
            churn[op.enclave].push_back(std::move(ce));
            rec.code = "Ok";
            ByteWriter w;
            w.putU64(churn[op.enclave].size());
            rec.output = w.take();
            break;
          }
          case OpKind::ChurnDestroy: {
            if (op.enclave >= states.size()) {
                rec.code = "InvalidArgument";
                rec.tainted = true;
                break;
            }
            auto &list = churn[op.enclave];
            if (list.empty()) {
                rec.code = "InvalidState";
                break;
            }
            ChurnEnclave ce = std::move(list.back());
            list.pop_back();
            if (ce.channel)
                ce.channel->close();
            Status d = sys->destroyEnclave(ce.handle);
            rec.code = errorCodeName(d.code());
            if (d.isOk()) {
                ByteWriter w;
                w.putU64(list.size());
                rec.output = w.take();
            }
            break;
          }
          case OpKind::AttackReplay: {
            Bytes args = toBytes("fz-replay-probe");
            uint64_t nonce = ++driver.nonce;
            Bytes tag = EnclaveManager::authTag(
                driver.secret, driver.eid, nonce, "fz_echo", args);
            auto &mgr = driver.host->enclaveManager();
            auto first =
                mgr.ecall(driver.eid, "fz_echo", args, nonce, tag);
            auto replay =
                mgr.ecall(driver.eid, "fz_echo", args, nonce, tag);
            rec.code = errorCodeName(replay.code());
            rec.blocked =
                first.isOk() &&
                replay.code() == ErrorCode::IntegrityViolation;
            break;
          }
          case OpKind::AttackTamperArgs: {
            Bytes args = toBytes("amount=1");
            uint64_t nonce = ++driver.nonce;
            Bytes tag = EnclaveManager::authTag(
                driver.secret, driver.eid, nonce, "fz_echo", args);
            auto r = driver.host->enclaveManager().ecall(
                driver.eid, "fz_echo", toBytes("amount=9"), nonce,
                tag);
            rec.code = errorCodeName(r.code());
            rec.blocked = r.code() == ErrorCode::AuthFailed;
            break;
          }
          case OpKind::AttackUndeclaredCall: {
            auto r = sys->ecall(driver, "fz_undeclared", Bytes{});
            rec.code = errorCodeName(r.code());
            rec.blocked = r.code() == ErrorCode::PermissionDenied;
            break;
          }
          case OpKind::AttackSmemTamper: {
            if (op.enclave >= states.size() ||
                !states[op.enclave].channel) {
                rec.code = "InvalidState";
                rec.tainted = true;
                break;
            }
            /* Normal world pokes the ring's Rid field. */
            Status w = sys->normalWorld().write(
                states[op.enclave].channel->ringBase() + 0x08,
                Bytes{0xff, 0xff, 0xff, 0xff});
            rec.code = errorCodeName(w.code());
            rec.blocked = w.code() == ErrorCode::AccessFault;
            break;
          }
          case OpKind::AttackShootdownToctou: {
            if (op.enclave >= states.size() ||
                !states[op.enclave].alive ||
                states[op.enclave].handle.host == nullptr) {
                rec.code = "InvalidState";
                rec.tainted = true;
                break;
            }
            auto &spm = sys->spm();
            tee::PartitionId owner = driver.host->partitionId();
            tee::PartitionId peer =
                states[op.enclave].handle.host->partitionId();
            auto po = spm.partition(owner);
            if (!po.isOk()) {
                rec.code = errorCodeName(po.code());
                rec.tainted = true;
                break;
            }
            /* The driver partition's last page: far above every
             * heap/ring allocation, so sharing it never aliases live
             * data. */
            hw::PhysAddr page = po.value()->memBase +
                                po.value()->memBytes -
                                hw::kPageSize;
            auto gid = spm.sharePages(owner, peer, page, 1);
            if (!gid.isOk()) {
                /* Share refused (failed peer, pinned page after an
                 * unresolved earlier fault) -- the defense under
                 * test never armed. */
                rec.code = errorCodeName(gid.code());
                rec.tainted = true;
                break;
            }
            /* Heat the peer's stage-2 translation: only a precise
             * shootdown can stop the post-revoke read below. */
            spm.read(peer, page, 8);
            spm.read(peer, page, 8);
            Status revoked = spm.revokeGrant(gid.value(), owner);
            auto stale = spm.read(peer, page, 8);
            rec.code = errorCodeName(stale.code());
            rec.blocked = revoked.isOk() &&
                          stale.code() == ErrorCode::AccessFault;
            if (!revoked.isOk()) {
                /* The peer died mid-op (injected kill): resolve the
                 * owner-side pending trap so the grant retires and
                 * the auditor's accounting stays balanced. */
                spm.read(owner, page, 8);
            }
            break;
          }
          case OpKind::AttackStaleAttestation: {
            Bytes stale_challenge = chunkBytes(32, op.a);
            Bytes fresh_challenge =
                chunkBytes(32, op.a ^ 0x517cc1b727220a95ULL);
            auto report = sys->attest(driver, stale_challenge);
            if (!report.isOk()) {
                rec.code = errorCodeName(report.code());
                rec.tainted = true;
                break;
            }
            /* The verifier expects a report bound to its *fresh*
             * challenge; the replayed stale-challenge report must
             * fail freshness, not just signature checks. */
            ClientExpectation expect = sys->expectationFor(driver);
            expect.challenge = fresh_challenge;
            Status v = verifyAttestation(report.value(), expect);
            rec.code = errorCodeName(v.code());
            rec.blocked = v.code() == ErrorCode::AuthFailed;
            break;
          }
          case OpKind::AttackSmmuStreamReuse: {
            if (op.enclave >= states.size() ||
                driver.host == nullptr) {
                rec.code = "InvalidState";
                rec.tainted = true;
                break;
            }
            hw::Device *dev = sys->platform().findDevice(
                states[op.enclave].plan.deviceName);
            auto victim =
                sys->spm().partition(driver.host->partitionId());
            if (dev == nullptr || !victim.isOk()) {
                rec.code = "NotFound";
                rec.tainted = true;
                break;
            }
            /* Force the deputy's stream table into existence --
             * translation is then mandatory even for an idle device
             * (no pass-through hole) -- and aim its DMA at the
             * driver partition's memory. */
            sys->platform().smmu().streamTable(dev->streamId());
            uint8_t probe[16] = {};
            Status s = sys->platform().dmaRead(
                *dev, victim.value()->memBase, probe, sizeof(probe));
            rec.code = errorCodeName(s.code());
            rec.blocked = s.code() == ErrorCode::AccessFault;
            break;
          }
          case OpKind::FleetCall:
          case OpKind::FleetCheckpoint:
          case OpKind::Migrate:
          case OpKind::NodeKill:
          case OpKind::NodeRecover:
          case OpKind::NodeDrain:
            /* Fleet-dialect ops in a single-node scenario (only
             * possible in a hand-edited repro): no fleet to act on. */
            rec.code = "Unsupported";
            break;
        }
    }

    /** Resolve a device op's state; records the error if dead or if
     *  the op family doesn't match the enclave's device type (only
     *  possible in hand-edited repro files). */
    EnclaveState *
    deviceState(const ScenarioOp &op, OpRecord &rec,
                const char *want_type)
    {
        if (op.enclave >= states.size() ||
            states[op.enclave].plan.deviceType != want_type) {
            rec.code = "InvalidArgument";
            rec.tainted = true;
            return nullptr;
        }
        EnclaveState &st = states[op.enclave];
        if (!st.alive || !st.channel) {
            rec.code = "InvalidState";
            rec.tainted = true;
            return nullptr;
        }
        return &st;
    }

    /* ---------------- wrap-up ---------------- */

    void
    finalDrain(RunReport &rep)
    {
        for (size_t i = 0; i < states.size(); ++i) {
            EnclaveState &st = states[i];
            if (!st.alive || !st.channel || st.channel->failed()) {
                rep.finalDrain.push_back("skipped");
                continue;
            }
            Status s = st.channel->drain();
            rep.finalDrain.push_back(errorCodeName(s.code()));
            /* The drain is this enclave's stream traffic: a fault
             * firing here perturbs *its* channel, so taint the
             * enclave (not the driver) or the liveness oracle would
             * flag the perturbed drain of an "untainted" enclave. */
            applyFired(static_cast<int>(i), nullptr);
        }
    }

    void
    teardown()
    {
        for (EnclaveState &st : states) {
            if (st.channel)
                st.channel->close();
        }
        for (auto &dead : graveyard) {
            if (dead)
                dead->close();
        }
        for (auto &list : churn) {
            for (ChurnEnclave &ce : list) {
                if (ce.channel)
                    ce.channel->close();
                sys->destroyEnclave(ce.handle);
            }
        }
        if (pipe && driver.host != nullptr) {
            /* SharedPipe has no close(); revoke its grant so the
             * auditor's teardown accounting stays clean. Ignore the
             * status: a retired grant (dead reader) is fine. */
            sys->spm().revokeGrant(pipe->grantId(),
                                   driver.host->partitionId());
            pipe.reset();
        }
        for (EnclaveState &st : states)
            sys->destroyEnclave(st.handle);
        sys->destroyEnclave(driver);
    }

    void
    finish(RunReport &rep)
    {
        if (sys) {
            for (const tee::TrapSignal &t : sys->trapSignals()) {
                note("trap", [&](JsonObject &o) {
                    o["accessor"] = static_cast<int64_t>(t.accessor);
                    o["failed_peer"] =
                        static_cast<int64_t>(t.failedPeer);
                    o["grant"] = static_cast<int64_t>(t.grantId);
                });
            }
            rep.trapCount = sys->trapSignals().size();
            rep.endTimeNs = clock().now();
        }
        rep.finalCheck =
            errorCodeName(auditor.finalCheck().code());
        rep.violations = auditor.violations();
        if (injector)
            rep.faultsFired = injector->fired();
        for (const EnclaveState &st : states)
            rep.enclaveTainted.push_back(st.tainted);
        rep.enclaveRecovery = recoveryOutcome;
        rep.driverTainted = driverTainted;
        rep.pipeTainted = pipeTainted;
        rep.corruptFired = corruptFired;
        rep.decisions = JsonValue(decisions);
    }

    const Scenario &sc;
    RunOptions opts;

    std::unique_ptr<CronusSystem> sys;
    inject::InvariantAuditor auditor;
    std::unique_ptr<recover::Supervisor> supervisor;
    std::unique_ptr<inject::FaultInjector> injector;
    AppHandle driver;
    std::vector<EnclaveState> states;
    /** Live ChurnCreate enclaves, indexed like `states`. */
    std::vector<std::vector<ChurnEnclave>> churn;
    std::vector<std::unique_ptr<SrpcChannel>> graveyard;
    std::unique_ptr<SharedPipe> pipe;

    /** Injector attach order -> enclave index (corrupt targeting). */
    std::vector<size_t> attachEnclave;
    /** Per-enclave supervised-recovery outcome ("none" if never
     *  needed, "recovered", "gave-up", "failed:<code>"). */
    std::vector<std::string> recoveryOutcome;
    size_t firedSeen = 0;
    bool driverTainted = false;
    bool pipeTainted = false;
    bool corruptFired = false;
    JsonArray decisions;
};

} // namespace

std::string
hexBytes(const Bytes &b)
{
    static const char *kHex = "0123456789abcdef";
    std::string out;
    out.reserve(b.size() * 2);
    for (uint8_t byte : b) {
        out.push_back(kHex[byte >> 4]);
        out.push_back(kHex[byte & 0xf]);
    }
    return out;
}

JsonValue
RunReport::toJson(const Scenario &sc, const RunOptions &opts) const
{
    JsonObject root;
    root["schema"] = "cronus-fuzz-trace-v1";
    root["scenario"] = sc.toJson();
    root["with_faults"] = opts.withFaults;
    root["plant_bug"] = opts.plantBug;
    root["setup_ok"] = setupOk;
    if (!setupError.empty())
        root["setup_error"] = setupError;

    JsonArray ops;
    for (const OpRecord &r : records) {
        JsonObject o;
        o["i"] = static_cast<int64_t>(r.index);
        o["kind"] = opKindName(r.kind);
        o["enclave"] = static_cast<int64_t>(r.enclave);
        o["code"] = r.code;
        o["blocked"] = r.blocked;
        o["tainted"] = r.tainted;
        o["time_tainted"] = r.timeTainted;
        o["dur_ns"] = static_cast<int64_t>(r.durNs);
        o["out"] = hexBytes(r.output);
        ops.push_back(JsonValue(o));
    }
    root["ops"] = JsonValue(ops);

    JsonArray drains;
    for (const std::string &d : finalDrain)
        drains.push_back(JsonValue(d));
    root["final_drain"] = JsonValue(drains);

    JsonArray fired;
    for (const inject::FiredFault &f : faultsFired) {
        JsonObject o;
        o["id"] = static_cast<int64_t>(f.eventId);
        o["seq"] = static_cast<int64_t>(f.seq);
        o["accessor"] = static_cast<int64_t>(f.accessor);
        o["t_before"] = static_cast<int64_t>(f.tBefore);
        o["t_after"] = static_cast<int64_t>(f.tAfter);
        o["what"] = f.description;
        fired.push_back(JsonValue(o));
    }
    root["faults_fired"] = JsonValue(fired);

    JsonArray viols;
    for (const inject::Violation &v : violations) {
        JsonObject o;
        o["invariant"] = v.invariant;
        o["detail"] = v.detail;
        viols.push_back(JsonValue(o));
    }
    root["violations"] = JsonValue(viols);
    root["final_check"] = finalCheck;

    JsonArray taints;
    for (bool t : enclaveTainted)
        taints.push_back(JsonValue(t));
    root["enclave_tainted"] = JsonValue(taints);

    JsonArray recoveries;
    for (const std::string &r : enclaveRecovery)
        recoveries.push_back(JsonValue(r));
    root["enclave_recovery"] = JsonValue(recoveries);
    root["driver_tainted"] = driverTainted;
    root["pipe_tainted"] = pipeTainted;
    root["corrupt_fired"] = corruptFired;

    /* Fleet verdict -- written only for cluster scenarios so the
     * single-node trace document stays byte-identical. */
    if (sc.numNodes > 1) {
        JsonArray migs;
        for (const std::string &m : migrationOutcomes)
            migs.push_back(JsonValue(m));
        root["migration_outcomes"] = JsonValue(migs);
        root["migration_consistent"] = migrationConsistent;
    }

    root["trap_count"] = static_cast<int64_t>(trapCount);
    root["end_time_ns"] = static_cast<int64_t>(endTimeNs);
    root["decisions"] = decisions;
    return JsonValue(root);
}

RunReport
runScenario(const Scenario &sc, const RunOptions &opts)
{
    if (sc.numNodes > 1)
        return runClusterScenario(sc, opts);
    Run run(sc, opts);
    return run.execute();
}

} // namespace cronus::fuzz
