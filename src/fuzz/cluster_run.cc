/**
 * @file
 * Fleet runner: executes a cluster scenario (numNodes > 1) on a
 * cluster::Cluster of CPU-only SoCs and produces the same RunReport
 * shape as the single-node runner, plus the fleet verdict
 * (migration outcomes + the convergence oracle).
 *
 * Taint discipline differs from the single-node runner on purpose.
 * A fired fleet fault (a migration-window node kill) makes the
 * *lifecycle* stream unpredictable -- subsequent Migrate / NodeKill
 * / NodeRecover / NodeDrain codes depend on which nodes died -- so
 * those records are tainted. FleetCall and FleetCheckpoint records
 * are deliberately NOT tainted: the frontend-durable watermark +
 * journal must preserve every acked call across any node loss, so
 * their codes and running totals have to keep matching the
 * reference model exactly. That untainted survival is the
 * acked-call-preservation property under test.
 */

#include "base/logging.hh"
#include "cluster/cluster.hh"
#include "cluster/fleet_injector.hh"
#include "obs/trace.hh"
#include "runner.hh"

namespace cronus::fuzz
{

namespace
{

bool
isLifecycleOp(OpKind k)
{
    switch (k) {
      case OpKind::Migrate:
      case OpKind::NodeKill:
      case OpKind::NodeRecover:
      case OpKind::NodeDrain:
        return true;
      default:
        return false;
    }
}

class ClusterRun
{
  public:
    ClusterRun(const Scenario &scenario, const RunOptions &options)
        : sc(scenario), opts(options)
    {
    }

    RunReport
    execute()
    {
        RunReport rep;
        Status s = setup();
        if (!s.isOk()) {
            rep.setupOk = false;
            rep.setupError = s.toString();
            finish(rep);
            return rep;
        }
        rep.setupOk = true;

        for (uint32_t i = 0; i < sc.ops.size(); ++i) {
            const ScenarioOp &op = sc.ops[i];
            OpRecord rec;
            rec.index = i;
            rec.kind = op.kind;
            rec.enclave = op.enclave;
            note("op", [&](JsonObject &o) {
                o["i"] = static_cast<int64_t>(i);
                o["kind"] = opKindName(op.kind);
            });
            if (auto &trc = obs::Tracer::instance(); trc.active()) {
                JsonObject targs;
                targs["i"] = static_cast<int64_t>(i);
                targs["kind"] = opKindName(op.kind);
                trc.instant(trc.track("fuzz"), "fuzz.op", "fuzz",
                            std::move(targs));
            }

            if (perturbed && isLifecycleOp(op.kind))
                rec.tainted = true;

            SimTime t0 = cl->clock().now();
            runOp(op, rec);
            rec.durNs = cl->clock().now() - t0;

            /* Due AtTime fleet events, then the fleet sweep that
             * re-places enclaves stranded by whatever died. */
            if (injector)
                injector->poll();
            cl->pump();
            applyFired(&rec);
            if (perturbed)
                rec.timeTainted = true;
            rep.records.push_back(rec);
        }
        finish(rep);
        return rep;
    }

  private:
    template <typename Fill>
    void
    note(const char *ev, Fill fill)
    {
        JsonObject o;
        o["ev"] = ev;
        fill(o);
        decisions.push_back(JsonValue(o));
    }

    Status
    setup()
    {
        Logger::instance().setQuiet(true);
        registerFuzzCpuFunctions();
        obs::Tracer::instance().clearFlight();

        cluster::ClusterConfig cc;
        cc.numNodes = sc.numNodes;
        cc.nodeSystem.numGpus = 0;
        cc.nodeSystem.withNpu = false;
        cc.nodeSystem.backend = opts.backend;
        /* Capacity must never be the binding constraint: a drain can
         * legally pile every enclave onto one node, and a same-node
         * migration transiently holds two copies. The reference
         * model predicts migration codes without mirroring memory
         * accounting, so give each partition room for all enclaves
         * plus the transient copy (capacity aborts are covered by a
         * dedicated unit test instead). */
        cc.nodeSystem.partitionMemBytes = 64ull << 20;
        /* Frequent watermarks keep replay journals short and
         * exercise checkpoint + journal-clear under churn. */
        cc.autoCheckpointEvery = 4;
        cl = std::make_unique<cluster::Cluster>(cc);

        cl->dispatcher().setPlacementObserver(
            [this](uint64_t fid, cluster::NodeId node) {
                note("fleet-place", [&](JsonObject &o) {
                    o["fid"] = static_cast<int64_t>(fid);
                    o["node"] = static_cast<int64_t>(node);
                });
            });

        if (opts.withFaults) {
            for (const FaultSpec &f : sc.faults) {
                /* Only migration-window kills arm in the fleet
                 * dialect; SPM-level fault kinds have no per-node
                 * injector here. */
                if (f.kind == FaultSpec::Kind::MigrationKill)
                    plan.killMigration(f.nth, f.stage, f.killDst);
            }
            injector = std::make_unique<cluster::FleetInjector>(
                *cl, plan);
            injector->arm();
        }

        for (size_t i = 0; i < sc.enclaves.size(); ++i) {
            auto fid = cl->placeEnclave(fzCpuManifest(), "fz.so",
                                        fzCpuImage());
            if (!fid.isOk())
                return fid.status();
            fids.push_back(fid.value());
        }
        return Status::ok();
    }

    /** Fold freshly fired fleet events into the taint state. */
    void
    applyFired(OpRecord *rec)
    {
        if (!injector)
            return;
        const auto &log = injector->fired();
        for (; firedSeen < log.size(); ++firedSeen) {
            const cluster::FleetInjector::Firing &f = log[firedSeen];
            note("fleet-fault", [&](JsonObject &o) {
                o["id"] = static_cast<int64_t>(f.eventId);
                o["what"] = f.what;
                o["at_ns"] = static_cast<int64_t>(f.atNs);
            });
            perturbed = true;
            if (rec) {
                rec->tainted = true;
                rec->timeTainted = true;
            }
        }
    }

    void
    runOp(const ScenarioOp &op, OpRecord &rec)
    {
        uint32_t node =
            sc.numNodes ? static_cast<uint32_t>(op.a) % sc.numNodes
                        : 0;
        switch (op.kind) {
          case OpKind::FleetCall: {
            if (fids.empty()) {
                rec.code = "InvalidArgument";
                break;
            }
            ByteWriter w;
            w.putU64(op.a);
            auto r = cl->call(fids[op.enclave % fids.size()],
                              "fz_accumulate", w.take());
            rec.code = errorCodeName(r.code());
            if (r.isOk())
                rec.output = r.value();
            break;
          }
          case OpKind::FleetCheckpoint: {
            if (fids.empty()) {
                rec.code = "InvalidArgument";
                break;
            }
            Status s =
                cl->checkpoint(fids[op.enclave % fids.size()]);
            rec.code = errorCodeName(s.code());
            break;
          }
          case OpKind::Migrate: {
            if (fids.empty()) {
                rec.code = "InvalidArgument";
                break;
            }
            Status s = cl->migrateEnclave(
                fids[op.enclave % fids.size()], node);
            rec.code = errorCodeName(s.code());
            break;
          }
          case OpKind::NodeKill:
            rec.code = errorCodeName(cl->killNode(node).code());
            break;
          case OpKind::NodeRecover:
            rec.code = errorCodeName(cl->recoverNode(node).code());
            break;
          case OpKind::NodeDrain:
            rec.code = errorCodeName(
                cl->drainNode(node, cluster::DrainBudget{}).code());
            break;
          default:
            /* Single-SoC kinds have no fleet meaning. */
            rec.code = "Unsupported";
            break;
        }
    }

    void
    finish(RunReport &rep)
    {
        if (cl) {
            /* Per-enclave liveness: the fleet must end every run
             * with one live, callable copy of each enclave --
             * node kills and aborted migrations included. */
            for (cluster::Fid fid : fids)
                rep.finalDrain.push_back(
                    cl->enclaveAlive(fid) ? "Ok" : "dead");
            rep.enclaveTainted.assign(fids.size(), false);
            rep.enclaveRecovery.assign(fids.size(), "none");

            for (const cluster::MigrationAudit &m :
                 cl->migrations()) {
                std::string line =
                    std::to_string(m.seq) + " fid" +
                    std::to_string(m.fid) + " " +
                    std::to_string(m.src) + "->" +
                    std::to_string(m.dst) + " " + m.outcome +
                    (m.srcAlive ? " src" : "") +
                    (m.dstAlive ? " dst" : "");
                rep.migrationOutcomes.push_back(std::move(line));
                /* Convergence: never two live copies (a clone), and
                 * never a lost enclave. Exactly one of src/dst alive
                 * is the common case; both dead at audit time is
                 * acceptable only when the fleet sweep re-placed the
                 * enclave on a third node (it must then be alive at
                 * end of run -- acked-call preservation across the
                 * re-placement is checked by the reference oracle).
                 * Same-node migrations are excluded: source and
                 * destination are the same copy, so the XOR is
                 * meaningless there. */
                bool oneCopy = m.converged();
                bool recovered = !m.srcAlive && !m.dstAlive &&
                                 cl->enclaveAlive(m.fid);
                if (m.src != m.dst && !oneCopy && !recovered)
                    rep.migrationConsistent = false;
            }

            uint64_t traps = 0;
            for (cluster::NodeId id = 0; id < cl->numNodes(); ++id)
                traps +=
                    cl->node(id).system().trapSignals().size();
            rep.trapCount = traps;
            rep.endTimeNs = cl->clock().now();
        }
        rep.decisions = JsonValue(decisions);
    }

    const Scenario &sc;
    RunOptions opts;

    std::unique_ptr<cluster::Cluster> cl;
    inject::FaultPlan plan{1};
    std::unique_ptr<cluster::FleetInjector> injector;
    std::vector<cluster::Fid> fids;
    size_t firedSeen = 0;
    /** A fleet fault has fired; lifecycle codes and all virtual
     *  times are unpredictable from here on. */
    bool perturbed = false;
    JsonArray decisions;
};

} // namespace

RunReport
runClusterScenario(const Scenario &sc, const RunOptions &opts)
{
    ClusterRun run(sc, opts);
    return run.execute();
}

} // namespace cronus::fuzz
