#include "manifest.hh"

#include <cctype>

namespace cronus::core
{

Result<uint64_t>
Manifest::parseMemorySize(const std::string &text)
{
    if (text.empty())
        return Status(ErrorCode::InvalidArgument,
                      "empty memory size");
    size_t pos = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    if (pos == 0)
        return Status(ErrorCode::InvalidArgument,
                      "memory size must start with digits");
    uint64_t value;
    try {
        value = std::stoull(text.substr(0, pos));
    } catch (const std::exception &) {
        return Status(ErrorCode::InvalidArgument,
                      "memory size out of range");
    }
    std::string suffix = text.substr(pos);
    uint64_t scale = 1;
    if (suffix == "" || suffix == "B")
        scale = 1;
    else if (suffix == "K" || suffix == "KB")
        scale = 1ull << 10;
    else if (suffix == "M" || suffix == "MB")
        scale = 1ull << 20;
    else if (suffix == "G" || suffix == "GB")
        scale = 1ull << 30;
    else
        return Status(ErrorCode::InvalidArgument,
                      "unknown memory suffix '" + suffix + "'");
    if (value > ~0ull / scale)
        return Status(ErrorCode::InvalidArgument,
                      "memory size overflow");
    return value * scale;
}

Result<Manifest>
Manifest::fromJson(const std::string &text)
{
    auto doc = parseJson(text);
    if (!doc.isOk())
        return doc.status();
    const JsonValue &root = doc.value();

    Manifest m;
    auto device = root.getString("device_type");
    if (!device.isOk())
        return device.status();
    m.deviceType = device.value();
    if (m.deviceType != "cpu" && m.deviceType != "gpu" &&
        m.deviceType != "npu")
        return Status(ErrorCode::InvalidArgument,
                      "unknown device_type '" + m.deviceType + "'");

    if (root.has("images")) {
        auto images = root.getObject("images");
        if (!images.isOk())
            return images.status();
        for (const auto &[file, hash] : images.value()) {
            if (!hash.isString())
                return Status(ErrorCode::InvalidArgument,
                              "image hash must be a string");
            m.images[file] = hash.asString();
        }
    }

    auto calls = root.getArray("mEcalls");
    if (!calls.isOk())
        return calls.status();
    for (const auto &entry : calls.value()) {
        McallDecl decl;
        if (entry.isString()) {
            decl.name = entry.asString();
        } else if (entry.isObject()) {
            auto name = entry.getString("name");
            if (!name.isOk())
                return name.status();
            decl.name = name.value();
            decl.async = entry["async"].isBool() &&
                         entry["async"].asBool();
        } else {
            return Status(ErrorCode::InvalidArgument,
                          "mEcalls entries must be strings/objects");
        }
        if (decl.name.empty())
            return Status(ErrorCode::InvalidArgument,
                          "empty mECall name");
        m.mEcalls.push_back(decl);
    }
    if (m.mEcalls.empty())
        return Status(ErrorCode::InvalidArgument,
                      "manifest declares no mECalls");

    auto resources = root.getObject("resources");
    if (!resources.isOk())
        return resources.status();
    auto mem_it = resources.value().find("memory");
    if (mem_it == resources.value().end() ||
        !mem_it->second.isString())
        return Status(ErrorCode::InvalidArgument,
                      "resources.memory missing");
    auto mem = parseMemorySize(mem_it->second.asString());
    if (!mem.isOk())
        return mem.status();
    m.memoryBytes = mem.value();
    if (m.memoryBytes == 0)
        return Status(ErrorCode::InvalidArgument,
                      "zero memory quota");
    return m;
}

std::string
Manifest::toJson() const
{
    JsonObject root;
    root["device_type"] = deviceType;
    JsonObject images_obj;
    for (const auto &[file, hash] : images)
        images_obj[file] = hash;
    root["images"] = JsonValue(std::move(images_obj));
    JsonArray calls;
    for (const auto &decl : mEcalls) {
        JsonObject entry;
        entry["name"] = decl.name;
        entry["async"] = decl.async;
        calls.push_back(JsonValue(std::move(entry)));
    }
    root["mEcalls"] = JsonValue(std::move(calls));
    JsonObject resources;
    resources["memory"] = std::to_string(memoryBytes);
    root["resources"] = JsonValue(std::move(resources));
    return JsonValue(std::move(root)).dump();
}

crypto::Digest
Manifest::measure() const
{
    return crypto::sha256(toJson());
}

bool
Manifest::declaresCall(const std::string &name) const
{
    for (const auto &decl : mEcalls) {
        if (decl.name == name)
            return true;
    }
    return false;
}

bool
Manifest::isAsync(const std::string &name) const
{
    for (const auto &decl : mEcalls) {
        if (decl.name == name)
            return decl.async;
    }
    return false;
}

} // namespace cronus::core
