/**
 * @file
 * CronusSystem: the top-level facade assembling a complete CRONUS
 * machine (Fig. 2) -- platform, devices, secure monitor, SPM,
 * normal world, one partition+MicroOS per device, dispatcher, and
 * the failover wiring.
 *
 * This is the public entry point a downstream user instantiates.
 */

#ifndef CRONUS_CORE_SYSTEM_HH
#define CRONUS_CORE_SYSTEM_HH

#include "accel/cpu.hh"
#include "accel/gpu.hh"
#include "accel/npu.hh"
#include "attestation.hh"
#include "base/sim_clock.hh"
#include "dispatcher.hh"
#include "module_store.hh"
#include "obs/metrics.hh"
#include "srpc.hh"
#include "tee/isolation_backend.hh"

namespace cronus::core
{

/** Machine shape. */
struct CronusConfig
{
    uint32_t numGpus = 1;
    bool withNpu = true;
    uint64_t gpuVramBytes = 64ull << 20;
    uint64_t normalMemBytes = 128ull << 20;
    uint64_t secureMemBytes = 192ull << 20;
    uint64_t partitionMemBytes = 24ull << 20;
    /**
     * SPM-resident module-store capacity; 0 (the default) disables
     * the store. Opt-in because cache hits change virtual time;
     * figure benches that must stay byte-identical never set it.
     * The CRONUS_DISABLE_MODSTORE environment toggle (non-empty)
     * forces the store off even when configured, for ablations.
     */
    uint64_t moduleStoreBytes = 0;
    /**
     * Isolation substrate: TrustZone (stage-2 + TZASC) or the
     * RISC-V PMP backend (§VII-A). Default defers to the
     * CRONUS_BACKEND=tz|pmp environment toggle; an explicit tz/pmp
     * here wins over the environment (test parameterization).
     */
    tee::BackendSelect backend = tee::BackendSelect::Default;
    /**
     * Fleet-shared virtual clock. When set, the node's Platform
     * charges all virtual time against this clock instead of its
     * own, so every SoC in a cluster::Cluster shares one timeline.
     * Null (the default) keeps the platform-owned clock; single-node
     * behavior is bit-for-bit unchanged. Pointee must outlive the
     * system.
     */
    SimClock *sharedClock = nullptr;
    /**
     * Node identity for fleet membership ("node3"). Consumed by
     * recover::Supervisor span/dump qualification and by cluster
     * credentials; empty for standalone systems. A non-empty name
     * also derives a per-node RoT seed ("platform-<name>") so fleet
     * peers attest distinct keys; the empty default keeps the seed
     * -- and every attestation vector -- bit-for-bit unchanged.
     */
    std::string nodeName;
};

/**
 * An application's handle to an mEnclave it owns: eid plus the DH
 * material needed to authenticate mECalls and channel setup.
 */
struct AppHandle
{
    Eid eid = 0;
    crypto::KeyPair ownerKeys;
    Bytes secret;        ///< secret_dhke with the enclave
    uint64_t nonce = 0;  ///< untrusted-path anti-replay counter
    MicroOS *host = nullptr;
};

class CronusSystem
{
  public:
    explicit CronusSystem(const CronusConfig &config = CronusConfig());

    /* --- component access --- */
    hw::Platform &platform() { return *plat; }
    const CronusConfig &config() const { return cfg; }
    /** Fleet node identity ("" for a standalone system). */
    const std::string &nodeName() const { return cfg.nodeName; }
    tee::SecureMonitor &monitor() { return *sm; }
    tee::Spm &spm() { return *partitionManager; }
    tee::NormalWorld &normalWorld() { return *nw; }
    EnclaveDispatcher &dispatcher() { return enclaveDispatcher; }

    /**
     * The system's metrics registry. Construction wires platform,
     * SPM, TLB/SMMU and monitor counters in as pull-sources, so
     * metrics().snapshot() is a superset of statsReport(); app code
     * and workloads add their own named instruments to the same
     * registry.
     */
    obs::MetricsRegistry &metrics() { return metricsRegistry; }

    /** The MicroOS managing @p device_name ("cpu0", "gpu1", ...). */
    Result<MicroOS *> mosForDevice(const std::string &device_name);
    std::vector<MicroOS *> allMos();

    /* --- application-facing API --- */

    /**
     * Create an mEnclave from a manifest + image through the
     * dispatcher (untrusted), with DH ownership establishment.
     * @p device_name optionally pins a device (e.g. "gpu1").
     */
    Result<AppHandle> createEnclave(const std::string &manifest_json,
                                    const std::string &image_name,
                                    const Bytes &image,
                                    const std::string &device_name = "");

    /* --- module store + warm pool (cold-start amortization) --- */

    /** Whether the module store is active (configured and not
     *  force-disabled through CRONUS_DISABLE_MODSTORE). */
    bool moduleStoreEnabled() const { return modStore != nullptr; }

    /** The store; only valid when moduleStoreEnabled(). */
    ModuleStore &moduleStore() { return *modStore; }

    /**
     * createEnclave through the module store: a resident module
     * skips the manifest parse, image-hash check and measurement
     * SHA; a miss admits the module (charging exactly what the
     * legacy pipeline charges) and proceeds. Falls back to
     * createEnclave() when the store is disabled.
     */
    Result<AppHandle> createEnclaveCached(
        const std::string &manifest_json,
        const std::string &image_name, const Bytes &image,
        const std::string &device_name = "");

    /**
     * Create an unbound enclave shell on @p device_type (optionally
     * pinned to @p device_name). Warm pools pre-create, pre-attest
     * and pre-connect shells; a request then binds a cached module
     * instead of running the full create->attest->dCheck pipeline.
     */
    Result<AppHandle> createEnclaveShell(
        const std::string &device_type, uint64_t mem_bytes,
        const std::string &device_name = "");

    /** Owner-authenticated bind of a cached module onto an owned
     *  shell (or rebind of a pooled enclave). */
    Status bindEnclaveModule(AppHandle &handle,
                             const ModuleRecord &record);

    /** Authenticated mECall over the untrusted path. */
    Result<Bytes> ecall(AppHandle &handle, const std::string &fn,
                        const Bytes &args);

    /** Destroy an owned enclave. */
    Status destroyEnclave(AppHandle &handle);

    /**
     * Connect @p caller (a CPU mEnclave handle) to @p callee with an
     * sRPC channel. The caller owns the callee (it created it), so
     * the callee's secret authenticates the channel.
     */
    Result<std::unique_ptr<SrpcChannel>> connect(
        const AppHandle &caller, const AppHandle &callee,
        const SrpcConfig &config = SrpcConfig());

    /** Remote attestation of an owned enclave. */
    Result<SignedAttestationReport> attest(const AppHandle &handle,
                                           const Bytes &challenge);

    /* --- application-data recovery (checkpoints, §III-B) --- */

    /** Sealed checkpoint of an owned enclave's state. */
    Result<Bytes> checkpointEnclave(AppHandle &handle);

    /**
     * Restore a checkpoint into @p handle. @p source_secret is the
     * secret of the enclave that produced the blob (pass
     * handle.secret when restoring into the same enclave; after a
     * partition failure, pass the dead enclave's secret and a fresh
     * handle -- the owner re-seals under the new secret).
     */
    Status restoreEnclave(AppHandle &handle, const Bytes &sealed,
                          const Bytes &source_secret);

    /** Expectation prefilled with this platform's trust anchors. */
    ClientExpectation expectationFor(const AppHandle &handle);

    /* --- failure injection / recovery (benches + tests) --- */
    Status injectPanic(const std::string &device_name);
    Status recover(const std::string &device_name,
                   bool charge_clock = true);
    /** Virtual-time cost recover() would charge. */
    Result<SimTime> recoveryEstimate(const std::string &device_name);

    /** Trap signals observed so far (failover wiring). */
    const std::vector<tee::TrapSignal> &trapSignals() const
    {
        return observedTraps;
    }

    /**
     * Observes every untrusted-path mECall after it returned:
     * (eid, fn, status, result payload -- empty on error). The
     * scenario fuzzer uses this to snapshot enclave outputs for its
     * reference-model oracle without touching the call path.
     */
    using EcallObserver = std::function<void(
        Eid, const std::string & /*fn*/, const Status &,
        const Bytes & /*result*/)>;
    void setEcallObserver(EcallObserver observer)
    {
        ecallObserver = std::move(observer);
    }

    /**
     * Operational counters as a JSON document: virtual time, world
     * switches, partition lifecycle events, shared-memory grants,
     * traps, hardware-filter faults, and per-partition enclave
     * loads. Intended for dashboards and debugging.
     */
    JsonValue statsReport();

  private:
    struct PartitionRecord
    {
        tee::PartitionId pid;
        std::unique_ptr<MicroOS> os;
        tee::MosImage image;
        std::string vendor;
        crypto::Signature deviceEndorsement;
    };

    Result<PartitionRecord *> recordForDevice(
        const std::string &device_name);

    CronusConfig cfg;
    obs::MetricsRegistry metricsRegistry;
    std::unique_ptr<hw::Platform> plat;
    std::unique_ptr<tee::SecureMonitor> sm;
    std::unique_ptr<tee::Spm> partitionManager;
    /* Declared after the Spm: the store's destructor releases its
     * SPM residency reservation. */
    std::unique_ptr<ModuleStore> modStore;
    std::unique_ptr<tee::NormalWorld> nw;
    EnclaveDispatcher enclaveDispatcher;
    std::vector<std::unique_ptr<PartitionRecord>> records;
    std::map<std::string, crypto::KeyPair> vendorKeys;
    std::vector<tee::TrapSignal> observedTraps;
    EcallObserver ecallObserver;
    /* Owner-key derivation counter shared by every create path, so
     * key sequences are identical whether enclaves arrive through
     * the legacy pipeline, the module store or a warm-pool shell.
     * Per-system (not process-global): cluster nodes must derive the
     * same sequences regardless of how creates interleave across
     * nodes, and parallel-engine workers must not race on it. */
    uint64_t ownerCounter = 0;
};

} // namespace cronus::core

#endif // CRONUS_CORE_SYSTEM_HH
